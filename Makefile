# blocktri build / test / experiment targets.

GO ?= go

.PHONY: all build vet lint lint-cold lint-sarif lint-stats lint-watch lint-concurrency lint-perf test race bench bench-panel bench-baseline bench-compare verify chaos chaos-soak serve-chaos experiments experiments-quick ci clean

all: build vet lint test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# Incremental by default: findings replay from .blocktri-lint-cache/ for
# packages whose content and dependencies are unchanged.
lint:
	$(GO) run ./cmd/blocktri-lint ./...

# Force a cold run (analyze everything, persist nothing).
lint-cold:
	$(GO) run ./cmd/blocktri-lint -no-cache ./...

# Same findings as `lint`, rendered as SARIF 2.1.0 for code-scanning UIs.
lint-sarif:
	mkdir -p reports
	$(GO) run ./cmd/blocktri-lint -format sarif ./... > reports/lint.sarif

# Lint with per-analyzer timing and cache/summary counters on stderr.
lint-stats:
	$(GO) run ./cmd/blocktri-lint -stats ./...

# Re-lint on every change, printing finding deltas, until interrupted.
lint-watch:
	$(GO) run ./cmd/blocktri-lint -watch ./...

# Just the concurrency-safety trio (goroutine leaks, lock ordering,
# context flow) — a quick gate while working on the service stack.
lint-concurrency:
	$(GO) run ./cmd/blocktri-lint -analyzers goleak,lockorder,ctxflow ./...

# Just the performance-contract quartet (escape, bounds-check, inlining,
# assembly ABI). The first run invokes the Go toolchain for compiler
# evidence (seconds); later runs replay the fact table from the cache.
lint-perf:
	$(GO) run ./cmd/blocktri-lint -analyzers perfescape,perfbce,perfinline,asmcheck ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

ci:
	./scripts/ci.sh

bench:
	$(GO) test -bench=. -benchmem ./...

# The panelized solve-phase hot paths only: the batched ARD solve
# (R in {1, 64, 256}) and the GEMM kernel across the dispatch tiers,
# including the skinny M x R panel shapes the solve actually issues.
bench-panel:
	$(GO) test -run '^$$' -bench 'BenchmarkARDSolve|BenchmarkKernelGEMM' -benchmem .

# Refresh the committed perf baselines (BENCH_*.json) after an intentional
# performance change; ci compares against them and fails on regression.
bench-baseline:
	$(GO) run ./cmd/blocktri-bench -perf baseline

bench-compare:
	$(GO) run ./cmd/blocktri-bench -perf compare

verify:
	$(GO) run ./cmd/blocktri-verify -trials 25

# Fault-injection campaign (see docs/RESILIENCE.md). `chaos` is the fixed-
# seed CI smoke; `chaos-soak` is a longer randomized-seed soak for local use.
chaos:
	$(GO) run ./cmd/blocktri-chaos -seed 1 -plans 32

chaos-soak:
	$(GO) run ./cmd/blocktri-chaos -seed $$(date +%s) -plans 256

# Service-level campaign: concurrent tenants against a fault-injected
# blocktri-serve backend, run under the race detector. Asserts every request
# ends in a correct solution or a clean typed error within deadline — no
# hangs, no goroutine leaks, no cross-tenant stalls.
serve-chaos:
	$(GO) run -race ./cmd/blocktri-chaos -service -seed 1 -tenants 5 -requests 120

experiments:
	$(GO) run ./cmd/blocktri-bench -exp all -csv results

experiments-quick:
	$(GO) run ./cmd/blocktri-bench -exp all -quick

clean:
	rm -rf results reports transport.ardf .blocktri-lint-cache
