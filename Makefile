# blocktri build / test / experiment targets.

GO ?= go

.PHONY: all build vet lint test race bench verify experiments experiments-quick ci clean

all: build vet lint test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

lint:
	$(GO) run ./cmd/blocktri-lint ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

ci:
	./scripts/ci.sh

bench:
	$(GO) test -bench=. -benchmem ./...

verify:
	$(GO) run ./cmd/blocktri-verify -trials 25

experiments:
	$(GO) run ./cmd/blocktri-bench -exp all -csv results

experiments-quick:
	$(GO) run ./cmd/blocktri-bench -exp all -quick

clean:
	rm -rf results transport.ardf
