# blocktri build / test / experiment targets.

GO ?= go

.PHONY: all build vet test race bench verify experiments experiments-quick clean

all: build vet test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./internal/comm/ ./internal/prefix/ ./internal/core/

bench:
	$(GO) test -bench=. -benchmem ./...

verify:
	$(GO) run ./cmd/blocktri-verify -trials 25

experiments:
	$(GO) run ./cmd/blocktri-bench -exp all -csv results

experiments-quick:
	$(GO) run ./cmd/blocktri-bench -exp all -quick

clean:
	rm -rf results transport.ardf
