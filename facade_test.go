package blocktri_test

import (
	"bytes"
	"errors"
	"math/rand"
	"testing"

	"blocktri"
)

// These tests exercise the public facade end to end, the way a downstream
// user would (the examples are not compiled into the test suite).

func TestFacadeQuickstartFlow(t *testing.T) {
	a := blocktri.NewAnisotropicDiffusion(8, 16, 0.02)
	if a.N != 16 || a.M != 8 {
		t.Fatalf("shape N=%d M=%d", a.N, a.M)
	}
	world := blocktri.NewWorld(3)
	solver := blocktri.NewARD(a, blocktri.Config{World: world})
	if err := solver.Factor(); err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	b := a.RandomRHS(2, rng)
	x, err := solver.Solve(b)
	if err != nil {
		t.Fatal(err)
	}
	if rr := a.RelResidual(x, b); rr > 1e-9 {
		t.Fatalf("residual %v", rr)
	}
	st := solver.Stats()
	if st.Flops <= 0 || st.PrefixGrowth <= 0 {
		t.Fatalf("stats not populated: %+v", st)
	}
}

func TestFacadeAllSolversInterchangeable(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	a := blocktri.NewRandomDiagDominant(12, 3, rng)
	b := a.RandomRHS(1, rng)
	ref, err := blocktri.NewDense(a).Solve(b)
	if err != nil {
		t.Fatal(err)
	}
	solvers := []blocktri.Solver{
		blocktri.NewThomas(a),
		blocktri.NewBCR(a),
		blocktri.NewPCR(a, blocktri.Config{World: blocktri.NewWorld(3)}),
		blocktri.NewSpike(a, blocktri.Config{World: blocktri.NewWorld(2)}),
		blocktri.NewAuto(a, blocktri.Config{World: blocktri.NewWorld(2)}, blocktri.AutoOptions{}),
	}
	for _, s := range solvers {
		x, err := s.Solve(b)
		if err != nil {
			t.Fatalf("%s: %v", s.Name(), err)
		}
		if !x.EqualApprox(ref, 1e-8) {
			t.Fatalf("%s disagrees with dense", s.Name())
		}
	}
}

func TestFacadeFactoredInterface(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	a := blocktri.NewOscillatory(10, 2, rng)
	var f blocktri.Factored = blocktri.NewARD(a, blocktri.Config{})
	if f.Factored() {
		t.Fatal("factored too early")
	}
	if err := f.Factor(); err != nil {
		t.Fatal(err)
	}
	if !f.Factored() {
		t.Fatal("not factored")
	}
}

func TestFacadeRefinementAndPersistence(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	a := blocktri.NewRandomDiagDominant(14, 4, rng)
	ard := blocktri.NewARD(a, blocktri.Config{World: blocktri.NewWorld(2)})
	b := a.RandomRHS(1, rng)
	x, rep, err := blocktri.SolveRefined(ard, b, 3)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Improved() {
		t.Fatalf("refinement should improve on this family: %+v", rep)
	}
	if rr := a.RelResidual(x, b); rr > 1e-12 {
		t.Fatalf("refined residual %v", rr)
	}

	var buf bytes.Buffer
	if _, err := ard.SaveFactor(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := blocktri.LoadFactor(a, blocktri.Config{World: blocktri.NewWorld(2)}, &buf)
	if err != nil {
		t.Fatal(err)
	}
	x2, err := loaded.Solve(b)
	if err != nil {
		t.Fatal(err)
	}
	x1, err := ard.Solve(b)
	if err != nil {
		t.Fatal(err)
	}
	if !x1.Equal(x2) {
		t.Fatal("restored factorization differs")
	}
}

func TestFacadeMatrixTransforms(t *testing.T) {
	a := blocktri.NewPoisson2D(4, 6)
	if !a.IsSymmetric(0) {
		t.Fatal("Poisson should be symmetric")
	}
	shifted := a.Shifted(1, 0.1) // I + 0.1*A
	th := blocktri.NewThomas(shifted)
	rng := rand.New(rand.NewSource(5))
	b := shifted.RandomRHS(1, rng)
	x, err := th.Solve(b)
	if err != nil {
		t.Fatal(err)
	}
	if rr := shifted.RelResidual(x, b); rr > 1e-12 {
		t.Fatalf("residual %v", rr)
	}
}

func TestFacadeSchedulesExposed(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	a := blocktri.NewOscillatory(16, 2, rng)
	b := a.RandomRHS(1, rng)
	for _, sched := range []blocktri.Schedule{blocktri.KoggeStone, blocktri.BrentKung, blocktri.Chain} {
		rd := blocktri.NewRD(a, blocktri.Config{World: blocktri.NewWorld(4), Schedule: sched})
		x, err := rd.Solve(b)
		if err != nil {
			t.Fatalf("%v: %v", sched, err)
		}
		if rr := a.RelResidual(x, b); rr > 1e-10 {
			t.Fatalf("%v: residual %v", sched, rr)
		}
	}
}

func TestFacadePredictedSpeedupMonotone(t *testing.T) {
	p := blocktri.CostParams{N: 512, M: 16, P: 8, R: 1}
	prev := 0.0
	for _, r := range []int{1, 10, 100, 1000} {
		s := blocktri.PredictedSpeedup(p, r)
		if s <= prev {
			t.Fatalf("speedup not increasing at R=%d: %v <= %v", r, s, prev)
		}
		prev = s
	}
}

func TestFacadeSerializationRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	a := blocktri.NewBlockToeplitz(6, 3, rng)
	var buf bytes.Buffer
	if _, err := a.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	// Read is on the internal package; the facade exposes matrices through
	// generators and files via cmd/blocktri-solve. Check the bytes are
	// non-trivial and the matrix revalidates.
	if buf.Len() == 0 {
		t.Fatal("empty serialization")
	}
	if err := a.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestFacadeErrorTypesSurface(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	a := blocktri.NewRandomDiagDominant(5, 2, rng)
	sp := blocktri.NewSpike(a, blocktri.Config{World: blocktri.NewWorld(3)})
	if err := sp.Factor(); !errors.Is(err, blocktri.ErrChunkTooSmall) {
		t.Fatalf("want ErrChunkTooSmall, got %v", err)
	}
	bad := a.Clone()
	bad.Upper[1].Zero()
	rd := blocktri.NewRD(bad, blocktri.Config{World: blocktri.NewWorld(2)})
	if _, err := rd.Solve(bad.RandomRHS(1, rng)); !errors.Is(err, blocktri.ErrSingularSuper) {
		t.Fatalf("want ErrSingularSuper, got %v", err)
	}
	th := blocktri.NewThomas(a)
	if _, err := th.Solve(blocktri.NewDenseMatrix(3, 1)); !errors.Is(err, blocktri.ErrShape) {
		t.Fatalf("want ErrShape, got %v", err)
	}
}
