// Service-level chaos: concurrent tenants against a fault-injected
// blocktri-serve backend.
//
// The solver-level harness (chaos.go) proves each solver fails cleanly
// under injected faults; this file proves the layer above — admission,
// caching, coalescing, retry, breaker, boost — preserves that contract
// under multi-tenant concurrency. The invariant is stricter than the
// solver one, because the service makes stronger promises:
//
//   - every request ends in a correct solution or a clean typed error
//     (serve's vocabulary or the runtime's), never an untyped error or an
//     escaped panic;
//   - every request returns within its deadline plus bounded slack —
//     never a hang and never a cross-tenant stall;
//   - when the campaign ends and the server closes, no goroutine leaks:
//     the count drains back to the pre-campaign baseline.
package chaos

import (
	"context"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"runtime"
	"sync"
	"time"

	"blocktri/internal/blocktri"
	"blocktri/internal/comm"
	"blocktri/internal/serve"
)

// ServiceOptions configures a service-level chaos campaign. The zero value
// of any field selects the default used by DefaultServiceOptions.
type ServiceOptions struct {
	// Seed drives every random choice: matrix pool, request mix, injected
	// faults. Same seed, same campaign.
	Seed int64
	// Tenants is the number of concurrent client goroutines.
	Tenants int
	// Requests is the total request count across all tenants.
	Requests int
	// Matrices is the size of the shared matrix pool tenants draw from;
	// small pools force cache contention and coalescing, large pools force
	// eviction.
	Matrices int
	// P is the rank count of each backend world.
	P int
	// QueueDepth bounds the server's admission queue; small values make
	// load shedding part of the campaign.
	QueueDepth int
	// CacheBytes bounds the server's factor cache.
	CacheBytes int64
	// Deadline is the per-request deadline.
	Deadline time.Duration
	// Grace is the slack past Deadline a Submit may take before the
	// campaign calls it a stall.
	Grace time.Duration
	// Fault, when non-nil, replaces the seeded default backend fault plan.
	Fault *comm.FaultPlan
	// Log, when non-nil, receives a short line per tenant.
	Log io.Writer
}

// DefaultServiceOptions is the standard campaign for a seed: enough
// tenants and requests to exercise shedding, coalescing, retries, and
// eviction on a single-package test budget.
func DefaultServiceOptions(seed int64) ServiceOptions {
	return ServiceOptions{
		Seed:       seed,
		Tenants:    5,
		Requests:   120,
		Matrices:   6,
		P:          2,
		QueueDepth: 16,
		CacheBytes: 1 << 20,
		Deadline:   10 * time.Second,
		Grace:      5 * time.Second,
	}
}

func (o ServiceOptions) withDefaults() ServiceOptions {
	d := DefaultServiceOptions(o.Seed)
	if o.Tenants < 1 {
		o.Tenants = d.Tenants
	}
	if o.Requests < 1 {
		o.Requests = d.Requests
	}
	if o.Matrices < 1 {
		o.Matrices = d.Matrices
	}
	if o.P < 1 {
		o.P = d.P
	}
	if o.QueueDepth < 1 {
		o.QueueDepth = d.QueueDepth
	}
	if o.CacheBytes < 1 {
		o.CacheBytes = d.CacheBytes
	}
	if o.Deadline <= 0 {
		o.Deadline = d.Deadline
	}
	if o.Grace <= 0 {
		o.Grace = d.Grace
	}
	return o
}

// ServiceReport aggregates a service campaign.
type ServiceReport struct {
	Requests  int
	Solved    int
	TypedErrs int
	// Breakdown of the typed errors the ladder is expected to produce.
	Shed      int
	Deadlined int
	Circuit   int
	// Boosted counts solves that went through graceful degradation.
	Boosted int
	// Warm counts solves served from a cached factorization.
	Warm int
	// Violations lists every broken promise, one line each.
	Violations []string
	// GoroutinesBefore/After are the leak-check bounds: After is sampled
	// once the server is closed and must drain to at most Before.
	GoroutinesBefore, GoroutinesAfter int
	Wall                              time.Duration
	// Stats is the server's own final counter snapshot.
	Stats serve.Stats
}

// Ok reports whether every service promise held.
func (r *ServiceReport) Ok() bool { return len(r.Violations) == 0 }

// typedServiceFailure reports whether err belongs to the service's clean
// failure vocabulary: serve's sentinels or a typed backend failure that
// exhausted its retry budget.
func typedServiceFailure(err error) bool {
	return errors.Is(err, serve.ErrOverloaded) ||
		errors.Is(err, serve.ErrCircuitOpen) ||
		errors.Is(err, serve.ErrDeadlineExceeded) ||
		errors.Is(err, serve.ErrCanceled) ||
		errors.Is(err, serve.ErrBadRequest) ||
		errors.Is(err, serve.ErrUnknownMatrix) ||
		typedFailure(err)
}

// defaultServiceFault is the seeded backend plan: recoverable message
// faults at rates the retransmit protocol absorbs, plus one early crash so
// the retry path runs at least once per world.
func defaultServiceFault(rng *rand.Rand, p int) *comm.FaultPlan {
	return &comm.FaultPlan{
		Seed:      rng.Int63(),
		Drop:      0.03 + rng.Float64()*0.04,
		Dup:       0.03 + rng.Float64()*0.04,
		Corrupt:   0.02 + rng.Float64()*0.03,
		CrashRank: rng.Intn(p),
		CrashAtOp: 1 + rng.Intn(20),
	}
}

// RunService executes one service-level chaos campaign.
func RunService(opts ServiceOptions) *ServiceReport {
	opts = opts.withDefaults()
	rng := rand.New(rand.NewSource(opts.Seed))
	rep := &ServiceReport{Requests: opts.Requests}

	// The matrix pool: well-conditioned systems of varied shape, plus one
	// boost-requiring matrix (singular super-diagonal block) so graceful
	// degradation is part of every campaign.
	type poolEntry struct {
		a     *blocktri.Matrix
		boost bool
	}
	pool := make([]poolEntry, opts.Matrices)
	for i := range pool {
		n := 2*opts.P + rng.Intn(10)
		m := 1 + rng.Intn(2)
		a := blocktri.RandomDiagDominant(n, m, rng)
		if i == len(pool)-1 && n > 2 {
			a.Upper[n/2].Zero()
			pool[i] = poolEntry{a: a, boost: true}
			continue
		}
		pool[i] = poolEntry{a: a}
	}

	fault := opts.Fault
	if fault == nil {
		fault = defaultServiceFault(rng, opts.P)
	}
	rep.GoroutinesBefore = runtime.NumGoroutine()
	srv := serve.New(serve.Config{
		P:          opts.P,
		CacheBytes: opts.CacheBytes,
		QueueDepth: opts.QueueDepth,
		Seed:       opts.Seed,
		FaultPlan:  fault,
	})

	var (
		mu         sync.Mutex
		violations []string
	)
	violate := func(format string, args ...any) {
		mu.Lock()
		violations = append(violations, fmt.Sprintf(format, args...))
		mu.Unlock()
	}

	// Per-tenant request streams. Each tenant owns a decorrelated rng so
	// the campaign replays identically regardless of scheduling.
	perTenant := opts.Requests / opts.Tenants
	extra := opts.Requests % opts.Tenants
	start := time.Now()
	var wg sync.WaitGroup
	counts := struct {
		sync.Mutex
		solved, typed, shed, deadlined, circuit, boosted, warm int
	}{}
	for t := 0; t < opts.Tenants; t++ {
		n := perTenant
		if t < extra {
			n++
		}
		wg.Add(1)
		go func(tenant int, n int, seed int64) {
			defer wg.Done()
			trng := rand.New(rand.NewSource(seed))
			name := fmt.Sprintf("tenant-%d", tenant)
			for i := 0; i < n; i++ {
				pe := pool[trng.Intn(len(pool))]
				b := pe.a.RandomRHS(1+trng.Intn(2), rand.New(rand.NewSource(trng.Int63())))
				reqStart := time.Now()
				res, err := srv.Submit(context.Background(), serve.Job{
					Tenant:   name,
					Matrix:   pe.a,
					B:        b,
					Deadline: reqStart.Add(opts.Deadline),
				})
				wall := time.Since(reqStart)
				if wall > opts.Deadline+opts.Grace {
					violate("%s request %d stalled: returned after %v (deadline %v + grace %v)",
						name, i, wall.Round(time.Millisecond), opts.Deadline, opts.Grace)
				}
				switch {
				case err == nil:
					tol := 1e-6
					if res.Boosted {
						// Boosted answers are refined against a perturbed
						// factorization; hold them to the gross-error bound.
						tol = 1e-2
					}
					if r := pe.a.RelResidual(res.X, b); r > tol {
						violate("%s request %d: silent wrong answer, residual %.3e > %.0e", name, i, r, tol)
						continue
					}
					counts.Lock()
					counts.solved++
					if res.Boosted {
						counts.boosted++
					}
					if res.Warm {
						counts.warm++
					}
					counts.Unlock()
				case typedServiceFailure(err):
					counts.Lock()
					counts.typed++
					switch {
					case errors.Is(err, serve.ErrOverloaded):
						counts.shed++
					case errors.Is(err, serve.ErrDeadlineExceeded):
						counts.deadlined++
					case errors.Is(err, serve.ErrCircuitOpen):
						counts.circuit++
					}
					counts.Unlock()
				default:
					violate("%s request %d: untyped error: %v", name, i, err)
				}
			}
		}(t, n, opts.Seed^int64(t+1)*0x7f4a7c15)
	}
	wg.Wait()
	rep.Wall = time.Since(start)
	rep.Stats = srv.Stats()
	srv.Close()

	// Leak check: after Close, the goroutine count must drain back to the
	// pre-campaign baseline (polled — rank workers exit asynchronously
	// after their stop signal).
	drainDeadline := time.Now().Add(10 * time.Second)
	for {
		rep.GoroutinesAfter = runtime.NumGoroutine()
		if rep.GoroutinesAfter <= rep.GoroutinesBefore || time.Now().After(drainDeadline) {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	if rep.GoroutinesAfter > rep.GoroutinesBefore {
		violate("goroutine leak: %d before campaign, %d after server close",
			rep.GoroutinesBefore, rep.GoroutinesAfter)
	}

	rep.Solved = counts.solved
	rep.TypedErrs = counts.typed
	rep.Shed = counts.shed
	rep.Deadlined = counts.deadlined
	rep.Circuit = counts.circuit
	rep.Boosted = counts.boosted
	rep.Warm = counts.warm
	rep.Violations = violations
	if rep.Solved+rep.TypedErrs != opts.Requests {
		rep.Violations = append(rep.Violations, fmt.Sprintf(
			"request accounting broken: %d solved + %d typed != %d submitted",
			rep.Solved, rep.TypedErrs, opts.Requests))
	}
	if opts.Log != nil {
		fmt.Fprintf(opts.Log, "service campaign: %d requests, %d solved (%d warm, %d boosted), %d typed errors (%d shed, %d deadlined, %d circuit), %d violations, wall %v\n",
			rep.Requests, rep.Solved, rep.Warm, rep.Boosted, rep.TypedErrs,
			rep.Shed, rep.Deadlined, rep.Circuit, len(rep.Violations), rep.Wall.Round(time.Millisecond))
	}
	return rep
}
