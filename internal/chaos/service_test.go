package chaos

import (
	"testing"
	"time"

	"blocktri/internal/comm"
)

// TestServiceChaos is the acceptance gate for the serve layer: 100+
// concurrent requests across 4+ tenants against a fault-injected backend.
// Every request must end in a correct solution or a clean typed error
// within its deadline; the campaign must shed or solve everything, leak no
// goroutines, and never stall one tenant on another's flood.
func TestServiceChaos(t *testing.T) {
	opts := DefaultServiceOptions(1234)
	opts.Tenants = 5
	opts.Requests = 120
	rep := RunService(opts)
	for _, v := range rep.Violations {
		t.Errorf("violation: %s", v)
	}
	if !rep.Ok() {
		t.Fatalf("service invariant broken (%d violations); report: %+v", len(rep.Violations), rep)
	}
	if rep.Solved == 0 {
		t.Fatal("campaign solved nothing; fault plan too hostile to be informative")
	}
	if rep.Warm == 0 {
		t.Error("no warm-factor hits: the cache amortization never engaged")
	}
	if rep.Boosted == 0 {
		t.Error("no boosted solves: graceful degradation never engaged")
	}
	if rep.Stats.Retries == 0 {
		t.Error("no retries recorded: the injected crash never exercised the retry path")
	}
}

// TestServiceChaosSheds runs a deliberately under-provisioned server so
// load shedding must engage, and verifies sheds are typed, fast, and do
// not break any other promise.
func TestServiceChaosSheds(t *testing.T) {
	opts := DefaultServiceOptions(77)
	opts.Tenants = 6
	opts.Requests = 90
	opts.QueueDepth = 2
	// No injected faults: this campaign isolates the admission ladder.
	opts.Fault = &comm.FaultPlan{Seed: 99}
	rep := RunService(opts)
	for _, v := range rep.Violations {
		t.Errorf("violation: %s", v)
	}
	if !rep.Ok() {
		t.Fatalf("shedding campaign broke the invariant: %+v", rep)
	}
	if rep.Shed == 0 {
		t.Skip("queue never filled on this machine; shedding not exercised")
	}
	if rep.Solved == 0 {
		t.Fatal("an overloaded server must still solve what it admits")
	}
}

// TestServiceChaosDeterministic: two campaigns with the same seed issue the
// same requests against the same fault plan. Scheduling still varies, so
// only the seeded inputs are compared — the request count and the solved+
// typed partition must both account for every request.
func TestServiceChaosDeterministic(t *testing.T) {
	opts := DefaultServiceOptions(5)
	opts.Requests = 40
	opts.Tenants = 4
	opts.Deadline = 5 * time.Second
	a := RunService(opts)
	b := RunService(opts)
	if !a.Ok() || !b.Ok() {
		t.Fatalf("replayed campaigns violated the invariant: %v / %v", a.Violations, b.Violations)
	}
	if a.Requests != b.Requests {
		t.Fatalf("replay changed the request count: %d vs %d", a.Requests, b.Requests)
	}
}
