package chaos

import (
	"math/rand"
	"testing"
	"time"

	"blocktri/internal/blocktri"
	"blocktri/internal/comm"
	"blocktri/internal/mat"
)

// trialSystem builds a well-conditioned system matching a hand-written plan.
func trialSystem(t *testing.T, pl plan) (*blocktri.Matrix, *mat.Matrix) {
	t.Helper()
	rng := rand.New(rand.NewSource(99))
	a := blocktri.RandomDiagDominant(pl.n, pl.m, rng)
	return a, a.RandomRHS(pl.rhs, rng)
}

// TestInvariantSmoke is the in-tree version of the CI chaos smoke: a small
// seeded campaign over every solver must end every trial in a correct
// solution or a clean typed error.
func TestInvariantSmoke(t *testing.T) {
	opts := DefaultOptions(1)
	opts.Plans = 8
	rep := Run(opts)
	if want := opts.Plans * len(SolverNames); len(rep.Trials) != want {
		t.Fatalf("ran %d trials, want %d", len(rep.Trials), want)
	}
	for _, v := range rep.Violations {
		t.Errorf("plan %d solver %s (P=%d N=%d M=%d): %s", v.Plan, v.Solver, v.P, v.N, v.M, v.Detail)
	}
	if rep.Solved == 0 {
		t.Error("no trial solved anything; the campaign is not exercising the solvers")
	}
}

// TestDeterministicReplay: the same seed must draw the same plans and
// classify sequential solvers (whose trials involve no scheduling races)
// identically.
func TestDeterministicReplay(t *testing.T) {
	opts := DefaultOptions(7)
	opts.Plans = 6
	opts.Solvers = []string{"thomas", "bcr"}
	a := Run(opts)
	b := Run(opts)
	if len(a.Trials) != len(b.Trials) {
		t.Fatalf("trial counts differ: %d vs %d", len(a.Trials), len(b.Trials))
	}
	for i := range a.Trials {
		ta, tb := a.Trials[i], b.Trials[i]
		if ta.Fault != tb.Fault || ta.N != tb.N || ta.M != tb.M || ta.P != tb.P {
			t.Fatalf("trial %d plans differ:\n%+v\n%+v", i, ta, tb)
		}
		if ta.Outcome != tb.Outcome || ta.Residual != tb.Residual {
			t.Fatalf("trial %d outcomes differ: %v/%g vs %v/%g",
				i, ta.Outcome, ta.Residual, tb.Outcome, tb.Residual)
		}
	}
}

// TestCrashPlanYieldsTypedError pins the clean-failure half of the
// invariant: a plan that crashes a rank mid-solve must end as a typed
// error, not a solve and not a violation.
func TestCrashPlanYieldsTypedError(t *testing.T) {
	pl := plan{p: 2, n: 6, m: 2, rhs: 1,
		fault: comm.FaultPlan{Seed: 3, CrashRank: 1, CrashAtOp: 2}}
	a, b := trialSystem(t, pl)
	tr := runTrial(0, "rd", pl, a, b, 1e-8)
	if tr.Outcome != TypedError {
		t.Fatalf("outcome %v (err %q, detail %q), want typed error", tr.Outcome, tr.Err, tr.Detail)
	}
}

// TestStallPlanResolves: an infinite stall must resolve via watchdog or
// receive timeout, never hang the harness.
func TestStallPlanResolves(t *testing.T) {
	pl := plan{p: 2, n: 6, m: 2, rhs: 1,
		fault: comm.FaultPlan{Seed: 5, StallRank: 0, StallAtOp: 3}}
	a, b := trialSystem(t, pl)
	done := make(chan Trial, 1)
	go func() { done <- runTrial(0, "pcr", pl, a, b, 1e-8) }()
	select {
	case tr := <-done:
		if tr.Outcome != TypedError {
			t.Fatalf("outcome %v (err %q, detail %q), want typed error", tr.Outcome, tr.Err, tr.Detail)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("stalled trial did not resolve: the harness hung")
	}
}
