// Package chaos is the fault-injection harness for the solver stack: it
// runs every solver under randomized-but-seeded fault plans and asserts
// the resilience invariant — each trial ends in a correct solution or a
// clean typed error; never a hang, never an escaped panic, and never a
// silent wrong answer.
//
// Hangs are excluded by construction: every world runs with a short
// deadlock window, so a no-progress state surfaces as a *comm.DeadlockError
// instead of blocking the harness. Wrong answers are excluded by checking
// the relative residual of every "successful" solve against the original
// matrix. Everything else must be one of the runtime's typed failures.
package chaos

import (
	"errors"
	"fmt"
	"io"
	"math"
	"math/rand"
	"time"

	"blocktri/internal/blocktri"
	"blocktri/internal/comm"
	"blocktri/internal/core"
	"blocktri/internal/mat"
)

// SolverNames lists the solvers a chaos run covers, in run order.
var SolverNames = []string{"thomas", "rd", "ard", "pcr", "bcr", "spike"}

// Options configures a chaos run. The zero value is not useful; use
// DefaultOptions as the base.
type Options struct {
	// Seed makes the run reproducible: same seed, same plans, same
	// matrices, same injected faults.
	Seed int64
	// Plans is the number of randomized fault plans; every plan runs every
	// solver in Solvers.
	Plans int
	// MaxP bounds the randomized world size (>= 1).
	MaxP int
	// MaxN bounds the randomized extra block rows beyond the 2*P minimum.
	MaxN int
	// MaxM bounds the randomized block size (>= 1).
	MaxM int
	// Tol is the relative-residual threshold above which a returned
	// solution counts as a silent wrong answer.
	Tol float64
	// Solvers restricts the run to a subset of SolverNames; nil runs all.
	Solvers []string
	// TrialBudget is the wall-clock budget for one (plan, solver) trial.
	// A trial that takes longer is flagged as an overrun in the report,
	// naming the scenario — the early-warning signal that a fault path has
	// started to wedge before it degrades into an outright hang. Zero means
	// DefaultTrialBudget; negative disables the check.
	TrialBudget time.Duration
	// Log, when non-nil, receives one line per trial.
	Log io.Writer
}

// DefaultTrialBudget bounds one trial's wall clock when Options.TrialBudget
// is zero. Every fault scenario is built to resolve in well under a second
// (tight recv timeouts, short deadlock window), so thirty seconds of slack
// only trips on a genuine scheduling wedge.
const DefaultTrialBudget = 30 * time.Second

// DefaultOptions returns the standard chaos configuration for a seed.
func DefaultOptions(seed int64) Options {
	return Options{Seed: seed, Plans: 32, MaxP: 6, MaxN: 12, MaxM: 3, Tol: 1e-8}
}

// Outcome classifies one trial.
type Outcome int

const (
	// Solved: the solver returned x with an acceptable residual.
	Solved Outcome = iota
	// TypedError: the solver failed with one of the runtime's typed errors
	// — the clean-failure half of the invariant.
	TypedError
	// Violated: the invariant broke (hang would appear as DeadlockError, so
	// in practice: escaped panic, untyped error, or silent wrong answer).
	Violated
)

func (o Outcome) String() string {
	switch o {
	case Solved:
		return "solved"
	case TypedError:
		return "typed-error"
	default:
		return "VIOLATION"
	}
}

// Trial records one (plan, solver) execution.
type Trial struct {
	Plan    int
	Solver  string
	P, N, M int
	Fault   comm.FaultPlan
	Outcome Outcome
	// Residual is the relative residual of the returned solution (Solved
	// outcomes only); Tol is the effective bound it was held to, which for
	// the prefix-product solvers scales with their PrefixGrowth diagnostic.
	Residual, Tol float64
	// Err is the error text for TypedError outcomes.
	Err string
	// Detail explains a Violated outcome.
	Detail string
	// Wall is the trial's wall-clock time; Overrun marks it as having
	// exceeded the run's per-trial budget.
	Wall    time.Duration
	Overrun bool
}

// Scenario describes the trial compactly for overrun reporting.
func (t Trial) Scenario() string {
	return fmt.Sprintf("plan %d solver %s (P=%d N=%d M=%d)", t.Plan, t.Solver, t.P, t.N, t.M)
}

// Report aggregates a chaos run.
type Report struct {
	Trials     []Trial
	Solved     int
	TypedErrs  int
	Violations []Trial
	// Overruns lists trials that blew the per-trial wall-clock budget,
	// regardless of how they were otherwise classified.
	Overruns []Trial
}

// Ok reports whether the resilience invariant held across the whole run:
// no violations and no trial over its wall-clock budget.
func (r *Report) Ok() bool { return len(r.Violations) == 0 && len(r.Overruns) == 0 }

// plan is the randomized scenario shared by every solver in one iteration.
type plan struct {
	p, n, m, rhs int
	fault        comm.FaultPlan
}

// drawPlan randomizes one scenario. Probabilities are chosen so that most
// plans are recoverable (drops/dups/corruption/delays that the retransmit
// protocol absorbs) while a meaningful fraction injects a crash or a stall
// and must end in a typed error.
func drawPlan(rng *rand.Rand, opts Options) plan {
	p := 1 + rng.Intn(opts.MaxP)
	n := 2*p + rng.Intn(opts.MaxN+1) // N >= 2P keeps SPIKE in its domain
	m := 1 + rng.Intn(opts.MaxM)
	fp := comm.FaultPlan{Seed: rng.Int63()}
	if rng.Float64() < 0.7 {
		fp.Drop = rng.Float64() * 0.12
		fp.Dup = rng.Float64() * 0.15
		fp.Corrupt = rng.Float64() * 0.10
	}
	if rng.Float64() < 0.3 {
		fp.Delay = rng.Float64() * 0.3
		fp.MaxDelay = time.Duration(1+rng.Intn(200)) * time.Microsecond
	}
	switch {
	case rng.Float64() < 0.25:
		fp.CrashRank = rng.Intn(p)
		fp.CrashAtOp = 1 + rng.Intn(40)
	case rng.Float64() < 0.2:
		fp.StallRank = rng.Intn(p)
		fp.StallAtOp = 1 + rng.Intn(40)
		if rng.Float64() < 0.5 {
			fp.StallFor = time.Duration(1+rng.Intn(5)) * time.Millisecond
		} // else: stall until the watchdog breaks the world
	}
	return plan{p: p, n: n, m: m, rhs: 1 + rng.Intn(3), fault: fp}
}

// shortResilience is the per-trial failure-handling config: tight enough
// that a poisoned trial resolves in well under a second, loose enough that
// recoverable fault plans still succeed.
func shortResilience() comm.Resilience {
	return comm.Resilience{
		RecvTimeout:   25 * time.Millisecond,
		MaxRetries:    10,
		Backoff:       1.5,
		DeadlockAfter: 250 * time.Millisecond,
	}
}

// newSolver builds the named solver. Distributed solvers get the faulty
// world; thomas and bcr are sequential and exercise the invariant without
// injection.
func newSolver(name string, a *blocktri.Matrix, w *comm.World) core.Solver {
	cfg := core.Config{World: w}
	switch name {
	case "thomas":
		return core.NewThomas(a)
	case "rd":
		return core.NewRD(a, cfg)
	case "ard":
		return core.NewARD(a, cfg)
	case "pcr":
		return core.NewPCR(a, cfg)
	case "bcr":
		return core.NewBCR(a)
	case "spike":
		return core.NewSpike(a, cfg)
	}
	panic("chaos: unknown solver " + name)
}

// effectiveTol widens the residual bound for solvers whose rounding error
// is amplified by the transfer-matrix prefix product (RD/ARD report this as
// Stats().PrefixGrowth; see SolveStats). Their backward error is of order
// PrefixGrowth*eps even on a fault-free run, so holding them to the flat
// bound would flag ordinary floating-point behavior as a chaos violation.
// The widened bound is capped at 1e-2: past that the matrix is outside the
// solver's numerical domain and the residual check is only a gross-error
// backstop (fault injection cannot cause an undetected wrong answer anyway
// — corruption is checksummed — so this backstop guards harness and solver
// bugs, not flipped bits).
func effectiveTol(s core.Solver, tol float64) float64 {
	const (
		machEps  = 0x1p-52
		slack    = 64.0
		tolLimit = 1e-2
	)
	st, ok := s.(interface{ Stats() core.SolveStats })
	if !ok {
		return tol
	}
	g := st.Stats().PrefixGrowth
	if g <= 1 {
		return tol
	}
	if gt := g * machEps * slack; gt > tol {
		return math.Min(gt, tolLimit)
	}
	return tol
}

// typedFailure reports whether err belongs to the runtime's clean typed
// error vocabulary.
func typedFailure(err error) bool {
	var re *comm.RankError
	var de *comm.DeadlockError
	return errors.As(err, &re) || errors.As(err, &de) ||
		errors.Is(err, comm.ErrRecvTimeout) ||
		errors.Is(err, comm.ErrInjectedCrash) ||
		errors.Is(err, core.ErrChunkTooSmall) ||
		core.Boostable(err)
}

// Run executes the chaos campaign and returns its report.
func Run(opts Options) *Report {
	if opts.MaxP < 1 || opts.MaxM < 1 || opts.Plans < 1 || opts.Tol <= 0 {
		d := DefaultOptions(opts.Seed)
		if opts.MaxP < 1 {
			opts.MaxP = d.MaxP
		}
		if opts.MaxM < 1 {
			opts.MaxM = d.MaxM
		}
		if opts.Plans < 1 {
			opts.Plans = d.Plans
		}
		if opts.Tol <= 0 {
			opts.Tol = d.Tol
		}
	}
	solvers := opts.Solvers
	if len(solvers) == 0 {
		solvers = SolverNames
	}
	budget := opts.TrialBudget
	if budget == 0 {
		budget = DefaultTrialBudget
	}
	rep := &Report{}
	for i := 0; i < opts.Plans; i++ {
		// One sub-rng per plan index: adding a plan or a solver never
		// reshuffles the scenarios of the others.
		mix := (uint64(i) + 1) * 0x9e3779b97f4a7c15
		rng := rand.New(rand.NewSource(opts.Seed ^ int64(mix>>1)))
		pl := drawPlan(rng, opts)
		a := blocktri.RandomDiagDominant(pl.n, pl.m, rng)
		b := a.RandomRHS(pl.rhs, rng)
		for _, name := range solvers {
			start := time.Now()
			tr := runTrial(i, name, pl, a, b, opts.Tol)
			tr.Wall = time.Since(start)
			if budget > 0 && tr.Wall > budget {
				tr.Overrun = true
				rep.Overruns = append(rep.Overruns, tr)
			}
			rep.Trials = append(rep.Trials, tr)
			switch tr.Outcome {
			case Solved:
				rep.Solved++
			case TypedError:
				rep.TypedErrs++
			default:
				rep.Violations = append(rep.Violations, tr)
			}
			if opts.Log != nil {
				line := fmt.Sprintf("plan %3d %-7s P=%d N=%-2d M=%d: %s", i, name, pl.p, pl.n, pl.m, tr.Outcome)
				switch tr.Outcome {
				case Solved:
					line += fmt.Sprintf(" (residual %.2e)", tr.Residual)
				case TypedError:
					line += " (" + tr.Err + ")"
				default:
					line += " (" + tr.Detail + ")"
				}
				if tr.Overrun {
					line += fmt.Sprintf(" OVERRAN budget: %v > %v", tr.Wall.Round(time.Millisecond), budget)
				}
				fmt.Fprintln(opts.Log, line)
			}
		}
	}
	return rep
}

// runTrial executes one (plan, solver) pair, converting every possible
// ending — including an escaped panic — into a classified Trial.
func runTrial(idx int, name string, pl plan, a *blocktri.Matrix, b *mat.Matrix, tol float64) (tr Trial) {
	tr = Trial{Plan: idx, Solver: name, P: pl.p, N: pl.n, M: pl.m, Fault: pl.fault}
	defer func() {
		if r := recover(); r != nil {
			tr.Outcome = Violated
			tr.Detail = fmt.Sprintf("escaped panic: %v", r)
		}
	}()
	w := comm.NewWorld(pl.p)
	w.SetResilience(shortResilience())
	w.SetFaultPlan(&pl.fault)
	sol := newSolver(name, a, w)
	x, err := sol.Solve(b)
	switch {
	case err == nil:
		res := a.RelResidual(x, b)
		eff := effectiveTol(sol, tol)
		if res > eff {
			tr.Outcome = Violated
			tr.Detail = fmt.Sprintf("silent wrong answer: residual %.3e > %.1e", res, eff)
			return
		}
		tr.Outcome = Solved
		tr.Residual = res
		tr.Tol = eff
	case typedFailure(err):
		tr.Outcome = TypedError
		tr.Err = err.Error()
	default:
		tr.Outcome = Violated
		tr.Detail = fmt.Sprintf("untyped error: %v", err)
	}
	return
}
