package core

import (
	"fmt"
	"math"

	"blocktri/internal/blocktri"
	"blocktri/internal/mat"
)

// Auto selects the right solver for a matrix automatically, using the
// conditioning diagnostic this library exposes:
//
//  1. It factors with ARD (the fastest per-solve algorithm) and inspects
//     the PrefixGrowth diagnostic. If growth*eps is safely below the
//     accuracy target, ARD is used.
//  2. Otherwise it falls back to SPIKE (stable, still factored and
//     parallel) when the partition constraint N >= 2P holds.
//  3. Otherwise it falls back to sequential block Thomas.
//
// The decision is made once, at Factor time; Reason reports it. This is
// the recommended entry point for callers who do not know their matrix's
// recurrence behavior in advance.
type Auto struct {
	a      *blocktri.Matrix
	cfg    Config
	opt    AutoOptions
	chosen Solver
	reason string
}

// AutoOptions tunes the selection policy.
type AutoOptions struct {
	// MaxGrowth is the largest acceptable PrefixGrowth for ARD; the
	// expected relative error is about MaxGrowth*1e-16. Default 1e10
	// (~1e-6 expected error, recoverable to machine precision by
	// iterative refinement).
	MaxGrowth float64
}

func (o AutoOptions) maxGrowth() float64 {
	if o.MaxGrowth > 0 {
		return o.MaxGrowth
	}
	return 1e10
}

// NewAuto returns an automatic solver for a over cfg's world.
func NewAuto(a *blocktri.Matrix, cfg Config, opt AutoOptions) *Auto {
	return &Auto{a: a, cfg: cfg, opt: opt}
}

// Name implements Solver; before Factor it reports the pending state.
func (s *Auto) Name() string {
	if s.chosen == nil {
		return "auto(unfactored)"
	}
	return "auto(" + s.chosen.Name() + ")"
}

// Reason explains the selection after Factor.
func (s *Auto) Reason() string { return s.reason }

// Chosen returns the underlying solver after Factor (nil before).
func (s *Auto) Chosen() Solver { return s.chosen }

// Factored implements Factored.
func (s *Auto) Factored() bool { return s.chosen != nil }

// Factor implements Factored: it runs the selection policy.
func (s *Auto) Factor() error {
	if s.chosen != nil {
		return nil
	}
	// Cheap pre-screen: if the sampled per-row growth rate already puts
	// rate^N orders of magnitude past the budget, skip ARD's O(M^3)
	// factor entirely. A 1000x margin absorbs the heuristic's slack; the
	// authoritative check below still guards the borderline cases.
	rate := EstimateGrowth(s.a, 8)
	predicted := math.Pow(rate, float64(s.a.N))
	if predicted > 1e3*s.opt.maxGrowth() {
		s.reason = fmt.Sprintf("ARD pre-screened out: estimated growth %.3g (rate %.3g over N=%d) far exceeds budget %.3g",
			predicted, rate, s.a.N, s.opt.maxGrowth())
	} else {
		ard := NewARD(s.a, s.cfg)
		err := ard.Factor()
		switch {
		case err == nil && ard.FactorStats().PrefixGrowth <= s.opt.maxGrowth():
			s.chosen = ard
			s.reason = fmt.Sprintf("ARD: prefix growth %.3g within budget %.3g",
				ard.FactorStats().PrefixGrowth, s.opt.maxGrowth())
			return nil
		case err == nil:
			s.reason = fmt.Sprintf("ARD rejected: prefix growth %.3g exceeds budget %.3g",
				ard.FactorStats().PrefixGrowth, s.opt.maxGrowth())
		default:
			s.reason = fmt.Sprintf("ARD rejected: %v", err)
		}
	}

	world := s.cfg.world()
	if world.P > 1 && s.a.N >= 2*world.P {
		spike := NewSpike(s.a, s.cfg)
		if err := spike.Factor(); err == nil {
			s.chosen = spike
			s.reason += "; SPIKE selected"
			return nil
		} else {
			s.reason += fmt.Sprintf("; SPIKE rejected: %v", err)
		}
	} else if world.P > 1 {
		s.reason += fmt.Sprintf("; SPIKE unavailable (N=%d < 2P=%d)", s.a.N, 2*world.P)
	}

	th := NewThomas(s.a)
	if err := th.Factor(); err != nil {
		return fmt.Errorf("core: auto: no solver applicable (last: %w); %s", err, s.reason)
	}
	s.chosen = th
	s.reason += "; Thomas selected"
	return nil
}

// Solve implements Solver.
func (s *Auto) Solve(b *mat.Matrix) (*mat.Matrix, error) {
	if err := checkRHS(s.a, b); err != nil {
		return nil, err
	}
	if err := s.Factor(); err != nil {
		return nil, err
	}
	return s.chosen.Solve(b)
}

// Matrix implements ResidualSolver so Auto composes with SolveRefined.
func (s *Auto) Matrix() residualMatrix { return s.a }
