package core

import (
	"math/rand"
	"testing"
	"testing/quick"

	"blocktri/internal/mat"
)

func randAffine(rng *rand.Rand, m, r int) Affine {
	return Affine{S: mat.Random(2*m, 2*m, rng), H: mat.Random(2*m, r, rng)}
}

func affineApprox(a, b Affine, tol float64) bool {
	if a.IsIdentity() || b.IsIdentity() {
		return a.IsIdentity() == b.IsIdentity()
	}
	return a.S.EqualApprox(b.S, tol) && a.H.EqualApprox(b.H, tol)
}

// The scan semigroup's laws: associativity and two-sided identity. These
// are what make every schedule (Kogge-Stone, Brent-Kung, chain) compute
// the same prefixes.
func TestComposeAffineAssociativityProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m, r := 1+rng.Intn(4), 1+rng.Intn(3)
		a, b, c := randAffine(rng, m, r), randAffine(rng, m, r), randAffine(rng, m, r)
		left := ComposeAffine(ComposeAffine(a, b), c)
		right := ComposeAffine(a, ComposeAffine(b, c))
		return affineApprox(left, right, 1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestComposeAffineIdentityLaws(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	a := randAffine(rng, 3, 2)
	id := Affine{}
	if !affineApprox(ComposeAffine(id, a), a, 0) {
		t.Fatal("left identity violated")
	}
	if !affineApprox(ComposeAffine(a, id), a, 0) {
		t.Fatal("right identity violated")
	}
	if !ComposeAffine(id, id).IsIdentity() {
		t.Fatal("id ∘ id must be id")
	}
}

// ComposeAffine must agree with applying the maps pointwise: for any y,
// (b∘a)(y) == b(a(y)).
func TestComposeAffineMatchesApplicationProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m, r := 1+rng.Intn(4), 1+rng.Intn(2)
		a, b := randAffine(rng, m, r), randAffine(rng, m, r)
		y := mat.Random(2*m, r, rng)
		apply := func(af Affine, v *mat.Matrix) *mat.Matrix {
			out := mat.New(2*m, r)
			mat.Mul(out, af.S, v)
			mat.Add(out, out, af.H)
			return out
		}
		composed := ComposeAffine(a, b)
		direct := apply(b, apply(a, y))
		viaCompose := apply(composed, y)
		return direct.EqualApprox(viaCompose, 1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// encode/decode of affine payloads round-trips, including the identity.
func TestAffineCodecRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	a := randAffine(rng, 2, 3)
	got := decodeAffine(encodeAffine(a))
	if !got.S.Equal(a.S) || !got.H.Equal(a.H) {
		t.Fatal("affine codec round trip failed")
	}
	if !decodeAffine(encodeAffine(Affine{})).IsIdentity() {
		t.Fatal("identity codec round trip failed")
	}
	if decodeSMat(encodeSMat(nil)) != nil {
		t.Fatal("nil S codec round trip failed")
	}
	s := mat.Random(4, 4, rng)
	if !decodeSMat(encodeSMat(s)).Equal(s) {
		t.Fatal("S codec round trip failed")
	}
}

// ComposeH must agree with the H part of ComposeAffine.
func TestComposeHConsistentWithComposeAffine(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m, r := 1+rng.Intn(4), 1+rng.Intn(3)
		a, b := randAffine(rng, m, r), randAffine(rng, m, r)
		full := ComposeAffine(a, b)
		hOnly := ComposeH(a.H, b.S, b.H)
		return full.H.Equal(hOnly)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
