package core

import (
	"math"

	"blocktri/internal/blocktri"
	"blocktri/internal/mat"
)

// EstimateGrowth predicts the per-row growth rate of the transfer-matrix
// recurrence WITHOUT running a factorization: it builds the transfer
// matrices of up to `samples` evenly spaced block rows and estimates
// each one's spectral radius by power iteration, returning the largest.
//
// The prefix products grow roughly like rho^N where rho is the returned
// rate, so the expected RD/ARD relative error is about
// rho^N * 1e-16 — rates near 1 mean the matrix is in recursive
// doubling's stable regime, rates well above 1 mean it is not. The
// estimate is a heuristic (the product of non-commuting matrices can
// deviate from per-factor spectral radii), intended for cheap a-priori
// triage; the authoritative measurement is SolveStats.PrefixGrowth after
// a Factor.
//
// It returns +Inf if a sampled super-diagonal block is singular (the
// formulation does not apply), and 0 for systems with no interior rows
// (N < 2).
func EstimateGrowth(a *blocktri.Matrix, samples int) float64 {
	if a.N < 2 {
		return 0
	}
	if samples < 1 {
		samples = 1
	}
	if samples > a.N-1 {
		samples = a.N - 1
	}
	step := (a.N - 1) / samples
	if step < 1 {
		step = 1
	}
	maxRho := 0.0
	for i := 1; i <= a.N-1; i += step {
		e, err := buildElement(a, i)
		if err != nil {
			return math.Inf(1)
		}
		if rho := spectralRadiusEstimate(e.t, 30); rho > maxRho {
			maxRho = rho
		}
	}
	return maxRho
}

// spectralRadiusEstimate runs iters power iterations on t and returns the
// converged Rayleigh-like ratio ||t*v|| / ||v||. Deterministic start
// vector; renormalized each step.
func spectralRadiusEstimate(t *mat.Matrix, iters int) float64 {
	n := t.Rows
	v := mat.New(n, 1)
	for i := 0; i < n; i++ {
		// Deterministic, non-symmetric start so the iteration does not
		// stall on an invariant subspace.
		v.Set(i, 0, 1+0.37*float64(i%7))
	}
	w := mat.New(n, 1)
	rho := 0.0
	for k := 0; k < iters; k++ {
		mat.Mul(w, t, v)
		norm := mat.NormFrob(w)
		if norm == 0 || math.IsNaN(norm) || math.IsInf(norm, 0) {
			return norm
		}
		rho = norm / mat.NormFrob(v)
		mat.Scale(w, 1/norm)
		v, w = w, v
	}
	return rho
}
