package core

import (
	"errors"
	"fmt"
	"math"

	"blocktri/internal/blocktri"
	"blocktri/internal/mat"
)

// Graceful degradation for singular pivots. The factorization-based solvers
// in this package fail with mat.ErrSingular (zero diagonal pivot) or
// ErrSingularSuper (zero pivot in a super-diagonal block, which recursive
// doubling inverts). Both are exact-zero conditions: the matrix itself may
// still be nonsingular, and even when a pivot is genuinely tiny, a slightly
// perturbed matrix factors fine and serves as a preconditioner for the
// original system. SolveBoosted packages that recovery: shift the diagonal
// by tau, refactor, solve the shifted system, then iteratively refine the
// iterate against the ORIGINAL matrix so the perturbation does not bias the
// answer. The achieved residual is reported so callers can judge the result
// instead of trusting it blindly.

// machEps is the double-precision unit roundoff spacing (2^-52).
const machEps = 0x1p-52

// BoostReport describes what a graceful solve had to do to produce its
// answer.
type BoostReport struct {
	// Boosted is false when the plain solve succeeded and no recovery ran.
	Boosted bool
	// Tau is the diagonal shift of the successful attempt (absolute, not
	// relative; zero when Boosted is false).
	Tau float64
	// Attempts counts boosted factorizations tried, including the one that
	// succeeded.
	Attempts int
	// BoostedSuper reports whether the super-diagonal blocks were shifted
	// too (needed when the failure was ErrSingularSuper).
	BoostedSuper bool
	// Refine describes the refinement pass against the original matrix.
	// FinalResidual is the Frobenius norm of A*x - b for the returned x —
	// the number a caller should inspect before trusting a boosted answer.
	Refine RefineReport
}

// Boostable reports whether err is an exact-singularity failure that a
// diagonal-boosted refactorization can work around.
func Boostable(err error) bool {
	return errors.Is(err, mat.ErrSingular) || errors.Is(err, ErrSingularSuper)
}

// BoostDiagonal returns a copy of a with tau added to every diagonal entry
// of each diagonal block: A + tau*I. When super is true the diagonal
// entries of the super-diagonal blocks are shifted as well, which breaks
// exact singularity of the U_i blocks the recursive doubling solvers
// invert.
func BoostDiagonal(a *blocktri.Matrix, tau float64, super bool) *blocktri.Matrix {
	out := a.Clone()
	for i := 0; i < out.N; i++ {
		d := out.Diag[i]
		for j := 0; j < out.M; j++ {
			d.AddAt(j, j, tau)
		}
		if super && out.Upper[i] != nil {
			u := out.Upper[i]
			for j := 0; j < out.M; j++ {
				u.AddAt(j, j, tau)
			}
		}
	}
	return out
}

// normBlocktri is the Frobenius norm of the full block tridiagonal matrix,
// used to scale the boost so tau is relative to the data.
func normBlocktri(a *blocktri.Matrix) float64 {
	sum := 0.0
	acc := func(m *mat.Matrix) {
		if m == nil {
			return
		}
		v := mat.NormFrob(m)
		sum += v * v
	}
	for i := 0; i < a.N; i++ {
		acc(a.Lower[i])
		acc(a.Diag[i])
		acc(a.Upper[i])
	}
	return math.Sqrt(sum)
}

// maxBoostAttempts bounds the tau escalation ladder. Starting at
// sqrt(eps)*||A|| and multiplying by 1e3 per attempt, four attempts end
// near 1e4*||A|| — far past the point where a shift can still help.
const maxBoostAttempts = 4

// SolveBoosted solves a*x = b with the solver newSolver constructs,
// degrading gracefully when the factorization hits an exactly singular
// block. On a singular failure it refactors A + tau*I (escalating tau from
// sqrt(eps)*||A||_F by 1e3 per attempt), solves the shifted system, and
// refines the iterate against the original matrix for up to refineIters
// corrections. The report carries the shift used and the achieved residual.
// Non-singularity errors — including comm-layer fault errors from a
// distributed solver — pass through unchanged, and if every attempt still
// hits a singular pivot the original error is returned wrapped.
func SolveBoosted(a *blocktri.Matrix, newSolver func(*blocktri.Matrix) Solver, b *mat.Matrix, refineIters int) (*mat.Matrix, BoostReport, error) {
	x, err := newSolver(a).Solve(b)
	if err == nil {
		return x, BoostReport{}, nil
	}
	if !Boostable(err) {
		return nil, BoostReport{}, err
	}
	origErr := err
	norm := normBlocktri(a)
	if norm == 0 {
		norm = 1
	}
	tau := norm * math.Sqrt(machEps)
	super := errors.Is(err, ErrSingularSuper)
	rep := BoostReport{Boosted: true}
	for k := 0; k < maxBoostAttempts; k++ {
		rep.Attempts = k + 1
		rep.Tau = tau
		rep.BoostedSuper = super
		bs := newSolver(BoostDiagonal(a, tau, super))
		xb, berr := bs.Solve(b)
		if berr != nil {
			if !Boostable(berr) {
				return nil, rep, berr
			}
			super = super || errors.Is(berr, ErrSingularSuper)
			tau *= 1e3
			continue
		}
		best, refRep := refineAgainst(a, bs, xb, b, refineIters)
		rep.Refine = refRep
		return best, rep, nil
	}
	return nil, rep, fmt.Errorf("core: diagonal boost exhausted after %d attempts (last tau %.3g): %w",
		rep.Attempts, rep.Tau, origErr)
}

// refineAgainst runs iterative refinement of x0 against matrix a using s —
// a solver for a *different* (perturbed) matrix — as the preconditioner:
//
//	x <- x - s.Solve(a*x - b)
//
// Unlike SolveRefined, the correction solve is inexact by construction
// (s solves the boosted system), so convergence is geometric with ratio
// roughly tau*||A^+||; iteration stops once the residual stops improving,
// keeping the best iterate. A failed correction solve keeps the current
// best instead of discarding the answer.
func refineAgainst(a residualMatrix, s Solver, x0, b *mat.Matrix, maxIters int) (*mat.Matrix, RefineReport) {
	best := x0
	bestNorm := residNorm(a, x0, b)
	rep := RefineReport{InitialResidual: bestNorm, FinalResidual: bestNorm}
	for it := 0; it < maxIters; it++ {
		if bestNorm == 0 {
			break
		}
		r := a.MatVec(best)
		mat.Sub(r, r, b)
		d, err := s.Solve(r)
		if err != nil {
			break
		}
		next := best.Clone()
		mat.AXPY(next, -1, d)
		norm := residNorm(a, next, b)
		if norm >= bestNorm {
			break
		}
		best, bestNorm = next, norm
		rep.Iters++
		rep.FinalResidual = norm
	}
	return best, rep
}
