package core

import (
	"math/rand"
	"testing"

	"blocktri/internal/blocktri"
	"blocktri/internal/comm"
	"blocktri/internal/mat"
)

// The panelized ARD solve phase routes every transfer product through
// MulAddPacked when the (m, k, rhs) shape clears mat.PanelPacked, and falls
// back to the legacy Mul+Add sequence otherwise. These tests pin the two
// parity contracts of that dispatch:
//
//   - RD vs ARD stays BITWISE equal at every panel width, because both
//     solvers resolve each product shape to the same kernel and the packed
//     seed-then-accumulate ordering is IEEE-add-commutative with the legacy
//     Mul-then-Add ordering;
//   - a panelized batch solve agrees with per-column solves only to
//     rounding, because an R-wide panel and an R=1 column dispatch to
//     different kernels with different accumulation widths.

// panelParitySystems builds the systems the parity tests share: a random
// diagonally dominant matrix and an oscillatory workload system, both sized
// so batched panels clear the packed-dispatch gate (M=8 gives the 8x16
// applyT half-products that PanelPacked admits from R=64 up).
func panelParitySystems(rng *rand.Rand) []*blocktri.Matrix {
	return []*blocktri.Matrix{
		blocktri.RandomDiagDominant(64, 8, rng),
		blocktri.Oscillatory(24, 8, rng),
	}
}

// TestPanelizedARDMatchesRDBitwise sweeps the panel widths across the
// packed/legacy dispatch boundary: R=1 and R=2 stay on the legacy per-RHS
// path, R=64 and R=256 run the full packed panel pipeline. Every width must
// reproduce RD's bits exactly.
func TestPanelizedARDMatchesRDBitwise(t *testing.T) {
	rng := rand.New(rand.NewSource(211))
	for si, a := range panelParitySystems(rng) {
		for _, r := range []int{1, 2, 64, 256} {
			b := a.RandomRHS(r, rng)
			xr, err := NewRD(a, Config{World: comm.NewWorld(4)}).Solve(b)
			if err != nil {
				t.Fatal(err)
			}
			xa, err := NewARD(a, Config{World: comm.NewWorld(4)}).Solve(b)
			if err != nil {
				t.Fatal(err)
			}
			if !xr.Equal(xa) {
				t.Errorf("system %d: panelized ARD != RD bitwise at R=%d", si, r)
			}
		}
	}
}

// TestPanelizedMatchesPerColumnSolves checks the panel semantics: column j
// of a batched solve is the solution for column j of the right-hand side.
// The comparison is tolerance-based, not bitwise — a 1-wide column takes
// the gemv path while the panel takes the packed kernel, and the two
// accumulate in different orders.
func TestPanelizedMatchesPerColumnSolves(t *testing.T) {
	rng := rand.New(rand.NewSource(223))
	// Tolerance comparisons need systems whose transfer products stay
	// bounded: at the bitwise test's sizes the random system's growth has
	// amplified roundoff past any meaningful tolerance (RD-family
	// conditioning, not a panel property). A short random system keeps the
	// amplification near 1e-8; the oscillatory family is stable outright.
	systems := []*blocktri.Matrix{
		blocktri.RandomDiagDominant(8, 8, rng),
		blocktri.Oscillatory(24, 8, rng),
	}
	for si, a := range systems {
		s := NewARD(a, Config{World: comm.NewWorld(4)})
		if err := s.Factor(); err != nil {
			t.Fatal(err)
		}
		const r = 64
		b := a.RandomRHS(r, rng)
		xp, err := s.Solve(b)
		if err != nil {
			t.Fatal(err)
		}
		for _, j := range []int{0, 1, r / 2, r - 1} {
			bj := mat.New(b.Rows, 1)
			for i := 0; i < b.Rows; i++ {
				bj.Set(i, 0, b.At(i, j))
			}
			xj, err := s.Solve(bj)
			if err != nil {
				t.Fatal(err)
			}
			col := mat.New(b.Rows, 1)
			for i := 0; i < b.Rows; i++ {
				col.Set(i, 0, xp.At(i, j))
			}
			if !col.EqualApprox(xj, 1e-6) {
				t.Errorf("system %d: panel column %d differs from per-column solve beyond tolerance", si, j)
			}
		}
	}
}

// TestPanelDegenerateSingleRHS pins the degenerate end of the dispatch: a
// 1-wide panel never enters the packed path (gemv owns n==1), and the
// solver still produces an accurate solution there.
func TestPanelDegenerateSingleRHS(t *testing.T) {
	if mat.PanelPacked(8, 16, 1) {
		t.Error("PanelPacked(8, 16, 1) = true; single-RHS solves must stay on the gemv path")
	}
	rng := rand.New(rand.NewSource(227))
	// The oscillatory family keeps transfer growth bounded, so the residual
	// check is meaningful at this size.
	a := blocktri.Oscillatory(24, 8, rng)
	b := a.RandomRHS(1, rng)
	s := NewARD(a, Config{World: comm.NewWorld(4)})
	x, err := s.Solve(b)
	if err != nil {
		t.Fatal(err)
	}
	if rr := a.RelResidual(x, b); rr > solveTol {
		t.Errorf("degenerate R=1 solve: relative residual %v", rr)
	}
}
