package core

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"

	"blocktri/internal/blocktri"
	"blocktri/internal/comm"
	"blocktri/internal/prefix"
)

func TestARDFactorSaveLoadRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(401))
	for _, tc := range []struct{ n, m, r, p int }{
		{1, 3, 2, 1}, {8, 2, 1, 2}, {16, 4, 3, 4}, {13, 3, 2, 5},
	} {
		a := blocktri.Oscillatory(tc.n, tc.m, rng)
		b := a.RandomRHS(tc.r, rng)
		orig := NewARD(a, Config{World: comm.NewWorld(tc.p)})
		want, err := orig.Solve(b)
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if _, err := orig.SaveFactor(&buf); err != nil {
			t.Fatal(err)
		}
		loaded, err := LoadFactor(a, Config{World: comm.NewWorld(tc.p)}, &buf)
		if err != nil {
			t.Fatal(err)
		}
		if !loaded.Factored() {
			t.Fatal("loaded solver not marked factored")
		}
		got, err := loaded.Solve(b)
		if err != nil {
			t.Fatal(err)
		}
		if !got.Equal(want) {
			t.Fatalf("N=%d M=%d P=%d: loaded factor gives different solution", tc.n, tc.m, tc.p)
		}
		if loaded.FactorStats().PrefixGrowth != orig.FactorStats().PrefixGrowth {
			t.Fatal("growth diagnostic not preserved")
		}
	}
}

func TestSaveFactorRunsFactorFirst(t *testing.T) {
	rng := rand.New(rand.NewSource(402))
	a := blocktri.Oscillatory(8, 2, rng)
	ard := NewARD(a, Config{World: comm.NewWorld(2)})
	var buf bytes.Buffer
	n, err := ard.SaveFactor(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if n != int64(buf.Len()) || n == 0 {
		t.Fatalf("byte count %d vs buffer %d", n, buf.Len())
	}
	if !ard.Factored() {
		t.Fatal("SaveFactor should have factored")
	}
}

func TestLoadFactorRejectsMismatches(t *testing.T) {
	rng := rand.New(rand.NewSource(403))
	a := blocktri.Oscillatory(8, 2, rng)
	ard := NewARD(a, Config{World: comm.NewWorld(2)})
	var buf bytes.Buffer
	if _, err := ard.SaveFactor(&buf); err != nil {
		t.Fatal(err)
	}
	saved := buf.Bytes()

	// Wrong world size.
	if _, err := LoadFactor(a, Config{World: comm.NewWorld(3)}, bytes.NewReader(saved)); err == nil {
		t.Fatal("wrong P accepted")
	}
	// Wrong matrix shape.
	other := blocktri.Oscillatory(9, 2, rng)
	if _, err := LoadFactor(other, Config{World: comm.NewWorld(2)}, bytes.NewReader(saved)); err == nil {
		t.Fatal("wrong N accepted")
	}
	// Corrupt magic.
	bad := append([]byte(nil), saved...)
	bad[0] ^= 0xff
	if _, err := LoadFactor(a, Config{World: comm.NewWorld(2)}, bytes.NewReader(bad)); err == nil {
		t.Fatal("corrupt magic accepted")
	}
	// Truncated payload.
	if _, err := LoadFactor(a, Config{World: comm.NewWorld(2)}, bytes.NewReader(saved[:len(saved)/2])); err == nil {
		t.Fatal("truncated payload accepted")
	}
}

// Property: save/load round-trips the factorization bit-exactly for
// arbitrary configurations, verified by solving with fresh right-hand
// sides through both solvers.
func TestARDFactorSaveLoadProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(16)
		m := 1 + rng.Intn(4)
		p := 1 + rng.Intn(5)
		a := blocktri.RandomDiagDominant(n, m, rng)
		orig := NewARD(a, Config{World: comm.NewWorld(p)})
		if err := orig.Factor(); err != nil {
			return false
		}
		var buf bytes.Buffer
		if _, err := orig.SaveFactor(&buf); err != nil {
			return false
		}
		loaded, err := LoadFactor(a, Config{World: comm.NewWorld(p)}, &buf)
		if err != nil {
			return false
		}
		b := a.RandomRHS(1+rng.Intn(3), rng)
		x1, err1 := orig.Solve(b)
		x2, err2 := loaded.Solve(b)
		return err1 == nil && err2 == nil && x1.Equal(x2)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// TestLoadFactorSurvivesCorruption flips bytes at many positions in a
// valid factor file and requires LoadFactor to return an error or a
// loadable state — never panic. (Bit flips in the numeric payload are
// undetectable by design; structural corruption must be caught.)
func TestLoadFactorSurvivesCorruption(t *testing.T) {
	rng := rand.New(rand.NewSource(404))
	a := blocktri.Oscillatory(12, 3, rng)
	ard := NewARD(a, Config{World: comm.NewWorld(3)})
	var buf bytes.Buffer
	if _, err := ard.SaveFactor(&buf); err != nil {
		t.Fatal(err)
	}
	saved := buf.Bytes()
	for trial := 0; trial < 300; trial++ {
		bad := append([]byte(nil), saved...)
		pos := rng.Intn(len(bad))
		bad[pos] ^= byte(1 + rng.Intn(255))
		func() {
			defer func() {
				if p := recover(); p != nil {
					t.Fatalf("corruption at byte %d panicked: %v", pos, p)
				}
			}()
			_, _ = LoadFactor(a, Config{World: comm.NewWorld(3)}, bytes.NewReader(bad))
		}()
	}
	// Truncations at every length must also be panic-free.
	for cut := 0; cut < len(saved); cut += 97 {
		func() {
			defer func() {
				if p := recover(); p != nil {
					t.Fatalf("truncation at %d panicked: %v", cut, p)
				}
			}()
			if _, err := LoadFactor(a, Config{World: comm.NewWorld(3)}, bytes.NewReader(saved[:cut])); err == nil {
				t.Fatalf("truncation at %d accepted", cut)
			}
		}()
	}
}

func TestSaveLoadPreservesSchedule(t *testing.T) {
	// A chain-factored ARD has no Kogge-Stone round snapshots; loading it
	// into a default (Kogge-Stone) config must still replay the chain
	// schedule, or the H prefixes would silently be dropped.
	rng := rand.New(rand.NewSource(405))
	a := blocktri.Oscillatory(16, 3, rng)
	b := a.RandomRHS(2, rng)
	orig := NewARD(a, Config{World: comm.NewWorld(4), Schedule: prefix.Chain})
	want, err := orig.Solve(b)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if _, err := orig.SaveFactor(&buf); err != nil {
		t.Fatal(err)
	}
	// Deliberately load with the default schedule in the config.
	loaded, err := LoadFactor(a, Config{World: comm.NewWorld(4)}, &buf)
	if err != nil {
		t.Fatal(err)
	}
	got, err := loaded.Solve(b)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(want) {
		t.Fatal("loaded chain factorization replayed with the wrong schedule")
	}
}
