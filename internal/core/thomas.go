package core

import (
	"fmt"
	"time"

	"blocktri/internal/blocktri"
	"blocktri/internal/mat"
)

// Thomas is the sequential block Thomas algorithm: block LU factorization
// of the tridiagonal followed by forward/backward substitution. It is the
// serial work-optimal baseline the paper compares against:
//
//	Factor: O(M^3 N)   Solve: O(M^2 N) per right-hand side.
//
// Factorization recurrence (Schur complements down the diagonal):
//
//	Δ_0 = D_0,  Δ_i = D_i - L_i Δ_{i-1}^{-1} U_{i-1}
//
// Thomas requires every Δ_i to be nonsingular, which holds for block
// diagonally dominant systems.
type Thomas struct {
	a     *blocktri.Matrix
	luD   []*mat.LU     // factorizations of Δ_i
	w     []*mat.Matrix // w[i] = Δ_i^{-1} U_i, i = 0..N-2
	ws    *mat.Workspace
	stats SolveStats
}

// NewThomas wraps a; factorization happens lazily on first Solve or an
// explicit Factor call.
func NewThomas(a *blocktri.Matrix) *Thomas {
	return &Thomas{a: a, ws: mat.NewWorkspace()}
}

// Name implements Solver.
func (t *Thomas) Name() string { return "block-thomas" }

// Factored implements Factored.
func (t *Thomas) Factored() bool { return t.luD != nil }

// Stats returns the cost of the most recent Factor or Solve call.
func (t *Thomas) Stats() SolveStats { return t.stats }

// Factor implements Factored: it computes and stores the block LU
// factorization.
func (t *Thomas) Factor() error {
	if t.Factored() {
		return nil
	}
	start := time.Now()
	a := t.a
	n, m := a.N, a.M
	var fc flopCounter
	luD := make([]*mat.LU, n)
	w := make([]*mat.Matrix, n-1)
	delta := a.Diag[0].Clone()
	for i := 0; ; i++ {
		lu, err := mat.Factor(delta)
		if err != nil {
			return fmt.Errorf("core: thomas pivot block %d: %w", i, err)
		}
		fc.add(luFlops(m))
		luD[i] = lu
		if i == n-1 {
			break
		}
		// w[i] = Δ_i^{-1} U_i, then Δ_{i+1} = D_{i+1} - L_{i+1} w[i].
		w[i] = lu.Solve(a.Upper[i])
		fc.add(luSolveFlops(m, m))
		delta = a.Diag[i+1].Clone()
		mat.MulSub(delta, a.Lower[i+1], w[i])
		fc.add(gemmFlops(m, m, m))
	}
	t.luD, t.w = luD, w
	stored := int64(0)
	for range luD {
		stored += 8*int64(m)*int64(m) + 8*int64(m)
	}
	for _, wi := range w {
		stored += matBytes(wi)
	}
	t.stats = SolveStats{Flops: fc.n, MaxRankFlops: fc.n, Wall: time.Since(start), StoredBytes: stored}
	return nil
}

// Solve implements Solver. The result is freshly allocated; batch callers
// should use SolveTo with a reused destination.
func (t *Thomas) Solve(b *mat.Matrix) (*mat.Matrix, error) {
	if err := checkRHS(t.a, b); err != nil {
		return nil, err
	}
	//lint:ignore hotalloc Solve returns a caller-owned result; SolveTo is the reuse path
	x := mat.New(b.Rows, b.Cols)
	if err := t.SolveTo(x, b); err != nil {
		return nil, err
	}
	return x, nil
}

// SolveTo solves A*X = B into the caller-provided x (b's shape, no
// aliasing). Both substitution sweeps run in place on x, so after the
// first call has warmed the view-header arena, SolveTo allocates nothing.
func (t *Thomas) SolveTo(x, b *mat.Matrix) error {
	if err := checkRHS(t.a, b); err != nil {
		return err
	}
	if x.Rows != b.Rows || x.Cols != b.Cols {
		return fmt.Errorf("%w: destination %dx%d for %dx%d right-hand side", ErrShape, x.Rows, x.Cols, b.Rows, b.Cols)
	}
	if err := t.Factor(); err != nil {
		return err
	}
	start := time.Now()
	a := t.a
	n, m, r := a.N, a.M, b.Cols
	ws := t.ws
	ws.Reset()
	var fc flopCounter
	// Forward sweep: y_0 = Δ_0^{-1} b_0; y_i = Δ_i^{-1}(b_i - L_i y_{i-1}),
	// computed in place on x.
	x.CopyFrom(b)
	t.luD[0].SolveInPlace(wsBlockOf(ws, x, m, 0))
	fc.add(luSolveFlops(m, r))
	for i := 1; i < n; i++ {
		yi := wsBlockOf(ws, x, m, i)
		mat.MulSub(yi, a.Lower[i], wsBlockOf(ws, x, m, i-1))
		t.luD[i].SolveInPlace(yi)
		fc.add(gemmFlops(m, m, r) + luSolveFlops(m, r))
	}
	// Backward sweep: x_{N-1} = y_{N-1}; x_i = y_i - w_i x_{i+1},
	// from the bottom up.
	for i := n - 2; i >= 0; i-- {
		mat.MulSub(wsBlockOf(ws, x, m, i), t.w[i], wsBlockOf(ws, x, m, i+1))
		fc.add(gemmFlops(m, m, r))
	}
	t.stats = SolveStats{Flops: fc.n, MaxRankFlops: fc.n, Wall: time.Since(start)}
	return nil
}
