package core

import "blocktri/internal/mat"

// RefineReport describes what iterative refinement achieved.
type RefineReport struct {
	// Iters is the number of corrections that were accepted.
	Iters int
	// InitialResidual and FinalResidual are Frobenius norms of A*x - b
	// before and after refinement.
	InitialResidual float64
	FinalResidual   float64
}

// Improved reports whether refinement reduced the residual at all. A
// false value on a large residual means the base solver has no correct
// digits to refine (for ARD/RD: PrefixGrowth*eps is near or above 1).
func (r RefineReport) Improved() bool { return r.FinalResidual < r.InitialResidual }

// ResidualSolver is the contract required by SolveRefined: a solver whose
// matrix is known so residuals can be formed.
type ResidualSolver interface {
	Solver
	// Matrix returns the system matrix the solver was built for.
	Matrix() residualMatrix
}

// residualMatrix is the minimal matrix interface refinement needs.
type residualMatrix interface {
	MatVec(x *mat.Matrix) *mat.Matrix
}

// Matrix implements ResidualSolver for ARD.
func (s *ARD) Matrix() residualMatrix { return s.a }

// Matrix implements ResidualSolver for RD.
func (rd *RD) Matrix() residualMatrix { return rd.a }

// Matrix implements ResidualSolver for Spike.
func (s *Spike) Matrix() residualMatrix { return s.a }

// Matrix implements ResidualSolver for Thomas.
func (t *Thomas) Matrix() residualMatrix { return t.a }

// SolveRefined solves A*x = b with s and then applies up to maxIters
// steps of iterative refinement:
//
//	x <- x + s.Solve(b - A*x)
//
// stopping early once the residual norm stops decreasing (keeping the
// best iterate). Each step costs one extra solve plus one block
// tridiagonal mat-vec — for a factored solver such as ARD that is
// O(M^2 R (N/P + log P)), so refinement multiplies the cheap phase only.
//
// Refinement converges when the base solver's effective relative error is
// below ~1/2; for ARD/RD that means PrefixGrowth*eps << 1. Beyond that
// the corrections make no progress; the report's Improved method exposes
// this so callers can fall back to a stable solver.
func SolveRefined(s ResidualSolver, b *mat.Matrix, maxIters int) (*mat.Matrix, RefineReport, error) {
	x, err := s.Solve(b)
	if err != nil {
		return nil, RefineReport{}, err
	}
	a := s.Matrix()
	best := x
	bestNorm := residNorm(a, x, b)
	rep := RefineReport{InitialResidual: bestNorm, FinalResidual: bestNorm}
	for it := 0; it < maxIters; it++ {
		if bestNorm == 0 {
			break
		}
		r := a.MatVec(best)
		mat.Sub(r, r, b) // r = A*x - b
		d, err := s.Solve(r)
		if err != nil {
			return nil, rep, err
		}
		next := best.Clone()
		mat.AXPY(next, -1, d)
		norm := residNorm(a, next, b)
		if norm >= bestNorm {
			break
		}
		best, bestNorm = next, norm
		rep.Iters++
		rep.FinalResidual = norm
	}
	return best, rep, nil
}

func residNorm(a residualMatrix, x, b *mat.Matrix) float64 {
	r := a.MatVec(x)
	mat.Sub(r, r, b)
	return mat.NormFrob(r)
}
