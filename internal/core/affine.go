// Package core implements the paper's solvers for block tridiagonal
// systems: the sequential block Thomas algorithm and block cyclic
// reduction as baselines, the classic recursive doubling (RD) algorithm,
// and the paper's contribution, the accelerated recursive doubling (ARD)
// algorithm that separates the matrix-dependent prefix computation from
// the right-hand-side-dependent work so that solving with R right-hand
// sides costs O(M^3 (N/P + log P)) once plus O(M^2 (N/P + log P)) per
// right-hand side, an O(R) improvement over RD's per-solve O(M^3) cost.
//
// All solvers accept stacked multi-right-hand-side matrices: b is
// (N*M) x R with block row i occupying rows [i*M, (i+1)*M).
package core

import (
	"fmt"

	"blocktri/internal/comm"
	"blocktri/internal/mat"
)

// Affine is an element of the scan semigroup used by recursive doubling:
// the affine map y -> S*y + H acting on the stacked state
// y_i = [x_i ; x_{i-1}] (2M rows). H carries one column per right-hand
// side. A nil S (with nil H) is the identity element, used by ranks that
// own no elements.
type Affine struct {
	S *mat.Matrix // 2M x 2M, nil for the identity
	H *mat.Matrix // 2M x R, nil for the identity
}

// IsIdentity reports whether a is the identity element.
func (a Affine) IsIdentity() bool { return a.S == nil }

// ComposeAffine returns later ∘ earlier: applying earlier first, then
// later. S = Sl*Se and H = Sl*He + Hl. Either operand may be the identity.
func ComposeAffine(earlier, later Affine) Affine {
	if earlier.IsIdentity() {
		return later
	}
	if later.IsIdentity() {
		return earlier
	}
	s := mat.New(later.S.Rows, earlier.S.Cols)
	mat.Mul(s, later.S, earlier.S)
	h := mat.New(later.S.Rows, earlier.H.Cols)
	mat.Mul(h, later.S, earlier.H)
	mat.Add(h, h, later.H)
	return Affine{S: s, H: h}
}

// ComposeH computes only the H part of later ∘ earlier when later's S is
// already known (the ARD solve-phase combine): S_later*H_earlier + H_later.
// laterS must be non-nil; earlierH may be nil (identity), in which case
// laterH is returned unchanged (shared, not copied).
func ComposeH(earlierH, laterS, laterH *mat.Matrix) *mat.Matrix {
	if earlierH == nil {
		return laterH
	}
	h := mat.New(laterS.Rows, earlierH.Cols)
	mat.Mul(h, laterS, earlierH)
	mat.Add(h, h, laterH)
	return h
}

// composeHWS is ComposeH with the result checked out of a workspace. The
// operations (and therefore the bits) are identical; only the storage
// discipline differs. A valid sp is laterS prepacked (ARD's factor phase
// packs every stored S once); the packed branch seeds the result with
// laterH and adds the product total once, which rounds identically to the
// fallback's product-then-add because IEEE addition commutes.
//
//perf:hotpath
func composeHWS(ws *mat.Workspace, earlierH, laterS *mat.Matrix, sp mat.PackedA, laterH *mat.Matrix, bs []float64) *mat.Matrix {
	if earlierH == nil {
		return laterH
	}
	h := ws.GetNoClear(laterS.Rows, earlierH.Cols)
	if sp.Valid() && mat.PanelPacked(laterS.Rows, laterS.Cols, earlierH.Cols) {
		h.CopyFrom(laterH)
		mat.MulAddPacked(h, sp, earlierH, bs)
		return h
	}
	mat.Mul(h, laterS, earlierH)
	mat.Add(h, h, laterH)
	return h
}

// affineCodec serializes Affine values for cross-rank scans. The identity
// is a single 0 flag word.
func encodeAffine(a Affine) []float64 {
	if a.IsIdentity() {
		return []float64{0}
	}
	payload := comm.EncodeMatrices(a.S, a.H)
	out := make([]float64, 0, 1+len(payload))
	out = append(out, 1)
	return append(out, payload...)
}

func decodeAffine(p []float64) Affine {
	if len(p) == 0 {
		comm.Throw(fmt.Errorf("core: empty affine payload: %w", comm.ErrMalformedPayload))
	}
	if p[0] == 0 {
		return Affine{}
	}
	ms := comm.DecodeMatrices(p[1:])
	if len(ms) != 2 {
		comm.Throw(fmt.Errorf("core: affine payload carries %d matrices, want 2: %w",
			len(ms), comm.ErrMalformedPayload))
	}
	return Affine{S: ms[0], H: ms[1]}
}

// matOrIdentity serializes a bare S matrix (ARD factor phase) with the
// same identity convention.
func encodeSMat(s *mat.Matrix) []float64 {
	if s == nil {
		return []float64{0}
	}
	out := make([]float64, 0, 3+s.Rows*s.Cols)
	out = append(out, 1)
	return append(out, comm.EncodeMatrix(s)...)
}

func decodeSMat(p []float64) *mat.Matrix {
	if len(p) == 0 {
		comm.Throw(fmt.Errorf("core: empty S payload: %w", comm.ErrMalformedPayload))
	}
	if p[0] == 0 {
		return nil
	}
	return comm.DecodeMatrix(p[1:])
}

// packHMat packs a bare H panel (ARD solve phase, nil = identity) into a
// pooled comm buffer in the same [flag, rows, cols, data...] wire format as
// encodeSMat, for the caller to hand to SendOwned. Assembling the payload
// in the comm buffer lets each scan round move its whole 2M x R panel in
// one message with a single copy — no workspace-scratch staging and no
// second copy inside Send. The send stays at the call site so the rank/tag
// pairing of the butterfly remains visible in the scan loop itself.
//
//perf:hotpath
func packHMat(c *comm.Comm, h *mat.Matrix) []float64 {
	if h == nil {
		buf := c.PayloadBuf(1)
		buf[0] = 0
		return buf
	}
	buf := c.PayloadBuf(3 + h.Rows*h.Cols)
	buf[0], buf[1], buf[2] = 1, float64(h.Rows), float64(h.Cols)
	k := 3
	//lint:ignore perfbce the source and destination window checks per row are beyond the prover; buf is sized 3+Rows*Cols up front and k advances by Cols
	//perf:hotloop
	for i := 0; i < h.Rows; i++ {
		copy(buf[k:k+h.Cols], h.Data[i*h.Stride:i*h.Stride+h.Cols])
		k += h.Cols
	}
	return buf
}

// decodeHMatWS decodes an encodeHMatWS/encodeSMat payload into workspace
// storage (nil for the identity flag). It copies, so the caller may Release
// the payload afterwards.
func decodeHMatWS(ws *mat.Workspace, p []float64) *mat.Matrix {
	if len(p) == 0 {
		comm.Throw(fmt.Errorf("core: empty H payload: %w", comm.ErrMalformedPayload))
	}
	if p[0] == 0 {
		return nil
	}
	if len(p) < 3 {
		comm.Throw(fmt.Errorf("core: H payload of %d floats has no header: %w",
			len(p), comm.ErrMalformedPayload))
	}
	r, c := int(p[1]), int(p[2])
	if r < 0 || c < 0 || len(p) != 3+r*c {
		comm.Throw(fmt.Errorf("core: H payload header says %dx%d, body has %d floats: %w",
			r, c, len(p)-3, comm.ErrMalformedPayload))
	}
	h := ws.GetNoClear(r, c)
	copy(h.Data, p[3:])
	return h
}

// composeS returns the S part of later ∘ earlier where either side may be
// nil (identity): Sl*Se.
func composeS(earlier, later *mat.Matrix) *mat.Matrix {
	if earlier == nil {
		return later
	}
	if later == nil {
		return earlier
	}
	s := mat.New(later.Rows, earlier.Cols)
	mat.Mul(s, later, earlier)
	return s
}
