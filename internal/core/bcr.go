package core

import (
	"fmt"
	"time"

	"blocktri/internal/blocktri"
	"blocktri/internal/mat"
)

// BCR is sequential block cyclic reduction, the other classic
// parallel-in-structure algorithm for block tridiagonal systems and a
// standard comparator for recursive doubling. Each of ~log2(N) levels
// eliminates the odd-position block rows, halving the system; back
// substitution then recovers the eliminated unknowns level by level.
//
// Work is O(M^3 N) per solve (like Thomas, with a larger constant); the
// level structure gives the O(log N) span a parallel implementation
// exploits. Cyclic reduction requires the diagonal blocks to remain
// nonsingular at every level, which holds for block diagonally dominant
// systems.
type BCR struct {
	a     *blocktri.Matrix
	ws    *mat.Workspace
	stats SolveStats
}

// NewBCR wraps a. BCR performs the full reduction on every Solve call (no
// factor/solve split), matching its classic formulation; the working
// matrices of every level live in a reused arena.
func NewBCR(a *blocktri.Matrix) *BCR {
	return &BCR{a: a, ws: mat.NewWorkspace()}
}

// Name implements Solver.
func (s *BCR) Name() string { return "block-cyclic-reduction" }

// Stats returns the cost of the most recent Solve call.
func (s *BCR) Stats() SolveStats { return s.stats }

// Solve implements Solver.
func (s *BCR) Solve(b *mat.Matrix) (*mat.Matrix, error) {
	if err := checkRHS(s.a, b); err != nil {
		return nil, err
	}
	start := time.Now()
	a := s.a
	n, m, r := a.N, a.M, b.Cols
	ws := s.ws
	ws.Reset()
	var fc flopCounter
	// Copy the bands into arena-backed working arrays (the reduction
	// mutates them).
	ls := make([]*mat.Matrix, n)
	ds := make([]*mat.Matrix, n)
	us := make([]*mat.Matrix, n)
	bs := make([]*mat.Matrix, n)
	for i := 0; i < n; i++ {
		ds[i] = ws.CloneOf(a.Diag[i])
		if a.Lower[i] != nil {
			ls[i] = ws.CloneOf(a.Lower[i])
		}
		if a.Upper[i] != nil {
			us[i] = ws.CloneOf(a.Upper[i])
		}
		bs[i] = ws.CloneOf(wsBlockOf(ws, b, m, i))
	}
	xs, err := bcrSolveLevel(ws, ls, ds, us, bs, m, r, 0, &fc)
	if err != nil {
		return nil, err
	}
	//lint:ignore hotalloc Solve returns a caller-owned result matrix
	x := mat.New(n*m, r)
	for i := 0; i < n; i++ {
		wsBlockOf(ws, x, m, i).CopyFrom(xs[i])
	}
	s.stats = SolveStats{Flops: fc.n, MaxRankFlops: fc.n, Wall: time.Since(start)}
	return x, nil
}

// bcrSolveLevel reduces one level of cyclic reduction and recurses on the
// even-position rows, then back-substitutes the odd-position unknowns. All
// level-local matrices are checked out of ws, whose lifetime spans the whole
// recursion (parents read children's results, so nothing can be reset
// per level).
func bcrSolveLevel(ws *mat.Workspace, ls, ds, us, bs []*mat.Matrix, m, r, level int, fc *flopCounter) ([]*mat.Matrix, error) {
	n := len(ds)
	if n == 1 {
		lu, err := ws.LU(ds[0])
		if err != nil {
			return nil, fmt.Errorf("core: bcr level %d: %w", level, err)
		}
		fc.add(luFlops(m) + luSolveFlops(m, r))
		x0 := ws.GetNoClear(bs[0].Rows, bs[0].Cols)
		lu.SolveTo(x0, bs[0])
		return []*mat.Matrix{x0}, nil
	}

	// Factor the odd-position diagonals and precompute D^{-1}L, D^{-1}U,
	// D^{-1}b for each odd row.
	type oddRow struct {
		invL, invU, invB *mat.Matrix
	}
	odd := make([]oddRow, n)
	for j := 1; j < n; j += 2 {
		lu, err := ws.LU(ds[j])
		if err != nil {
			return nil, fmt.Errorf("core: bcr level %d row %d: %w", level, j, err)
		}
		fc.add(luFlops(m))
		var o oddRow
		if ls[j] != nil {
			o.invL = ws.GetNoClear(m, m)
			lu.SolveTo(o.invL, ls[j])
			fc.add(luSolveFlops(m, m))
		}
		if us[j] != nil {
			o.invU = ws.GetNoClear(m, m)
			lu.SolveTo(o.invU, us[j])
			fc.add(luSolveFlops(m, m))
		}
		o.invB = ws.GetNoClear(m, r)
		lu.SolveTo(o.invB, bs[j])
		fc.add(luSolveFlops(m, r))
		odd[j] = o
	}

	// Build the reduced system on the even positions.
	ne := (n + 1) / 2
	nls := make([]*mat.Matrix, ne)
	nds := make([]*mat.Matrix, ne)
	nus := make([]*mat.Matrix, ne)
	nbs := make([]*mat.Matrix, ne)
	for k := 0; k < ne; k++ {
		j := 2 * k
		nd := ws.CloneOf(ds[j])
		nb := ws.CloneOf(bs[j])
		if j-1 >= 0 && ls[j] != nil {
			o := odd[j-1]
			if o.invU != nil {
				mat.MulSub(nd, ls[j], o.invU)
				fc.add(gemmFlops(m, m, m))
			}
			mat.MulSub(nb, ls[j], o.invB)
			fc.add(gemmFlops(m, m, r))
			if o.invL != nil {
				nl := ws.Get(m, m) // zeroed: MulSub accumulates into it
				mat.MulSub(nl, ls[j], o.invL)
				fc.add(gemmFlops(m, m, m))
				nls[k] = nl
			}
		}
		if j+1 < n && us[j] != nil {
			o := odd[j+1]
			if o.invL != nil {
				mat.MulSub(nd, us[j], o.invL)
				fc.add(gemmFlops(m, m, m))
			}
			mat.MulSub(nb, us[j], o.invB)
			fc.add(gemmFlops(m, m, r))
			if o.invU != nil {
				nu := ws.Get(m, m) // zeroed: MulSub accumulates into it
				mat.MulSub(nu, us[j], o.invU)
				fc.add(gemmFlops(m, m, m))
				nus[k] = nu
			}
		}
		nds[k], nbs[k] = nd, nb
	}

	xe, err := bcrSolveLevel(ws, nls, nds, nus, nbs, m, r, level+1, fc)
	if err != nil {
		return nil, err
	}

	// Back substitution: x_j (odd) = D_j^{-1}(b_j - L_j x_{j-1} - U_j x_{j+1}),
	// using the already-computed D^{-1} products:
	// x_j = invB - invL x_{j-1} - invU x_{j+1}.
	xs := make([]*mat.Matrix, n)
	for k := 0; k < ne; k++ {
		xs[2*k] = xe[k]
	}
	for j := 1; j < n; j += 2 {
		o := odd[j]
		xj := ws.CloneOf(o.invB)
		if o.invL != nil {
			mat.MulSub(xj, o.invL, xs[j-1])
			fc.add(gemmFlops(m, m, r))
		}
		if j+1 < n && o.invU != nil {
			mat.MulSub(xj, o.invU, xs[j+1])
			fc.add(gemmFlops(m, m, r))
		}
		xs[j] = xj
	}
	return xs, nil
}
