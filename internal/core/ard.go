package core

import (
	"fmt"
	"time"

	"blocktri/internal/blocktri"
	"blocktri/internal/comm"
	"blocktri/internal/mat"
	"blocktri/internal/prefix"
)

// ARD is the accelerated recursive doubling solver — the paper's
// contribution. It splits the computation that classic RD repeats on every
// solve into:
//
//   - Factor, once per matrix: build the 2M x 2M transfer matrices, run
//     the local and cross-rank scans on their matrix halves, and store
//     every intermediate the right-hand-side path will need — the per-rank
//     local total S, the per-round Kogge-Stone partial products, the final
//     exclusive prefix S, the LU factors of each super-diagonal block, and
//     the factored M x M reduced system. Cost O(M^3 (N/P + log P)).
//
//   - Solve, per right-hand side (batch): only the vector halves move:
//     building F costs O(M^2 R) per block row, every scan combine is a
//     stored-matrix times vector-block product, and each Kogge-Stone round
//     exchanges 2M*R words instead of (2M)^2 + 2M*R. Cost
//     O(M^2 R (N/P + log P)).
//
// Solving with R right-hand sides therefore costs one M^3 term plus R
// M^2 terms, versus RD's R separate M^3 terms — the O(R) improvement the
// paper reports (saturating at O(M) once R grows past the block size).
//
// ARD's solve phase replays the factor phase's Kogge-Stone schedule
// exactly, so given the same inputs ARD(Factor+Solve) and RD produce
// bit-identical solutions.
type ARD struct {
	a     *blocktri.Matrix
	world *comm.World
	sched prefix.Schedule

	factored    bool
	rk          []*ardRankState // per-rank factor state
	luRm        *mat.LU         // factored reduced system (rank P-1)
	growth      float64         // prefix growth diagnostic from Factor
	factorStats SolveStats
	solveStats  SolveStats

	// negDiagPack/negLowerPack hold -D_{N-1} and -L_{N-1} prepacked with
	// alpha = -1 for the reducedRHS subtractions, completing the set of
	// factor-time packs (see buildPacks) that turn the whole solve phase
	// into packed panel products.
	negDiagPack  mat.PackedA
	negLowerPack mat.PackedA

	// Persistent solve-dispatch state, built once by Factor so that SolveTo
	// performs no heap allocation: the per-rank flop counters and a reusable
	// Run body reading the current arguments from solveB/solveX.
	perRank   []int64
	solveB    *mat.Matrix
	solveX    *mat.Matrix
	solveBody func(c *comm.Comm)
}

// ardRound records one Kogge-Stone round's entry values from the factor
// phase, consumed by the solve-phase replay. The packs mirror preS/accS so
// each replay combine is one packed panel product.
type ardRound struct {
	dist     int
	preS     *mat.Matrix // exclusive-prefix S at round entry (nil = identity)
	accS     *mat.Matrix // inclusive-aggregate S at round entry (nil = identity)
	preSPack mat.PackedA
	accSPack mat.PackedA
}

// ardRankState is everything one rank stores between Factor and Solve.
type ardRankState struct {
	lo, hi, first int
	elems         []element   // T matrices + U factorizations
	localTotalS   *mat.Matrix // S of the local reduce (nil if no elements)
	rounds        []ardRound
	piS           *mat.Matrix // final exclusive cross-rank prefix S (nil = identity)

	// Packed images of the stored matrices, built by buildPacks so the
	// solve phase multiplies prepacked panels instead of repacking (or
	// falling to the unpacked kernel) on every call.
	localTotalSPack mat.PackedA
	piSLeftPack     mat.PackedA // piS[:, 0:M], the applyPrefixState operand

	// ws is the rank's solve-phase scratch arena; fs holds the per-element
	// F vectors of the solve in flight (arena-backed, rewritten per solve).
	// After the arena warms up to one solve's high-water mark, SolveTo
	// allocates nothing.
	ws *mat.Workspace
	fs []*mat.Matrix
}

// NewARD returns an accelerated recursive doubling solver for a over
// cfg's world. cfg.Schedule selects the cross-rank scan: KoggeStone (the
// default, the paper's recursive doubling pattern) or Chain (the
// sequential-pipeline ablation baseline); BrentKung is not replayable in
// the solve phase and falls back to KoggeStone.
func NewARD(a *blocktri.Matrix, cfg Config) *ARD {
	sched := cfg.Schedule
	if sched != prefix.Chain {
		sched = prefix.KoggeStone
	}
	return &ARD{a: a, world: cfg.world(), sched: sched}
}

// Name implements Solver.
func (s *ARD) Name() string { return "accelerated-recursive-doubling" }

// Factored implements Factored.
func (s *ARD) Factored() bool { return s.factored }

// FactorStats returns the cost of the Factor call.
func (s *ARD) FactorStats() SolveStats { return s.factorStats }

// Stats returns the cost of the most recent Solve call.
func (s *ARD) Stats() SolveStats { return s.solveStats }

// Factor implements Factored: the once-per-matrix O(M^3 (N/P + log P))
// precomputation.
func (s *ARD) Factor() error {
	if s.factored {
		return nil
	}
	start := time.Now()
	a := s.a
	if a.N == 1 {
		lu, err := mat.Factor(a.Diag[0])
		if err != nil {
			return err
		}
		s.luRm = lu
		s.factored = true
		s.factorStats = SolveStats{Flops: luFlops(a.M), MaxRankFlops: luFlops(a.M), Wall: time.Since(start)}
		return nil
	}
	w := s.world
	w.ResetTotals()
	s.rk = make([]*ardRankState, w.P)
	perRank := make([]int64, w.P)
	var es errSlot
	runErr := w.Run(func(c *comm.Comm) {
		perRank[c.Rank()] = s.factorRank(c, &es)
	})
	if err := es.get(); err != nil {
		s.rk = nil
		return err
	}
	if runErr != nil {
		s.rk = nil
		return runErr
	}
	s.buildPacks()
	s.factored = true
	s.factorStats = SolveStats{
		Comm:         w.TotalStats(),
		MaxSimComm:   w.MaxSimCommTime(),
		Wall:         time.Since(start),
		PrefixGrowth: s.growth,
		StoredBytes:  s.storedBytes(),
	}
	s.factorStats.mergeRankFlops(perRank)
	return nil
}

// buildPacks assembles the packed images of every stored factor matrix the
// solve phase multiplies: each element's [TL TR] top half, the local scan
// totals, the per-round Kogge-Stone snapshots, the exclusive prefix's left
// half, and the negated last block row. Packing here — once per matrix,
// after Factor or LoadFactor — leaves the per-solve cost at packing the
// right-hand-side panel alone.
func (s *ARD) buildPacks() {
	a := s.a
	m := a.M
	for _, st := range s.rk {
		if st == nil {
			continue
		}
		for k := range st.elems {
			e := &st.elems[k]
			e.tPack = mat.NewPackedA(1, e.t.View(0, 0, m, 2*m))
		}
		if st.localTotalS != nil {
			st.localTotalSPack = mat.NewPackedA(1, st.localTotalS)
		}
		for k := range st.rounds {
			rd := &st.rounds[k]
			if rd.preS != nil {
				rd.preSPack = mat.NewPackedA(1, rd.preS)
			}
			if rd.accS != nil {
				rd.accSPack = mat.NewPackedA(1, rd.accS)
			}
		}
		if st.piS != nil {
			st.piSLeftPack = mat.NewPackedA(1, st.piS.View(0, 0, 2*m, m))
		}
	}
	last := a.N - 1
	s.negDiagPack = mat.NewPackedA(-1, a.Diag[last])
	if a.Lower[last] != nil {
		s.negLowerPack = mat.NewPackedA(-1, a.Lower[last])
	}
}

// storedBytes totals the factor-phase state retained across solves: the
// per-element transfer matrices and U factorizations, the local scan
// totals, the per-round Kogge-Stone snapshots, the exclusive prefixes,
// and the reduced-system factorization.
func (s *ARD) storedBytes() int64 {
	var total int64
	m := int64(s.a.M)
	for _, st := range s.rk {
		if st == nil {
			continue
		}
		for _, e := range st.elems {
			total += matBytes(e.t)
			total += 8*m*m + 8*m // LU factors + pivots of U
		}
		total += matBytes(st.localTotalS) + matBytes(st.piS)
		for _, rd := range st.rounds {
			total += matBytes(rd.preS) + matBytes(rd.accS)
		}
	}
	if s.luRm != nil {
		total += 8*m*m + 8*m
	}
	return total
}

func (s *ARD) factorRank(c *comm.Comm, es *errSlot) int64 {
	a := s.a
	r, p := c.Rank(), c.Size()
	m := a.M
	lo, hi := PartRange(a.N, p, r)
	first := lo
	if first < 1 {
		first = 1
	}
	st := &ardRankState{lo: lo, hi: hi, first: first, ws: mat.NewWorkspace()}
	s.rk[r] = st
	var fc flopCounter

	// Local elements and the matrix-only local scan total.
	var buildErr error
	for i := first; i < hi; i++ {
		e, err := buildElement(a, i)
		if err != nil {
			buildErr = err
			break
		}
		fc.add(luFlops(m) + luSolveFlops(m, m))
		if a.Lower[i-1] != nil {
			fc.add(luSolveFlops(m, m))
		}
		st.elems = append(st.elems, e)
		if st.localTotalS != nil {
			fc.add(gemmFlops(2*m, 2*m, 2*m))
		}
		st.localTotalS = composeS(st.localTotalS, e.t)
	}
	st.fs = make([]*mat.Matrix, len(st.elems))
	if buildErr != nil {
		es.set(buildErr)
	}
	if !agreeOK(c, buildErr == nil) {
		return fc.n
	}

	// Cross-rank exclusive scan on S. The Kogge-Stone path records the
	// entry values of every round so Solve can replay the same combines on
	// the vector halves; the chain path needs no per-round state (the
	// solve replay recombines with the stored local total only).
	if s.sched == prefix.Chain {
		var preS *mat.Matrix
		if r > 0 {
			preS = decodeSMat(c.Recv(r-1, tagARDFactorScan))
		}
		if r < p-1 {
			inc := st.localTotalS
			if preS != nil && st.localTotalS != nil {
				fc.add(gemmFlops(2*m, 2*m, 2*m))
			}
			inc = composeS(preS, inc)
			c.Send(r+1, tagARDFactorScan, encodeSMat(inc))
		}
		st.piS = preS
	} else {
		accS := st.localTotalS
		var preS *mat.Matrix
		for dist := 1; dist < p; dist <<= 1 {
			st.rounds = append(st.rounds, ardRound{dist: dist, preS: preS, accS: accS})
			if r+dist < p {
				c.Send(r+dist, tagARDFactorScan, encodeSMat(accS))
			}
			if r-dist >= 0 {
				recvS := decodeSMat(c.Recv(r-dist, tagARDFactorScan))
				if recvS != nil {
					if preS != nil {
						fc.add(gemmFlops(2*m, 2*m, 2*m))
					}
					preS = composeS(recvS, preS)
					if accS != nil {
						fc.add(gemmFlops(2*m, 2*m, 2*m))
					}
					accS = composeS(recvS, accS)
				}
			}
		}
		st.piS = preS
	}

	// Reduced system on the last rank: factor it once.
	factorOK := true
	if r == p-1 {
		totalS := composeS(st.piS, st.localTotalS)
		if st.piS != nil {
			fc.add(gemmFlops(2*m, 2*m, 2*m))
		}
		s.growth = mat.NormFrob(totalS)
		rm := reducedMatrix(a, totalS)
		fc.add(2 * gemmFlops(m, m, m))
		lu, err := mat.Factor(rm)
		if err != nil {
			es.set(err)
			factorOK = false
		} else {
			fc.add(luFlops(m))
			s.luRm = lu
		}
	}
	if !agreeOK(c, factorOK) {
		return fc.n
	}
	return fc.n
}

// Solve implements Solver: the per-right-hand-side O(M^2 R (N/P + log P))
// phase. It factors on first use. The result is freshly allocated; batch
// callers that solve repeatedly should use SolveTo with a reused
// destination, which allocates nothing once the per-rank arenas are warm.
func (s *ARD) Solve(b *mat.Matrix) (*mat.Matrix, error) {
	if err := checkRHS(s.a, b); err != nil {
		return nil, err
	}
	//lint:ignore hotalloc Solve returns a caller-owned result; SolveTo is the reuse path
	x := mat.New(s.a.N*s.a.M, b.Cols)
	if err := s.SolveTo(x, b); err != nil {
		return nil, err
	}
	return x, nil
}

// SolveTo solves A*X = B into the caller-provided x, which must have b's
// shape and must not alias b. It factors on first use. After a warm-up
// solve has grown the per-rank workspace arenas and the comm layer's buffer
// pools to their high-water marks, SolveTo performs no heap allocation.
func (s *ARD) SolveTo(x, b *mat.Matrix) error {
	if err := checkRHS(s.a, b); err != nil {
		return err
	}
	if x.Rows != b.Rows || x.Cols != b.Cols {
		return fmt.Errorf("%w: destination %dx%d for %dx%d right-hand side", ErrShape, x.Rows, x.Cols, b.Rows, b.Cols)
	}
	if err := s.Factor(); err != nil {
		return err
	}
	start := time.Now()
	a := s.a
	if a.N == 1 {
		s.luRm.SolveTo(x, b)
		s.solveStats = SolveStats{Flops: luSolveFlops(a.M, b.Cols), MaxRankFlops: luSolveFlops(a.M, b.Cols), Wall: time.Since(start)}
		return nil
	}
	w := s.world
	w.ResetTotals()
	if s.solveBody == nil {
		// Built once (also after LoadFactor, which bypasses Factor) so the
		// steady-state dispatch allocates neither slices nor closures.
		s.perRank = make([]int64, w.P)
		s.solveBody = func(c *comm.Comm) {
			s.perRank[c.Rank()] = s.solveRank(c, s.solveB, s.solveX)
		}
	}
	s.solveB, s.solveX = b, x
	runErr := w.Run(s.solveBody)
	s.solveB, s.solveX = nil, nil
	if runErr != nil {
		return runErr
	}
	s.solveStats = SolveStats{
		Comm:         w.TotalStats(),
		MaxSimComm:   w.MaxSimCommTime(),
		Wall:         time.Since(start),
		PrefixGrowth: s.growth,
	}
	s.solveStats.mergeRankFlops(s.perRank)
	return nil
}

func (s *ARD) solveRank(c *comm.Comm, b, x *mat.Matrix) int64 {
	a := s.a
	r, p := c.Rank(), c.Size()
	m, rhs := a.M, b.Cols
	st := s.rk[r]
	ws := st.ws
	if ws == nil { // rank state restored by LoadFactor rather than Factor
		//lint:ignore hotalloc one-time lazy init for a LoadFactor-restored rank state
		ws = mat.NewWorkspace()
		st.ws = ws
		st.fs = make([]*mat.Matrix, len(st.elems))
	}
	ws.Reset()
	var fc flopCounter

	// One panel-pack scratch serves every packed product of this solve:
	// the largest right-hand operand anywhere in the phase is a 2M x R
	// panel, and MulAddPacked overwrites the scratch per call.
	bs := ws.Floats(mat.PackBLen(2*m, rhs))

	// Build the F vectors for this right-hand side and fold them into the
	// local total H using the stored transfer matrices. The fold ping-pongs
	// between two arena buffers and applies T through its [[TL TR],[I 0]]
	// block structure: the solve phase is O(M^2) work per element, so both
	// allocation and the dense 2M x 2M product would dominate.
	fs := st.fs
	hbuf := [2]*mat.Matrix{ws.GetNoClear(2*m, rhs), ws.GetNoClear(2*m, rhs)}
	hcur := 0
	var localTotalH *mat.Matrix
	for k, e := range st.elems {
		fs[k] = e.buildFInto(ws, m, wsBlockOf(ws, b, m, e.idx-1))
		fc.add(luSolveFlops(m, rhs))
		if localTotalH == nil {
			localTotalH = fs[k]
			continue
		}
		fc.add(gemmFlops(2*m, 2*m, rhs) + addFlops(2*m, rhs))
		dst := hbuf[hcur]
		hcur ^= 1
		applyT(ws, e.t, e.tPack, localTotalH, fs[k], dst, m, bs)
		localTotalH = dst
	}

	// Replay the scan on the vector halves only. Each round moves its whole
	// panel in one pooled message (packHMat builds the payload in a comm
	// buffer; received buffers go back to the pool once decoded).
	var preH *mat.Matrix
	if s.sched == prefix.Chain {
		if r > 0 {
			payload := c.Recv(r-1, tagARDSolveScan)
			preH = decodeHMatWS(ws, payload)
			c.Release(payload)
		}
		if r < p-1 {
			// Inclusive H: combine(pre, local).H = localTotalS*preH + localTotalH.
			incH := localTotalH
			if preH != nil {
				if st.localTotalS != nil {
					fc.add(gemmFlops(2*m, 2*m, rhs) + addFlops(2*m, rhs))
					incH = composeHWS(ws, preH, st.localTotalS, st.localTotalSPack, localTotalH, bs)
				} else {
					incH = preH
				}
			}
			c.SendOwned(r+1, tagARDSolveScan, packHMat(c, incH))
		}
		return s.solveFinish(c, b, x, st, localTotalH, preH, bs, &fc)
	}
	accH := localTotalH
	for _, round := range st.rounds { // Kogge-Stone replay
		if r+round.dist < p {
			c.SendOwned(r+round.dist, tagARDSolveScan, packHMat(c, accH))
		}
		if r-round.dist >= 0 {
			payload := c.Recv(r-round.dist, tagARDSolveScan)
			recvH := decodeHMatWS(ws, payload)
			c.Release(payload)
			if recvH != nil {
				if round.preS == nil {
					preH = recvH
				} else {
					fc.add(gemmFlops(2*m, 2*m, rhs) + addFlops(2*m, rhs))
					preH = composeHWS(ws, recvH, round.preS, round.preSPack, preH, bs)
				}
				if round.accS == nil {
					accH = recvH
				} else {
					fc.add(gemmFlops(2*m, 2*m, rhs) + addFlops(2*m, rhs))
					accH = composeHWS(ws, recvH, round.accS, round.accSPack, accH, bs)
				}
			}
		}
	}

	return s.solveFinish(c, b, x, st, localTotalH, preH, bs, &fc)
}

// solveFinish is the schedule-independent tail of a solve: the reduced
// right-hand side and x0 at the last rank, the broadcast, and the local
// recovery by state propagation (with ping-pong arena buffers and the
// structured transfer apply).
func (s *ARD) solveFinish(c *comm.Comm, b, x *mat.Matrix, st *ardRankState,
	localTotalH, preH *mat.Matrix, bs []float64, fc *flopCounter) int64 {
	a := s.a
	r, p := c.Rank(), c.Size()
	n, m, rhs := a.N, a.M, b.Cols
	ws := st.ws
	var x0 *mat.Matrix
	if r == p-1 {
		totalH := localTotalH
		if preH != nil {
			fc.add(gemmFlops(2*m, 2*m, rhs) + addFlops(2*m, rhs))
			totalH = composeHWS(ws, preH, st.localTotalS, st.localTotalSPack, localTotalH, bs)
		}
		rrhs := reducedRHS(ws, a, totalH, wsBlockOf(ws, b, m, n-1), s.negDiagPack, s.negLowerPack, bs)
		fc.add(2 * gemmFlops(m, m, rhs))
		x0 = ws.GetNoClear(m, rhs)
		s.luRm.SolveTo(x0, rrhs)
		fc.add(luSolveFlops(m, rhs))
	} else {
		x0 = ws.GetNoClear(m, rhs)
	}
	c.BcastMatrixInto(p-1, x0)

	if st.lo == 0 && st.hi > 0 {
		wsBlockOf(ws, x, m, 0).CopyFrom(x0)
	}
	y := applyPrefixState(ws, m, st.piS, st.piSLeftPack, preH, x0, bs)
	if st.piS != nil {
		fc.add(gemmFlops(2*m, m, rhs) + addFlops(2*m, rhs))
	}
	ybuf := [2]*mat.Matrix{ws.GetNoClear(2*m, rhs), ws.GetNoClear(2*m, rhs)}
	ycur := 0
	for k, e := range st.elems {
		dst := ybuf[ycur]
		ycur ^= 1
		applyT(ws, e.t, e.tPack, y, st.fs[k], dst, m, bs)
		y = dst
		fc.add(gemmFlops(2*m, 2*m, rhs) + addFlops(2*m, rhs))
		wsBlockOf(ws, x, m, e.idx).CopyFrom(ws.View(y, 0, 0, m, rhs))
	}
	return fc.n
}
