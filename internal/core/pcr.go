package core

import (
	"fmt"
	"time"

	"blocktri/internal/blocktri"
	"blocktri/internal/comm"
	"blocktri/internal/mat"
)

// PCR is distributed parallel cyclic reduction: every block row stays
// active through ceil(log2 N) levels; at level l (distance d = 2^l) row i
// eliminates its couplings to rows i-d and i+d, doubling the coupling
// distance, until every row is decoupled and solves an independent M x M
// system. PCR is the GPU-era classic for this problem and the natural
// O(log N)-span comparator for recursive doubling:
//
//   - work O(M^3 N log N) — a log N factor MORE than Thomas/RD's local
//     phase, traded for a fully regular, synchronization-light structure;
//   - numerically stable on block diagonally dominant systems (no
//     transfer-matrix products);
//   - factor/solve split: the elimination coefficients alpha_i, beta_i
//     and the final diagonal factorizations depend only on the matrix, so
//     repeated solves cost O(M^2 N R log N) plus halo exchanges of
//     right-hand-side rows only.
//
// Rows are distributed contiguously; each level exchanges halo rows of
// width min(d, chunk) with the ranks that own rows i±d.
type PCR struct {
	a     *blocktri.Matrix
	world *comm.World

	factored    bool
	rk          []*pcrRankState
	ws          []*mat.Workspace // per-rank solve arenas
	factorStats SolveStats
	solveStats  SolveStats
}

// pcrLevel holds one level's elimination coefficients for a rank's rows.
type pcrLevel struct {
	d     int
	alpha []*mat.Matrix // alpha[i-lo] = L_i D_{i-d}^{-1}, nil when i-d < 0
	beta  []*mat.Matrix // beta[i-lo]  = U_i D_{i+d}^{-1}, nil when i+d >= N
}

type pcrRankState struct {
	lo, hi int
	levels []pcrLevel
	luD    []*mat.LU // final decoupled diagonal factorizations
}

// NewPCR returns a distributed parallel cyclic reduction solver for a
// over cfg's world.
func NewPCR(a *blocktri.Matrix, cfg Config) *PCR {
	w := cfg.world()
	ws := make([]*mat.Workspace, w.P)
	for i := range ws {
		ws[i] = mat.NewWorkspace()
	}
	return &PCR{a: a, world: w, ws: ws}
}

// Name implements Solver.
func (s *PCR) Name() string { return "parallel-cyclic-reduction" }

// Factored implements Factored.
func (s *PCR) Factored() bool { return s.factored }

// FactorStats returns the cost of the Factor call.
func (s *PCR) FactorStats() SolveStats { return s.factorStats }

// Stats returns the cost of the most recent Solve call.
func (s *PCR) Stats() SolveStats { return s.solveStats }

const (
	tagPCRFactorHalo = 220 + iota
	tagPCRSolveHalo
)

// pcrOwner returns the rank owning block row j under PartRange.
func pcrOwner(n, p, j int) int {
	// PartRange(n, p, r) = [r*n/p, (r+1)*n/p): invert by scanning from the
	// float estimate (at most off by one).
	r := j * p / n
	for {
		lo, hi := PartRange(n, p, r)
		if j < lo {
			r--
		} else if j >= hi {
			r++
		} else {
			return r
		}
	}
}

// haloPlan computes, for distance d, which of this rank's rows each peer
// needs (peers need rows j with j+d or j-d inside their range) and which
// remote rows this rank needs.
type haloPlan struct {
	// sendTo[q] lists this rank's row indices that rank q needs.
	sendTo map[int][]int
	// need lists the remote row indices this rank needs, grouped by owner.
	need map[int][]int
}

func makeHaloPlan(n, p, rank, d int) haloPlan {
	lo, hi := PartRange(n, p, rank)
	plan := haloPlan{sendTo: map[int][]int{}, need: map[int][]int{}}
	addNeed := func(j int) {
		if j < 0 || j >= n {
			return
		}
		if j >= lo && j < hi {
			return // local
		}
		owner := pcrOwner(n, p, j)
		plan.need[owner] = append(plan.need[owner], j)
	}
	for i := lo; i < hi; i++ {
		addNeed(i - d)
		addNeed(i + d)
	}
	// Symmetric computation for what others need from me: row j of mine is
	// needed by the owner of j+d (for their i = j+d) and of j-d.
	addSend := func(j, neighbor int) {
		if neighbor < 0 || neighbor >= n {
			return
		}
		owner := pcrOwner(n, p, neighbor)
		if owner == rank {
			return
		}
		plan.sendTo[owner] = append(plan.sendTo[owner], j)
	}
	for j := lo; j < hi; j++ {
		addSend(j, j+d)
		addSend(j, j-d)
	}
	// Deduplicate (a row can be needed by the same owner for both offsets).
	for q, rows := range plan.sendTo {
		plan.sendTo[q] = dedupSorted(rows)
	}
	for q, rows := range plan.need {
		plan.need[q] = dedupSorted(rows)
	}
	return plan
}

func dedupSorted(rows []int) []int {
	if len(rows) == 0 {
		return rows
	}
	// rows are generated in ascending sweeps; insertion sort is fine at
	// halo sizes.
	for i := 1; i < len(rows); i++ {
		for j := i; j > 0 && rows[j] < rows[j-1]; j-- {
			rows[j], rows[j-1] = rows[j-1], rows[j]
		}
	}
	out := rows[:1]
	for _, r := range rows[1:] {
		if r != out[len(out)-1] {
			out = append(out, r)
		}
	}
	return out
}

// pcrRow is the per-row working state during factorization.
type pcrRow struct {
	l, d, u *mat.Matrix // current couplings (nil = absent) and diagonal
	invD    *mat.Matrix // inverse of d, recomputed per level
}

// Factor implements Factored.
func (s *PCR) Factor() error {
	if s.factored {
		return nil
	}
	start := time.Now()
	w := s.world
	w.ResetTotals()
	s.rk = make([]*pcrRankState, w.P)
	perRank := make([]int64, w.P)
	var es errSlot
	runErr := w.Run(func(c *comm.Comm) {
		perRank[c.Rank()] = s.factorRank(c, &es)
	})
	if err := es.get(); err != nil {
		s.rk = nil
		return err
	}
	if runErr != nil {
		s.rk = nil
		return runErr
	}
	s.factored = true
	s.factorStats = SolveStats{
		Comm:        w.TotalStats(),
		MaxSimComm:  w.MaxSimCommTime(),
		Wall:        time.Since(start),
		StoredBytes: s.storedBytes(),
	}
	s.factorStats.mergeRankFlops(perRank)
	return nil
}

// storedBytes totals the retained factor state: the per-level elimination
// coefficients and the final diagonal factorizations.
func (s *PCR) storedBytes() int64 {
	var total int64
	m := int64(s.a.M)
	for _, st := range s.rk {
		if st == nil {
			continue
		}
		for _, lev := range st.levels {
			for k := range lev.alpha {
				total += matBytes(lev.alpha[k]) + matBytes(lev.beta[k])
			}
		}
		total += int64(len(st.luD)) * (8*m*m + 8*m)
	}
	return total
}

func (s *PCR) factorRank(c *comm.Comm, es *errSlot) int64 {
	a := s.a
	r, p := c.Rank(), c.Size()
	n, m := a.N, a.M
	lo, hi := PartRange(n, p, r)
	st := &pcrRankState{lo: lo, hi: hi}
	s.rk[r] = st
	var fc flopCounter

	// Working copies of the owned rows.
	rows := make([]pcrRow, hi-lo)
	for i := lo; i < hi; i++ {
		k := i - lo
		rows[k].d = a.Diag[i].Clone()
		if a.Lower[i] != nil {
			rows[k].l = a.Lower[i].Clone()
		}
		if a.Upper[i] != nil {
			rows[k].u = a.Upper[i].Clone()
		}
	}

	encodeRow := func(row pcrRow) []float64 {
		// [flagL, flagU] then the present matrices in order L, U, D, invD.
		flags := []float64{0, 0}
		ms := make([]*mat.Matrix, 0, 4)
		if row.l != nil {
			flags[0] = 1
			ms = append(ms, row.l)
		}
		if row.u != nil {
			flags[1] = 1
			ms = append(ms, row.u)
		}
		ms = append(ms, row.d, row.invD)
		return append(flags, comm.EncodeMatrices(ms...)...)
	}
	decodeRow := func(payload []float64) pcrRow {
		var row pcrRow
		ms := comm.DecodeMatrices(payload[2:])
		k := 0
		if payload[0] != 0 {
			row.l = ms[k]
			k++
		}
		if payload[1] != 0 {
			row.u = ms[k]
			k++
		}
		row.d = ms[k]
		row.invD = ms[k+1]
		return row
	}

	failed := false
	for d := 1; d < n; d <<= 1 {
		// Invert every owned diagonal for this level.
		levelOK := true
		for k := range rows {
			lu, err := mat.Factor(rows[k].d)
			if err != nil {
				es.set(fmt.Errorf("core: pcr level d=%d row %d: %w", d, lo+k, err))
				levelOK = false
				break
			}
			rows[k].invD = lu.Inverse()
			fc.add(luFlops(m) + luSolveFlops(m, m))
		}
		if !agreeOK(c, levelOK) {
			failed = true
			break
		}

		// Halo exchange: ship (L, U, D, invD) of the rows peers need.
		plan := makeHaloPlan(n, p, r, d)
		for q, idxs := range plan.sendTo {
			payload := []float64{float64(len(idxs))}
			for _, j := range idxs {
				rp := encodeRow(rows[j-lo])
				payload = append(payload, float64(j), float64(len(rp)))
				payload = append(payload, rp...)
			}
			c.Send(q, tagPCRFactorHalo, payload)
		}
		halo := map[int]pcrRow{}
		for q := range plan.need {
			payload := c.Recv(q, tagPCRFactorHalo)
			cnt := int(payload[0])
			pos := 1
			for t := 0; t < cnt; t++ {
				j := int(payload[pos])
				plen := int(payload[pos+1])
				halo[j] = decodeRow(payload[pos+2 : pos+2+plen])
				pos += 2 + plen
			}
			// decodeRow copies (DecodeMatrices -> NewFromSlice), so the
			// pooled buffer can recycle immediately — the solve-path halo
			// exchange below already did; this one leaked.
			c.Release(payload)
		}
		rowAt := func(j int) (pcrRow, bool) {
			if j < lo || j >= hi {
				row, ok := halo[j]
				return row, ok
			}
			return rows[j-lo], true
		}

		// Simultaneous update: read old values, write into fresh rows.
		next := make([]pcrRow, len(rows))
		st.levels = append(st.levels, pcrLevel{
			d:     d,
			alpha: make([]*mat.Matrix, len(rows)),
			beta:  make([]*mat.Matrix, len(rows)),
		})
		lev := &st.levels[len(st.levels)-1]
		for k := range rows {
			i := lo + k
			cur := rows[k]
			nd := cur.d.Clone()
			var nl, nu *mat.Matrix
			if cur.l != nil {
				prev, ok := rowAt(i - d)
				if !ok {
					//lint:ignore panicpolicy partition invariant, not an input condition: the halo exchange delivered this row one level earlier.
					panic(fmt.Sprintf("core: pcr missing halo row %d at d=%d", i-d, d))
				}
				alpha := mat.New(m, m)
				mat.Mul(alpha, cur.l, prev.invD)
				fc.add(gemmFlops(m, m, m))
				lev.alpha[k] = alpha
				if prev.u != nil {
					mat.MulSub(nd, alpha, prev.u)
					fc.add(gemmFlops(m, m, m))
				}
				if prev.l != nil {
					nl = mat.New(m, m)
					mat.MulSub(nl, alpha, prev.l)
					fc.add(gemmFlops(m, m, m))
				}
			}
			if cur.u != nil {
				nxt, ok := rowAt(i + d)
				if !ok {
					//lint:ignore panicpolicy partition invariant, not an input condition: the halo exchange delivered this row one level earlier.
					panic(fmt.Sprintf("core: pcr missing halo row %d at d=%d", i+d, d))
				}
				beta := mat.New(m, m)
				mat.Mul(beta, cur.u, nxt.invD)
				fc.add(gemmFlops(m, m, m))
				lev.beta[k] = beta
				if nxt.l != nil {
					mat.MulSub(nd, beta, nxt.l)
					fc.add(gemmFlops(m, m, m))
				}
				if nxt.u != nil {
					nu = mat.New(m, m)
					mat.MulSub(nu, beta, nxt.u)
					fc.add(gemmFlops(m, m, m))
				}
			}
			next[k] = pcrRow{l: nl, d: nd, u: nu}
		}
		rows = next
	}
	if failed {
		return fc.n
	}

	// Final decoupled diagonals.
	st.luD = make([]*mat.LU, len(rows))
	finalOK := true
	for k := range rows {
		lu, err := mat.Factor(rows[k].d)
		if err != nil {
			es.set(fmt.Errorf("core: pcr final row %d: %w", lo+k, err))
			finalOK = false
			break
		}
		fc.add(luFlops(m))
		st.luD[k] = lu
	}
	agreeOK(c, finalOK)
	return fc.n
}

// Solve implements Solver.
func (s *PCR) Solve(b *mat.Matrix) (*mat.Matrix, error) {
	if err := checkRHS(s.a, b); err != nil {
		return nil, err
	}
	if err := s.Factor(); err != nil {
		return nil, err
	}
	start := time.Now()
	w := s.world
	w.ResetTotals()
	//lint:ignore hotalloc Solve returns a caller-owned result matrix
	x := mat.New(s.a.N*s.a.M, b.Cols)
	perRank := make([]int64, w.P)
	if err := w.Run(func(c *comm.Comm) {
		perRank[c.Rank()] = s.solveRank(c, b, x)
	}); err != nil {
		return nil, err
	}
	s.solveStats = SolveStats{
		Comm:       w.TotalStats(),
		MaxSimComm: w.MaxSimCommTime(),
		Wall:       time.Since(start),
	}
	s.solveStats.mergeRankFlops(perRank)
	return x, nil
}

func (s *PCR) solveRank(c *comm.Comm, b, x *mat.Matrix) int64 {
	a := s.a
	r, p := c.Rank(), c.Size()
	n, m, rhs := a.N, a.M, b.Cols
	st := s.rk[r]
	lo, hi := st.lo, st.hi
	ws := s.ws[r]
	ws.Reset()
	var fc flopCounter

	// Working copies of the owned right-hand-side rows, arena-backed.
	rows := make([]*mat.Matrix, hi-lo)
	for i := lo; i < hi; i++ {
		rows[i-lo] = ws.CloneOf(wsBlockOf(ws, b, m, i))
	}

	for _, lev := range st.levels {
		d := lev.d
		plan := makeHaloPlan(n, p, r, d)
		for q, idxs := range plan.sendTo {
			payload := []float64{float64(len(idxs))}
			for _, j := range idxs {
				enc := comm.EncodeMatrix(rows[j-lo])
				payload = append(payload, float64(j), float64(len(enc)))
				payload = append(payload, enc...)
			}
			c.Send(q, tagPCRSolveHalo, payload)
		}
		halo := map[int]*mat.Matrix{}
		for q := range plan.need {
			payload := c.Recv(q, tagPCRSolveHalo)
			cnt := int(payload[0])
			pos := 1
			for t := 0; t < cnt; t++ {
				j := int(payload[pos])
				plen := int(payload[pos+1])
				hm := ws.GetNoClear(m, rhs)
				comm.DecodeMatrixInto(hm, payload[pos+2:pos+2+plen])
				halo[j] = hm
				pos += 2 + plen
			}
			c.Release(payload)
		}
		bAt := func(j int) *mat.Matrix {
			if j >= lo && j < hi {
				return rows[j-lo]
			}
			return halo[j]
		}
		next := make([]*mat.Matrix, len(rows))
		for k := range rows {
			i := lo + k
			nb := ws.CloneOf(rows[k])
			if al := lev.alpha[k]; al != nil {
				mat.MulSub(nb, al, bAt(i-d))
				fc.add(gemmFlops(m, m, rhs))
			}
			if be := lev.beta[k]; be != nil {
				mat.MulSub(nb, be, bAt(i+d))
				fc.add(gemmFlops(m, m, rhs))
			}
			next[k] = nb
		}
		rows = next
	}

	// Decoupled solves straight into the output.
	for k := range rows {
		out := wsBlockOf(ws, x, m, lo+k)
		st.luD[k].SolveTo(out, rows[k])
		fc.add(luSolveFlops(m, rhs))
	}
	return fc.n
}
