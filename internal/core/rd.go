package core

import (
	"sync"
	"time"

	"blocktri/internal/blocktri"
	"blocktri/internal/comm"
	"blocktri/internal/mat"
	"blocktri/internal/prefix"
)

// Message tags used by the solvers (user range, below the collectives'
// reserved range).
const (
	tagRDScan = 200 + iota
	tagARDFactorScan
	tagARDSolveScan
)

// Config carries the distributed-execution settings shared by RD and ARD.
type Config struct {
	// World is the communicator to run on; nil means a fresh single-rank
	// world (sequential execution through the same code path).
	World *comm.World
	// Schedule selects the cross-rank scan algorithm (default KoggeStone,
	// the recursive doubling schedule). RD supports all schedules; ARD
	// supports KoggeStone and Chain (its solve phase replays the factor
	// phase's schedule, and Brent-Kung's down-sweep is not replayable).
	Schedule prefix.Schedule
}

func (cfg Config) world() *comm.World {
	if cfg.World == nil {
		return comm.NewWorld(1)
	}
	return cfg.World
}

// RD is the classic recursive doubling solver. Every Solve call rebuilds
// the transfer matrices, re-runs the local O(M^3 N/P) scan and the
// O(M^3 log P) cross-rank scan: nothing is reused between calls. This is
// the algorithm the paper identifies as sub-optimal for repeated solves
// with the same matrix.
type RD struct {
	a     *blocktri.Matrix
	world *comm.World
	sched prefix.Schedule
	stats SolveStats
	ws    []*mat.Workspace // per-rank solve arenas, reused across Solve calls
}

// NewRD returns a recursive doubling solver for a over cfg's world.
func NewRD(a *blocktri.Matrix, cfg Config) *RD {
	w := cfg.world()
	ws := make([]*mat.Workspace, w.P)
	for i := range ws {
		ws[i] = mat.NewWorkspace()
	}
	return &RD{a: a, world: w, sched: cfg.Schedule, ws: ws}
}

// Name implements Solver.
func (rd *RD) Name() string { return "recursive-doubling" }

// Stats returns the cost of the most recent Solve call. Communication
// counters are owned by the solver: Solve resets the world's totals.
func (rd *RD) Stats() SolveStats { return rd.stats }

// errSlot collects the first error raised by any rank.
type errSlot struct {
	mu  sync.Mutex
	err error
}

func (e *errSlot) set(err error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.err == nil {
		e.err = err
	}
}

func (e *errSlot) get() error {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.err
}

// agreeOK reports whether every rank passed ok=true; it is the collective
// error barrier that lets all ranks abandon a solve together instead of
// deadlocking when one rank fails.
func agreeOK(c *comm.Comm, ok bool) bool {
	flag := 0.0
	if !ok {
		flag = 1
	}
	res := c.Allreduce([]float64{flag}, comm.OpMax)
	return res[0] == 0
}

// Solve implements Solver.
func (rd *RD) Solve(b *mat.Matrix) (*mat.Matrix, error) {
	if err := checkRHS(rd.a, b); err != nil {
		return nil, err
	}
	start := time.Now()
	a := rd.a
	if a.N == 1 {
		x, err := mat.Solve(a.Diag[0], b)
		if err != nil {
			return nil, err
		}
		rd.stats = SolveStats{Flops: luFlops(a.M) + luSolveFlops(a.M, b.Cols), Wall: time.Since(start)}
		rd.stats.MaxRankFlops = rd.stats.Flops
		return x, nil
	}
	w := rd.world
	w.ResetTotals()
	//lint:ignore hotalloc Solve returns a caller-owned result matrix
	x := mat.New(a.N*a.M, b.Cols)
	perRank := make([]int64, w.P)
	growth := make([]float64, w.P)
	var es errSlot
	runErr := w.Run(func(c *comm.Comm) {
		perRank[c.Rank()], growth[c.Rank()] = rd.rdSolveRank(c, b, x, &es)
	})
	if err := es.get(); err != nil {
		return nil, err
	}
	if runErr != nil {
		return nil, runErr
	}
	rd.stats = SolveStats{
		Comm:         w.TotalStats(),
		MaxSimComm:   w.MaxSimCommTime(),
		Wall:         time.Since(start),
		PrefixGrowth: growth[w.P-1],
	}
	rd.stats.mergeRankFlops(perRank)
	return x, nil
}

// rdSolveRank is one rank's share of a recursive doubling solve. It returns
// the rank's analytic flop count and, on the last rank, the prefix growth
// diagnostic. All per-solve storage is checked out of the rank's arena; RD
// still redoes every operation per solve (that is the algorithm), it just
// stops paying the allocator for the privilege. Transfer-matrix applications
// go through applyT so RD and ARD keep producing bit-identical solutions.
func (rd *RD) rdSolveRank(c *comm.Comm, b, x *mat.Matrix, es *errSlot) (int64, float64) {
	a := rd.a
	r, p := c.Rank(), c.Size()
	n, m, rhs := a.N, a.M, b.Cols
	lo, hi := PartRange(n, p, r)
	first := lo
	if first < 1 {
		first = 1
	}
	ws := rd.ws[r]
	ws.Reset()
	var fc flopCounter

	// Phase 1: build local scan elements and reduce them to the local
	// total — the O(M^3 N/P) term, redone on every RD solve. The running
	// total ping-pongs between two arena buffers per half.
	affs := make([]Affine, 0, max(hi-first, 0))
	sbuf := [2]*mat.Matrix{ws.GetNoClear(2*m, 2*m), ws.GetNoClear(2*m, 2*m)}
	hbuf := [2]*mat.Matrix{ws.GetNoClear(2*m, rhs), ws.GetNoClear(2*m, rhs)}
	cur := 0
	localTotal := Affine{}
	var buildErr error
	for i := first; i < hi; i++ {
		e, err := buildElementWS(ws, a, i)
		if err != nil {
			buildErr = err
			break
		}
		fc.add(luFlops(m) + luSolveFlops(m, m)) // factor U, solve for D
		if a.Lower[i-1] != nil {
			fc.add(luSolveFlops(m, m))
		}
		af := Affine{S: e.t, H: e.buildFInto(ws, m, wsBlockOf(ws, b, m, i-1))}
		fc.add(luSolveFlops(m, rhs))
		affs = append(affs, af)
		if localTotal.IsIdentity() {
			localTotal = af
			continue
		}
		fc.add(gemmFlops(2*m, 2*m, 2*m) + gemmFlops(2*m, 2*m, rhs) + addFlops(2*m, rhs))
		ns, nh := sbuf[cur], hbuf[cur]
		cur ^= 1
		mat.Mul(ns, af.S, localTotal.S)
		applyT(ws, af.S, mat.PackedA{}, localTotal.H, af.H, nh, m, nil)
		localTotal = Affine{S: ns, H: nh}
	}
	if buildErr != nil {
		es.set(buildErr)
	}
	if !agreeOK(c, buildErr == nil) {
		return fc.n, 0
	}

	// Phase 2: cross-rank exclusive scan — the O(M^3 log P) term.
	countingOp := func(earlier, later Affine) Affine {
		if !earlier.IsIdentity() && !later.IsIdentity() {
			fc.add(gemmFlops(2*m, 2*m, 2*m) + gemmFlops(2*m, 2*m, rhs) + addFlops(2*m, rhs))
		}
		return ComposeAffine(earlier, later)
	}
	codec := prefix.Codec[Affine]{Encode: encodeAffine, Decode: decodeAffine}
	pi, _ := prefix.ExScanRanks(c, localTotal, countingOp, codec, rd.sched, tagRDScan)

	// Phase 3: reduced system for x_0 on the last rank, then broadcast.
	// Every rank checks out the x0 buffer so the broadcast decodes in place.
	x0 := ws.GetNoClear(m, rhs)
	growth := 0.0
	solveOK := true
	if r == p-1 {
		totalS, totalH := localTotal.S, localTotal.H
		if !pi.IsIdentity() {
			fc.add(gemmFlops(2*m, 2*m, 2*m) + gemmFlops(2*m, 2*m, rhs) + addFlops(2*m, rhs))
			ts := ws.GetNoClear(2*m, 2*m)
			mat.Mul(ts, localTotal.S, pi.S)
			totalH = composeHWS(ws, pi.H, localTotal.S, mat.PackedA{}, localTotal.H, nil)
			totalS = ts
		}
		growth = mat.NormFrob(totalS)
		rm := reducedMatrixWS(ws, a, totalS)
		fc.add(2 * gemmFlops(m, m, m))
		luRm, err := ws.LU(rm)
		if err != nil {
			es.set(err)
			solveOK = false
		} else {
			fc.add(luFlops(m))
			rrhs := reducedRHS(ws, a, totalH, wsBlockOf(ws, b, m, n-1), mat.PackedA{}, mat.PackedA{}, nil)
			fc.add(2 * gemmFlops(m, m, rhs))
			luRm.SolveTo(x0, rrhs)
			fc.add(luSolveFlops(m, rhs))
		}
	}
	if !agreeOK(c, solveOK) {
		return fc.n, growth
	}
	c.BcastMatrixInto(p-1, x0)

	// Phase 4: local recovery by state propagation — O(M^2 R N/P).
	if lo == 0 && hi > 0 {
		wsBlockOf(ws, x, m, 0).CopyFrom(x0)
	}
	y := applyPrefixState(ws, m, pi.S, mat.PackedA{}, pi.H, x0, nil)
	if pi.S != nil {
		fc.add(gemmFlops(2*m, m, rhs) + addFlops(2*m, rhs))
	}
	ybuf := [2]*mat.Matrix{ws.GetNoClear(2*m, rhs), ws.GetNoClear(2*m, rhs)}
	ycur := 0
	for k, i := 0, first; i < hi; k, i = k+1, i+1 {
		dst := ybuf[ycur]
		ycur ^= 1
		applyT(ws, affs[k].S, mat.PackedA{}, y, affs[k].H, dst, m, nil)
		y = dst
		fc.add(gemmFlops(2*m, 2*m, rhs) + addFlops(2*m, rhs))
		wsBlockOf(ws, x, m, i).CopyFrom(ws.View(y, 0, 0, m, rhs))
	}
	return fc.n, growth
}
