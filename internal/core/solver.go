package core

import (
	"time"

	"blocktri/internal/comm"
	"blocktri/internal/mat"
)

// Solver is the common interface of every block tridiagonal solver in this
// repository. Solve accepts a stacked right-hand-side matrix b of shape
// (N*M) x R — R right-hand sides solved in one batched call — and returns
// the solution with the same shape.
type Solver interface {
	// Name identifies the algorithm in experiment tables.
	Name() string
	// Solve returns x with A*x = b.
	Solve(b *mat.Matrix) (*mat.Matrix, error)
}

// Factored is implemented by solvers that split matrix-dependent
// preprocessing (Factor) from per-right-hand-side work (Solve). Factor is
// idempotent; Solve implicitly factors on first use.
type Factored interface {
	Solver
	// Factor performs the matrix-dependent precomputation.
	Factor() error
	// Factored reports whether Factor has completed.
	Factored() bool
}

// SolveStats describes the cost of the most recent Factor or Solve call of
// a solver that tracks instrumentation.
type SolveStats struct {
	// Flops is the total analytic floating-point operation count across
	// all ranks.
	Flops int64
	// MaxRankFlops is the largest per-rank count: the compute critical
	// path of a bulk-synchronous step.
	MaxRankFlops int64
	// Comm aggregates message counts and bytes across all ranks.
	Comm comm.Stats
	// MaxSimComm is the largest per-rank simulated (alpha-beta model)
	// communication time in seconds.
	MaxSimComm float64
	// Wall is the measured wall-clock duration.
	Wall time.Duration
	// StoredBytes is the memory retained by a Factor call for reuse in
	// later solves (zero for solvers without a factor/solve split and for
	// Solve stats). It quantifies the storage cost of the factor/solve
	// trade.
	StoredBytes int64
	// PrefixGrowth is the Frobenius norm of the global transfer-matrix
	// prefix product (RD and ARD only; zero otherwise). Rounding error in
	// the prefix-based solvers is amplified by roughly this factor times
	// machine epsilon, so it doubles as a conditioning diagnostic: values
	// near 1..N indicate a stable recurrence, exponentially large values
	// indicate the solution will lose digits accordingly.
	PrefixGrowth float64
}

// flopCounter accumulates an analytic operation count on one rank.
type flopCounter struct{ n int64 }

// Standard dense kernel costs in flops.
func luFlops(n int) int64         { return 2 * int64(n) * int64(n) * int64(n) / 3 }
func luSolveFlops(n, r int) int64 { return 2 * int64(n) * int64(n) * int64(r) }
func gemmFlops(m, k, n int) int64 { return 2 * int64(m) * int64(k) * int64(n) }
func addFlops(m, n int) int64     { return int64(m) * int64(n) }

func (f *flopCounter) add(n int64) { f.n += n }

// matBytes returns the retained payload size of a matrix (nil-safe).
func matBytes(m *mat.Matrix) int64 {
	if m == nil {
		return 0
	}
	return 8 * int64(len(m.Data))
}

// mergeRankFlops folds per-rank counters into total and critical-path
// figures on a SolveStats.
func (s *SolveStats) mergeRankFlops(perRank []int64) {
	s.Flops, s.MaxRankFlops = 0, 0
	for _, n := range perRank {
		s.Flops += n
		if n > s.MaxRankFlops {
			s.MaxRankFlops = n
		}
	}
}
