package core

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"blocktri/internal/blocktri"
	"blocktri/internal/comm"
	"blocktri/internal/mat"
	"blocktri/internal/prefix"
)

// solveTol is the acceptable relative residual for well-conditioned
// diagonally dominant test systems.
const solveTol = 1e-7

func requireAccurate(t *testing.T, a *blocktri.Matrix, s Solver, b *mat.Matrix) *mat.Matrix {
	t.Helper()
	x, err := s.Solve(b)
	if err != nil {
		t.Fatalf("%s: %v", s.Name(), err)
	}
	if rr := a.RelResidual(x, b); rr > solveTol {
		t.Fatalf("%s: relative residual %v (N=%d M=%d R=%d)", s.Name(), rr, a.N, a.M, b.Cols)
	}
	return x
}

func TestAllSolversAgreeWithDense(t *testing.T) {
	rng := rand.New(rand.NewSource(101))
	cases := []struct{ n, m, r, p int }{
		{1, 1, 1, 1}, {1, 3, 2, 2}, {2, 1, 1, 1}, {2, 2, 3, 2},
		{3, 2, 1, 3}, {5, 3, 2, 2}, {8, 2, 4, 4}, {16, 3, 2, 5},
		{9, 4, 1, 3}, {7, 1, 3, 7},
	}
	for _, tc := range cases {
		a := blocktri.RandomDiagDominant(tc.n, tc.m, rng)
		b := a.RandomRHS(tc.r, rng)
		ref := requireAccurate(t, a, NewDense(a), b)
		cfg := Config{World: comm.NewWorld(tc.p)}
		solvers := []Solver{
			NewThomas(a),
			NewBCR(a),
			NewRD(a, cfg),
			NewARD(a, Config{World: comm.NewWorld(tc.p)}),
		}
		for _, s := range solvers {
			x := requireAccurate(t, a, s, b)
			if !x.EqualApprox(ref, 1e-6*float64(tc.n*tc.m)) {
				t.Fatalf("%s disagrees with dense at N=%d M=%d R=%d P=%d",
					s.Name(), tc.n, tc.m, tc.r, tc.p)
			}
		}
	}
}

func TestSolversOnPDEWorkloads(t *testing.T) {
	rng := rand.New(rand.NewSource(102))
	mats := []*blocktri.Matrix{
		blocktri.Poisson2D(6, 8),
		blocktri.ConvectionDiffusion(5, 7, 0.8),
		blocktri.BlockToeplitz(10, 3, rng),
	}
	for _, a := range mats {
		b := a.RandomRHS(2, rng)
		ref := requireAccurate(t, a, NewDense(a), b)
		for _, s := range []Solver{
			NewThomas(a),
			NewBCR(a),
			NewRD(a, Config{World: comm.NewWorld(3)}),
			NewARD(a, Config{World: comm.NewWorld(3)}),
		} {
			x := requireAccurate(t, a, s, b)
			if !x.EqualApprox(ref, 1e-6) {
				t.Fatalf("%s disagrees with dense on PDE workload", s.Name())
			}
		}
	}
}

func TestARDMatchesRDBitwise(t *testing.T) {
	// ARD's solve phase replays RD's exact operation sequence with the
	// matrix work precomputed, so the results must be bit-identical.
	rng := rand.New(rand.NewSource(103))
	for _, tc := range []struct{ n, m, r, p int }{
		{8, 3, 2, 4}, {13, 2, 1, 4}, {16, 4, 5, 8}, {5, 2, 3, 2}, {20, 3, 2, 6},
	} {
		a := blocktri.RandomDiagDominant(tc.n, tc.m, rng)
		b := a.RandomRHS(tc.r, rng)
		rd := NewRD(a, Config{World: comm.NewWorld(tc.p)})
		ard := NewARD(a, Config{World: comm.NewWorld(tc.p)})
		xr, err := rd.Solve(b)
		if err != nil {
			t.Fatal(err)
		}
		xa, err := ard.Solve(b)
		if err != nil {
			t.Fatal(err)
		}
		if !xr.Equal(xa) {
			t.Fatalf("ARD != RD bitwise at N=%d M=%d R=%d P=%d", tc.n, tc.m, tc.r, tc.p)
		}
	}
}

func TestARDFactorOnceManySolves(t *testing.T) {
	rng := rand.New(rand.NewSource(104))
	a := blocktri.RandomDiagDominant(12, 3, rng)
	ard := NewARD(a, Config{World: comm.NewWorld(4)})
	if ard.Factored() {
		t.Fatal("factored before Factor")
	}
	if err := ard.Factor(); err != nil {
		t.Fatal(err)
	}
	if !ard.Factored() {
		t.Fatal("not factored after Factor")
	}
	factorFlops := ard.FactorStats().Flops
	if factorFlops <= 0 {
		t.Fatal("factor flop count not recorded")
	}
	for trial := 0; trial < 5; trial++ {
		b := a.RandomRHS(1+trial, rng)
		requireAccurate(t, a, ard, b)
	}
	// Factor must be idempotent and must not redo work.
	if err := ard.Factor(); err != nil {
		t.Fatal(err)
	}
	if ard.FactorStats().Flops != factorFlops {
		t.Fatal("repeated Factor changed stats (recomputed?)")
	}
}

func TestARDSolveCheaperThanRD(t *testing.T) {
	// The headline claim: per-solve flops and per-solve communication
	// volume of ARD are far below RD's for the same problem.
	rng := rand.New(rand.NewSource(105))
	a := blocktri.RandomDiagDominant(32, 8, rng)
	b := a.RandomRHS(1, rng)
	p := 4
	rd := NewRD(a, Config{World: comm.NewWorld(p)})
	ard := NewARD(a, Config{World: comm.NewWorld(p)})
	if err := ard.Factor(); err != nil {
		t.Fatal(err)
	}
	if _, err := rd.Solve(b); err != nil {
		t.Fatal(err)
	}
	if _, err := ard.Solve(b); err != nil {
		t.Fatal(err)
	}
	rdS, ardS := rd.Stats(), ard.Stats()
	if ardS.Flops*2 >= rdS.Flops {
		t.Fatalf("ARD solve flops %d not well below RD's %d", ardS.Flops, rdS.Flops)
	}
	if ardS.Comm.BytesSent*2 >= rdS.Comm.BytesSent {
		t.Fatalf("ARD solve bytes %d not well below RD's %d",
			ardS.Comm.BytesSent, rdS.Comm.BytesSent)
	}
	// And factor+solve together should be in the same ballpark as one RD
	// solve (same asymptotics).
	if ard.FactorStats().Flops+ardS.Flops > 2*rdS.Flops {
		t.Fatalf("ARD factor+solve %d much larger than RD solve %d",
			ard.FactorStats().Flops+ardS.Flops, rdS.Flops)
	}
}

func TestRDAlternativeSchedules(t *testing.T) {
	rng := rand.New(rand.NewSource(106))
	a := blocktri.RandomDiagDominant(12, 3, rng)
	b := a.RandomRHS(2, rng)
	ref := requireAccurate(t, a, NewDense(a), b)
	for _, sched := range []prefix.Schedule{prefix.KoggeStone, prefix.BrentKung, prefix.Chain} {
		rd := NewRD(a, Config{World: comm.NewWorld(4), Schedule: sched})
		x := requireAccurate(t, a, rd, b)
		if !x.EqualApprox(ref, 1e-6) {
			t.Fatalf("schedule %v disagrees with dense", sched)
		}
	}
}

func TestSingularSuperDiagonalError(t *testing.T) {
	rng := rand.New(rand.NewSource(107))
	a := blocktri.RandomDiagDominant(6, 2, rng)
	a.Upper[2].Zero() // still diagonally dominant, but U_2 is singular
	b := a.RandomRHS(1, rng)

	rd := NewRD(a, Config{World: comm.NewWorld(3)})
	if _, err := rd.Solve(b); !errors.Is(err, ErrSingularSuper) {
		t.Fatalf("RD: want ErrSingularSuper, got %v", err)
	}
	ard := NewARD(a, Config{World: comm.NewWorld(3)})
	if err := ard.Factor(); !errors.Is(err, ErrSingularSuper) {
		t.Fatalf("ARD: want ErrSingularSuper, got %v", err)
	}
	// Thomas does not need invertible U blocks and must still solve it.
	th := NewThomas(a)
	requireAccurate(t, a, th, b)
}

func TestMoreRanksThanBlocks(t *testing.T) {
	rng := rand.New(rand.NewSource(108))
	a := blocktri.RandomDiagDominant(3, 2, rng)
	b := a.RandomRHS(2, rng)
	ref := requireAccurate(t, a, NewDense(a), b)
	for _, p := range []int{4, 8, 16} {
		x := requireAccurate(t, a, NewRD(a, Config{World: comm.NewWorld(p)}), b)
		if !x.EqualApprox(ref, 1e-6) {
			t.Fatalf("P=%d > N: RD wrong", p)
		}
		xa := requireAccurate(t, a, NewARD(a, Config{World: comm.NewWorld(p)}), b)
		if !xa.EqualApprox(ref, 1e-6) {
			t.Fatalf("P=%d > N: ARD wrong", p)
		}
	}
}

func TestSingleBlockRowSystems(t *testing.T) {
	rng := rand.New(rand.NewSource(109))
	a := blocktri.RandomDiagDominant(1, 4, rng)
	b := a.RandomRHS(3, rng)
	for _, s := range []Solver{
		NewDense(a), NewThomas(a), NewBCR(a),
		NewRD(a, Config{}), NewARD(a, Config{}),
	} {
		requireAccurate(t, a, s, b)
	}
}

func TestRHSShapeErrors(t *testing.T) {
	rng := rand.New(rand.NewSource(110))
	a := blocktri.RandomDiagDominant(4, 2, rng)
	bad := mat.New(7, 1) // 7 != 8
	for _, s := range []Solver{
		NewDense(a), NewThomas(a), NewBCR(a),
		NewRD(a, Config{}), NewARD(a, Config{}),
	} {
		if _, err := s.Solve(bad); !errors.Is(err, ErrShape) {
			t.Fatalf("%s: want ErrShape, got %v", s.Name(), err)
		}
	}
}

func TestNilWorldDefaultsToSequential(t *testing.T) {
	rng := rand.New(rand.NewSource(111))
	a := blocktri.RandomDiagDominant(6, 2, rng)
	b := a.RandomRHS(1, rng)
	requireAccurate(t, a, NewRD(a, Config{}), b)
	requireAccurate(t, a, NewARD(a, Config{}), b)
}

func TestThomasFactorSplit(t *testing.T) {
	rng := rand.New(rand.NewSource(112))
	a := blocktri.RandomDiagDominant(10, 3, rng)
	th := NewThomas(a)
	if err := th.Factor(); err != nil {
		t.Fatal(err)
	}
	factorFlops := th.Stats().Flops
	b1 := a.RandomRHS(1, rng)
	requireAccurate(t, a, th, b1)
	solveFlops := th.Stats().Flops
	if solveFlops >= factorFlops {
		t.Fatalf("Thomas solve flops %d should be below factor flops %d (M^2 vs M^3 per row)",
			solveFlops, factorFlops)
	}
	b2 := a.RandomRHS(4, rng)
	requireAccurate(t, a, th, b2)
}

func TestBCRPowersAndNonPowersOfTwo(t *testing.T) {
	rng := rand.New(rand.NewSource(113))
	for _, n := range []int{1, 2, 3, 4, 5, 7, 8, 15, 16, 17, 31} {
		a := blocktri.RandomDiagDominant(n, 2, rng)
		b := a.RandomRHS(2, rng)
		requireAccurate(t, a, NewBCR(a), b)
	}
}

func TestRDStatsPopulated(t *testing.T) {
	rng := rand.New(rand.NewSource(114))
	a := blocktri.RandomDiagDominant(16, 3, rng)
	b := a.RandomRHS(2, rng)
	rd := NewRD(a, Config{World: comm.NewWorld(4)})
	if _, err := rd.Solve(b); err != nil {
		t.Fatal(err)
	}
	st := rd.Stats()
	if st.Flops <= 0 || st.MaxRankFlops <= 0 || st.MaxRankFlops > st.Flops {
		t.Fatalf("implausible flop stats: %+v", st)
	}
	if st.Comm.MsgsSent <= 0 || st.Comm.BytesSent <= 0 || st.MaxSimComm <= 0 {
		t.Fatalf("implausible comm stats: %+v", st)
	}
	if st.Wall <= 0 {
		t.Fatal("wall time not recorded")
	}
}

func TestSolveDoesNotModifyInputs(t *testing.T) {
	rng := rand.New(rand.NewSource(115))
	a := blocktri.RandomDiagDominant(8, 3, rng)
	b := a.RandomRHS(2, rng)
	aCopy := a.Clone()
	bCopy := b.Clone()
	for _, s := range []Solver{
		NewThomas(a), NewBCR(a),
		NewRD(a, Config{World: comm.NewWorld(3)}),
		NewARD(a, Config{World: comm.NewWorld(3)}),
	} {
		if _, err := s.Solve(b); err != nil {
			t.Fatal(err)
		}
		if !a.Equal(aCopy) {
			t.Fatalf("%s modified the matrix", s.Name())
		}
		if !b.Equal(bCopy) {
			t.Fatalf("%s modified the right-hand side", s.Name())
		}
	}
}

func TestSequentialSolvesMatchBatched(t *testing.T) {
	// Solving column by column must give the same answer as one batched
	// call, for the solvers that support reuse.
	rng := rand.New(rand.NewSource(116))
	a := blocktri.RandomDiagDominant(10, 2, rng)
	b := a.RandomRHS(4, rng)
	ard := NewARD(a, Config{World: comm.NewWorld(2)})
	batched, err := ard.Solve(b)
	if err != nil {
		t.Fatal(err)
	}
	for j := 0; j < b.Cols; j++ {
		xj, err := ard.Solve(b.Col(j).Clone())
		if err != nil {
			t.Fatal(err)
		}
		if !xj.EqualApprox(batched.Col(j).Clone(), 1e-12) {
			t.Fatalf("column %d: sequential solve differs from batched", j)
		}
	}
}

func TestPartRange(t *testing.T) {
	for _, tc := range []struct{ n, p int }{{10, 3}, {3, 8}, {16, 4}, {1, 1}, {7, 7}} {
		covered := 0
		prevHi := 0
		for r := 0; r < tc.p; r++ {
			lo, hi := PartRange(tc.n, tc.p, r)
			if lo != prevHi {
				t.Fatalf("n=%d p=%d r=%d: gap (lo=%d prevHi=%d)", tc.n, tc.p, r, lo, prevHi)
			}
			if hi < lo {
				t.Fatalf("negative range")
			}
			covered += hi - lo
			prevHi = hi
		}
		if covered != tc.n || prevHi != tc.n {
			t.Fatalf("n=%d p=%d: ranges cover %d ending at %d", tc.n, tc.p, covered, prevHi)
		}
	}
}

// Property: for random shapes, RD and ARD match the dense reference.
func TestRDARDDenseProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(12)
		m := 1 + rng.Intn(5)
		r := 1 + rng.Intn(4)
		p := 1 + rng.Intn(6)
		a := blocktri.RandomDiagDominant(n, m, rng)
		b := a.RandomRHS(r, rng)
		ref, err := NewDense(a).Solve(b)
		if err != nil {
			return false
		}
		xr, err := NewRD(a, Config{World: comm.NewWorld(p)}).Solve(b)
		if err != nil || !xr.EqualApprox(ref, 1e-6) {
			return false
		}
		xa, err := NewARD(a, Config{World: comm.NewWorld(p)}).Solve(b)
		return err == nil && xa.Equal(xr)
	}
	// Deterministic seed source: RD's error on random diagonally dominant
	// systems grows with the transfer-matrix products (see the README
	// caveat), so a time-seeded sweep occasionally draws a matrix past the
	// 1e-6 tolerance and flakes.
	cfg := &quick.Config{MaxCount: 40, Rand: rand.New(rand.NewSource(44))}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

// Property: Thomas and BCR match dense for every generator family.
func TestSequentialSolversProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(24)
		m := 1 + rng.Intn(4)
		a := blocktri.RandomDiagDominant(n, m, rng)
		b := a.RandomRHS(1+rng.Intn(3), rng)
		ref, err := NewDense(a).Solve(b)
		if err != nil {
			return false
		}
		for _, s := range []Solver{NewThomas(a), NewBCR(a)} {
			x, err := s.Solve(b)
			if err != nil || !x.EqualApprox(ref, 1e-6) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestOscillatoryLargeNStability(t *testing.T) {
	// On the oscillatory family (unit-modulus propagation modes, the
	// stable-recurrence workloads RD is used on in practice) recursive
	// doubling stays accurate at large N — unlike on generic diagonally
	// dominant matrices, where its error grows with the prefix products.
	rng := rand.New(rand.NewSource(117))
	for _, n := range []int{64, 256, 512} {
		a := blocktri.Oscillatory(n, 4, rng)
		b := a.RandomRHS(2, rng)
		for _, s := range []Solver{
			NewThomas(a),
			NewRD(a, Config{World: comm.NewWorld(4)}),
			NewARD(a, Config{World: comm.NewWorld(4)}),
		} {
			x, err := s.Solve(b)
			if err != nil {
				t.Fatalf("N=%d %s: %v", n, s.Name(), err)
			}
			if rr := a.RelResidual(x, b); rr > 1e-10 {
				t.Fatalf("N=%d %s: residual %v", n, s.Name(), rr)
			}
		}
	}
}

func TestPrefixGrowthDiagnostic(t *testing.T) {
	rng := rand.New(rand.NewSource(118))
	// Oscillatory: unit-modulus modes, growth stays polynomial in N.
	osc := blocktri.Oscillatory(64, 3, rng)
	rd := NewRD(osc, Config{World: comm.NewWorld(4)})
	if _, err := rd.Solve(osc.RandomRHS(1, rng)); err != nil {
		t.Fatal(err)
	}
	oscGrowth := rd.Stats().PrefixGrowth
	if oscGrowth <= 0 || oscGrowth > 1e6 {
		t.Fatalf("oscillatory growth %v should be modest and positive", oscGrowth)
	}
	// Diagonally dominant random: growth is exponential in N.
	dd := blocktri.RandomDiagDominant(64, 3, rng)
	rd2 := NewRD(dd, Config{World: comm.NewWorld(4)})
	if _, err := rd2.Solve(dd.RandomRHS(1, rng)); err != nil {
		t.Fatal(err)
	}
	if rd2.Stats().PrefixGrowth < 1e6 {
		t.Fatalf("random-dd growth %v should be exponentially large", rd2.Stats().PrefixGrowth)
	}
	// ARD reports the same diagnostic from its factor phase.
	ard := NewARD(dd, Config{World: comm.NewWorld(4)})
	if err := ard.Factor(); err != nil {
		t.Fatal(err)
	}
	if g := ard.FactorStats().PrefixGrowth; g != rd2.Stats().PrefixGrowth {
		t.Fatalf("ARD growth %v != RD growth %v", g, rd2.Stats().PrefixGrowth)
	}
}

func TestStoredBytesAccounting(t *testing.T) {
	rng := rand.New(rand.NewSource(119))
	a := blocktri.RandomDiagDominant(32, 4, rng)
	th := NewThomas(a)
	if err := th.Factor(); err != nil {
		t.Fatal(err)
	}
	// Thomas retains N LU blocks (+pivots) and N-1 w blocks.
	m64 := int64(a.M)
	wantThomas := int64(a.N)*(8*m64*m64+8*m64) + int64(a.N-1)*8*m64*m64
	if got := th.Stats().StoredBytes; got != wantThomas {
		t.Fatalf("Thomas stored %d want %d", got, wantThomas)
	}
	ard := NewARD(a, Config{World: comm.NewWorld(4)})
	if err := ard.Factor(); err != nil {
		t.Fatal(err)
	}
	ardStored := ard.FactorStats().StoredBytes
	// ARD retains at least one 2M x 2M transfer matrix per element.
	if min := int64(a.N-1) * 8 * (2 * m64) * (2 * m64); ardStored < min {
		t.Fatalf("ARD stored %d below element minimum %d", ardStored, min)
	}
	sp := NewSpike(a, Config{World: comm.NewWorld(4)})
	if err := sp.Factor(); err != nil {
		t.Fatal(err)
	}
	if sp.FactorStats().StoredBytes <= wantThomas {
		t.Fatalf("Spike stored %d should exceed a single Thomas %d (adds spikes + reduced system)",
			sp.FactorStats().StoredBytes, wantThomas)
	}
	// Solve stats must not claim stored memory, and solving must not
	// change the factor-phase accounting.
	b := a.RandomRHS(1, rng)
	if _, err := ard.Solve(b); err != nil {
		t.Fatal(err)
	}
	if ard.Stats().StoredBytes != 0 {
		t.Fatalf("solve stats claim stored bytes: %d", ard.Stats().StoredBytes)
	}
	if ard.FactorStats().StoredBytes != ardStored {
		t.Fatalf("solve changed factor stored bytes: %d vs %d",
			ard.FactorStats().StoredBytes, ardStored)
	}
}

func TestARDChainScheduleMatchesKoggeStone(t *testing.T) {
	rng := rand.New(rand.NewSource(120))
	for _, tc := range []struct{ n, m, r, p int }{
		{16, 3, 2, 4}, {13, 2, 1, 5}, {24, 4, 3, 3}, {8, 2, 1, 1},
	} {
		a := blocktri.Oscillatory(tc.n, tc.m, rng)
		b := a.RandomRHS(tc.r, rng)
		ks := NewARD(a, Config{World: comm.NewWorld(tc.p)})
		xk, err := ks.Solve(b)
		if err != nil {
			t.Fatal(err)
		}
		ch := NewARD(a, Config{World: comm.NewWorld(tc.p), Schedule: prefix.Chain})
		xc, err := ch.Solve(b)
		if err != nil {
			t.Fatal(err)
		}
		// Different combine order => tiny rounding differences allowed.
		if !xc.EqualApprox(xk, 1e-10) {
			t.Fatalf("chain ARD differs from KS ARD at %+v", tc)
		}
		if rr := a.RelResidual(xc, b); rr > 1e-10 {
			t.Fatalf("chain ARD residual %v", rr)
		}
	}
}

func TestARDChainMatchesChainRD(t *testing.T) {
	// Chain ARD replays chain RD's arithmetic, so the results must be
	// bit-identical, the same property Kogge-Stone ARD has vs RD.
	rng := rand.New(rand.NewSource(121))
	a := blocktri.Oscillatory(20, 3, rng)
	b := a.RandomRHS(2, rng)
	rd := NewRD(a, Config{World: comm.NewWorld(4), Schedule: prefix.Chain})
	xr, err := rd.Solve(b)
	if err != nil {
		t.Fatal(err)
	}
	ard := NewARD(a, Config{World: comm.NewWorld(4), Schedule: prefix.Chain})
	xa, err := ard.Solve(b)
	if err != nil {
		t.Fatal(err)
	}
	if !xr.Equal(xa) {
		t.Fatal("chain ARD != chain RD bitwise")
	}
}

func TestEstimateGrowthSeparatesRegimes(t *testing.T) {
	rng := rand.New(rand.NewSource(122))
	osc := blocktri.Oscillatory(64, 4, rng)
	oscRate := EstimateGrowth(osc, 8)
	if oscRate <= 0 || oscRate > 1.5 {
		t.Fatalf("oscillatory rate %v should be near 1", oscRate)
	}
	dd := blocktri.RandomDiagDominant(64, 4, rng)
	ddRate := EstimateGrowth(dd, 8)
	if ddRate < 1.5 {
		t.Fatalf("dominant rate %v should be well above 1", ddRate)
	}
	// The estimate must be consistent with the measured PrefixGrowth:
	// rate^N within a few orders of magnitude of the measured norm.
	rd := NewRD(dd, Config{World: comm.NewWorld(2)})
	if _, err := rd.Solve(dd.RandomRHS(1, rng)); err != nil {
		t.Fatal(err)
	}
	measured := rd.Stats().PrefixGrowth
	predicted := math.Pow(ddRate, float64(dd.N))
	if predicted < measured/1e12 {
		t.Fatalf("prediction %v way below measurement %v", predicted, measured)
	}
}

func TestEstimateGrowthEdgeCases(t *testing.T) {
	rng := rand.New(rand.NewSource(123))
	if g := EstimateGrowth(blocktri.RandomDiagDominant(1, 3, rng), 4); g != 0 {
		t.Fatalf("N=1 growth should be 0, got %v", g)
	}
	bad := blocktri.RandomDiagDominant(6, 2, rng)
	bad.Upper[2].Zero()
	if g := EstimateGrowth(bad, 6); !math.IsInf(g, 1) {
		t.Fatalf("singular U should give +Inf, got %v", g)
	}
	// samples clamping must not panic.
	_ = EstimateGrowth(blocktri.Oscillatory(4, 2, rng), 100)
	_ = EstimateGrowth(blocktri.Oscillatory(4, 2, rng), 0)
}

func TestFromScalarTridiagonalSolves(t *testing.T) {
	// Classic scalar tridiagonal [1 -2 1] with Dirichlet ends, against the
	// dense reference.
	n := 12
	lower := make([]float64, n-1)
	diag := make([]float64, n)
	upper := make([]float64, n-1)
	for i := range diag {
		diag[i] = -2.5
	}
	for i := range lower {
		lower[i] = 1
		upper[i] = 1
	}
	a := blocktri.FromScalarTridiagonal(lower, diag, upper)
	if a.N != n || a.M != 1 {
		t.Fatalf("shape N=%d M=%d", a.N, a.M)
	}
	rng := rand.New(rand.NewSource(124))
	b := a.RandomRHS(2, rng)
	ref := requireAccurate(t, a, NewDense(a), b)
	for _, s := range []Solver{
		NewThomas(a),
		NewRD(a, Config{World: comm.NewWorld(3)}),
		NewARD(a, Config{World: comm.NewWorld(3)}),
	} {
		x := requireAccurate(t, a, s, b)
		if !x.EqualApprox(ref, 1e-8) {
			t.Fatalf("%s disagrees on scalar tridiagonal", s.Name())
		}
	}
}

// TestConcurrentSolversIndependentWorlds: separate solver instances on
// separate worlds must be usable from concurrent goroutines (the
// multi-energy-group pattern).
func TestConcurrentSolversIndependentWorlds(t *testing.T) {
	rng := rand.New(rand.NewSource(125))
	const groups = 6
	type group struct {
		a *blocktri.Matrix
		b *mat.Matrix
	}
	gs := make([]group, groups)
	for g := range gs {
		a := blocktri.Oscillatory(32, 3, rand.New(rand.NewSource(int64(g))))
		gs[g] = group{a: a, b: a.RandomRHS(1, rng)}
	}
	errs := make(chan error, groups)
	for g := 0; g < groups; g++ {
		go func(g int) {
			ard := NewARD(gs[g].a, Config{World: comm.NewWorld(3)})
			x, err := ard.Solve(gs[g].b)
			if err != nil {
				errs <- err
				return
			}
			if rr := gs[g].a.RelResidual(x, gs[g].b); rr > 1e-10 {
				errs <- fmt.Errorf("group %d residual %v", g, rr)
				return
			}
			errs <- nil
		}(g)
	}
	for g := 0; g < groups; g++ {
		if err := <-errs; err != nil {
			t.Fatal(err)
		}
	}
}
