package core

import (
	"math/rand"
	"testing"

	"blocktri/internal/blocktri"
	"blocktri/internal/comm"
)

func TestRefinementRecoversAccuracy(t *testing.T) {
	// A moderately-growing system where plain ARD loses ~7 digits:
	// refinement must bring it back near machine precision.
	rng := rand.New(rand.NewSource(301))
	a := blocktri.RandomDiagDominant(16, 4, rng) // growth ~1e6..1e9
	b := a.RandomRHS(2, rng)
	ard := NewARD(a, Config{World: comm.NewWorld(4)})
	plain, err := ard.Solve(b)
	if err != nil {
		t.Fatal(err)
	}
	plainRes := a.RelResidual(plain, b)
	refined, rep, err := SolveRefined(ard, b, 4)
	if err != nil {
		t.Fatal(err)
	}
	refinedRes := a.RelResidual(refined, b)
	if plainRes < 1e-10 {
		t.Fatalf("test premise broken: plain ARD already accurate (%v)", plainRes)
	}
	if refinedRes > plainRes/100 {
		t.Fatalf("refinement only improved %v -> %v", plainRes, refinedRes)
	}
	if refinedRes > 1e-12 {
		t.Fatalf("refined residual %v not near machine precision", refinedRes)
	}
	if !rep.Improved() || rep.Iters == 0 {
		t.Fatalf("report inconsistent with improvement: %+v", rep)
	}
}

func TestRefinementNoopWhenAlreadyAccurate(t *testing.T) {
	rng := rand.New(rand.NewSource(302))
	a := blocktri.Oscillatory(64, 4, rng)
	b := a.RandomRHS(1, rng)
	ard := NewARD(a, Config{World: comm.NewWorld(4)})
	x, _, err := SolveRefined(ard, b, 3)
	if err != nil {
		t.Fatal(err)
	}
	if rr := a.RelResidual(x, b); rr > 1e-12 {
		t.Fatalf("residual %v after refinement on stable family", rr)
	}
}

func TestRefinementCannotRescueExtremeGrowth(t *testing.T) {
	// At growth ~1e27 the base solver has no correct digits; refinement
	// must not pretend otherwise: the residual stays hopeless and the
	// caller can see it in the report.
	rng := rand.New(rand.NewSource(303))
	a := blocktri.RandomDiagDominant(64, 4, rng)
	b := a.RandomRHS(1, rng)
	ard := NewARD(a, Config{World: comm.NewWorld(4)})
	x, rep, err := SolveRefined(ard, b, 3)
	if err != nil {
		t.Fatal(err)
	}
	if x == nil {
		t.Fatal("must return the best iterate")
	}
	if a.RelResidual(x, b) < 1 {
		t.Fatalf("refinement unexpectedly rescued growth %v", ard.Stats().PrefixGrowth)
	}
	if rep.FinalResidual < 1 {
		t.Fatalf("report claims small residual: %+v", rep)
	}
}

func TestRefinementWorksForAllResidualSolvers(t *testing.T) {
	rng := rand.New(rand.NewSource(304))
	a := blocktri.RandomDiagDominant(12, 3, rng)
	b := a.RandomRHS(2, rng)
	solvers := []ResidualSolver{
		NewThomas(a),
		NewRD(a, Config{World: comm.NewWorld(3)}),
		NewARD(a, Config{World: comm.NewWorld(3)}),
		NewSpike(a, Config{World: comm.NewWorld(2)}),
	}
	for _, s := range solvers {
		x, _, err := SolveRefined(s, b, 2)
		if err != nil {
			t.Fatalf("%s: %v", s.Name(), err)
		}
		if rr := a.RelResidual(x, b); rr > 1e-10 {
			t.Fatalf("%s: refined residual %v", s.Name(), rr)
		}
	}
}

func TestRefinementZeroRHS(t *testing.T) {
	rng := rand.New(rand.NewSource(305))
	a := blocktri.Oscillatory(8, 2, rng)
	b := a.RandomRHS(1, rng)
	b.Zero()
	ard := NewARD(a, Config{World: comm.NewWorld(2)})
	x, _, err := SolveRefined(ard, b, 3)
	if err != nil {
		t.Fatal(err)
	}
	// The exact solution is zero; the residual norm must be ~0.
	if rr := a.RelResidual(x, b); rr > 1e-12 {
		t.Fatalf("zero-RHS residual %v", rr)
	}
}
