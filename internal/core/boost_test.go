package core

import (
	"errors"
	"math/rand"
	"testing"

	"blocktri/internal/blocktri"
	"blocktri/internal/mat"
)

// singularLeadMatrix builds a nonsingular block tridiagonal matrix whose
// leading diagonal block is exactly zero: [[0, I], [I, I]] for N=2. Thomas
// hits the zero pivot immediately even though the full matrix is invertible.
func singularLeadMatrix(m int) *blocktri.Matrix {
	a := blocktri.New(2, m)
	a.Upper[0].SetIdentity()
	a.Lower[1].SetIdentity()
	a.Diag[1].SetIdentity()
	return a
}

func TestBoostDiagonalShiftsCopy(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	a := blocktri.RandomDiagDominant(3, 2, rng)
	orig := a.Diag[1].At(0, 0)
	b := BoostDiagonal(a, 0.5, true)
	if got := b.Diag[1].At(0, 0); got != orig+0.5 {
		t.Fatalf("boosted diag entry = %v, want %v", got, orig+0.5)
	}
	if got := b.Upper[0].At(1, 1); got != a.Upper[0].At(1, 1)+0.5 {
		t.Fatalf("boosted super entry = %v, want shift by 0.5", got)
	}
	if b.Upper[2] != nil {
		t.Fatal("boost must preserve the nil band structure")
	}
	if a.Diag[1].At(0, 0) != orig {
		t.Fatal("BoostDiagonal mutated its input")
	}
}

func TestSolveBoostedPassThrough(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	a := blocktri.RandomDiagDominant(6, 3, rng)
	b := a.RandomRHS(2, rng)
	x, rep, err := SolveBoosted(a, func(m *blocktri.Matrix) Solver { return NewThomas(m) }, b, 4)
	if err != nil {
		t.Fatalf("SolveBoosted: %v", err)
	}
	if rep.Boosted {
		t.Fatalf("well-conditioned solve must not boost: %+v", rep)
	}
	if res := a.RelResidual(x, b); res > 1e-10 {
		t.Fatalf("residual %g too large", res)
	}
}

func TestSolveBoostedRecoversSingularPivot(t *testing.T) {
	a := singularLeadMatrix(2)
	rng := rand.New(rand.NewSource(13))
	b := a.RandomRHS(2, rng)
	newThomas := func(m *blocktri.Matrix) Solver { return NewThomas(m) }

	if _, err := NewThomas(a).Solve(b); !errors.Is(err, mat.ErrSingular) {
		t.Fatalf("plain Thomas: want ErrSingular, got %v", err)
	}
	x, rep, err := SolveBoosted(a, newThomas, b, 8)
	if err != nil {
		t.Fatalf("SolveBoosted: %v", err)
	}
	if !rep.Boosted || rep.Tau <= 0 || rep.Attempts < 1 {
		t.Fatalf("expected a boosted solve, got %+v", rep)
	}
	if res := a.RelResidual(x, b); res > 1e-8 {
		t.Fatalf("boosted residual %g too large (report %+v)", res, rep)
	}
	if rep.Refine.FinalResidual > rep.Refine.InitialResidual {
		t.Fatalf("refinement made the residual worse: %+v", rep.Refine)
	}
}

func TestSolveBoostedRecoversSingularSuper(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	a := blocktri.RandomDiagDominant(4, 2, rng)
	a.Upper[1].Zero() // recursive doubling cannot invert this block
	b := a.RandomRHS(1, rng)
	newRD := func(m *blocktri.Matrix) Solver { return NewRD(m, Config{}) }

	if _, err := NewRD(a, Config{}).Solve(b); !errors.Is(err, ErrSingularSuper) {
		t.Fatalf("plain RD: want ErrSingularSuper, got %v", err)
	}
	x, rep, err := SolveBoosted(a, newRD, b, 8)
	if err != nil {
		t.Fatalf("SolveBoosted: %v", err)
	}
	if !rep.Boosted || !rep.BoostedSuper {
		t.Fatalf("expected a super-boosted solve, got %+v", rep)
	}
	if res := a.RelResidual(x, b); res > 1e-6 {
		t.Fatalf("boosted residual %g too large (report %+v)", res, rep)
	}
}

// alwaysSingular exercises the escalation ladder: every factorization
// attempt reports a singular pivot regardless of the shift.
type alwaysSingular struct{ calls *int }

func (s alwaysSingular) Name() string { return "always-singular" }
func (s alwaysSingular) Solve(b *mat.Matrix) (*mat.Matrix, error) {
	*s.calls++
	return nil, mat.ErrSingular
}

func TestSolveBoostedExhaustsLadder(t *testing.T) {
	rng := rand.New(rand.NewSource(19))
	a := blocktri.RandomDiagDominant(3, 2, rng)
	b := a.RandomRHS(1, rng)
	calls := 0
	_, rep, err := SolveBoosted(a, func(*blocktri.Matrix) Solver { return alwaysSingular{&calls} }, b, 4)
	if !errors.Is(err, mat.ErrSingular) {
		t.Fatalf("want wrapped ErrSingular after exhaustion, got %v", err)
	}
	if rep.Attempts != maxBoostAttempts {
		t.Fatalf("attempts = %d, want %d", rep.Attempts, maxBoostAttempts)
	}
	if calls != maxBoostAttempts+1 { // plain solve + each boosted attempt
		t.Fatalf("solver constructed %d times, want %d", calls, maxBoostAttempts+1)
	}
}

// failOther verifies that non-singular errors pass through untouched.
type failOther struct{}

func (failOther) Name() string { return "fail-other" }
func (failOther) Solve(b *mat.Matrix) (*mat.Matrix, error) {
	return nil, errors.New("disk on fire")
}

func TestSolveBoostedPassesThroughOtherErrors(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	a := blocktri.RandomDiagDominant(3, 2, rng)
	b := a.RandomRHS(1, rng)
	_, rep, err := SolveBoosted(a, func(*blocktri.Matrix) Solver { return failOther{} }, b, 4)
	if err == nil || err.Error() != "disk on fire" {
		t.Fatalf("want pass-through error, got %v", err)
	}
	if rep.Boosted {
		t.Fatalf("must not boost on a non-singular error: %+v", rep)
	}
}
