package core

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"

	"blocktri/internal/blocktri"
	"blocktri/internal/comm"
	"blocktri/internal/mat"
	"blocktri/internal/prefix"
)

// ARD factorization serialization: the factor phase is the expensive part
// of the solver's lifecycle, so a long-running application can compute it
// once, persist it, and restore it in later runs (or on failover) without
// re-running the O(M^3) work. The format captures the complete per-rank
// factor state; loading requires a world of the same size P the state was
// produced with, and a matrix with the same (N, M) — the right-hand-side
// path re-reads the matrix's last block row, so the caller must supply
// the same matrix the factorization was computed for.

// ardMagic identifies the on-disk ARD factor format ("ARF1").
const ardMagic = 0x41524631

// SaveFactor serializes the factor-phase state. Factor is run first if it
// has not completed. It returns the number of bytes written.
func (s *ARD) SaveFactor(w io.Writer) (int64, error) {
	if err := s.Factor(); err != nil {
		return 0, err
	}
	enc := newEncoder(w)
	enc.u64(ardMagic)
	enc.u64(uint64(s.a.N))
	enc.u64(uint64(s.a.M))
	enc.u64(uint64(s.world.P))
	enc.u64(uint64(s.sched))
	enc.f64(s.growth)
	enc.matrixOpt(nil) // reserved slot (layout versioning headroom)
	if s.luRm != nil {
		enc.floats(s.luRm.Encode())
	} else {
		enc.u64(0)
	}
	if s.a.N == 1 {
		return enc.finish()
	}
	for _, st := range s.rk {
		enc.u64(uint64(st.lo))
		enc.u64(uint64(st.hi))
		enc.u64(uint64(st.first))
		enc.u64(uint64(len(st.elems)))
		for _, e := range st.elems {
			enc.u64(uint64(e.idx))
			enc.matrix(e.t)
			enc.floats(e.luU.Encode())
		}
		enc.matrixOpt(st.localTotalS)
		enc.u64(uint64(len(st.rounds)))
		for _, rd := range st.rounds {
			enc.u64(uint64(rd.dist))
			enc.matrixOpt(rd.preS)
			enc.matrixOpt(rd.accS)
		}
		enc.matrixOpt(st.piS)
	}
	return enc.finish()
}

// LoadFactor restores factor-phase state previously written by SaveFactor
// into a fresh solver for matrix a over cfg's world. The world size and
// the matrix shape must match the saved state.
func LoadFactor(a *blocktri.Matrix, cfg Config, r io.Reader) (*ARD, error) {
	s := NewARD(a, cfg)
	dec := newDecoder(r)
	if magic, err := dec.u64(); err != nil {
		return nil, fmt.Errorf("core: reading factor header: %w", err)
	} else if magic != ardMagic {
		return nil, fmt.Errorf("core: bad factor magic %#x", magic)
	}
	n, err := dec.u64()
	if err != nil {
		return nil, err
	}
	m, err := dec.u64()
	if err != nil {
		return nil, err
	}
	p, err := dec.u64()
	if err != nil {
		return nil, err
	}
	if int(n) != a.N || int(m) != a.M {
		return nil, fmt.Errorf("core: saved factor is for N=%d M=%d, matrix is N=%d M=%d", n, m, a.N, a.M)
	}
	if int(p) != s.world.P {
		return nil, fmt.Errorf("core: saved factor used P=%d, world has P=%d", p, s.world.P)
	}
	// The solve phase must replay the schedule the factor state was
	// produced with, regardless of cfg.Schedule.
	schedWord, err := dec.u64()
	if err != nil {
		return nil, err
	}
	switch prefix.Schedule(schedWord) {
	case prefix.KoggeStone, prefix.Chain:
		s.sched = prefix.Schedule(schedWord)
	default:
		return nil, fmt.Errorf("core: saved factor has unknown schedule %d", schedWord)
	}
	if s.growth, err = dec.f64(); err != nil {
		return nil, err
	}
	if _, err := dec.matrixOpt(); err != nil { // reserved slot
		return nil, err
	}
	luPayload, err := dec.floats()
	if err != nil {
		return nil, err
	}
	if len(luPayload) > 0 {
		lu, err := safeDecodeLU(luPayload)
		if err != nil {
			return nil, err
		}
		s.luRm = lu
	}
	if a.N == 1 {
		s.factored = true
		return s, nil
	}
	s.rk = make([]*ardRankState, s.world.P)
	for rank := 0; rank < s.world.P; rank++ {
		st := &ardRankState{}
		if st.lo, err = dec.intVal(); err != nil {
			return nil, err
		}
		if st.hi, err = dec.intVal(); err != nil {
			return nil, err
		}
		if st.first, err = dec.intVal(); err != nil {
			return nil, err
		}
		ne, err := dec.intVal()
		if err != nil {
			return nil, err
		}
		for k := 0; k < ne; k++ {
			var e element
			if e.idx, err = dec.intVal(); err != nil {
				return nil, err
			}
			if e.t, err = dec.matrix(); err != nil {
				return nil, err
			}
			luPayload, err := dec.floats()
			if err != nil {
				return nil, err
			}
			if e.luU, err = safeDecodeLU(luPayload); err != nil {
				return nil, err
			}
			st.elems = append(st.elems, e)
		}
		if st.localTotalS, err = dec.matrixOpt(); err != nil {
			return nil, err
		}
		nr, err := dec.intVal()
		if err != nil {
			return nil, err
		}
		for k := 0; k < nr; k++ {
			var rd ardRound
			if rd.dist, err = dec.intVal(); err != nil {
				return nil, err
			}
			if rd.preS, err = dec.matrixOpt(); err != nil {
				return nil, err
			}
			if rd.accS, err = dec.matrixOpt(); err != nil {
				return nil, err
			}
			st.rounds = append(st.rounds, rd)
		}
		if st.piS, err = dec.matrixOpt(); err != nil {
			return nil, err
		}
		s.rk[rank] = st
	}
	// The wire format predates the panel packs; rebuild them from the
	// decoded matrices exactly as Factor does, so a restored solver's solve
	// phase runs the same packed products (and produces the same bits) as a
	// freshly factored one.
	s.buildPacks()
	s.factored = true
	s.factorStats = SolveStats{PrefixGrowth: s.growth, StoredBytes: s.storedBytes()}
	return s, nil
}

// encoder writes length-prefixed float64 sections in little-endian form.
type encoder struct {
	bw  *bufio.Writer
	n   int64
	err error
}

func newEncoder(w io.Writer) *encoder { return &encoder{bw: bufio.NewWriter(w)} }

func (e *encoder) u64(v uint64) {
	if e.err != nil {
		return
	}
	var buf [8]byte
	binary.LittleEndian.PutUint64(buf[:], v)
	k, err := e.bw.Write(buf[:])
	e.n += int64(k)
	e.err = err
}

func (e *encoder) f64(v float64) { e.u64(math.Float64bits(v)) }

func (e *encoder) floats(fs []float64) {
	e.u64(uint64(len(fs)))
	for _, f := range fs {
		e.f64(f)
	}
}

func (e *encoder) matrix(m *mat.Matrix) { e.floats(comm.EncodeMatrix(m)) }

func (e *encoder) matrixOpt(m *mat.Matrix) {
	if m == nil {
		e.u64(0)
		return
	}
	e.matrix(m)
}

func (e *encoder) finish() (int64, error) {
	if e.err != nil {
		return e.n, e.err
	}
	return e.n, e.bw.Flush()
}

type decoder struct{ br *bufio.Reader }

func newDecoder(r io.Reader) *decoder { return &decoder{br: bufio.NewReader(r)} }

func (d *decoder) u64() (uint64, error) {
	var buf [8]byte
	if _, err := io.ReadFull(d.br, buf[:]); err != nil {
		return 0, err
	}
	return binary.LittleEndian.Uint64(buf[:]), nil
}

func (d *decoder) f64() (float64, error) {
	v, err := d.u64()
	return math.Float64frombits(v), err
}

func (d *decoder) intVal() (int, error) {
	v, err := d.u64()
	if err != nil {
		return 0, err
	}
	const maxPlausible = 1 << 40
	if v > maxPlausible {
		return 0, fmt.Errorf("core: implausible integer %d in factor file", v)
	}
	return int(v), nil
}

func (d *decoder) floats() ([]float64, error) {
	n, err := d.intVal()
	if err != nil {
		return nil, err
	}
	// Sections hold at most a 2M x 2M matrix per item; far below this cap
	// (128 MiB of float64 words). Anything larger is corruption, and
	// capping it keeps a flipped length byte from driving a huge
	// allocation.
	const maxSection = 1 << 24
	if n > maxSection {
		return nil, fmt.Errorf("core: implausible section length %d", n)
	}
	out := make([]float64, n)
	for i := range out {
		if out[i], err = d.f64(); err != nil {
			return nil, err
		}
	}
	return out, nil
}

func (d *decoder) matrix() (*mat.Matrix, error) {
	fs, err := d.floats()
	if err != nil {
		return nil, err
	}
	return safeDecodeMatrix(fs)
}

func (d *decoder) matrixOpt() (*mat.Matrix, error) {
	fs, err := d.floats()
	if err != nil {
		return nil, err
	}
	if len(fs) == 0 {
		return nil, nil
	}
	return safeDecodeMatrix(fs)
}

// safeDecodeLU validates an untrusted LU payload the same way.
func safeDecodeLU(fs []float64) (*mat.LU, error) {
	if len(fs) < 2 {
		return nil, fmt.Errorf("core: malformed LU section (len %d)", len(fs))
	}
	n := fs[0]
	const maxDim = 1 << 20
	//lint:ignore floateq integrality check on an untrusted header; Trunc equality is the exact property validated.
	if n != math.Trunc(n) || n < 0 || n > maxDim {
		return nil, fmt.Errorf("core: implausible LU dimension %v", n)
	}
	if len(fs) != mat.EncodedLULen(int(n)) {
		return nil, fmt.Errorf("core: LU payload length %d wrong for n=%v", len(fs), n)
	}
	for i := 0; i < int(n); i++ {
		p := fs[2+i]
		//lint:ignore floateq integrality check on an untrusted pivot index; Trunc equality is the exact property validated.
		if p != math.Trunc(p) || p < 0 || p >= n {
			return nil, fmt.Errorf("core: LU pivot %v out of range", p)
		}
	}
	lu, _ := mat.DecodeLU(fs)
	return lu, nil
}

// safeDecodeMatrix validates an untrusted matrix payload before decoding.
// It rejects non-integral or implausibly large dimensions that
// comm.TryDecodeMatrix (which trusts in-process senders to encode integral
// headers) would accept.
func safeDecodeMatrix(fs []float64) (*mat.Matrix, error) {
	if len(fs) < 2 {
		return nil, fmt.Errorf("core: malformed matrix section (len %d)", len(fs))
	}
	r, c := fs[0], fs[1]
	const maxDim = 1 << 24
	//lint:ignore floateq integrality check on untrusted dimensions; Trunc equality is the exact property validated.
	if r != math.Trunc(r) || c != math.Trunc(c) ||
		r < 0 || c < 0 || r > maxDim || c > maxDim {
		return nil, fmt.Errorf("core: implausible matrix dimensions %v x %v", r, c)
	}
	m, err := comm.TryDecodeMatrix(fs)
	if err != nil {
		return nil, fmt.Errorf("core: matrix section: %w", err)
	}
	return m, nil
}
