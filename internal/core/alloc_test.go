package core

import (
	"math/rand"
	"testing"

	"blocktri/internal/blocktri"
	"blocktri/internal/comm"
	"blocktri/internal/mat"
)

// TestARDSolveToAllocationFree pins the tentpole property of the workspace
// rework: once Factor has run and a warm-up solve has grown the per-rank
// arenas and the comm layer's buffer pools to their high-water marks,
// ARD.SolveTo performs zero heap allocations per solve, for both single and
// batched right-hand sides. (testing.AllocsPerRun pins GOMAXPROCS to 1
// while measuring; the comm runtime's persistent rank workers still make
// progress because every blocking point yields.)
func TestARDSolveToAllocationFree(t *testing.T) {
	// Pin serial kernels: at R=256 the reduced-system products cross the
	// parallel-dispatch threshold, and goroutine spawning allocates by
	// design (TestGEMMParallelAllocationBounded covers that path).
	prev := mat.ParallelEnabled()
	defer mat.SetParallel(prev)
	mat.SetParallel(false)
	rng := rand.New(rand.NewSource(7))
	a := blocktri.RandomDiagDominant(64, 8, rng)
	for _, rhs := range []int{1, 64, 256} {
		s := NewARD(a, Config{World: comm.NewWorld(4)})
		if err := s.Factor(); err != nil {
			t.Fatal(err)
		}
		b := a.RandomRHS(rhs, rng)
		x := mat.New(b.Rows, b.Cols)
		for i := 0; i < 3; i++ { // warm the arenas and pools
			if err := s.SolveTo(x, b); err != nil {
				t.Fatal(err)
			}
		}
		allocs := testing.AllocsPerRun(5, func() {
			if err := s.SolveTo(x, b); err != nil {
				t.Fatal(err)
			}
		})
		if allocs != 0 {
			t.Errorf("ARD.SolveTo R=%d: %v allocs/op, want 0", rhs, allocs)
		}
		// The reused destination must hold exactly what a fresh Solve
		// produces. (At this N the transfer products have grown too much
		// for a residual check — that is RD-family conditioning, measured
		// by PrefixGrowth, not an allocation-path property.)
		want, err := s.Solve(b)
		if err != nil {
			t.Fatal(err)
		}
		if !x.Equal(want) {
			t.Errorf("ARD.SolveTo R=%d differs from Solve", rhs)
		}
	}
}

// TestThomasSolveToAllocationFree pins the sequential baseline's reuse
// path: after the view-header arena warms up, SolveTo allocates nothing.
func TestThomasSolveToAllocationFree(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	a := blocktri.RandomDiagDominant(64, 8, rng)
	th := NewThomas(a)
	if err := th.Factor(); err != nil {
		t.Fatal(err)
	}
	b := a.RandomRHS(4, rng)
	x := mat.New(b.Rows, b.Cols)
	if err := th.SolveTo(x, b); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(5, func() {
		if err := th.SolveTo(x, b); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Errorf("Thomas.SolveTo: %v allocs/op, want 0", allocs)
	}
	if rr := a.RelResidual(x, b); rr > solveTol {
		t.Errorf("Thomas.SolveTo: relative residual %v", rr)
	}
}

// TestSolveToMatchesSolve checks the reuse paths produce bit-identical
// results to the allocating Solve wrappers.
func TestSolveToMatchesSolve(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	a := blocktri.RandomDiagDominant(33, 5, rng)
	b := a.RandomRHS(3, rng)

	ard := NewARD(a, Config{World: comm.NewWorld(3)})
	want, err := ard.Solve(b)
	if err != nil {
		t.Fatal(err)
	}
	got := mat.New(b.Rows, b.Cols)
	if err := ard.SolveTo(got, b); err != nil {
		t.Fatal(err)
	}
	if !got.Equal(want) {
		t.Error("ARD.SolveTo differs from ARD.Solve")
	}

	th := NewThomas(a)
	wantT, err := th.Solve(b)
	if err != nil {
		t.Fatal(err)
	}
	gotT := mat.New(b.Rows, b.Cols)
	if err := th.SolveTo(gotT, b); err != nil {
		t.Fatal(err)
	}
	if !gotT.Equal(wantT) {
		t.Error("Thomas.SolveTo differs from Thomas.Solve")
	}
}

// TestSolveToShapeErrors checks the destination-shape validation.
func TestSolveToShapeErrors(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	a := blocktri.RandomDiagDominant(8, 2, rng)
	b := a.RandomRHS(2, rng)
	bad := mat.New(b.Rows, b.Cols+1)
	if err := NewARD(a, Config{}).SolveTo(bad, b); err == nil {
		t.Error("ARD.SolveTo accepted a mis-shaped destination")
	}
	if err := NewThomas(a).SolveTo(bad, b); err == nil {
		t.Error("Thomas.SolveTo accepted a mis-shaped destination")
	}
}
