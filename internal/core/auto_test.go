package core

import (
	"errors"
	"math/rand"
	"strings"
	"testing"

	"blocktri/internal/blocktri"
	"blocktri/internal/comm"
)

func TestAutoChoosesARDOnStableFamily(t *testing.T) {
	rng := rand.New(rand.NewSource(501))
	a := blocktri.Oscillatory(64, 4, rng)
	auto := NewAuto(a, Config{World: comm.NewWorld(4)}, AutoOptions{})
	b := a.RandomRHS(2, rng)
	x, err := auto.Solve(b)
	if err != nil {
		t.Fatal(err)
	}
	if auto.Name() != "auto(accelerated-recursive-doubling)" {
		t.Fatalf("chose %s: %s", auto.Name(), auto.Reason())
	}
	if rr := a.RelResidual(x, b); rr > 1e-10 {
		t.Fatalf("residual %v", rr)
	}
}

func TestAutoFallsBackToSpikeOnGrowth(t *testing.T) {
	rng := rand.New(rand.NewSource(502))
	a := blocktri.RandomDiagDominant(64, 4, rng) // growth ~1e27
	auto := NewAuto(a, Config{World: comm.NewWorld(4)}, AutoOptions{})
	b := a.RandomRHS(1, rng)
	x, err := auto.Solve(b)
	if err != nil {
		t.Fatal(err)
	}
	if auto.Name() != "auto(spike)" {
		t.Fatalf("chose %s: %s", auto.Name(), auto.Reason())
	}
	if !strings.Contains(auto.Reason(), "growth") {
		t.Fatalf("reason missing growth explanation: %s", auto.Reason())
	}
	if rr := a.RelResidual(x, b); rr > 1e-12 {
		t.Fatalf("residual %v", rr)
	}
}

func TestAutoFallsBackToThomasWhenSpikeUnavailable(t *testing.T) {
	rng := rand.New(rand.NewSource(503))
	a := blocktri.RandomDiagDominant(6, 3, rng) // N < 2P blocks SPIKE
	// Force ARD rejection via a tiny growth budget.
	auto := NewAuto(a, Config{World: comm.NewWorld(4)}, AutoOptions{MaxGrowth: 1})
	b := a.RandomRHS(1, rng)
	x, err := auto.Solve(b)
	if err != nil {
		t.Fatal(err)
	}
	if auto.Name() != "auto(block-thomas)" {
		t.Fatalf("chose %s: %s", auto.Name(), auto.Reason())
	}
	if rr := a.RelResidual(x, b); rr > 1e-12 {
		t.Fatalf("residual %v", rr)
	}
}

func TestAutoFallsBackOnSingularSuperDiagonal(t *testing.T) {
	rng := rand.New(rand.NewSource(504))
	a := blocktri.RandomDiagDominant(16, 3, rng)
	a.Upper[4].Zero() // ARD cannot handle this; SPIKE/Thomas can
	auto := NewAuto(a, Config{World: comm.NewWorld(4)}, AutoOptions{})
	b := a.RandomRHS(1, rng)
	x, err := auto.Solve(b)
	if err != nil {
		t.Fatal(err)
	}
	if auto.Name() == "auto(accelerated-recursive-doubling)" {
		t.Fatal("must not have chosen ARD with a singular super-diagonal block")
	}
	if rr := a.RelResidual(x, b); rr > 1e-10 {
		t.Fatalf("residual %v", rr)
	}
}

func TestAutoShapeAndStateChecks(t *testing.T) {
	rng := rand.New(rand.NewSource(505))
	a := blocktri.Oscillatory(8, 2, rng)
	auto := NewAuto(a, Config{}, AutoOptions{})
	if auto.Name() != "auto(unfactored)" || auto.Factored() || auto.Chosen() != nil {
		t.Fatal("pre-factor state wrong")
	}
	if _, err := auto.Solve(blocktri.New(2, 2).RandomRHS(1, rng)); !errors.Is(err, ErrShape) {
		t.Fatalf("want ErrShape, got %v", err)
	}
	if err := auto.Factor(); err != nil {
		t.Fatal(err)
	}
	if !auto.Factored() || auto.Chosen() == nil {
		t.Fatal("post-factor state wrong")
	}
	// Idempotent.
	chosen := auto.Chosen()
	if err := auto.Factor(); err != nil || auto.Chosen() != chosen {
		t.Fatal("Factor not idempotent")
	}
}

func TestAutoComposesWithRefinement(t *testing.T) {
	rng := rand.New(rand.NewSource(506))
	a := blocktri.RandomDiagDominant(16, 4, rng)
	// Allow ARD despite moderate growth, then refine back to precision.
	auto := NewAuto(a, Config{World: comm.NewWorld(2)}, AutoOptions{MaxGrowth: 1e12})
	b := a.RandomRHS(1, rng)
	x, rep, err := SolveRefined(auto, b, 3)
	if err != nil {
		t.Fatal(err)
	}
	if rr := a.RelResidual(x, b); rr > 1e-12 {
		t.Fatalf("refined auto residual %v (report %+v)", rr, rep)
	}
}

func TestAutoHandlesOverflowedGrowth(t *testing.T) {
	// At N=256 on a strongly dominant matrix the prefix products overflow
	// to +Inf; the growth budget comparison must still reject ARD.
	rng := rand.New(rand.NewSource(507))
	a := blocktri.RandomDiagDominant(256, 3, rng)
	auto := NewAuto(a, Config{World: comm.NewWorld(4)}, AutoOptions{})
	b := a.RandomRHS(1, rng)
	x, err := auto.Solve(b)
	if err != nil {
		t.Fatal(err)
	}
	if auto.Name() == "auto(accelerated-recursive-doubling)" {
		t.Fatalf("ARD accepted with overflowed growth: %s", auto.Reason())
	}
	if !strings.Contains(auto.Reason(), "pre-screened") {
		t.Fatalf("expected the cheap pre-screen to reject ARD: %s", auto.Reason())
	}
	if rr := a.RelResidual(x, b); rr > 1e-11 {
		t.Fatalf("residual %v", rr)
	}
}
