package core

import (
	"errors"
	"fmt"
	"time"

	"blocktri/internal/blocktri"
	"blocktri/internal/comm"
	"blocktri/internal/mat"
)

// Spike implements the SPIKE / partition method (Sameh's algorithm), the
// numerically stable factor/solve-split alternative to recursive
// doubling, included as the strongest baseline for the comparison suite:
//
//   - Factor (once per matrix): each rank block-LU-factors its local
//     chunk A_r, computes the left/right "spikes" V_r = A_r^{-1} B_r and
//     W_r = A_r^{-1} C_r (the couplings to the halo unknowns), and the
//     root assembles and factors the (P-1)-row reduced block tridiagonal
//     system of size 2M over the partition-interface unknowns. Cost
//     O(M^3 N/P) per rank + O(M^3 P) at the root.
//
//   - Solve (per right-hand side): a local O(M^2 R N/P) chunk solve, a
//     gather of the 2M-row interface data, an O(M^2 R P) reduced solve at
//     the root, a scatter, and a local O(M^2 R N/P) spike update.
//
// Unlike RD/ARD it performs no transfer-matrix products, so its accuracy
// matches block Thomas on every family (at the price of an O(P) reduced
// phase instead of O(log P), in this non-recursive variant).
//
// Requirements: every rank must own at least two block rows (N >= 2*P),
// and the chunk diagonal blocks must admit a block LU (guaranteed for
// block diagonally dominant systems).
type Spike struct {
	a     *blocktri.Matrix
	world *comm.World

	factored    bool
	rk          []*spikeRankState
	ws          []*mat.Workspace // per-rank solve arenas
	reduced     *Thomas          // factored reduced system, held by the root
	factorStats SolveStats
	solveStats  SolveStats
}

// ErrChunkTooSmall is returned when a rank owns fewer than two block rows.
var ErrChunkTooSmall = errors.New("core: spike requires at least 2 block rows per rank (N >= 2P)")

type spikeRankState struct {
	lo, hi int
	local  *Thomas     // factorization of the chunk A_r
	v      *mat.Matrix // left spike, (n_r*M) x M, nil on rank 0
	w      *mat.Matrix // right spike, (n_r*M) x M, nil on rank P-1
}

// NewSpike returns a SPIKE solver for a over cfg's world.
func NewSpike(a *blocktri.Matrix, cfg Config) *Spike {
	w := cfg.world()
	ws := make([]*mat.Workspace, w.P)
	for i := range ws {
		ws[i] = mat.NewWorkspace()
	}
	return &Spike{a: a, world: w, ws: ws}
}

// Name implements Solver.
func (s *Spike) Name() string { return "spike" }

// Factored implements Factored.
func (s *Spike) Factored() bool { return s.factored }

// FactorStats returns the cost of the Factor call.
func (s *Spike) FactorStats() SolveStats { return s.factorStats }

// Stats returns the cost of the most recent Solve call.
func (s *Spike) Stats() SolveStats { return s.solveStats }

// Message tags for the SPIKE phases.
const (
	tagSpikeFactorGather = 210 + iota
	tagSpikeSolveGather
	tagSpikeSolveScatter
)

// chunkMatrix extracts the local block tridiagonal chunk A_r (rows
// [lo, hi)) with the halo couplings removed.
func chunkMatrix(a *blocktri.Matrix, lo, hi int) *blocktri.Matrix {
	n := hi - lo
	c := &blocktri.Matrix{
		N:     n,
		M:     a.M,
		Lower: make([]*mat.Matrix, n),
		Diag:  make([]*mat.Matrix, n),
		Upper: make([]*mat.Matrix, n),
	}
	for i := 0; i < n; i++ {
		c.Diag[i] = a.Diag[lo+i]
		if i > 0 {
			c.Lower[i] = a.Lower[lo+i]
		}
		if i < n-1 {
			c.Upper[i] = a.Upper[lo+i]
		}
	}
	return c
}

// Factor implements Factored.
func (s *Spike) Factor() error {
	if s.factored {
		return nil
	}
	start := time.Now()
	a := s.a
	p := s.world.P
	if p == 1 {
		// Degenerate single-rank case: SPIKE is exactly block Thomas.
		th := NewThomas(a)
		if err := th.Factor(); err != nil {
			return err
		}
		s.rk = []*spikeRankState{{lo: 0, hi: a.N, local: th}}
		s.factored = true
		s.factorStats = th.Stats()
		return nil
	}
	if a.N < 2*p {
		return fmt.Errorf("%w: N=%d P=%d", ErrChunkTooSmall, a.N, p)
	}
	w := s.world
	w.ResetTotals()
	s.rk = make([]*spikeRankState, p)
	perRank := make([]int64, p)
	var es errSlot
	runErr := w.Run(func(c *comm.Comm) {
		perRank[c.Rank()] = s.factorRank(c, &es)
	})
	if err := es.get(); err != nil {
		s.rk = nil
		return err
	}
	if runErr != nil {
		s.rk = nil
		return runErr
	}
	s.factored = true
	s.factorStats = SolveStats{
		Comm:        w.TotalStats(),
		MaxSimComm:  w.MaxSimCommTime(),
		Wall:        time.Since(start),
		StoredBytes: s.storedBytes(),
	}
	s.factorStats.mergeRankFlops(perRank)
	return nil
}

// storedBytes totals the retained factor state: each rank's local block
// LU, the two spikes, and the root's factored reduced system. The local
// Thomas storage is computed analytically because its Stats() were
// overwritten by the spike solves during Factor.
func (s *Spike) storedBytes() int64 {
	var total int64
	m := int64(s.a.M)
	thomasBytes := func(n, blk int64) int64 {
		return n*(8*blk*blk+8*blk) + (n-1)*8*blk*blk
	}
	for _, st := range s.rk {
		if st == nil {
			continue
		}
		total += thomasBytes(int64(st.hi-st.lo), m)
		total += matBytes(st.v) + matBytes(st.w)
	}
	if s.reduced != nil {
		total += thomasBytes(int64(s.world.P-1), 2*m)
	}
	return total
}

func (s *Spike) factorRank(c *comm.Comm, es *errSlot) int64 {
	a := s.a
	r, p := c.Rank(), c.Size()
	m := a.M
	lo, hi := PartRange(a.N, p, r)
	nr := hi - lo
	st := &spikeRankState{lo: lo, hi: hi}
	s.rk[r] = st
	var fc flopCounter

	// Local factorization of the chunk.
	st.local = NewThomas(chunkMatrix(a, lo, hi))
	err := st.local.Factor()
	if err == nil {
		fc.add(st.local.Stats().Flops)
		// Spikes: V = A_r^{-1} [L_lo; 0; ...], W = A_r^{-1} [...; 0; U_{hi-1}].
		if r > 0 {
			rhs := mat.New(nr*m, m)
			rhs.View(0, 0, m, m).CopyFrom(a.Lower[lo])
			st.v, err = st.local.Solve(rhs)
			fc.add(st.local.Stats().Flops)
		}
	}
	if err == nil && r < p-1 {
		rhs := mat.New(nr*m, m)
		rhs.View((nr-1)*m, 0, m, m).CopyFrom(a.Upper[hi-1])
		st.w, err = st.local.Solve(rhs)
		fc.add(st.local.Stats().Flops)
	}
	if err != nil {
		es.set(fmt.Errorf("core: spike rank %d: %w", r, err))
	}
	if !agreeOK(c, err == nil) {
		return fc.n
	}

	// Gather the spike corner blocks at the root and assemble the reduced
	// interface system: unknowns z_r = [x_{hi_r - 1} ; x_{lo_{r+1}}] for
	// r = 0..P-2, block tridiagonal with 2M x 2M blocks.
	zero := mat.New(m, m)
	corner := func(sp *mat.Matrix, top bool) *mat.Matrix {
		if sp == nil {
			return zero
		}
		if top {
			return sp.View(0, 0, m, m)
		}
		return sp.View((nr-1)*m, 0, m, m)
	}
	payload := comm.EncodeMatrices(
		corner(st.v, true), corner(st.v, false),
		corner(st.w, true), corner(st.w, false),
	)
	root := 0
	gathered := c.Gather(root, payload)
	reducedOK := true
	if r == root {
		reduced, err := s.assembleReduced(gathered)
		if err == nil {
			s.reduced = NewThomas(reduced)
			err = s.reduced.Factor()
			if err == nil {
				fc.add(s.reduced.Stats().Flops)
			}
		}
		if err != nil {
			es.set(fmt.Errorf("core: spike reduced system: %w", err))
			reducedOK = false
		}
	}
	if !agreeOK(c, reducedOK) {
		return fc.n
	}
	return fc.n
}

// assembleReduced builds the (P-1)-row reduced block tridiagonal system
// from the gathered per-rank corner blocks [Vtop, Vbot, Wtop, Wbot].
func (s *Spike) assembleReduced(gathered [][]float64) (*blocktri.Matrix, error) {
	m := s.a.M
	p := s.world.P
	type corners struct{ vt, vb, wt, wb *mat.Matrix }
	cs := make([]corners, p)
	for r := 0; r < p; r++ {
		ms := comm.DecodeMatrices(gathered[r])
		if len(ms) != 4 {
			return nil, fmt.Errorf("rank %d sent %d corner blocks", r, len(ms))
		}
		cs[r] = corners{vt: ms[0], vb: ms[1], wt: ms[2], wb: ms[3]}
	}
	red := blocktri.New(p-1, 2*m)
	for r := 0; r < p-1; r++ {
		d := red.Diag[r]
		d.SetIdentity()
		// Bottom-row equation of rank r: b_r + Vbot_r b_{r-1} + Wbot_r t_{r+1} = g.
		d.View(0, m, m, m).CopyFrom(cs[r].wb)
		// Top-row equation of rank r+1: t_{r+1} + Vtop_{r+1} b_r + Wtop_{r+1} t_{r+2} = g.
		d.View(m, 0, m, m).CopyFrom(cs[r+1].vt)
		if r > 0 {
			red.Lower[r].View(0, 0, m, m).CopyFrom(cs[r].vb)
		}
		if r < p-2 {
			red.Upper[r].View(m, m, m, m).CopyFrom(cs[r+1].wt)
		}
	}
	return red, nil
}

// Solve implements Solver.
func (s *Spike) Solve(b *mat.Matrix) (*mat.Matrix, error) {
	if err := checkRHS(s.a, b); err != nil {
		return nil, err
	}
	if err := s.Factor(); err != nil {
		return nil, err
	}
	start := time.Now()
	if s.world.P == 1 {
		x, err := s.rk[0].local.Solve(b)
		if err != nil {
			return nil, err
		}
		s.solveStats = s.rk[0].local.Stats()
		return x, nil
	}
	w := s.world
	w.ResetTotals()
	//lint:ignore hotalloc Solve returns a caller-owned result matrix
	x := mat.New(s.a.N*s.a.M, b.Cols)
	perRank := make([]int64, w.P)
	var es errSlot
	runErr := w.Run(func(c *comm.Comm) {
		perRank[c.Rank()] = s.solveRank(c, b, x, &es)
	})
	if err := es.get(); err != nil {
		return nil, err
	}
	if runErr != nil {
		return nil, runErr
	}
	s.solveStats = SolveStats{
		Comm:       w.TotalStats(),
		MaxSimComm: w.MaxSimCommTime(),
		Wall:       time.Since(start),
	}
	s.solveStats.mergeRankFlops(perRank)
	return x, nil
}

func (s *Spike) solveRank(c *comm.Comm, b, x *mat.Matrix, es *errSlot) int64 {
	a := s.a
	r, p := c.Rank(), c.Size()
	m, rhs := a.M, b.Cols
	st := s.rk[r]
	nr := st.hi - st.lo
	ws := s.ws[r]
	ws.Reset()
	var fc flopCounter

	// Local chunk solve: X0 = A_r^{-1} b_r, into an arena buffer.
	x0 := ws.GetNoClear(nr*m, rhs)
	err := st.local.SolveTo(x0, ws.View(b, st.lo*m, 0, nr*m, rhs))
	if err == nil {
		fc.add(st.local.Stats().Flops)
	} else {
		es.set(err)
	}
	if !agreeOK(c, err == nil) {
		return fc.n
	}

	// Gather the interface rows [x0 top ; x0 bottom] at the root.
	root := 0
	payload := comm.EncodeMatrices(
		ws.View(x0, 0, 0, m, rhs),
		ws.View(x0, (nr-1)*m, 0, m, rhs),
	)
	gathered := c.Gather(root, payload)

	// Root: reduced solve, then scatter each rank its halo values
	// (x_{lo-1} = b_{r-1} and x_{hi} = t_{r+1}).
	reducedOK := true
	if r == root {
		zrhs := ws.GetNoClear((p-1)*2*m, rhs) // every row overwritten below
		type gf struct{ top, bot *mat.Matrix }
		gs := make([]gf, p)
		for q := 0; q < p; q++ {
			ms := comm.DecodeMatrices(gathered[q])
			gs[q] = gf{top: ms[0], bot: ms[1]}
		}
		for q := 0; q < p-1; q++ {
			ws.View(zrhs, q*2*m, 0, m, rhs).CopyFrom(gs[q].bot)
			ws.View(zrhs, q*2*m+m, 0, m, rhs).CopyFrom(gs[q+1].top)
		}
		z := ws.GetNoClear((p-1)*2*m, rhs)
		err := s.reduced.SolveTo(z, zrhs)
		if err == nil {
			fc.add(s.reduced.Stats().Flops)
			zero := ws.Get(m, rhs)
			for q := 0; q < p; q++ {
				// Halo for rank q: left = b_{q-1} (z[q-1][0:M]), right = t_{q+1} (z[q][M:2M]).
				left, right := zero, zero
				if q > 0 {
					left = ws.View(z, (q-1)*2*m, 0, m, rhs)
				}
				if q < p-1 {
					right = ws.View(z, q*2*m+m, 0, m, rhs)
				}
				c.Send(q, tagSpikeSolveScatter, comm.EncodeMatrices(left, right))
			}
		} else {
			es.set(err)
			reducedOK = false
		}
	}
	if !agreeOK(c, reducedOK) {
		return fc.n
	}
	halo := comm.DecodeMatrices(c.Recv(root, tagSpikeSolveScatter))
	left, right := halo[0], halo[1]

	// Local update: X = X0 - V*left - W*right, written into the global x.
	out := ws.View(x, st.lo*m, 0, nr*m, rhs)
	out.CopyFrom(x0)
	if st.v != nil {
		mat.MulSub(out, st.v, left)
		fc.add(gemmFlops(nr*m, m, rhs))
	}
	if st.w != nil {
		mat.MulSub(out, st.w, right)
		fc.add(gemmFlops(nr*m, m, rhs))
	}
	return fc.n
}
