package core

import (
	"blocktri/internal/blocktri"
	"blocktri/internal/mat"
)

// Dense is the reference solver: it expands the block tridiagonal matrix
// to dense form and applies pivoted LU. O((N*M)^3) factor cost makes it
// usable only at test scale, but it is backed by nothing except the dense
// kernels and therefore serves as the accuracy oracle for every other
// solver.
type Dense struct {
	a  *blocktri.Matrix
	lu *mat.LU
}

// NewDense wraps a; factorization happens lazily on first Solve or an
// explicit Factor call.
func NewDense(a *blocktri.Matrix) *Dense { return &Dense{a: a} }

// Name implements Solver.
func (d *Dense) Name() string { return "dense-lu" }

// Factor implements Factored.
func (d *Dense) Factor() error {
	if d.lu != nil {
		return nil
	}
	lu, err := mat.Factor(d.a.Dense())
	if err != nil {
		return err
	}
	d.lu = lu
	return nil
}

// Factored implements Factored.
func (d *Dense) Factored() bool { return d.lu != nil }

// Solve implements Solver.
func (d *Dense) Solve(b *mat.Matrix) (*mat.Matrix, error) {
	if err := checkRHS(d.a, b); err != nil {
		return nil, err
	}
	if err := d.Factor(); err != nil {
		return nil, err
	}
	return d.lu.Solve(b), nil
}
