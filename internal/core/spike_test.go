package core

import (
	"errors"
	"math/rand"
	"testing"
	"testing/quick"

	"blocktri/internal/blocktri"
	"blocktri/internal/comm"
)

func TestSpikeAgreesWithDense(t *testing.T) {
	rng := rand.New(rand.NewSource(201))
	cases := []struct{ n, m, r, p int }{
		{4, 2, 1, 2}, {8, 3, 2, 2}, {12, 2, 3, 4}, {16, 4, 1, 5},
		{9, 3, 2, 3}, {32, 2, 2, 8}, {7, 2, 1, 1},
	}
	for _, tc := range cases {
		a := blocktri.RandomDiagDominant(tc.n, tc.m, rng)
		b := a.RandomRHS(tc.r, rng)
		ref := requireAccurate(t, a, NewDense(a), b)
		sp := NewSpike(a, Config{World: comm.NewWorld(tc.p)})
		x := requireAccurate(t, a, sp, b)
		if !x.EqualApprox(ref, 1e-8*float64(tc.n)) {
			t.Fatalf("spike disagrees with dense at N=%d M=%d R=%d P=%d", tc.n, tc.m, tc.r, tc.p)
		}
	}
}

func TestSpikeStableWhereRDIsNot(t *testing.T) {
	// The accuracy contrast that motivates keeping SPIKE as a baseline:
	// on a strongly diagonally dominant system at large N, recursive
	// doubling's prefix products explode while SPIKE stays at machine
	// precision.
	rng := rand.New(rand.NewSource(202))
	a := blocktri.RandomDiagDominant(64, 4, rng)
	b := a.RandomRHS(2, rng)
	sp := NewSpike(a, Config{World: comm.NewWorld(4)})
	x, err := sp.Solve(b)
	if err != nil {
		t.Fatal(err)
	}
	if rr := a.RelResidual(x, b); rr > 1e-12 {
		t.Fatalf("spike residual %v on dominant system", rr)
	}
	rd := NewRD(a, Config{World: comm.NewWorld(4)})
	xr, err := rd.Solve(b)
	if err != nil {
		t.Fatal(err)
	}
	if rr := a.RelResidual(xr, b); rr < 1 {
		t.Fatalf("expected RD to be inaccurate here, residual %v", rr)
	}
}

func TestSpikeFactorReuse(t *testing.T) {
	rng := rand.New(rand.NewSource(203))
	a := blocktri.RandomDiagDominant(20, 3, rng)
	sp := NewSpike(a, Config{World: comm.NewWorld(4)})
	if sp.Factored() {
		t.Fatal("factored before Factor")
	}
	if err := sp.Factor(); err != nil {
		t.Fatal(err)
	}
	factorFlops := sp.FactorStats().Flops
	if factorFlops <= 0 {
		t.Fatal("no factor flops recorded")
	}
	for trial := 0; trial < 3; trial++ {
		b := a.RandomRHS(1+trial, rng)
		requireAccurate(t, a, sp, b)
		if sp.Stats().Flops >= factorFlops {
			t.Fatalf("solve flops %d should be well below factor flops %d",
				sp.Stats().Flops, factorFlops)
		}
	}
	if err := sp.Factor(); err != nil {
		t.Fatal(err)
	}
	if sp.FactorStats().Flops != factorFlops {
		t.Fatal("repeated Factor redid work")
	}
}

func TestSpikeChunkTooSmall(t *testing.T) {
	rng := rand.New(rand.NewSource(204))
	a := blocktri.RandomDiagDominant(5, 2, rng)
	sp := NewSpike(a, Config{World: comm.NewWorld(3)})
	if err := sp.Factor(); !errors.Is(err, ErrChunkTooSmall) {
		t.Fatalf("want ErrChunkTooSmall, got %v", err)
	}
	// P=1 has no chunk constraint.
	sp1 := NewSpike(a, Config{})
	b := a.RandomRHS(1, rng)
	requireAccurate(t, a, sp1, b)
}

func TestSpikeShapeError(t *testing.T) {
	rng := rand.New(rand.NewSource(205))
	a := blocktri.RandomDiagDominant(8, 2, rng)
	sp := NewSpike(a, Config{World: comm.NewWorld(2)})
	if _, err := sp.Solve(blocktri.New(2, 2).RandomRHS(1, rng)); !errors.Is(err, ErrShape) {
		t.Fatalf("want ErrShape, got %v", err)
	}
}

func TestSpikeOnAllStableFamilies(t *testing.T) {
	rng := rand.New(rand.NewSource(206))
	mats := []*blocktri.Matrix{
		blocktri.RandomDiagDominant(24, 3, rng),
		blocktri.Poisson2D(5, 24),
		blocktri.ConvectionDiffusion(4, 24, 0.7),
		blocktri.BlockToeplitz(24, 3, rng),
		blocktri.AnisotropicDiffusion(4, 24, 0.05),
	}
	for _, a := range mats {
		b := a.RandomRHS(2, rng)
		sp := NewSpike(a, Config{World: comm.NewWorld(4)})
		x, err := sp.Solve(b)
		if err != nil {
			t.Fatal(err)
		}
		if rr := a.RelResidual(x, b); rr > 1e-10 {
			t.Fatalf("spike residual %v", rr)
		}
	}
}

// Property: SPIKE matches dense LU for random dominant systems across
// random partitions.
func TestSpikeDenseProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		p := 1 + rng.Intn(5)
		n := 2*p + rng.Intn(20)
		m := 1 + rng.Intn(4)
		r := 1 + rng.Intn(3)
		a := blocktri.RandomDiagDominant(n, m, rng)
		b := a.RandomRHS(r, rng)
		ref, err := NewDense(a).Solve(b)
		if err != nil {
			return false
		}
		x, err := NewSpike(a, Config{World: comm.NewWorld(p)}).Solve(b)
		return err == nil && x.EqualApprox(ref, 1e-8*float64(n))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// Property: SPIKE solve flops are far below its factor flops (the
// factor/solve split holds), and per-solve cost is linear in R.
func TestSpikeCostShapeProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		p := 2 + rng.Intn(3)
		n := 4 * p
		m := 2 + rng.Intn(3)
		a := blocktri.RandomDiagDominant(n, m, rng)
		sp := NewSpike(a, Config{World: comm.NewWorld(p)})
		if err := sp.Factor(); err != nil {
			return false
		}
		if _, err := sp.Solve(a.RandomRHS(1, rng)); err != nil {
			return false
		}
		f1 := sp.Stats().Flops
		if _, err := sp.Solve(a.RandomRHS(4, rng)); err != nil {
			return false
		}
		f4 := sp.Stats().Flops
		return f1 < sp.FactorStats().Flops && f4 > 3*f1 && f4 < 5*f1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}
