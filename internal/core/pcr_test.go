package core

import (
	"errors"
	"math/rand"
	"testing"
	"testing/quick"

	"blocktri/internal/blocktri"
	"blocktri/internal/comm"
)

func TestPCRAgreesWithDense(t *testing.T) {
	rng := rand.New(rand.NewSource(601))
	cases := []struct{ n, m, r, p int }{
		{1, 2, 1, 1}, {2, 2, 1, 1}, {3, 3, 2, 2}, {8, 2, 3, 4},
		{13, 3, 1, 4}, {16, 4, 2, 3}, {31, 2, 2, 8}, {7, 2, 1, 7},
	}
	for _, tc := range cases {
		a := blocktri.RandomDiagDominant(tc.n, tc.m, rng)
		b := a.RandomRHS(tc.r, rng)
		ref := requireAccurate(t, a, NewDense(a), b)
		pcr := NewPCR(a, Config{World: comm.NewWorld(tc.p)})
		x := requireAccurate(t, a, pcr, b)
		if !x.EqualApprox(ref, 1e-8*float64(tc.n)) {
			t.Fatalf("PCR disagrees with dense at N=%d M=%d R=%d P=%d", tc.n, tc.m, tc.r, tc.p)
		}
	}
}

func TestPCRStableOnDominantFamilies(t *testing.T) {
	rng := rand.New(rand.NewSource(602))
	mats := []*blocktri.Matrix{
		blocktri.RandomDiagDominant(64, 4, rng),
		blocktri.Poisson2D(5, 48),
		blocktri.ConvectionDiffusion(4, 40, 0.6),
	}
	for _, a := range mats {
		b := a.RandomRHS(2, rng)
		pcr := NewPCR(a, Config{World: comm.NewWorld(4)})
		x, err := pcr.Solve(b)
		if err != nil {
			t.Fatal(err)
		}
		if rr := a.RelResidual(x, b); rr > 1e-11 {
			t.Fatalf("PCR residual %v (dominant family should be stable)", rr)
		}
	}
}

func TestPCRFactorReuse(t *testing.T) {
	rng := rand.New(rand.NewSource(603))
	a := blocktri.RandomDiagDominant(24, 3, rng)
	pcr := NewPCR(a, Config{World: comm.NewWorld(4)})
	if err := pcr.Factor(); err != nil {
		t.Fatal(err)
	}
	factorFlops := pcr.FactorStats().Flops
	if factorFlops <= 0 {
		t.Fatal("no factor flops recorded")
	}
	for trial := 0; trial < 3; trial++ {
		b := a.RandomRHS(1+trial, rng)
		requireAccurate(t, a, pcr, b)
		if pcr.Stats().Flops >= factorFlops {
			t.Fatalf("solve flops %d not below factor flops %d", pcr.Stats().Flops, factorFlops)
		}
	}
	if err := pcr.Factor(); err != nil {
		t.Fatal(err)
	}
	if pcr.FactorStats().Flops != factorFlops {
		t.Fatal("repeated Factor redid work")
	}
}

func TestPCRWorkIsLogNHeavierThanThomas(t *testing.T) {
	// PCR's factor work carries the log N factor; doubling N should more
	// than double flops, and PCR factor >> Thomas factor.
	rng := rand.New(rand.NewSource(604))
	flopsAt := func(n int) int64 {
		a := blocktri.RandomDiagDominant(n, 3, rng)
		pcr := NewPCR(a, Config{World: comm.NewWorld(2)})
		if err := pcr.Factor(); err != nil {
			t.Fatal(err)
		}
		return pcr.FactorStats().Flops
	}
	f64, f128 := flopsAt(64), flopsAt(128)
	ratio := float64(f128) / float64(f64)
	if ratio < 2.05 || ratio > 2.6 {
		t.Fatalf("PCR factor scaling ratio %v not in the (2, 2.6) superlinear band", ratio)
	}
}

func TestPCRMoreRanksThanRows(t *testing.T) {
	rng := rand.New(rand.NewSource(605))
	a := blocktri.RandomDiagDominant(3, 2, rng)
	b := a.RandomRHS(2, rng)
	for _, p := range []int{4, 8} {
		pcr := NewPCR(a, Config{World: comm.NewWorld(p)})
		requireAccurate(t, a, pcr, b)
	}
}

func TestPCRShapeError(t *testing.T) {
	rng := rand.New(rand.NewSource(606))
	a := blocktri.RandomDiagDominant(4, 2, rng)
	pcr := NewPCR(a, Config{})
	if _, err := pcr.Solve(blocktri.New(3, 2).RandomRHS(1, rng)); !errors.Is(err, ErrShape) {
		t.Fatalf("want ErrShape, got %v", err)
	}
}

func TestPCROwnerInversion(t *testing.T) {
	for _, tc := range []struct{ n, p int }{{10, 3}, {16, 4}, {7, 7}, {100, 8}, {5, 2}} {
		for j := 0; j < tc.n; j++ {
			r := pcrOwner(tc.n, tc.p, j)
			lo, hi := PartRange(tc.n, tc.p, r)
			if j < lo || j >= hi {
				t.Fatalf("n=%d p=%d: owner(%d)=%d but range is [%d,%d)", tc.n, tc.p, j, r, lo, hi)
			}
		}
	}
}

func TestPCRSingularDiagonalAtSomeLevel(t *testing.T) {
	// A matrix whose diagonal becomes singular during reduction must fail
	// collectively with an error, not deadlock or panic.
	a := blocktri.New(4, 1)
	// Scalar tridiagonal [0 1; 1 0 1; 1 0 1; 1 0]: D=0 at level 0.
	for i := 0; i < 4; i++ {
		a.Diag[i].Set(0, 0, 0)
		if i > 0 {
			a.Lower[i].Set(0, 0, 1)
		}
		if i < 3 {
			a.Upper[i].Set(0, 0, 1)
		}
	}
	pcr := NewPCR(a, Config{World: comm.NewWorld(2)})
	if err := pcr.Factor(); err == nil {
		t.Fatal("expected factor error for singular diagonal")
	}
}

// Property: PCR matches dense across random shapes and partitions.
func TestPCRDenseProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(24)
		m := 1 + rng.Intn(4)
		p := 1 + rng.Intn(6)
		r := 1 + rng.Intn(3)
		a := blocktri.RandomDiagDominant(n, m, rng)
		b := a.RandomRHS(r, rng)
		ref, err := NewDense(a).Solve(b)
		if err != nil {
			return false
		}
		x, err := NewPCR(a, Config{World: comm.NewWorld(p)}).Solve(b)
		return err == nil && x.EqualApprox(ref, 1e-7*float64(n))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestPCRStoredBytes(t *testing.T) {
	rng := rand.New(rand.NewSource(607))
	a := blocktri.RandomDiagDominant(32, 4, rng)
	pcr := NewPCR(a, Config{World: comm.NewWorld(4)})
	if err := pcr.Factor(); err != nil {
		t.Fatal(err)
	}
	stored := pcr.FactorStats().StoredBytes
	// At least the final LU per row plus one coefficient per interior row
	// per level must be retained.
	if min := int64(a.N) * 8 * int64(a.M) * int64(a.M); stored < min {
		t.Fatalf("PCR stored %d below minimum %d", stored, min)
	}
}
