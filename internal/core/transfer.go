package core

import (
	"errors"
	"fmt"

	"blocktri/internal/blocktri"
	"blocktri/internal/mat"
)

// ErrSingularSuper is returned when a super-diagonal block U_i is singular,
// which the transfer-matrix recursive doubling formulation cannot handle.
var ErrSingularSuper = errors.New("core: singular super-diagonal block (recursive doubling requires nonsingular U_i)")

// ErrShape is returned when a right-hand side has the wrong shape.
var ErrShape = errors.New("core: right-hand side shape mismatch")

// PartRange returns the contiguous block range [lo, hi) owned by rank r of
// p when distributing n block rows. Ranges differ in size by at most one;
// rank p-1 always ends at n.
func PartRange(n, p, r int) (lo, hi int) {
	return r * n / p, (r + 1) * n / p
}

// element is the scan element E_i (1 <= i <= N-1) of the transfer-matrix
// formulation. Element i propagates the state y_i = [x_i ; x_{i-1}]:
//
//	y_i = T*y_{i-1} + F,  T = | -U^{-1}D   -U^{-1}L |  F = | U^{-1}b |
//	                          |     I          0    |      |    0    |
//
// built from block row j = i-1. T is matrix-only; luU is retained so the
// right-hand-side part F can be (re)built per solve.
type element struct {
	idx int         // element index i (the state it produces)
	t   *mat.Matrix // 2M x 2M transfer matrix
	luU *mat.LU     // factorization of U_{i-1}, for building F
}

// buildElement constructs element i from the blocks of a. It costs one
// M x M LU factorization plus two M-column triangular solves: O(M^3).
func buildElement(a *blocktri.Matrix, i int) (element, error) {
	j := i - 1
	m := a.M
	luU, err := mat.Factor(a.Upper[j])
	if err != nil {
		return element{}, fmt.Errorf("block row %d: %w", j, ErrSingularSuper)
	}
	t := mat.New(2*m, 2*m)
	// Top-left: -U^{-1} D_j.
	tl := t.View(0, 0, m, m)
	luU.SolveTo(tl, a.Diag[j])
	mat.Scale(tl, -1)
	// Top-right: -U^{-1} L_j (zero when j == 0: x_{-1} = 0).
	if a.Lower[j] != nil {
		tr := t.View(0, m, m, m)
		luU.SolveTo(tr, a.Lower[j])
		mat.Scale(tr, -1)
	}
	// Bottom-left: identity.
	t.View(m, 0, m, m).SetIdentity()
	return element{idx: i, t: t, luU: luU}, nil
}

// buildF constructs the right-hand-side part F = [U^{-1} b_{i-1} ; 0]
// (2M x R) for the element, costing O(M^2 R).
func (e element) buildF(m int, bBlock *mat.Matrix) *mat.Matrix {
	f := mat.New(2*m, bBlock.Cols)
	e.luU.SolveTo(f.View(0, 0, m, bBlock.Cols), bBlock)
	return f
}

// affine returns the full scan element (T, F) for the given right-hand
// side block.
func (e element) affine(m int, bBlock *mat.Matrix) Affine {
	return Affine{S: e.t, H: e.buildF(m, bBlock)}
}

// applyPrefixState computes y_{s-1} = S[:, 0:M]*x0 + H, the state entering
// a rank's chunk, given the cross-rank exclusive prefix (S, H) and the
// broadcast first unknown x0 (M x R). A nil S means the identity prefix:
// y = [x0 ; 0].
func applyPrefixState(m int, s, h, x0 *mat.Matrix) *mat.Matrix {
	y := mat.New(2*m, x0.Cols)
	if s == nil {
		y.View(0, 0, m, x0.Cols).CopyFrom(x0)
		return y
	}
	mat.Mul(y, s.View(0, 0, 2*m, m), x0)
	if h != nil {
		mat.Add(y, y, h)
	}
	return y
}

// reducedSystem assembles the M x M reduced system for x_0 from the global
// total prefix (S, H) = P_{N-1} and the last block row:
//
//	(D_{N-1} S11 + L_{N-1} S21) x0 = b_{N-1} - D_{N-1} H1 - L_{N-1} H2
//
// It returns the reduced matrix; the right-hand side is assembled
// separately by reducedRHS so ARD can factor the matrix once.
func reducedMatrix(a *blocktri.Matrix, s *mat.Matrix) *mat.Matrix {
	m := a.M
	last := a.N - 1
	rm := mat.New(m, m)
	mat.Mul(rm, a.Diag[last], s.View(0, 0, m, m))
	tmp := mat.New(m, m)
	mat.Mul(tmp, a.Lower[last], s.View(m, 0, m, m))
	mat.Add(rm, rm, tmp)
	return rm
}

// reducedRHS assembles the reduced right-hand side (M x R) from the global
// total prefix H part and the last right-hand-side block.
func reducedRHS(a *blocktri.Matrix, h, bLast *mat.Matrix) *mat.Matrix {
	m, r := a.M, bLast.Cols
	last := a.N - 1
	rhs := bLast.Clone()
	if h != nil {
		mat.MulSub(rhs, a.Diag[last], h.View(0, 0, m, r))
		mat.MulSub(rhs, a.Lower[last], h.View(m, 0, m, r))
	}
	return rhs
}

// checkRHS validates a stacked right-hand side against the system shape.
func checkRHS(a *blocktri.Matrix, b *mat.Matrix) error {
	if b.Rows != a.N*a.M || b.Cols < 1 {
		return fmt.Errorf("%w: got %dx%d, want %d rows", ErrShape, b.Rows, b.Cols, a.N*a.M)
	}
	return nil
}

// blockOf returns the M x R view of block row i within a stacked vector.
func blockOf(b *mat.Matrix, m, i int) *mat.Matrix {
	return b.View(i*m, 0, m, b.Cols)
}
