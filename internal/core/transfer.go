package core

import (
	"errors"
	"fmt"

	"blocktri/internal/blocktri"
	"blocktri/internal/mat"
)

// ErrSingularSuper is returned when a super-diagonal block U_i is singular,
// which the transfer-matrix recursive doubling formulation cannot handle.
var ErrSingularSuper = errors.New("core: singular super-diagonal block (recursive doubling requires nonsingular U_i)")

// ErrShape is returned when a right-hand side has the wrong shape.
var ErrShape = errors.New("core: right-hand side shape mismatch")

// PartRange returns the contiguous block range [lo, hi) owned by rank r of
// p when distributing n block rows. Ranges differ in size by at most one;
// rank p-1 always ends at n.
func PartRange(n, p, r int) (lo, hi int) {
	return r * n / p, (r + 1) * n / p
}

// element is the scan element E_i (1 <= i <= N-1) of the transfer-matrix
// formulation. Element i propagates the state y_i = [x_i ; x_{i-1}]:
//
//	y_i = T*y_{i-1} + F,  T = | -U^{-1}D   -U^{-1}L |  F = | U^{-1}b |
//	                          |     I          0    |      |    0    |
//
// built from block row j = i-1. T is matrix-only; luU is retained so the
// right-hand-side part F can be (re)built per solve.
type element struct {
	idx int         // element index i (the state it produces)
	t   *mat.Matrix // 2M x 2M transfer matrix
	luU *mat.LU     // factorization of U_{i-1}, for building F

	// tPack is the packed image of T's working top half [TL TR] (M x 2M),
	// built once by ARD's factor phase so every solve-phase applyT runs the
	// packed kernel without repacking T. RD rebuilds its elements per solve
	// and leaves it zero; applyT then takes the unpacked path.
	tPack mat.PackedA
}

// buildElement constructs element i from the blocks of a. It costs one
// M x M LU factorization plus two M-column triangular solves: O(M^3).
func buildElement(a *blocktri.Matrix, i int) (element, error) {
	j := i - 1
	m := a.M
	luU, err := mat.Factor(a.Upper[j])
	if err != nil {
		return element{}, fmt.Errorf("block row %d: %w", j, ErrSingularSuper)
	}
	t := mat.New(2*m, 2*m)
	// Top-left: -U^{-1} D_j.
	tl := t.View(0, 0, m, m)
	luU.SolveTo(tl, a.Diag[j])
	mat.Scale(tl, -1)
	// Top-right: -U^{-1} L_j (zero when j == 0: x_{-1} = 0).
	if a.Lower[j] != nil {
		tr := t.View(0, m, m, m)
		luU.SolveTo(tr, a.Lower[j])
		mat.Scale(tr, -1)
	}
	// Bottom-left: identity.
	t.View(m, 0, m, m).SetIdentity()
	return element{idx: i, t: t, luU: luU}, nil
}

// buildF constructs the right-hand-side part F = [U^{-1} b_{i-1} ; 0]
// (2M x R) for the element, costing O(M^2 R).
func (e element) buildF(m int, bBlock *mat.Matrix) *mat.Matrix {
	f := mat.New(2*m, bBlock.Cols)
	e.luU.SolveTo(f.View(0, 0, m, bBlock.Cols), bBlock)
	return f
}

// buildFInto is buildF with the result checked out of a workspace: the hot
// per-solve path allocates nothing once the arena has warmed up.
//
//perf:hotpath
func (e element) buildFInto(ws *mat.Workspace, m int, bBlock *mat.Matrix) *mat.Matrix {
	// Only the bottom half must be zeroed: SolveTo overwrites the top half
	// entirely, so a cleared checkout would scrub twice the necessary rows
	// on every element of every solve.
	f := ws.GetNoClear(2*m, bBlock.Cols)
	ws.View(f, m, 0, m, bBlock.Cols).Zero()
	e.luU.SolveTo(ws.View(f, 0, 0, m, bBlock.Cols), bBlock)
	return f
}

// buildElementWS is buildElement with all storage (the transfer matrix and
// the U factorization) checked out of a workspace. RD uses it to rebuild its
// per-solve elements without per-solve heap allocation; the results are
// bitwise identical to buildElement's.
func buildElementWS(ws *mat.Workspace, a *blocktri.Matrix, i int) (element, error) {
	j := i - 1
	m := a.M
	luU, err := ws.LU(a.Upper[j])
	if err != nil {
		return element{}, fmt.Errorf("block row %d: %w", j, ErrSingularSuper)
	}
	t := ws.Get(2*m, 2*m)
	tl := ws.View(t, 0, 0, m, m)
	luU.SolveTo(tl, a.Diag[j])
	mat.Scale(tl, -1)
	if a.Lower[j] != nil {
		tr := ws.View(t, 0, m, m, m)
		luU.SolveTo(tr, a.Lower[j])
		mat.Scale(tr, -1)
	}
	ws.View(t, m, 0, m, m).SetIdentity()
	return element{idx: i, t: t, luU: luU}, nil
}

// applyT computes dst = T*y + f (2M x R) exploiting the transfer matrix's
// block structure T = [[TL TR],[I 0]] and F's zero bottom half:
//
//	dst_top = [TL TR]*y + f_top,  dst_bot = y_top
//
// which costs half the flops of the dense 2M x 2M product (the identity and
// zero blocks contribute a copy, not arithmetic). dst must not alias y or
// f. When the caller holds a prepacked top half (tp) and the shape runs on
// the packed kernel, the product folds the whole M x R panel through one
// MulAddPacked; the fallback multiplies through t directly. The packed
// branch seeds dst_top with f and adds the k-ascending product total once,
// the exact mirror of the fallback's product-then-add — IEEE addition is
// commutative, so both orders round identically and the two branches are
// bit-equal. Both RD and ARD route every transfer application (the local H
// fold and the recovery sweep) through this function so the two solvers
// keep producing bit-identical solutions regardless of which GEMM kernel a
// given shape dispatches to.
//
//perf:hotpath
func applyT(ws *mat.Workspace, t *mat.Matrix, tp mat.PackedA, y, f, dst *mat.Matrix, m int, bs []float64) {
	rhs := y.Cols
	dTop := ws.View(dst, 0, 0, m, rhs)
	if tp.Valid() && mat.PanelPacked(m, 2*m, rhs) {
		dTop.CopyFrom(ws.View(f, 0, 0, m, rhs))
		mat.MulAddPacked(dTop, tp, y, bs)
	} else {
		//lint:ignore matalias dst is documented not to alias y or f, and t is never a solve destination
		mat.Mul(dTop, ws.View(t, 0, 0, m, 2*m), y)
		mat.Add(dTop, dTop, ws.View(f, 0, 0, m, rhs))
	}
	ws.View(dst, m, 0, m, rhs).CopyFrom(ws.View(y, 0, 0, m, rhs))
}

// affine returns the full scan element (T, F) for the given right-hand
// side block.
func (e element) affine(m int, bBlock *mat.Matrix) Affine {
	return Affine{S: e.t, H: e.buildF(m, bBlock)}
}

// applyPrefixState computes y_{s-1} = S[:, 0:M]*x0 + H, the state entering
// a rank's chunk, given the cross-rank exclusive prefix (S, H) and the
// broadcast first unknown x0 (M x R). A nil S means the identity prefix:
// y = [x0 ; 0]. A valid sp is the prepacked left half S[:, 0:M]; on packed
// shapes the product seeds with H (or zero) and accumulates once, matching
// the fallback's bits by commutativity of the final add. The result is
// checked out of ws.
//
//perf:hotpath
func applyPrefixState(ws *mat.Workspace, m int, s *mat.Matrix, sp mat.PackedA, h, x0 *mat.Matrix, bs []float64) *mat.Matrix {
	if s == nil {
		y := ws.Get(2*m, x0.Cols)
		ws.View(y, 0, 0, m, x0.Cols).CopyFrom(x0)
		return y
	}
	y := ws.GetNoClear(2*m, x0.Cols)
	if sp.Valid() && mat.PanelPacked(2*m, m, x0.Cols) {
		if h != nil {
			y.CopyFrom(h)
		} else {
			y.Zero()
		}
		mat.MulAddPacked(y, sp, x0, bs)
		return y
	}
	mat.Mul(y, ws.View(s, 0, 0, 2*m, m), x0)
	if h != nil {
		mat.Add(y, y, h)
	}
	return y
}

// reducedSystem assembles the M x M reduced system for x_0 from the global
// total prefix (S, H) = P_{N-1} and the last block row:
//
//	(D_{N-1} S11 + L_{N-1} S21) x0 = b_{N-1} - D_{N-1} H1 - L_{N-1} H2
//
// It returns the reduced matrix; the right-hand side is assembled
// separately by reducedRHS so ARD can factor the matrix once.
func reducedMatrix(a *blocktri.Matrix, s *mat.Matrix) *mat.Matrix {
	m := a.M
	last := a.N - 1
	rm := mat.New(m, m)
	mat.Mul(rm, a.Diag[last], s.View(0, 0, m, m))
	tmp := mat.New(m, m)
	mat.Mul(tmp, a.Lower[last], s.View(m, 0, m, m))
	mat.Add(rm, rm, tmp)
	return rm
}

// reducedMatrixWS is reducedMatrix with the result and scratch checked out
// of a workspace (the RD per-solve path; ARD assembles it once in Factor).
func reducedMatrixWS(ws *mat.Workspace, a *blocktri.Matrix, s *mat.Matrix) *mat.Matrix {
	m := a.M
	last := a.N - 1
	rm := ws.GetNoClear(m, m)
	mat.Mul(rm, a.Diag[last], ws.View(s, 0, 0, m, m))
	tmp := ws.GetNoClear(m, m)
	mat.Mul(tmp, a.Lower[last], ws.View(s, m, 0, m, m))
	mat.Add(rm, rm, tmp)
	return rm
}

// reducedRHS assembles the reduced right-hand side (M x R) from the global
// total prefix H part and the last right-hand-side block. The result is
// checked out of ws. Valid negDiag/negLower are -D_{N-1} and -L_{N-1}
// prepacked with alpha = -1 — exactly the factor MulSub folds on the fly —
// so the packed branch subtracts the same k-ascending product totals and
// stays bit-equal to the fallback.
func reducedRHS(ws *mat.Workspace, a *blocktri.Matrix, h, bLast *mat.Matrix, negDiag, negLower mat.PackedA, bs []float64) *mat.Matrix {
	m, r := a.M, bLast.Cols
	last := a.N - 1
	rhs := ws.CloneOf(bLast)
	if h != nil {
		if negDiag.Valid() && negLower.Valid() && mat.PanelPacked(m, m, r) {
			mat.MulAddPacked(rhs, negDiag, ws.View(h, 0, 0, m, r), bs)
			mat.MulAddPacked(rhs, negLower, ws.View(h, m, 0, m, r), bs)
		} else {
			mat.MulSub(rhs, a.Diag[last], ws.View(h, 0, 0, m, r))
			mat.MulSub(rhs, a.Lower[last], ws.View(h, m, 0, m, r))
		}
	}
	return rhs
}

// checkRHS validates a stacked right-hand side against the system shape.
func checkRHS(a *blocktri.Matrix, b *mat.Matrix) error {
	if b.Rows != a.N*a.M || b.Cols < 1 {
		return fmt.Errorf("%w: got %dx%d, want %d rows", ErrShape, b.Rows, b.Cols, a.N*a.M)
	}
	return nil
}

// blockOf returns the M x R view of block row i within a stacked vector.
func blockOf(b *mat.Matrix, m, i int) *mat.Matrix {
	return b.View(i*m, 0, m, b.Cols)
}

// wsBlockOf is blockOf with the view header checked out of a workspace, so
// hot solve loops create no per-iteration garbage.
func wsBlockOf(ws *mat.Workspace, b *mat.Matrix, m, i int) *mat.Matrix {
	return ws.View(b, i*m, 0, m, b.Cols)
}
