package harness

import (
	"math/rand"
	"time"

	"blocktri/internal/blocktri"
	"blocktri/internal/comm"
	"blocktri/internal/core"
	"blocktri/internal/mat"
)

// serialKernels disables nested GEMM parallelism for the duration of an
// experiment so per-rank compute stays attributable to its rank; it
// returns a restore function.
func serialKernels() func() {
	old := mat.Parallel
	mat.Parallel = false
	return func() { mat.Parallel = old }
}

// solverTimes holds the average per-call times of the repeated-solve
// strategies on one matrix: classic RD per solve, ARD factor (once), ARD
// per solve, and sequential Thomas factor and per solve, plus the
// instrumentation of the last run of each.
type solverTimes struct {
	rdSolve     time.Duration
	ardFactor   time.Duration
	ardSolve    time.Duration
	thFactor    time.Duration
	thSolve     time.Duration
	rdStats     core.SolveStats
	ardFactorSt core.SolveStats
	ardSolveSt  core.SolveStats
}

// measureSolvers times the strategies on matrix a with p ranks and r
// right-hand-side columns per call, averaging solve times over reps.
func measureSolvers(a *blocktri.Matrix, p, r, reps int) solverTimes {
	var st solverTimes
	rng := rand.New(rand.NewSource(int64(a.N*1000003 + a.M*101 + p)))
	b := a.RandomRHS(r, rng)

	rd := core.NewRD(a, core.Config{World: comm.NewWorld(p)})
	st.rdSolve = Measure(1, reps, func() {
		if _, err := rd.Solve(b); err != nil {
			panic(err)
		}
	})
	st.rdStats = rd.Stats()

	st.ardFactor = Measure(0, 1, func() {
		tmp := core.NewARD(a, core.Config{World: comm.NewWorld(p)})
		if err := tmp.Factor(); err != nil {
			panic(err)
		}
		st.ardFactorSt = tmp.FactorStats()
	})
	ard := core.NewARD(a, core.Config{World: comm.NewWorld(p)})
	if err := ard.Factor(); err != nil {
		panic(err)
	}
	st.ardSolve = Measure(1, reps, func() {
		if _, err := ard.Solve(b); err != nil {
			panic(err)
		}
	})
	st.ardSolveSt = ard.Stats()

	st.thFactor = Measure(0, 1, func() {
		tmp := core.NewThomas(a)
		if err := tmp.Factor(); err != nil {
			panic(err)
		}
	})
	th := core.NewThomas(a)
	if err := th.Factor(); err != nil {
		panic(err)
	}
	st.thSolve = Measure(1, reps, func() {
		if _, err := th.Solve(b); err != nil {
			panic(err)
		}
	})
	return st
}

// seconds converts a duration to float seconds for ratio arithmetic.
func seconds(d time.Duration) float64 { return d.Seconds() }

// randFor returns a deterministic RNG for the given seed.
func randFor(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }
