package harness

import (
	"fmt"
	"math/rand"
	"time"

	"blocktri/internal/blocktri"
	"blocktri/internal/comm"
	"blocktri/internal/core"
	"blocktri/internal/mat"
)

// serialKernels disables nested GEMM parallelism for the duration of an
// experiment so per-rank compute stays attributable to its rank; it
// returns a restore function.
func serialKernels() func() {
	old := mat.ParallelEnabled()
	mat.SetParallel(false)
	return func() { mat.SetParallel(old) }
}

// solverTimes holds the average per-call times of the repeated-solve
// strategies on one matrix: classic RD per solve, ARD factor (once), ARD
// per solve, and sequential Thomas factor and per solve, plus the
// instrumentation of the last run of each.
type solverTimes struct {
	rdSolve     time.Duration
	ardFactor   time.Duration
	ardSolve    time.Duration
	thFactor    time.Duration
	thSolve     time.Duration
	rdStats     core.SolveStats
	ardFactorSt core.SolveStats
	ardSolveSt  core.SolveStats
}

// measureSolvers times the strategies on matrix a with p ranks and r
// right-hand-side columns per call, averaging solve times over reps. A
// solver failure (singular diagonal, shape mismatch) aborts the
// measurement and is returned to the experiment runner.
func measureSolvers(a *blocktri.Matrix, p, r, reps int) (solverTimes, error) {
	var st solverTimes
	rng := rand.New(rand.NewSource(int64(a.N*1000003 + a.M*101 + p)))
	b := a.RandomRHS(r, rng)

	rd := core.NewRD(a, core.Config{World: comm.NewWorld(p)})
	d, err := MeasureErr(1, reps, func() error {
		_, err := rd.Solve(b)
		return err
	})
	if err != nil {
		return st, fmt.Errorf("RD solve: %w", err)
	}
	st.rdSolve = d
	st.rdStats = rd.Stats()

	d, err = MeasureErr(0, 1, func() error {
		tmp := core.NewARD(a, core.Config{World: comm.NewWorld(p)})
		if err := tmp.Factor(); err != nil {
			return err
		}
		st.ardFactorSt = tmp.FactorStats()
		return nil
	})
	if err != nil {
		return st, fmt.Errorf("ARD factor: %w", err)
	}
	st.ardFactor = d
	ard := core.NewARD(a, core.Config{World: comm.NewWorld(p)})
	if err := ard.Factor(); err != nil {
		return st, fmt.Errorf("ARD factor: %w", err)
	}
	d, err = MeasureErr(1, reps, func() error {
		_, err := ard.Solve(b)
		return err
	})
	if err != nil {
		return st, fmt.Errorf("ARD solve: %w", err)
	}
	st.ardSolve = d
	st.ardSolveSt = ard.Stats()

	d, err = MeasureErr(0, 1, func() error {
		tmp := core.NewThomas(a)
		return tmp.Factor()
	})
	if err != nil {
		return st, fmt.Errorf("Thomas factor: %w", err)
	}
	st.thFactor = d
	th := core.NewThomas(a)
	if err := th.Factor(); err != nil {
		return st, fmt.Errorf("Thomas factor: %w", err)
	}
	d, err = MeasureErr(1, reps, func() error {
		_, err := th.Solve(b)
		return err
	})
	if err != nil {
		return st, fmt.Errorf("Thomas solve: %w", err)
	}
	st.thSolve = d
	return st, nil
}

// seconds converts a duration to float seconds for ratio arithmetic.
func seconds(d time.Duration) float64 { return d.Seconds() }

// randFor returns a deterministic RNG for the given seed.
func randFor(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }
