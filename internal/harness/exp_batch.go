package harness

import (
	"fmt"
	"time"

	"blocktri/internal/comm"
	"blocktri/internal/core"
	"blocktri/internal/workload"
)

// E12 measures the effect of batching right-hand sides into one solve
// call (R columns per Solve). Batching amortizes RD's O(M^3) matrix work
// across the R columns — a batched RD call is, in effect, ARD's factor
// and solve fused — so the per-right-hand-side RD/ARD ratio falls toward
// ~1 as the batch widens. This delimits the paper's claim precisely: the
// O(R) advantage belongs to the STREAMING regime, where right-hand sides
// arrive one at a time (time stepping, source iteration, interactive
// studies) and cannot be batched; there RD pays M^3 on every call (the
// E1 curve) while ARD pays it once.

func init() {
	Register(Experiment{ID: "E12", Title: "Batch width: per-RHS cost vs columns per solve", Run: runE12})
}

func runE12(quick bool) ([]*Table, error) {
	defer serialKernels()()
	n, m, p := 256, 16, 8
	widths := []int{1, 2, 4, 8, 16, 32}
	reps := 3
	if quick {
		n, m = 96, 8
		widths = []int{1, 4, 16}
		reps = 2
	}
	a := workload.Build(workload.Oscillatory, n, m, 18)
	t := NewTable(fmt.Sprintf("E12: per-right-hand-side cost vs batch width (oscillatory N=%d M=%d P=%d)", n, m, p),
		"R per call", "RD /RHS", "ARD /RHS", "RD/ARD", "ARD flops/RHS")
	t.Note = "batched RD amortizes its M^3 work across the R columns (approaching ARD factor+solve fused), so the per-RHS ratio falls toward ~1: ARD's O(R) advantage belongs to the streaming regime where batching is impossible"
	for _, r := range widths {
		b := a.RandomRHS(r, randFor(int64(19+r)))
		rd := core.NewRD(a, core.Config{World: comm.NewWorld(p)})
		rdT, err := MeasureErr(1, reps, func() error {
			_, err := rd.Solve(b)
			return err
		})
		if err != nil {
			return nil, fmt.Errorf("RD solve (R=%d): %w", r, err)
		}
		ard := core.NewARD(a, core.Config{World: comm.NewWorld(p)})
		if err := ard.Factor(); err != nil {
			return nil, fmt.Errorf("ARD factor (R=%d): %w", r, err)
		}
		ardT, err := MeasureErr(1, reps, func() error {
			_, err := ard.Solve(b)
			return err
		})
		if err != nil {
			return nil, fmt.Errorf("ARD solve (R=%d): %w", r, err)
		}
		t.AddRow(r,
			rdT/time.Duration(r),
			ardT/time.Duration(r),
			seconds(rdT)/seconds(ardT),
			ard.Stats().Flops/int64(r))
	}
	return []*Table{t}, nil
}
