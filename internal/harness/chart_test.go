package harness

import (
	"strings"
	"testing"
)

func TestChartRenderBasics(t *testing.T) {
	c := NewChart("demo", "R", "seconds")
	c.AddSeries("rd", []float64{1, 2, 4, 8}, []float64{1, 2, 4, 8})
	c.AddSeries("ard", []float64{1, 2, 4, 8}, []float64{1, 1.2, 1.4, 1.6})
	var sb strings.Builder
	c.Render(&sb)
	out := sb.String()
	for _, want := range []string{"-- demo --", "*=rd", "o=ard", "x: R, y: seconds"} {
		if !strings.Contains(out, want) {
			t.Fatalf("chart missing %q:\n%s", want, out)
		}
	}
	// Both markers must appear in the plot area.
	if !strings.Contains(out, "*") || !strings.Contains(out, "o") {
		t.Fatal("markers missing from plot")
	}
}

func TestChartLogScale(t *testing.T) {
	c := NewChart("log demo", "R", "t")
	c.LogX, c.LogY = true, true
	c.AddSeries("s", []float64{1, 10, 100, 1000}, []float64{1e-3, 1e-2, 1e-1, 1})
	var sb strings.Builder
	c.Render(&sb)
	out := sb.String()
	if !strings.Contains(out, "log scale") {
		t.Fatal("log annotation missing")
	}
	// On a log-log plot of a power law the points lie on the diagonal:
	// top-right and bottom-left corners must both have markers.
	lines := strings.Split(out, "\n")
	var plotLines []string
	for _, l := range lines {
		if strings.Contains(l, "|") {
			plotLines = append(plotLines, l[strings.Index(l, "|")+1:])
		}
	}
	if len(plotLines) == 0 {
		t.Fatal("no plot rows")
	}
	if !strings.Contains(plotLines[0], "*") {
		t.Fatal("max point missing from top row")
	}
	if !strings.Contains(plotLines[len(plotLines)-1], "*") {
		t.Fatal("min point missing from bottom row")
	}
}

func TestChartRejectsNonPositiveOnLog(t *testing.T) {
	c := NewChart("bad", "x", "y")
	c.LogY = true
	c.AddSeries("s", []float64{1, 2}, []float64{0, -1}) // unplottable on log
	var sb strings.Builder
	c.Render(&sb)
	if !strings.Contains(sb.String(), "no plottable points") {
		t.Fatal("expected no-points notice")
	}
}

func TestChartMismatchedSeriesPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewChart("x", "a", "b").AddSeries("s", []float64{1}, []float64{1, 2})
}
