package harness

import (
	"fmt"

	"blocktri/internal/comm"
	"blocktri/internal/core"
	"blocktri/internal/workload"
)

// E13 places every solver in this repository side by side on one
// configuration: factor time, per-solve time, per-solve flops and bytes,
// retained memory, and accuracy — the summary table a practitioner would
// consult to pick an algorithm.

func init() {
	Register(Experiment{ID: "E13", Title: "Solver landscape: all algorithms side by side", Run: runE13})
}

func runE13(quick bool) ([]*Table, error) {
	defer serialKernels()()
	n, m, p := 512, 16, 8
	reps := 3
	if quick {
		n, m = 96, 6
		reps = 2
	}
	a := workload.Build(workload.Oscillatory, n, m, 20)
	b := a.RandomRHS(1, randFor(21))

	t := NewTable(fmt.Sprintf("E13: solver landscape (oscillatory N=%d M=%d P=%d, R=1)", n, m, p),
		"solver", "factor", "per solve", "solve flops", "solve bytes", "stored", "residual")
	t.Note = "Thomas and BCR run on one rank; RD has no factor phase (it repeats the matrix work every solve)"

	type factoredSolver interface {
		core.Solver
		Factor() error
		FactorStats() core.SolveStats
		Stats() core.SolveStats
	}
	addFactored := func(s factoredSolver) error {
		factor, err := MeasureErr(0, 1, s.Factor)
		if err != nil {
			return fmt.Errorf("%s factor: %w", s.Name(), err)
		}
		solve, err := MeasureErr(1, reps, func() error {
			_, err := s.Solve(b)
			return err
		})
		if err != nil {
			return fmt.Errorf("%s solve: %w", s.Name(), err)
		}
		x, err := s.Solve(b)
		if err != nil {
			return fmt.Errorf("%s solve: %w", s.Name(), err)
		}
		st := s.Stats()
		t.AddRow(s.Name(), factor, solve, st.Flops, st.Comm.BytesSent,
			s.FactorStats().StoredBytes, fmt.Sprintf("%.1e", a.RelResidual(x, b)))
		return nil
	}

	// Thomas (sequential). Capture the stored-bytes figure right after
	// Factor, before the solves overwrite the stats.
	th := core.NewThomas(a)
	thFactor, err := MeasureErr(0, 1, th.Factor)
	if err != nil {
		return nil, fmt.Errorf("Thomas factor: %w", err)
	}
	thStored := th.Stats().StoredBytes
	thSolve, err := MeasureErr(1, reps, func() error {
		_, err := th.Solve(b)
		return err
	})
	if err != nil {
		return nil, fmt.Errorf("Thomas solve: %w", err)
	}
	xt, err := th.Solve(b)
	if err != nil {
		return nil, fmt.Errorf("Thomas solve: %w", err)
	}
	t.AddRow(th.Name()+" (P=1)", thFactor, thSolve, th.Stats().Flops, 0,
		thStored, fmt.Sprintf("%.1e", a.RelResidual(xt, b)))

	// BCR (sequential, no factor split).
	bcr := core.NewBCR(a)
	bcrSolve, err := MeasureErr(1, reps, func() error {
		_, err := bcr.Solve(b)
		return err
	})
	if err != nil {
		return nil, fmt.Errorf("BCR solve: %w", err)
	}
	xb, err := bcr.Solve(b)
	if err != nil {
		return nil, fmt.Errorf("BCR solve: %w", err)
	}
	t.AddRow(bcr.Name()+" (P=1)", "-", bcrSolve, bcr.Stats().Flops, 0, 0,
		fmt.Sprintf("%.1e", a.RelResidual(xb, b)))

	// RD (no reuse).
	rd := core.NewRD(a, core.Config{World: comm.NewWorld(p)})
	rdSolve, err := MeasureErr(1, reps, func() error {
		_, err := rd.Solve(b)
		return err
	})
	if err != nil {
		return nil, fmt.Errorf("RD solve: %w", err)
	}
	xr, err := rd.Solve(b)
	if err != nil {
		return nil, fmt.Errorf("RD solve: %w", err)
	}
	t.AddRow(rd.Name(), "-", rdSolve, rd.Stats().Flops, rd.Stats().Comm.BytesSent, 0,
		fmt.Sprintf("%.1e", a.RelResidual(xr, b)))

	for _, s := range []factoredSolver{
		core.NewARD(a, core.Config{World: comm.NewWorld(p)}),
		core.NewSpike(a, core.Config{World: comm.NewWorld(p)}),
		core.NewPCR(a, core.Config{World: comm.NewWorld(p)}),
	} {
		if err := addFactored(s); err != nil {
			return nil, err
		}
	}
	return []*Table{t}, nil
}
