package harness

import (
	"fmt"

	"blocktri/internal/comm"
	"blocktri/internal/core"
	"blocktri/internal/workload"
)

// E11 compares ARD against the SPIKE partition method — the numerically
// stable factor/solve-split alternative — on both a stable-recurrence
// workload (where ARD's cheaper solve phase wins) and a diagonally
// dominant workload (where only SPIKE is accurate). This quantifies the
// accuracy/performance trade the paper's algorithm occupies.

func init() {
	Register(Experiment{ID: "E11", Title: "ARD vs SPIKE: the stable alternative", Run: runE11})
}

func runE11(quick bool) ([]*Table, error) {
	defer serialKernels()()
	n, m, p := 512, 16, 8
	reps := 3
	if quick {
		n, m = 128, 6
		reps = 2
	}

	perf := NewTable(fmt.Sprintf("E11: factor/solve times (oscillatory N=%d M=%d P=%d, R=1)", n, m, p),
		"solver", "factor", "per solve", "solve flops", "solve bytes")
	a := workload.Build(workload.Oscillatory, n, m, 14)
	b := a.RandomRHS(1, randFor(15))

	ard := core.NewARD(a, core.Config{World: comm.NewWorld(p)})
	ardFactor, err := MeasureErr(0, 1, ard.Factor)
	if err != nil {
		return nil, fmt.Errorf("ARD factor: %w", err)
	}
	ardSolve, err := MeasureErr(1, reps, func() error {
		_, err := ard.Solve(b)
		return err
	})
	if err != nil {
		return nil, fmt.Errorf("ARD solve: %w", err)
	}
	perf.AddRow("ARD", ardFactor, ardSolve, ard.Stats().Flops, ard.Stats().Comm.BytesSent)

	sp := core.NewSpike(a, core.Config{World: comm.NewWorld(p)})
	spFactor, err := MeasureErr(0, 1, sp.Factor)
	if err != nil {
		return nil, fmt.Errorf("SPIKE factor: %w", err)
	}
	spSolve, err := MeasureErr(1, reps, func() error {
		_, err := sp.Solve(b)
		return err
	})
	if err != nil {
		return nil, fmt.Errorf("SPIKE solve: %w", err)
	}
	perf.AddRow("SPIKE", spFactor, spSolve, sp.Stats().Flops, sp.Stats().Comm.BytesSent)

	th := core.NewThomas(a)
	thFactor, err := MeasureErr(0, 1, th.Factor)
	if err != nil {
		return nil, fmt.Errorf("Thomas factor: %w", err)
	}
	thSolve, err := MeasureErr(1, reps, func() error {
		_, err := th.Solve(b)
		return err
	})
	if err != nil {
		return nil, fmt.Errorf("Thomas solve: %w", err)
	}
	perf.AddRow("Thomas (P=1)", thFactor, thSolve, th.Stats().Flops, 0)
	perf.Note = "ARD's solve phase moves less data per round (2M vs SPIKE's interface gathers) and does O(M^2) work per row; SPIKE's reduced phase is O(P) rather than O(log P)"

	// Accuracy contrast across families.
	acc := NewTable("E11b: accuracy contrast (relative residual, R=2, P=4)",
		"family", "N", "ARD", "SPIKE")
	sizes := []struct{ n, m int }{{16, 4}, {64, 4}}
	for _, fam := range []workload.Family{workload.Oscillatory, workload.RandomDD, workload.Poisson} {
		for _, sz := range sizes {
			aa := workload.Build(fam, sz.n, sz.m, 16)
			bb := aa.RandomRHS(2, randFor(17))
			row := []any{fam.String(), sz.n}
			for _, s := range []core.Solver{
				core.NewARD(aa, core.Config{World: comm.NewWorld(4)}),
				core.NewSpike(aa, core.Config{World: comm.NewWorld(4)}),
			} {
				x, err := s.Solve(bb)
				if err != nil {
					row = append(row, "err:"+err.Error())
					continue
				}
				row = append(row, fmt.Sprintf("%.2e", aa.RelResidual(x, bb)))
			}
			acc.AddRow(row...)
		}
	}
	acc.Note = "SPIKE (block-LU based) is accurate on every family; ARD inherits recursive doubling's dependence on the recurrence growth"
	return []*Table{perf, acc}, nil
}
