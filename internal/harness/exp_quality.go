package harness

import (
	"fmt"
	"time"

	"blocktri/internal/comm"
	"blocktri/internal/core"
	"blocktri/internal/costmodel"
	"blocktri/internal/prefix"
	"blocktri/internal/workload"
)

// Experiments E6-E10: accuracy, communication, amortization, scan-schedule
// ablation and model validation.

func init() {
	Register(Experiment{ID: "E6", Title: "Accuracy: relative residuals per solver and family", Run: runE6})
	Register(Experiment{ID: "E7", Title: "Communication volume per solve: RD vs ARD", Run: runE7})
	Register(Experiment{ID: "E8", Title: "ARD phase breakdown and amortization crossover", Run: runE8})
	Register(Experiment{ID: "E9", Title: "Ablation: scan schedule and Thomas crossover", Run: runE9})
	Register(Experiment{ID: "E10", Title: "Model validation: measured vs analytic", Run: runE10})
}

func runE6(quick bool) ([]*Table, error) {
	defer serialKernels()()
	sizes := []struct{ n, m int }{{16, 4}, {64, 4}, {64, 8}}
	if quick {
		sizes = sizes[:2]
	}
	t := NewTable("E6: relative residual ||Ax-b||/||b|| (R=2, P=4)",
		"family", "N", "M", "dense-lu", "thomas", "bcr", "rd", "ard", "ard+refine")
	t.Note = "RD/ARD error grows with the transfer-matrix prefix products on generic dominant matrices (ard+refine = 3 steps of iterative refinement, which recovers full accuracy while PrefixGrowth*eps << 1); on oscillatory (stable-recurrence) workloads they match direct methods"
	for _, fam := range workload.Families {
		for _, sz := range sizes {
			a := workload.Build(fam, sz.n, sz.m, 6)
			b := a.RandomRHS(2, randFor(7))
			row := []any{fam.String(), sz.n, sz.m}
			for _, s := range []core.Solver{
				core.NewDense(a), core.NewThomas(a), core.NewBCR(a),
				core.NewRD(a, core.Config{World: comm.NewWorld(4)}),
				core.NewARD(a, core.Config{World: comm.NewWorld(4)}),
			} {
				x, err := s.Solve(b)
				if err != nil {
					row = append(row, "err:"+err.Error())
					continue
				}
				row = append(row, fmt.Sprintf("%.2e", a.RelResidual(x, b)))
			}
			ard := core.NewARD(a, core.Config{World: comm.NewWorld(4)})
			if xr, _, err := core.SolveRefined(ard, b, 3); err == nil {
				row = append(row, fmt.Sprintf("%.2e", a.RelResidual(xr, b)))
			} else {
				row = append(row, "err:"+err.Error())
			}
			t.AddRow(row...)
		}
	}
	return []*Table{t}, nil
}

func runE7(quick bool) ([]*Table, error) {
	defer serialKernels()()
	n, m := 1024, 16
	ps := []int{2, 4, 8, 16, 32}
	if quick {
		n, m = 128, 8
		ps = []int{2, 4, 8}
	}
	t := NewTable(fmt.Sprintf("E7: communication per solve (oscillatory N=%d M=%d, R=1)", n, m),
		"P", "RD bytes", "RD msgs", "ARD-solve bytes", "ARD-solve msgs", "bytes ratio", "RD max simT", "ARD max simT")
	t.Note = "per Kogge-Stone round RD ships the (2M)^2 matrix + 2M vector; ARD's solve phase ships only the 2M vector — a ~2M reduction in scan payload"
	for _, p := range ps {
		a := workload.Build(workload.Oscillatory, n, m, 8)
		st, err := measureSolvers(a, p, 1, 1)
		if err != nil {
			return nil, fmt.Errorf("P=%d: %w", p, err)
		}
		rdB, ardB := st.rdStats.Comm.BytesSent, st.ardSolveSt.Comm.BytesSent
		ratio := 0.0
		if ardB > 0 {
			ratio = float64(rdB) / float64(ardB)
		}
		t.AddRow(p, rdB, st.rdStats.Comm.MsgsSent, ardB, st.ardSolveSt.Comm.MsgsSent,
			ratio,
			fmt.Sprintf("%.2e s", st.rdStats.MaxSimComm),
			fmt.Sprintf("%.2e s", st.ardSolveSt.MaxSimComm))
	}
	return []*Table{t}, nil
}

func runE8(quick bool) ([]*Table, error) {
	defer serialKernels()()
	n, m, p := 512, 16, 8
	reps := 3
	if quick {
		n, m = 96, 6
		reps = 2
	}
	a := workload.Build(workload.Oscillatory, n, m, 10)
	st, err := measureSolvers(a, p, 1, reps)
	if err != nil {
		return nil, err
	}

	t := NewTable(fmt.Sprintf("E8: ARD phase breakdown (oscillatory N=%d M=%d P=%d, R=1)", n, m, p),
		"phase", "time", "flops", "bytes sent")
	t.AddRow("ARD factor (once)", st.ardFactor, st.ardFactorSt.Flops, st.ardFactorSt.Comm.BytesSent)
	t.AddRow("ARD solve (per RHS)", st.ardSolve, st.ardSolveSt.Flops, st.ardSolveSt.Comm.BytesSent)
	t.AddRow("RD solve (per RHS)", st.rdSolve, st.rdStats.Flops, st.rdStats.Comm.BytesSent)
	t.AddRow("Thomas factor (once, P=1)", st.thFactor, "-", 0)
	t.AddRow("Thomas solve (per RHS, P=1)", st.thSolve, "-", 0)

	cross := NewTable("E8b: amortization crossover",
		"comparison", "crossover R*")
	gain := seconds(st.rdSolve) - seconds(st.ardSolve)
	if gain > 0 {
		cross.AddRow("ARD total < RD total", fmt.Sprintf("%.2f", seconds(st.ardFactor)/gain))
	} else {
		cross.AddRow("ARD total < RD total", "never (no per-solve gain)")
	}
	cross.Note = "R* = t_factor / (t_rd - t_ard): the number of right-hand sides after which ARD's one-time factor cost is repaid"
	return []*Table{t, cross}, nil
}

func runE9(quick bool) ([]*Table, error) {
	defer serialKernels()()
	n, m := 1024, 8
	ps := []int{4, 8, 16, 32}
	reps := 2
	if quick {
		n = 128
		ps = []int{4, 8}
	}
	t := NewTable(fmt.Sprintf("E9: RD scan-schedule ablation (oscillatory N=%d M=%d, R=1)", n, m),
		"P", "kogge-stone", "brent-kung", "chain", "KS rounds", "BK rounds", "chain rounds")
	t.Note = "wall times on one host; the rounds columns give each schedule's latency term on a real network (chain = P-1 rounds is the non-parallel baseline)"
	for _, p := range ps {
		a := workload.Build(workload.Oscillatory, n, m, 11)
		b := a.RandomRHS(1, randFor(12))
		row := []any{p}
		for _, sched := range []prefix.Schedule{prefix.KoggeStone, prefix.BrentKung, prefix.Chain} {
			rd := core.NewRD(a, core.Config{World: comm.NewWorld(p), Schedule: sched})
			d, err := MeasureErr(1, reps, func() error {
				_, err := rd.Solve(b)
				return err
			})
			if err != nil {
				return nil, fmt.Errorf("schedule %v P=%d: %w", sched, p, err)
			}
			row = append(row, d)
		}
		row = append(row, prefix.Rounds(prefix.KoggeStone, p),
			prefix.Rounds(prefix.BrentKung, p), prefix.Rounds(prefix.Chain, p))
		t.AddRow(row...)
	}

	// Thomas crossover: sequential Thomas vs the distributed algorithms'
	// modeled critical path.
	n2 := n
	machine, err := calibratedMachine(n2, m)
	if err != nil {
		return nil, err
	}
	cross := NewTable(fmt.Sprintf("E9b: Thomas vs RD/ARD modeled critical path (N=%d M=%d, R=1)", n2, m),
		"P", "Thomas (P=1)", "RD model", "ARD-solve model")
	for _, p := range []int{1, 2, 4, 8, 16, 32, 64} {
		prm := costmodel.Params{N: n2, M: m, P: p, R: 1}
		thomas := machine.Time(costmodel.Cost{
			MaxRankFlops: costmodel.ThomasSolve(prm).MaxRankFlops +
				costmodel.ThomasFactor(prm).MaxRankFlops})
		cross.AddRow(p,
			time.Duration(thomas*1e9),
			time.Duration(machine.Time(costmodel.RDSolve(prm))*1e9),
			time.Duration(machine.Time(costmodel.ARDSolve(prm))*1e9))
	}
	cross.Note = "the distributed algorithms overtake single-rank Thomas once P covers the ~8x transfer-matrix work overhead"
	return []*Table{t, cross}, nil
}

func runE10(quick bool) ([]*Table, error) {
	defer serialKernels()()
	grid := []costmodel.Params{
		{N: 128, M: 4, P: 4, R: 1}, {N: 128, M: 8, P: 8, R: 2},
		{N: 256, M: 8, P: 4, R: 1}, {N: 512, M: 4, P: 16, R: 4},
	}
	reps := 2
	if quick {
		grid = grid[:2]
	}
	t := NewTable("E10: model validation (flops exact; time via calibrated flop rate)",
		"N", "M", "P", "R", "RD flops meas", "RD flops model", "ARD flops meas", "ARD flops model", "RD wall", "RD predicted")
	for _, prm := range grid {
		a := workload.Build(workload.Oscillatory, prm.N, prm.M, 13)
		st, err := measureSolvers(a, prm.P, prm.R, reps)
		if err != nil {
			return nil, fmt.Errorf("N=%d M=%d: %w", prm.N, prm.M, err)
		}
		machine, err := calibratedMachine(prm.N, prm.M)
		if err != nil {
			return nil, err
		}
		t.AddRow(prm.N, prm.M, prm.P, prm.R,
			st.rdStats.Flops, costmodel.RDSolve(prm).Flops,
			st.ardSolveSt.Flops, costmodel.ARDSolve(prm).Flops,
			st.rdSolve, time.Duration(machine.Time(costmodel.RDSolve(prm))*1e9))
	}
	t.Note = "measured flop counters must equal the model exactly (double-entry); wall vs predicted agrees up to scheduling overhead since ranks timeshare one host"
	return []*Table{t}, nil
}
