// Package harness runs the experiment suite: repeated timed measurements
// with warmup, formatted table and CSV output, and the experiment
// definitions (E1..E13) that regenerate every table and figure of the
// reproduction (see DESIGN.md for the index).
package harness

import (
	"fmt"
	"io"
	"runtime"
	"sort"
	"strings"
	"time"
)

// Measure times f: it runs warmup untimed iterations, then reps timed
// ones, and returns the minimum duration (the standard noise-robust
// estimator for repeatable kernels).
func Measure(warmup, reps int, f func()) time.Duration {
	for i := 0; i < warmup; i++ {
		f()
	}
	best := time.Duration(0)
	for i := 0; i < reps; i++ {
		start := time.Now()
		f()
		d := time.Since(start)
		if best == 0 || d < best {
			best = d
		}
	}
	return best
}

// MeasureErr is Measure for operations that can fail: warmup and timed
// iterations run f, and the first error aborts the measurement. A solver
// that rejects its input (ErrSingular, a shape mismatch) reports that up
// through the experiment instead of taking the process down mid-suite.
func MeasureErr(warmup, reps int, f func() error) (time.Duration, error) {
	for i := 0; i < warmup; i++ {
		if err := f(); err != nil {
			return 0, err
		}
	}
	best := time.Duration(0)
	for i := 0; i < reps; i++ {
		start := time.Now()
		err := f()
		d := time.Since(start)
		if err != nil {
			return 0, err
		}
		if best == 0 || d < best {
			best = d
		}
	}
	return best, nil
}

// MeasureMean is Measure with a mean estimator, for operations whose cost
// varies with call history (e.g. allocation-heavy phases).
func MeasureMean(warmup, reps int, f func()) time.Duration {
	for i := 0; i < warmup; i++ {
		f()
	}
	var total time.Duration
	for i := 0; i < reps; i++ {
		start := time.Now()
		f()
		total += time.Since(start)
	}
	return total / time.Duration(reps)
}

// Table accumulates rows for one experiment and renders them as an aligned
// text table or CSV.
type Table struct {
	Title   string
	Note    string
	Columns []string
	Rows    [][]string
	// Chart, when non-nil, is the figure rendering of the table's series,
	// drawn after the rows by Render.
	Chart *Chart
}

// NewTable returns a table with the given title and column headers.
func NewTable(title string, columns ...string) *Table {
	return &Table{Title: title, Columns: columns}
}

// AddRow appends a row, formatting each cell with %v (floats get %.4g).
func (t *Table) AddRow(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = fmt.Sprintf("%.4g", v)
		case time.Duration:
			row[i] = formatDuration(v)
		default:
			row[i] = fmt.Sprintf("%v", v)
		}
	}
	t.Rows = append(t.Rows, row)
}

func formatDuration(d time.Duration) string {
	switch {
	case d >= time.Second:
		return fmt.Sprintf("%.3fs", d.Seconds())
	case d >= time.Millisecond:
		return fmt.Sprintf("%.3fms", float64(d.Microseconds())/1000)
	default:
		return fmt.Sprintf("%.1fµs", float64(d.Nanoseconds())/1000)
	}
}

// Render writes the table as aligned text.
func (t *Table) Render(w io.Writer) {
	fmt.Fprintf(w, "\n== %s ==\n", t.Title)
	if t.Note != "" {
		fmt.Fprintf(w, "%s\n", t.Note)
	}
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	writeRow := func(cells []string) {
		var sb strings.Builder
		for i, cell := range cells {
			if i > 0 {
				sb.WriteString("  ")
			}
			sb.WriteString(cell)
			if i < len(widths) {
				sb.WriteString(strings.Repeat(" ", widths[i]-len(cell)))
			}
		}
		fmt.Fprintln(w, strings.TrimRight(sb.String(), " "))
	}
	writeRow(t.Columns)
	sep := make([]string, len(t.Columns))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, row := range t.Rows {
		writeRow(row)
	}
	if t.Chart != nil {
		t.Chart.Render(w)
	}
}

// RenderCSV writes the table as CSV (title and note as # comments).
func (t *Table) RenderCSV(w io.Writer) {
	fmt.Fprintf(w, "# %s\n", t.Title)
	if t.Note != "" {
		fmt.Fprintf(w, "# %s\n", t.Note)
	}
	fmt.Fprintln(w, strings.Join(t.Columns, ","))
	for _, row := range t.Rows {
		fmt.Fprintln(w, strings.Join(row, ","))
	}
}

// Environment returns a one-line description of the measurement host, so
// experiment output is self-describing.
func Environment() string {
	return fmt.Sprintf("%s %s/%s, GOMAXPROCS=%d, %d CPUs",
		runtime.Version(), runtime.GOOS, runtime.GOARCH,
		runtime.GOMAXPROCS(0), runtime.NumCPU())
}

// Experiment is one reproducible table/figure generator.
type Experiment struct {
	ID    string
	Title string
	// Run produces the experiment's tables. quick shrinks problem sizes
	// for fast smoke runs. A non-nil error means the experiment could not
	// complete (a solver rejected its input); partial tables may still be
	// returned alongside it.
	Run func(quick bool) ([]*Table, error)
}

// registry of experiments, populated by experiments.go.
var registry []Experiment

// Register adds an experiment (called from init in experiments.go).
func Register(e Experiment) { registry = append(registry, e) }

// Experiments returns the registered experiments sorted by ID.
func Experiments() []Experiment {
	out := make([]Experiment, len(registry))
	copy(out, registry)
	sort.Slice(out, func(i, j int) bool { return lessID(out[i].ID, out[j].ID) })
	return out
}

// lessID orders E1 < E2 < ... < E10 numerically.
func lessID(a, b string) bool {
	if len(a) != len(b) {
		return len(a) < len(b)
	}
	return a < b
}

// Find returns the experiment with the given ID.
func Find(id string) (Experiment, bool) {
	for _, e := range registry {
		if e.ID == id {
			return e, true
		}
	}
	return Experiment{}, false
}
