package harness

import (
	"fmt"
	"time"

	"blocktri/internal/comm"
	"blocktri/internal/core"
	"blocktri/internal/costmodel"
	"blocktri/internal/workload"
)

// Experiments E1-E5: the runtime tables and figures. Sequential solves
// with distinct right-hand sides are the paper's workload: total RD cost
// is R * t_rd, total ARD cost is t_factor + R * t_solve. Per-call times
// are measured (with warmup and repetition); totals for large R are the
// exact arithmetic of the measured per-call times, cross-checked against
// directly measured small-R totals in the E1 table.

func init() {
	Register(Experiment{ID: "E1", Title: "Runtime vs number of right-hand sides (RD vs ARD)", Run: runE1})
	Register(Experiment{ID: "E2", Title: "ARD speedup vs R for several block sizes", Run: runE2})
	Register(Experiment{ID: "E3", Title: "Strong scaling: runtime vs P", Run: runE3})
	Register(Experiment{ID: "E4", Title: "Runtime vs N", Run: runE4})
	Register(Experiment{ID: "E5", Title: "Runtime vs block size M", Run: runE5})
}

func runE1(quick bool) ([]*Table, error) {
	defer serialKernels()()
	n, m, p := 512, 16, 8
	rs := []int{1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024}
	reps := 3
	if quick {
		n, m = 96, 6
		rs = []int{1, 2, 4, 8, 16, 32}
		reps = 2
	}
	a := workload.Build(workload.Oscillatory, n, m, 1)
	st, err := measureSolvers(a, p, 1, reps)
	if err != nil {
		return nil, err
	}

	t := NewTable(fmt.Sprintf("E1: total time for R sequential solves (oscillatory N=%d M=%d P=%d)", n, m, p),
		"R", "RD total", "ARD total", "speedup", "model speedup")
	t.Note = fmt.Sprintf("per-call: RD solve %v | ARD factor %v | ARD solve %v",
		st.rdSolve, st.ardFactor, st.ardSolve)
	params := costmodel.Params{N: n, M: m, P: p, R: 1}
	var xs, rdYs, ardYs []float64
	for _, r := range rs {
		rdTotal := time.Duration(r) * st.rdSolve
		ardTotal := st.ardFactor + time.Duration(r)*st.ardSolve
		t.AddRow(r, rdTotal, ardTotal,
			seconds(rdTotal)/seconds(ardTotal),
			costmodel.PredictedSpeedup(params, r))
		xs = append(xs, float64(r))
		rdYs = append(rdYs, seconds(rdTotal))
		ardYs = append(ardYs, seconds(ardTotal))
	}
	chart := NewChart("Figure E1: total time vs R (log-log)", "R", "seconds")
	chart.LogX, chart.LogY = true, true
	chart.AddSeries("RD", xs, rdYs)
	chart.AddSeries("ARD", xs, ardYs)
	t.Chart = chart

	// Cross-check: directly measured totals for small R must match the
	// per-call extrapolation.
	check := NewTable("E1b: extrapolation cross-check (directly measured totals)",
		"R", "RD direct", "RD extrapolated", "ARD direct", "ARD extrapolated")
	for _, r := range rs[:3] {
		rd := core.NewRD(a, core.Config{World: comm.NewWorld(p)})
		stream := workload.NewRHSStream(a, 1, 42)
		rdDirect, err := MeasureErr(0, 1, func() error {
			for i := 0; i < r; i++ {
				if _, err := rd.Solve(stream.Next()); err != nil {
					return err
				}
			}
			return nil
		})
		if err != nil {
			return nil, fmt.Errorf("E1b RD direct (R=%d): %w", r, err)
		}
		ard := core.NewARD(a, core.Config{World: comm.NewWorld(p)})
		stream2 := workload.NewRHSStream(a, 1, 42)
		ardDirect, err := MeasureErr(0, 1, func() error {
			if err := ard.Factor(); err != nil {
				return err
			}
			for i := 0; i < r; i++ {
				if _, err := ard.Solve(stream2.Next()); err != nil {
					return err
				}
			}
			return nil
		})
		if err != nil {
			return nil, fmt.Errorf("E1b ARD direct (R=%d): %w", r, err)
		}
		check.AddRow(r, rdDirect, time.Duration(r)*st.rdSolve,
			ardDirect, st.ardFactor+time.Duration(r)*st.ardSolve)
	}
	return []*Table{t, check}, nil
}

func runE2(quick bool) ([]*Table, error) {
	defer serialKernels()()
	n, p := 256, 8
	ms := []int{4, 8, 16, 32}
	rs := []int{1, 4, 16, 64, 256, 1024, 4096}
	reps := 3
	if quick {
		n = 64
		ms = []int{2, 4, 8}
		rs = []int{1, 4, 16, 64, 256}
		reps = 2
	}
	cols := []string{"R"}
	for _, m := range ms {
		cols = append(cols, fmt.Sprintf("speedup M=%d", m), fmt.Sprintf("model M=%d", m))
	}
	t := NewTable(fmt.Sprintf("E2: ARD speedup over RD vs R (oscillatory N=%d P=%d)", n, p), cols...)
	t.Note = "speedup = R*t_rd / (t_factor + R*t_ard); saturates near O(M) as R grows"

	type times struct{ rd, factor, solve float64 }
	perM := make(map[int]times)
	for _, m := range ms {
		a := workload.Build(workload.Oscillatory, n, m, 2)
		st, err := measureSolvers(a, p, 1, reps)
		if err != nil {
			return nil, fmt.Errorf("M=%d: %w", m, err)
		}
		perM[m] = times{seconds(st.rdSolve), seconds(st.ardFactor), seconds(st.ardSolve)}
	}
	chart := NewChart("Figure E2: measured ARD speedup vs R", "R", "speedup")
	chart.LogX = true
	series := make(map[int][]float64)
	var xs []float64
	for _, r := range rs {
		row := []any{r}
		xs = append(xs, float64(r))
		for _, m := range ms {
			tm := perM[m]
			speed := float64(r) * tm.rd / (tm.factor + float64(r)*tm.solve)
			row = append(row, speed,
				costmodel.PredictedSpeedup(costmodel.Params{N: n, M: m, P: p, R: 1}, r))
			series[m] = append(series[m], speed)
		}
		t.AddRow(row...)
	}
	for _, m := range ms {
		chart.AddSeries(fmt.Sprintf("M=%d", m), xs, series[m])
	}
	t.Chart = chart
	return []*Table{t}, nil
}

func runE3(quick bool) ([]*Table, error) {
	defer serialKernels()()
	n, m := 2048, 8
	ps := []int{1, 2, 4, 8, 16, 32, 64}
	reps := 2
	if quick {
		n = 256
		ps = []int{1, 2, 4, 8}
	}
	machine, err := calibratedMachine(n, m)
	if err != nil {
		return nil, err
	}
	t := NewTable(fmt.Sprintf("E3: strong scaling (oscillatory N=%d M=%d, R=1 per solve)", n, m),
		"P", "RD wall", "ARD-solve wall", "RD model", "ARD-solve model", "RD rounds")
	t.Note = "wall = single-host measurement (ranks timeshare cores); model = per-rank critical path + alpha-beta network (the distributed-machine prediction, N/P + log P shape)"
	for _, p := range ps {
		a := workload.Build(workload.Oscillatory, n, m, 3)
		st, err := measureSolvers(a, p, 1, reps)
		if err != nil {
			return nil, fmt.Errorf("P=%d: %w", p, err)
		}
		prm := costmodel.Params{N: n, M: m, P: p, R: 1}
		rdC := costmodel.RDSolve(prm)
		ardC := costmodel.ARDSolve(prm)
		t.AddRow(p, st.rdSolve, st.ardSolve,
			time.Duration(machine.Time(rdC)*1e9),
			time.Duration(machine.Time(ardC)*1e9),
			rdC.Rounds)
	}
	return []*Table{t}, nil
}

func runE4(quick bool) ([]*Table, error) {
	defer serialKernels()()
	m, p := 8, 8
	ns := []int{128, 256, 512, 1024, 2048, 4096}
	reps := 2
	if quick {
		ns = []int{64, 128, 256}
	}
	t := NewTable(fmt.Sprintf("E4: runtime vs N (oscillatory M=%d P=%d, R=1)", m, p),
		"N", "RD solve", "ARD factor", "ARD solve", "Thomas solve", "RD flops", "ARD flops")
	t.Note = "all three grow ~linearly in N (the N/P term dominates log P at these sizes)"
	chart := NewChart("Figure E4: per-solve time vs N (log-log)", "N", "seconds")
	chart.LogX, chart.LogY = true, true
	var xs, rdYs, ardYs, thYs []float64
	for _, n := range ns {
		a := workload.Build(workload.Oscillatory, n, m, 4)
		st, err := measureSolvers(a, p, 1, reps)
		if err != nil {
			return nil, fmt.Errorf("N=%d: %w", n, err)
		}
		t.AddRow(n, st.rdSolve, st.ardFactor, st.ardSolve, st.thSolve,
			st.rdStats.Flops, st.ardSolveSt.Flops)
		xs = append(xs, float64(n))
		rdYs = append(rdYs, seconds(st.rdSolve))
		ardYs = append(ardYs, seconds(st.ardSolve))
		thYs = append(thYs, seconds(st.thSolve))
	}
	chart.AddSeries("RD", xs, rdYs)
	chart.AddSeries("ARD", xs, ardYs)
	chart.AddSeries("Thomas", xs, thYs)
	t.Chart = chart
	return []*Table{t}, nil
}

func runE5(quick bool) ([]*Table, error) {
	defer serialKernels()()
	n, p := 256, 8
	ms := []int{2, 4, 8, 16, 32}
	reps := 2
	if quick {
		n = 64
		ms = []int{2, 4, 8, 16}
	}
	t := NewTable(fmt.Sprintf("E5: runtime vs block size M (oscillatory N=%d P=%d, R=1)", n, p),
		"M", "RD solve", "ARD solve", "RD/ARD ratio", "model ratio")
	t.Note = "RD grows ~M^3 per solve, ARD ~M^2: the ratio grows ~linearly in M"
	for _, m := range ms {
		a := workload.Build(workload.Oscillatory, n, m, 5)
		st, err := measureSolvers(a, p, 1, reps)
		if err != nil {
			return nil, fmt.Errorf("M=%d: %w", m, err)
		}
		prm := costmodel.Params{N: n, M: m, P: p, R: 1}
		modelRatio := float64(costmodel.RDSolve(prm).MaxRankFlops) /
			float64(costmodel.ARDSolve(prm).MaxRankFlops)
		t.AddRow(m, st.rdSolve, st.ardSolve,
			seconds(st.rdSolve)/seconds(st.ardSolve), modelRatio)
	}
	return []*Table{t}, nil
}

// calibratedMachine builds a machine model whose flop rate is measured on
// this host with a representative kernel, so model times are comparable to
// wall times.
func calibratedMachine(n, m int) (costmodel.Machine, error) {
	a := workload.Build(workload.Oscillatory, min(n, 256), m, 9)
	rd := core.NewRD(a, core.Config{World: comm.NewWorld(1)})
	b := a.RandomRHS(1, randFor(17))
	d, err := MeasureErr(1, 2, func() error {
		_, err := rd.Solve(b)
		return err
	})
	if err != nil {
		return costmodel.Machine{}, fmt.Errorf("calibration solve: %w", err)
	}
	rate := float64(rd.Stats().Flops) / seconds(d)
	return costmodel.Machine{FlopsPerSec: rate, Net: comm.DefaultCostModel}, nil
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
