package harness

import (
	"errors"
	"strings"
	"testing"
	"time"
)

func TestMeasureErr(t *testing.T) {
	calls := 0
	d, err := MeasureErr(1, 2, func() error {
		calls++
		return nil
	})
	if err != nil {
		t.Fatalf("MeasureErr: %v", err)
	}
	if d <= 0 {
		t.Fatalf("MeasureErr returned non-positive duration %v", d)
	}
	if calls != 3 {
		t.Fatalf("MeasureErr ran f %d times, want 3 (1 warmup + 2 reps)", calls)
	}

	boom := errors.New("boom")
	calls = 0
	_, err = MeasureErr(0, 5, func() error {
		calls++
		if calls == 2 {
			return boom
		}
		return nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("MeasureErr error = %v, want boom", err)
	}
	if calls != 2 {
		t.Fatalf("MeasureErr kept running after failure: %d calls", calls)
	}
}

func TestTableRender(t *testing.T) {
	tb := NewTable("demo", "a", "b")
	tb.Note = "a note"
	tb.AddRow(1, 2.5)
	tb.AddRow("xyz", 150*time.Microsecond)
	var sb strings.Builder
	tb.Render(&sb)
	out := sb.String()
	for _, want := range []string{"== demo ==", "a note", "a", "b", "xyz", "2.5", "150.0µs"} {
		if !strings.Contains(out, want) {
			t.Fatalf("render missing %q:\n%s", want, out)
		}
	}
}

func TestTableRenderCSV(t *testing.T) {
	tb := NewTable("demo", "x", "y")
	tb.AddRow(1, 2)
	var sb strings.Builder
	tb.RenderCSV(&sb)
	out := sb.String()
	if !strings.Contains(out, "# demo\n") || !strings.Contains(out, "x,y\n") || !strings.Contains(out, "1,2\n") {
		t.Fatalf("csv wrong:\n%s", out)
	}
}

func TestDurationFormatting(t *testing.T) {
	cases := []struct {
		d    time.Duration
		want string
	}{
		{2 * time.Second, "2.000s"},
		{15 * time.Millisecond, "15.000ms"},
		{37 * time.Microsecond, "37.0µs"},
	}
	for _, tc := range cases {
		if got := formatDuration(tc.d); got != tc.want {
			t.Fatalf("formatDuration(%v) = %q want %q", tc.d, got, tc.want)
		}
	}
}

func TestMeasureReturnsPositive(t *testing.T) {
	n := 0
	d := Measure(1, 3, func() { n++ })
	if d < 0 {
		t.Fatal("negative duration")
	}
	if n != 4 {
		t.Fatalf("expected 1 warmup + 3 reps = 4 calls, got %d", n)
	}
	d2 := MeasureMean(0, 2, func() { time.Sleep(time.Millisecond) })
	if d2 < time.Millisecond/2 {
		t.Fatalf("mean measurement implausibly small: %v", d2)
	}
}

func TestRegistryComplete(t *testing.T) {
	want := []string{"E1", "E2", "E3", "E4", "E5", "E6", "E7", "E8", "E9", "E10", "E11", "E12", "E13"}
	exps := Experiments()
	if len(exps) != len(want) {
		t.Fatalf("registry has %d experiments, want %d", len(exps), len(want))
	}
	for i, id := range want {
		if exps[i].ID != id {
			t.Fatalf("experiment %d is %s, want %s", i, exps[i].ID, id)
		}
	}
	if _, ok := Find("E7"); !ok {
		t.Fatal("Find(E7) failed")
	}
	if _, ok := Find("E99"); ok {
		t.Fatal("Find(E99) should fail")
	}
}

// TestQuickExperimentsProduceTables smoke-runs every experiment in quick
// mode and checks the tables are well formed (this exercises the full
// measurement pipeline end to end).
func TestQuickExperimentsProduceTables(t *testing.T) {
	if testing.Short() {
		t.Skip("quick experiments still take seconds")
	}
	for _, e := range Experiments() {
		e := e
		t.Run(e.ID, func(t *testing.T) {
			tables, err := e.Run(true)
			if err != nil {
				t.Fatalf("%s failed: %v", e.ID, err)
			}
			if len(tables) == 0 {
				t.Fatalf("%s produced no tables", e.ID)
			}
			for _, tb := range tables {
				if len(tb.Rows) == 0 {
					t.Fatalf("%s: table %q has no rows", e.ID, tb.Title)
				}
				for _, row := range tb.Rows {
					if len(row) != len(tb.Columns) {
						t.Fatalf("%s: table %q row width %d != %d columns",
							e.ID, tb.Title, len(row), len(tb.Columns))
					}
					for _, cell := range row {
						if strings.HasPrefix(cell, "err:") {
							t.Fatalf("%s: table %q contains error cell %q", e.ID, tb.Title, cell)
						}
					}
				}
				var sb strings.Builder
				tb.Render(&sb)
				if !strings.Contains(sb.String(), tb.Title) {
					t.Fatalf("%s: render missing title", e.ID)
				}
			}
		})
	}
}
