package harness

import (
	"fmt"
	"io"
	"math"
	"strings"
)

// Chart renders one or more (x, y) series as an ASCII scatter chart — the
// terminal rendering of the paper's figures. Axes can be logarithmic,
// which suits the runtime-vs-R and scaling figures.
type Chart struct {
	Title  string
	XLabel string
	YLabel string
	LogX   bool
	LogY   bool
	Width  int // plot area columns (default 64)
	Height int // plot area rows (default 16)

	series []chartSeries
}

type chartSeries struct {
	name   string
	marker byte
	xs, ys []float64
}

// markers cycles through per-series point glyphs.
var markers = []byte{'*', 'o', '+', 'x', '#', '@'}

// NewChart returns a chart with the given title and axis labels.
func NewChart(title, xlabel, ylabel string) *Chart {
	return &Chart{Title: title, XLabel: xlabel, YLabel: ylabel, Width: 64, Height: 16}
}

// AddSeries appends a named series; xs and ys must have equal length.
func (c *Chart) AddSeries(name string, xs, ys []float64) {
	if len(xs) != len(ys) {
		panic(fmt.Sprintf("harness: series %q has %d xs but %d ys", name, len(xs), len(ys)))
	}
	c.series = append(c.series, chartSeries{
		name:   name,
		marker: markers[len(c.series)%len(markers)],
		xs:     xs,
		ys:     ys,
	})
}

func (c *Chart) transform(v float64, log bool) (float64, bool) {
	if !log {
		return v, true
	}
	if v <= 0 {
		return 0, false
	}
	return math.Log10(v), true
}

// Render draws the chart.
func (c *Chart) Render(w io.Writer) {
	width, height := c.Width, c.Height
	if width <= 0 {
		width = 64
	}
	if height <= 0 {
		height = 16
	}
	// Bounds over all (transformed) points.
	minX, maxX := math.Inf(1), math.Inf(-1)
	minY, maxY := math.Inf(1), math.Inf(-1)
	for _, s := range c.series {
		for i := range s.xs {
			x, okx := c.transform(s.xs[i], c.LogX)
			y, oky := c.transform(s.ys[i], c.LogY)
			if !okx || !oky {
				continue
			}
			minX, maxX = math.Min(minX, x), math.Max(maxX, x)
			minY, maxY = math.Min(minY, y), math.Max(maxY, y)
		}
	}
	fmt.Fprintf(w, "\n-- %s --\n", c.Title)
	if math.IsInf(minX, 1) {
		fmt.Fprintln(w, "(no plottable points)")
		return
	}
	if maxX == minX {
		maxX = minX + 1
	}
	if maxY == minY {
		maxY = minY + 1
	}
	grid := make([][]byte, height)
	for r := range grid {
		grid[r] = []byte(strings.Repeat(" ", width))
	}
	plot := func(s chartSeries) {
		for i := range s.xs {
			x, okx := c.transform(s.xs[i], c.LogX)
			y, oky := c.transform(s.ys[i], c.LogY)
			if !okx || !oky {
				continue
			}
			col := int((x - minX) / (maxX - minX) * float64(width-1))
			row := height - 1 - int((y-minY)/(maxY-minY)*float64(height-1))
			grid[row][col] = s.marker
		}
	}
	for _, s := range c.series {
		plot(s)
	}
	yTop := formatAxisValue(maxY, c.LogY)
	yBot := formatAxisValue(minY, c.LogY)
	labelWidth := max(len(yTop), len(yBot))
	for r, row := range grid {
		label := strings.Repeat(" ", labelWidth)
		if r == 0 {
			label = pad(yTop, labelWidth)
		}
		if r == height-1 {
			label = pad(yBot, labelWidth)
		}
		fmt.Fprintf(w, "%s |%s\n", label, string(row))
	}
	fmt.Fprintf(w, "%s +%s\n", strings.Repeat(" ", labelWidth), strings.Repeat("-", width))
	xLeft := formatAxisValue(minX, c.LogX)
	xRight := formatAxisValue(maxX, c.LogX)
	gap := width - len(xLeft) - len(xRight)
	if gap < 1 {
		gap = 1
	}
	fmt.Fprintf(w, "%s  %s%s%s\n", strings.Repeat(" ", labelWidth), xLeft, strings.Repeat(" ", gap), xRight)
	fmt.Fprintf(w, "%s  x: %s, y: %s", strings.Repeat(" ", labelWidth), c.XLabel, c.YLabel)
	if c.LogX || c.LogY {
		fmt.Fprintf(w, " (log scale)")
	}
	fmt.Fprintln(w)
	legend := make([]string, 0, len(c.series))
	for _, s := range c.series {
		legend = append(legend, fmt.Sprintf("%c=%s", s.marker, s.name))
	}
	fmt.Fprintf(w, "%s  %s\n", strings.Repeat(" ", labelWidth), strings.Join(legend, "  "))
}

func formatAxisValue(v float64, log bool) string {
	if log {
		return fmt.Sprintf("%.3g", math.Pow(10, v))
	}
	return fmt.Sprintf("%.3g", v)
}

func pad(s string, w int) string {
	if len(s) >= w {
		return s
	}
	return strings.Repeat(" ", w-len(s)) + s
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
