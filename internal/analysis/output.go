package analysis

import (
	"encoding/json"
	"io"
	"path/filepath"
	"strings"
)

// Machine-readable renderings of a lint run. The text form in
// Finding.String is for humans at a terminal; CI archives the same findings
// as plain JSON (for scripts) or SARIF 2.1.0 (for code-scanning UIs and
// long-term report storage). Both renderers are deliberately tiny: findings
// in, bytes out, no options.

// jsonFinding is the stable wire form of one finding.
type jsonFinding struct {
	File     string `json:"file"`
	Line     int    `json:"line"`
	Column   int    `json:"column"`
	Analyzer string `json:"analyzer"`
	Message  string `json:"message"`
}

// JSONInterp is the run-level interprocedural metadata in the JSON report:
// whether summaries were consulted and the deterministic cache counters.
type JSONInterp struct {
	Enabled   bool         `json:"enabled"`
	Summaries SummaryStats `json:"summaries"`
}

// jsonReport is the top-level JSON document: the findings plus the
// interprocedural block. Everything in it is deterministic, so two runs over
// the same tree produce byte-identical output.
type jsonReport struct {
	Findings        []jsonFinding `json:"findings"`
	Interprocedural JSONInterp    `json:"interprocedural"`
}

// WriteJSON renders a lint run as a JSON object with a "findings" array
// (never null) and an "interprocedural" metadata block, with file paths made
// relative to root where possible.
func WriteJSON(w io.Writer, findings []Finding, root string, interp JSONInterp) error {
	out := jsonReport{Findings: make([]jsonFinding, 0, len(findings)), Interprocedural: interp}
	for _, f := range findings {
		out.Findings = append(out.Findings, jsonFinding{
			File:     relToRoot(root, f.Pos.Filename),
			Line:     f.Pos.Line,
			Column:   f.Pos.Column,
			Analyzer: f.Analyzer,
			Message:  f.Message,
		})
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}

// SARIF 2.1.0, minimally: one run, one rule per analyzer, one result per
// finding.
type sarifLog struct {
	Schema  string     `json:"$schema"`
	Version string     `json:"version"`
	Runs    []sarifRun `json:"runs"`
}

type sarifRun struct {
	Tool    sarifTool     `json:"tool"`
	Results []sarifResult `json:"results"`
}

type sarifTool struct {
	Driver sarifDriver `json:"driver"`
}

type sarifDriver struct {
	Name  string      `json:"name"`
	Rules []sarifRule `json:"rules"`
}

type sarifRule struct {
	ID               string      `json:"id"`
	ShortDescription sarifText   `json:"shortDescription"`
	HelpURI          string      `json:"helpUri"`
	DefaultConfig    sarifConfig `json:"defaultConfiguration"`
}

type sarifConfig struct {
	Level string `json:"level"`
}

type sarifText struct {
	Text string `json:"text"`
}

type sarifResult struct {
	RuleID    string          `json:"ruleId"`
	Level     string          `json:"level"`
	Message   sarifText       `json:"message"`
	Locations []sarifLocation `json:"locations"`
}

type sarifLocation struct {
	PhysicalLocation sarifPhysical `json:"physicalLocation"`
}

type sarifPhysical struct {
	ArtifactLocation sarifArtifact `json:"artifactLocation"`
	Region           sarifRegion   `json:"region"`
}

type sarifArtifact struct {
	URI string `json:"uri"`
}

type sarifRegion struct {
	StartLine   int `json:"startLine"`
	StartColumn int `json:"startColumn,omitempty"`
}

// helpAnchor is the documentation link baked into each SARIF rule: the
// per-analyzer anchor inside the static-analysis guide.
func helpAnchor(name string) string {
	return "docs/STATIC_ANALYSIS.md#" + name
}

// WriteSARIF renders findings as a SARIF 2.1.0 log: one rule per analyzer
// in the suite (found or not, so the report names what ran) plus the
// "suppress" pseudo-rule for directive hygiene, one result per finding. Each
// rule carries a helpUri pointing at its section of the analyzer guide and a
// defaultConfiguration.level matching the analyzer's severity tier.
func WriteSARIF(w io.Writer, analyzers []*Analyzer, findings []Finding, root string) error {
	rules := make([]sarifRule, 0, len(analyzers)+1)
	levels := map[string]string{SuppressName: SeverityWarning}
	for _, a := range analyzers {
		rules = append(rules, sarifRule{
			ID:               a.Name,
			ShortDescription: sarifText{Text: a.Doc},
			HelpURI:          helpAnchor(a.Name),
			DefaultConfig:    sarifConfig{Level: a.Severity},
		})
		levels[a.Name] = a.Severity
	}
	rules = append(rules, sarifRule{
		ID:               SuppressName,
		ShortDescription: sarifText{Text: "lint:ignore directives must name a real analyzer and match a finding"},
		HelpURI:          helpAnchor("suppression"),
		DefaultConfig:    sarifConfig{Level: SeverityWarning},
	})
	results := make([]sarifResult, 0, len(findings))
	for _, f := range findings {
		level := levels[f.Analyzer]
		if level == "" {
			level = SeverityWarning
		}
		results = append(results, sarifResult{
			RuleID:  f.Analyzer,
			Level:   level,
			Message: sarifText{Text: f.Message},
			Locations: []sarifLocation{{
				PhysicalLocation: sarifPhysical{
					ArtifactLocation: sarifArtifact{URI: filepath.ToSlash(relToRoot(root, f.Pos.Filename))},
					Region:           sarifRegion{StartLine: f.Pos.Line, StartColumn: f.Pos.Column},
				},
			}},
		})
	}
	log := sarifLog{
		Schema:  "https://json.schemastore.org/sarif-2.1.0.json",
		Version: "2.1.0",
		Runs: []sarifRun{{
			Tool:    sarifTool{Driver: sarifDriver{Name: "blocktri-lint", Rules: rules}},
			Results: results,
		}},
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(log)
}

// relToRoot shortens path to be relative to root when it lies inside it.
func relToRoot(root, path string) string {
	if root == "" {
		return path
	}
	if rel, err := filepath.Rel(root, path); err == nil && !strings.HasPrefix(rel, "..") {
		return rel
	}
	return path
}
