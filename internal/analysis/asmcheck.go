package analysis

import (
	"go/ast"
	"go/types"
	"os"
	"regexp"
	"runtime"
	"sort"
	"strconv"
	"strings"
)

// asmcheck verifies the hand-written assembly kernels against their Go
// declarations. The AVX-512 GEMM micro-kernel is the hottest code in the
// repository and the one place the type checker cannot follow: a frame-size
// typo, an FP offset drifting after a signature change, a missing
// VZEROUPPER (AVX/SSE transition stalls in every later sqrt of the
// Cholesky factor), or a clobbered callee-saved register all assemble and
// link fine and then corrupt results or performance at runtime.
//
// For every TEXT block in a package's .s files, asmcheck checks:
//
//   - a body-less Go declaration of the same name exists, and carries
//     //go:noescape when it takes pointers (without it, every call heap-
//     allocates the pointed-to buffers' escape analysis conservatively);
//   - the declared argument size matches the ABI0 frame layout computed
//     from the Go signature, and every name+offset(FP) reference resolves
//     to the right parameter or result at the right offset;
//   - NOSPLIT is set — the kernels must not carry stack-split preludes;
//   - functions touching Y/Z vector registers execute VZEROUPPER before
//     every RET;
//   - no instruction writes a register the Go ABI reserves (SP, BP frame
//     pointer, R14 goroutine pointer, R15 dynamic-linking scratch).
//
// The checks are a pure text analysis of the Plan 9 source — no toolchain
// invocation — so asmcheck stays enabled in -watch mode (NeedsBuild is
// false). It runs only on GOARCH=amd64 hosts: elsewhere the build filters
// out both the .s files and their declaration stubs.
var asmCheckAnalyzer = &Analyzer{
	Name:     "asmcheck",
	Doc:      "verify .s kernels against Go declarations: ABI0 frame/offsets, NOSPLIT, VZEROUPPER, callee-saved registers",
	Severity: SeverityError,
	Version:  1,
	Run:      runAsmCheck,
}

var (
	asmTextRe  = regexp.MustCompile(`^TEXT\s+·(\w+)\(SB\)\s*(?:,\s*([A-Z0-9|]+)\s*)?,\s*\$(-?\d+)(?:-(\d+))?\s*$`)
	asmFPRefRe = regexp.MustCompile(`(\w+)\+(\d+)\(FP\)`)
	asmVecRe   = regexp.MustCompile(`\b[YZ]\d+\b`)
)

// asmInstr is one instruction line of a TEXT block.
type asmInstr struct {
	Line     int
	Op       string
	Operands []string
}

// asmFunc is one parsed TEXT block.
type asmFunc struct {
	Name      string
	Line      int // line of the TEXT directive
	Flags     []string
	FrameSize int
	ArgSize   int // -1 when the TEXT line omits the argument size
	Instrs    []asmInstr
	UsesVec   bool // any Y/Z register operand anywhere in the body
}

// parseAsmFile splits a Plan 9 source into TEXT blocks. Unparseable TEXT
// lines are reported through bad so malformed directives surface as
// findings instead of silently skipping a kernel.
func parseAsmFile(src []byte, bad func(line int, text string)) []*asmFunc {
	var funcs []*asmFunc
	var cur *asmFunc
	for i, raw := range strings.Split(string(src), "\n") {
		line := i + 1
		text := raw
		if idx := strings.Index(text, "//"); idx >= 0 {
			text = text[:idx]
		}
		text = strings.TrimSpace(text)
		if text == "" || strings.HasPrefix(text, "#") || strings.HasSuffix(text, ":") {
			continue // blank, preprocessor, label
		}
		if strings.HasPrefix(text, "TEXT") {
			m := asmTextRe.FindStringSubmatch(text)
			if m == nil {
				bad(line, raw)
				cur = nil
				continue
			}
			frame, _ := strconv.Atoi(m[3])
			args := -1
			if m[4] != "" {
				args, _ = strconv.Atoi(m[4])
			}
			cur = &asmFunc{Name: m[1], Line: line, FrameSize: frame, ArgSize: args}
			if m[2] != "" {
				cur.Flags = strings.Split(m[2], "|")
			}
			funcs = append(funcs, cur)
			continue
		}
		if cur == nil {
			continue // DATA/GLOBL or stray line outside any TEXT
		}
		fields := strings.Fields(text)
		in := asmInstr{Line: line, Op: fields[0]}
		if rest := strings.TrimSpace(text[len(fields[0]):]); rest != "" {
			for _, op := range strings.Split(rest, ",") {
				in.Operands = append(in.Operands, strings.TrimSpace(op))
			}
		}
		if asmVecRe.MatchString(text) {
			cur.UsesVec = true
		}
		cur.Instrs = append(cur.Instrs, in)
	}
	return funcs
}

func (f *asmFunc) hasFlag(name string) bool {
	for _, fl := range f.Flags {
		if fl == name {
			return true
		}
	}
	return false
}

// abiSlot is one parameter or result in the ABI0 stack frame.
type abiSlot struct {
	Name   string
	Offset int64
	Size   int64
}

// abi0Layout computes the ABI0 (stack-only) argument frame of a signature
// on the given target: parameters packed in order at their natural
// alignment, results after re-aligning to the pointer size, total rounded
// up to the pointer size. This is the layout the assembler's name+off(FP)
// symbols address.
func abi0Layout(sig *types.Signature, sizes types.Sizes) (slots []abiSlot, total int64) {
	const ptrSize = 8
	align := func(o, a int64) int64 { return (o + a - 1) &^ (a - 1) }
	off := int64(0)
	walk := func(tup *types.Tuple) {
		for i := 0; i < tup.Len(); i++ {
			v := tup.At(i)
			off = align(off, sizes.Alignof(v.Type()))
			slots = append(slots, abiSlot{Name: v.Name(), Offset: off, Size: sizes.Sizeof(v.Type())})
			off += sizes.Sizeof(v.Type())
		}
	}
	walk(sig.Params())
	off = align(off, ptrSize)
	walk(sig.Results())
	return slots, align(off, ptrSize)
}

// calleeSavedAMD64 lists the registers the Go amd64 ABI reserves; writing
// any of them in a leaf kernel corrupts the caller's frame walk (BP), the
// scheduler (R14 holds g), dynamic linking (R15) or the stack itself (SP).
var calleeSavedAMD64 = map[string]string{
	"SP":  "the stack pointer",
	"BP":  "the frame pointer",
	"R14": "the goroutine pointer (g)",
	"R15": "the dynamic-linking scratch register",
}

func runAsmCheck(m *Module) []Finding {
	// The register rules and frame layout below are amd64's; on other hosts
	// the build context filters out both the _amd64.s files and their stub
	// declarations, so there is nothing coherent to check.
	if runtime.GOARCH != "amd64" {
		return nil
	}
	p := &pass{m: m, name: "asmcheck"}
	sizes := types.SizesFor("gc", "amd64")
	for _, pkg := range m.Pkgs {
		sfiles := m.asmFilesFor(pkg)
		if len(sfiles) == 0 {
			continue
		}
		stubs, stubSigs := asmStubs(pkg)
		implemented := make(map[string]bool)
		for _, sf := range sfiles {
			report := func(line int, format string, args ...any) {
				p.reportAt(FactDiag{File: sf.Name, Line: line, Col: 1}, format, args...)
			}
			funcs := parseAsmFile(sf.Src, func(line int, text string) {
				report(line, "unparseable TEXT directive %q: expected TEXT ·name(SB), FLAGS, $frame-args", strings.TrimSpace(text))
			})
			for _, f := range funcs {
				implemented[f.Name] = true
				fd := stubs[f.Name]
				if fd == nil {
					report(f.Line, "TEXT ·%s has no body-less Go declaration in package %s", f.Name, pkg.Pkg.Name())
					continue
				}
				sig := stubSigs[f.Name]
				if sig != nil && takesPointers(sig) && !hasAnnotation(fd.Doc, "//go:noescape") {
					p.reportf(fd.Pos(), "assembly stub %s takes pointers but is not marked //go:noescape: escape analysis will heap-allocate every buffer passed to it", f.Name)
				}
				if !f.hasFlag("NOSPLIT") {
					report(f.Line, "TEXT ·%s is missing NOSPLIT: a stack-split prelude in the kernel defeats the leaf-call cost model", f.Name)
				}
				if sig == nil {
					continue
				}
				slots, total := abi0Layout(sig, sizes)
				if f.ArgSize < 0 && total > 0 {
					report(f.Line, "TEXT ·%s omits the argument size: declare $%d-%d to match %s", f.Name, f.FrameSize, total, types.ObjectString(pkg.Info.Defs[fd.Name], types.RelativeTo(pkg.Pkg)))
				} else if f.ArgSize >= 0 && int64(f.ArgSize) != total {
					report(f.Line, "TEXT ·%s declares argument size %d but the ABI0 layout of its Go signature needs %d bytes", f.Name, f.ArgSize, total)
				}
				byName := make(map[string]abiSlot, len(slots))
				for _, s := range slots {
					if s.Name != "" && s.Name != "_" {
						byName[s.Name] = s
					}
				}
				checkInstrs(f, byName, report)
			}
		}
		// The reverse direction: a Go stub with no TEXT block would die at
		// link time with a bare "missing function body"; anchoring it here
		// names the .s files that were searched.
		var missing []string
		for name := range stubs {
			if !implemented[name] {
				missing = append(missing, name)
			}
		}
		sort.Strings(missing)
		for _, name := range missing {
			p.reportf(stubs[name].Pos(), "assembly stub %s has no TEXT block in the package's .s files", name)
		}
	}
	return p.findings
}

// checkInstrs runs the per-instruction checks of one TEXT block: FP
// symbol/offset resolution, callee-saved destinations, and VZEROUPPER
// discipline before each RET.
func checkInstrs(f *asmFunc, byName map[string]abiSlot, report func(line int, format string, args ...any)) {
	lastOp := ""
	for _, in := range f.Instrs {
		for _, op := range in.Operands {
			for _, ref := range asmFPRefRe.FindAllStringSubmatch(op, -1) {
				name := ref[1]
				off, _ := strconv.Atoi(ref[2])
				slot, ok := byName[name]
				if !ok {
					report(in.Line, "%s+%s(FP) does not name a parameter or result of ·%s", name, ref[2], f.Name)
					continue
				}
				if slot.Offset != int64(off) {
					report(in.Line, "%s+%d(FP) disagrees with the ABI0 layout: %s lives at offset %d", name, off, name, slot.Offset)
				}
			}
		}
		if len(in.Operands) > 0 && in.Op != "TESTQ" && in.Op != "CMPQ" && in.Op != "CMPL" {
			dst := in.Operands[len(in.Operands)-1]
			if role, ok := calleeSavedAMD64[dst]; ok {
				report(in.Line, "%s writes %s, %s: the Go ABI requires it preserved across the call", in.Op, dst, role)
			}
		}
		if in.Op == "RET" && f.UsesVec && lastOp != "VZEROUPPER" {
			report(in.Line, "RET without VZEROUPPER in ·%s, which uses Z/Y registers: mixing dirty upper ZMM state with later SSE code stalls every subsequent scalar op", f.Name)
		}
		lastOp = in.Op
	}
}

// asmStubs indexes a package's body-less function declarations — the Go
// side of its assembly implementations — and their signatures.
func asmStubs(pkg *Package) (map[string]*ast.FuncDecl, map[string]*types.Signature) {
	stubs := make(map[string]*ast.FuncDecl)
	sigs := make(map[string]*types.Signature)
	for _, file := range pkg.Files {
		for _, d := range file.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body != nil || fd.Recv != nil {
				continue
			}
			stubs[fd.Name.Name] = fd
			if fn, ok := pkg.Info.Defs[fd.Name].(*types.Func); ok {
				if sig, ok := fn.Type().(*types.Signature); ok {
					sigs[fd.Name.Name] = sig
				}
			}
		}
	}
	return stubs, sigs
}

// asmFilesFor returns a package's assembly sources: from the scan when the
// module was scanned (the bytes the cache key covers), from disk for
// fixture modules.
func (m *Module) asmFilesFor(pkg *Package) []scanFile {
	if m.scan != nil {
		if sp := m.scan.ByPath[pkg.Path]; sp != nil {
			return sp.SFiles
		}
		return nil
	}
	names, err := asmFilesIn(pkg.Dir)
	if err != nil {
		return nil
	}
	var out []scanFile
	for _, name := range names {
		src, err := os.ReadFile(name)
		if err != nil {
			continue
		}
		out = append(out, scanFile{Name: name, Src: src, Hash: hashBytes(src)})
	}
	return out
}

// takesPointers reports whether any parameter carries a pointer the callee
// could retain: pointers, slices, maps, channels, function values.
func takesPointers(sig *types.Signature) bool {
	for i := 0; i < sig.Params().Len(); i++ {
		switch sig.Params().At(i).Type().Underlying().(type) {
		case *types.Pointer, *types.Slice, *types.Map, *types.Chan, *types.Signature, *types.Interface:
			return true
		}
	}
	return false
}
