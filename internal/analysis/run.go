package analysis

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"runtime"
	"time"
)

// RunLint is the incremental whole-module entry point behind the
// blocktri-lint driver, the watch loop and the perf harness. One call:
//
//  1. scans the module (imports-only parses + content hashes, scan.go) and
//     derives every package's cache key from the run configuration;
//  2. partitions packages into cache hits (their findings, directives and
//     summaries replay from disk) and dirty packages;
//  3. materializes only the dirty packages — plus, transitively, their
//     imports, which the type-checker needs — through the lazy loader;
//  4. runs the enabled analyzers over the dirty packages only;
//  5. merges cached and fresh results in scan order, persists fresh entries,
//     and sweeps stale cache files.
//
// On an unchanged tree every package hits and step 3–4 do no work at all:
// no file is fully parsed, nothing is type-checked, and the run cost is the
// scan plus entry reads. The merged findings are byte-identical to a cold
// run's because entries store raw pre-suppression findings and directives,
// and suppression filtering replays over the merged sets.
//
// Fixture loading (Module.LoadFixture) and eager loading (LoadModule) are
// untouched side doors: analyzer unit tests and the cold perf benchmarks
// use them directly and never see the cache.

// RunOptions configures one RunLint call.
type RunOptions struct {
	// Analyzers is the enabled analyzer set in suite order. Names and
	// versions participate in the cache key.
	Analyzers []*Analyzer
	// NoInterp disables the interprocedural layer (also keyed).
	NoInterp bool
	// CacheDir is the persistent cache directory; "" disables persistence
	// entirely (every run is cold, nothing is written).
	CacheDir string
}

// AnalyzerTiming is one analyzer's wall-clock cost over the dirty packages.
type AnalyzerTiming struct {
	Name     string
	Duration time.Duration
}

// CacheStats describes what the persistent cache did during one run.
type CacheStats struct {
	// Enabled reports whether a usable cache directory was attached.
	Enabled bool
	Dir     string
	// Degraded carries the reason when a requested cache could not be
	// opened (the run proceeded cold).
	Degraded string
	// Packages is the number of packages in the module scan;
	// Hits replayed from disk, Misses were (re)analyzed.
	Packages int
	Hits     int
	Misses   int
	// Evicted counts stale cache files swept after the run; WriteErrors
	// counts entries that could not be persisted (best-effort, never fatal).
	Evicted     int
	WriteErrors int
	// FactsHits / FactsMisses count compiler-fact table requests served from
	// the persistent facts entry vs computed by invoking the toolchain. Both
	// stay zero when no enabled analyzer requested facts (fully warm runs,
	// or runs touching no annotated package).
	FactsHits   int
	FactsMisses int
}

// RunResult is the outcome of one RunLint call.
type RunResult struct {
	Root string
	// Raw holds the merged raw (pre-suppression) findings of every package,
	// sorted canonically. The driver applies FilterSuppressed and the
	// directive audit.
	Raw []Finding
	// Sup is the merged suppression-directive set of the whole module.
	Sup *Suppressions
	// Timings lists per-analyzer wall time over the dirty packages (zero
	// work on a fully warm run).
	Timings []AnalyzerTiming
	// Summary is the deterministic structural description of the
	// interprocedural layer over the whole module — identical for cold,
	// warm and incremental runs of the same tree and configuration.
	Summary SummaryStats
	// Runtime is how summary lookups were served this run (in-process vs
	// persistent vs computed).
	Runtime SummaryRuntime
	Cache   CacheStats
}

// runConfigHash digests everything outside the tree that affects findings:
// the cache schema, the toolchain, the interprocedural switch, and the
// enabled analyzer set with per-analyzer versions. It seeds every package
// key (scan.computeKeys) and prefixes every cache filename.
func runConfigHash(opts RunOptions) string {
	h := sha256.New()
	// GOARCH is keyed alongside the toolchain version: compiler facts (and
	// asmcheck's file set, via the build-constraint filter) are
	// architecture-dependent even for an identical tree.
	fmt.Fprintf(h, "schema\x00%d\x00go\x00%s\x00goarch\x00%s\x00interp\x00%t\x00", cacheSchemaVersion, runtime.Version(), runtime.GOARCH, !opts.NoInterp)
	for _, a := range opts.Analyzers {
		fmt.Fprintf(h, "analyzer\x00%s\x00%d\x00", a.Name, a.Version)
	}
	return hex.EncodeToString(h.Sum(nil))
}

// RunLint lints the module rooted at root under the given options.
func RunLint(root string, opts RunOptions) (*RunResult, error) {
	m, err := newLazyModule(root)
	if err != nil {
		return nil, err
	}
	m.NoInterp = opts.NoInterp
	sc := m.scan
	config := runConfigHash(opts)
	sc.computeKeys(config)

	res := &RunResult{Root: sc.Root}
	res.Cache.Packages = len(sc.Pkgs)

	var c *cache
	if opts.CacheDir != "" {
		res.Cache.Dir = opts.CacheDir
		if cc, err := openCache(opts.CacheDir, config); err != nil {
			// An unusable cache directory degrades to a cold uncached run;
			// it must never fail the lint.
			res.Cache.Degraded = err.Error()
		} else {
			c = cc
			res.Cache.Enabled = true
		}
	}

	// Partition: a package whose entry validates replays from disk; its key
	// already covers its whole import closure, so a hit needs no further
	// checks. Everything else is dirty.
	entries := make(map[string]*cacheEntry)
	var dirty []*scanPackage
	for _, sp := range sc.Pkgs {
		if c != nil {
			if e, ok := c.load(sp); ok {
				entries[sp.Path] = e
				res.Cache.Hits++
				continue
			}
		}
		dirty = append(dirty, sp)
		res.Cache.Misses++
	}

	// Compiler facts flow through the persistent cache when one is attached:
	// a table whose (go version, GOARCH, flags, tree hash) key matches
	// replays from disk; otherwise the toolchain runs once and the result is
	// stored. The closure only executes if some enabled analyzer actually
	// asks (Module.CompilerFacts is lazy and memoized), so warm runs — whose
	// analyzers see no materialized packages — never touch the toolchain.
	m.factsFn = func(_ *Module) (*CompilerFacts, error) {
		treeHash := sc.treeHash()
		if c != nil {
			if cf, ok := c.loadFacts(sc.Root, treeHash); ok {
				res.Cache.FactsHits++
				return cf, nil
			}
		}
		cf, err := computeCompilerFacts(sc.Root)
		if err != nil {
			return nil, err
		}
		res.Cache.FactsMisses++
		if c != nil {
			if err := c.storeFacts(sc.Root, treeHash, cf); err != nil {
				res.Cache.WriteErrors++
			}
		}
		return cf, nil
	}

	// Clean packages materialized as dependencies of dirty ones rehydrate
	// their summaries from their entries instead of recomputing.
	if c != nil {
		m.sumLoader = func(pkg *Package) (pkgSummaries, SummaryStats, bool) {
			e, ok := entries[pkg.Path]
			if !ok {
				return nil, SummaryStats{}, false
			}
			return decodeSummaries(pkg, e)
		}
	}

	// Materialize the dirty packages and their import closures.
	for _, sp := range dirty {
		if _, err := m.ensurePackage(sp.Path); err != nil {
			return nil, err
		}
	}

	// Analyzers and suppression collection must scan only the dirty
	// packages — clean ones replay from their entries. Their clean imports
	// stay on the loader for type information and summary resolution.
	dirtySet := make(map[string]bool, len(dirty))
	for _, sp := range dirty {
		dirtySet[sp.Path] = true
	}
	byPath := make(map[string]*Package, len(m.Pkgs))
	analyzed := make([]*Package, 0, len(dirty))
	for _, p := range m.Pkgs {
		byPath[p.Path] = p
		if dirtySet[p.Path] {
			analyzed = append(analyzed, p)
		}
	}
	m.Pkgs = analyzed

	// Fresh findings, attributed to packages by file (scan.go indexed every
	// file; analyzers only ever report inside the package they scan).
	fileToPkg := make(map[string]string)
	for _, sp := range sc.Pkgs {
		for _, f := range sp.Files {
			fileToPkg[f.Name] = sp.Path
		}
	}
	fresh := make(map[string][]Finding, len(dirty))
	for _, a := range opts.Analyzers {
		start := time.Now()
		for _, f := range a.Run(m) {
			path := fileToPkg[f.Pos.Filename]
			fresh[path] = append(fresh[path], f)
		}
		res.Timings = append(res.Timings, AnalyzerTiming{Name: a.Name, Duration: time.Since(start)})
	}

	// Per-package directives: fresh for dirty packages, replayed for clean
	// ones; merged in scan order so marking behaves exactly like a cold run.
	res.Sup = newSuppressions()
	freshSup := make(map[string]*Suppressions, len(dirty))
	for _, sp := range dirty {
		ps := newSuppressions()
		ps.collectPackage(m.Fset, byPath[sp.Path])
		freshSup[sp.Path] = ps
	}
	for _, sp := range sc.Pkgs {
		if e := entries[sp.Path]; e != nil {
			for _, d := range e.Directives {
				res.Sup.add(decodePos(sc.Root, d.File, d.Offset, d.Line, d.Col), d.Name)
			}
			continue
		}
		for _, d := range freshSup[sp.Path].all {
			res.Sup.add(d.pos, d.name)
		}
	}

	// Merge findings and the structural summary totals in scan order, and
	// build + persist entries for the dirty packages.
	expected := make(map[string]bool, len(sc.Pkgs)+1)
	if c != nil {
		// The facts entry survives the sweep even when this run never
		// requested facts: a stale table self-invalidates on its tree hash,
		// and keeping it lets an annotation-only edit warm-hit the facts.
		expected[c.factsFileName()] = true
	}
	for _, sp := range sc.Pkgs {
		if c != nil {
			expected[c.entryFileName(sp.Path)] = true
		}
		e := entries[sp.Path]
		if e == nil {
			pkg := byPath[sp.Path]
			e = &cacheEntry{
				Schema:     cacheSchemaVersion,
				Key:        sp.Key,
				Path:       sp.Path,
				Findings:   encodeFindings(sc.Root, fresh[sp.Path]),
				Directives: encodeDirectives(sc.Root, freshSup[sp.Path]),
			}
			if !opts.NoInterp {
				e.Summary = m.pkgSummaryStats(pkg)
				l := m.loader
				e.Funcs = encodeSummaries(l.sums[pkg])
				e.CallGraph = l.sumPkgSCCs[pkg]
			}
			if c != nil {
				if err := c.store(e); err != nil {
					res.Cache.WriteErrors++
				}
			}
			res.Raw = append(res.Raw, fresh[sp.Path]...)
		} else {
			res.Raw = append(res.Raw, decodeFindings(sc.Root, e.Findings)...)
		}
		res.Summary.add(e.Summary)
	}
	// Findings that could not be attributed to any scanned package (none of
	// the shipped analyzers produce these; belt and braces).
	res.Raw = append(res.Raw, fresh[""]...)
	SortFindings(res.Raw)

	if c != nil {
		res.Cache.Evicted = c.sweep(expected)
	}
	res.Runtime = m.SummaryRuntime()
	return res, nil
}
