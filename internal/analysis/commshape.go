package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// commshape statically pairs point-to-point Send/Recv calls inside one rank
// body — the compile-time complement of PR 3's runtime deadlock watchdog.
// The recursive-doubling schedules this module implements (Kogge-Stone,
// Brent-Kung, chain scans, the ARD replay) are butterflies: every rank that
// executes `Send(r+e, tag)` is, by symmetry of the SPMD body, the target of
// the same line running on rank r+e, so the matching receive must appear in
// the same function as `Recv(r-e, tag)` with the structurally identical
// offset e. commshape checks exactly that:
//
//   - for every Send to r+e (or r-e) under a tag, some Recv from r-e
//     (resp. r+e) with the same offset and tag must exist in the function;
//   - the mirror condition for every Recv;
//   - a Send whose destination is the rank itself is flagged outright — no
//     butterfly schedule consumes a self-send, it just parks a message
//     until the watchdog fires.
//
// Only rank expressions affine in the local rank — `r`, `r+e`, `r-e` where
// e does not mention r — participate. Any other destination (halo-plan map
// ranges, XOR partners, modulo rings) makes the whole tag group
// non-affine, and the group is skipped conservatively rather than guessed
// at. Exchange and symmetric SendRecv calls pair with themselves and are
// skipped. The comm package itself (collectives, retransmit machinery) is
// excluded.
var commShapeAnalyzer = &Analyzer{
	Name:     "commshape",
	Doc:      "Send(r±e, tag) inside a rank body must have a matching Recv(r∓e, tag); self-sends are flagged",
	Severity: SeverityError,
	Version:  2,
	Run:      runCommShape,
}

type shapeDir int

const (
	shapeSend shapeDir = iota
	shapeRecv
)

type shapeKind int

const (
	shapeSelf  shapeKind = iota // the rank variable itself
	shapePlus                   // rank + offset
	shapeMinus                  // rank - offset
	shapeOther                  // anything non-affine
)

// shapeSite is one point-to-point operation.
type shapeSite struct {
	call     *ast.CallExpr
	dir      shapeDir
	kind     shapeKind
	offset   string // canonical text of e in r±e
	rankName string
	tagKey   any    // constant value string or the tag variable's object
	tagStr   string // tag expression as written, for messages
}

func runCommShape(m *Module) []Finding {
	p := &pass{m: m, name: "commshape"}
	rep := newReporter(p)
	for _, pkg := range m.Pkgs {
		if pkg.Path == commPkgPath {
			continue
		}
		for _, file := range pkg.Files {
			eachFuncBody(file, func(body *ast.BlockStmt) {
				commShapeFunc(rep, m, pkg.Info, body)
			})
		}
	}
	return p.findings
}

// rankObjs collects the variables holding this body's own rank: targets of
// assignments from c.Rank().
func rankObjs(info *types.Info, body *ast.BlockStmt) map[types.Object]bool {
	set := make(map[types.Object]bool)
	inspectShallow(body, func(n ast.Node) bool {
		a, ok := n.(*ast.AssignStmt)
		if !ok || len(a.Lhs) != len(a.Rhs) {
			return true
		}
		for i, r := range a.Rhs {
			call, ok := unparen(r).(*ast.CallExpr)
			if !ok || commMethod(info, call) != "Rank" {
				continue
			}
			if obj := objOf(info, a.Lhs[i]); obj != nil {
				set[obj] = true
			}
		}
		return true
	})
	return set
}

func commShapeFunc(rep *reporter, m *Module, info *types.Info, body *ast.BlockStmt) {
	ranks := rankObjs(info, body)
	if len(ranks) == 0 {
		return
	}

	var sites []shapeSite
	poisonedTags := false
	addSite := func(call *ast.CallExpr, dir shapeDir, rankArg, tagArg ast.Expr) {
		kind, offset, rankName := classifyRank(info, ranks, rankArg)
		tagKey, tagStr, ok := tagKeyOf(info, tagArg)
		if !ok {
			poisonedTags = true
			return
		}
		sites = append(sites, shapeSite{
			call: call, dir: dir, kind: kind, offset: offset,
			rankName: rankName, tagKey: tagKey, tagStr: tagStr,
		})
	}
	inspectShallow(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		switch commMethod(info, call) {
		case "Send", "SendOwned", "ISend", "SendMatrix":
			addSite(call, shapeSend, call.Args[0], call.Args[1])
		case "Recv", "IRecv", "RecvMatrix":
			addSite(call, shapeRecv, call.Args[0], call.Args[1])
		case "SendRecv":
			if types.ExprString(call.Args[0]) == types.ExprString(call.Args[2]) {
				return true // symmetric exchange pairs with itself
			}
			addSite(call, shapeSend, call.Args[0], call.Args[3])
			addSite(call, shapeRecv, call.Args[2], call.Args[3])
		case "":
			// A summarized helper's point-to-point sites translate into this
			// function's rank space and join the pairing groups: a Recv
			// performed inside the helper satisfies a Send here (and vice
			// versa) exactly as if it were inlined.
			injected, poisoned := commShapeInject(m, info, ranks, call)
			sites = append(sites, injected...)
			if poisoned {
				poisonedTags = true
			}
		}
		return true
	})
	// A tag the analyzer cannot name poisons the whole function: it could
	// belong to any group. commtag already flags computed tags.
	if poisonedTags || len(sites) == 0 {
		return
	}

	type group struct {
		skip  bool
		have  map[[3]int]bool // (dir, kind, offset-id) present in group
		offID map[string]int
	}
	groups := make(map[any]*group)
	offIDOf := func(g *group, off string) int {
		id, ok := g.offID[off]
		if !ok {
			id = len(g.offID)
			g.offID[off] = id
		}
		return id
	}
	for _, s := range sites {
		g := groups[s.tagKey]
		if g == nil {
			g = &group{have: make(map[[3]int]bool), offID: make(map[string]int)}
			groups[s.tagKey] = g
		}
		if s.kind == shapeOther {
			g.skip = true
			continue
		}
		g.have[[3]int{int(s.dir), int(s.kind), offIDOf(g, s.offset)}] = true
	}

	inverse := map[shapeKind]shapeKind{shapeSelf: shapeSelf, shapePlus: shapeMinus, shapeMinus: shapePlus}
	for _, s := range sites {
		g := groups[s.tagKey]
		if g.skip || s.kind == shapeOther {
			continue
		}
		if s.dir == shapeSend && s.kind == shapeSelf {
			rep.reportf(s.call.Pos(), "Send targets the sending rank itself (dst = %s, tag %s); no butterfly schedule consumes a self-send", s.rankName, s.tagStr)
			continue
		}
		other := shapeRecv
		if s.dir == shapeRecv {
			other = shapeSend
		}
		if g.have[[3]int{int(other), int(inverse[s.kind]), offIDOf(g, s.offset)}] {
			continue
		}
		actual := renderRank(s.rankName, s.kind, s.offset)
		expected := renderRank(s.rankName, inverse[s.kind], s.offset)
		if s.dir == shapeSend {
			rep.reportf(s.call.Pos(), "Send to rank %s with tag %s has no matching Recv from rank %s in this function; the SPMD pairing is broken and the message is never consumed", actual, s.tagStr, expected)
		} else {
			rep.reportf(s.call.Pos(), "Recv from rank %s with tag %s has no matching Send to rank %s in this function; the SPMD pairing is broken and this receive blocks until the watchdog fires", actual, s.tagStr, expected)
		}
	}
}

// classifyRank decomposes a destination/source rank expression as affine in
// one of the body's rank variables.
func classifyRank(info *types.Info, ranks map[types.Object]bool, e ast.Expr) (shapeKind, string, string) {
	e = unparen(e)
	if obj := objOf(info, e); obj != nil && ranks[obj] {
		return shapeSelf, "", obj.Name()
	}
	bin, ok := e.(*ast.BinaryExpr)
	if !ok {
		return shapeOther, "", ""
	}
	isRank := func(x ast.Expr) (string, bool) {
		obj := objOf(info, x)
		if obj != nil && ranks[obj] {
			return obj.Name(), true
		}
		return "", false
	}
	switch bin.Op.String() {
	case "+":
		if name, ok := isRank(bin.X); ok && !mentionsRank(info, ranks, bin.Y) {
			return shapePlus, types.ExprString(bin.Y), name
		}
		if name, ok := isRank(bin.Y); ok && !mentionsRank(info, ranks, bin.X) {
			return shapePlus, types.ExprString(bin.X), name
		}
	case "-":
		if name, ok := isRank(bin.X); ok && !mentionsRank(info, ranks, bin.Y) {
			return shapeMinus, types.ExprString(bin.Y), name
		}
	}
	return shapeOther, "", ""
}

func mentionsRank(info *types.Info, ranks map[types.Object]bool, e ast.Expr) bool {
	found := false
	inspectShallow(e, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok {
			if obj := info.Uses[id]; obj != nil && ranks[obj] {
				found = true
			}
		}
		return !found
	})
	return found
}

// tagKeyOf produces a grouping key for a tag expression: constants group by
// value, plain variables (forwarded tag parameters) by object identity.
func tagKeyOf(info *types.Info, e ast.Expr) (any, string, bool) {
	if tv, ok := info.Types[e]; ok && tv.Value != nil {
		return "const:" + tv.Value.ExactString(), types.ExprString(e), true
	}
	if obj := objOf(info, e); obj != nil {
		return obj, obj.Name(), true
	}
	return nil, "", false
}

func renderRank(rank string, kind shapeKind, offset string) string {
	switch kind {
	case shapePlus:
		if needsParens(offset) {
			return rank + " + (" + offset + ")"
		}
		return rank + " + " + offset
	case shapeMinus:
		if needsParens(offset) {
			return rank + " - (" + offset + ")"
		}
		return rank + " - " + offset
	default:
		return rank
	}
}

func needsParens(off string) bool {
	return strings.ContainsAny(off, "+-*/ ")
}

// commShapeInject translates the summarized point-to-point sites of a helper
// call into the caller's rank space. Returns the translated sites and
// whether an untranslatable tag poisons the caller (same conservative rule
// as a computed tag written inline). Opaque or comm-free helpers yield
// nothing — the intraprocedural status quo.
func commShapeInject(m *Module, info *types.Info, ranks map[types.Object]bool, call *ast.CallExpr) ([]shapeSite, bool) {
	f := calleeFunc(info, call)
	if f == nil || funcPkgPath(f) == commPkgPath {
		return nil, false
	}
	sum := m.calleeSummary(f)
	if sum == nil || sum.CommOpaque || len(sum.Comm) == 0 {
		return nil, false
	}
	var out []shapeSite
	for _, sc := range sum.Comm {
		if sc.RankParam >= len(call.Args) {
			return nil, false
		}
		dir := shapeRecv
		if sc.Send {
			dir = shapeSend
		}
		// Resolve the rank argument in the caller's terms, then compose the
		// helper's own offset on top.
		kind, offset, rankName := classifyRank(info, ranks, call.Args[sc.RankParam])
		if sc.Sign != 0 {
			offText := sc.OffConst
			if sc.OffParam >= 0 {
				if sc.OffParam >= len(call.Args) || mentionsRank(info, ranks, call.Args[sc.OffParam]) {
					kind = shapeOther
				} else {
					offText = types.ExprString(call.Args[sc.OffParam])
				}
			}
			switch {
			case kind == shapeOther:
			case kind != shapeSelf:
				// r±e composed with a further ±e' has no canonical text to
				// match against inline sites; skip the group conservatively.
				kind = shapeOther
			case sc.Sign > 0:
				kind, offset = shapePlus, offText
			default:
				kind, offset = shapeMinus, offText
			}
		}
		// Resolve the tag in the caller's terms.
		var tagKey any
		tagStr := sc.TagStr
		if sc.TagParam >= 0 {
			if sc.TagParam >= len(call.Args) {
				return nil, false
			}
			var ok bool
			tagKey, tagStr, ok = tagKeyOf(info, call.Args[sc.TagParam])
			if !ok {
				return nil, true // poisons the caller, like any computed tag
			}
		} else {
			tagKey = sc.TagKey
		}
		out = append(out, shapeSite{
			call: call, dir: dir, kind: kind, offset: offset,
			rankName: rankName, tagKey: tagKey, tagStr: tagStr,
		})
	}
	return out, false
}
