package analysis

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"strings"
)

// floateq flags == and != between floating-point operands in solver and
// kernel code. The correctness arguments for recursive doubling on
// diagonally dominant systems are stated up to rounding: two mathematically
// equal quantities computed along different reduction orders differ in the
// last ulps, so an exact comparison encodes a property the algorithm does
// not actually guarantee. Two idioms are allowed:
//
//   - comparison against the exact constant 0 (the pivot-singularity
//     check: a computed pivot that is exactly zero is the one value that
//     is exactly representable and exactly meaningful), and comparisons
//     against other exact constants under a //lint:ignore floateq comment;
//   - x != x, the standard NaN probe.
//
// Measurement, reporting and CLI packages are out of scope: they compare
// floats for formatting, not for correctness.
var floatEqAnalyzer = &Analyzer{
	Name:     "floateq",
	Doc:      "flag exact floating-point equality comparisons in solver/kernel code",
	Severity: SeverityWarning,
	Version:  1,
	Run:      runFloatEq,
}

// floateqExclude lists package paths (exact, or as a subtree) where exact
// float comparison is not a correctness hazard: experiment harnesses,
// workload generators, cost-model reporting, the lint framework itself and
// command-line front ends.
var floateqExclude = []string{
	"blocktri/internal/harness",
	"blocktri/internal/workload",
	"blocktri/internal/costmodel",
	"blocktri/internal/analysis",
	"blocktri/cmd",
	"blocktri/examples",
}

func floateqInScope(path string) bool {
	for _, e := range floateqExclude {
		if path == e || strings.HasPrefix(path, e+"/") {
			return false
		}
	}
	return true
}

func runFloatEq(m *Module) []Finding {
	p := &pass{m: m, name: "floateq"}
	for _, pkg := range m.Pkgs {
		if !floateqInScope(pkg.Path) {
			continue
		}
		for _, file := range pkg.Files {
			ast.Inspect(file, func(n ast.Node) bool {
				be, ok := n.(*ast.BinaryExpr)
				if !ok || (be.Op != token.EQL && be.Op != token.NEQ) {
					return true
				}
				if !isFloatExpr(pkg.Info, be.X) || !isFloatExpr(pkg.Info, be.Y) {
					return true
				}
				if isExactZero(pkg.Info, be.X) || isExactZero(pkg.Info, be.Y) {
					return true
				}
				if be.Op == token.NEQ && types.ExprString(be.X) == types.ExprString(be.Y) {
					// x != x is the NaN probe.
					return true
				}
				p.reportf(be.OpPos,
					"exact floating-point comparison %s %s %s: use a tolerance (EqualApprox / math.Abs(a-b) <= eps); if the exact compare is intentional, add //lint:ignore floateq with the reason",
					types.ExprString(be.X), be.Op, types.ExprString(be.Y))
				return true
			})
		}
	}
	return p.findings
}

// isFloatExpr reports whether e has floating-point type (including untyped
// float constants).
func isFloatExpr(info *types.Info, e ast.Expr) bool {
	t := info.TypeOf(e)
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsFloat != 0
}

// isExactZero reports whether e is a compile-time constant equal to zero.
func isExactZero(info *types.Info, e ast.Expr) bool {
	tv := info.Types[e]
	if tv.Value == nil {
		return false
	}
	switch tv.Value.Kind() {
	case constant.Int, constant.Float:
		return constant.Sign(tv.Value) == 0
	}
	return false
}
