package analysis

import (
	"go/ast"
	"go/constant"
	"go/types"
)

// Interprocedural layer, part 2: function summaries.
//
// A FuncSummary condenses what one function does to its parameters and what
// its results are made of, in exactly the vocabulary the dataflow analyzers
// reason in: pooled-payload ownership, workspace-arena checkouts, monitored
// errors, point-to-point comm shape, and symbolic matrix dimensions. The
// analyzers consult summaries at call sites (through Module.calleeSummary)
// instead of conservatively killing facts or over-reporting, which is what
// turns the PR-4 intraprocedural engine into a whole-program one.
//
// Summaries are computed bottom-up over each package's call-graph
// condensation (callgraph.go): by the time a caller is summarized, every
// callee in an earlier SCC already has its summary, and cross-package
// callees resolve against dependency packages summarized earlier still. The
// rare recursive SCC runs a fixed-point loop: the must-facts (Releases,
// Borrows) start optimistic and descend, the may- and value-facts start
// unknown and grow, so every facet moves monotonically through a finite
// lattice and the loop terminates (a hard iteration cap degrades to the
// empty summary, never to a wrong one).
//
// Every facet follows one soundness rule: claim nothing unless the body
// proves it. An unclaimed facet makes the consuming analyzer behave exactly
// as it did intraprocedurally, so summaries can only remove false positives
// and false negatives, never add them.
//
// Summaries are cached per package on the module loader, which LoadFixture
// shares with the host module: fixture runs reuse the host packages'
// summaries, and the driver reports the request/hit counters in
// `-format json`.

// maxSummaryParams bounds the parameter bitsets.
const maxSummaryParams = 32

// FuncSummary is the interprocedural abstract of one declared function.
// Parameter indices count declared parameters only (receivers are never
// summarized); variadic functions are not summarized at all.
type FuncSummary struct {
	Fn         *types.Func
	NumParams  int
	NumResults int

	// Releases: bit i set means the []float64 parameter i reaches
	// comm.Release (directly or through a releasing callee) on every path
	// through the function, and the function does not otherwise alias or
	// hand off the slice. Must-semantics.
	Releases uint32
	// Borrows: bit i set means the []float64 parameter i is only read in
	// place (indexed, measured, ranged, nil-compared, or lent to another
	// borrowing callee) — the function takes no ownership and the caller's
	// Release obligation survives the call. Must-semantics.
	Borrows uint32

	// CheckoutOf[i] is the index of the *mat.Workspace parameter whose
	// arena result i is checked out of on every return path, or -1.
	CheckoutOf []int

	// ErrLabel[i] names the monitored error source (errdiscard's labels,
	// e.g. "comm.World.Run") that result i can carry on some return path;
	// "" when result i never carries one. May-semantics.
	ErrLabel []string

	// Comm lists the function's point-to-point operations expressed
	// relative to its parameters; CommOpaque is set when the body performs
	// (or may perform) point-to-point traffic the sites cannot express, in
	// which case consumers must ignore the function entirely.
	Comm       []sumCommSite
	CommOpaque bool

	// Dims[i] gives the symbolic dimensions of matrix result i as linear
	// terms over the parameters, when every return path agrees.
	Dims []sumDims

	// Spawns lists goroutines the function launches whose termination is
	// tied to exactly one of its parameters: the caller inherits the
	// close/Wait obligation for the argument it passed. May-semantics
	// (goleak's call-site attribution facet).
	Spawns []sumSpawn

	// Locks is the sorted set of module-global lock keys the function may
	// acquire, directly or through summarized callees (lockorder's
	// call-graph condensation facet). May-semantics, capped at
	// maxSummaryLocks.
	Locks []string

	// FuncSinks: bit i set means function-typed parameter i is mentioned
	// somewhere in the body and so may be called or stored. A clear bit
	// proves the parameter is ignored, which keeps a caller's cancel
	// obligation alive (ctxflow). The empty summary claims every bit.
	FuncSinks uint32
}

// sumSpawn is one parameter-tied goroutine launch of a summarized function:
// the goroutine stops when the caller closes (Kind "close") or Waits on
// (Kind "wait") the argument bound to parameter Param.
type sumSpawn struct {
	Param int    `json:"param"`
	Kind  string `json:"kind"`
}

// sumCommSite is one Send/Recv of a summarized function, affine in an int
// parameter: rank = param(RankParam) + Sign*offset, where the offset is the
// constant OffConst (Sign != 0, OffParam < 0), the parameter OffParam
// (Sign != 0, OffParam >= 0), or absent (Sign == 0).
type sumCommSite struct {
	Send      bool
	RankParam int
	Sign      int
	OffConst  string
	OffParam  int
	// TagParam is the parameter forwarded as the tag, or -1 when the tag is
	// the constant with grouping key TagKey (rendered TagStr).
	TagParam int
	TagKey   string
	TagStr   string
}

// sumVarKind distinguishes the symbolic variables of a summary dimension.
type sumVarKind int

const (
	svInt  sumVarKind = iota // the value of an int parameter
	svRows                   // the row count of a *mat.Matrix parameter
	svCols                   // the column count of a *mat.Matrix parameter
)

// sumVar is one symbolic variable of a summary term.
type sumVar struct {
	Kind  sumVarKind
	Param int
}

// sumTerm is a linear integer form over sumVars (see term.go). The zero
// sumTerm is the constant 0; Known distinguishes it from "no value".
type sumTerm = linTerm[sumVar]

func sumConst(k int64) sumTerm { return constTerm[sumVar](k) }

func sumOfVar(v sumVar) sumTerm { return varTerm(v) }

// sumDims is the symbolic shape of one matrix result.
type sumDims struct {
	Rows, Cols sumTerm
}

func (d sumDims) known() bool { return d.Rows.Known && d.Cols.Known }

func (d sumDims) equal(o sumDims) bool {
	return d.Rows.equal(o.Rows) && d.Cols.equal(o.Cols)
}

// SummaryStats are the structural counters of the interprocedural layer:
// how many functions, call edges and SCCs the summarized packages contain
// and how many fixpoint rounds their recursive SCCs took. They are a pure
// function of package content — no run dynamics — which is what lets the
// persistent cache (cache.go) store them per package and the driver report
// module totals under `-format json` that are byte-identical between cold
// and cache-warm runs.
type SummaryStats struct {
	Functions          int `json:"functions"`
	CallEdges          int `json:"call_edges"`
	SCCs               int `json:"sccs"`
	LargestSCC         int `json:"largest_scc"`
	FixpointIterations int `json:"fixpoint_iterations"`
	Packages           int `json:"packages"`
}

// add folds another package's structural counters into the totals.
func (s *SummaryStats) add(o SummaryStats) {
	s.Functions += o.Functions
	s.CallEdges += o.CallEdges
	s.SCCs += o.SCCs
	if o.LargestSCC > s.LargestSCC {
		s.LargestSCC = o.LargestSCC
	}
	s.FixpointIterations += o.FixpointIterations
	s.Packages += o.Packages
}

// SummaryRuntime are the per-process request counters: how summary lookups
// were served during this run. Unlike SummaryStats they depend on what the
// run actually did (which packages were dirty, what was already in memory),
// so the driver reports them under -stats, never in the pinned JSON report.
type SummaryRuntime struct {
	// Requests counts calleeSummary lookups.
	Requests int
	// InProcessHits: served from the loader's in-memory per-package map.
	InProcessHits int
	// PersistentHits: the lookup that pulled a package's summaries out of
	// the on-disk cache (subsequent lookups of the same package are
	// in-process hits).
	PersistentHits int
	// PackagesComputed / PackagesLoaded: packages summarized from source vs
	// deserialized from the persistent cache.
	PackagesComputed int
	PackagesLoaded   int
}

type pkgSummaries map[*types.Func]*FuncSummary

// SummaryStats returns the loader-wide structural totals over every package
// summarized or cache-loaded so far (shared with fixture modules loaded
// through LoadFixture).
func (m *Module) SummaryStats() SummaryStats { return m.loader.sumStats }

// SummaryRuntime returns the loader-wide request counters.
func (m *Module) SummaryRuntime() SummaryRuntime { return m.loader.sumRT }

// calleeSummary resolves the summary of a statically known callee, or nil
// when interprocedural mode is off, the callee is unknown, unsummarizable
// (variadic, bodiless), or outside the loaded packages. Analyzers must
// treat nil as "behave intraprocedurally".
func (m *Module) calleeSummary(f *types.Func) *FuncSummary {
	if m == nil || m.NoInterp || f == nil || f.Pkg() == nil {
		return nil
	}
	pkg := m.packageFor(f.Pkg())
	if pkg == nil {
		return nil
	}
	l := m.loader
	l.sumRT.Requests++
	sums, ok := l.sums[pkg]
	if ok {
		l.sumRT.InProcessHits++
	} else if m.sumLoader != nil {
		if loaded, st, hit := m.sumLoader(pkg); hit {
			sums, ok = loaded, true
			l.sums[pkg] = sums
			l.recordPkgStats(pkg, st)
			l.sumRT.PersistentHits++
			l.sumRT.PackagesLoaded++
		}
	}
	if !ok {
		sums = m.summarizePackage(pkg)
	}
	return sums[f]
}

// packageFor maps a type-checker package back to its loaded Package: the
// module's own packages first (fixture packages live only there), then the
// loader's dependency cache.
func (m *Module) packageFor(tp *types.Package) *Package {
	for _, p := range m.Pkgs {
		if p.Pkg == tp {
			return p
		}
	}
	if p, ok := m.loader.pkgs[tp.Path()]; ok && p.Pkg == tp {
		return p
	}
	return nil
}

// summarizePackage computes and caches the summaries of every function in
// pkg, bottom-up over the call-graph condensation. Cross-package callees
// recurse through calleeSummary; the import DAG bounds that recursion.
func (m *Module) summarizePackage(pkg *Package) pkgSummaries {
	l := m.loader
	g := buildCallGraph(pkg)
	sums := make(pkgSummaries, len(g.Nodes))
	l.sums[pkg] = sums
	l.sumRT.PackagesComputed++
	st := SummaryStats{
		Packages:  1,
		Functions: len(g.Nodes),
		CallEdges: g.Edges,
		SCCs:      len(g.SCCs),
	}
	sccNames := make([][]string, 0, len(g.SCCs))
	for _, scc := range g.SCCs {
		names := make([]string, len(scc))
		for i, n := range scc {
			names[i] = funcID(n.Obj)
		}
		sccNames = append(sccNames, names)
	}
	l.sumPkgSCCs[pkg] = sccNames

	for _, scc := range g.SCCs {
		if len(scc) > st.LargestSCC {
			st.LargestSCC = len(scc)
		}
		if !isRecursive(scc) {
			if s := m.computeSummary(pkg, scc[0], sums); s != nil {
				sums[scc[0].Obj] = s
			}
			continue
		}
		// Recursive SCC: optimistic must-facts, pessimistic value-facts,
		// iterate to the fixed point. The cap is a backstop; the facets are
		// monotone, so real code converges in a couple of rounds.
		for _, n := range scc {
			sums[n.Obj] = optimisticSummary(n.Obj)
		}
		const maxIter = 16
		converged := false
		for iter := 0; iter < maxIter && !converged; iter++ {
			st.FixpointIterations++
			converged = true
			for _, n := range scc {
				next := m.computeSummary(pkg, n, sums)
				if next == nil {
					next = emptySummary(n.Obj)
				}
				if !summariesEqual(sums[n.Obj], next) {
					converged = false
				}
				sums[n.Obj] = next
			}
		}
		if !converged {
			for _, n := range scc {
				sums[n.Obj] = emptySummary(n.Obj)
			}
		}
	}
	l.recordPkgStats(pkg, st)
	return sums
}

// pkgSummaryStats forces pkg's summaries into existence (computing them if
// no lookup has yet) and returns the package's structural counters. RunLint
// uses it to give every analyzed package a deterministic stats contribution
// for its cache entry, whether or not an analyzer happened to request a
// summary from it.
func (m *Module) pkgSummaryStats(pkg *Package) SummaryStats {
	l := m.loader
	if _, ok := l.sums[pkg]; !ok {
		m.summarizePackage(pkg)
	}
	return l.sumPkgStats[pkg]
}

func signatureOf(f *types.Func) *types.Signature {
	sig, _ := f.Type().(*types.Signature)
	return sig
}

// emptySummary claims nothing: consumers fall back to intraprocedural
// behavior at every call site.
func emptySummary(f *types.Func) *FuncSummary {
	sig := signatureOf(f)
	s := &FuncSummary{
		Fn:         f,
		NumParams:  sig.Params().Len(),
		NumResults: sig.Results().Len(),
		CommOpaque: true,
	}
	s.CheckoutOf = make([]int, s.NumResults)
	for i := range s.CheckoutOf {
		s.CheckoutOf[i] = -1
	}
	s.ErrLabel = make([]string, s.NumResults)
	s.Dims = make([]sumDims, s.NumResults)
	s.FuncSinks = ^uint32(0)
	return s
}

// optimisticSummary seeds a recursive SCC member: must-facts at lattice top
// (release/borrow everything), value-facts unknown.
func optimisticSummary(f *types.Func) *FuncSummary {
	s := emptySummary(f)
	s.Releases = ^uint32(0)
	s.Borrows = ^uint32(0)
	s.FuncSinks = 0 // may-fact: grows upward from "no parameter sinks"
	return s
}

func summariesEqual(a, b *FuncSummary) bool {
	if a.Releases != b.Releases || a.Borrows != b.Borrows || a.CommOpaque != b.CommOpaque {
		return false
	}
	if a.FuncSinks != b.FuncSinks {
		return false
	}
	if len(a.Comm) != len(b.Comm) || len(a.Spawns) != len(b.Spawns) || len(a.Locks) != len(b.Locks) {
		return false
	}
	for i := range a.Comm {
		if a.Comm[i] != b.Comm[i] {
			return false
		}
	}
	for i := range a.Spawns {
		if a.Spawns[i] != b.Spawns[i] {
			return false
		}
	}
	for i := range a.Locks {
		if a.Locks[i] != b.Locks[i] {
			return false
		}
	}
	for i := range a.CheckoutOf {
		if a.CheckoutOf[i] != b.CheckoutOf[i] || a.ErrLabel[i] != b.ErrLabel[i] || !a.Dims[i].equal(b.Dims[i]) {
			return false
		}
	}
	return true
}

// summarizer carries the state of one function's summary computation.
type summarizer struct {
	m    *Module
	pkg  *Package
	cur  pkgSummaries // in-progress summaries of the package being computed
	node *FuncNode

	paramObjs []types.Object       // declared parameter objects (nil for _)
	paramIdx  map[types.Object]int // inverse of paramObjs
	// binds maps single-assignment locals to their defining expression and
	// the result index they were bound from (for multi-value calls).
	binds map[types.Object]sumBind
}

type sumBind struct {
	rhs ast.Expr
	res int
}

// lookup resolves a callee summary during computation: members of the
// package under computation come from the in-progress map, everything else
// from the normal path.
func (s *summarizer) lookup(f *types.Func) *FuncSummary {
	if f == nil {
		return nil
	}
	if f.Pkg() == s.pkg.Pkg {
		return s.cur[f]
	}
	return s.m.calleeSummary(f)
}

// computeSummary builds the summary of one function, or nil when the
// function cannot be summarized at all (variadic).
func (m *Module) computeSummary(pkg *Package, n *FuncNode, cur pkgSummaries) *FuncSummary {
	sig := signatureOf(n.Obj)
	if sig == nil || sig.Variadic() || sig.Params().Len() > maxSummaryParams {
		return nil
	}
	s := &summarizer{m: m, pkg: pkg, cur: cur, node: n}
	s.collectParams(n.Decl, sig)
	s.collectBinds(n.Decl.Body)

	sum := emptySummary(n.Obj)
	s.sliceOwnership(sum)
	s.returnFacets(sum)
	s.commFacet(sum)
	s.concurrencyFacets(sum)
	return sum
}

func (s *summarizer) collectParams(decl *ast.FuncDecl, sig *types.Signature) {
	s.paramIdx = make(map[types.Object]int)
	if decl.Type.Params == nil {
		return
	}
	info := s.pkg.Info
	for _, field := range decl.Type.Params.List {
		if len(field.Names) == 0 {
			s.paramObjs = append(s.paramObjs, nil)
			continue
		}
		for _, name := range field.Names {
			obj := info.Defs[name]
			if obj != nil && name.Name != "_" {
				s.paramIdx[obj] = len(s.paramObjs)
				s.paramObjs = append(s.paramObjs, obj)
			} else {
				s.paramObjs = append(s.paramObjs, nil)
			}
		}
	}
}

// collectBinds records locals assigned exactly once from a trackable
// expression, the light SSA the return-facet evaluators walk through. A
// second write, an IncDec, a range binding, or a taken address disqualifies
// the local.
func (s *summarizer) collectBinds(body *ast.BlockStmt) {
	info := s.pkg.Info
	writes := make(map[types.Object]int)
	s.binds = make(map[types.Object]sumBind)
	ast.Inspect(body, func(x ast.Node) bool {
		switch x := x.(type) {
		case *ast.AssignStmt:
			for i, l := range x.Lhs {
				obj := objOf(info, l)
				if obj == nil {
					continue
				}
				writes[obj]++
				if len(x.Rhs) == len(x.Lhs) {
					s.binds[obj] = sumBind{rhs: x.Rhs[i], res: 0}
				} else if len(x.Rhs) == 1 {
					s.binds[obj] = sumBind{rhs: x.Rhs[0], res: i}
				}
			}
		case *ast.IncDecStmt:
			if obj := objOf(info, x.X); obj != nil {
				writes[obj] += 2
			}
		case *ast.UnaryExpr:
			if x.Op.String() == "&" {
				if obj := objOf(info, x.X); obj != nil {
					writes[obj] += 2
				}
			}
		case *ast.RangeStmt:
			for _, e := range []ast.Expr{x.Key, x.Value} {
				if e != nil {
					if obj := objOf(info, e); obj != nil {
						writes[obj] += 2
					}
				}
			}
		}
		return true
	})
	for obj := range s.binds {
		if writes[obj] != 1 {
			delete(s.binds, obj)
		}
	}
	// Parameters are never "bound locals".
	for obj := range s.paramIdx {
		delete(s.binds, obj)
	}
}

// bindOf resolves a single-assignment local to its defining expression.
func (s *summarizer) bindOf(e ast.Expr) (sumBind, bool) {
	obj := objOf(s.pkg.Info, e)
	if obj == nil {
		return sumBind{}, false
	}
	b, ok := s.binds[obj]
	return b, ok
}

func isFloatSlice(t types.Type) bool {
	sl, ok := t.Underlying().(*types.Slice)
	if !ok {
		return false
	}
	b, ok := sl.Elem().Underlying().(*types.Basic)
	return ok && b.Kind() == types.Float64
}

func isIntType(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Kind() == types.Int
}

// namedFrom unwraps one pointer and reports the (package path, type name)
// of a named type.
func namedFrom(t types.Type) (string, string) {
	named, ok := derefNamed(t)
	if !ok || named.Obj().Pkg() == nil {
		return "", ""
	}
	return named.Obj().Pkg().Path(), named.Obj().Name()
}

func isWorkspace(t types.Type) bool {
	p, n := namedFrom(t)
	return p == matPkgPath && n == "Workspace"
}

func isMatrix(t types.Type) bool {
	p, n := namedFrom(t)
	return p == matPkgPath && n == "Matrix"
}

// --- Releases / Borrows -----------------------------------------------------

// sliceOwnership fills the Releases and Borrows bitsets for []float64
// parameters.
func (s *summarizer) sliceOwnership(sum *FuncSummary) {
	info := s.pkg.Info
	candidates := make(map[types.Object]int)
	for i, obj := range s.paramObjs {
		if obj != nil && isFloatSlice(obj.Type()) {
			candidates[obj] = i
		}
	}
	if len(candidates) == 0 {
		return
	}

	// Classify every mention of a candidate. Sanctioned reads keep both
	// claims alive; a release event keeps Releases alive but kills Borrows;
	// anything else (aliasing, returning, storing, passing to a callee with
	// no borrowing/releasing summary) kills both. The walk includes function
	// literals: an escape inside a closure is still an escape, and a release
	// inside one may never run.
	sanctioned := make(map[*ast.Ident]bool) // read-in-place mentions
	released := make(map[*ast.Ident]bool)   // release-event mentions
	lent := make(map[*ast.Ident]bool)       // passed to a borrowing callee
	markIdent := func(e ast.Expr, set map[*ast.Ident]bool) {
		if id, ok := unparen(e).(*ast.Ident); ok {
			set[id] = true
		}
	}
	body := s.node.Decl.Body
	ast.Inspect(body, func(x ast.Node) bool {
		switch x := x.(type) {
		case *ast.IndexExpr:
			markIdent(x.X, sanctioned)
		case *ast.BinaryExpr:
			switch x.Op.String() {
			case "==", "!=":
				if isNilIdent(x.Y) {
					markIdent(x.X, sanctioned)
				}
				if isNilIdent(x.X) {
					markIdent(x.Y, sanctioned)
				}
			}
		case *ast.RangeStmt:
			markIdent(x.X, sanctioned)
		case *ast.CallExpr:
			if id, ok := unparen(x.Fun).(*ast.Ident); ok && (id.Name == "len" || id.Name == "cap") && len(x.Args) == 1 {
				markIdent(x.Args[0], sanctioned)
				return true
			}
			if commMethod(info, x) == "Release" && len(x.Args) == 1 {
				markIdent(x.Args[0], released)
				return true
			}
			f := calleeFunc(info, x)
			if f == nil || funcPkgPath(f) == commPkgPath {
				return true // comm internals manage ownership by contract
			}
			if cs := s.lookup(f); cs != nil {
				for ai, arg := range x.Args {
					if ai >= maxSummaryParams {
						break
					}
					if cs.Releases&(1<<uint(ai)) != 0 {
						markIdent(arg, released)
					} else if cs.Borrows&(1<<uint(ai)) != 0 {
						markIdent(arg, lent)
					}
				}
			}
		}
		return true
	})

	poisoned := make(map[types.Object]bool)
	hasRelease := make(map[types.Object]bool)
	ast.Inspect(body, func(x ast.Node) bool {
		id, ok := x.(*ast.Ident)
		if !ok {
			return true
		}
		obj := info.Uses[id]
		if obj == nil {
			obj = info.Defs[id]
		}
		if obj == nil {
			return true
		}
		if _, isCand := candidates[obj]; !isCand {
			return true
		}
		switch {
		case sanctioned[id] || lent[id]:
		case released[id]:
			hasRelease[obj] = true
		default:
			poisoned[obj] = true
		}
		return true
	})
	// Reassigning the parameter variable poisons it outright.
	ast.Inspect(body, func(x ast.Node) bool {
		if a, ok := x.(*ast.AssignStmt); ok {
			for _, l := range a.Lhs {
				if obj := objOf(info, l); obj != nil {
					if _, isCand := candidates[obj]; isCand {
						poisoned[obj] = true
					}
				}
			}
		}
		return true
	})

	// Borrows: only read in place, never released, never escaped.
	for obj, i := range candidates {
		if !poisoned[obj] && !hasRelease[obj] {
			sum.Borrows |= 1 << uint(i)
		}
	}

	// Releases: a must-analysis over the CFG — the release event must
	// execute on every path reaching Exit (defers run there).
	releaseCands := make(map[types.Object]int)
	for obj, i := range candidates {
		if !poisoned[obj] && hasRelease[obj] {
			releaseCands[obj] = i
		}
	}
	if len(releaseCands) == 0 {
		return
	}
	gen := func(n ast.Node) uint32 {
		var bits uint32
		walkExprs(n, func(x ast.Node) bool {
			call, ok := x.(*ast.CallExpr)
			if !ok {
				return true
			}
			for _, arg := range call.Args {
				id, ok := unparen(arg).(*ast.Ident)
				if !ok || !released[id] {
					continue
				}
				obj := info.Uses[id]
				if i, isCand := releaseCands[obj]; isCand {
					bits |= 1 << uint(i)
				}
			}
			return true
		})
		return bits
	}
	g := BuildCFG(body)
	in := solveFlow(g, flowProblem[uint32]{
		boundary: func() uint32 { return 0 },
		transfer: func(st uint32, b *Block) uint32 {
			for _, n := range b.Nodes {
				st |= gen(n)
			}
			return st
		},
		join:  func(a, b uint32) uint32 { return a & b },
		equal: func(a, b uint32) bool { return a == b },
		clone: func(a uint32) uint32 { return a },
	})
	exitIn, ok := in[g.Exit]
	if !ok {
		return // Exit unreachable: claim nothing
	}
	for _, n := range g.Exit.Nodes {
		exitIn |= gen(n)
	}
	for _, i := range releaseCands {
		if exitIn&(1<<uint(i)) != 0 {
			sum.Releases |= 1 << uint(i)
		}
	}
}

func isNilIdent(e ast.Expr) bool {
	id, ok := unparen(e).(*ast.Ident)
	return ok && id.Name == "nil"
}

// --- Checkout / error / dimension return facets -----------------------------

// returnFacets fills CheckoutOf, ErrLabel and Dims from the function's
// top-level return statements.
func (s *summarizer) returnFacets(sum *FuncSummary) {
	if sum.NumResults == 0 {
		return
	}
	var returns []*ast.ReturnStmt
	clean := true
	inspectShallow(s.node.Decl.Body, func(x ast.Node) bool {
		if r, ok := x.(*ast.ReturnStmt); ok {
			if len(r.Results) == sum.NumResults {
				returns = append(returns, r)
			} else {
				clean = false // naked return or tuple forwarding: bail
			}
		}
		return true
	})
	if len(returns) == 0 {
		return
	}

	for i := 0; i < sum.NumResults; i++ {
		// CheckoutOf: every return path must yield a checkout of the same
		// workspace parameter (anything weaker would let wsescape flag
		// values that are not arena-backed).
		if clean {
			co := s.checkoutOf(returns[0].Results[i], i, 0)
			for _, r := range returns[1:] {
				if co < 0 {
					break
				}
				if s.checkoutOf(r.Results[i], i, 0) != co {
					co = -1
				}
			}
			sum.CheckoutOf[i] = co
		}
		// ErrLabel: any return path carrying a monitored error taints the
		// result (a sometimes-nil monitored error still must be checked).
		for _, r := range returns {
			if label := s.errLabelOf(r.Results[i], i, 0); label != "" {
				sum.ErrLabel[i] = label
				break
			}
		}
		// Dims: all return paths must agree on the symbolic shape.
		if clean {
			d := s.dimsOf(returns[0].Results[i], i, 0)
			for _, r := range returns[1:] {
				if !d.known() {
					break
				}
				if !s.dimsOf(r.Results[i], i, 0).equal(d) {
					d = sumDims{}
				}
			}
			sum.Dims[i] = d
		}
	}
}

const sumEvalDepth = 8

// checkoutOf resolves an expression (at result position res of a return) to
// the workspace parameter it is a checkout of, or -1.
func (s *summarizer) checkoutOf(e ast.Expr, res int, depth int) int {
	if depth > sumEvalDepth {
		return -1
	}
	info := s.pkg.Info
	e = unparen(e)
	if b, ok := s.bindOf(e); ok {
		return s.checkoutOf(b.rhs, b.res, depth+1)
	}
	call, ok := e.(*ast.CallExpr)
	if !ok {
		return -1
	}
	if wsObj, _, _ := wsCheckoutDirect(info, call); wsObj != nil {
		// Direct checkout methods yield the checkout in result 0 (LU's
		// second result is the error).
		if res != 0 {
			return -1
		}
		if i, ok := s.paramIdx[wsObj]; ok && isWorkspace(wsObj.Type()) {
			return i
		}
		return -1
	}
	f := calleeFunc(info, call)
	if f == nil || funcPkgPath(f) == matPkgPath {
		return -1
	}
	cs := s.lookup(f)
	if cs == nil || res >= len(cs.CheckoutOf) {
		return -1
	}
	j := cs.CheckoutOf[res]
	if j < 0 || j >= len(call.Args) {
		return -1
	}
	wsObj := objOf(info, call.Args[j])
	if wsObj == nil {
		return -1
	}
	if i, ok := s.paramIdx[wsObj]; ok {
		return i
	}
	return -1
}

// errLabelOf resolves an expression to the monitored-error label it can
// carry, or "".
func (s *summarizer) errLabelOf(e ast.Expr, res int, depth int) string {
	if depth > sumEvalDepth {
		return ""
	}
	info := s.pkg.Info
	e = unparen(e)
	if b, ok := s.bindOf(e); ok {
		return s.errLabelOf(b.rhs, b.res, depth+1)
	}
	call, ok := e.(*ast.CallExpr)
	if !ok {
		return ""
	}
	if src, ok := errSourceBase(info, call); ok {
		// A return expression is a single value, so only single-result
		// monitored calls (World.Run, TryDecodeMatrixInto) appear here.
		if src.results == 1 && res == 0 {
			return src.label
		}
		return ""
	}
	f := calleeFunc(info, call)
	if f == nil {
		return ""
	}
	if cs := s.lookup(f); cs != nil && res < len(cs.ErrLabel) {
		return cs.ErrLabel[res]
	}
	return ""
}

// dimsOf evaluates the symbolic shape of a matrix-typed expression in terms
// of the function's parameters.
func (s *summarizer) dimsOf(e ast.Expr, res int, depth int) sumDims {
	if depth > sumEvalDepth {
		return sumDims{}
	}
	info := s.pkg.Info
	e = unparen(e)
	if obj := objOf(info, e); obj != nil {
		if i, ok := s.paramIdx[obj]; ok && isMatrix(obj.Type()) {
			return sumDims{Rows: sumOfVar(sumVar{svRows, i}), Cols: sumOfVar(sumVar{svCols, i})}
		}
		if b, ok := s.binds[obj]; ok {
			return s.dimsOf(b.rhs, b.res, depth+1)
		}
		return sumDims{}
	}
	call, ok := e.(*ast.CallExpr)
	if !ok || res != 0 {
		return sumDims{}
	}
	f := calleeFunc(info, call)
	if f == nil {
		return sumDims{}
	}
	if funcPkgPath(f) == matPkgPath {
		recv := recvNamedType(f)
		recvName := ""
		if recv != nil {
			recvName = recv.Obj().Name()
		}
		argInt := func(i int) sumTerm { return s.intTermOf(call.Args[i], depth+1) }
		argMat := func(i int) sumDims { return s.dimsOf(call.Args[i], 0, depth+1) }
		selDims := func() sumDims {
			sel, ok := unparen(call.Fun).(*ast.SelectorExpr)
			if !ok {
				return sumDims{}
			}
			return s.dimsOf(sel.X, 0, depth+1)
		}
		switch {
		case recvName == "" && (f.Name() == "New" || f.Name() == "NewFromSlice"):
			return sumDims{Rows: argInt(0), Cols: argInt(1)}
		case recvName == "" && f.Name() == "Identity":
			n := argInt(0)
			return sumDims{Rows: n, Cols: n}
		case recvName == "Workspace" && (f.Name() == "Get" || f.Name() == "GetNoClear"):
			return sumDims{Rows: argInt(0), Cols: argInt(1)}
		case recvName == "Workspace" && f.Name() == "View":
			return sumDims{Rows: argInt(3), Cols: argInt(4)}
		case recvName == "Workspace" && f.Name() == "CloneOf":
			return argMat(0)
		case recvName == "Matrix" && f.Name() == "View":
			return sumDims{Rows: argInt(2), Cols: argInt(3)}
		case recvName == "Matrix" && f.Name() == "Clone":
			return selDims()
		case recvName == "Matrix" && f.Name() == "Row":
			d := selDims()
			return sumDims{Rows: sumConst(1), Cols: d.Cols}
		case recvName == "Matrix" && f.Name() == "Col":
			d := selDims()
			return sumDims{Rows: d.Rows, Cols: sumConst(1)}
		}
		return sumDims{}
	}
	if cs := s.lookup(f); cs != nil && res < len(cs.Dims) && cs.Dims[res].known() {
		return s.substDims(cs.Dims[res], call, depth+1)
	}
	return sumDims{}
}

// substDims rewrites a callee's symbolic shape into the caller's parameter
// space by evaluating the arguments the callee's variables refer to.
func (s *summarizer) substDims(d sumDims, call *ast.CallExpr, depth int) sumDims {
	return sumDims{
		Rows: s.substTerm(d.Rows, call, depth),
		Cols: s.substTerm(d.Cols, call, depth),
	}
}

func (s *summarizer) substTerm(t sumTerm, call *ast.CallExpr, depth int) sumTerm {
	if !t.Known {
		return sumTerm{}
	}
	out := sumConst(t.K)
	for v, c := range t.Lin {
		if v.Param >= len(call.Args) {
			return sumTerm{}
		}
		var val sumTerm
		switch v.Kind {
		case svInt:
			val = s.intTermOf(call.Args[v.Param], depth)
		case svRows:
			val = s.dimsOf(call.Args[v.Param], 0, depth).Rows
		case svCols:
			val = s.dimsOf(call.Args[v.Param], 0, depth).Cols
		}
		if !val.Known {
			return sumTerm{}
		}
		out = out.add(val.scale(c), 1)
		if !out.Known {
			return sumTerm{}
		}
	}
	return out
}

// intTermOf evaluates an int expression as a linear term over the
// function's parameters.
func (s *summarizer) intTermOf(e ast.Expr, depth int) sumTerm {
	if depth > sumEvalDepth {
		return sumTerm{}
	}
	info := s.pkg.Info
	e = unparen(e)
	if tv, ok := info.Types[e]; ok && tv.Value != nil {
		if k, exact := constInt64(tv); exact {
			return sumConst(k)
		}
		return sumTerm{}
	}
	switch x := e.(type) {
	case *ast.Ident:
		obj := objOf(info, x)
		if obj == nil {
			return sumTerm{}
		}
		if i, ok := s.paramIdx[obj]; ok && isIntType(obj.Type()) {
			return sumOfVar(sumVar{svInt, i})
		}
		if b, ok := s.binds[obj]; ok && b.res == 0 {
			return s.intTermOf(b.rhs, depth+1)
		}
	case *ast.SelectorExpr:
		// p.Rows / p.Cols of a matrix parameter.
		obj := objOf(info, x.X)
		if obj == nil {
			return sumTerm{}
		}
		if i, ok := s.paramIdx[obj]; ok && isMatrix(obj.Type()) {
			switch x.Sel.Name {
			case "Rows":
				return sumOfVar(sumVar{svRows, i})
			case "Cols":
				return sumOfVar(sumVar{svCols, i})
			}
		}
	case *ast.BinaryExpr:
		a := s.intTermOf(x.X, depth+1)
		b := s.intTermOf(x.Y, depth+1)
		if !a.Known || !b.Known {
			return sumTerm{}
		}
		switch x.Op.String() {
		case "+":
			return a.add(b, 1)
		case "-":
			return a.add(b, -1)
		case "*":
			if len(a.Lin) == 0 {
				return b.scale(a.K)
			}
			if len(b.Lin) == 0 {
				return a.scale(b.K)
			}
		}
	}
	return sumTerm{}
}

// --- Comm facet -------------------------------------------------------------

// p2pArgSpec describes where a point-to-point comm method keeps its rank and
// tag arguments.
type p2pArgSpec struct {
	send    bool
	rankIdx int
	tagIdx  int
}

var p2pSpecs = map[string]p2pArgSpec{
	"Send":       {send: true, rankIdx: 0, tagIdx: 1},
	"SendOwned":  {send: true, rankIdx: 0, tagIdx: 1},
	"ISend":      {send: true, rankIdx: 0, tagIdx: 1},
	"SendMatrix": {send: true, rankIdx: 0, tagIdx: 1},
	"Recv":       {send: false, rankIdx: 0, tagIdx: 1},
	"IRecv":      {send: false, rankIdx: 0, tagIdx: 1},
	"RecvMatrix": {send: false, rankIdx: 0, tagIdx: 1},
}

// commFacet fills Comm/CommOpaque: the function's point-to-point traffic
// expressed relative to its int parameters. Any site it cannot express —
// non-affine ranks, computed tags, traffic inside function literals, calls
// into comm-bearing helpers — marks the function opaque, and consumers
// ignore it (the intraprocedural status quo).
func (s *summarizer) commFacet(sum *FuncSummary) {
	info := s.pkg.Info
	var sites []sumCommSite
	opaque := false

	addSite := func(send bool, rankArg, tagArg ast.Expr) {
		site, ok := s.classifyParamRank(rankArg)
		if !ok {
			opaque = true
			return
		}
		site.Send = send
		site.TagParam = -1
		if tv, ok := info.Types[tagArg]; ok && tv.Value != nil {
			site.TagKey = "const:" + tv.Value.ExactString()
			site.TagStr = types.ExprString(tagArg)
		} else if obj := objOf(info, tagArg); obj != nil {
			if i, isParam := s.paramIdx[obj]; isParam {
				site.TagParam = i
			} else {
				opaque = true
				return
			}
		} else {
			opaque = true
			return
		}
		sites = append(sites, site)
	}

	// Walk the full body including function literals: p2p traffic inside a
	// closure runs at an unknowable time and must force opacity, which the
	// shared shallow walks would hide.
	ast.Inspect(s.node.Decl.Body, func(x ast.Node) bool {
		call, ok := x.(*ast.CallExpr)
		if !ok {
			return true
		}
		inLit := inFuncLitOf(s.node.Decl.Body, call)
		method := commMethod(info, call)
		if spec, isP2P := p2pSpecs[method]; isP2P {
			if inLit {
				opaque = true
				return true
			}
			addSite(spec.send, call.Args[spec.rankIdx], call.Args[spec.tagIdx])
			return true
		}
		switch method {
		case "SendRecv":
			if inLit {
				opaque = true
				return true
			}
			if types.ExprString(call.Args[0]) == types.ExprString(call.Args[2]) {
				return true // symmetric, pairs with itself
			}
			addSite(true, call.Args[0], call.Args[3])
			addSite(false, call.Args[2], call.Args[3])
			return true
		case "Exchange", "ExchangeMatrices":
			return true // pairs with itself on both ends
		case "":
			// A callee with its own unexpressed point-to-point traffic
			// makes this function's traffic unexpressible too.
			f := calleeFunc(info, call)
			if f == nil || funcPkgPath(f) == commPkgPath {
				return true
			}
			if cs := s.lookup(f); cs != nil && (cs.CommOpaque && hasCommParam(f) || len(cs.Comm) > 0) {
				opaque = true
			}
		}
		return true
	})
	if opaque {
		sum.Comm = nil
		sum.CommOpaque = true
		return
	}
	sum.Comm = sites
	sum.CommOpaque = false
}

// hasCommParam reports whether a function can reach the comm runtime at all
// (a *comm.Comm parameter or receiver); comm-free callees cannot add hidden
// traffic.
func hasCommParam(f *types.Func) bool {
	sig := signatureOf(f)
	if sig == nil {
		return true
	}
	isComm := func(t types.Type) bool {
		p, n := namedFrom(t)
		return p == commPkgPath && (n == "Comm" || n == "World")
	}
	if sig.Recv() != nil && isComm(sig.Recv().Type()) {
		return true
	}
	for i := 0; i < sig.Params().Len(); i++ {
		if isComm(sig.Params().At(i).Type()) {
			return true
		}
	}
	return false
}

// inFuncLitOf reports whether node sits inside a function literal nested in
// body.
func inFuncLitOf(body *ast.BlockStmt, node ast.Node) bool {
	found := false
	inLit := false
	var walk func(n ast.Node, lit bool)
	walk = func(n ast.Node, lit bool) {
		if found || n == nil {
			return
		}
		ast.Inspect(n, func(x ast.Node) bool {
			if found {
				return false
			}
			if x == node {
				found = true
				inLit = lit
				return false
			}
			if fl, ok := x.(*ast.FuncLit); ok && x != n {
				walk(fl.Body, true)
				return false
			}
			return true
		})
	}
	walk(body, false)
	return found && inLit
}

// classifyParamRank decomposes a rank expression as affine in an int
// parameter: p, p+e or p-e where e is an int constant or another int
// parameter.
func (s *summarizer) classifyParamRank(e ast.Expr) (sumCommSite, bool) {
	info := s.pkg.Info
	e = unparen(e)
	paramOf := func(x ast.Expr) (int, bool) {
		obj := objOf(info, x)
		if obj == nil {
			return 0, false
		}
		i, ok := s.paramIdx[obj]
		return i, ok && isIntType(obj.Type())
	}
	if i, ok := paramOf(e); ok {
		return sumCommSite{RankParam: i, OffParam: -1}, true
	}
	bin, ok := e.(*ast.BinaryExpr)
	if !ok {
		return sumCommSite{}, false
	}
	classify := func(rank ast.Expr, off ast.Expr, sign int) (sumCommSite, bool) {
		i, ok := paramOf(rank)
		if !ok {
			return sumCommSite{}, false
		}
		if tv, ok := info.Types[off]; ok && tv.Value != nil {
			return sumCommSite{RankParam: i, Sign: sign, OffConst: tv.Value.ExactString(), OffParam: -1}, true
		}
		if j, ok := paramOf(off); ok {
			return sumCommSite{RankParam: i, Sign: sign, OffParam: j}, true
		}
		return sumCommSite{}, false
	}
	switch bin.Op.String() {
	case "+":
		if site, ok := classify(bin.X, bin.Y, 1); ok {
			return site, true
		}
		return classify(bin.Y, bin.X, 1)
	case "-":
		return classify(bin.X, bin.Y, -1)
	}
	return sumCommSite{}, false
}

// constInt64 extracts an exact int64 from a constant value.
func constInt64(tv types.TypeAndValue) (int64, bool) {
	if tv.Value == nil {
		return 0, false
	}
	return constant.Int64Val(constant.ToInt(tv.Value))
}
