package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// ctxflow audits how context.Context values move through the module. The
// service stack's cancellation story only works if contexts flow downward:
// a handler that quietly starts from context.Background(), drops the cancel
// func of a WithTimeout, or parks a ctx in a long-lived struct breaks the
// chain that lets callers bound work.
//
// Four rules:
//
//   - background-restart: a function that receives a ctx but passes
//     context.Background()/TODO() to a callee detaches that call from the
//     caller's deadline and cancellation.
//   - cancel-obligation: the cancel function returned by WithCancel /
//     WithTimeout / WithDeadline must be called on every path (discarding
//     it with _ is reported immediately). The check is flow-sensitive over
//     the CFG, and deferred calls count: cfg.go appends deferred calls to
//     the exit block. A cancel captured by a function literal leaves this
//     function's view and is not tracked. Passing the cancel to a callee
//     normally transfers the obligation — except when the callee's summary
//     proves the parameter is never used (FuncSinks), in which case the
//     obligation stays put and a leak is still a leak.
//   - stored-ctx: a ctx assigned into a struct field or composite literal
//     outlives the call that carried it; the context package documents
//     this as an anti-pattern because the stored ctx silently expires.
//   - not-forwarded: a function that accepts a ctx, never mentions it, and
//     then performs a blocking comm operation or World.Run runs detached
//     from the cancellation its signature promises to honor.
var ctxFlowAnalyzer = &Analyzer{
	Name:     "ctxflow",
	Doc:      "contexts must flow to callees, WithCancel/WithTimeout cancels must run on every path, and contexts must not be stored",
	Severity: SeverityWarning,
	Version:  1,
	Run:      runCtxFlow,
}

func runCtxFlow(m *Module) []Finding {
	p := &pass{m: m, name: "ctxflow"}
	rep := newReporter(p)
	for _, pkg := range m.Pkgs {
		for _, file := range pkg.Files {
			eachFuncNode(file, func(ft *ast.FuncType, body *ast.BlockStmt, named bool) {
				ctx := ctxParamObj(pkg.Info, ft)
				if ctx != nil {
					checkBackgroundRestart(rep, pkg.Info, body)
					if named {
						checkCtxForwarded(rep, pkg.Info, ctx, body)
					}
				}
				checkStoredContext(rep, pkg.Info, body)
				checkCancelObligation(rep, m, pkg.Info, body)
			})
		}
	}
	return p.findings
}

// eachFuncNode visits every function declaration and literal of a file with
// its type and body. Rules that must not double-count nested literals use
// inspectShallow within the callback.
func eachFuncNode(file *ast.File, fn func(ft *ast.FuncType, body *ast.BlockStmt, named bool)) {
	ast.Inspect(file, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncDecl:
			if n.Body != nil {
				fn(n.Type, n.Body, true)
			}
		case *ast.FuncLit:
			fn(n.Type, n.Body, false)
		}
		return true
	})
}

// ctxParamObj returns the object of the first named context.Context
// parameter, or nil.
func ctxParamObj(info *types.Info, ft *ast.FuncType) types.Object {
	if ft.Params == nil {
		return nil
	}
	for _, field := range ft.Params.List {
		for _, name := range field.Names {
			obj := info.Defs[name]
			if obj != nil && name.Name != "_" && isContextType(obj.Type()) {
				return obj
			}
		}
	}
	return nil
}

// contextFuncName reports which context-package function a call invokes.
func contextFuncName(info *types.Info, call *ast.CallExpr) string {
	f := calleeFunc(info, call)
	if f == nil || funcPkgPath(f) != "context" {
		return ""
	}
	return f.Name()
}

// checkBackgroundRestart flags fresh-context arguments in a body that has a
// ctx of its own to forward.
func checkBackgroundRestart(rep *reporter, info *types.Info, body *ast.BlockStmt) {
	inspectShallow(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		for _, arg := range call.Args {
			ac, ok := unparen(arg).(*ast.CallExpr)
			if !ok {
				continue
			}
			if name := contextFuncName(info, ac); name == "Background" || name == "TODO" {
				rep.reportf(ac.Pos(), "context.%s() passed to a callee while the caller's ctx is in scope: the call is detached from cancellation (forward ctx)", name)
			}
		}
		return true
	})
}

// checkCtxForwarded flags named functions that accept a ctx, never mention
// it, and still perform blocking comm work.
func checkCtxForwarded(rep *reporter, info *types.Info, ctx types.Object, body *ast.BlockStmt) {
	used := false
	ast.Inspect(body, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok && info.Uses[id] == ctx {
			used = true
		}
		return !used
	})
	if used {
		return
	}
	var first *ast.CallExpr
	var op string
	inspectShallow(body, func(n ast.Node) bool {
		if first != nil {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if name := commOpName(info, call); name != "" {
			first, op = call, "comm."+name
		} else if name := worldRunName(info, call); name == "Run" {
			first, op = call, "World.Run"
		}
		return true
	})
	if first != nil {
		rep.reportf(first.Pos(), "%s accepted but never used: %s blocks without the caller's cancellation (forward %s or drop the parameter)", ctx.Name(), op, ctx.Name())
	}
}

// checkStoredContext flags contexts written into struct fields or composite
// literals.
func checkStoredContext(rep *reporter, info *types.Info, body *ast.BlockStmt) {
	isCtxExpr := func(e ast.Expr) bool {
		tv, ok := info.Types[e]
		return ok && isContextType(tv.Type)
	}
	inspectShallow(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			if len(n.Lhs) != len(n.Rhs) {
				return true
			}
			for i, l := range n.Lhs {
				if _, ok := unparen(l).(*ast.SelectorExpr); ok && isCtxExpr(n.Rhs[i]) {
					rep.reportf(n.Rhs[i].Pos(), "context stored into a struct field outlives this call and silently expires; pass it as a parameter to each operation instead")
				}
			}
		case *ast.CompositeLit:
			for _, elt := range n.Elts {
				v := elt
				if kv, ok := elt.(*ast.KeyValueExpr); ok {
					v = kv.Value
				}
				if isCtxExpr(v) {
					rep.reportf(v.Pos(), "context stored into a struct field outlives this call and silently expires; pass it as a parameter to each operation instead")
				}
			}
		}
		return true
	})
}

// cancelSite is one tracked WithCancel/WithTimeout/WithDeadline binding.
type cancelSite struct {
	pos  token.Pos
	name string // the context.WithX function
}

func isCancelCtor(name string) bool {
	return name == "WithCancel" || name == "WithTimeout" || name == "WithDeadline"
}

// checkCancelObligation runs the poolrelease-style exactly-once dataflow for
// cancel functions.
func checkCancelObligation(rep *reporter, m *Module, info *types.Info, body *ast.BlockStmt) {
	g := BuildCFG(body)
	var sitesList []cancelSite
	sites := make(map[*ast.AssignStmt]int)    // gen node -> site index
	cancelObjs := make(map[types.Object]bool) // tracked cancel variables
	for _, b := range g.Blocks {
		for _, n := range b.Nodes {
			a, ok := n.(*ast.AssignStmt)
			if !ok || len(a.Lhs) != 2 {
				continue
			}
			call, ok := rhsCall(a)
			if !ok {
				continue
			}
			name := contextFuncName(info, call)
			if !isCancelCtor(name) {
				continue
			}
			if id, ok := unparen(a.Lhs[1]).(*ast.Ident); ok && id.Name == "_" {
				rep.reportf(call.Pos(), "cancel function of context.%s discarded: the context (and any timer) leaks until the parent is cancelled (bind it and defer cancel())", name)
				continue
			}
			obj := objOf(info, a.Lhs[1])
			if obj == nil {
				continue // stored straight into a field or element: untracked
			}
			if len(sitesList) >= maxFactSites {
				continue
			}
			sites[a] = len(sitesList)
			sitesList = append(sitesList, cancelSite{pos: call.Pos(), name: name})
			cancelObjs[obj] = true
		}
	}
	if len(sitesList) == 0 {
		return
	}

	// A cancel captured by a function literal can run after this function
	// returns; its obligation leaves the intraprocedural view.
	ast.Inspect(body, func(n ast.Node) bool {
		lit, ok := n.(*ast.FuncLit)
		if !ok {
			return true
		}
		ast.Inspect(lit.Body, func(x ast.Node) bool {
			if id, ok := x.(*ast.Ident); ok {
				if obj := info.Uses[id]; obj != nil && cancelObjs[obj] {
					delete(cancelObjs, obj)
				}
			}
			return true
		})
		return true
	})
	if len(cancelObjs) == 0 {
		return
	}

	reportLeftover := func(bits uint64) {
		for i, s := range sitesList {
			if bits&(1<<uint(i)) == 0 {
				continue
			}
			if bits&relBit != 0 {
				rep.reportf(s.pos, "context.%s's cancel function runs on some paths but not all (defer cancel() immediately after the call)", s.name)
			} else {
				rep.reportf(s.pos, "context.%s's cancel function is never called on any path (defer cancel() immediately after the call)", s.name)
			}
		}
	}

	transfer := func(env factEnv, b *Block, report bool) factEnv {
		for _, n := range b.Nodes {
			skip := assignTargets(n)
			walkExprs(n, func(x ast.Node) bool {
				call, ok := x.(*ast.CallExpr)
				if !ok {
					return true
				}
				if id, ok := unparen(call.Fun).(*ast.Ident); ok {
					if obj := info.Uses[id]; obj != nil && cancelObjs[obj] {
						env[obj] = relBit
						skip[id] = true
						return true
					}
				}
				var sum *FuncSummary
				if f := calleeFunc(info, call); f != nil {
					sum = m.calleeSummary(f)
				}
				if sum == nil {
					return true
				}
				for ai, arg := range call.Args {
					id, ok := unparen(arg).(*ast.Ident)
					if !ok {
						continue
					}
					obj := info.Uses[id]
					if obj == nil || !cancelObjs[obj] {
						continue
					}
					if ai < maxSummaryParams && sum.FuncSinks&(1<<uint(ai)) == 0 {
						// The callee provably ignores the parameter: the
						// cancel obligation stays here.
						skip[id] = true
					}
				}
				return true
			})
			if a, ok := n.(*ast.AssignStmt); ok {
				for _, obj := range lhsObjs(info, a.Lhs) {
					if obj == nil || !cancelObjs[obj] {
						continue
					}
					if bits := env[obj]; bits&acqMask != 0 && report {
						reportLeftover(bits)
					}
					delete(env, obj)
				}
			}
			// Any remaining read (aliasing, returning, passing to an
			// unsummarized callee) transfers the obligation elsewhere.
			eachReadIdent(info, n, skip, func(id *ast.Ident, obj types.Object) {
				if cancelObjs[obj] {
					delete(env, obj)
				}
			})
			if a, ok := n.(*ast.AssignStmt); ok {
				if idx, ok := sites[a]; ok {
					if obj := objOf(info, a.Lhs[1]); obj != nil && cancelObjs[obj] {
						env[obj] = 1 << uint(idx)
					}
				}
			}
		}
		return env
	}

	in := solveFlow(g, factFlow(func(env factEnv, b *Block) factEnv {
		return transfer(env, b, false)
	}))
	for _, b := range g.Blocks {
		env, ok := in[b]
		if !ok {
			continue
		}
		out := transfer(cloneFactEnv(env), b, true)
		if b == g.Exit {
			var all uint64
			for _, bits := range out {
				if bits&acqMask != 0 {
					all |= bits
				}
			}
			reportLeftover(all)
		}
	}
}
