package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"sort"
	"strings"
)

// Performance-contract analyzers: perfescape, perfbce and perfinline.
//
// Each one checks an explicit annotation against the compiler's own
// evidence (compilerfacts.go) instead of re-deriving optimizer behavior
// from syntax:
//
//	//perf:hotpath   (func doc)        no heap escape in this function or
//	                                   its intra-package static callees
//	//perf:coldpath  (func doc)        stop hotpath propagation here
//	//perf:hotloop   (line above for)  no bounds check survives in the loop
//	//perf:inline    (func doc)        the compiler must inline this helper
//
// The contracts these encode are the ones docs/PERFORMANCE.md banks on:
// 0 allocs/op across the solve phase, bounds-check-free packed-GEMM and
// substitution loops, and panel helpers cheap enough to stay under the
// inliner budget. Today those properties are guarded only by alloc counts
// and the >15% bench gate; a regression shows up as a failed benchmark with
// no line to look at. These analyzers turn the same regressions into
// position-anchored findings at lint time.
//
// All three set NeedsBuild: they are skipped by the driver's -watch mode
// unless -watch-full is given, and the perf harness keeps them out of the
// toolchain-free cold baselines.

var perfEscapeAnalyzer = &Analyzer{
	Name:       "perfescape",
	Doc:        "flag heap escapes (compiler-verified) inside //perf:hotpath functions and their intra-package callees",
	Severity:   SeverityError,
	Version:    1,
	NeedsBuild: true,
	Run:        runPerfEscape,
}

var perfBCEAnalyzer = &Analyzer{
	Name:       "perfbce",
	Doc:        "flag bounds checks surviving (per -d=ssa/check_bce) in //perf:hotloop-annotated loops",
	Severity:   SeverityWarning,
	Version:    1,
	NeedsBuild: true,
	Run:        runPerfBCE,
}

var perfInlineAnalyzer = &Analyzer{
	Name:       "perfinline",
	Doc:        "flag //perf:inline helpers the compiler declines to inline, with cost vs budget",
	Severity:   SeverityWarning,
	Version:    1,
	NeedsBuild: true,
	Run:        runPerfInline,
}

// packageFacts fetches the module's compiler facts on behalf of one
// analyzer pass, converting a provider failure into a single finding
// anchored at the annotation that needed the facts — a broken toolchain
// must never silently waive a perf contract. The pass stops after the
// first failure (facts are module-wide; repeating the error per
// annotation is noise).
func packageFacts(p *pass, m *Module, at token.Pos) (*CompilerFacts, bool) {
	cf, err := m.CompilerFacts()
	if err != nil {
		p.factsFailed = true
		p.reportf(at, "compiler facts unavailable: %v", err)
		return nil, false
	}
	return cf, true
}

// reportAt files a finding at a compiler-diagnostic position (which has no
// token.Pos in the analysis FileSet — the fact table indexes raw file
// coordinates).
func (p *pass) reportAt(d FactDiag, format string, args ...any) {
	p.findings = append(p.findings, Finding{
		Pos:      token.Position{Filename: d.File, Line: d.Line, Column: d.Col},
		Analyzer: p.name,
		Message:  fmt.Sprintf(format, args...),
	})
}

func runPerfEscape(m *Module) []Finding {
	p := &pass{m: m, name: "perfescape"}
	for _, pkg := range m.Pkgs {
		hot := hotPathFuncs(pkg)
		if len(hot) == 0 {
			continue
		}
		// Stable iteration order: findings must serialize identically across
		// runs, and map order is not.
		decls := make([]*ast.FuncDecl, 0, len(hot))
		for fd := range hot {
			decls = append(decls, fd)
		}
		sort.Slice(decls, func(i, j int) bool { return decls[i].Pos() < decls[j].Pos() })
		cf, ok := packageFacts(p, m, decls[0].Pos())
		if !ok {
			return p.findings
		}
		for _, fd := range decls {
			file, start, end := m.funcBodySpan(fd.Body)
			for _, d := range cf.EscapesIn(file, start, end) {
				if staticDataEscape(d.Message) {
					continue
				}
				via := ""
				if root := hot[fd]; root != "" {
					via = fmt.Sprintf(" (hot via //perf:hotpath on %s)", root)
				}
				p.reportAt(d, "%s in hot-path function %s%s: keep solve-phase storage in a mat.Workspace or preallocated buffer, or add //lint:ignore perfescape with the reason the allocation is amortized",
					d.Message, fd.Name.Name, via)
			}
		}
	}
	return p.findings
}

// staticDataEscape reports whether an escape diagnostic describes a quoted
// string literal — panic("...") message spills. Those are read-only static
// data the runtime interns, not per-call heap traffic, and every hot kernel
// keeps its bounds panics.
func staticDataEscape(msg string) bool {
	return strings.HasPrefix(msg, `"`) || strings.HasPrefix(msg, "`")
}

func runPerfBCE(m *Module) []Finding {
	p := &pass{m: m, name: "perfbce"}
	for _, pkg := range m.Pkgs {
		for _, file := range pkg.Files {
			annot := annotationLines(m.Fset, file, annotHotLoop)
			if len(annot) == 0 {
				continue
			}
			matched := make(map[int]bool)
			var cf *CompilerFacts
			ast.Inspect(file, func(n ast.Node) bool {
				var body *ast.BlockStmt
				switch st := n.(type) {
				case *ast.ForStmt:
					body = st.Body
				case *ast.RangeStmt:
					body = st.Body
				default:
					return true
				}
				pos := m.Fset.Position(n.Pos())
				if !annot[pos.Line-1] {
					return true
				}
				matched[pos.Line-1] = true
				if cf == nil {
					var ok bool
					if cf, ok = packageFacts(p, m, n.Pos()); !ok {
						return false
					}
				}
				endLine := m.Fset.Position(body.End()).Line
				diags := cf.BoundsIn(pos.Filename, pos.Line, endLine)
				if len(diags) == 0 {
					return true
				}
				// One aggregated finding per loop, anchored at the
				// //perf:hotloop annotation itself, so a single
				// //lint:ignore perfbce on the line above the annotation
				// covers the whole loop (suppression matches the finding
				// line and the line above it).
				var lines []string
				for _, d := range diags {
					lines = append(lines, fmt.Sprintf("%d:%d", d.Line, d.Col))
				}
				p.reportAt(FactDiag{File: pos.Filename, Line: pos.Line - 1, Col: 1},
					"%d bounds check(s) survive in //perf:hotloop (at %s): hoist a len check or reslice so the compiler can prove the accesses in range, or add //lint:ignore perfbce with the reason",
					len(diags), strings.Join(lines, ", "))
				return true
			})
			if p.factsFailed {
				return p.findings
			}
			// An annotation with no loop under it guards nothing; flag it so
			// refactors cannot quietly strand the contract.
			var stray []int
			for line := range annot {
				if !matched[line] {
					stray = append(stray, line)
				}
			}
			sort.Ints(stray)
			for _, line := range stray {
				p.reportAt(FactDiag{File: m.Fset.Position(file.Pos()).Filename, Line: line, Col: 1},
					"//perf:hotloop is not directly above a for statement: move it onto the line before the loop or delete it")
			}
		}
	}
	return p.findings
}

func runPerfInline(m *Module) []Finding {
	p := &pass{m: m, name: "perfinline"}
	for _, pkg := range m.Pkgs {
		for _, file := range pkg.Files {
			for _, decl := range file.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || !hasAnnotation(fd.Doc, annotInline) {
					continue
				}
				cf, ok := packageFacts(p, m, fd.Pos())
				if !ok {
					return p.findings
				}
				pos := m.Fset.Position(fd.Name.Pos())
				fact, found := cf.InlineAt(pos.Filename, pos.Line)
				switch {
				case !found:
					p.reportf(fd.Pos(), "//perf:inline on %s but the compiler recorded no inlining verdict for it: the function may be dead code or excluded from the build",
						fd.Name.Name)
				case !fact.CanInline && fact.Budget > 0:
					p.reportf(fd.Pos(), "//perf:inline on %s but the compiler declines: cost %d exceeds budget %d — trim the body below the inliner budget or drop the annotation",
						fd.Name.Name, fact.Cost, fact.Budget)
				case !fact.CanInline:
					p.reportf(fd.Pos(), "//perf:inline on %s but the compiler declines: %s",
						fd.Name.Name, fact.Reason)
				}
			}
		}
	}
	return p.findings
}

// annotationLines returns the set of line numbers in file whose comment
// starts with the given //perf: directive — exactly, or followed by a space
// and free-form trailing text (a rationale, or a fixture want comment).
func annotationLines(fset *token.FileSet, file *ast.File, annot string) map[int]bool {
	var out map[int]bool
	for _, cg := range file.Comments {
		for _, c := range cg.List {
			text := strings.TrimSpace(c.Text)
			if text != annot && !strings.HasPrefix(text, annot+" ") {
				continue
			}
			if out == nil {
				out = make(map[int]bool)
			}
			out[fset.Position(c.Pos()).Line] = true
		}
	}
	return out
}
