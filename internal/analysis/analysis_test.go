package analysis

import (
	"fmt"
	"go/token"
	"path/filepath"
	"regexp"
	"runtime"
	"sort"
	"strings"
	"sync"
	"testing"
)

// The host module is loaded once per test binary: fixture packages import
// the real mat and comm packages, and the stdlib source importer's cache is
// shared through the module's loader.
var (
	hostOnce sync.Once
	hostMod  *Module
	hostErr  error
)

func hostModule(t *testing.T) *Module {
	t.Helper()
	hostOnce.Do(func() {
		root, err := FindModuleRoot(".")
		if err != nil {
			hostErr = err
			return
		}
		hostMod, hostErr = LoadModule(root)
	})
	if hostErr != nil {
		t.Fatalf("loading host module: %v", hostErr)
	}
	return hostMod
}

// want expectation comments in fixtures look like
//
//	mat.Mul(a, a, b) // want `destination a may alias`
//
// with one backtick-quoted regexp per expected finding on that line.
var wantRe = regexp.MustCompile("`([^`]*)`")

type expectation struct {
	re    *regexp.Regexp
	met   bool
	lit   string
	place string // file:line
}

// collectWants extracts the expectation comments of a fixture module: from
// every Go comment and from the fixture's assembly files (asmcheck findings
// anchor in .s sources). The marker may trail other comment text so an
// annotation line like "//perf:hotloop // want `...`" can carry its own
// expectation — perfbce anchors its findings on the annotation itself.
func collectWants(t *testing.T, m *Module) map[string][]*expectation {
	t.Helper()
	wants := make(map[string][]*expectation)
	add := func(place, text string) {
		idx := strings.Index(text, "// want ")
		if idx < 0 {
			return
		}
		rest := text[idx+len("// want "):]
		lits := wantRe.FindAllStringSubmatch(rest, -1)
		if len(lits) == 0 {
			t.Fatalf("%s: malformed want comment (no backtick-quoted regexp): %s", place, text)
		}
		for _, lit := range lits {
			re, err := regexp.Compile(lit[1])
			if err != nil {
				t.Fatalf("%s: bad want regexp %q: %v", place, lit[1], err)
			}
			wants[place] = append(wants[place], &expectation{re: re, lit: lit[1], place: place})
		}
	}
	for _, pkg := range m.Pkgs {
		for _, file := range pkg.Files {
			for _, cg := range file.Comments {
				for _, c := range cg.List {
					pos := m.Fset.Position(c.Pos())
					add(fmt.Sprintf("%s:%d", filepath.Base(pos.Filename), pos.Line), c.Text)
				}
			}
		}
		for _, sf := range m.asmFilesFor(pkg) {
			for i, line := range strings.Split(string(sf.Src), "\n") {
				add(fmt.Sprintf("%s:%d", filepath.Base(sf.Name), i+1), line)
			}
		}
	}
	return wants
}

func placeOf(pos token.Position) string {
	return fmt.Sprintf("%s:%d", filepath.Base(pos.Filename), pos.Line)
}

// amd64OnlyFixtures names the analyzers whose fixtures encode amd64-specific
// expectations: the asmcheck rules are amd64's, and the perf-contract wants
// pin the diagnostics of an amd64 compilation.
var amd64OnlyFixtures = map[string]bool{
	"asmcheck":   true,
	"perfescape": true,
	"perfbce":    true,
	"perfinline": true,
}

// TestAnalyzersOnFixtures runs every analyzer over its fixture package under
// testdata/src/<name> and requires an exact bijection between the surviving
// findings and the fixture's want comments: every want matched, no finding
// unaccounted for.
func TestAnalyzersOnFixtures(t *testing.T) {
	host := hostModule(t)
	for _, a := range Analyzers() {
		a := a
		t.Run(a.Name, func(t *testing.T) {
			// The performance-contract fixtures assert against amd64
			// compiler evidence (and asmcheck is amd64-only by design);
			// their wants are meaningless on other hosts.
			if amd64OnlyFixtures[a.Name] && runtime.GOARCH != "amd64" {
				t.Skipf("%s fixture pins amd64 compiler behavior; GOARCH=%s", a.Name, runtime.GOARCH)
			}
			dir := filepath.Join("testdata", "src", a.Name)
			fix, err := host.LoadFixture(dir, "fix/"+a.Name)
			if err != nil {
				t.Fatalf("loading fixture: %v", err)
			}
			wants := collectWants(t, fix)
			if len(wants) == 0 {
				t.Fatalf("fixture %s has no want comments; a fixture that expects nothing tests nothing", dir)
			}

			all := a.Run(fix)
			findings := FilterSuppressed(all, CollectSuppressions(fix))
			SortFindings(findings)

			for _, f := range findings {
				if f.Analyzer != a.Name {
					t.Errorf("finding attributed to %q, want %q: %s", f.Analyzer, a.Name, f)
				}
				place := placeOf(f.Pos)
				matched := false
				for _, w := range wants[place] {
					if !w.met && w.re.MatchString(f.Message) {
						w.met = true
						matched = true
						break
					}
				}
				if !matched {
					t.Errorf("unexpected finding at %s: %s", place, f.Message)
				}
			}
			var places []string
			for place := range wants {
				places = append(places, place)
			}
			sort.Strings(places)
			for _, place := range places {
				for _, w := range wants[place] {
					if !w.met {
						t.Errorf("expected finding at %s matching %q, got none", place, w.lit)
					}
				}
			}
		})
	}
}

// TestPerfEscapeCoversHotallocBlindSpot pins the division of labor the
// perfescape fixture documents: the interface-conversion allocation in
// Step (and the address-taken escape in stage) are invisible to hotalloc's
// syntactic patterns but reported by the compiler-evidence analyzer.
func TestPerfEscapeCoversHotallocBlindSpot(t *testing.T) {
	if runtime.GOARCH != "amd64" {
		t.Skipf("fixture pins amd64 compiler behavior; GOARCH=%s", runtime.GOARCH)
	}
	host := hostModule(t)
	fix, err := host.LoadFixture(filepath.Join("testdata", "src", "perfescape"), "fix/perfescape-hotalloc")
	if err != nil {
		t.Fatalf("loading fixture: %v", err)
	}
	if got := hotAllocAnalyzer.Run(fix); len(got) != 0 {
		t.Errorf("hotalloc reported %d finding(s) on the perfescape fixture, want 0 (the fixture exists because these escapes are its blind spot): %v", len(got), got)
	}
	findings := FilterSuppressed(perfEscapeAnalyzer.Run(fix), CollectSuppressions(fix))
	var gotBox bool
	for _, f := range findings {
		if strings.Contains(f.Message, "x escapes to heap in hot-path function Step") {
			gotBox = true
		}
	}
	if !gotBox {
		t.Errorf("perfescape missed the interface-conversion escape in Step; findings: %v", findings)
	}
}

// TestRepoLintsClean asserts the acceptance criterion that blocktri-lint
// exits zero on the module itself: every analyzer runs over the real
// packages and no finding survives the repo's lint:ignore directives.
func TestRepoLintsClean(t *testing.T) {
	m := hostModule(t)
	sup := CollectSuppressions(m)
	for _, a := range Analyzers() {
		findings := FilterSuppressed(a.Run(m), sup)
		for _, f := range findings {
			t.Errorf("%s", f)
		}
	}
}

func TestParseIgnore(t *testing.T) {
	cases := []struct {
		text  string
		names []string
		ok    bool
	}{
		{"//lint:ignore floateq the reason", []string{"floateq"}, true},
		{"//lint:ignore matalias,commtag shared buffer", []string{"matalias", "commtag"}, true},
		{"//lint:ignore\tfloateq tab separator", []string{"floateq"}, true},
		{"//lint:ignore", nil, false},              // no analyzer named
		{"//lint:ignoreXfloateq oops", nil, false}, // no separator
		{"// lint:ignore floateq spaced prefix", nil, false},
		{"// ordinary comment", nil, false},
	}
	for _, c := range cases {
		names, ok := parseIgnore(c.text)
		if ok != c.ok {
			t.Errorf("parseIgnore(%q) ok = %v, want %v", c.text, ok, c.ok)
			continue
		}
		if fmt.Sprint(names) != fmt.Sprint(c.names) {
			t.Errorf("parseIgnore(%q) = %v, want %v", c.text, names, c.names)
		}
	}
}

func TestSuppressedLines(t *testing.T) {
	d := &directive{pos: token.Position{Filename: "a.go", Line: 10}, name: "floateq"}
	s := &Suppressions{
		byFile: map[string]map[int]map[string]*directive{"a.go": {10: {"floateq": d}}},
		all:    []*directive{d},
	}
	pos := func(line int) token.Position { return token.Position{Filename: "a.go", Line: line} }
	if !s.Suppressed("floateq", pos(10)) {
		t.Error("same-line directive should suppress")
	}
	if !s.Suppressed("floateq", pos(11)) {
		t.Error("directive on the line above should suppress")
	}
	if s.Suppressed("floateq", pos(12)) {
		t.Error("directive two lines above must not suppress")
	}
	if s.Suppressed("matalias", pos(10)) {
		t.Error("directive must only silence the named analyzer")
	}
	if s.Suppressed("floateq", token.Position{Filename: "b.go", Line: 10}) {
		t.Error("directive must only apply to its own file")
	}
	if !d.used {
		t.Error("matching a finding must mark the directive used")
	}
}

// TestUnusedDirectives covers the three audit outcomes: a directive that
// matched a finding stays silent, a never-matched directive is stale, and a
// directive naming a non-analyzer is a typo.
func TestUnusedDirectives(t *testing.T) {
	mk := func(line int, name string) *directive {
		return &directive{pos: token.Position{Filename: "a.go", Line: line}, name: name}
	}
	used, stale, typo := mk(5, "floateq"), mk(9, "matalias"), mk(3, "floateqq")
	s := &Suppressions{
		byFile: map[string]map[int]map[string]*directive{"a.go": {
			3: {"floateqq": typo},
			5: {"floateq": used},
			9: {"matalias": stale},
		}},
		all: []*directive{used, stale, typo},
	}
	if !s.Suppressed("floateq", token.Position{Filename: "a.go", Line: 6}) {
		t.Fatal("directive on the line above should suppress")
	}
	known := map[string]bool{"floateq": true, "matalias": true}
	got := s.Unused(known)
	if len(got) != 2 {
		t.Fatalf("Unused returned %d findings, want 2: %v", len(got), got)
	}
	// Sorted by file then line: the typo at line 3 precedes the stale
	// directive at line 9.
	if got[0].Pos.Line != 3 || !strings.Contains(got[0].Message, `unknown analyzer "floateqq"`) {
		t.Errorf("first audit finding = %v, want unknown-analyzer at line 3", got[0])
	}
	if got[1].Pos.Line != 9 || !strings.Contains(got[1].Message, `matches no finding`) {
		t.Errorf("second audit finding = %v, want stale directive at line 9", got[1])
	}
	for _, f := range got {
		if f.Analyzer != SuppressName {
			t.Errorf("audit finding attributed to %q, want %q", f.Analyzer, SuppressName)
		}
	}
}

// TestSuppressFixture runs the directive audit end to end over the suppress
// fixture: a used directive stays silent, a stale one and a misspelled one
// are reported, and the misspelled one fails to silence its finding.
func TestSuppressFixture(t *testing.T) {
	host := hostModule(t)
	fix, err := host.LoadFixture(filepath.Join("testdata", "src", "suppress"), "fix/suppress")
	if err != nil {
		t.Fatalf("loading fixture: %v", err)
	}
	sup := CollectSuppressions(fix)
	known := make(map[string]bool)
	var surviving []Finding
	for _, a := range Analyzers() {
		known[a.Name] = true
		surviving = append(surviving, FilterSuppressed(a.Run(fix), sup)...)
	}
	// The typo directive silences nothing: the != comparison below it is
	// still reported.
	if len(surviving) != 1 || surviving[0].Analyzer != "floateq" {
		t.Fatalf("surviving findings = %v, want exactly the unsuppressed floateq finding", surviving)
	}
	audit := sup.Unused(known)
	if len(audit) != 3 {
		t.Fatalf("audit findings = %v, want the two stale directives and the misspelled one", audit)
	}
	if !strings.Contains(audit[0].Message, `"floateq" matches no finding`) {
		t.Errorf("first audit finding = %v, want the stale floateq directive", audit[0])
	}
	if !strings.Contains(audit[1].Message, `unknown analyzer "floateqq"`) {
		t.Errorf("second audit finding = %v, want the floateqq typo", audit[1])
	}
	// The goleak directive above it is used (it silences a real finding);
	// the lockorder directive guards nothing and is stale.
	if !strings.Contains(audit[2].Message, `"lockorder" matches no finding`) {
		t.Errorf("third audit finding = %v, want the stale lockorder directive", audit[2])
	}
}

// TestFixtureSuppression pins the end-to-end suppression path: the floateq
// fixture contains one deliberately suppressed finding, so the raw run must
// report exactly one more finding than the filtered run.
func TestFixtureSuppression(t *testing.T) {
	host := hostModule(t)
	fix, err := host.LoadFixture(filepath.Join("testdata", "src", "floateq"), "fix/floateq-sup")
	if err != nil {
		t.Fatalf("loading fixture: %v", err)
	}
	all := floatEqAnalyzer.Run(fix)
	kept := FilterSuppressed(all, CollectSuppressions(fix))
	if len(all) != len(kept)+1 {
		t.Errorf("raw findings %d, after suppression %d; want exactly one suppressed", len(all), len(kept))
	}
}
