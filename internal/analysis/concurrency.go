package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Shared infrastructure of the concurrency-safety analyzers (goleak,
// lockorder, ctxflow): classification of spawned goroutine bodies, canonical
// module-wide lock keys, context/WaitGroup type tests, and the summarizer
// facets (Spawns, Locks, FuncSinks) that make the three analyzers
// interprocedural.

// goClass is the termination classification of one spawned goroutine body.
type goClass int

const (
	// goUntied: the body loops or blocks with no termination signal the
	// analyzer can see — the leak report.
	goUntied goClass = iota
	// goCtxTied: the body observes a context's Done channel; the context's
	// owner bounds its lifetime.
	goCtxTied
	// goBounded: a straight-line body with no loops or selects; it runs to
	// completion on its own.
	goBounded
	// goManaged: the body blocks on state the spawning scope cannot signal
	// (fields, globals, call results) — assumed managed elsewhere.
	goManaged
	// goObliged: the body's termination is tied to objects of the spawning
	// scope; the spawner owes the signal on every path (the ties).
	goObliged
)

// goTie is one termination tie of a spawned goroutine, resolved into the
// spawning scope: close (or send on) a channel, or Wait on a WaitGroup the
// goroutine calls Done on.
type goTie struct {
	obj  types.Object
	kind string // "close" or "wait"
}

// classifyGoBody determines how the body of a spawned goroutine terminates.
// resolve maps an object the body blocks on (a captured local, or a
// parameter of the spawned function) to the object the spawning scope must
// signal; a false return means the object is out of the spawner's reach.
func classifyGoBody(info *types.Info, body *ast.BlockStmt, resolve func(types.Object) (types.Object, bool)) (goClass, []goTie) {
	ctxTied := false
	blocking := false // loops and selects: the body does not just run off its end
	anyTie := false   // some termination tie exists, trackable or not
	var ties []goTie
	seen := make(map[types.Object]bool)
	addTie := func(e ast.Expr, kind string) {
		anyTie = true
		obj := objOf(info, e)
		if obj == nil {
			return
		}
		r, ok := resolve(obj)
		if !ok || r == nil || seen[r] {
			return
		}
		seen[r] = true
		ties = append(ties, goTie{obj: r, kind: kind})
	}
	ast.Inspect(body, func(x ast.Node) bool {
		switch x := x.(type) {
		case *ast.ForStmt, *ast.SelectStmt:
			blocking = true
		case *ast.RangeStmt:
			blocking = true
			if tv, ok := info.Types[x.X]; ok && isChanType(tv.Type) {
				addTie(x.X, "close")
			}
		case *ast.UnaryExpr:
			if x.Op == token.ARROW {
				addTie(x.X, "close")
			}
		case *ast.CallExpr:
			sel, ok := unparen(x.Fun).(*ast.SelectorExpr)
			if !ok || sel.Sel.Name != "Done" {
				return true
			}
			if tv, ok := info.Types[sel.X]; ok {
				switch {
				case isContextType(tv.Type):
					ctxTied = true
				case isWaitGroup(tv.Type):
					addTie(sel.X, "wait")
				}
			}
		}
		return true
	})
	switch {
	case ctxTied:
		return goCtxTied, nil
	case len(ties) > 0:
		return goObliged, ties
	case anyTie:
		return goManaged, nil
	case !blocking:
		return goBounded, nil
	default:
		return goUntied, nil
	}
}

// globalLockKey canonicalizes the receiver of a sync Lock/Unlock call to a
// module-wide key — "pkgpath.Type.field" for a mutex field reached through
// any access path, "pkgpath.var" for a package-level mutex — or reports that
// the mutex is function-local and cannot participate in a cross-function
// ordering.
func globalLockKey(info *types.Info, recv ast.Expr) (string, bool) {
	switch x := unparen(recv).(type) {
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[x]; ok && sel.Obj() != nil {
			if v, ok := sel.Obj().(*types.Var); ok && v.IsField() {
				if named, ok := derefNamed(sel.Recv()); ok && named.Obj().Pkg() != nil {
					return named.Obj().Pkg().Path() + "." + named.Obj().Name() + "." + x.Sel.Name, true
				}
			}
		}
		// pkg.Mu: a package-qualified package-level variable.
		if v, ok := info.Uses[x.Sel].(*types.Var); ok && !v.IsField() && v.Pkg() != nil && v.Parent() == v.Pkg().Scope() {
			return v.Pkg().Path() + "." + v.Name(), true
		}
	case *ast.Ident:
		if v, ok := objOf(info, x).(*types.Var); ok && v.Pkg() != nil && v.Parent() == v.Pkg().Scope() {
			return v.Pkg().Path() + "." + v.Name(), true
		}
	}
	return "", false
}

// shortLockKey strips the import-path directory from a global lock key for
// display: "blocktri/internal/serve.Server.mu" -> "serve.Server.mu".
func shortLockKey(key string) string {
	if i := strings.LastIndex(key, "/"); i >= 0 {
		return key[i+1:]
	}
	return key
}

func isNamedOf(t types.Type, pkgPath, name string) bool {
	p, n := namedFrom(t)
	return p == pkgPath && n == name
}

func isContextType(t types.Type) bool { return isNamedOf(t, "context", "Context") }

func isWaitGroup(t types.Type) bool { return isNamedOf(t, "sync", "WaitGroup") }

func isCondType(t types.Type) bool { return isNamedOf(t, "sync", "Cond") }

func isChanType(t types.Type) bool {
	_, ok := t.Underlying().(*types.Chan)
	return ok
}

// builtinName returns the name of the builtin a call invokes ("close",
// "len", ...), or "".
func builtinName(info *types.Info, call *ast.CallExpr) string {
	id, ok := unparen(call.Fun).(*ast.Ident)
	if !ok {
		return ""
	}
	if b, ok := info.Uses[id].(*types.Builtin); ok {
		return b.Name()
	}
	return ""
}

// syncMethodOn classifies a call as method name on a sync type (WaitGroup
// Wait/Done/Add, Cond Wait, ...), returning the receiver expression.
func syncMethodOn(info *types.Info, call *ast.CallExpr) (recv ast.Expr, name string) {
	f := calleeFunc(info, call)
	if f == nil || funcPkgPath(f) != "sync" {
		return nil, ""
	}
	sel, ok := unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return nil, ""
	}
	return sel.X, f.Name()
}

// worldRunName reports whether a call is comm.World.Run or RunContext.
func worldRunName(info *types.Info, call *ast.CallExpr) string {
	f := calleeFunc(info, call)
	if f == nil || funcPkgPath(f) != commPkgPath {
		return ""
	}
	if named := recvNamedType(f); named == nil || named.Obj().Name() != "World" {
		return ""
	}
	if f.Name() == "Run" || f.Name() == "RunContext" {
		return f.Name()
	}
	return ""
}

// declaredIn reports whether obj's declaration lies inside node's source
// range — the test for "a local the enclosing body can signal".
func declaredIn(node ast.Node, obj types.Object) bool {
	return obj != nil && obj.Pos() >= node.Pos() && obj.Pos() < node.End()
}

// funcDeclParams flattens a declaration's parameter objects in order (nil
// entries for unnamed and blank parameters).
func funcDeclParams(info *types.Info, decl *ast.FuncDecl) []types.Object {
	var out []types.Object
	if decl.Type.Params == nil {
		return out
	}
	for _, field := range decl.Type.Params.List {
		if len(field.Names) == 0 {
			out = append(out, nil)
			continue
		}
		for _, name := range field.Names {
			obj := info.Defs[name]
			if obj != nil && name.Name != "_" {
				out = append(out, obj)
			} else {
				out = append(out, nil)
			}
		}
	}
	return out
}

// pkgFuncDecls indexes a package's function declarations by their type
// objects, so goleak can classify the body behind `go f(args)` directly.
func pkgFuncDecls(pkg *Package) map[*types.Func]*ast.FuncDecl {
	out := make(map[*types.Func]*ast.FuncDecl)
	for _, file := range pkg.Files {
		for _, d := range file.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if f, ok := pkg.Info.Defs[fd.Name].(*types.Func); ok {
				out[f] = fd
			}
		}
	}
	return out
}

// --- summary facets ----------------------------------------------------------

// maxSummaryLocks caps the transitive lock set a summary carries; excess
// keys are dropped (a may-fact, so dropping only loses reports).
const maxSummaryLocks = 16

// concurrencyFacets fills the Spawns, Locks and FuncSinks facets.
func (s *summarizer) concurrencyFacets(sum *FuncSummary) {
	info := s.pkg.Info
	body := s.node.Decl.Body

	// FuncSinks: a function-typed parameter the body mentions anywhere may
	// be called or stored; only a parameter the body never names is proven
	// ignored (the claim that keeps a caller's cancel obligation alive).
	var sinks uint32
	for i, obj := range s.paramObjs {
		if obj == nil || i >= maxSummaryParams {
			continue
		}
		if _, isFunc := obj.Type().Underlying().(*types.Signature); !isFunc {
			continue
		}
		used := false
		ast.Inspect(body, func(x ast.Node) bool {
			if id, ok := x.(*ast.Ident); ok && info.Uses[id] == obj {
				used = true
			}
			return !used
		})
		if used {
			sinks |= 1 << uint(i)
		}
	}
	sum.FuncSinks = sinks

	// Spawns: goroutine literals whose termination is tied to exactly one of
	// our own parameters. The caller inherits the close/Wait obligation for
	// the argument it passed (goleak's call-site consult).
	inspectShallow(body, func(x ast.Node) bool {
		gs, ok := x.(*ast.GoStmt)
		if !ok {
			return true
		}
		lit, ok := gs.Call.Fun.(*ast.FuncLit)
		if !ok {
			return true
		}
		cl, ties := classifyGoBody(info, lit.Body, func(obj types.Object) (types.Object, bool) {
			if _, isParam := s.paramIdx[obj]; isParam {
				return obj, true
			}
			return nil, false
		})
		if cl != goObliged || len(ties) != 1 {
			return true
		}
		if i := s.paramIdx[ties[0].obj]; i < maxSummaryParams {
			sum.Spawns = append(sum.Spawns, sumSpawn{Param: i, Kind: ties[0].kind})
		}
		return true
	})
	sort.Slice(sum.Spawns, func(i, j int) bool {
		a, b := sum.Spawns[i], sum.Spawns[j]
		if a.Param != b.Param {
			return a.Param < b.Param
		}
		return a.Kind < b.Kind
	})

	// Locks: the global lock keys this function may acquire, directly or
	// through summarized callees — the edges lockorder condenses through the
	// call graph.
	keys := make(map[string]bool)
	inspectShallow(body, func(x ast.Node) bool {
		call, ok := x.(*ast.CallExpr)
		if !ok {
			return true
		}
		if _, kind := syncLockKind(info, call); kind > 0 {
			if sel, ok := unparen(call.Fun).(*ast.SelectorExpr); ok {
				if k, isGlobal := globalLockKey(info, sel.X); isGlobal {
					keys[k] = true
				}
			}
			return true
		}
		if f := calleeFunc(info, call); f != nil && funcPkgPath(f) != "sync" {
			if cs := s.lookup(f); cs != nil {
				for _, k := range cs.Locks {
					keys[k] = true
				}
			}
		}
		return true
	})
	if len(keys) > 0 {
		locks := make([]string, 0, len(keys))
		for k := range keys {
			locks = append(locks, k)
		}
		sort.Strings(locks)
		if len(locks) > maxSummaryLocks {
			locks = locks[:maxSummaryLocks]
		}
		sum.Locks = locks
	}
}
