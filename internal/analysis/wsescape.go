package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// wsescape enforces the mat.Workspace arena contract from PR 2: a checkout
// (Get, GetNoClear, CloneOf, View, Floats, Ints, LU) is only valid until the
// next Reset of the workspace it came from, and must not outlive the
// function that holds the arena. Two failure modes are flagged:
//
//   - use-after-reset: a path reaches a read of a checkout after the
//     workspace's Reset ran; the arena storage has been recycled and the
//     value silently aliases whatever was checked out next.
//   - escape: a checkout is returned, or stored through a pointer or into a
//     package-level variable, from a function that owns the workspace
//     locally. The checkout dies at the owner's next Reset while the
//     escaped reference lives on. Functions that receive the workspace as a
//     parameter or via their receiver may return checkouts freely — the
//     caller owns the arena's lifetime (wsBlockOf and the transfer-matrix
//     helpers are the idiom).
//
// Tracking is intentionally exact-name-based: only values bound directly
// from a checkout call on a plain workspace variable are followed, plus
// whole-value aliases of those. Derived values (lu.Inverse(), composite
// literals, subviews stored in slices) allocate or stay function-local and
// are not tracked. The mat package itself is excluded — the arena
// internals hand out their own storage by design.
var wsEscapeAnalyzer = &Analyzer{
	Name:     "wsescape",
	Doc:      "workspace checkouts must not be read after Reset or escape the arena-owning function",
	Severity: SeverityError,
	Version:  1,
	Run:      runWSEscape,
}

// wsFreshSites caps tracked checkout sites per function: bit i is a live
// checkout from site i, bit i+wsFreshSites the same checkout gone stale.
const wsFreshSites = 28

const wsStaleMask = ((uint64(1) << wsFreshSites) - 1) << wsFreshSites

// wsSite is one tracked checkout.
type wsSite struct {
	pos     token.Pos
	wsObj   types.Object // the workspace variable the checkout came from
	wsParam bool         // workspace is a parameter/receiver of this function
	method  string
}

func runWSEscape(m *Module) []Finding {
	p := &pass{m: m, name: "wsescape"}
	rep := newReporter(p)
	for _, pkg := range m.Pkgs {
		if pkg.Path == matPkgPath {
			continue
		}
		for _, file := range pkg.Files {
			eachFuncWithType(file, func(ftype *ast.FuncType, recv *ast.FieldList, body *ast.BlockStmt) {
				wsEscapeFunc(rep, m, pkg.Info, ftype, recv, body)
			})
		}
	}
	return p.findings
}

// eachFuncWithType visits every function declaration and literal of a file
// with its signature fields, mirroring eachFuncBody.
func eachFuncWithType(file *ast.File, fn func(*ast.FuncType, *ast.FieldList, *ast.BlockStmt)) {
	ast.Inspect(file, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncDecl:
			if n.Body != nil {
				fn(n.Type, n.Recv, n.Body)
			}
		case *ast.FuncLit:
			fn(n.Type, nil, n.Body)
		}
		return true
	})
}

// wsCheckout classifies a call that yields a Workspace checkout on a
// plain-ident workspace variable: a direct checkout method, or —
// interprocedurally — a summarized helper whose first result is a checkout
// of the workspace argument (the buildFInto/reducedMatrixWS idiom). Returns
// the workspace variable's object, the method or helper name, and the
// number of call results.
func wsCheckout(m *Module, info *types.Info, call *ast.CallExpr) (types.Object, string, int) {
	if wsObj, method, results := wsCheckoutDirect(info, call); wsObj != nil {
		return wsObj, method, results
	}
	f := calleeFunc(info, call)
	if f == nil || funcPkgPath(f) == matPkgPath {
		return nil, "", 0
	}
	sum := m.calleeSummary(f)
	if sum == nil || sum.NumResults == 0 || len(sum.CheckoutOf) == 0 {
		return nil, "", 0
	}
	j := sum.CheckoutOf[0]
	if j < 0 || j >= len(call.Args) {
		return nil, "", 0
	}
	wsObj := objOf(info, call.Args[j])
	if wsObj == nil || !isWorkspace(wsObj.Type()) {
		return nil, "", 0
	}
	return wsObj, f.Name(), sum.NumResults
}

// wsCheckoutDirect classifies a direct Workspace checkout method call.
func wsCheckoutDirect(info *types.Info, call *ast.CallExpr) (types.Object, string, int) {
	f := calleeFunc(info, call)
	if f == nil || funcPkgPath(f) != matPkgPath {
		return nil, "", 0
	}
	named := recvNamedType(f)
	if named == nil || named.Obj().Name() != "Workspace" {
		return nil, "", 0
	}
	var results int
	switch f.Name() {
	case "Get", "GetNoClear", "CloneOf", "View", "Floats", "Ints":
		results = 1
	case "LU":
		results = 2
	default:
		return nil, "", 0
	}
	sel, ok := unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return nil, "", 0
	}
	wsObj := objOf(info, sel.X)
	if wsObj == nil {
		return nil, "", 0 // s.ws.Get(...): the receiver owns the arena
	}
	return wsObj, f.Name(), results
}

// paramObjSet collects the objects bound by a function's receiver and
// parameters.
func paramObjSet(info *types.Info, ftype *ast.FuncType, recv *ast.FieldList) map[types.Object]bool {
	set := make(map[types.Object]bool)
	collect := func(fl *ast.FieldList) {
		if fl == nil {
			return
		}
		for _, f := range fl.List {
			for _, name := range f.Names {
				if obj := info.Defs[name]; obj != nil {
					set[obj] = true
				}
			}
		}
	}
	collect(recv)
	collect(ftype.Params)
	return set
}

func wsEscapeFunc(rep *reporter, m *Module, info *types.Info, ftype *ast.FuncType, recv *ast.FieldList, body *ast.BlockStmt) {
	g := BuildCFG(body)
	params := paramObjSet(info, ftype, recv)

	var sitesList []wsSite
	sites := make(map[*ast.AssignStmt]int) // assignment -> site index
	for _, b := range g.Blocks {
		for _, n := range b.Nodes {
			a, ok := n.(*ast.AssignStmt)
			if !ok {
				continue
			}
			call, ok := rhsCall(a)
			if !ok {
				continue
			}
			wsObj, method, results := wsCheckout(m, info, call)
			if wsObj == nil || len(a.Lhs) != results || len(sitesList) >= wsFreshSites {
				continue
			}
			if bound := objOf(info, a.Lhs[0]); bound == nil || isPkgLevel(bound) {
				continue // blank, field targets, and globals are not locals
			}
			sites[a] = len(sitesList)
			sitesList = append(sitesList, wsSite{
				pos:     call.Pos(),
				wsObj:   wsObj,
				wsParam: params[wsObj],
				method:  method,
			})
		}
	}

	transfer := func(env factEnv, b *Block, report bool) factEnv {
		for _, n := range b.Nodes {
			wsEscapeNode(rep, m, info, env, sites, sitesList, params, n, report)
		}
		return env
	}
	in := solveFlow(g, factFlow(func(env factEnv, b *Block) factEnv {
		return transfer(env, b, false)
	}))
	for _, b := range g.Blocks {
		if env, ok := in[b]; ok {
			transfer(cloneFactEnv(env), b, true)
		}
	}
}

func wsEscapeNode(rep *reporter, m *Module, info *types.Info, env factEnv, sites map[*ast.AssignStmt]int, sitesList []wsSite, params map[types.Object]bool, n ast.Node, report bool) {
	// A read of a checkout that went stale at a Reset is the core bug.
	if report {
		skip := assignTargets(n)
		eachReadIdent(info, n, skip, func(id *ast.Ident, obj types.Object) {
			bits := env[obj]
			if bits&wsStaleMask == 0 {
				return
			}
			for i, s := range sitesList {
				if bits&(1<<uint(i+wsFreshSites)) != 0 {
					rep.reportf(id.Pos(), "workspace checkout %q (from %s.%s) is used after %s.Reset recycled the arena", id.Name, s.wsObj.Name(), s.method, s.wsObj.Name())
				}
			}
		})
	}

	switch n := n.(type) {
	case *ast.AssignStmt:
		wsEscapeAssign(rep, m, info, env, sites, sitesList, n, report)
	case *ast.ReturnStmt:
		for _, r := range n.Results {
			wsEscapeValue(rep, m, info, env, sitesList, params, r, report,
				"workspace checkout escapes via return from the function that owns the arena (it dies at the next %s.Reset)")
		}
	default:
		wsEscapeReset(info, env, sitesList, n)
	}
}

// wsEscapeReset marks every live checkout of a workspace stale when that
// workspace's Reset call executes.
func wsEscapeReset(info *types.Info, env factEnv, sitesList []wsSite, n ast.Node) {
	walkExprs(n, func(x ast.Node) bool {
		call, ok := x.(*ast.CallExpr)
		if !ok {
			return true
		}
		f := calleeFunc(info, call)
		if f == nil || funcPkgPath(f) != matPkgPath || f.Name() != "Reset" {
			return true
		}
		named := recvNamedType(f)
		if named == nil || named.Obj().Name() != "Workspace" {
			return true
		}
		sel, ok := unparen(call.Fun).(*ast.SelectorExpr)
		if !ok {
			return true
		}
		wsObj := objOf(info, sel.X)
		if wsObj == nil {
			return true
		}
		for obj, bits := range env {
			for i, s := range sitesList {
				if s.wsObj == wsObj && bits&(1<<uint(i)) != 0 {
					bits = bits&^(1<<uint(i)) | 1<<uint(i+wsFreshSites)
				}
			}
			env[obj] = bits
		}
		return true
	})
}

func wsEscapeAssign(rep *reporter, m *Module, info *types.Info, env factEnv, sites map[*ast.AssignStmt]int, sitesList []wsSite, n *ast.AssignStmt, report bool) {
	// Stores through a pointer or into a package-level variable escape the
	// arena; stores into function-local values (structs, slices, maps by
	// value) die with the frame and are fine.
	if len(n.Lhs) == len(n.Rhs) {
		for i, l := range n.Lhs {
			if _, plain := unparen(l).(*ast.Ident); plain {
				// Rebinding a local is handled below; binding a
				// package-level variable is an escape.
				if obj := objOf(info, l); obj == nil || !isPkgLevel(obj) {
					continue
				}
			}
			if escapingRoot(info, l) {
				wsEscapeValue(rep, m, info, env, sitesList, nil, n.Rhs[i], report,
					"workspace checkout is stored into a location that outlives the arena (it dies at the next %s.Reset)")
			}
		}
	}
	// Kill-and-rebind; a whole-value alias shares the original's fate.
	aliases := make(map[types.Object]uint64)
	if len(n.Lhs) == len(n.Rhs) {
		for i := range n.Lhs {
			src := objOf(info, n.Rhs[i])
			dst := objOf(info, n.Lhs[i])
			if src != nil && dst != nil {
				aliases[dst] = env[src]
			}
		}
	}
	for _, obj := range lhsObjs(info, n.Lhs) {
		if obj != nil {
			delete(env, obj)
		}
	}
	for dst, bits := range aliases {
		if bits != 0 {
			env[dst] = bits
		}
	}
	if idx, ok := sites[n]; ok {
		env[objOf(info, n.Lhs[0])] = 1 << uint(idx)
	}
}

// wsEscapeValue reports when an expression hands a tracked checkout (an
// exact tracked identifier, or a direct checkout call) to a longer-lived
// location. params non-nil means checkouts from parameter-owned workspaces
// are exempt (the return case).
func wsEscapeValue(rep *reporter, m *Module, info *types.Info, env factEnv, sitesList []wsSite, params map[types.Object]bool, e ast.Expr, report bool, format string) {
	if !report {
		return
	}
	if obj := objOf(info, e); obj != nil {
		bits := env[obj]
		for i, s := range sitesList {
			if bits&(1<<uint(i)) == 0 {
				continue
			}
			if params != nil && s.wsParam {
				continue
			}
			rep.reportf(e.Pos(), format, s.wsObj.Name())
		}
		return
	}
	if call, ok := unparen(e).(*ast.CallExpr); ok {
		wsObj, _, _ := wsCheckout(m, info, call)
		if wsObj == nil {
			return
		}
		if params != nil && params[wsObj] {
			return
		}
		rep.reportf(e.Pos(), format, wsObj.Name())
	}
}

// escapingRoot reports whether an assignment target is reached through a
// pointer or rooted in a package-level variable, i.e. whether a value
// stored there outlives the enclosing call frame.
func escapingRoot(info *types.Info, l ast.Expr) bool {
	for {
		switch x := unparen(l).(type) {
		case *ast.SelectorExpr:
			l = x.X
		case *ast.IndexExpr:
			l = x.X
		case *ast.StarExpr:
			l = x.X
		case *ast.Ident:
			obj := objOf(info, x)
			if obj == nil {
				return false
			}
			if _, isPtr := obj.Type().Underlying().(*types.Pointer); isPtr {
				return true
			}
			return isPkgLevel(obj)
		default:
			return false
		}
	}
}

// isPkgLevel reports whether obj is declared at package scope (the package
// scope's parent is the universe scope).
func isPkgLevel(obj types.Object) bool {
	return obj.Parent() != nil && obj.Parent().Parent() == types.Universe
}
