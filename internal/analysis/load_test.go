package analysis

import (
	"path/filepath"
	"strings"
	"testing"
)

// The loader's error paths, exercised against the self-contained broken
// modules under testdata/brokenmod. Each fixture carries its own go.mod so
// LoadModule treats it as a module root; the Go toolchain ignores testdata
// trees, so the deliberately broken sources never reach go build.

func brokenMod(name string) string {
	return filepath.Join("testdata", "brokenmod", name)
}

func TestLoadModuleMissingImport(t *testing.T) {
	_, err := LoadModule(brokenMod("missingimport"))
	if err == nil {
		t.Fatal("LoadModule succeeded on a module importing a nonexistent local package")
	}
	if !strings.Contains(err.Error(), "imported but not found in module") {
		t.Errorf("error = %v, want the missing-package diagnostic", err)
	}
	if !strings.Contains(err.Error(), "brokenmod/sub") {
		t.Errorf("error = %v, want it to name brokenmod/sub", err)
	}
}

func TestLoadModuleSyntaxError(t *testing.T) {
	_, err := LoadModule(brokenMod("syntaxerr"))
	if err == nil {
		t.Fatal("LoadModule succeeded on a module with a parse error")
	}
	if !strings.Contains(err.Error(), "bad.go") {
		t.Errorf("error = %v, want it to name the unparsable file", err)
	}
}

func TestLoadModuleMixedPackages(t *testing.T) {
	_, err := LoadModule(brokenMod("mixedpkg"))
	if err == nil {
		t.Fatal("LoadModule succeeded on a directory with two package clauses")
	}
	if !strings.Contains(err.Error(), "mixed packages") {
		t.Errorf("error = %v, want the mixed-packages diagnostic", err)
	}
}

func TestLoadModuleImportCycle(t *testing.T) {
	_, err := LoadModule(brokenMod("cycle"))
	if err == nil {
		t.Fatal("LoadModule succeeded on a module with an import cycle")
	}
	if !strings.Contains(err.Error(), "import cycle through") {
		t.Errorf("error = %v, want the import-cycle diagnostic", err)
	}
}

// TestLoadModuleSkipsVendor pins the walk exclusions: the vendor tree next
// to a valid root package contains unparsable garbage, and the load must
// succeed without ever reading it.
func TestLoadModuleSkipsVendor(t *testing.T) {
	m, err := LoadModule(brokenMod("vendored"))
	if err != nil {
		t.Fatalf("LoadModule failed on a module whose only junk lives under vendor/: %v", err)
	}
	if len(m.Pkgs) != 1 || m.Pkgs[0].Path != "vendored" {
		t.Fatalf("loaded packages = %v, want exactly the root package", m.Pkgs)
	}
}

func TestFindModuleRootNotFound(t *testing.T) {
	if root, err := FindModuleRoot("/"); err == nil {
		t.Fatalf("FindModuleRoot(/) = %q, want an error", root)
	} else if !strings.Contains(err.Error(), "no go.mod") {
		t.Errorf("error = %v, want the no-go.mod diagnostic", err)
	}
}
