package analysis

import (
	"go/ast"
	"go/types"
	"sort"
)

// commlock flags comm operations performed while a sync.Mutex or
// sync.RWMutex acquired in the same function is still held. In the World
// runtime every collective and every matched send/receive requires progress
// on other ranks; a rank that blocks inside comm while holding a lock that
// another rank needs (directly, or transitively through the code the
// collective runs) deadlocks the whole World — and unlike a crash, a
// deadlock gives no stack until someone attaches a debugger.
//
// The check is intra-procedural and statement-ordered: Lock()/RLock() adds
// the receiver expression to the held set, Unlock()/RUnlock() removes it,
// and "defer mu.Unlock()" keeps it held until function exit. Nominally
// non-blocking posts (ISend, IRecv) are exempt; Send is treated as blocking
// even though this in-process runtime buffers unboundedly, because the
// invariant must stay true under MPI rendezvous semantics, which the comm
// package exists to model.
var commLockAnalyzer = &Analyzer{
	Name:     "commlock",
	Doc:      "flag blocking comm operations while a locally acquired mutex is held",
	Severity: SeverityError,
	Version:  2,
	Run:      runCommLock,
}

const commPkgPath = "blocktri/internal/comm"

// blockingCommOps are the comm.Comm / comm.Request methods (and package
// functions) that require matching progress on another rank.
var blockingCommOps = map[string]bool{
	"Send": true, "SendOwned": true, "Recv": true, "SendRecv": true, "Exchange": true,
	"Barrier": true, "Bcast": true, "Reduce": true, "Allreduce": true,
	"Gather": true, "Allgather": true, "ExScan": true, "Scan": true,
	"Alltoall": true, "ReduceScatter": true, "Scatter": true,
	"SendMatrix": true, "RecvMatrix": true, "ExchangeMatrices": true,
	"BcastMatrix": true, "Wait": true, "WaitAll": true,
}

func runCommLock(m *Module) []Finding {
	p := &pass{m: m, name: "commlock"}
	for _, pkg := range m.Pkgs {
		// The comm package itself implements the primitives; its internal
		// mailbox locking is the mechanism, not a client bug.
		if pkg.Path == commPkgPath {
			continue
		}
		for _, file := range pkg.Files {
			eachFuncBody(file, func(body *ast.BlockStmt) {
				checkLockedComm(p, pkg.Info, body)
			})
		}
	}
	return p.findings
}

// syncLockKind classifies a call as a lock acquire (+1), release (-1), or
// neither (0), returning the receiver expression's printed form as the key.
func syncLockKind(info *types.Info, call *ast.CallExpr) (key string, kind int) {
	f := calleeFunc(info, call)
	if f == nil || funcPkgPath(f) != "sync" {
		return "", 0
	}
	switch f.Name() {
	case "Lock", "RLock":
		kind = 1
	case "Unlock", "RUnlock":
		kind = -1
	default:
		return "", 0
	}
	sel, ok := unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return "", 0
	}
	return types.ExprString(sel.X), kind
}

// commOpName returns the name of the blocking comm operation a call
// invokes, or "" if the call is not one.
func commOpName(info *types.Info, call *ast.CallExpr) string {
	f := calleeFunc(info, call)
	if f == nil || funcPkgPath(f) != commPkgPath {
		return ""
	}
	if blockingCommOps[f.Name()] {
		return f.Name()
	}
	return ""
}

// checkLockedComm walks one function body in source order tracking the set
// of held locks.
func checkLockedComm(p *pass, info *types.Info, body *ast.BlockStmt) {
	held := make(map[string]ast.Node) // lock key -> Lock call site
	inspectShallow(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.DeferStmt:
			// defer mu.Unlock() releases only at function exit: the lock
			// stays held for every statement below, so do not remove it.
			// Other deferred calls are not part of the statement flow.
			return false
		case *ast.CallExpr:
			if key, kind := syncLockKind(info, n); kind != 0 {
				if kind > 0 {
					held[key] = n
				} else {
					delete(held, key)
				}
				return true
			}
			if op := commOpName(info, n); op != "" && len(held) > 0 {
				keys := make([]string, 0, len(held))
				for key := range held {
					keys = append(keys, key)
				}
				sort.Strings(keys)
				for _, key := range keys {
					p.reportf(n.Pos(),
						"comm.%s while %s is locked: a rank blocked in comm holding a lock deadlocks the World (unlock before communicating)",
						op, key)
				}
			}
		}
		return true
	})
}
