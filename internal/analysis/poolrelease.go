package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// poolrelease enforces the pooled-buffer discipline comm.Recv documents:
// once a payload slice is bound to a variable, it must reach c.Release
// exactly once on every path — a path that skips Release leaks the buffer
// out of the pool (undoing PR 2's steady-state zero-alloc guarantee on hot
// solve paths), and a path that releases twice poisons the pool with an
// aliased buffer.
//
// Tracking starts at a direct binding `buf := c.Recv(...)` (also SendRecv
// and Exchange, which return Recv's buffer). One-shot idioms that never name
// the buffer, like comm.DecodeMatrices(c.Recv(...)), opt out of pooling and
// are deliberately not tracked: comm documents Release as optional, and the
// analyzer only holds code to the discipline it visibly opted into.
// Ownership transfers end tracking: returning the buffer, aliasing it to
// another variable or into a structure, or passing the whole slice to a
// callee all hand the Release obligation elsewhere.
//
// The comm package itself is excluded: the pool internals and the
// conditional hand-off in BcastMatrixInto manage buffer ownership in ways
// only the runtime contract, not intraprocedural flow, can justify.
var poolReleaseAnalyzer = &Analyzer{
	Name:     "poolrelease",
	Doc:      "pooled comm payloads bound to a variable must reach Release exactly once on every path",
	Severity: SeverityError,
	Version:  1,
	Run:      runPoolRelease,
}

// relBit marks "a Release has happened on this path"; the low bits carry
// acquisition-site indices.
const relBit = uint64(1) << 63

const acqMask = relBit - 1

// acqSite is one tracked pool acquisition.
type acqSite struct {
	pos    token.Pos
	method string
}

func runPoolRelease(m *Module) []Finding {
	p := &pass{m: m, name: "poolrelease"}
	rep := newReporter(p)
	for _, pkg := range m.Pkgs {
		if pkg.Path == commPkgPath {
			continue
		}
		for _, file := range pkg.Files {
			eachFuncBody(file, func(body *ast.BlockStmt) {
				poolReleaseFunc(rep, m, pkg.Info, body)
			})
		}
	}
	return p.findings
}

// commMethod returns the name of the comm.Comm method a call invokes, or "".
func commMethod(info *types.Info, call *ast.CallExpr) string {
	f := calleeFunc(info, call)
	if f == nil || funcPkgPath(f) != commPkgPath {
		return ""
	}
	if named := recvNamedType(f); named == nil || named.Obj().Name() != "Comm" {
		return ""
	}
	return f.Name()
}

func isPoolAcquire(method string) bool {
	return method == "Recv" || method == "SendRecv" || method == "Exchange"
}

func poolReleaseFunc(rep *reporter, m *Module, info *types.Info, body *ast.BlockStmt) {
	g := BuildCFG(body)
	var sitesList []acqSite
	sites := make(map[*ast.AssignStmt]int)
	for _, b := range g.Blocks {
		for _, n := range b.Nodes {
			a, ok := n.(*ast.AssignStmt)
			if !ok || len(a.Lhs) != 1 {
				continue
			}
			call, ok := rhsCall(a)
			if !ok {
				continue
			}
			method := commMethod(info, call)
			if !isPoolAcquire(method) || len(sitesList) >= maxFactSites {
				continue
			}
			if objOf(info, a.Lhs[0]) == nil {
				continue // bound to _, a field, or an element: untracked
			}
			sites[a] = len(sitesList)
			sitesList = append(sitesList, acqSite{pos: call.Pos(), method: method})
		}
	}
	if len(sitesList) == 0 {
		return
	}

	reportUnreleased := func(bits uint64) {
		for i, s := range sitesList {
			if bits&(1<<uint(i)) == 0 {
				continue
			}
			if bits&relBit != 0 {
				rep.reportf(s.pos, "pooled payload from comm.%s is Released on some paths but not all (Release must run exactly once)", s.method)
			} else {
				rep.reportf(s.pos, "pooled payload from comm.%s is never Released (hot-path buffers must recycle through the pool)", s.method)
			}
		}
	}

	transfer := func(env factEnv, b *Block, report bool) factEnv {
		for _, n := range b.Nodes {
			switch n := n.(type) {
			case *ast.AssignStmt:
				// Rebinding a variable that still owes a Release leaks the
				// old buffer.
				for _, obj := range lhsObjs(info, n.Lhs) {
					if obj == nil {
						continue
					}
					if bits := env[obj]; bits&acqMask != 0 && report {
						reportUnreleased(bits)
					}
					delete(env, obj)
				}
				// Aliasing the whole slice to another location transfers
				// ownership out of this function's view.
				for _, r := range n.Rhs {
					if obj := objOf(info, r); obj != nil {
						delete(env, obj)
					}
				}
				killWholeArgs(rep, m, info, env, n, report)
				if idx, ok := sites[n]; ok {
					env[objOf(info, n.Lhs[0])] = 1 << uint(idx)
				}
			case *ast.ReturnStmt:
				for _, r := range n.Results {
					if obj := objOf(info, r); obj != nil {
						delete(env, obj)
					}
				}
			default:
				poolReleaseCalls(rep, m, info, env, n, report)
			}
		}
		return env
	}

	in := solveFlow(g, factFlow(func(env factEnv, b *Block) factEnv {
		return transfer(env, b, false)
	}))
	for _, b := range g.Blocks {
		env, ok := in[b]
		if !ok {
			continue
		}
		out := transfer(cloneFactEnv(env), b, true)
		if b == g.Exit {
			var all uint64
			for _, bits := range out {
				if bits&acqMask != 0 {
					all |= bits
				}
			}
			reportUnreleased(all)
		}
	}
}

// poolReleaseCalls processes the calls of one non-assignment node: Release
// flips the fact, and any other call consuming the whole slice takes over
// ownership (unless a summary proves otherwise).
func poolReleaseCalls(rep *reporter, m *Module, info *types.Info, env factEnv, n ast.Node, report bool) {
	walkExprs(n, func(x ast.Node) bool {
		call, ok := x.(*ast.CallExpr)
		if !ok {
			return true
		}
		method := commMethod(info, call)
		if method == "Release" && len(call.Args) == 1 {
			obj := objOf(info, call.Args[0])
			if obj == nil {
				return true
			}
			if env[obj]&relBit != 0 && report {
				rep.reportf(call.Pos(), "pooled payload %q may already have been Released on this path (Release must run exactly once)", identName(call.Args[0]))
			}
			env[obj] = relBit
			return true
		}
		killWholeCallArgs(rep, m, info, env, call, report)
		return true
	})
}

// killWholeArgs drops facts for tracked slices passed whole to calls inside
// an assignment's RHS expressions.
func killWholeArgs(rep *reporter, m *Module, info *types.Info, env factEnv, n *ast.AssignStmt, report bool) {
	for _, r := range n.Rhs {
		walkExprs(r, func(x ast.Node) bool {
			if call, ok := x.(*ast.CallExpr); ok {
				killWholeCallArgs(rep, m, info, env, call, report)
			}
			return true
		})
	}
}

// killWholeCallArgs applies a call to the tracked buffers among its
// whole-slice arguments (subslices and element reads keep the obligation
// local). Without a summary, a whole-value hand-off transfers ownership and
// the fact dies — the intraprocedural rule. With one:
//
//   - a callee that Releases the parameter on every path counts as the
//     Release itself (and releasing an already-released buffer is the
//     double-release bug);
//   - a callee that merely Borrows the parameter leaves the obligation with
//     the caller, so a later leak is still caught.
func killWholeCallArgs(rep *reporter, m *Module, info *types.Info, env factEnv, call *ast.CallExpr, report bool) {
	var sum *FuncSummary
	if f := calleeFunc(info, call); f != nil && funcPkgPath(f) != commPkgPath {
		sum = m.calleeSummary(f)
	}
	for ai, arg := range call.Args {
		obj := objOf(info, arg)
		if obj == nil {
			continue
		}
		if sum != nil && ai < maxSummaryParams {
			if sum.Releases&(1<<uint(ai)) != 0 {
				if env[obj]&relBit != 0 && report {
					rep.reportf(call.Pos(), "pooled payload %q may already have been Released on this path (Release must run exactly once)", identName(arg))
				}
				if env[obj] != 0 {
					env[obj] = relBit
				}
				continue
			}
			if sum.Borrows&(1<<uint(ai)) != 0 {
				continue // obligation stays with the caller
			}
		}
		delete(env, obj)
	}
}

func identName(e ast.Expr) string {
	if id, ok := unparen(e).(*ast.Ident); ok {
		return id.Name
	}
	return "?"
}
