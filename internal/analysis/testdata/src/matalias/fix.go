// Package matalias is a fixture for the matalias analyzer. Expectation
// comments are of the form: want `regexp` (one per expected finding on the
// line).
package matalias

import "blocktri/internal/mat"

func direct(a, b, dst *mat.Matrix) {
	mat.Mul(dst, a, b)      // ok: distinct storage
	mat.Mul(a, a, b)        // want `destination a may alias source a in mat\.Mul`
	mat.MulAdd(b, a, b)     // want `destination b may alias source b in mat\.MulAdd`
	mat.Transpose(a, a)     // want `destination a may alias source a in mat\.Transpose`
	mat.GEMM(1, a, b, 0, a) // want `destination a may alias source a in mat\.GEMM`
	mat.Add(a, a, b)        // ok: Add is aliasing-safe
}

func views(a, b *mat.Matrix) {
	v := a.View(0, 0, 2, 2)
	mat.Mul(v, a, b)        // want `destination v may alias source a in mat\.Mul`
	mat.Mul(a.Row(0), a, b) // want `destination a\.Row\(0\) may alias source a in mat\.Mul`
	w := mat.New(2, 2)
	mat.Mul(w, a, b) // ok: w is freshly allocated
	c := a.Clone()
	mat.Mul(c, a, b) // ok: Clone copies the storage
}

func sharedData(a, b *mat.Matrix) {
	alias := &mat.Matrix{Rows: a.Rows, Cols: a.Cols, Stride: a.Stride, Data: a.Data}
	mat.Mul(alias, a, b) // want `destination alias may alias source a in mat\.Mul`
}

func solveTo(lu *mat.LU, b *mat.Matrix) {
	lu.SolveTo(b, b) // want `destination b may alias source b in mat\.SolveTo`
	dst := mat.New(b.Rows, b.Cols)
	lu.SolveTo(dst, b) // ok
}

func reassigned(a *mat.Matrix) {
	at := a
	at = mat.New(a.Cols, a.Rows)
	mat.Transpose(at, a) // ok: at was rebound to fresh storage above
}
