// Package suppress is a fixture for the lint:ignore directive audit (the
// "suppress" pseudo-analyzer). It carries one directive of each kind: one
// that silences a real finding, one that is stale, and one that misspells
// an analyzer name. The expectations are asserted directly by
// TestSuppressFixture rather than via want comments, because the audit runs
// after suppression filtering, outside the per-analyzer bijection harness.
package suppress

// usedDirective really does suppress a floateq finding on the line below.
func usedDirective(a, b float64) bool {
	//lint:ignore floateq fixture: intentional exact comparison
	return a == b
}

// staleDirective names a real analyzer but the comparison below it is not a
// finding, so the directive matches nothing.
func staleDirective(a, b float64) bool {
	//lint:ignore floateq fixture: nothing to suppress here
	return a < b
}

// typoDirective misspells the analyzer name, so it silences nothing at all.
func typoDirective(a, b float64) bool {
	//lint:ignore floateqq fixture: misspelled analyzer name
	return a != b
}

// usedConcurrency suppresses a real goleak finding: the loop below has no
// termination tie by construction.
func usedConcurrency() {
	//lint:ignore goleak fixture: intentionally untied goroutine
	go func() {
		for {
		}
	}()
}

// staleConcurrency names the lockorder analyzer but holds no lock across
// the send, so the directive matches nothing.
func staleConcurrency(ch chan int) {
	//lint:ignore lockorder fixture: nothing is locked here
	ch <- 1
}
