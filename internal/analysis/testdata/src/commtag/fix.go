// Package commtag is a fixture for the commtag analyzer.
package commtag

import "blocktri/internal/comm"

const (
	tagPaired   = 100
	tagSendOnly = 101
	tagRecvOnly = 102
	tagXchg     = 103
)

func pairs(c *comm.Comm, data []float64) {
	if c.Rank() == 0 {
		c.Send(1, tagPaired, data) // ok: received below
	} else {
		_ = c.Recv(0, tagPaired)
	}
	c.Send(1, tagSendOnly, data)     // want `tag 101 is sent but never received`
	_ = c.Recv(0, tagRecvOnly)       // want `tag 102 is received but never sent`
	_ = c.Exchange(1, tagXchg, data) // ok: Exchange is both send and receive
}

func computed(c *comm.Comm, round int, data []float64) {
	c.Send(1, tagPaired+round, data) // want `non-constant tag expression tagPaired \+ round in comm\.Send`
	_ = c.Recv(0, tagPaired+round)   // want `non-constant tag expression tagPaired \+ round in comm\.Recv`
}

func forwarded(c *comm.Comm, tag int, data []float64) {
	c.Send(1, tag, data) // ok: forwarded tag parameter
	_ = c.Recv(0, tag)   // ok
}
