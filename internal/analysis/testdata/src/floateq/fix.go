// Package floateq is a fixture for the floateq analyzer.
package floateq

func compare(a, b float64) bool {
	if a == b { // want `exact floating-point comparison a == b`
		return true
	}
	return a != b // want `exact floating-point comparison a != b`
}

func pivot(p float64) bool {
	return p == 0 // ok: exact-zero singularity check is allowlisted
}

func nanProbe(x float64) bool {
	return x != x // ok: the standard NaN probe
}

func suppressed(beta float64) bool {
	//lint:ignore floateq 1 is the exact no-op sentinel for this parameter
	return beta == 1 // finding produced but suppressed: no want
}

func ints(i, j int) bool {
	return i == j // ok: integers compare exactly
}
