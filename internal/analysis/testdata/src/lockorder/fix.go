// Package lockorder is a fixture for the lockorder analyzer. Expectation
// comments are of the form: want `regexp` (one per expected finding on the
// line). Wants reflect the default interprocedural run; the summary-only
// delta is pinned by TestInterproceduralDelta.
package lockorder

import "sync"

var (
	muA sync.Mutex
	muB sync.Mutex
	muC sync.Mutex
	cv  = sync.NewCond(&muC)
)

func work(int) {}

func needsWork() bool { return false }

// abOrder and baOrder take the two locks in opposite orders: the classic
// deadlock pair. Each opposing acquisition lies on the cycle.
func abOrder() {
	muA.Lock()
	muB.Lock() // want `lock-order cycle: lockorder\.muB is acquired while lockorder\.muA is held`
	work(1)
	muB.Unlock()
	muA.Unlock()
}

func baOrder() {
	muB.Lock()
	muA.Lock() // want `lock-order cycle: lockorder\.muA is acquired while lockorder\.muB is held`
	work(2)
	muA.Unlock()
	muB.Unlock()
}

// nestedOK takes a consistent order everywhere: an edge, but no cycle.
func nestedOK() {
	muA.Lock()
	muC.Lock()
	work(3)
	muC.Unlock()
	muA.Unlock()
}

type guarded struct {
	mu sync.Mutex
	n  int
}

// reenter re-acquires a held mutex: sync mutexes are not reentrant.
func (g *guarded) reenter() {
	g.mu.Lock()
	g.mu.Lock() // want `lock lockorder\.guarded\.mu acquired while already held`
	g.n++
	g.mu.Unlock()
	g.mu.Unlock()
}

// --- blocking while holding a lock ------------------------------------------

func sendLocked(ch chan int) {
	muC.Lock()
	ch <- 1 // want `channel send while muC is locked`
	muC.Unlock()
}

func recvDeferred(ch chan int) int {
	muC.Lock()
	defer muC.Unlock()
	return <-ch // want `channel receive while muC is locked`
}

func selectLocked(a, b chan int) {
	muC.Lock()
	defer muC.Unlock()
	select { // want `select with no default while muC is locked`
	case v := <-a:
		work(v)
	case v := <-b:
		work(v)
	}
}

// pollLocked never blocks: a select with a default just probes.
func pollLocked(a chan int) {
	muC.Lock()
	defer muC.Unlock()
	select {
	case v := <-a:
		work(v)
	default:
	}
}

func rangeLocked(ch chan int) {
	muC.Lock()
	defer muC.Unlock()
	for v := range ch { // want `range over channel while muC is locked`
		work(v)
	}
}

func waitLocked(wg *sync.WaitGroup) {
	muC.Lock()
	defer muC.Unlock()
	wg.Wait() // want `sync\.WaitGroup\.Wait while muC is locked`
}

// condWait holds exactly the cond's own mutex: that is the Wait contract
// (Wait unlocks it while parked), so nothing is reported.
func condWait() {
	muC.Lock()
	for needsWork() {
		cv.Wait()
	}
	muC.Unlock()
}

// condWaitTwo parks with a second lock still held.
func condWaitTwo() {
	muA.Lock()
	muC.Lock()
	for needsWork() {
		cv.Wait() // want `sync\.Cond\.Wait with a second lock held while muA is locked` `sync\.Cond\.Wait with a second lock held while muC is locked`
	}
	muC.Unlock()
	muA.Unlock()
}

// --- interprocedural: the cycle only closes through callee summaries --------

var (
	muD sync.Mutex
	muE sync.Mutex
)

func helperD() {
	muD.Lock()
	work(4)
	muD.Unlock()
}

func helperE() {
	muE.Lock()
	work(5)
	muE.Unlock()
}

// deOrder and edOrder never touch the second mutex directly: the opposing
// edges (and the cycle) exist only through the Locks summary facet, so both
// reports vanish without summaries (TestInterproceduralDelta).
func deOrder() {
	muD.Lock()
	helperE() // want `lock-order cycle: lockorder\.muE is acquired while lockorder\.muD is held`
	muD.Unlock()
}

func edOrder() {
	muE.Lock()
	helperD() // want `lock-order cycle: lockorder\.muD is acquired while lockorder\.muE is held`
	muE.Unlock()
}
