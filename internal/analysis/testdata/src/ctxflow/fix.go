// Package ctxflow is a fixture for the ctxflow analyzer. Expectation
// comments are of the form: want `regexp` (one per expected finding on the
// line). Wants reflect the default interprocedural run; the summary-only
// delta is pinned by TestInterproceduralDelta.
package ctxflow

import (
	"context"
	"time"

	"blocktri/internal/comm"
)

func use(context.Context) {}

// deferred is the canonical correct shape.
func deferred(parent context.Context) {
	ctx, cancel := context.WithCancel(parent)
	defer cancel()
	use(ctx)
}

// discarded throws the cancel function away outright.
func discarded(parent context.Context) {
	ctx, _ := context.WithTimeout(parent, time.Second) // want `cancel function of context\.WithTimeout discarded`
	use(ctx)
}

// partial cancels on one branch only.
func partial(parent context.Context, flag bool) {
	ctx, cancel := context.WithCancel(parent) // want `context\.WithCancel's cancel function runs on some paths but not all`
	use(ctx)
	if flag {
		cancel()
	}
}

// rebound drops the first obligation by rebinding cancel before calling it.
func rebound(parent context.Context) {
	ctx, cancel := context.WithCancel(parent) // want `context\.WithCancel's cancel function is never called on any path`
	use(ctx)
	ctx, cancel = context.WithCancel(parent)
	defer cancel()
	use(ctx)
}

// captured cancels are out of the intraprocedural view: tracking stops.
func captured(parent context.Context) {
	ctx, cancel := context.WithCancel(parent)
	go func() {
		use(ctx)
		cancel()
	}()
}

type holder struct {
	ctx context.Context
}

// store parks the context in a struct, where it outlives the call.
func store(ctx context.Context, h *holder) {
	h.ctx = ctx // want `context stored into a struct field`
}

func storeLit(ctx context.Context) holder {
	return holder{ctx: ctx} // want `context stored into a struct field`
}

// restart launches from a fresh root despite having a ctx to forward.
func restart(ctx context.Context) {
	use(context.Background()) // want `context\.Background\(\) passed to a callee while the caller's ctx is in scope`
	use(ctx)
}

// ignored accepts a ctx, never reads it, and blocks anyway.
func ignored(ctx context.Context, w *comm.World) error {
	return w.Run(func(c *comm.Comm) {}) // want `ctx accepted but never used: World\.Run blocks without the caller's cancellation`
}

func ignoredRecv(ctx context.Context, c *comm.Comm) []float64 {
	return c.Recv(0, 3) // want `ctx accepted but never used: comm\.Recv blocks without the caller's cancellation`
}

// forwarded threads the ctx through, which is the whole point.
func forwarded(ctx context.Context, w *comm.World) error {
	return w.RunContext(ctx, func(c *comm.Comm) {})
}

// drop provably ignores its argument, so handing the cancel over changes
// nothing: the obligation stays with the caller. Only the summary knows.
func drop(cancel context.CancelFunc) {}

// interpLeak is only visible interprocedurally (TestInterproceduralDelta):
// without drop's summary the hand-off transfers the obligation.
func interpLeak(parent context.Context) {
	ctx, cancel := context.WithCancel(parent) // want `context\.WithCancel's cancel function is never called on any path`
	use(ctx)
	drop(cancel)
}

// invoke really does run the cancel it is given, so the hand-off satisfies
// the obligation under both modes.
func invoke(cancel context.CancelFunc) { cancel() }

func handedOff(parent context.Context) {
	ctx, cancel := context.WithCancel(parent)
	use(ctx)
	invoke(cancel)
}
