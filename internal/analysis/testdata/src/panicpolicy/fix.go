// Package panicpolicy is a fixture for the panicpolicy analyzer.
package panicpolicy

import (
	"errors"

	"blocktri/internal/mat"
)

var errBoom = errors.New("boom")

func panics(err error) {
	if err != nil {
		panic(err) // want `panic\(err\): return the error instead`
	}
	panic("shape mismatch") // ok: a message, not an error value
}

func panicsNamed() {
	panic(errBoom) // want `panic\(errBoom\): return the error instead`
}

func discards(a, b *mat.Matrix) {
	mat.Solve(a, b)         // want `error result of Solve is discarded`
	x, _ := mat.Solve(a, b) // want `error result of Solve is assigned to _`
	_ = x
	inv, _ := mat.Inverse(a) // want `error result of Inverse is assigned to _`
	_ = inv
	y, err := mat.Solve(a, b) // ok: error is bound
	if err != nil {
		return
	}
	_ = y
}

func luSolveOK(lu *mat.LU, b *mat.Matrix) {
	x := lu.Solve(b) // ok: (*LU).Solve has no error result
	_ = x
}
