// Package panicpolicy is a fixture for the panicpolicy analyzer.
package panicpolicy

import (
	"errors"

	"blocktri/internal/mat"
)

var errBoom = errors.New("boom")

func panics(err error) {
	if err != nil {
		panic(err) // want `panic\(err\): return the error instead`
	}
	// Fixtures load under a synthetic fix/ path, which is inside the
	// bare-panic scope: a string panic is flagged too.
	panic("shape mismatch") // want `bare panic in the comm/core runtime`
}

func panicsNamed() {
	panic(errBoom) // want `panic\(errBoom\): return the error instead`
}

// control is a stand-in for the runtime's sanctioned control-flow panics
// (cascade aborts, Throw): a bare panic is allowed only under an explicit
// suppression carrying its rationale.
type control struct{}

func sanctioned() {
	//lint:ignore panicpolicy fixture: control-flow signal recovered by the caller.
	panic(control{})
}

func unsanctioned() {
	panic(control{}) // want `bare panic in the comm/core runtime`
}

func discards(a, b *mat.Matrix) {
	mat.Solve(a, b)         // want `error result of Solve is discarded`
	x, _ := mat.Solve(a, b) // want `error result of Solve is assigned to _`
	_ = x
	inv, _ := mat.Inverse(a) // want `error result of Inverse is assigned to _`
	_ = inv
	y, err := mat.Solve(a, b) // ok: error is bound
	if err != nil {
		return
	}
	_ = y
}

func luSolveOK(lu *mat.LU, b *mat.Matrix) {
	x := lu.Solve(b) // ok: (*LU).Solve has no error result
	_ = x
}
