// Package perfescape exercises the compiler-evidence escape contract.
//
// The boxing in Step is the documented hotalloc blind spot: hotalloc's
// syntactic allocation patterns (make, append, new, mat.New composites)
// never see an interface conversion, but the compiler's escape analysis
// reports it like any other per-call heap allocation. The companion test
// TestPerfEscapeCoversHotallocBlindSpot pins that hotalloc stays silent on
// this package while perfescape does not.
package perfescape

// sink keeps boxed values reachable so the escapes are real, not
// dead-code-eliminated.
var sink any

// Step boxes its scalar argument — one heap allocation per call on the
// solve path, invisible to any syntactic allocation scan.
//
//perf:hotpath
func Step(x float64) {
	sink = x // want `x escapes to heap in hot-path function Step`
}

// Solve is the annotated entry point; stage is hot only via propagation.
//
//perf:hotpath
func Solve(n int) float64 {
	return stage(n)[0]
}

// stage carries no annotation of its own: the escape inside it is charged
// to the //perf:hotpath root that reaches it. go:noinline keeps the
// diagnostic anchored in stage's body rather than an inlined copy.
//
//go:noinline
func stage(n int) *[8]float64 {
	var buf [8]float64 // want `moved to heap: buf in hot-path function stage \(hot via //perf:hotpath on Solve\)`
	buf[0] = float64(n)
	return &buf
}

// Warm's cold branch delegates its deliberate allocation to grow, which
// opts out of propagation; neither function is reported.
//
//perf:hotpath
func Warm(dst []float64, n int) []float64 {
	if cap(dst) < n {
		dst = grow(n)
	}
	return dst[:n]
}

// grow allocates by design — it runs only until the pool warms up.
// go:noinline keeps the make from being attributed to Warm's body.
//
//go:noinline
//perf:coldpath
func grow(n int) []float64 {
	return make([]float64, n)
}

// table's one-time allocation is acknowledged in place.
//
//perf:hotpath
func table() *[256]float64 {
	//lint:ignore perfescape the table is built once and cached by the caller
	t := new([256]float64)
	return t
}
