// Package hotalloc is a fixture for the hotalloc analyzer. Expectation
// comments are of the form: want `regexp` (one per expected finding on the
// line).
package hotalloc

import "blocktri/internal/mat"

// Solve is on the solve path: every mat.New* call inside it is a finding.
func Solve(b *mat.Matrix) *mat.Matrix {
	x := mat.New(b.Rows, b.Cols) // want `mat\.New allocates inside solve-phase function Solve`
	ws := mat.NewWorkspace()     // want `mat\.NewWorkspace allocates inside solve-phase function Solve`
	tmp := ws.Get(b.Rows, b.Cols)
	x.CopyFrom(tmp)
	return x
}

// solveRank matches case-insensitively, and nested function literals run
// once per solve so they are scanned too.
func solveRank(b *mat.Matrix) {
	body := func() *mat.Matrix {
		return mat.NewFromSlice(1, 1, []float64{0}) // want `mat\.NewFromSlice allocates inside solve-phase function solveRank`
	}
	_ = body
}

// SolveTo is the reuse path done right: workspace checkouts are not
// allocations, so nothing is reported.
func SolveTo(ws *mat.Workspace, x, b *mat.Matrix) {
	ws.Reset()
	tmp := ws.GetNoClear(b.Rows, b.Cols)
	tmp.CopyFrom(b)
	x.CopyFrom(tmp)
}

// Factor is factor-phase code: it may allocate freely, so no finding.
func Factor(n int) *mat.Matrix {
	return mat.New(n, n)
}

// solveWrapped carries the documented escape hatch: the finding is produced
// but suppressed, so no want comment.
func solveWrapped(b *mat.Matrix) *mat.Matrix {
	//lint:ignore hotalloc the wrapper returns a caller-owned result
	return mat.New(b.Rows, b.Cols)
}

// solvePanel packs a transfer block on the solve path: NewPackedA allocates
// the panel storage, so it is a finding — the factor phase should have
// packed into an arena with PackAInto instead.
func solvePanel(t, y *mat.Matrix) {
	pa := mat.NewPackedA(1, t) // want `mat\.NewPackedA allocates inside solve-phase function solvePanel`
	mat.MulAddPacked(y, pa, y, nil)
}
