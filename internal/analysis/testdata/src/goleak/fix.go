// Package goleak is a fixture for the goleak analyzer. Expectation comments
// are of the form: want `regexp` (one per expected finding on the line).
// Wants reflect the default interprocedural run; the summary-only delta is
// pinned by TestInterproceduralDelta.
package goleak

import (
	"context"
	"sync"
)

func work(int) {}

// untied loops forever with nothing that could ever stop it.
func untied() {
	go func() { // want `goroutine has no termination tie`
		for {
			work(0)
		}
	}()
}

// ctxTied observes ctx.Done: the context's owner bounds its lifetime.
func ctxTied(ctx context.Context, ch chan int) {
	go func() {
		for {
			select {
			case <-ctx.Done():
				return
			case v := <-ch:
				work(v)
			}
		}
	}()
}

// closed drains a channel this function closes before returning.
func closed() {
	ch := make(chan int)
	go func() {
		for v := range ch {
			work(v)
		}
	}()
	ch <- 1
	close(ch)
}

// neverClosed owes the close and never delivers it.
func neverClosed() {
	ch := make(chan int)
	go func() { // want `goroutine is never signalled to stop: close\(ch\) runs on no path to return`
		for v := range ch {
			work(v)
		}
	}()
}

// partialClose only closes on one branch.
func partialClose(flag bool) {
	ch := make(chan int)
	go func() { // want `goroutine is signalled to stop on some paths but not all: close\(ch\) must run on every path to return`
		for v := range ch {
			work(v)
		}
	}()
	if flag {
		close(ch)
	}
}

// joined is the WaitGroup discipline done right.
func joined(n int) {
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			work(i)
		}()
	}
	wg.Wait()
}

// notJoined calls Done into a WaitGroup nobody Waits on.
func notJoined() {
	var wg sync.WaitGroup
	wg.Add(1)
	go func() { // want `goroutine is never signalled to stop: wg\.Wait\(\) runs on no path to return`
		defer wg.Done()
		work(1)
	}()
}

// pump is spawned by name below; its range-over-chan termination tie maps
// back to the caller's argument.
func pump(ch chan int) {
	for v := range ch {
		work(v)
	}
}

func namedClosed() {
	ch := make(chan int)
	go pump(ch)
	close(ch)
}

func namedLeak() {
	ch := make(chan int)
	go pump(ch) // want `goroutine running pump is never signalled to stop: close\(ch\) runs on no path to return`
}

// managed blocks on a field the spawning scope cannot signal: its owner is
// assumed to stop it.
type box struct {
	stop chan struct{}
}

func managed(b *box) {
	go func() {
		for {
			select {
			case <-b.stop:
				return
			}
		}
	}()
}

// escapes hands the channel to an untracked callee, which takes the signal
// obligation with it.
func escapes(sink func(chan int)) {
	ch := make(chan int)
	go func() {
		for v := range ch {
			work(v)
		}
	}()
	sink(ch)
}

// gate is the one-shot wake idiom: a send satisfies a receive tie exactly
// like a close does.
func gate() {
	g := make(chan struct{})
	go func() {
		<-g
		work(1)
	}()
	g <- struct{}{}
}

// spawnPump launches a goroutine tied to its own parameter; the summary
// Spawns facet exports the close obligation to every call site.
func spawnPump(ch chan int) {
	go func() {
		for v := range ch {
			work(v)
		}
	}()
}

func helperClosed() {
	ch := make(chan int)
	spawnPump(ch)
	close(ch)
}

// helperLeak is only visible interprocedurally: without spawnPump's summary
// the call is just a hand-off (see TestInterproceduralDelta).
func helperLeak() {
	ch := make(chan int)
	spawnPump(ch) // want `goroutine spawned by spawnPump is never signalled to stop: close\(ch\) runs on no path to return`
}
