// Package poolrelease is a fixture for the poolrelease analyzer. Expectation
// comments are of the form: want `regexp` (one per expected finding on the
// line).
package poolrelease

import "blocktri/internal/comm"

// leak binds a pooled payload and never returns it to the pool.
func leak(c *comm.Comm) float64 {
	buf := c.Recv(0, 1) // want `pooled payload from comm\.Recv is never Released`
	return buf[0]
}

// released is the documented hot-path idiom.
func released(c *comm.Comm) float64 {
	buf := c.Recv(0, 1)
	v := buf[0]
	c.Release(buf)
	return v
}

// deferred releases through defer, which runs on every exit path.
func deferred(c *comm.Comm) float64 {
	buf := c.Recv(0, 1)
	defer c.Release(buf)
	return buf[0]
}

// partial releases on one branch only.
func partial(c *comm.Comm, flag bool) float64 {
	buf := c.Recv(0, 1) // want `pooled payload from comm\.Recv is Released on some paths but not all`
	v := buf[0]
	if flag {
		c.Release(buf)
	}
	return v
}

// double poisons the pool with the same buffer twice.
func double(c *comm.Comm) float64 {
	buf := c.Recv(0, 1)
	v := buf[0]
	c.Release(buf)
	c.Release(buf) // want `pooled payload "buf" may already have been Released`
	return v
}

// loopReleased recycles the buffer every iteration.
func loopReleased(c *comm.Comm, n int) float64 {
	var sum float64
	for i := 0; i < n; i++ {
		buf := c.Recv(0, 2)
		sum += buf[0]
		c.Release(buf)
	}
	return sum
}

// loopLeak drops one buffer per iteration.
func loopLeak(c *comm.Comm, n int) float64 {
	var sum float64
	for i := 0; i < n; i++ {
		buf := c.Recv(0, 3) // want `pooled payload from comm\.Recv is never Released`
		sum += buf[0]
	}
	return sum
}

// exchangeLeak: Exchange returns Recv's pooled buffer too.
func exchangeLeak(c *comm.Comm, data []float64) float64 {
	got := c.Exchange(1, 6, data) // want `pooled payload from comm\.Exchange is never Released`
	return got[0]
}

// handoff transfers ownership to the caller; the obligation leaves with it.
func handoff(c *comm.Comm) []float64 {
	buf := c.Recv(0, 4)
	return buf // ok: the caller owns the buffer now
}

// consumed passes the whole slice to a callee whose summary proves it
// releases (intraprocedurally, the hand-off alone transferred the
// obligation).
func consumed(c *comm.Comm) {
	buf := c.Recv(0, 5)
	process(c, buf) // ok: process releases on every path
}

func process(c *comm.Comm, buf []float64) {
	c.Release(buf)
}

// borrowSum only reads the payload in place; its summary keeps the caller's
// Release obligation alive.
func borrowSum(buf []float64) float64 {
	var s float64
	for _, v := range buf {
		s += v
	}
	return s
}

// leakThroughBorrow was invisible intraprocedurally: the whole-slice call
// looked like an ownership transfer, but borrowSum's summary proves the
// buffer comes back unreleased.
func leakThroughBorrow(c *comm.Comm) float64 {
	buf := c.Recv(0, 7) // want `pooled payload from comm\.Recv is never Released`
	v := borrowSum(buf)
	return v
}

// borrowThenReleased is the borrowing helper used correctly.
func borrowThenReleased(c *comm.Comm) float64 {
	buf := c.Recv(0, 8)
	v := borrowSum(buf)
	c.Release(buf)
	return v
}

// doubleViaHelper releases through process and then again directly — a
// double release only process's summary can expose.
func doubleViaHelper(c *comm.Comm) {
	buf := c.Recv(0, 9)
	process(c, buf)
	c.Release(buf) // want `pooled payload "buf" may already have been Released`
}
