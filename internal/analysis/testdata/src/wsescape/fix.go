// Package wsescape is a fixture for the wsescape analyzer. Expectation
// comments are of the form: want `regexp` (one per expected finding on the
// line).
package wsescape

import "blocktri/internal/mat"

var global *mat.Matrix

// useAfterReset reads a checkout after the arena recycled its storage.
func useAfterReset(ws *mat.Workspace, b *mat.Matrix) {
	tmp := ws.Get(b.Rows, b.Cols)
	tmp.CopyFrom(b)
	ws.Reset()
	b.CopyFrom(tmp) // want `workspace checkout "tmp" \(from ws\.Get\) is used after ws\.Reset recycled the arena`
}

// resetOnePath goes stale on the flag path only; the join still taints it.
func resetOnePath(ws *mat.Workspace, b *mat.Matrix, flag bool) {
	tmp := ws.GetNoClear(b.Rows, b.Cols)
	if flag {
		ws.Reset()
	}
	b.CopyFrom(tmp) // want `workspace checkout "tmp" \(from ws\.GetNoClear\) is used after ws\.Reset recycled the arena`
}

// loopReset reads a first-iteration checkout after the Reset at the bottom
// of the previous iteration.
func loopReset(ws *mat.Workspace, b *mat.Matrix, n int) {
	tmp := ws.Get(b.Rows, b.Cols)
	for i := 0; i < n; i++ {
		tmp.CopyFrom(b) // want `workspace checkout "tmp" \(from ws\.Get\) is used after ws\.Reset recycled the arena`
		ws.Reset()
	}
}

// resetThenCheckout is the canonical solver prologue: Reset first, check out
// after. Nothing goes stale.
func resetThenCheckout(ws *mat.Workspace, b *mat.Matrix) {
	ws.Reset()
	tmp := ws.GetNoClear(b.Rows, b.Cols)
	tmp.CopyFrom(b)
	b.CopyFrom(tmp)
}

// aliasStale follows whole-value aliases: v2 dies with v1.
func aliasStale(ws *mat.Workspace, b *mat.Matrix) {
	v1 := ws.CloneOf(b)
	v2 := v1
	ws.Reset()
	b.CopyFrom(v2) // want `workspace checkout "v2" \(from ws\.CloneOf\) is used after ws\.Reset recycled the arena`
}

// escapeReturn leaks a checkout out of the function that owns the arena.
func escapeReturn(b *mat.Matrix) *mat.Matrix {
	ws := mat.NewWorkspace()
	tmp := ws.Get(b.Rows, b.Cols)
	tmp.CopyFrom(b)
	return tmp // want `workspace checkout escapes via return from the function that owns the arena`
}

// okReturnParam may return checkouts: the caller owns the arena lifetime
// (the wsBlockOf idiom).
func okReturnParam(ws *mat.Workspace, b *mat.Matrix) *mat.Matrix {
	tmp := ws.Get(b.Rows, b.Cols)
	tmp.CopyFrom(b)
	return tmp // ok: ws is a parameter
}

// okReturnDirect returns a view of a parameter-owned arena directly.
func okReturnDirect(ws *mat.Workspace, b *mat.Matrix) *mat.Matrix {
	return ws.View(b, 0, 0, b.Rows, b.Cols) // ok: ws is a parameter
}

// escapeGlobal parks arena storage in a package-level variable.
func escapeGlobal(b *mat.Matrix) {
	ws := mat.NewWorkspace()
	global = ws.CloneOf(b) // want `workspace checkout is stored into a location that outlives the arena`
}

type holder struct{ m *mat.Matrix }

// escapePointer stores a checkout through a pointer the caller keeps.
func escapePointer(h *holder, b *mat.Matrix) {
	ws := mat.NewWorkspace()
	h.m = ws.CloneOf(b) // want `workspace checkout is stored into a location that outlives the arena`
}

// okLocalStruct stores into a frame-local value, which dies with the arena.
func okLocalStruct(b *mat.Matrix) int {
	ws := mat.NewWorkspace()
	var o holder
	o.m = ws.CloneOf(b) // ok: o does not outlive the function
	return o.m.Rows
}

// reducedBlock returns a checkout of the caller's arena; its summary ties
// the result to the workspace argument.
func reducedBlock(ws *mat.Workspace, b *mat.Matrix) *mat.Matrix {
	tmp := ws.Get(b.Rows, b.Cols)
	tmp.CopyFrom(b)
	return tmp
}

// staleViaHelper is invisible intraprocedurally: d's tie to ws exists only
// in reducedBlock's summary, and the Reset between the call and the read
// recycles d's storage.
func staleViaHelper(ws *mat.Workspace, b *mat.Matrix) {
	d := reducedBlock(ws, b)
	ws.Reset()
	b.CopyFrom(d) // want `workspace checkout "d" \(from ws\.reducedBlock\) is used after ws\.Reset recycled the arena`
}

// freshViaHelper checks out through the helper after the Reset; nothing is
// stale.
func freshViaHelper(ws *mat.Workspace, b *mat.Matrix) {
	ws.Reset()
	d := reducedBlock(ws, b)
	b.CopyFrom(d)
}

// luEscape covers the two-result LU checkout.
func luEscape(a *mat.Matrix) *mat.LU {
	ws := mat.NewWorkspace()
	lu, err := ws.LU(a)
	if err != nil {
		return nil
	}
	return lu // want `workspace checkout escapes via return from the function that owns the arena`
}
