// Package callgraph is a fixture for the interprocedural layer itself:
// call-graph construction, SCC condensation order, and function summaries.
// It is not tied to one analyzer, so it carries no want comments.
package callgraph

import "blocktri/internal/mat"

// chain: top -> middle -> leaf, declared top-first so reverse-topological
// SCC order must invert the source order.
func top(ws *mat.Workspace, m int) *mat.Matrix    { return middle(ws, m) }
func middle(ws *mat.Workspace, m int) *mat.Matrix { return leaf(ws, m) }
func leaf(ws *mat.Workspace, m int) *mat.Matrix   { return ws.Get(2*m, m) }

// selfLoop is directly recursive: a one-node recursive SCC.
func selfLoop(n int) int {
	if n <= 0 {
		return 0
	}
	return selfLoop(n - 1)
}

// pingA and pingB are mutually recursive: a two-node SCC.
func pingA(n int) int {
	if n <= 0 {
		return 0
	}
	return pingB(n - 1)
}

func pingB(n int) int { return pingA(n - 1) }

// viaValue references leaf as a function value; the graph must keep the
// edge even without a direct call.
func viaValue(ws *mat.Workspace, m int) *mat.Matrix {
	f := leaf
	return f(ws, m)
}
