// Fixture kernels for the asmcheck analyzer. Each TEXT block pairs with a
// declaration in fix.go; the want comments anchor the expected findings.
// None of this is ever assembled or executed — testdata is outside the
// module build — so the bodies only need to parse.

#include "textflag.h"

// The conforming kernel: frame $0-24 matches (dst, x *float64, a float64),
// every FP reference resolves at its ABI0 offset, NOSPLIT is set, and only
// X registers are touched so no VZEROUPPER is owed.
TEXT ·axpyOK(SB), NOSPLIT, $0-24
	MOVQ  dst+0(FP), DI
	MOVQ  x+8(FP), SI
	MOVSD a+16(FP), X0
	MOVSD (SI), X1
	MULSD X0, X1
	ADDSD (DI), X1
	MOVSD X1, (DI)
	RET

// (p *float64, n int) int needs 16 bytes of arguments plus an 8-byte
// result: 24, not the declared 16.
TEXT ·badFrame(SB), NOSPLIT, $0-16 // want `TEXT ·badFrame declares argument size 16 but the ABI0 layout of its Go signature needs 24 bytes`
	MOVQ p+0(FP), DI
	MOVQ n+8(FP), AX
	RET

TEXT ·badOffset(SB), NOSPLIT, $0-24
	MOVQ p+0(FP), DI
	MOVQ n+4(FP), CX // want `n\+4\(FP\) disagrees with the ABI0 layout: n lives at offset 8`
	MOVQ m+16(FP), DX // want `m\+16\(FP\) does not name a parameter or result of ·badOffset`
	RET

// Three violations in one block: no NOSPLIT, a callee-saved clobber, and a
// return with dirty upper ZMM state.
TEXT ·dirtyVec(SB), $0-8 // want `TEXT ·dirtyVec is missing NOSPLIT`
	MOVQ    p+0(FP), DI
	VMOVUPD (DI), Z0
	VADDPD  Z0, Z0, Z1
	VMOVUPD Z1, (DI)
	MOVQ    DI, R15 // want `MOVQ writes R15, the dynamic-linking scratch register`
	RET // want `RET without VZEROUPPER in ·dirtyVec`

// noEsc's block is clean; its finding is on the Go declaration, which lacks
// go:noescape despite the pointer parameter.
TEXT ·noEsc(SB), NOSPLIT, $0-16
	MOVQ p+0(FP), DI
	MOVQ n+8(FP), CX
	RET

// No declaration in fix.go pairs with this block.
TEXT ·orphan(SB), NOSPLIT, $0-0 // want `TEXT ·orphan has no body-less Go declaration in package asmcheck`
	RET

// A TEXT directive the parser cannot understand must surface, not skip.
TEXT ·mangled(SB) // want `unparseable TEXT directive`
	RET
