// Package asmcheck exercises the assembly-contract analyzer: every TEXT
// block in kern_amd64.s is verified against the declarations below (ABI0
// frame layout, FP symbol offsets, NOSPLIT, VZEROUPPER discipline,
// callee-saved registers), and the two directions of the stub/TEXT pairing
// are both checked.
package asmcheck

// axpyOK is the fully conforming kernel: correct frame, offsets, NOSPLIT,
// and no vector state left dirty.
//
//go:noescape
func axpyOK(dst, x *float64, a float64)

// badFrame's TEXT line declares the wrong argument size.
//
//go:noescape
func badFrame(p *float64, n int) int

// badOffset's body addresses its arguments at the wrong offsets.
//
//go:noescape
func badOffset(p *float64, n int) int

// dirtyVec is missing NOSPLIT, clobbers R15 and returns with dirty upper
// ZMM state.
//
//go:noescape
func dirtyVec(p *float64)

// noEsc takes a pointer but is not marked go:noescape, so every buffer
// passed to it is forced to the heap.
func noEsc(p *float64, n int) // want `assembly stub noEsc takes pointers but is not marked //go:noescape`

// missingBody has no TEXT block at all.
//
//go:noescape
func missingBody(p *float64) int // want `assembly stub missingBody has no TEXT block in the package's .s files`
