// Package errdiscard is a fixture for the errdiscard analyzer. Expectation
// comments are of the form: want `regexp` (one per expected finding on the
// line).
package errdiscard

import (
	"blocktri/internal/comm"
	"blocktri/internal/harness"
	"blocktri/internal/mat"
)

func body(c *comm.Comm) {}

// discarded drops the World.Run result on the floor.
func discarded(w *comm.World) {
	w.Run(body) // want `the error returned by comm\.World\.Run is discarded`
}

// blank assigns the error to the blank identifier.
func blank(w *comm.World) {
	_ = w.Run(body) // want `the error returned by comm\.World\.Run is assigned to _ and dropped`
}

// checkedThen reads the error in the condition; the then branch handles it.
func checkedThen(w *comm.World) error {
	err := w.Run(body) // ok: checked below
	if err != nil {
		return err
	}
	return nil
}

// checkedElse reads the error in the condition; the else branch handles it.
func checkedElse(w *comm.World) error {
	err := w.Run(body) // ok: the condition read checks it on both branches
	if err == nil {
		return nil
	} else {
		return err
	}
}

// checkedOnePath only looks at the error when flag is set; the other path
// reaches the function exit with the error still pending.
func checkedOnePath(w *comm.World, flag bool) {
	err := w.Run(body) // want `the error returned by comm\.World\.Run is assigned but never checked`
	if flag {
		if err != nil {
			println("run failed")
		}
	}
}

// overwritten rebinds err while the first error is still unchecked.
func overwritten(w *comm.World) error {
	err := w.Run(body) // want `the error returned by comm\.World\.Run is overwritten before being checked`
	err = w.Run(body)
	return err
}

// loopOverwrite loses every iteration's error except the last.
func loopOverwrite(w *comm.World, n int) error {
	var err error
	for i := 0; i < n; i++ {
		err = w.Run(body) // want `the error returned by comm\.World\.Run is overwritten before being checked`
	}
	return err
}

// loopChecked is the loop done right: checked before the next iteration.
func loopChecked(w *comm.World, n int) error {
	for i := 0; i < n; i++ {
		if err := w.Run(body); err != nil {
			return err
		}
	}
	return nil
}

// decoderChecked threads the Try-decoder error properly.
func decoderChecked(payload []float64) *mat.Matrix {
	m, err := comm.TryDecodeMatrix(payload)
	if err != nil {
		return nil
	}
	return m
}

// decoderBlank silently drops a malformed-payload report.
func decoderBlank(payload []float64) *mat.Matrix {
	m, _ := comm.TryDecodeMatrix(payload) // want `the error returned by comm\.TryDecodeMatrix is assigned to _ and dropped`
	return m
}

// runWrapped forwards World.Run's result; its summary labels the returned
// error with its origin.
func runWrapped(w *comm.World) error {
	return w.Run(body)
}

// discardViaHelper drops the forwarded error: only runWrapped's summary
// connects the call to World.Run.
func discardViaHelper(w *comm.World) {
	runWrapped(w) // want `the error returned by comm\.World\.Run \(via runWrapped\) is discarded`
}

// checkedViaHelper handles the forwarded error; no finding.
func checkedViaHelper(w *comm.World) error {
	if err := runWrapped(w); err != nil {
		return err
	}
	return nil
}

// experimentDiscard ignores the outcome of a whole experiment run.
func experimentDiscard(e harness.Experiment) {
	e.Run(true) // want `the error returned by harness\.Experiment\.Run is discarded`
}

// experimentChecked is the harness idiom.
func experimentChecked(e harness.Experiment) error {
	tables, err := e.Run(true)
	if err != nil {
		return err
	}
	_ = tables
	return nil
}
