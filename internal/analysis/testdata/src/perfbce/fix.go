// Package perfbce exercises the compiler-evidence bounds-check contract:
// //perf:hotloop asserts the SSA backend eliminated every bounds check in
// the loop, and the finding for a broken contract anchors on the annotation
// line itself (so a lint:ignore directly above the annotation suppresses
// the whole loop).
package perfbce

// Sum indexes xs with data-dependent values: the prover cannot bound i, so
// one IsInBounds survives and the contract fails.
func Sum(xs []float64, idx []int) float64 {
	var s float64
	//perf:hotloop // want `1 bounds check\(s\) survive in //perf:hotloop`
	for _, i := range idx {
		s += xs[i]
	}
	return s
}

// Scale ranges over the slice it indexes; the contract holds.
func Scale(xs []float64, a float64) {
	//perf:hotloop
	for i := range xs {
		xs[i] *= a
	}
}

// Gather's indirection is the point; the surviving checks are acknowledged
// by the directive above the annotation.
func Gather(dst, src []float64, perm []int) {
	//lint:ignore perfbce the permutation indirection is the point of the gather; callers validate perm
	//perf:hotloop
	for i, j := range perm {
		dst[i] = src[j]
	}
}

// Stray demonstrates the guard against annotations that guard nothing.
func Stray(n int) int {
	//perf:hotloop // want `//perf:hotloop is not directly above a for statement`
	m := n * 2
	return m
}
