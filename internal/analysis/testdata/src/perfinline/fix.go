// Package perfinline exercises the compiler-evidence inlining contract:
// //perf:inline asserts the compiler records a positive inlining verdict
// for the annotated helper.
package perfinline

// Tiny is far under the inliner budget; the contract holds.
//
//perf:inline
func Tiny(a, b int) int {
	return a*64 + b
}

// opaque is deliberately kept out of the inliner so calls to it carry the
// full call cost in the caller's inlining budget.
//
//go:noinline
func opaque(x int) int {
	return x + 1
}

// Big pays two full call costs and blows the budget: the compiler declines
// with a cost-versus-budget verdict.
//
//perf:inline
func Big(x int) int { // want `//perf:inline on Big but the compiler declines: cost \d+ exceeds budget \d+`
	return opaque(x) + opaque(x+1)
}
