// Package commshape is a fixture for the commshape analyzer. Expectation
// comments are of the form: want `regexp` (one per expected finding on the
// line).
package commshape

import "blocktri/internal/comm"

const (
	tagScan   = 1
	tagBroken = 2
	tagHalo   = 3
	tagSelf   = 4
	tagMirror = 5
)

// koggeStone is the butterfly schedule done right: Send(r+dist) pairs with
// Recv(r-dist) under the same tag and structurally identical offset.
func koggeStone(c *comm.Comm, enc []float64) {
	r, p := c.Rank(), c.Size()
	for dist := 1; dist < p; dist *= 2 {
		if r+dist < p {
			c.Send(r+dist, tagScan, enc) // ok: Recv(r-dist, tagScan) below
		}
		if r-dist >= 0 {
			_ = c.Recv(r-dist, tagScan)
		}
	}
}

// mirror covers the Brent-Kung down-sweep direction: a Send toward lower
// ranks pairs with a Recv from higher ranks.
func mirror(c *comm.Comm, enc []float64, d int) {
	r := c.Rank()
	c.Send(r-d, tagMirror, enc) // ok: Recv(r+d, tagMirror) below
	_ = c.Recv(r+d, tagMirror)
}

// broken sends up and receives from up: no rank runs the mirror line, so
// both operations are unpaired.
func broken(c *comm.Comm, enc []float64) {
	r, p := c.Rank(), c.Size()
	if r+1 < p {
		c.Send(r+1, tagBroken, enc) // want `Send to rank r \+ 1 with tag tagBroken has no matching Recv from rank r - 1`
	}
	if r+1 < p {
		_ = c.Recv(r+1, tagBroken) // want `Recv from rank r \+ 1 with tag tagBroken has no matching Send to rank r - 1`
	}
}

// selfSend parks a message in the sender's own mailbox.
func selfSend(c *comm.Comm, enc []float64) {
	r := c.Rank()
	c.Send(r, tagSelf, enc) // want `Send targets the sending rank itself`
	_ = c.Recv(r, tagSelf)
}

// nonAffine destinations (halo-plan map ranges, modulo rings) make the
// whole tag group non-affine; commshape must skip it, not guess.
func nonAffine(c *comm.Comm, plan map[int][]float64) {
	r := c.Rank()
	for q, data := range plan {
		c.Send(q, tagHalo, data) // ok: non-affine, conservatively skipped
	}
	_ = c.Recv((r*2)%3, tagHalo) // ok: same skipped group
}

// forwarded pairs a chain scan under a forwarded tag parameter.
func forwarded(c *comm.Comm, tag int, enc []float64) {
	r, p := c.Rank(), c.Size()
	if r+1 < p {
		c.Send(r+1, tag, enc) // ok: chain pairing under the tag parameter
	}
	if r-1 >= 0 {
		_ = c.Recv(r-1, tag)
	}
}

// recvLower performs the receive half of a butterfly step; its summary
// carries the site into the caller's pairing.
func recvLower(c *comm.Comm, r, dist, tag int) []float64 {
	return c.Recv(r-dist, tag)
}

// pairedThroughHelper is complete only interprocedurally: the Send's mirror
// Recv(r-dist) lives inside recvLower, and flagging the Send as unpaired —
// the intraprocedural reading — would be a false positive.
func pairedThroughHelper(c *comm.Comm, enc []float64) {
	r, p := c.Rank(), c.Size()
	for dist := 1; dist < p; dist *= 2 {
		if r+dist < p {
			c.Send(r+dist, tagScan, enc) // ok: recvLower supplies Recv(r-dist, tagScan)
		}
		if r-dist >= 0 {
			_ = recvLower(c, r, dist, tagScan)
		}
	}
}

// exchange is symmetric by construction and is never flagged.
func exchange(c *comm.Comm, data []float64) {
	r, p := c.Rank(), c.Size()
	partner := (r + p/2) % p
	_ = c.Exchange(partner, tagScan, data) // ok: pairs with itself
}
