// Package blockshape is a fixture for the blockshape analyzer: symbolic
// shape checking of mat call sites, including dimensions that only a
// function summary can see.
package blockshape

import "blocktri/internal/mat"

// badMulDirect multiplies a (2m x 2m) block by an (m x k) block: the inner
// dimensions differ by a factor of two for every positive m.
func badMulDirect(ws *mat.Workspace, m, k int) {
	f := ws.Get(2*m, 2*m)
	a := ws.Get(m, k)
	dst := ws.Get(2*m, k)
	mat.Mul(dst, f, a) // want `mat\.Mul shape mismatch: a\.Cols = 2\*m but b\.Rows = m`
}

// doubledSquare builds the doubled reduced block; its summary records the
// (2m x 2m) shape in terms of the caller's arguments.
func doubledSquare(ws *mat.Workspace, m int) *mat.Matrix {
	return ws.Get(2*m, 2*m)
}

// badMulViaSummary is shape-unknowable intraprocedurally: only the summary
// of doubledSquare reveals that f is 2m wide while a is m tall.
func badMulViaSummary(ws *mat.Workspace, m int) {
	f := doubledSquare(ws, m)
	a := ws.Get(m, m)
	dst := ws.Get(2*m, m)
	mat.Mul(dst, f, a) // want `mat\.Mul shape mismatch: a\.Cols = 2\*m but b\.Rows = m`
}

// rhsBlock builds a multi-RHS block of the wrong height for its caller's
// factorization.
func rhsBlock(ws *mat.Workspace, m, k int) *mat.Matrix {
	return ws.Get(2*m, k)
}

// badSolveToViaSummary factors an (m x m) block and back-substitutes a
// summary-shaped (2m x k) right-hand side into it.
func badSolveToViaSummary(ws *mat.Workspace, m, k int) error {
	a := ws.Get(m, m)
	lu, err := ws.LU(a)
	if err != nil {
		return err
	}
	b := rhsBlock(ws, m, k)
	x := ws.Get(m, k)
	lu.SolveTo(x, b) // want `LU\.SolveTo shape mismatch: b\.Rows = 2\*m but LU order = m`
	return nil
}

// badSolveRows solves against a right-hand side that is provably one row
// short.
func badSolveRows(ws *mat.Workspace, m int) error {
	a := ws.Get(m, m)
	b := ws.Get(m-1, 1)
	x, err := mat.Solve(a, b) // want `mat\.Solve shape mismatch: a\.Rows = m but b\.Rows = m - 1`
	_ = x
	return err
}

// notSquare factors a provably rectangular block.
func notSquare(ws *mat.Workspace, m int) {
	a := ws.Get(2*m, m)
	lu, err := ws.LU(a) // want `Workspace\.LU shape mismatch: a rows = 2\*m but a cols = m`
	_, _ = lu, err
}

// mixedConstant multiplies a block whose inner dimension is the literal 4
// against a symbolic one — not provably wrong, but suspicious enough to
// flag.
func mixedConstant(ws *mat.Workspace, m int) {
	f := ws.Get(m, 4)
	g := ws.Get(m, 1)
	dst := ws.Get(m, 1)
	mat.Mul(dst, f, g) // want `mat\.Mul mixes a constant with a symbolic dimension: a\.Cols = 4 but b\.Rows = m`
}

// badCopy copies between provably different widths.
func badCopy(ws *mat.Workspace, m, k int) {
	dst := ws.Get(m, k)
	src := ws.Get(m, k+1)
	dst.CopyFrom(src) // want `Matrix\.CopyFrom shape mismatch: dst cols = k but src cols = k \+ 1`
}

// conformant is the negative space: a fully checked solve chain with no
// findings.
func conformant(ws *mat.Workspace, m, k int) error {
	a := ws.Get(m, m)
	b := ws.Get(m, k)
	dst := ws.Get(m, k)
	mat.Mul(dst, a, b)
	mat.MulAdd(dst, a, b)
	lu, err := mat.Factor(a)
	if err != nil {
		return err
	}
	x := lu.Solve(b)
	dst.CopyFrom(x)
	mat.Add(dst, dst, x)
	lu.SolveTo(dst, b)
	return nil
}

// conformantViaSummary threads a helper-built block through a conformant
// multiply: the summary proves the inner dimensions agree.
func conformantViaSummary(ws *mat.Workspace, m, k int) {
	f := rhsBlock(ws, m, k) // (2m x k)
	g := ws.Get(k, m)
	dst := ws.Get(2*m, m)
	mat.Mul(dst, f, g)
}

// rebindScrubbed writes the dimension variable between checkout and use:
// every fact derived from the old m is invalidated, so nothing is provable
// and nothing is reported.
func rebindScrubbed(ws *mat.Workspace, m, k int) {
	f := ws.Get(m, k)
	m = 2 * m
	g := ws.Get(m, k)
	dst := ws.Get(m, k)
	mat.Mul(dst, f, g)
}

// joinAgrees checks that shapes surviving a join stay comparable: both arms
// build the same (m x m) block.
func joinAgrees(ws *mat.Workspace, m int, flag bool) {
	var f *mat.Matrix
	if flag {
		f = ws.Get(m, m)
	} else {
		f = ws.GetNoClear(m, m)
	}
	g := ws.Get(2*m, m)
	h := ws.Get(m, m)
	mat.Mul(g, f, h) // want `mat\.Mul shape mismatch: dst\.Rows = 2\*m but a\.Rows = m`
}

// badMulAddPacked packs a (2m x 2m) transfer block and multiplies it
// against an (m x k) panel: the pack froze a's column count as K, so the
// inner dimensions are provably off by a factor of two.
func badMulAddPacked(ws *mat.Workspace, m, k int) {
	a := ws.Get(2*m, 2*m)
	pa := mat.NewPackedA(1, a)
	b := ws.Get(m, k)
	dst := ws.Get(2*m, k)
	mat.MulAddPacked(dst, pa, b, nil) // want `mat\.MulAddPacked shape mismatch: pa\.K = 2\*m but b\.Rows = m`
}

// badMulAddPackedInto is the arena variant: PackAInto freezes the same
// shape, and the destination height disagrees with the panel height.
func badMulAddPackedInto(ws *mat.Workspace, m, k int) {
	a := ws.Get(m, m)
	buf := make([]float64, mat.PackALen(m, m))
	pa := mat.PackAInto(buf, -1, a)
	b := ws.Get(m, k)
	dst := ws.Get(2*m, k)
	mat.MulAddPacked(dst, pa, b, nil) // want `mat\.MulAddPacked shape mismatch: dst\.Rows = 2\*m but pa\.Rows = m`
}

// goodMulAddPacked is the panelized solve-phase idiom done right: nothing
// is reported, including through the Rows()/K() accessors.
func goodMulAddPacked(ws *mat.Workspace, m, k int) {
	a := ws.Get(m, 2*m)
	pa := mat.NewPackedA(1, a)
	b := ws.Get(2*m, k)
	dst := ws.Get(pa.Rows(), k)
	mat.MulAddPacked(dst, pa, b, nil)
}
