// Package commlock is a fixture for the commlock analyzer.
package commlock

import (
	"sync"

	"blocktri/internal/comm"
)

type state struct {
	mu   sync.Mutex
	data []float64
}

func lockedRecv(c *comm.Comm, s *state) {
	s.mu.Lock()
	s.data = c.Recv(0, 7) // want `comm\.Recv while s\.mu is locked`
	s.mu.Unlock()
}

func deferredUnlock(c *comm.Comm, s *state) {
	s.mu.Lock()
	defer s.mu.Unlock()
	c.Barrier() // want `comm\.Barrier while s\.mu is locked`
}

func readLocked(c *comm.Comm, data []float64) []float64 {
	var rw sync.RWMutex
	rw.RLock()
	out := c.Allreduce(data, comm.OpSum) // want `comm\.Allreduce while rw is locked`
	rw.RUnlock()
	return out
}

func nonblockingOK(c *comm.Comm, s *state) {
	s.mu.Lock()
	c.ISend(1, 7, s.data) // ok: ISend posts without blocking
	s.mu.Unlock()
}

func unlockedOK(c *comm.Comm, s *state) {
	s.mu.Lock()
	s.data = append(s.data, 1)
	s.mu.Unlock()
	s.data = c.Recv(0, 7) // ok: lock released before the receive
}
