package alpha

import "brokencycle/beta"

var A = beta.B
