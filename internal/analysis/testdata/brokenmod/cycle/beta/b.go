package beta

import "brokencycle/alpha"

var B = alpha.A
