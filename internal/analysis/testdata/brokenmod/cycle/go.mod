module brokencycle

go 1.21
