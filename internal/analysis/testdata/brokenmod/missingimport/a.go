// Package missingimport imports a module-local package that has no source
// directory; the loader must say so instead of panicking mid-walk.
package missingimport

import "brokenmod/sub"

var _ = sub.X
