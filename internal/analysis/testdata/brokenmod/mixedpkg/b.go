package beta

var B = 2
