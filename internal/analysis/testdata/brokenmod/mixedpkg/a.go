package alpha

var A = 1
