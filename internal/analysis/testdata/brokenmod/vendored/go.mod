module vendored

go 1.21
