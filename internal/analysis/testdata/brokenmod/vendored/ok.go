// Package vendored is a well-formed root package; the vendor tree next to
// it is full of garbage the loader must never read.
package vendored

var OK = true
