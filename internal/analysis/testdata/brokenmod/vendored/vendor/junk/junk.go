package junk

this is not Go at all {{{
