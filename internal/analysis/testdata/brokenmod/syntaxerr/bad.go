// Package syntaxerr fails to parse: the brace never closes.
package syntaxerr

func oops() {
