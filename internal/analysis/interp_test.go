package analysis

import (
	"go/types"
	"path/filepath"
	"testing"
)

func loadNamedFixture(t *testing.T, name string) *Module {
	t.Helper()
	host := hostModule(t)
	fix, err := host.LoadFixture(filepath.Join("testdata", "src", name), "fix/"+name)
	if err != nil {
		t.Fatalf("loading fixture %s: %v", name, err)
	}
	return fix
}

func fixturePkg(t *testing.T, m *Module, path string) *Package {
	t.Helper()
	for _, p := range m.Pkgs {
		if p.Path == path {
			return p
		}
	}
	t.Fatalf("package %s not in fixture module", path)
	return nil
}

func funcNamed(t *testing.T, pkg *Package, name string) *types.Func {
	t.Helper()
	obj := pkg.Pkg.Scope().Lookup(name)
	f, ok := obj.(*types.Func)
	if !ok {
		t.Fatalf("function %s not found in %s", name, pkg.Path)
	}
	return f
}

// TestCallGraphStructure checks the resolved edges and the condensation
// order on the callgraph fixture: callees come before callers, recursion
// forms the right SCCs, and function-value references count as edges.
func TestCallGraphStructure(t *testing.T) {
	fix := loadNamedFixture(t, "callgraph")
	pkg := fixturePkg(t, fix, "fix/callgraph")
	g := buildCallGraph(pkg)

	node := func(name string) *FuncNode {
		n := g.ByObj[funcNamed(t, pkg, name)]
		if n == nil {
			t.Fatalf("no call-graph node for %s", name)
		}
		return n
	}
	hasEdge := func(from, to string) bool {
		for _, c := range node(from).Callees {
			if c == node(to) {
				return true
			}
		}
		return false
	}
	for _, e := range [][2]string{{"top", "middle"}, {"middle", "leaf"}, {"viaValue", "leaf"},
		{"selfLoop", "selfLoop"}, {"pingA", "pingB"}, {"pingB", "pingA"}} {
		if !hasEdge(e[0], e[1]) {
			t.Errorf("missing call edge %s -> %s", e[0], e[1])
		}
	}

	sccIndex := make(map[*FuncNode]int)
	for i, scc := range g.SCCs {
		for _, n := range scc {
			sccIndex[n] = i
		}
	}
	// Reverse-topological: every callee's SCC is emitted no later than its
	// caller's.
	for _, n := range g.Nodes {
		for _, c := range n.Callees {
			if sccIndex[c] > sccIndex[n] {
				t.Errorf("SCC order violated: %s (scc %d) calls %s (scc %d)",
					n.Obj.Name(), sccIndex[n], c.Obj.Name(), sccIndex[c])
			}
		}
	}
	if i, j := sccIndex[node("pingA")], sccIndex[node("pingB")]; i != j {
		t.Errorf("pingA and pingB in different SCCs (%d, %d)", i, j)
	}
	for _, name := range []string{"selfLoop", "pingA"} {
		if !isRecursive(g.SCCs[sccIndex[node(name)]]) {
			t.Errorf("SCC of %s not marked recursive", name)
		}
	}
	if isRecursive(g.SCCs[sccIndex[node("leaf")]]) {
		t.Errorf("SCC of leaf wrongly marked recursive")
	}
}

// TestSummaryDims checks the dimension facet end to end: leaf constructs
// (2m x m), and the chain propagates it through two substitution layers.
func TestSummaryDims(t *testing.T) {
	fix := loadNamedFixture(t, "callgraph")
	pkg := fixturePkg(t, fix, "fix/callgraph")
	for _, name := range []string{"leaf", "middle", "top"} {
		sum := fix.calleeSummary(funcNamed(t, pkg, name))
		if sum == nil {
			t.Fatalf("no summary for %s", name)
		}
		if len(sum.Dims) != 1 || !sum.Dims[0].known() {
			t.Fatalf("%s: matrix result dims unknown", name)
		}
		rows, cols := sum.Dims[0].Rows, sum.Dims[0].Cols
		m := sumVar{svInt, 1}
		if rows.K != 0 || rows.Lin[m] != 2 || len(rows.Lin) != 1 {
			t.Errorf("%s rows = %+v, want 2*param1", name, rows)
		}
		if cols.K != 0 || cols.Lin[m] != 1 || len(cols.Lin) != 1 {
			t.Errorf("%s cols = %+v, want param1", name, cols)
		}
		if len(sum.CheckoutOf) != 1 || sum.CheckoutOf[0] != 0 {
			t.Errorf("%s CheckoutOf = %v, want [0] (checkout of ws)", name, sum.CheckoutOf)
		}
	}
}

// TestSummaryCache checks that repeated queries hit the per-package cache
// and that the stats counters move.
func TestSummaryCache(t *testing.T) {
	fix := loadNamedFixture(t, "callgraph")
	pkg := fixturePkg(t, fix, "fix/callgraph")
	leaf := funcNamed(t, pkg, "leaf")

	before := fix.SummaryRuntime()
	if fix.calleeSummary(leaf) == nil {
		t.Fatal("no summary for leaf")
	}
	mid := fix.SummaryRuntime()
	if fix.calleeSummary(leaf) == nil {
		t.Fatal("no summary for leaf on second query")
	}
	after := fix.SummaryRuntime()

	// The first query summarizes the whole package, issuing recursive
	// requests for intra-package callees along the way.
	if mid.Requests <= before.Requests {
		t.Errorf("first query: requests %d -> %d, want an increase", before.Requests, mid.Requests)
	}
	if after.InProcessHits != mid.InProcessHits+1 {
		t.Errorf("second query: in-process hits %d -> %d, want +1", mid.InProcessHits, after.InProcessHits)
	}
	if after.PackagesComputed <= before.PackagesComputed-1 {
		t.Errorf("packages computed did not advance: %+v", after)
	}
	// The fixture run used no persistent cache, so nothing was loaded.
	if after.PersistentHits != 0 || after.PackagesLoaded != 0 {
		t.Errorf("persistent counters moved without a cache: %+v", after)
	}

	// Structural stats cover the summarized packages and are deterministic.
	st := fix.SummaryStats()
	if st.Functions == 0 || st.Packages == 0 {
		t.Errorf("structural stats empty after summarization: %+v", st)
	}
}

// TestInterproceduralDelta proves each summary-consuming analyzer differs
// from its intraprocedural self on the fixture functions that motivate the
// upgrade: wsescape, poolrelease and errdiscard close false negatives (more
// findings with summaries), commshape removes a false positive (fewer).
func TestInterproceduralDelta(t *testing.T) {
	cases := []struct {
		name  string
		delta int // findings with summaries minus findings without
	}{
		{"wsescape", 1},
		{"poolrelease", 2},
		{"errdiscard", 1},
		{"commshape", -1},
		{"blockshape", 2},
		{"goleak", 1},    // helperLeak: the Spawns facet lands the obligation at the call site
		{"lockorder", 2}, // deOrder/edOrder: the cycle only closes through Locks facets
		{"ctxflow", 1},   // interpLeak: FuncSinks proves drop ignores the cancel
	}
	byName := make(map[string]*Analyzer)
	for _, a := range Analyzers() {
		byName[a.Name] = a
	}
	for _, c := range cases {
		c := c
		t.Run(c.name, func(t *testing.T) {
			a := byName[c.name]
			if a == nil {
				t.Fatalf("no analyzer named %s", c.name)
			}
			fix := loadNamedFixture(t, c.name)
			with := len(a.Run(fix))
			fix.NoInterp = true
			without := len(a.Run(fix))
			fix.NoInterp = false
			if with-without != c.delta {
				t.Errorf("%s: %d findings with summaries, %d without, delta %+d; want %+d",
					c.name, with, without, with-without, c.delta)
			}
		})
	}
}
