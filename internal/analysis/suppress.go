package analysis

import (
	"go/token"
	"strings"
)

// Suppression directives.
//
// A comment of the form
//
//	//lint:ignore analyzer1,analyzer2 reason
//
// suppresses findings from the named analyzers on the directive's own line
// (end-of-line form) and on the line immediately below it (own-line form).
// The reason is free text; writing one is strongly encouraged because a
// suppression without a rationale is indistinguishable from a silenced bug.

const ignorePrefix = "//lint:ignore"

// Suppressions records, per file and line, which analyzers are silenced.
type Suppressions struct {
	// byFile maps filename -> line -> set of analyzer names.
	byFile map[string]map[int]map[string]bool
}

// CollectSuppressions scans every comment in the module for lint:ignore
// directives.
func CollectSuppressions(m *Module) *Suppressions {
	s := &Suppressions{byFile: make(map[string]map[int]map[string]bool)}
	for _, pkg := range m.Pkgs {
		for _, file := range pkg.Files {
			for _, cg := range file.Comments {
				for _, c := range cg.List {
					names, ok := parseIgnore(c.Text)
					if !ok {
						continue
					}
					pos := m.Fset.Position(c.Pos())
					lines := s.byFile[pos.Filename]
					if lines == nil {
						lines = make(map[int]map[string]bool)
						s.byFile[pos.Filename] = lines
					}
					set := lines[pos.Line]
					if set == nil {
						set = make(map[string]bool)
						lines[pos.Line] = set
					}
					for _, n := range names {
						set[n] = true
					}
				}
			}
		}
	}
	return s
}

// parseIgnore extracts the analyzer names from a lint:ignore comment.
func parseIgnore(text string) ([]string, bool) {
	rest, ok := strings.CutPrefix(text, ignorePrefix)
	if !ok {
		return nil, false
	}
	// Require a separator so "//lint:ignoreXXX" is not a directive.
	if rest != "" && rest[0] != ' ' && rest[0] != '\t' {
		return nil, false
	}
	fields := strings.Fields(rest)
	if len(fields) == 0 {
		return nil, false
	}
	var names []string
	for _, n := range strings.Split(fields[0], ",") {
		if n = strings.TrimSpace(n); n != "" {
			names = append(names, n)
		}
	}
	return names, len(names) > 0
}

// Suppressed reports whether a finding by the named analyzer at pos is
// covered by a directive on the same line or the line above.
func (s *Suppressions) Suppressed(analyzer string, pos token.Position) bool {
	lines := s.byFile[pos.Filename]
	if lines == nil {
		return false
	}
	for _, l := range [2]int{pos.Line, pos.Line - 1} {
		if set := lines[l]; set != nil && set[analyzer] {
			return true
		}
	}
	return false
}

// FilterSuppressed drops findings covered by suppression directives and
// returns the kept findings.
func FilterSuppressed(fs []Finding, s *Suppressions) []Finding {
	out := fs[:0:0]
	for _, f := range fs {
		if !s.Suppressed(f.Analyzer, f.Pos) {
			out = append(out, f)
		}
	}
	return out
}
