package analysis

import (
	"go/token"
	"sort"
	"strings"
)

// Suppression directives.
//
// A comment of the form
//
//	//lint:ignore analyzer1,analyzer2 reason
//
// suppresses findings from the named analyzers on the directive's own line
// (end-of-line form) and on the line immediately below it (own-line form).
// The reason is free text; writing one is strongly encouraged because a
// suppression without a rationale is indistinguishable from a silenced bug.
//
// Directives are themselves checked: every run that exercises the full
// analyzer suite can ask for the directives that named an unknown analyzer
// or matched no finding (see Unused). Stale directives are worse than none —
// they read as "this line is known-bad" when the underlying finding is long
// gone — so the driver reports them under the pseudo-analyzer "suppress".

const ignorePrefix = "//lint:ignore"

// SuppressName is the pseudo-analyzer that owns findings about the
// directives themselves (unknown analyzer names, stale suppressions).
const SuppressName = "suppress"

// directive is one analyzer name from one lint:ignore comment, with a mark
// recording whether any finding was actually silenced by it.
type directive struct {
	pos  token.Position // position of the comment carrying the name
	name string         // the analyzer the directive names
	used bool           // set when Suppressed matches a finding against it
}

// Suppressions records, per file and line, which analyzers are silenced,
// and tracks which directives ever matched a finding.
type Suppressions struct {
	// byFile maps filename -> line -> analyzer name -> directive.
	byFile map[string]map[int]map[string]*directive
	// all holds every directive in collection order (deterministic: the
	// module's packages and files are sorted by the loader).
	all []*directive
}

func newSuppressions() *Suppressions {
	return &Suppressions{byFile: make(map[string]map[int]map[string]*directive)}
}

// CollectSuppressions scans every comment in the module for lint:ignore
// directives.
func CollectSuppressions(m *Module) *Suppressions {
	s := newSuppressions()
	for _, pkg := range m.Pkgs {
		s.collectPackage(m.Fset, pkg)
	}
	return s
}

// collectPackage scans one package's comments. RunLint uses it to collect
// directives per dirty package (so each cache entry carries exactly its own
// package's directives) and add replays cached ones.
func (s *Suppressions) collectPackage(fset *token.FileSet, pkg *Package) {
	for _, file := range pkg.Files {
		for _, cg := range file.Comments {
			for _, c := range cg.List {
				names, ok := parseIgnore(c.Text)
				if !ok {
					continue
				}
				pos := fset.Position(c.Pos())
				for _, n := range names {
					s.add(pos, n)
				}
			}
		}
	}
}

// add records one directive, deduplicating repeated names on a line exactly
// like collection from source does.
func (s *Suppressions) add(pos token.Position, name string) {
	lines := s.byFile[pos.Filename]
	if lines == nil {
		lines = make(map[int]map[string]*directive)
		s.byFile[pos.Filename] = lines
	}
	set := lines[pos.Line]
	if set == nil {
		set = make(map[string]*directive)
		lines[pos.Line] = set
	}
	if set[name] != nil {
		return // duplicate name on the same line
	}
	d := &directive{pos: pos, name: name}
	set[name] = d
	s.all = append(s.all, d)
}

// parseIgnore extracts the analyzer names from a lint:ignore comment.
func parseIgnore(text string) ([]string, bool) {
	rest, ok := strings.CutPrefix(text, ignorePrefix)
	if !ok {
		return nil, false
	}
	// Require a separator so "//lint:ignoreXXX" is not a directive.
	if rest != "" && rest[0] != ' ' && rest[0] != '\t' {
		return nil, false
	}
	fields := strings.Fields(rest)
	if len(fields) == 0 {
		return nil, false
	}
	var names []string
	for _, n := range strings.Split(fields[0], ",") {
		if n = strings.TrimSpace(n); n != "" {
			names = append(names, n)
		}
	}
	return names, len(names) > 0
}

// Suppressed reports whether a finding by the named analyzer at pos is
// covered by a directive on the same line or the line above, and marks the
// covering directive as used.
func (s *Suppressions) Suppressed(analyzer string, pos token.Position) bool {
	lines := s.byFile[pos.Filename]
	if lines == nil {
		return false
	}
	for _, l := range [2]int{pos.Line, pos.Line - 1} {
		if d := lines[l][analyzer]; d != nil {
			d.used = true
			return true
		}
	}
	return false
}

// FilterSuppressed drops findings covered by suppression directives and
// returns the kept findings.
func FilterSuppressed(fs []Finding, s *Suppressions) []Finding {
	out := fs[:0:0]
	for _, f := range fs {
		if !s.Suppressed(f.Analyzer, f.Pos) {
			out = append(out, f)
		}
	}
	return out
}

// Unused audits the directives after a lint run. known is the set of valid
// analyzer names; directives naming anything else are reported as typos, and
// directives that never matched a finding are reported as stale. The result
// is only meaningful when every analyzer in known actually ran, so the
// driver gates this on a full-suite invocation.
func (s *Suppressions) Unused(known map[string]bool) []Finding {
	var out []Finding
	for _, d := range s.all {
		switch {
		case !known[d.name]:
			out = append(out, Finding{
				Pos:      d.pos,
				Analyzer: SuppressName,
				Message:  "lint:ignore names unknown analyzer \"" + d.name + "\"",
			})
		case !d.used:
			out = append(out, Finding{
				Pos:      d.pos,
				Analyzer: SuppressName,
				Message:  "lint:ignore directive for \"" + d.name + "\" matches no finding; delete it",
			})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		return a.Message < b.Message
	})
	return out
}
