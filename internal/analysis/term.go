package analysis

// Linear integer terms over symbolic variables — the shared arithmetic of
// the summary dimension facet (summary.go, variables indexed by parameter)
// and the blockshape abstract interpreter (blockshape.go, variables rooted
// in local objects).
//
// A term is K + sum(Lin[v] * v). The zero value is "no value"; Known
// distinguishes the constant 0 from it. All symbolic variables denote
// matrix dimensions or block sizes, which the mat constructors require to
// be positive — provablyDifferent leans on that.

type linTerm[V comparable] struct {
	Known bool
	K     int64
	Lin   map[V]int64
}

func constTerm[V comparable](k int64) linTerm[V] { return linTerm[V]{Known: true, K: k} }

func varTerm[V comparable](v V) linTerm[V] {
	return linTerm[V]{Known: true, Lin: map[V]int64{v: 1}}
}

func (t linTerm[V]) add(o linTerm[V], sign int64) linTerm[V] {
	if !t.Known || !o.Known {
		return linTerm[V]{}
	}
	r := linTerm[V]{Known: true, K: t.K + sign*o.K}
	if len(t.Lin)+len(o.Lin) > 0 {
		r.Lin = make(map[V]int64, len(t.Lin)+len(o.Lin))
		for v, c := range t.Lin {
			r.Lin[v] = c
		}
		for v, c := range o.Lin {
			if nc := r.Lin[v] + sign*c; nc != 0 {
				r.Lin[v] = nc
			} else {
				delete(r.Lin, v)
			}
		}
		if len(r.Lin) == 0 {
			r.Lin = nil
		}
	}
	return r
}

func (t linTerm[V]) scale(k int64) linTerm[V] {
	if !t.Known {
		return linTerm[V]{}
	}
	if k == 0 {
		return constTerm[V](0)
	}
	r := linTerm[V]{Known: true, K: t.K * k}
	if len(t.Lin) > 0 {
		r.Lin = make(map[V]int64, len(t.Lin))
		for v, c := range t.Lin {
			r.Lin[v] = c * k
		}
	}
	return r
}

func (t linTerm[V]) equal(o linTerm[V]) bool {
	if t.Known != o.Known || t.K != o.K || len(t.Lin) != len(o.Lin) {
		return false
	}
	for v, c := range t.Lin {
		if o.Lin[v] != c {
			return false
		}
	}
	return true
}

// pureConst reports whether t is a known constant with no symbolic part.
func (t linTerm[V]) pureConst() bool { return t.Known && len(t.Lin) == 0 }

// provablyDifferent reports whether two known terms cannot be equal for any
// positive assignment of the symbolic variables: their difference is nonzero
// with every coefficient and the constant on the same side of zero (2m vs m
// differs because m >= 1; m vs n does not, because m - n changes sign).
func provablyDifferent[V comparable](a, b linTerm[V]) bool {
	if !a.Known || !b.Known {
		return false
	}
	d := a.add(b, -1)
	if len(d.Lin) == 0 {
		return d.K != 0
	}
	pos, neg := d.K > 0, d.K < 0
	for _, c := range d.Lin {
		if c > 0 {
			pos = true
		} else {
			neg = true
		}
	}
	return pos != neg
}
