package analysis

import (
	"encoding/json"
	"os"
	"path/filepath"
	"reflect"
	"testing"
)

// Persistent-cache tests: incremental invalidation on a synthetic fixture
// module (edit one file, only its reverse closure re-analyzes, findings stay
// byte-identical), corruption robustness (any damaged entry is a silent cold
// rebuild), schema bumps, eviction, and the persistent summary path against
// the real repository.

// fixtureModuleFiles is a four-package module with a linear dependency chain
// a <- b <- c plus an independent package d. Packages a and d each carry one
// exact float comparison, so floateq produces a deterministic finding set
// spanning both a chain member and an independent package.
var fixtureModuleFiles = map[string]string{
	"go.mod": "module fixturemod\n\ngo 1.22\n",
	"a/a.go": `package a

// Eq compares exactly on purpose: floateq must flag it.
func Eq(p, q float64) bool { return p == q }

// Leaf is the bottom of the dependency chain.
func Leaf(x int) int { return 2 * x }
`,
	"b/b.go": `package b

import "fixturemod/a"

// Mid forwards through the chain.
func Mid(x int) int { return a.Leaf(x) + 1 }
`,
	"c/c.go": `package c

import "fixturemod/b"

// Top is the top of the chain.
func Top(x int) int { return b.Mid(x) }
`,
	"d/d.go": `package d

// Near compares exactly too; independent of the a<-b<-c chain.
func Near(p, q float64) bool { return p == q }
`,
}

func writeFixtureModule(t *testing.T, files map[string]string) string {
	t.Helper()
	root := t.TempDir()
	for name, src := range files {
		path := filepath.Join(root, name)
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return root
}

func fixtureRunOptions(cacheDir string) RunOptions {
	return RunOptions{Analyzers: Analyzers(), CacheDir: cacheDir}
}

func mustRunLint(t *testing.T, root string, opts RunOptions) *RunResult {
	t.Helper()
	res, err := RunLint(root, opts)
	if err != nil {
		t.Fatalf("RunLint: %v", err)
	}
	return res
}

// TestCacheIncrementalInvalidation is the core incremental gate: a cold run
// misses everywhere, a warm run hits everywhere with identical findings, and
// editing one file re-analyzes exactly that package plus its reverse
// dependencies while the findings stay identical to an uncached cold run.
func TestCacheIncrementalInvalidation(t *testing.T) {
	root := writeFixtureModule(t, fixtureModuleFiles)
	opts := fixtureRunOptions(DefaultCacheDir(root))

	cold := mustRunLint(t, root, opts)
	if cold.Cache.Packages != 4 || cold.Cache.Misses != 4 || cold.Cache.Hits != 0 {
		t.Fatalf("cold run counters: %+v", cold.Cache)
	}
	if len(cold.Raw) != 2 {
		t.Fatalf("expected 2 floateq findings, got %d: %v", len(cold.Raw), cold.Raw)
	}

	warm := mustRunLint(t, root, opts)
	if warm.Cache.Hits != 4 || warm.Cache.Misses != 0 {
		t.Fatalf("warm run counters: %+v", warm.Cache)
	}
	if !reflect.DeepEqual(warm.Raw, cold.Raw) {
		t.Fatalf("warm findings differ from cold:\ncold: %v\nwarm: %v", cold.Raw, warm.Raw)
	}
	if warm.Summary != cold.Summary {
		t.Fatalf("warm summary stats differ: cold %+v warm %+v", cold.Summary, warm.Summary)
	}
	// A fully warm run materializes nothing: no package was parsed or
	// type-checked, so nothing was computed or loaded.
	if warm.Runtime.PackagesComputed != 0 || warm.Runtime.PackagesLoaded != 0 {
		t.Fatalf("warm run did summary work: %+v", warm.Runtime)
	}

	// Edit one file in package b: b and its reverse dependency c must
	// re-analyze; a and d must hit.
	bFile := filepath.Join(root, "b", "b.go")
	src, err := os.ReadFile(bFile)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(bFile, append(src, []byte("\n// touched\n")...), 0o644); err != nil {
		t.Fatal(err)
	}
	inc := mustRunLint(t, root, opts)
	if inc.Cache.Hits != 2 || inc.Cache.Misses != 2 {
		t.Fatalf("incremental counters after editing b: %+v (want 2 hits, 2 misses)", inc.Cache)
	}

	// Reference: the same tree analyzed with no cache at all.
	ref := mustRunLint(t, root, fixtureRunOptions(""))
	if ref.Cache.Enabled {
		t.Fatalf("uncached reference run had a cache: %+v", ref.Cache)
	}
	if !reflect.DeepEqual(inc.Raw, ref.Raw) {
		t.Fatalf("incremental findings differ from uncached cold:\ncold: %v\nincremental: %v", ref.Raw, inc.Raw)
	}
	if inc.Summary != ref.Summary {
		t.Fatalf("incremental summary stats differ: cold %+v incremental %+v", ref.Summary, inc.Summary)
	}
}

// TestCacheCorruptionFallsBackCold damages every entry in several distinct
// ways; each damaged cache must behave exactly like an empty one: no error,
// full re-analysis, identical findings.
func TestCacheCorruptionFallsBackCold(t *testing.T) {
	corruptions := []struct {
		name    string
		mangle  func(t *testing.T, path string)
		evicted bool // whether the sweep may remove the damaged file
	}{
		{"truncated", func(t *testing.T, path string) {
			data, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			if err := os.WriteFile(path, data[:len(data)/2], 0o644); err != nil {
				t.Fatal(err)
			}
		}, false},
		{"garbage", func(t *testing.T, path string) {
			if err := os.WriteFile(path, []byte("\x00\xffnot json at all{"), 0o644); err != nil {
				t.Fatal(err)
			}
		}, false},
		{"empty", func(t *testing.T, path string) {
			if err := os.WriteFile(path, nil, 0o644); err != nil {
				t.Fatal(err)
			}
		}, false},
		{"stale-key", func(t *testing.T, path string) {
			rewriteEntryJSON(t, path, func(e map[string]any) { e["key"] = "0000deadbeef" })
		}, false},
		{"old-schema", func(t *testing.T, path string) {
			rewriteEntryJSON(t, path, func(e map[string]any) { e["schema"] = cacheSchemaVersion - 1 })
		}, false},
	}
	for _, tc := range corruptions {
		t.Run(tc.name, func(t *testing.T) {
			root := writeFixtureModule(t, fixtureModuleFiles)
			opts := fixtureRunOptions(DefaultCacheDir(root))
			cold := mustRunLint(t, root, opts)

			entries, err := filepath.Glob(filepath.Join(opts.CacheDir, "*.json"))
			if err != nil || len(entries) != 4 {
				t.Fatalf("expected 4 cache entries, got %d (err %v)", len(entries), err)
			}
			for _, path := range entries {
				tc.mangle(t, path)
			}

			res := mustRunLint(t, root, opts)
			if res.Cache.Hits != 0 || res.Cache.Misses != 4 {
				t.Fatalf("damaged cache (%s) was not a full miss: %+v", tc.name, res.Cache)
			}
			if !reflect.DeepEqual(res.Raw, cold.Raw) {
				t.Fatalf("findings after %s corruption differ:\ncold: %v\nrebuilt: %v", tc.name, cold.Raw, res.Raw)
			}

			// The rebuild must have repaired the cache in place.
			again := mustRunLint(t, root, opts)
			if again.Cache.Hits != 4 {
				t.Fatalf("cache not repaired after %s corruption: %+v", tc.name, again.Cache)
			}
		})
	}
}

// rewriteEntryJSON decodes an entry file as generic JSON, applies mutate,
// and writes it back — producing well-formed JSON that must still miss.
func rewriteEntryJSON(t *testing.T, path string, mutate func(map[string]any)) {
	t.Helper()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var e map[string]any
	if err := json.Unmarshal(data, &e); err != nil {
		t.Fatal(err)
	}
	mutate(e)
	out, err := json.Marshal(e)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, out, 0o644); err != nil {
		t.Fatal(err)
	}
}

// TestCacheSchemaBumpInvalidatesAndSweeps pins the upgrade story: entries
// written under a different schema version never hit, and the sweep removes
// them (they can never become valid again).
func TestCacheSchemaBumpInvalidatesAndSweeps(t *testing.T) {
	root := writeFixtureModule(t, fixtureModuleFiles)
	opts := fixtureRunOptions(DefaultCacheDir(root))
	mustRunLint(t, root, opts)

	// Rewrite every entry as if an older binary had written it. The files
	// keep their current-config filenames, so on the next run they are
	// current-config non-hits — missed, then overwritten in place.
	entries, _ := filepath.Glob(filepath.Join(opts.CacheDir, "*.json"))
	for _, path := range entries {
		rewriteEntryJSON(t, path, func(e map[string]any) { e["schema"] = cacheSchemaVersion + 1 })
	}
	res := mustRunLint(t, root, opts)
	if res.Cache.Hits != 0 || res.Cache.Misses != 4 {
		t.Fatalf("schema-bumped entries hit: %+v", res.Cache)
	}

	// An old-schema entry under ANOTHER configuration's filename is dead
	// weight forever; the sweep must remove it.
	stray := filepath.Join(opts.CacheDir, "ffffffffffff-0000000000000000.json")
	if err := os.WriteFile(stray, []byte(`{"schema":0}`), 0o644); err != nil {
		t.Fatal(err)
	}
	res = mustRunLint(t, root, opts)
	if res.Cache.Evicted == 0 {
		t.Fatalf("old-schema stray not evicted: %+v", res.Cache)
	}
	if _, err := os.Stat(stray); !os.IsNotExist(err) {
		t.Fatalf("old-schema stray still present after sweep")
	}
}

// TestCacheEvictsDeletedPackages checks that removing a package from the
// module sweeps its now-orphaned entry.
func TestCacheEvictsDeletedPackages(t *testing.T) {
	root := writeFixtureModule(t, fixtureModuleFiles)
	opts := fixtureRunOptions(DefaultCacheDir(root))
	mustRunLint(t, root, opts)

	if err := os.RemoveAll(filepath.Join(root, "d")); err != nil {
		t.Fatal(err)
	}
	res := mustRunLint(t, root, opts)
	if res.Cache.Packages != 3 {
		t.Fatalf("expected 3 packages after deleting d, got %+v", res.Cache)
	}
	if res.Cache.Evicted != 1 {
		t.Fatalf("expected d's entry evicted, got %+v", res.Cache)
	}
	if len(res.Raw) != 1 {
		t.Fatalf("expected 1 finding after deleting d, got %v", res.Raw)
	}
}

// factsFixtureFiles is a one-package module whose //perf:hotpath annotation
// forces the compiler-fact provider to run: the boxing in Hot is a real
// heap escape, so perfescape must report exactly one raw finding and the
// persistent cache must carry the fact table between runs.
var factsFixtureFiles = map[string]string{
	"go.mod": "module factsmod\n\ngo 1.22\n",
	"hot/hot.go": `package hot

var sink any

// Hot boxes its argument on every call.
//perf:hotpath
func Hot(x float64) {
	sink = x
}
`,
}

// TestCacheFactsLifecycle pins the facts entry's whole lifecycle: computed
// once cold, untouched (not even requested) on a warm run, surviving the
// sweep, invalidated by a tree edit, and re-requested — served from disk —
// when a package entry alone is lost.
func TestCacheFactsLifecycle(t *testing.T) {
	root := writeFixtureModule(t, factsFixtureFiles)
	opts := fixtureRunOptions(DefaultCacheDir(root))

	cold := mustRunLint(t, root, opts)
	if cold.Cache.FactsMisses != 1 || cold.Cache.FactsHits != 0 {
		t.Fatalf("cold run facts counters: %+v (want exactly one toolchain run)", cold.Cache)
	}
	var escapes int
	for _, f := range cold.Raw {
		if f.Analyzer == "perfescape" {
			escapes++
		}
	}
	if escapes != 1 {
		t.Fatalf("expected 1 perfescape finding, got %d: %v", escapes, cold.Raw)
	}
	c, err := openCache(opts.CacheDir, runConfigHash(opts))
	if err != nil {
		t.Fatal(err)
	}
	factsPath := filepath.Join(opts.CacheDir, c.factsFileName())
	if _, err := os.Stat(factsPath); err != nil {
		t.Fatalf("facts entry not persisted: %v", err)
	}

	// Warm run: every package hits, so no analyzer sees a materialized
	// package and the facts are never even requested — and the sweep must
	// leave the entry in place for the next dirty run.
	warm := mustRunLint(t, root, opts)
	if warm.Cache.FactsHits != 0 || warm.Cache.FactsMisses != 0 {
		t.Fatalf("warm run requested facts: %+v", warm.Cache)
	}
	if warm.Cache.Evicted != 0 {
		t.Fatalf("warm sweep evicted files: %+v", warm.Cache)
	}
	if _, err := os.Stat(factsPath); err != nil {
		t.Fatalf("facts entry swept on a warm run: %v", err)
	}

	// Losing just the package entry (facts intact, tree unchanged) must
	// re-analyze the package with facts served from disk: a hit, no
	// toolchain run.
	if err := os.Remove(filepath.Join(opts.CacheDir, c.entryFileName("factsmod/hot"))); err != nil {
		t.Fatal(err)
	}
	replay := mustRunLint(t, root, opts)
	if replay.Cache.FactsHits != 1 || replay.Cache.FactsMisses != 0 {
		t.Fatalf("entry-only loss did not replay facts from disk: %+v", replay.Cache)
	}
	if !reflect.DeepEqual(replay.Raw, cold.Raw) {
		t.Fatalf("findings changed across the facts replay:\ncold: %v\nreplay: %v", cold.Raw, replay.Raw)
	}

	// Editing the tree invalidates the table (diagnostics may change with
	// any dependency), so the toolchain runs again.
	hotFile := filepath.Join(root, "hot", "hot.go")
	src, err := os.ReadFile(hotFile)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(hotFile, append(src, []byte("\n// touched\n")...), 0o644); err != nil {
		t.Fatal(err)
	}
	edited := mustRunLint(t, root, opts)
	if edited.Cache.FactsMisses != 1 || edited.Cache.FactsHits != 0 {
		t.Fatalf("tree edit did not invalidate the facts entry: %+v", edited.Cache)
	}
}

// TestCacheFactsRelativeVersionEviction mirrors the package-entry upgrade
// story for the facts table: an entry recorded under a different toolchain
// version, GOARCH or schema never hits (the toolchain reruns), and a facts
// file under another configuration's name is swept as dead weight.
func TestCacheFactsRelativeVersionEviction(t *testing.T) {
	mutations := []struct {
		name   string
		mutate func(e map[string]any)
	}{
		{"go-version", func(e map[string]any) { e["go_version"] = "go0.0.1" }},
		{"goarch", func(e map[string]any) { e["goarch"] = "never64" }},
		{"schema", func(e map[string]any) { e["schema"] = cacheSchemaVersion - 1 }},
		{"flags", func(e map[string]any) { e["flags"] = "-m=1" }},
		{"tree-hash", func(e map[string]any) { e["tree_hash"] = "0000deadbeef" }},
	}
	for _, tc := range mutations {
		t.Run(tc.name, func(t *testing.T) {
			root := writeFixtureModule(t, factsFixtureFiles)
			opts := fixtureRunOptions(DefaultCacheDir(root))
			mustRunLint(t, root, opts)

			c, err := openCache(opts.CacheDir, runConfigHash(opts))
			if err != nil {
				t.Fatal(err)
			}
			rewriteEntryJSON(t, filepath.Join(opts.CacheDir, c.factsFileName()), tc.mutate)
			// Force the hot package dirty so the facts are requested again;
			// the mutated entry must be rejected and recomputed.
			if err := os.Remove(filepath.Join(opts.CacheDir, c.entryFileName("factsmod/hot"))); err != nil {
				t.Fatal(err)
			}
			res := mustRunLint(t, root, opts)
			if res.Cache.FactsHits != 0 || res.Cache.FactsMisses != 1 {
				t.Fatalf("%s-mutated facts entry hit: %+v", tc.name, res.Cache)
			}
		})
	}

	// A facts file under another configuration's filename is never expected
	// by this configuration's sweep and must be evicted.
	root := writeFixtureModule(t, factsFixtureFiles)
	opts := fixtureRunOptions(DefaultCacheDir(root))
	mustRunLint(t, root, opts)
	stray := filepath.Join(opts.CacheDir, "ffffffffffff-facts.json")
	if err := os.WriteFile(stray, []byte(`{"schema":0}`), 0o644); err != nil {
		t.Fatal(err)
	}
	res := mustRunLint(t, root, opts)
	if res.Cache.Evicted != 1 {
		t.Fatalf("stray facts file not evicted: %+v", res.Cache)
	}
	if _, err := os.Stat(stray); !os.IsNotExist(err) {
		t.Fatal("stray facts file still present after sweep")
	}
}

// TestCacheUnusableDirDegrades points the cache at a path that cannot be a
// directory: the run must proceed cold and report the degradation instead of
// failing.
func TestCacheUnusableDirDegrades(t *testing.T) {
	root := writeFixtureModule(t, fixtureModuleFiles)
	file := filepath.Join(t.TempDir(), "not-a-dir")
	if err := os.WriteFile(file, []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	opts := fixtureRunOptions(filepath.Join(file, "cache"))

	res := mustRunLint(t, root, opts)
	if res.Cache.Enabled || res.Cache.Degraded == "" {
		t.Fatalf("expected a degraded cache, got %+v", res.Cache)
	}
	if len(res.Raw) != 2 {
		t.Fatalf("degraded run lost findings: %v", res.Raw)
	}
}

// TestCacheConfigsCoexist runs two analyzer configurations over the same
// cache directory and checks that neither evicts the other's entries.
func TestCacheConfigsCoexist(t *testing.T) {
	root := writeFixtureModule(t, fixtureModuleFiles)
	dir := DefaultCacheDir(root)
	full := fixtureRunOptions(dir)
	intra := fixtureRunOptions(dir)
	intra.NoInterp = true

	mustRunLint(t, root, full)
	res := mustRunLint(t, root, intra)
	if res.Cache.Misses != 4 || res.Cache.Evicted != 0 {
		t.Fatalf("intraprocedural config disturbed the full config's entries: %+v", res.Cache)
	}
	// Both configurations must now be warm.
	if res := mustRunLint(t, root, full); res.Cache.Hits != 4 {
		t.Fatalf("full config lost its entries: %+v", res.Cache)
	}
	if res := mustRunLint(t, root, intra); res.Cache.Hits != 4 {
		t.Fatalf("intraprocedural config lost its entries: %+v", res.Cache)
	}
}

// TestPersistentSummaryHits exercises the summary-rehydration path against
// the real repository: force one high-level package to miss and check that
// its clean dependencies' function summaries are loaded from disk (not
// recomputed), with findings and structural stats identical to the cold run.
func TestPersistentSummaryHits(t *testing.T) {
	if testing.Short() {
		t.Skip("whole-repo lint in -short mode")
	}
	root, err := FindModuleRoot(".")
	if err != nil {
		t.Fatal(err)
	}
	opts := RunOptions{Analyzers: Analyzers(), CacheDir: t.TempDir()}
	cold := mustRunLint(t, root, opts)
	if cold.Cache.Misses == 0 {
		t.Fatalf("seed run was not cold: %+v", cold.Cache)
	}

	// Delete the entry of a package that sits high in the dependency DAG, so
	// re-analyzing it resolves callee summaries from clean cached deps.
	c, err := openCache(opts.CacheDir, runConfigHash(opts))
	if err != nil {
		t.Fatal(err)
	}
	const target = "blocktri/internal/harness"
	entry := filepath.Join(opts.CacheDir, c.entryFileName(target))
	if err := os.Remove(entry); err != nil {
		t.Fatalf("removing %s entry: %v", target, err)
	}

	warm := mustRunLint(t, root, opts)
	if warm.Cache.Misses != 1 || warm.Cache.Hits != cold.Cache.Packages-1 {
		t.Fatalf("expected exactly one miss after deleting %s entry: %+v", target, warm.Cache)
	}
	if warm.Runtime.PersistentHits == 0 || warm.Runtime.PackagesLoaded == 0 {
		t.Fatalf("no summaries were rehydrated from disk: %+v", warm.Runtime)
	}
	if !reflect.DeepEqual(warm.Raw, cold.Raw) {
		t.Fatalf("findings changed across the persistent-summary path")
	}
	if warm.Summary != cold.Summary {
		t.Fatalf("structural stats changed: cold %+v warm %+v", cold.Summary, warm.Summary)
	}
}

// TestSummaryEncodeDecodeRoundtrip checks the wire encoding facet by facet:
// every summary of a real package must decode back equal to the original.
func TestSummaryEncodeDecodeRoundtrip(t *testing.T) {
	root, err := FindModuleRoot(".")
	if err != nil {
		t.Fatal(err)
	}
	m, err := newLazyModule(root)
	if err != nil {
		t.Fatal(err)
	}
	const target = "blocktri/internal/mat"
	pkg, err := m.ensurePackage(target)
	if err != nil {
		t.Fatal(err)
	}
	st := m.pkgSummaryStats(pkg)
	sums := m.loader.sums[pkg]
	if len(sums) == 0 {
		t.Fatalf("no summaries computed for %s", target)
	}

	e := &cacheEntry{Summary: st, Funcs: encodeSummaries(sums)}
	decoded, gotSt, ok := decodeSummaries(pkg, e)
	if !ok {
		t.Fatal("decodeSummaries rejected its own encoding")
	}
	if gotSt != st {
		t.Fatalf("stats did not roundtrip: %+v vs %+v", st, gotSt)
	}
	count := 0
	for f, orig := range sums {
		if orig == nil {
			continue
		}
		count++
		got := decoded[f]
		if got == nil {
			t.Fatalf("summary for %s lost in roundtrip", funcID(f))
		}
		if !summariesEqual(orig, got) {
			t.Fatalf("summary for %s changed in roundtrip:\norig: %+v\ngot:  %+v", funcID(f), orig, got)
		}
	}
	if count == 0 {
		t.Fatal("every summary was nil")
	}
}
