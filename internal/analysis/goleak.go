package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// goleak flags goroutine launches whose termination is not tied to anything
// the program controls. The service stack (internal/serve, comm.RunContext)
// promises "no goroutine leaks" dynamically through the chaos harness; this
// analyzer is the static side of that invariant. A goroutine is accepted
// when its body observes a context's Done channel, runs to completion on its
// own (no loops or selects), or blocks on state the spawning scope cannot
// signal (assumed managed by that state's owner). When the body's
// termination is tied to a local channel or WaitGroup of the spawning
// function, the signal — close(ch) (or a send), wg.Wait() — becomes a
// path obligation checked over the CFG, exactly like poolrelease's Release
// obligation: a signal missing on every path is a leak, a signal on some
// paths but not all is a conditional leak.
//
// `go f(args)` with a same-package callee classifies f's body directly,
// mapping f's tied parameters back to the call's arguments. Helper functions
// that spawn param-tied goroutines internally export that fact through the
// summary Spawns facet, so the obligation is attributed at the helper's call
// site interprocedurally.
var goLeakAnalyzer = &Analyzer{
	Name:     "goleak",
	Doc:      "goroutine termination must be tied to ctx.Done, a WaitGroup join, or a channel close on every path",
	Severity: SeverityError,
	Version:  1,
	Run:      runGoLeak,
}

func runGoLeak(m *Module) []Finding {
	p := &pass{m: m, name: "goleak"}
	rep := newReporter(p)
	for _, pkg := range m.Pkgs {
		decls := pkgFuncDecls(pkg)
		for _, file := range pkg.Files {
			eachFuncBody(file, func(body *ast.BlockStmt) {
				goLeakFunc(rep, m, pkg.Info, decls, body)
			})
		}
	}
	return p.findings
}

// leakSite is one spawn whose termination obligation the enclosing function
// owes: a go statement tied to local objects, or a call to a helper whose
// summary spawns a goroutine tied to an argument.
type leakSite struct {
	pos  token.Pos
	ties []goTie
	what string // display: the spawn description
}

// tieSignals renders the signal set of a site: "close(ch)", "wg.Wait()".
func (s *leakSite) tieSignals() string {
	parts := make([]string, 0, len(s.ties))
	for _, t := range s.ties {
		if t.kind == "wait" {
			parts = append(parts, t.obj.Name()+".Wait()")
		} else {
			parts = append(parts, "close("+t.obj.Name()+")")
		}
	}
	return strings.Join(parts, " or ")
}

func goLeakFunc(rep *reporter, m *Module, info *types.Info, decls map[*types.Func]*ast.FuncDecl, body *ast.BlockStmt) {
	g := BuildCFG(body)

	// Locals only the spawner can signal: objects declared inside this body
	// but outside the goroutine being classified.
	resolveCaptured := func(lit *ast.FuncLit) func(types.Object) (types.Object, bool) {
		return func(obj types.Object) (types.Object, bool) {
			if declaredIn(body, obj) && !declaredIn(lit, obj) {
				return obj, true
			}
			return nil, false
		}
	}

	var sites []leakSite
	nodeSites := make(map[ast.Node][]int)        // CFG node -> site indices generated there
	obligedCalls := make(map[*ast.CallExpr]bool) // helper calls that create obligations
	spawnLits := make(map[*ast.FuncLit]bool)     // goroutine bodies (their captures are the tie, not an escape)
	addSite := func(n ast.Node, site leakSite) {
		if len(sites) >= maxFactSites {
			return
		}
		nodeSites[n] = append(nodeSites[n], len(sites))
		sites = append(sites, site)
	}

	classify := func(gs *ast.GoStmt) (goClass, []goTie, string) {
		call := gs.Call
		if lit, ok := call.Fun.(*ast.FuncLit); ok {
			spawnLits[lit] = true
			cl, ties := classifyGoBody(info, lit.Body, resolveCaptured(lit))
			return cl, ties, "goroutine"
		}
		f := calleeFunc(info, call)
		if f == nil {
			return goManaged, nil, ""
		}
		decl, samePkg := decls[f]
		if !samePkg {
			// Cross-package spawns are assumed managed by the callee's
			// package contract.
			return goManaged, nil, ""
		}
		params := funcDeclParams(info, decl)
		paramIdx := make(map[types.Object]int, len(params))
		for i, obj := range params {
			if obj != nil {
				paramIdx[obj] = i
			}
		}
		cl, ties := classifyGoBody(info, decl.Body, func(obj types.Object) (types.Object, bool) {
			i, isParam := paramIdx[obj]
			if !isParam || i >= len(call.Args) {
				return nil, false
			}
			argObj := objOf(info, call.Args[i])
			if argObj != nil && declaredIn(body, argObj) {
				return argObj, true
			}
			return nil, false
		})
		return cl, ties, "goroutine running " + f.Name()
	}

	// Pass 1: collect spawn sites and their obligations.
	for _, b := range g.Blocks {
		for _, n := range b.Nodes {
			if gs, ok := n.(*ast.GoStmt); ok {
				cl, ties, what := classify(gs)
				switch cl {
				case goUntied:
					rep.reportf(gs.Pos(), "%s has no termination tie (no ctx.Done select, WaitGroup Done, or channel close to wait for) and may run forever", what)
				case goObliged:
					addSite(n, leakSite{pos: gs.Pos(), ties: ties, what: what})
				}
				continue
			}
			// Helper calls whose summary spawns goroutines tied to an
			// argument: the obligation lands here (interprocedural only).
			walkExprs(n, func(x ast.Node) bool {
				call, ok := x.(*ast.CallExpr)
				if !ok {
					return true
				}
				f := calleeFunc(info, call)
				if f == nil {
					return true
				}
				sum := m.calleeSummary(f)
				if sum == nil || len(sum.Spawns) == 0 {
					return true
				}
				var ties []goTie
				for _, sp := range sum.Spawns {
					if sp.Param >= len(call.Args) {
						continue
					}
					obj := objOf(info, call.Args[sp.Param])
					if obj != nil && declaredIn(body, obj) {
						ties = append(ties, goTie{obj: obj, kind: sp.Kind})
					}
				}
				if len(ties) > 0 {
					obligedCalls[call] = true
					addSite(n, leakSite{pos: call.Pos(), ties: ties, what: "goroutine spawned by " + f.Name()})
				}
				return true
			})
		}
	}
	if len(sites) == 0 {
		return
	}

	// Escape pre-pass: an obligation object that leaves this function's
	// hands — captured by a non-spawned closure, aliased, returned, stored,
	// passed whole to an untracked callee — carries its signal elsewhere;
	// drop those ties rather than report against code we cannot see.
	tracked := make(map[types.Object]bool)
	for _, s := range sites {
		for _, t := range s.ties {
			tracked[t.obj] = true
		}
	}
	escaped := escapedLeakObjs(info, body, tracked, spawnLits, obligedCalls)
	var live []leakSite
	liveNodeSites := make(map[ast.Node][]int)
	for n, idxs := range nodeSites {
		for _, i := range idxs {
			s := sites[i]
			var ties []goTie
			for _, t := range s.ties {
				if !escaped[t.obj] {
					ties = append(ties, t)
				}
			}
			if len(ties) == 0 {
				continue // every tie escaped: managed elsewhere
			}
			s.ties = ties
			liveNodeSites[n] = append(liveNodeSites[n], len(live))
			live = append(live, s)
		}
	}
	sites, nodeSites = live, liveNodeSites
	if len(sites) == 0 {
		return
	}
	objSites := make(map[types.Object][]int)
	for i, s := range sites {
		for _, t := range s.ties {
			objSites[t.obj] = append(objSites[t.obj], i)
		}
	}

	// Pass 2: path obligations. State bits: bit i = site i outstanding,
	// bit 32+i = site i was signalled somewhere on this path (for the
	// "some paths but not all" distinction). Join is OR.
	const satShift = 32
	signal := func(st uint64, obj types.Object, kind string) uint64 {
		for _, i := range objSites[obj] {
			for _, t := range sites[i].ties {
				if t.obj == obj && t.kind == kind {
					st = (st &^ (uint64(1) << uint(i))) | uint64(1)<<uint(satShift+i)
				}
			}
		}
		return st
	}
	transfer := func(st uint64, b *Block) uint64 {
		for _, n := range b.Nodes {
			walkExprs(n, func(x ast.Node) bool {
				switch x := x.(type) {
				case *ast.CallExpr:
					if builtinName(info, x) == "close" && len(x.Args) == 1 {
						if obj := objOf(info, x.Args[0]); obj != nil {
							st = signal(st, obj, "close")
						}
					}
					if recv, name := syncMethodOn(info, x); name == "Wait" && recv != nil {
						if obj := objOf(info, recv); obj != nil {
							st = signal(st, obj, "wait")
						}
					}
				case *ast.SendStmt:
					// A send wakes a receiver-tied goroutine just as a close
					// does (the one-shot gate idiom).
					if obj := objOf(info, x.Chan); obj != nil {
						st = signal(st, obj, "close")
					}
				}
				return true
			})
			for _, i := range nodeSites[n] {
				st |= uint64(1) << uint(i)
			}
		}
		return st
	}

	in := solveFlow(g, flowProblem[uint64]{
		boundary: func() uint64 { return 0 },
		transfer: transfer,
		join:     func(a, b uint64) uint64 { return a | b },
		equal:    func(a, b uint64) bool { return a == b },
		clone:    func(a uint64) uint64 { return a },
	})
	exitIn, ok := in[g.Exit]
	if !ok {
		return
	}
	out := transfer(exitIn, g.Exit)
	for i, s := range sites {
		if out&(uint64(1)<<uint(i)) == 0 {
			continue
		}
		if out&(uint64(1)<<uint(satShift+i)) != 0 {
			rep.reportf(s.pos, "%s is signalled to stop on some paths but not all: %s must run on every path to return", s.what, s.tieSignals())
		} else {
			rep.reportf(s.pos, "%s is never signalled to stop: %s runs on no path to return", s.what, s.tieSignals())
		}
	}
}

// escapedLeakObjs finds tracked objects with a non-sanctioned use: anything
// beyond the spawn itself, the signal calls (close/Wait/Add/Done, sends and
// receives, len/cap), and mentions inside the spawned goroutine bodies. A
// capture by a non-spawned closure, an alias, a return, or a whole-value
// hand-off to an untracked callee all count as escapes.
func escapedLeakObjs(info *types.Info, body *ast.BlockStmt, tracked map[types.Object]bool, spawnLits map[*ast.FuncLit]bool, obligedCalls map[*ast.CallExpr]bool) map[types.Object]bool {
	sanctioned := make(map[*ast.Ident]bool)
	mark := func(e ast.Expr) {
		if id, ok := unparen(e).(*ast.Ident); ok {
			sanctioned[id] = true
		}
	}
	ast.Inspect(body, func(x ast.Node) bool {
		switch x := x.(type) {
		case *ast.FuncLit:
			if spawnLits[x] {
				// The goroutine's own mentions of its ties are the point.
				markAllIdents(x.Body, sanctioned)
			}
			// Either way do not descend: a non-spawned closure's captures
			// stay unsanctioned and count as escapes below.
			return false
		case *ast.CallExpr:
			switch builtinName(info, x) {
			case "close", "len", "cap":
				if len(x.Args) == 1 {
					mark(x.Args[0])
				}
			}
			if recv, name := syncMethodOn(info, x); recv != nil && (name == "Wait" || name == "Add" || name == "Done") {
				mark(recv)
			}
			if obligedCalls[x] {
				for _, a := range x.Args {
					mark(a)
				}
			}
		case *ast.SendStmt:
			mark(x.Chan)
		case *ast.UnaryExpr:
			if x.Op == token.ARROW {
				mark(x.X)
			}
		case *ast.GoStmt:
			for _, a := range x.Call.Args {
				mark(a)
			}
		}
		return true
	})

	escaped := make(map[types.Object]bool)
	ast.Inspect(body, func(x ast.Node) bool {
		id, ok := x.(*ast.Ident)
		if !ok {
			return true
		}
		obj := info.Uses[id]
		if obj == nil || !tracked[obj] {
			return true
		}
		if !sanctioned[id] {
			escaped[obj] = true
		}
		return true
	})
	return escaped
}

// markAllIdents sanctions every identifier mention under n.
func markAllIdents(n ast.Node, sanctioned map[*ast.Ident]bool) {
	ast.Inspect(n, func(x ast.Node) bool {
		if id, ok := x.(*ast.Ident); ok {
			sanctioned[id] = true
		}
		return true
	})
}
