// Package analysis is a self-contained static-analysis framework for this
// module, built only on the standard library's go/parser, go/ast and
// go/types. It exists because generic tooling is blind to the invariants
// this codebase lives on: row-major mat.Matrix kernels with view/aliasing
// semantics, an MPI-style comm runtime where a mismatched tag or a blocking
// collective under a held mutex deadlocks the whole World, and solver code
// where exact float64 comparisons silently void the diagonal-dominance
// correctness arguments.
//
// The framework loads the whole module from source (see load.go),
// type-checks it with the stdlib source importer — keeping go.mod free of
// external dependencies — and runs a set of domain Analyzers over the typed
// syntax trees. Findings can be suppressed with inline
// "//lint:ignore <analyzer> reason" comments (see suppress.go).
//
// The cmd/blocktri-lint binary is the multichecker front end.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// Finding is one diagnostic produced by an analyzer.
type Finding struct {
	Pos      token.Position
	Analyzer string
	Message  string
}

// String renders the finding in the canonical file:line: [analyzer] form.
func (f Finding) String() string {
	return fmt.Sprintf("%s:%d: [%s] %s", f.Pos.Filename, f.Pos.Line, f.Analyzer, f.Message)
}

// Severity levels for analyzers, mirroring SARIF's defaultConfiguration
// levels. "error" marks checks whose findings are correctness bugs (aliasing
// kernels, deadlocks, arena misuse); "warning" marks style- and
// robustness-tier checks where a finding deserves a look but may be fine.
const (
	SeverityError   = "error"
	SeverityWarning = "warning"
)

// Analyzer is one named check run over the whole loaded module. Run returns
// raw findings; suppression filtering is the driver's job so that tests can
// observe both sides.
type Analyzer struct {
	Name     string
	Doc      string
	Severity string // SeverityError or SeverityWarning
	// Version participates in the persistent cache key (cache.go). Bump it
	// whenever the analyzer's behavior changes — new checks, fixed false
	// positives, reworded messages — so stale cached findings cannot be
	// replayed for the new logic.
	Version int
	// NeedsBuild marks analyzers whose evidence comes from invoking the Go
	// toolchain (compilerfacts.go). The driver's -watch mode skips them
	// unless -watch-full is given, and the toolchain-free perf baselines
	// exclude them.
	NeedsBuild bool
	Run        func(m *Module) []Finding
}

// Analyzers returns the full analyzer suite in stable order.
func Analyzers() []*Analyzer {
	return []*Analyzer{
		matAliasAnalyzer,
		commLockAnalyzer,
		commTagAnalyzer,
		floatEqAnalyzer,
		panicPolicyAnalyzer,
		hotAllocAnalyzer,
		wsEscapeAnalyzer,
		poolReleaseAnalyzer,
		errDiscardAnalyzer,
		commShapeAnalyzer,
		blockShapeAnalyzer,
		goLeakAnalyzer,
		lockOrderAnalyzer,
		ctxFlowAnalyzer,
		perfEscapeAnalyzer,
		perfBCEAnalyzer,
		perfInlineAnalyzer,
		asmCheckAnalyzer,
	}
}

// pass accumulates findings for one analyzer over one module.
type pass struct {
	m        *Module
	name     string
	findings []Finding
	// factsFailed records that the compiler-fact provider errored during
	// this pass (perfcontract.go); the pass stops rather than repeating the
	// same module-wide error at every annotation.
	factsFailed bool
}

func (p *pass) reportf(pos token.Pos, format string, args ...any) {
	p.findings = append(p.findings, Finding{
		Pos:      p.m.Fset.Position(pos),
		Analyzer: p.name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// SortFindings orders findings by file, line and column for stable output.
func SortFindings(fs []Finding) {
	sort.Slice(fs, func(i, j int) bool {
		a, b := fs[i], fs[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		if a.Analyzer != b.Analyzer {
			return a.Analyzer < b.Analyzer
		}
		// The message tiebreak makes the order canonical, so a cache-warm
		// replay and a cold run serialize identically even when two findings
		// share a position and analyzer.
		return a.Message < b.Message
	})
}

// unparen strips any number of enclosing parentheses.
func unparen(e ast.Expr) ast.Expr {
	for {
		p, ok := e.(*ast.ParenExpr)
		if !ok {
			return e
		}
		e = p.X
	}
}

// calleeFunc resolves the function or method a call statically dispatches
// to, or nil when the callee is not a named function (conversions, builtins,
// calls through function-typed variables).
func calleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := unparen(call.Fun).(type) {
	case *ast.Ident:
		if f, ok := info.Uses[fun].(*types.Func); ok {
			return f
		}
	case *ast.SelectorExpr:
		if f, ok := info.Uses[fun.Sel].(*types.Func); ok {
			return f
		}
	}
	return nil
}

// funcPkgPath returns the import path of the package a function belongs to
// ("" for builtins and universe functions).
func funcPkgPath(f *types.Func) string {
	if f == nil || f.Pkg() == nil {
		return ""
	}
	return f.Pkg().Path()
}

// eachFuncBody invokes fn once per function-like body in the file: every
// FuncDecl body and every FuncLit body. Nested function literals are
// reported separately, so analyzers that keep per-function state (lock sets,
// alias maps) can treat each body as its own straight-line scope.
func eachFuncBody(file *ast.File, fn func(body *ast.BlockStmt)) {
	ast.Inspect(file, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncDecl:
			if n.Body != nil {
				fn(n.Body)
			}
		case *ast.FuncLit:
			fn(n.Body)
		}
		return true
	})
}

// inspectShallow walks n in source order like ast.Inspect but does not
// descend into nested function literals: their bodies execute at some other
// time (or never), so statement-order reasoning about the enclosing
// function must not see them.
func inspectShallow(n ast.Node, fn func(ast.Node) bool) {
	ast.Inspect(n, func(node ast.Node) bool {
		if _, ok := node.(*ast.FuncLit); ok && node != n {
			return false
		}
		return fn(node)
	})
}
