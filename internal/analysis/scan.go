package analysis

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
)

// Lazy module scanner.
//
// scanModule is the cheap front half of a lint run: it walks the module
// tree, reads every non-test .go file, hashes its content, and parses ONLY
// the package clause and import block (parser.ImportsOnly). That is enough
// to build the package dependency DAG and a content-addressed cache key per
// package — without type-checking anything. The expensive back half
// (parse with comments + type-check, in load.go) then runs per package, on
// demand, only when the persistent cache (cache.go) misses.
//
// The scan keeps each file's bytes so that the later full parse sees exactly
// the content that was hashed: a file modified between scan and load cannot
// smuggle new findings under an old cache key within one run.

// scanFile is one source file of a scanned package.
type scanFile struct {
	Name string // absolute path
	Rel  string // path relative to the module root (cache-stable)
	Src  []byte // file content as hashed
	Hash string // hex sha256 of Src
}

// scanPackage is the pre-type-check view of one package: enough to compute
// its cache key and to load it lazily later.
type scanPackage struct {
	Path    string // import path
	Dir     string // absolute directory
	PkgName string // package clause name
	Files   []scanFile
	// SFiles holds the package's assembly files (matched against the host
	// build constraints like the .go files). They carry no imports and are
	// never parsed by the loader, but they are analyzer input (asmcheck) and
	// compiler input, so their content participates in the cache key.
	SFiles []scanFile
	Deps   []string // module-local imports, sorted, deduplicated
	Key    string   // cache key; filled by computeKeys once the run config is known
}

// moduleScan is the dependency-ordered scan of a whole module.
type moduleScan struct {
	Root      string
	ModPath   string
	GoModHash string
	Pkgs      []*scanPackage // topological order, dependencies first
	ByPath    map[string]*scanPackage
}

// scanModule walks the module under root and returns its packages in
// dependency order. Only import blocks are parsed; full parsing and
// type-checking are deferred to Module.ensurePackage.
func scanModule(root string) (*moduleScan, error) {
	root, err := filepath.Abs(root)
	if err != nil {
		return nil, err
	}
	modPath, err := modulePath(root)
	if err != nil {
		return nil, err
	}
	goMod, err := os.ReadFile(filepath.Join(root, "go.mod"))
	if err != nil {
		return nil, err
	}
	sc := &moduleScan{
		Root:      root,
		ModPath:   modPath,
		GoModHash: hashBytes(goMod),
		ByPath:    make(map[string]*scanPackage),
	}

	var dirs []string
	err = filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		if path != root && skipDir(d.Name()) {
			return filepath.SkipDir
		}
		files, err := goFilesIn(path)
		if err != nil {
			return err
		}
		if len(files) > 0 {
			dirs = append(dirs, path)
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	sort.Strings(dirs)

	// ImportsOnly parses stop right after the import block, so a whole-file
	// scan costs little more than reading the bytes (which the hash needs
	// anyway). A throwaway FileSet keeps the real one clean for the full
	// parses later.
	scanFset := token.NewFileSet()
	var paths []string
	for _, dir := range dirs {
		rel, err := filepath.Rel(root, dir)
		if err != nil {
			return nil, err
		}
		importPath := modPath
		if rel != "." {
			importPath = modPath + "/" + filepath.ToSlash(rel)
		}
		sp := &scanPackage{Path: importPath, Dir: dir}
		names, err := goFilesIn(dir)
		if err != nil {
			return nil, err
		}
		depSet := make(map[string]bool)
		for _, name := range names {
			src, err := os.ReadFile(name)
			if err != nil {
				return nil, err
			}
			relName, err := filepath.Rel(root, name)
			if err != nil {
				return nil, err
			}
			f, err := parser.ParseFile(scanFset, name, src, parser.ImportsOnly)
			if err != nil {
				return nil, err
			}
			if sp.PkgName == "" {
				sp.PkgName = f.Name.Name
			} else if f.Name.Name != sp.PkgName {
				return nil, fmt.Errorf("analysis: %s: mixed packages %s and %s", dir, sp.PkgName, f.Name.Name)
			}
			sp.Files = append(sp.Files, scanFile{
				Name: name,
				Rel:  filepath.ToSlash(relName),
				Src:  src,
				Hash: hashBytes(src),
			})
			for _, imp := range f.Imports {
				ip := strings.Trim(imp.Path.Value, `"`)
				if ip == modPath || strings.HasPrefix(ip, modPath+"/") {
					depSet[ip] = true
				}
			}
		}
		sNames, err := asmFilesIn(dir)
		if err != nil {
			return nil, err
		}
		for _, name := range sNames {
			src, err := os.ReadFile(name)
			if err != nil {
				return nil, err
			}
			relName, err := filepath.Rel(root, name)
			if err != nil {
				return nil, err
			}
			sp.SFiles = append(sp.SFiles, scanFile{
				Name: name,
				Rel:  filepath.ToSlash(relName),
				Src:  src,
				Hash: hashBytes(src),
			})
		}
		for dep := range depSet {
			sp.Deps = append(sp.Deps, dep)
		}
		sort.Strings(sp.Deps)
		sc.ByPath[importPath] = sp
		paths = append(paths, importPath)
	}

	// Topological sort by module-local imports (DFS, cycle detection) —
	// identical diagnostics to the eager loader this replaces.
	const (
		unvisited = 0
		visiting  = 1
		done      = 2
	)
	state := make(map[string]int)
	var visit func(path string) error
	visit = func(path string) error {
		switch state[path] {
		case done:
			return nil
		case visiting:
			return fmt.Errorf("analysis: import cycle through %s", path)
		}
		state[path] = visiting
		sp := sc.ByPath[path]
		if sp == nil {
			return fmt.Errorf("analysis: package %s imported but not found in module", path)
		}
		for _, dep := range sp.Deps {
			if err := visit(dep); err != nil {
				return err
			}
		}
		state[path] = done
		sc.Pkgs = append(sc.Pkgs, sp)
		return nil
	}
	for _, path := range paths {
		if err := visit(path); err != nil {
			return nil, err
		}
	}
	return sc, nil
}

// computeKeys derives each package's cache key, bottom-up over the
// dependency DAG. A key covers:
//
//   - the run configuration (cache schema, toolchain, analyzer set with
//     per-analyzer versions, driver flags) — config, prepared by the caller;
//   - the go.mod content (module path changes rename every import path);
//   - the package's import path and the name + content hash of every file;
//   - the keys of its direct module-local dependencies.
//
// The dependency-key chaining makes invalidation transitive by
// construction: editing one file changes that package's key and, through
// the chained digests, the key of every package that imports it — and of
// nothing else.
func (sc *moduleScan) computeKeys(config string) {
	for _, sp := range sc.Pkgs {
		h := sha256.New()
		fmt.Fprintf(h, "config\x00%s\x00gomod\x00%s\x00pkg\x00%s\x00", config, sc.GoModHash, sp.Path)
		for _, f := range sp.Files {
			fmt.Fprintf(h, "file\x00%s\x00%s\x00", f.Rel, f.Hash)
		}
		for _, f := range sp.SFiles {
			fmt.Fprintf(h, "sfile\x00%s\x00%s\x00", f.Rel, f.Hash)
		}
		for _, dep := range sp.Deps {
			fmt.Fprintf(h, "dep\x00%s\x00%s\x00", dep, sc.ByPath[dep].Key)
		}
		sp.Key = hex.EncodeToString(h.Sum(nil))
	}
}

// reverseClosure returns the import paths of the given packages plus every
// package that transitively imports one of them.
func (sc *moduleScan) reverseClosure(paths []string) map[string]bool {
	dirty := make(map[string]bool, len(paths))
	for _, p := range paths {
		dirty[p] = true
	}
	// Pkgs is in topological order (dependencies first), so one forward
	// sweep propagates dirtiness to all reverse dependencies.
	for _, sp := range sc.Pkgs {
		if dirty[sp.Path] {
			continue
		}
		for _, dep := range sp.Deps {
			if dirty[dep] {
				dirty[sp.Path] = true
				break
			}
		}
	}
	return dirty
}

func hashBytes(b []byte) string {
	sum := sha256.Sum256(b)
	return hex.EncodeToString(sum[:])
}

// treeHash digests the whole scanned source tree — go.mod plus every
// package's Go and assembly file hashes, in scan order. It keys the
// module-wide compiler-fact cache entry (cache.go): compiler diagnostics
// for any package can change when any of its dependencies change, so facts
// are cached at whole-tree granularity rather than chained per package.
func (sc *moduleScan) treeHash() string {
	h := sha256.New()
	fmt.Fprintf(h, "gomod\x00%s\x00", sc.GoModHash)
	for _, sp := range sc.Pkgs {
		fmt.Fprintf(h, "pkg\x00%s\x00", sp.Path)
		for _, f := range sp.Files {
			fmt.Fprintf(h, "file\x00%s\x00%s\x00", f.Rel, f.Hash)
		}
		for _, f := range sp.SFiles {
			fmt.Fprintf(h, "sfile\x00%s\x00%s\x00", f.Rel, f.Hash)
		}
	}
	return hex.EncodeToString(h.Sum(nil))
}

// WatchSignature is the cheap change probe behind the driver's -watch mode:
// a digest over the name, size and mtime of every non-test .go file (plus
// go.mod) that a scan would visit. It reads no file contents, so polling it
// costs directory walks and stats only; when it changes, the watcher runs a
// full lint, whose content hashes then decide what actually needs
// re-analysis (a touch that leaves bytes unchanged re-lints entirely from
// cache).
func WatchSignature(root string) (string, error) {
	root, err := filepath.Abs(root)
	if err != nil {
		return "", err
	}
	h := sha256.New()
	stamp := func(path string) error {
		fi, err := os.Stat(path)
		if err != nil {
			// A file disappearing mid-walk is itself a change; fold the
			// error into the signature rather than failing the poll.
			fmt.Fprintf(h, "gone\x00%s\x00", path)
			return nil
		}
		rel, err := filepath.Rel(root, path)
		if err != nil {
			return err
		}
		fmt.Fprintf(h, "%s\x00%d\x00%s\x00", filepath.ToSlash(rel), fi.Size(), strconv.FormatInt(fi.ModTime().UnixNano(), 10))
		return nil
	}
	if err := stamp(filepath.Join(root, "go.mod")); err != nil {
		return "", err
	}
	err = filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			if path != root && skipDir(d.Name()) {
				return filepath.SkipDir
			}
			return nil
		}
		name := d.Name()
		if strings.HasSuffix(name, "_test.go") {
			return nil
		}
		// .s files are analyzer input too (asmcheck), so an edited kernel
		// must wake the watch loop like an edited .go file.
		if !strings.HasSuffix(name, ".go") && !strings.HasSuffix(name, ".s") {
			return nil
		}
		return stamp(path)
	})
	if err != nil {
		return "", err
	}
	return hex.EncodeToString(h.Sum(nil)), nil
}
