package analysis

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"go/ast"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strings"
)

// Persistent incremental analysis cache.
//
// One cache entry per package, one JSON file per entry, stored under the
// module's cache directory (default .blocktri-lint-cache/, see
// DefaultCacheDir). An entry is valid only when its schema version AND its
// content-hash key (scan.go: file contents, direct-dependency keys, go.mod,
// analyzer set + versions, driver configuration) both match the current
// scan; anything else — a missing file, truncated JSON, a garbage byte, an
// old schema, a stale key — is a silent miss that falls back to the cold
// path. The cache can therefore never surface stale findings or fail a run:
// the worst corruption can do is cost one rebuild.
//
// What an entry stores, per package:
//
//   - the raw (pre-suppression) findings of every enabled analyzer, so a
//     warm run replays output byte-identically without parsing a file;
//   - the lint:ignore directives, so suppression filtering and the
//     directive-staleness audit replay without ASTs;
//   - the function summaries (summary.go) and the structural stats /
//     call-graph condensation behind them, so incremental runs rehydrate a
//     clean dependency's interprocedural facts instead of recomputing them.
//
// Writes are atomic (temp file + rename), so concurrent runs — two CI jobs,
// a watch loop racing a manual run — can interleave freely: a reader sees
// either a complete entry or none.

// cacheSchemaVersion is baked into both the entry payload and the run
// configuration hash. Bump it whenever the entry format or the meaning of
// any cached field changes; old entries then miss and are swept.
//
// v4: package keys cover assembly files, the run configuration covers
// GOARCH, and the directory gains a module-wide compiler-fact entry
// (factsEntry) keyed on toolchain version + GOARCH + flags + tree hash.
const cacheSchemaVersion = 4

// DefaultCacheDir returns the default persistent cache location for a
// module root: <root>/.blocktri-lint-cache.
func DefaultCacheDir(root string) string {
	return filepath.Join(root, ".blocktri-lint-cache")
}

// cache is an open handle on a cache directory for one run configuration.
type cache struct {
	dir    string
	config string // configuration hash (hex); prefixes every entry filename
}

func openCache(dir, config string) (*cache, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	return &cache{dir: dir, config: config}, nil
}

// entryFileName derives the stable filename of a package's entry:
// <config-prefix>-<package-hash>.json. The config prefix groups one run
// configuration's entries so different configurations (say, interprocedural
// on and off) coexist without evicting each other.
func (c *cache) entryFileName(pkgPath string) string {
	sum := sha256.Sum256([]byte(pkgPath))
	return c.config[:12] + "-" + hex.EncodeToString(sum[:8]) + ".json"
}

// factsEntry is the on-disk record of one whole-module compiler-fact table
// (compilerfacts.go). Unlike package entries it is not content-chained per
// package: compiler diagnostics for a package can change when anything in
// its import closure changes, so the entry is keyed on a digest of the
// entire tree plus everything about the toolchain that shapes the
// diagnostics — go version, GOARCH and the exact -gcflags payload. Any
// mismatch is a miss and the facts are recomputed by invoking the
// toolchain (cheap when go's own build cache is warm, one real build when
// not).
type factsEntry struct {
	Schema    int          `json:"schema"`
	GoVersion string       `json:"go_version"`
	GOARCH    string       `json:"goarch"`
	Flags     string       `json:"flags"`
	TreeHash  string       `json:"tree_hash"`
	Escapes   []cachedDiag `json:"escapes,omitempty"`
	Bounds    []cachedDiag `json:"bounds,omitempty"`
	Inlines   []cachedInl  `json:"inlines,omitempty"`
}

// cachedDiag is one FactDiag with its file made root-relative.
type cachedDiag struct {
	File    string `json:"file"`
	Line    int    `json:"line"`
	Col     int    `json:"col"`
	Message string `json:"msg"`
}

// cachedInl is one InlineFact with its file made root-relative.
type cachedInl struct {
	File      string `json:"file"`
	Line      int    `json:"line"`
	CanInline bool   `json:"can_inline"`
	Cost      int    `json:"cost,omitempty"`
	Budget    int    `json:"budget,omitempty"`
	Reason    string `json:"reason,omitempty"`
}

// factsFileName is the facts entry's name under the current configuration
// prefix, so different configurations' fact tables coexist like their
// package entries do.
func (c *cache) factsFileName() string {
	return c.config[:12] + "-facts.json"
}

// loadFacts reads and validates the facts entry against the current
// toolchain and tree. Every failure mode is a plain miss.
func (c *cache) loadFacts(root, treeHash string) (*CompilerFacts, bool) {
	data, err := os.ReadFile(filepath.Join(c.dir, c.factsFileName()))
	if err != nil {
		return nil, false
	}
	var e factsEntry
	if err := json.Unmarshal(data, &e); err != nil {
		return nil, false
	}
	if e.Schema != cacheSchemaVersion || e.GoVersion != runtime.Version() ||
		e.GOARCH != runtime.GOARCH || e.Flags != factsGCFlags || e.TreeHash != treeHash {
		return nil, false
	}
	cf := &CompilerFacts{
		GoVersion: e.GoVersion,
		GOARCH:    e.GOARCH,
		Flags:     e.Flags,
		escapes:   make(map[string][]FactDiag),
		bounds:    make(map[string][]FactDiag),
		inlines:   make(map[string][]InlineFact),
	}
	abs := func(file string) string {
		name := filepath.FromSlash(file)
		if !filepath.IsAbs(name) {
			name = filepath.Join(root, name)
		}
		return name
	}
	for _, d := range e.Escapes {
		f := abs(d.File)
		cf.escapes[f] = append(cf.escapes[f], FactDiag{File: f, Line: d.Line, Col: d.Col, Message: d.Message})
	}
	for _, d := range e.Bounds {
		f := abs(d.File)
		cf.bounds[f] = append(cf.bounds[f], FactDiag{File: f, Line: d.Line, Col: d.Col, Message: d.Message})
	}
	for _, d := range e.Inlines {
		f := abs(d.File)
		cf.inlines[f] = append(cf.inlines[f], InlineFact{File: f, Line: d.Line, CanInline: d.CanInline, Cost: d.Cost, Budget: d.Budget, Reason: d.Reason})
	}
	return cf, true
}

// storeFacts persists a fact table atomically (best-effort, like store).
func (c *cache) storeFacts(root, treeHash string, cf *CompilerFacts) error {
	e := factsEntry{
		Schema:    cacheSchemaVersion,
		GoVersion: cf.GoVersion,
		GOARCH:    cf.GOARCH,
		Flags:     cf.Flags,
		TreeHash:  treeHash,
	}
	rel := func(file string) string { return filepath.ToSlash(relToRoot(root, file)) }
	for _, diags := range sortedDiagFiles(cf.escapes) {
		for _, d := range diags {
			e.Escapes = append(e.Escapes, cachedDiag{File: rel(d.File), Line: d.Line, Col: d.Col, Message: d.Message})
		}
	}
	for _, diags := range sortedDiagFiles(cf.bounds) {
		for _, d := range diags {
			e.Bounds = append(e.Bounds, cachedDiag{File: rel(d.File), Line: d.Line, Col: d.Col, Message: d.Message})
		}
	}
	files := make([]string, 0, len(cf.inlines))
	for f := range cf.inlines {
		files = append(files, f)
	}
	sort.Strings(files)
	for _, f := range files {
		for _, d := range cf.inlines[f] {
			e.Inlines = append(e.Inlines, cachedInl{File: rel(d.File), Line: d.Line, CanInline: d.CanInline, Cost: d.Cost, Budget: d.Budget, Reason: d.Reason})
		}
	}
	data, err := json.Marshal(&e)
	if err != nil {
		return err
	}
	tmp, err := os.CreateTemp(c.dir, ".tmp-*")
	if err != nil {
		return err
	}
	name := tmp.Name()
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(name)
		return err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(name)
		return err
	}
	return os.Rename(name, filepath.Join(c.dir, c.factsFileName()))
}

// sortedDiagFiles returns a diag map's slices in file order, so entry bytes
// are deterministic.
func sortedDiagFiles(m map[string][]FactDiag) [][]FactDiag {
	files := make([]string, 0, len(m))
	for f := range m {
		files = append(files, f)
	}
	sort.Strings(files)
	out := make([][]FactDiag, 0, len(files))
	for _, f := range files {
		out = append(out, m[f])
	}
	return out
}

// cacheEntry is the on-disk record of one analyzed package.
type cacheEntry struct {
	Schema     int                 `json:"schema"`
	Key        string              `json:"key"`
	Path       string              `json:"path"`
	Findings   []cachedFinding     `json:"findings"`
	Directives []cachedDirective   `json:"directives"`
	Summary    SummaryStats        `json:"summary_stats"`
	CallGraph  [][]string          `json:"callgraph_sccs,omitempty"`
	Funcs      []cachedFuncSummary `json:"funcs,omitempty"`
}

// cachedFinding is one raw finding with its position made root-relative so
// the cache survives a module checkout moving on disk.
type cachedFinding struct {
	File     string `json:"file"`
	Offset   int    `json:"offset"`
	Line     int    `json:"line"`
	Col      int    `json:"col"`
	Analyzer string `json:"analyzer"`
	Message  string `json:"message"`
}

// cachedDirective is one lint:ignore analyzer name at one position.
type cachedDirective struct {
	File   string `json:"file"`
	Offset int    `json:"offset"`
	Line   int    `json:"line"`
	Col    int    `json:"col"`
	Name   string `json:"name"`
}

// cachedFuncSummary is the wire form of one FuncSummary, identified by the
// function's type-checker full name (stable across runs for a fixed file
// set, e.g. "blocktri/internal/mat.Mul" or "(*blocktri/internal/mat.Workspace).Get").
type cachedFuncSummary struct {
	ID         string        `json:"id"`
	NumParams  int           `json:"num_params"`
	NumResults int           `json:"num_results"`
	Releases   uint32        `json:"releases,omitempty"`
	Borrows    uint32        `json:"borrows,omitempty"`
	CheckoutOf []int         `json:"checkout_of,omitempty"`
	ErrLabel   []string      `json:"err_label,omitempty"`
	Comm       []sumCommSite `json:"comm,omitempty"`
	CommOpaque bool          `json:"comm_opaque,omitempty"`
	Dims       []cachedDims  `json:"dims,omitempty"`
	Spawns     []sumSpawn    `json:"spawns,omitempty"`
	Locks      []string      `json:"locks,omitempty"`
	FuncSinks  uint32        `json:"func_sinks,omitempty"`
}

type cachedDims struct {
	Rows cachedTerm `json:"rows"`
	Cols cachedTerm `json:"cols"`
}

// cachedTerm flattens a linTerm[sumVar] into a sorted coefficient list so
// the encoding is deterministic.
type cachedTerm struct {
	Known bool            `json:"known"`
	K     int64           `json:"k,omitempty"`
	Lin   []cachedLinCoef `json:"lin,omitempty"`
}

type cachedLinCoef struct {
	Kind  int   `json:"kind"`
	Param int   `json:"param"`
	Coef  int64 `json:"coef"`
}

// load reads and validates sp's entry. Every failure mode — absent file,
// unreadable bytes, malformed JSON, schema or key or path mismatch — is a
// plain miss.
func (c *cache) load(sp *scanPackage) (*cacheEntry, bool) {
	data, err := os.ReadFile(filepath.Join(c.dir, c.entryFileName(sp.Path)))
	if err != nil {
		return nil, false
	}
	var e cacheEntry
	if err := json.Unmarshal(data, &e); err != nil {
		return nil, false
	}
	if e.Schema != cacheSchemaVersion || e.Key != sp.Key || e.Path != sp.Path {
		return nil, false
	}
	return &e, true
}

// store writes an entry atomically. Failures are reported to the caller for
// counting but never abort a run: the cache is strictly best-effort.
func (c *cache) store(e *cacheEntry) error {
	data, err := json.Marshal(e)
	if err != nil {
		return err
	}
	tmp, err := os.CreateTemp(c.dir, ".tmp-*")
	if err != nil {
		return err
	}
	name := tmp.Name()
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(name)
		return err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(name)
		return err
	}
	return os.Rename(name, filepath.Join(c.dir, c.entryFileName(e.Path)))
}

// sweep evicts stale files after a run: entries of the current
// configuration whose filename is not in the expected set (packages that
// were deleted or renamed), entries of any configuration written under an
// older schema, and orphaned temp files. It returns the eviction count.
func (c *cache) sweep(expected map[string]bool) int {
	dirEntries, err := os.ReadDir(c.dir)
	if err != nil {
		return 0
	}
	prefix := c.config[:12] + "-"
	evicted := 0
	for _, de := range dirEntries {
		name := de.Name()
		if de.IsDir() {
			continue
		}
		switch {
		case strings.HasPrefix(name, ".tmp-"):
			// A crashed writer's leftover.
		case !strings.HasSuffix(name, ".json"):
			continue
		case strings.HasPrefix(name, prefix):
			if expected[name] {
				continue
			}
		default:
			// Another configuration's entry: keep it unless it was written
			// under an older schema (those can never hit again).
			data, err := os.ReadFile(filepath.Join(c.dir, name))
			if err != nil {
				continue
			}
			var e struct {
				Schema int `json:"schema"`
			}
			if json.Unmarshal(data, &e) == nil && e.Schema == cacheSchemaVersion {
				continue
			}
		}
		if os.Remove(filepath.Join(c.dir, name)) == nil {
			evicted++
		}
	}
	return evicted
}

// --- position / finding / directive encoding --------------------------------

func encodePos(root string, pos token.Position) (file string, offset, line, col int) {
	return filepath.ToSlash(relToRoot(root, pos.Filename)), pos.Offset, pos.Line, pos.Column
}

func decodePos(root, file string, offset, line, col int) token.Position {
	name := filepath.FromSlash(file)
	if !filepath.IsAbs(name) {
		name = filepath.Join(root, name)
	}
	return token.Position{Filename: name, Offset: offset, Line: line, Column: col}
}

func encodeFindings(root string, fs []Finding) []cachedFinding {
	out := make([]cachedFinding, 0, len(fs))
	for _, f := range fs {
		file, off, line, col := encodePos(root, f.Pos)
		out = append(out, cachedFinding{
			File: file, Offset: off, Line: line, Col: col,
			Analyzer: f.Analyzer, Message: f.Message,
		})
	}
	return out
}

func decodeFindings(root string, cfs []cachedFinding) []Finding {
	out := make([]Finding, 0, len(cfs))
	for _, cf := range cfs {
		out = append(out, Finding{
			Pos:      decodePos(root, cf.File, cf.Offset, cf.Line, cf.Col),
			Analyzer: cf.Analyzer,
			Message:  cf.Message,
		})
	}
	return out
}

func encodeDirectives(root string, s *Suppressions) []cachedDirective {
	out := make([]cachedDirective, 0, len(s.all))
	for _, d := range s.all {
		file, off, line, col := encodePos(root, d.pos)
		out = append(out, cachedDirective{File: file, Offset: off, Line: line, Col: col, Name: d.name})
	}
	return out
}

// --- summary encoding -------------------------------------------------------

// funcID names a function stably within its package for cache round-trips.
func funcID(f *types.Func) string { return f.FullName() }

// declaredFuncs indexes a materialized package's function declarations by
// funcID — the resolution table for decodeSummaries.
func declaredFuncs(pkg *Package) map[string]*types.Func {
	out := make(map[string]*types.Func)
	for _, file := range pkg.Files {
		for _, d := range file.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if f, ok := pkg.Info.Defs[fd.Name].(*types.Func); ok {
				out[funcID(f)] = f
			}
		}
	}
	return out
}

func encodeTerm(t sumTerm) cachedTerm {
	out := cachedTerm{Known: t.Known, K: t.K}
	for v, c := range t.Lin {
		out.Lin = append(out.Lin, cachedLinCoef{Kind: int(v.Kind), Param: v.Param, Coef: c})
	}
	sort.Slice(out.Lin, func(i, j int) bool {
		a, b := out.Lin[i], out.Lin[j]
		if a.Kind != b.Kind {
			return a.Kind < b.Kind
		}
		return a.Param < b.Param
	})
	return out
}

func decodeTerm(ct cachedTerm) sumTerm {
	t := sumTerm{Known: ct.Known, K: ct.K}
	if len(ct.Lin) > 0 {
		t.Lin = make(map[sumVar]int64, len(ct.Lin))
		for _, lc := range ct.Lin {
			t.Lin[sumVar{Kind: sumVarKind(lc.Kind), Param: lc.Param}] = lc.Coef
		}
	}
	return t
}

// encodeSummaries serializes a package's summary map, sorted by funcID for
// deterministic entry bytes.
func encodeSummaries(sums pkgSummaries) []cachedFuncSummary {
	out := make([]cachedFuncSummary, 0, len(sums))
	for f, s := range sums {
		if s == nil {
			continue
		}
		cs := cachedFuncSummary{
			ID:         funcID(f),
			NumParams:  s.NumParams,
			NumResults: s.NumResults,
			Releases:   s.Releases,
			Borrows:    s.Borrows,
			CheckoutOf: s.CheckoutOf,
			ErrLabel:   s.ErrLabel,
			Comm:       s.Comm,
			CommOpaque: s.CommOpaque,
			Spawns:     s.Spawns,
			Locks:      s.Locks,
			FuncSinks:  s.FuncSinks,
		}
		for _, d := range s.Dims {
			cs.Dims = append(cs.Dims, cachedDims{Rows: encodeTerm(d.Rows), Cols: encodeTerm(d.Cols)})
		}
		out = append(out, cs)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// decodeSummaries rehydrates an entry's summaries against the materialized
// package. Any inconsistency — an ID that no longer resolves, a facet slice
// whose length disagrees with the signature — invalidates the whole load
// and the caller recomputes from source.
func decodeSummaries(pkg *Package, e *cacheEntry) (pkgSummaries, SummaryStats, bool) {
	byID := declaredFuncs(pkg)
	sums := make(pkgSummaries, len(e.Funcs))
	for i := range e.Funcs {
		cs := &e.Funcs[i]
		f, ok := byID[cs.ID]
		if !ok {
			return nil, SummaryStats{}, false
		}
		sig := signatureOf(f)
		if sig == nil || sig.Params().Len() != cs.NumParams || sig.Results().Len() != cs.NumResults {
			return nil, SummaryStats{}, false
		}
		if len(cs.CheckoutOf) != cs.NumResults || len(cs.ErrLabel) != cs.NumResults || len(cs.Dims) != cs.NumResults {
			// emptySummary always sizes these to NumResults; a mismatch
			// means the entry was hand-edited or damaged.
			if !(cs.NumResults == 0 && len(cs.CheckoutOf) == 0 && len(cs.ErrLabel) == 0 && len(cs.Dims) == 0) {
				return nil, SummaryStats{}, false
			}
		}
		for _, sp := range cs.Spawns {
			if sp.Param < 0 || sp.Param >= cs.NumParams || (sp.Kind != "close" && sp.Kind != "wait") {
				return nil, SummaryStats{}, false
			}
		}
		if len(cs.Locks) > maxSummaryLocks {
			return nil, SummaryStats{}, false
		}
		s := &FuncSummary{
			Fn:         f,
			NumParams:  cs.NumParams,
			NumResults: cs.NumResults,
			Releases:   cs.Releases,
			Borrows:    cs.Borrows,
			CheckoutOf: cs.CheckoutOf,
			ErrLabel:   cs.ErrLabel,
			Comm:       cs.Comm,
			CommOpaque: cs.CommOpaque,
			Spawns:     cs.Spawns,
			Locks:      cs.Locks,
			FuncSinks:  cs.FuncSinks,
		}
		if s.CheckoutOf == nil {
			s.CheckoutOf = make([]int, 0)
		}
		if s.ErrLabel == nil {
			s.ErrLabel = make([]string, 0)
		}
		s.Dims = make([]sumDims, 0, len(cs.Dims))
		for _, d := range cs.Dims {
			s.Dims = append(s.Dims, sumDims{Rows: decodeTerm(d.Rows), Cols: decodeTerm(d.Cols)})
		}
		sums[f] = s
	}
	return sums, e.Summary, true
}
