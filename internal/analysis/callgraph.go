package analysis

import (
	"go/ast"
	"go/types"
)

// Interprocedural layer, part 1: the call graph.
//
// The dataflow analyzers of PR 4 are intraprocedural: a checkout, payload or
// error that flows through a helper function falls off their radar at the
// call boundary. Lifting them to whole-program precision needs two things —
// an order in which to visit functions so that callee facts exist before
// caller sites are judged (this file), and the per-function facts themselves
// (summary.go).
//
// The graph is per package. Go's import graph is a DAG, so recursion can
// only occur between functions of one package; building one graph per
// package and condensing it into strongly connected components gives a
// reverse-topological order (callees before callers) in which summaries can
// be computed bottom-up, with a fixed-point loop confined to the recursive
// SCCs. Cross-package calls resolve against the summaries of already-
// processed dependency packages, which load.go guarantees come earlier in
// Module.Pkgs.
//
// Resolution is type-based and deliberately bounded:
//
//   - static calls and method calls resolve through types.Info.Uses to the
//     declared *types.Func;
//   - a bare reference to a declared function (a function value handed to a
//     scan schedule or a World.Run body) adds an edge too — the function
//     may be called wherever the value flows, and for SCC ordering an
//     over-approximate edge only widens a component;
//   - calls through interface methods and unnamed function-typed values do
//     not resolve and produce no edge. Analyzers treat an unresolved callee
//     exactly as before the interprocedural layer existed (conservatively),
//     so a missing edge can hide a refinement but never manufacture a wrong
//     fact.
//
// Everything is deterministic: nodes appear in (file, declaration) source
// order, edges in first-occurrence source order, and Tarjan's algorithm
// emits SCCs in reverse topological order of the condensation as a
// by-product of its stack discipline.

// FuncNode is one declared function or method of a package.
type FuncNode struct {
	Obj  *types.Func
	Decl *ast.FuncDecl
	Pkg  *Package
	// Callees lists intra-package successors, deduplicated, in the source
	// order of their first mention inside Decl.Body (nested function
	// literals included: a literal runs in some caller eventually, and for
	// ordering purposes its calls belong to the enclosing declaration).
	Callees []*FuncNode

	index, lowlink int
	onStack        bool
	// SCC is the index of the node's component in CallGraph.SCCs.
	SCC int
}

// CallGraph is the intra-package call graph of one package.
type CallGraph struct {
	Nodes []*FuncNode
	ByObj map[*types.Func]*FuncNode
	// SCCs holds the condensation in reverse topological order: every edge
	// of the condensation points from a later component to an earlier one,
	// so visiting SCCs[0], SCCs[1], ... sees callees before callers.
	SCCs [][]*FuncNode
	// Edges is the total intra-package edge count (for -stats).
	Edges int
}

// buildCallGraph constructs the call graph of one package.
func buildCallGraph(pkg *Package) *CallGraph {
	g := &CallGraph{ByObj: make(map[*types.Func]*FuncNode)}
	for _, file := range pkg.Files {
		for _, d := range file.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			f, ok := pkg.Info.Defs[fd.Name].(*types.Func)
			if !ok {
				continue
			}
			n := &FuncNode{Obj: f, Decl: fd, Pkg: pkg, SCC: -1}
			g.Nodes = append(g.Nodes, n)
			g.ByObj[f] = n
		}
	}
	for _, n := range g.Nodes {
		seen := make(map[*FuncNode]bool)
		// Every named-function mention — call position or value position —
		// reaches an *ast.Ident whose Uses entry is the *types.Func; one
		// ident walk covers plain calls, method calls and function values.
		ast.Inspect(n.Decl.Body, func(x ast.Node) bool {
			id, ok := x.(*ast.Ident)
			if !ok {
				return true
			}
			f, ok := pkg.Info.Uses[id].(*types.Func)
			if !ok {
				return true
			}
			if c, ok := g.ByObj[f]; ok && !seen[c] {
				seen[c] = true
				n.Callees = append(n.Callees, c)
				g.Edges++
			}
			return true
		})
	}
	g.condense()
	return g
}

// condense runs Tarjan's strongly-connected-components algorithm. The
// recursion depth is bounded by the longest intra-package call chain, which
// for this module is far below any stack limit.
func (g *CallGraph) condense() {
	idx := 0
	var stack []*FuncNode
	var connect func(v *FuncNode)
	connect = func(v *FuncNode) {
		idx++
		v.index, v.lowlink = idx, idx
		stack = append(stack, v)
		v.onStack = true
		for _, w := range v.Callees {
			if w.index == 0 {
				connect(w)
				if w.lowlink < v.lowlink {
					v.lowlink = w.lowlink
				}
			} else if w.onStack && w.index < v.lowlink {
				v.lowlink = w.index
			}
		}
		if v.lowlink == v.index {
			var scc []*FuncNode
			for {
				w := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				w.onStack = false
				w.SCC = len(g.SCCs)
				scc = append(scc, w)
				if w == v {
					break
				}
			}
			g.SCCs = append(g.SCCs, scc)
		}
	}
	for _, v := range g.Nodes {
		if v.index == 0 {
			connect(v)
		}
	}
}

// isRecursive reports whether an SCC contains a cycle (more than one member,
// or a self-loop).
func isRecursive(scc []*FuncNode) bool {
	if len(scc) > 1 {
		return true
	}
	for _, c := range scc[0].Callees {
		if c == scc[0] {
			return true
		}
	}
	return false
}
