package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// blockshape is a symbolic abstract interpreter over the mat call sites of
// every non-mat package. Matrix dimensions are tracked as linear terms over
// symbolic variables rooted in local objects (the value of an int variable,
// the row/column count of a matrix variable, the order of a factorization),
// seeded from the mat constructors and from function summaries (summary.go),
// and propagated through a forward must-equality dataflow. At each checked
// call site — the GEMM family, elementwise ops, CopyFrom, factorizations and
// their solves — the analyzer compares the terms the contract requires to be
// equal and reports when they are *provably* different for every positive
// assignment of the symbols (2m vs m mismatches; m vs k is silently assumed
// fine). A weaker report flags suspicious constant-vs-symbolic mixes, where
// one side of a required equality is a bare literal and the other a symbolic
// block size.
//
// Soundness of the variable discipline: a symbolic variable minted for an
// object denotes that object's value at the current program point. Any write
// to the object scrubs every tracked value whose term mentions it, so two
// terms mentioning the same variable always refer to the same runtime value.
// Matrix dimensions are stable after construction (no mat API resizes), so
// calls do not scrub. Objects whose address is taken, or that a function
// literal writes, are never given variables at all.
var blockShapeAnalyzer = &Analyzer{
	Name:     "blockshape",
	Doc:      "mat call sites must be shape-conformant under symbolic block dimensions",
	Severity: SeverityError,
	Version:  2,
	Run:      runBlockShape,
}

type locVarKind int

const (
	lvInt  locVarKind = iota // the value of an int variable
	lvRows                   // the row count of a matrix variable
	lvCols                   // the column count of a matrix variable
	lvN                      // the order of an LU/Cholesky variable
)

// locVar is one symbolic variable of a blockshape term, rooted in a local
// (or captured) object.
type locVar struct {
	kind locVarKind
	obj  types.Object
}

type locTerm = linTerm[locVar]

type absKind int

const (
	avNone absKind = iota
	avInt
	avMat
	avFac
	avPack
)

// absVal is the abstract value of one tracked variable: an int as a term,
// a matrix as a (rows, cols) term pair, a factorization as its order, or a
// packed A-panel as its (Rows(), K()) pair — stored in the rows/cols slots,
// since a PackedA is just the frozen shape of the matrix it packed.
type absVal struct {
	kind       absKind
	x          locTerm // avInt
	rows, cols locTerm // avMat
	n          locTerm // avFac
}

func (v absVal) equal(o absVal) bool {
	return v.kind == o.kind && v.x.equal(o.x) &&
		v.rows.equal(o.rows) && v.cols.equal(o.cols) && v.n.equal(o.n)
}

func (v absVal) mentions(obj types.Object) bool {
	for _, t := range []locTerm{v.x, v.rows, v.cols, v.n} {
		for lv := range t.Lin {
			if lv.obj == obj {
				return true
			}
		}
	}
	return false
}

// shapeEnv maps tracked objects to abstract values. Join is intersection
// with equality (a flat lattice per variable), so states only shrink and the
// fixed point is structural.
type shapeEnv map[types.Object]absVal

func cloneShapeEnv(e shapeEnv) shapeEnv {
	out := make(shapeEnv, len(e))
	for k, v := range e {
		out[k] = v
	}
	return out
}

func joinShapeEnv(a, b shapeEnv) shapeEnv {
	for k, v := range a {
		if bv, ok := b[k]; !ok || !v.equal(bv) {
			delete(a, k)
		}
	}
	return a
}

func equalShapeEnv(a, b shapeEnv) bool {
	if len(a) != len(b) {
		return false
	}
	for k, v := range a {
		bv, ok := b[k]
		if !ok || !v.equal(bv) {
			return false
		}
	}
	return true
}

func runBlockShape(m *Module) []Finding {
	p := &pass{m: m, name: "blockshape"}
	rep := newReporter(p)
	for _, pkg := range m.Pkgs {
		if pkg.Path == matPkgPath {
			continue // the library's own internals are its unit tests' job
		}
		for _, file := range pkg.Files {
			eachFuncBody(file, func(body *ast.BlockStmt) {
				blockShapeFunc(rep, m, pkg.Info, body)
			})
		}
	}
	return p.findings
}

// bsEval carries the per-function evaluation context.
type bsEval struct {
	rep      *reporter
	m        *Module
	info     *types.Info
	volatile map[types.Object]bool
}

const bsEvalDepth = 8

func blockShapeFunc(rep *reporter, m *Module, info *types.Info, body *ast.BlockStmt) {
	bs := &bsEval{rep: rep, m: m, info: info, volatile: volatileObjs(info, body)}
	g := BuildCFG(body)
	in := solveFlow(g, flowProblem[shapeEnv]{
		boundary: func() shapeEnv { return shapeEnv{} },
		transfer: func(env shapeEnv, b *Block) shapeEnv { return bs.transfer(env, b, false) },
		join:     joinShapeEnv,
		equal:    equalShapeEnv,
		clone:    cloneShapeEnv,
	})
	for _, b := range g.Blocks {
		env, ok := in[b]
		if !ok {
			continue
		}
		bs.transfer(cloneShapeEnv(env), b, true)
	}
}

// volatileObjs collects the objects blockshape must never mint variables
// for: anything whose address is taken, and anything a nested function
// literal writes (the write runs at an unknowable time relative to the
// enclosing flow).
func volatileObjs(info *types.Info, body *ast.BlockStmt) map[types.Object]bool {
	vol := make(map[types.Object]bool)
	mark := func(e ast.Expr) {
		if obj := rootObjOf(info, e); obj != nil {
			vol[obj] = true
		}
	}
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			ast.Inspect(n.Body, func(x ast.Node) bool {
				switch x := x.(type) {
				case *ast.AssignStmt:
					for _, l := range x.Lhs {
						mark(l)
					}
				case *ast.IncDecStmt:
					mark(x.X)
				case *ast.RangeStmt:
					if x.Key != nil {
						mark(x.Key)
					}
					if x.Value != nil {
						mark(x.Value)
					}
				case *ast.UnaryExpr:
					if x.Op == token.AND {
						mark(x.X)
					}
				}
				return true
			})
			return false // the inner Inspect covered it
		case *ast.UnaryExpr:
			if n.Op == token.AND {
				mark(n.X)
			}
		}
		return true
	})
	return vol
}

// rootObjOf unwraps selectors, indexes, stars and parens to the base
// identifier's object — the variable a write to the expression disturbs.
func rootObjOf(info *types.Info, e ast.Expr) types.Object {
	for {
		switch x := unparen(e).(type) {
		case *ast.Ident:
			return objOf(info, x)
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		default:
			return nil
		}
	}
}

func (bs *bsEval) scrub(env shapeEnv, obj types.Object) {
	if obj == nil {
		return
	}
	delete(env, obj)
	for k, v := range env {
		if v.mentions(obj) {
			delete(env, k)
		}
	}
}

// transfer folds one block: check every mat call against the incoming state
// (report pass only), then apply the block's binding and scrubbing effects.
func (bs *bsEval) transfer(env shapeEnv, b *Block, report bool) shapeEnv {
	for _, n := range b.Nodes {
		if report {
			walkExprs(n, func(x ast.Node) bool {
				if call, ok := x.(*ast.CallExpr); ok {
					bs.checkCall(env, call)
				}
				return true
			})
		}
		switch n := n.(type) {
		case *ast.AssignStmt:
			bs.assign(env, n.Lhs, n.Rhs)
		case *ast.DeclStmt:
			if gd, ok := n.Decl.(*ast.GenDecl); ok {
				for _, spec := range gd.Specs {
					vs, ok := spec.(*ast.ValueSpec)
					if !ok {
						continue
					}
					lhs := make([]ast.Expr, len(vs.Names))
					for i, id := range vs.Names {
						lhs[i] = id
					}
					bs.assign(env, lhs, vs.Values)
				}
			}
		case *ast.IncDecStmt:
			bs.scrub(env, rootObjOf(bs.info, n.X))
		case *ast.RangeStmt:
			for _, e := range []ast.Expr{n.Key, n.Value} {
				if e != nil {
					bs.scrub(env, rootObjOf(bs.info, e))
				}
			}
		}
	}
	return env
}

// assign applies one (possibly multi-value) assignment: evaluate the RHS
// against the pre-state, scrub every written root, then bind.
func (bs *bsEval) assign(env shapeEnv, lhs, rhs []ast.Expr) {
	vals := make([]absVal, len(lhs))
	if len(rhs) == len(lhs) {
		for i, r := range rhs {
			vals[i] = bs.evalAny(env, r, 0)
		}
	} else if len(rhs) == 1 {
		if call, ok := unparen(rhs[0]).(*ast.CallExpr); ok {
			vals[0] = bs.evalCallResult0(env, call, 0)
		}
	}
	for _, l := range lhs {
		bs.scrub(env, rootObjOf(bs.info, l))
	}
	for i, l := range lhs {
		if vals[i].kind == avNone {
			continue
		}
		if obj := objOf(bs.info, l); obj != nil && !bs.volatile[obj] {
			env[obj] = vals[i]
		}
	}
}

// --- evaluation -------------------------------------------------------------

// evalAny evaluates an expression by its static type.
func (bs *bsEval) evalAny(env shapeEnv, e ast.Expr, depth int) absVal {
	tv, ok := bs.info.Types[e]
	if !ok {
		return absVal{}
	}
	return bs.evalTyped(env, e, tv.Type, depth)
}

func (bs *bsEval) evalTyped(env shapeEnv, e ast.Expr, t types.Type, depth int) absVal {
	switch {
	case isIntType(t):
		if x := bs.evalInt(env, e, depth); x.Known {
			return absVal{kind: avInt, x: x}
		}
	case isMatrix(t):
		return bs.evalMat(env, e, depth)
	case isFactorization(t):
		if n := bs.evalFac(env, e, depth); n.Known {
			return absVal{kind: avFac, n: n}
		}
	case isPackedA(t):
		return bs.evalPack(env, e, depth)
	}
	return absVal{}
}

// evalCallResult0 evaluates the first result of a call used in a
// one-call-many-values assignment (Factor, mat.Solve, ws.LU).
func (bs *bsEval) evalCallResult0(env shapeEnv, call *ast.CallExpr, depth int) absVal {
	tv, ok := bs.info.Types[call]
	if !ok {
		return absVal{}
	}
	t := tv.Type
	if tup, ok := t.(*types.Tuple); ok {
		if tup.Len() == 0 {
			return absVal{}
		}
		t = tup.At(0).Type()
	}
	return bs.evalTyped(env, call, t, depth)
}

func isFactorization(t types.Type) bool {
	p, n := namedFrom(t)
	return p == matPkgPath && (n == "LU" || n == "Cholesky")
}

func isPackedA(t types.Type) bool {
	p, n := namedFrom(t)
	return p == matPkgPath && n == "PackedA"
}

// evalInt evaluates an int expression as a term over local variables.
func (bs *bsEval) evalInt(env shapeEnv, e ast.Expr, depth int) locTerm {
	if depth > bsEvalDepth {
		return locTerm{}
	}
	info := bs.info
	e = unparen(e)
	if tv, ok := info.Types[e]; ok && tv.Value != nil {
		if k, exact := constInt64(tv); exact {
			return constTerm[locVar](k)
		}
		return locTerm{}
	}
	switch x := e.(type) {
	case *ast.Ident:
		obj := objOf(info, x)
		if obj == nil || bs.volatile[obj] {
			return locTerm{}
		}
		if v, ok := env[obj]; ok && v.kind == avInt {
			return v.x
		}
		if isIntType(obj.Type()) {
			return varTerm(locVar{lvInt, obj})
		}
	case *ast.SelectorExpr:
		obj := objOf(info, x.X)
		if obj == nil || bs.volatile[obj] {
			return locTerm{}
		}
		if isMatrix(obj.Type()) {
			switch x.Sel.Name {
			case "Rows":
				return bs.matVal(env, obj).rows
			case "Cols":
				return bs.matVal(env, obj).cols
			}
		}
	case *ast.CallExpr:
		// lu.N() / ch.N(): the factorization order; pa.Rows() / pa.K(): the
		// frozen dimensions of a packed A-panel.
		if f := calleeFunc(info, x); f != nil && funcPkgPath(f) == matPkgPath {
			sel, ok := unparen(x.Fun).(*ast.SelectorExpr)
			if !ok {
				break
			}
			switch f.Name() {
			case "N":
				return bs.evalFac(env, sel.X, depth+1)
			case "Rows":
				if named := recvNamedType(f); named != nil && named.Obj().Name() == "PackedA" {
					return bs.evalPack(env, sel.X, depth+1).rows
				}
			case "K":
				if named := recvNamedType(f); named != nil && named.Obj().Name() == "PackedA" {
					return bs.evalPack(env, sel.X, depth+1).cols
				}
			}
		}
	case *ast.BinaryExpr:
		a := bs.evalInt(env, x.X, depth+1)
		b := bs.evalInt(env, x.Y, depth+1)
		if !a.Known || !b.Known {
			return locTerm{}
		}
		switch x.Op {
		case token.ADD:
			return a.add(b, 1)
		case token.SUB:
			return a.add(b, -1)
		case token.MUL:
			if a.pureConst() {
				return b.scale(a.K)
			}
			if b.pureConst() {
				return a.scale(b.K)
			}
		}
	case *ast.UnaryExpr:
		if x.Op == token.SUB {
			return bs.evalInt(env, x.X, depth+1).scale(-1)
		}
		if x.Op == token.ADD {
			return bs.evalInt(env, x.X, depth+1)
		}
	}
	return locTerm{}
}

// matVal returns the tracked or minted shape of a plain matrix variable.
func (bs *bsEval) matVal(env shapeEnv, obj types.Object) absVal {
	if v, ok := env[obj]; ok && v.kind == avMat {
		return v
	}
	if bs.volatile[obj] || !isMatrix(obj.Type()) {
		return absVal{}
	}
	return absVal{
		kind: avMat,
		rows: varTerm(locVar{lvRows, obj}),
		cols: varTerm(locVar{lvCols, obj}),
	}
}

// evalMat evaluates a matrix-typed expression to its symbolic shape.
func (bs *bsEval) evalMat(env shapeEnv, e ast.Expr, depth int) absVal {
	if depth > bsEvalDepth {
		return absVal{}
	}
	info := bs.info
	e = unparen(e)
	switch x := e.(type) {
	case *ast.Ident:
		if obj := objOf(info, x); obj != nil {
			return bs.matVal(env, obj)
		}
	case *ast.CallExpr:
		return bs.evalMatCall(env, x, depth)
	}
	return absVal{}
}

// evalMatCall evaluates the matrix result of a call: the mat constructors
// and shape-preserving accessors directly, everything else through its
// function summary.
func (bs *bsEval) evalMatCall(env shapeEnv, call *ast.CallExpr, depth int) absVal {
	info := bs.info
	f := calleeFunc(info, call)
	if f == nil {
		return absVal{}
	}
	mk := func(r, c locTerm) absVal {
		if !r.Known || !c.Known {
			return absVal{}
		}
		return absVal{kind: avMat, rows: r, cols: c}
	}
	if funcPkgPath(f) == matPkgPath {
		recvName := ""
		if named := recvNamedType(f); named != nil {
			recvName = named.Obj().Name()
		}
		argInt := func(i int) locTerm { return bs.evalInt(env, call.Args[i], depth+1) }
		argMat := func(i int) absVal { return bs.evalMat(env, call.Args[i], depth+1) }
		recvExpr := func() ast.Expr {
			if sel, ok := unparen(call.Fun).(*ast.SelectorExpr); ok {
				return sel.X
			}
			return nil
		}
		recvMat := func() absVal {
			if x := recvExpr(); x != nil {
				return bs.evalMat(env, x, depth+1)
			}
			return absVal{}
		}
		recvN := func() locTerm {
			if x := recvExpr(); x != nil {
				return bs.evalFac(env, x, depth+1)
			}
			return locTerm{}
		}
		switch {
		case recvName == "" && (f.Name() == "New" || f.Name() == "NewFromSlice"):
			return mk(argInt(0), argInt(1))
		case recvName == "" && f.Name() == "Identity":
			n := argInt(0)
			return mk(n, n)
		case recvName == "" && f.Name() == "Solve":
			return mk(argMat(0).rows, argMat(1).cols)
		case recvName == "" && f.Name() == "Inverse":
			a := argMat(0)
			return mk(a.rows, a.cols)
		case recvName == "Workspace" && (f.Name() == "Get" || f.Name() == "GetNoClear"):
			return mk(argInt(0), argInt(1))
		case recvName == "Workspace" && f.Name() == "View":
			return mk(argInt(3), argInt(4))
		case recvName == "Workspace" && f.Name() == "CloneOf":
			a := argMat(0)
			return mk(a.rows, a.cols)
		case recvName == "Matrix" && f.Name() == "View":
			return mk(argInt(2), argInt(3))
		case recvName == "Matrix" && f.Name() == "Clone":
			r := recvMat()
			return mk(r.rows, r.cols)
		case recvName == "Matrix" && f.Name() == "Row":
			return mk(constTerm[locVar](1), recvMat().cols)
		case recvName == "Matrix" && f.Name() == "Col":
			return mk(recvMat().rows, constTerm[locVar](1))
		case (recvName == "LU" || recvName == "Cholesky") && f.Name() == "Solve":
			return mk(recvN(), argMat(0).cols)
		case recvName == "LU" && f.Name() == "Inverse":
			n := recvN()
			return mk(n, n)
		case recvName == "Cholesky" && f.Name() == "L":
			n := recvN()
			return mk(n, n)
		}
		return absVal{}
	}
	sum := bs.m.calleeSummary(f)
	if sum == nil || len(sum.Dims) == 0 || !sum.Dims[0].known() {
		return absVal{}
	}
	return mk(
		bs.substLocalTerm(env, sum.Dims[0].Rows, call, depth+1),
		bs.substLocalTerm(env, sum.Dims[0].Cols, call, depth+1),
	)
}

// substLocalTerm rewrites a summary term (over callee parameters) into the
// caller's local variable space by evaluating the arguments.
func (bs *bsEval) substLocalTerm(env shapeEnv, t sumTerm, call *ast.CallExpr, depth int) locTerm {
	if !t.Known || depth > bsEvalDepth {
		return locTerm{}
	}
	out := constTerm[locVar](t.K)
	for v, c := range t.Lin {
		if v.Param >= len(call.Args) {
			return locTerm{}
		}
		var val locTerm
		switch v.Kind {
		case svInt:
			val = bs.evalInt(env, call.Args[v.Param], depth)
		case svRows:
			val = bs.evalMat(env, call.Args[v.Param], depth).rows
		case svCols:
			val = bs.evalMat(env, call.Args[v.Param], depth).cols
		}
		if !val.Known {
			return locTerm{}
		}
		out = out.add(val.scale(c), 1)
	}
	return out
}

// packVal returns the tracked or minted shape of a plain PackedA variable.
// The minted variables reuse the lvRows/lvCols kinds: they denote Rows()/K()
// of the object, with the same stability guarantee (a PackedA's dimensions
// are frozen at pack time).
func (bs *bsEval) packVal(env shapeEnv, obj types.Object) absVal {
	if v, ok := env[obj]; ok && v.kind == avPack {
		return v
	}
	if bs.volatile[obj] || !isPackedA(obj.Type()) {
		return absVal{}
	}
	return absVal{
		kind: avPack,
		rows: varTerm(locVar{lvRows, obj}),
		cols: varTerm(locVar{lvCols, obj}),
	}
}

// evalPack evaluates a PackedA-typed expression to the symbolic shape of the
// matrix it packed: the constructors freeze the source's (rows, cols) as the
// panel's (Rows(), K()).
func (bs *bsEval) evalPack(env shapeEnv, e ast.Expr, depth int) absVal {
	if depth > bsEvalDepth {
		return absVal{}
	}
	info := bs.info
	e = unparen(e)
	switch x := e.(type) {
	case *ast.Ident:
		if obj := objOf(info, x); obj != nil {
			return bs.packVal(env, obj)
		}
	case *ast.CompositeLit:
		// mat.PackedA{} is the legacy sentinel: no shape claims.
		return absVal{}
	case *ast.CallExpr:
		f := calleeFunc(info, x)
		if f == nil || funcPkgPath(f) != matPkgPath || recvNamedType(f) != nil {
			return absVal{}
		}
		var src absVal
		switch {
		case f.Name() == "NewPackedA" && len(x.Args) == 2:
			src = bs.evalMat(env, x.Args[1], depth+1)
		case f.Name() == "PackAInto" && len(x.Args) == 3:
			src = bs.evalMat(env, x.Args[2], depth+1)
		default:
			return absVal{}
		}
		if !src.rows.Known || !src.cols.Known {
			return absVal{}
		}
		return absVal{kind: avPack, rows: src.rows, cols: src.cols}
	}
	return absVal{}
}

// evalFac evaluates an LU/Cholesky expression to its symbolic order.
func (bs *bsEval) evalFac(env shapeEnv, e ast.Expr, depth int) locTerm {
	if depth > bsEvalDepth {
		return locTerm{}
	}
	info := bs.info
	e = unparen(e)
	switch x := e.(type) {
	case *ast.Ident:
		obj := objOf(info, x)
		if obj == nil || bs.volatile[obj] {
			return locTerm{}
		}
		if v, ok := env[obj]; ok && v.kind == avFac {
			return v.n
		}
		if isFactorization(obj.Type()) {
			return varTerm(locVar{lvN, obj})
		}
	case *ast.CallExpr:
		f := calleeFunc(info, x)
		if f == nil || funcPkgPath(f) != matPkgPath {
			return locTerm{}
		}
		recvName := ""
		if named := recvNamedType(f); named != nil {
			recvName = named.Obj().Name()
		}
		switch {
		case recvName == "" && (f.Name() == "Factor" || f.Name() == "FactorInPlace" || f.Name() == "FactorCholesky"),
			recvName == "Workspace" && f.Name() == "LU":
			return bs.evalMat(env, x.Args[0], depth+1).rows
		}
	}
	return locTerm{}
}

// --- checks -----------------------------------------------------------------

// checkCall verifies the shape contract of one mat call site against the
// current abstract state.
func (bs *bsEval) checkCall(env shapeEnv, call *ast.CallExpr) {
	f := calleeFunc(bs.info, call)
	if f == nil || funcPkgPath(f) != matPkgPath {
		return
	}
	recvName := ""
	if named := recvNamedType(f); named != nil {
		recvName = named.Obj().Name()
	}
	argMat := func(i int) absVal {
		if i >= len(call.Args) {
			return absVal{}
		}
		return bs.evalMat(env, call.Args[i], 0)
	}
	recvExpr := func() ast.Expr {
		if sel, ok := unparen(call.Fun).(*ast.SelectorExpr); ok {
			return sel.X
		}
		return nil
	}
	name := "mat." + f.Name()
	if recvName != "" {
		name = recvName + "." + f.Name()
	}
	cmp := func(whatA string, a locTerm, whatB string, b locTerm) {
		bs.require(call, name, whatA, a, whatB, b)
	}
	sameShape := func(labelA string, a absVal, labelB string, b absVal) {
		cmp(labelA+" rows", a.rows, labelB+" rows", b.rows)
		cmp(labelA+" cols", a.cols, labelB+" cols", b.cols)
	}
	mulCheck := func(dst, a, b absVal) {
		cmp("a.Cols", a.cols, "b.Rows", b.rows)
		cmp("dst.Rows", dst.rows, "a.Rows", a.rows)
		cmp("dst.Cols", dst.cols, "b.Cols", b.cols)
	}
	square := func(label string, a absVal) {
		cmp(label+" rows", a.rows, label+" cols", a.cols)
	}

	switch {
	case recvName == "":
		switch f.Name() {
		case "Mul", "MulAdd", "MulSub":
			if len(call.Args) == 3 {
				mulCheck(argMat(0), argMat(1), argMat(2))
			}
		case "GEMM":
			if len(call.Args) == 5 {
				mulCheck(argMat(4), argMat(1), argMat(2))
			}
		case "MulAddPacked":
			// dst += pack(a) * b with a pre-packed A: the panel froze a's
			// (rows, cols) as (Rows(), K()), so the GEMM contract reads
			// pa.K == b.Rows, dst.Rows == pa.Rows, dst.Cols == b.Cols.
			if len(call.Args) == 4 {
				dst, b := argMat(0), argMat(2)
				pa := bs.evalPack(env, call.Args[1], 0)
				cmp("pa.K", pa.cols, "b.Rows", b.rows)
				cmp("dst.Rows", dst.rows, "pa.Rows", pa.rows)
				cmp("dst.Cols", dst.cols, "b.Cols", b.cols)
			}
		case "Add", "Sub":
			if len(call.Args) == 3 {
				sameShape("dst", argMat(0), "a", argMat(1))
				sameShape("a", argMat(1), "b", argMat(2))
			}
		case "Neg":
			if len(call.Args) == 2 {
				sameShape("dst", argMat(0), "a", argMat(1))
			}
		case "Transpose":
			if len(call.Args) == 2 {
				cmp("dst.Rows", argMat(0).rows, "a.Cols", argMat(1).cols)
				cmp("dst.Cols", argMat(0).cols, "a.Rows", argMat(1).rows)
			}
		case "AXPY":
			if len(call.Args) == 3 {
				sameShape("dst", argMat(0), "x", argMat(2))
			}
		case "Dot":
			if len(call.Args) == 2 {
				sameShape("a", argMat(0), "b", argMat(1))
			}
		case "Solve":
			if len(call.Args) == 2 {
				square("a", argMat(0))
				cmp("a.Rows", argMat(0).rows, "b.Rows", argMat(1).rows)
			}
		case "Factor", "FactorInPlace", "FactorCholesky", "Inverse":
			if len(call.Args) == 1 {
				square("a", argMat(0))
			}
		}
	case recvName == "Workspace" && f.Name() == "LU":
		if len(call.Args) == 1 {
			square("a", argMat(0))
		}
	case recvName == "Matrix" && f.Name() == "CopyFrom":
		if x := recvExpr(); x != nil && len(call.Args) == 1 {
			sameShape("dst", bs.evalMat(env, x, 0), "src", argMat(0))
		}
	case recvName == "LU" || recvName == "Cholesky":
		x := recvExpr()
		if x == nil {
			return
		}
		n := bs.evalFac(env, x, 0)
		switch f.Name() {
		case "Solve", "SolveInPlace":
			if len(call.Args) == 1 {
				cmp("b.Rows", argMat(0).rows, recvName+" order", n)
			}
		case "SolveTo":
			if len(call.Args) == 2 {
				cmp("b.Rows", argMat(1).rows, recvName+" order", n)
				cmp("dst.Rows", argMat(0).rows, recvName+" order", n)
				cmp("dst.Cols", argMat(0).cols, "b.Cols", argMat(1).cols)
			}
		}
	}
}

// require reports when two terms a shape contract equates are provably
// different, or — weaker — when one is a bare constant and the other a
// symbolic block size.
func (bs *bsEval) require(call *ast.CallExpr, name, whatA string, a locTerm, whatB string, b locTerm) {
	if !a.Known || !b.Known {
		return
	}
	if provablyDifferent(a, b) {
		bs.rep.reportf(call.Pos(), "%s shape mismatch: %s = %s but %s = %s for every positive block size",
			name, whatA, renderLocTerm(a), whatB, renderLocTerm(b))
		return
	}
	if a.pureConst() != b.pureConst() {
		bs.rep.reportf(call.Pos(), "%s mixes a constant with a symbolic dimension: %s = %s but %s = %s",
			name, whatA, renderLocTerm(a), whatB, renderLocTerm(b))
	}
}

// renderLocTerm prints a term deterministically: constants first only when
// alone, variables sorted by name.
func renderLocTerm(t locTerm) string {
	if !t.Known {
		return "?"
	}
	type part struct {
		name string
		c    int64
	}
	parts := make([]part, 0, len(t.Lin))
	for v, c := range t.Lin {
		parts = append(parts, part{name: renderLocVar(v), c: c})
	}
	sort.Slice(parts, func(i, j int) bool { return parts[i].name < parts[j].name })
	var sb strings.Builder
	for _, p := range parts {
		c := p.c
		if sb.Len() == 0 {
			if c < 0 {
				sb.WriteString("-")
				c = -c
			}
		} else if c < 0 {
			sb.WriteString(" - ")
			c = -c
		} else {
			sb.WriteString(" + ")
		}
		if c != 1 {
			fmt.Fprintf(&sb, "%d*", c)
		}
		sb.WriteString(p.name)
	}
	if t.K != 0 || sb.Len() == 0 {
		if sb.Len() == 0 {
			fmt.Fprintf(&sb, "%d", t.K)
		} else if t.K < 0 {
			fmt.Fprintf(&sb, " - %d", -t.K)
		} else {
			fmt.Fprintf(&sb, " + %d", t.K)
		}
	}
	return sb.String()
}

func renderLocVar(v locVar) string {
	switch v.kind {
	case lvInt:
		return v.obj.Name()
	case lvRows:
		return v.obj.Name() + ".Rows"
	case lvCols:
		return v.obj.Name() + ".Cols"
	case lvN:
		return v.obj.Name() + ".N()"
	}
	return "?"
}
