package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// Generic fixed-point dataflow over a CFG.
//
// A flowProblem describes one monotone framework instance: how states start,
// how one block transforms a state, and how states merge at join points. The
// solver iterates a worklist in (reverse) postorder until no block's input
// changes, then hands back the fixed-point input state of every block; an
// analyzer replays its transfer function once more over that to emit
// findings deterministically.
//
// States must form a finite-height join-semilattice under join (the
// analyzers here use small per-variable bitmask facts, whose join is
// bitwise-or), or iteration would not terminate.

// flowProblem configures one dataflow run over a CFG.
type flowProblem[S any] struct {
	// backward solves against the flow of control: transfer consumes the
	// state after a block and produces the state before it, and boundary
	// seeds Exit instead of Entry.
	backward bool
	// boundary is the state at the flow's start block.
	boundary func() S
	// transfer folds one whole block. It must not mutate its argument's
	// shared structure unless clone copies it first.
	transfer func(S, *Block) S
	// join merges two incoming states. The solver only calls it with
	// states of reachable predecessors.
	join func(S, S) S
	// equal detects the fixed point.
	equal func(S, S) bool
	// clone protects the stored per-block states from transfer mutation.
	clone func(S) S
}

// solveFlow runs the fixed-point iteration and returns the input state of
// every reached block (the state before the block in forward mode, after it
// in backward mode). Blocks the flow never reaches are absent.
func solveFlow[S any](g *CFG, p flowProblem[S]) map[*Block]S {
	in := make(map[*Block]S)
	start := g.Entry
	next := func(b *Block) []*Block { return b.Succs }
	prev := func(b *Block) []*Block { return b.Preds }
	if p.backward {
		start = g.Exit
		next, prev = prev, next
	}

	_ = prev
	in[start] = p.boundary()
	// Worklist seeded in construction order, which approximates reverse
	// postorder for the builder's block numbering (forward edges mostly go
	// to higher indices), so most problems converge in two passes.
	work := make([]*Block, 0, len(g.Blocks))
	inWork := make([]bool, len(g.Blocks))
	push := func(b *Block) {
		if !inWork[b.Index] {
			inWork[b.Index] = true
			work = append(work, b)
		}
	}
	push(start)
	for len(work) > 0 {
		b := work[0]
		work = work[1:]
		inWork[b.Index] = false

		state, ok := in[b]
		if !ok {
			continue
		}
		out := p.transfer(p.clone(state), b)
		for _, s := range next(b) {
			cur, seen := in[s]
			var merged S
			if seen {
				merged = p.join(p.clone(cur), out)
			} else {
				merged = p.clone(out)
			}
			if !seen || !p.equal(cur, merged) {
				in[s] = merged
				push(s)
			}
		}
	}
	return in
}

// factEnv is the abstract store shared by the fact-tracking analyzers: one
// small monotone bitmask of facts per local variable. Join is key-union
// with bitwise-or, so the lattice height is bounded by (locals x fact
// bits) and termination is structural.
type factEnv map[types.Object]uint64

// maxFactSites caps how many origin sites a single function tracks; the cap
// keeps every site a distinct bit in a factEnv value. Functions beyond the
// cap lose tracking for the excess sites, never gaining false reports.
const maxFactSites = 32

func cloneFactEnv(e factEnv) factEnv {
	out := make(factEnv, len(e))
	for k, v := range e {
		out[k] = v
	}
	return out
}

func joinFactEnv(a, b factEnv) factEnv {
	for k, v := range b {
		a[k] |= v
	}
	return a
}

func equalFactEnv(a, b factEnv) bool {
	if len(a) != len(b) {
		return false
	}
	for k, v := range a {
		if b[k] != v {
			return false
		}
	}
	return true
}

// factFlow builds the flowProblem shared by the factEnv analyzers.
func factFlow(transfer func(factEnv, *Block) factEnv) flowProblem[factEnv] {
	return flowProblem[factEnv]{
		boundary: func() factEnv { return factEnv{} },
		transfer: transfer,
		join:     joinFactEnv,
		equal:    equalFactEnv,
		clone:    cloneFactEnv,
	}
}

// objOf resolves an expression to the variable object it names, or nil for
// anything that is not a plain (possibly parenthesized) identifier.
func objOf(info *types.Info, e ast.Expr) types.Object {
	id, ok := unparen(e).(*ast.Ident)
	if !ok {
		return nil
	}
	if obj := info.Uses[id]; obj != nil {
		return obj
	}
	return info.Defs[id]
}

// lhsObjs returns the variable objects bound by an assignment's left-hand
// sides (nil entries for blank, selector, index or other non-ident
// targets).
func lhsObjs(info *types.Info, lhs []ast.Expr) []types.Object {
	out := make([]types.Object, len(lhs))
	for i, l := range lhs {
		out[i] = objOf(info, l)
	}
	return out
}

// eachReadIdent visits every identifier of node that is read as a variable
// value, skipping the write targets given in skip and all selector members
// (the x of a.x names a field or method, not a variable). It does not
// descend into function literals.
func eachReadIdent(info *types.Info, node ast.Node, skip map[*ast.Ident]bool, fn func(*ast.Ident, types.Object)) {
	members := make(map[*ast.Ident]bool)
	walkExprs(node, func(n ast.Node) bool {
		if s, ok := n.(*ast.SelectorExpr); ok {
			members[s.Sel] = true
		}
		return true
	})
	walkExprs(node, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok || members[id] || skip[id] {
			return true
		}
		obj := info.Uses[id]
		if obj == nil {
			return true
		}
		if v, ok := obj.(*types.Var); ok && !v.IsField() {
			fn(id, obj)
		}
		return true
	})
}

// assignTargets collects the identifier nodes that are written (not read)
// by a CFG node: assignment LHS idents and range Key/Value idents.
func assignTargets(n ast.Node) map[*ast.Ident]bool {
	skip := make(map[*ast.Ident]bool)
	switch n := n.(type) {
	case *ast.AssignStmt:
		for _, l := range n.Lhs {
			if id, ok := unparen(l).(*ast.Ident); ok {
				skip[id] = true
			}
		}
	case *ast.RangeStmt:
		if id, ok := n.Key.(*ast.Ident); ok {
			skip[id] = true
		}
		if id, ok := n.Value.(*ast.Ident); ok {
			skip[id] = true
		}
	}
	return skip
}

// reporter dedupes findings emitted while replaying transfer functions over
// the solved states (a block can be replayed at most once, but several
// paths can blame the same origin position).
type reporter struct {
	p    *pass
	seen map[reportKey]bool
}

type reportKey struct {
	pos token.Pos
	msg string
}

func newReporter(p *pass) *reporter {
	return &reporter{p: p, seen: make(map[reportKey]bool)}
}

func (r *reporter) reportf(pos token.Pos, format string, args ...any) {
	f := Finding{
		Pos:      r.p.m.Fset.Position(pos),
		Analyzer: r.p.name,
		Message:  fmt.Sprintf(format, args...),
	}
	key := reportKey{pos: pos, msg: f.Message}
	if r.seen[key] {
		return
	}
	r.seen[key] = true
	r.p.findings = append(r.p.findings, f)
}
