package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// errdiscard flags discarded results of the error-bearing entry points the
// fault-injection rework made mandatory to check: comm.World.Run (which
// since PR 3 reports *RankError / *DeadlockError instead of panicking), the
// Try* payload decoders, and harness Experiment.Run. Dropping any of these
// turns a typed, diagnosable failure back into the silent-wrong-answer mode
// the error plumbing exists to eliminate.
//
// Unlike panicpolicy's syntactic discard check (bare statement, blank
// assignment), errdiscard is flow-sensitive on the new dataflow engine: an
// error assigned to a variable must be read — in a condition, a return, an
// argument — on every path before the variable is overwritten or the
// function exits. `if err != nil` on either branch counts as checking;
// rebinding a still-unchecked err does not.
var errDiscardAnalyzer = &Analyzer{
	Name:     "errdiscard",
	Doc:      "flag World.Run / Try-decoder / Experiment.Run errors that are dropped or never checked",
	Severity: SeverityError,
	Version:  1,
	Run:      runErrDiscard,
}

// errSource describes one monitored call: how to render it and which result
// is the error.
type errSource struct {
	label    string
	errIndex int // index of the error result
	results  int // total results
}

// errSourceOf classifies a call as a monitored error producer: the directly
// monitored entry points, or — interprocedurally — any summarized function
// whose result carries a monitored error on some path (a helper wrapping
// World.Run must be checked exactly like World.Run itself).
func errSourceOf(m *Module, info *types.Info, call *ast.CallExpr) (errSource, bool) {
	if src, ok := errSourceBase(info, call); ok {
		return src, true
	}
	f := calleeFunc(info, call)
	if f == nil {
		return errSource{}, false
	}
	if sum := m.calleeSummary(f); sum != nil {
		for i, label := range sum.ErrLabel {
			if label != "" {
				return errSource{
					label:    label + " (via " + f.Name() + ")",
					errIndex: i,
					results:  sum.NumResults,
				}, true
			}
		}
	}
	return errSource{}, false
}

// errSourceBase classifies the directly monitored error producers.
func errSourceBase(info *types.Info, call *ast.CallExpr) (errSource, bool) {
	if f := calleeFunc(info, call); f != nil {
		switch funcPkgPath(f) {
		case commPkgPath:
			switch f.Name() {
			case "Run":
				if named := recvNamedType(f); named != nil && named.Obj().Name() == "World" {
					return errSource{label: "comm.World.Run", errIndex: 0, results: 1}, true
				}
			case "TryDecodeMatrix", "TryDecodeMatrices":
				return errSource{label: "comm." + f.Name(), errIndex: 1, results: 2}, true
			case "TryDecodeMatrixInto":
				return errSource{label: "comm.TryDecodeMatrixInto", errIndex: 0, results: 1}, true
			}
		}
		return errSource{}, false
	}
	// Experiment.Run is a func-typed field, so it dispatches through a
	// selection rather than a named function.
	sel, ok := unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return errSource{}, false
	}
	selection := info.Selections[sel]
	if selection == nil || selection.Kind() != types.FieldVal || sel.Sel.Name != "Run" {
		return errSource{}, false
	}
	named, ok := derefNamed(selection.Recv())
	if !ok || named.Obj().Pkg() == nil {
		return errSource{}, false
	}
	if named.Obj().Pkg().Path() != harnessPkgPath || named.Obj().Name() != "Experiment" {
		return errSource{}, false
	}
	return errSource{label: "harness.Experiment.Run", errIndex: 1, results: 2}, true
}

// recvNamedType returns the named type of a method's receiver (through one
// pointer), or nil for package functions.
func recvNamedType(f *types.Func) *types.Named {
	sig, ok := f.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return nil
	}
	named, _ := derefNamed(sig.Recv().Type())
	return named
}

func derefNamed(t types.Type) (*types.Named, bool) {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	return named, ok
}

// errBirth is one monitored assignment site within a function.
type errBirth struct {
	pos   token.Pos
	label string
}

func runErrDiscard(m *Module) []Finding {
	p := &pass{m: m, name: "errdiscard"}
	rep := newReporter(p)
	for _, pkg := range m.Pkgs {
		for _, file := range pkg.Files {
			eachFuncBody(file, func(body *ast.BlockStmt) {
				errDiscardFunc(rep, m, pkg.Info, body)
			})
		}
	}
	return p.findings
}

func errDiscardFunc(rep *reporter, m *Module, info *types.Info, body *ast.BlockStmt) {
	g := BuildCFG(body)
	// Collect the monitored assignment sites up front: the transfer function
	// runs more than once per block during fixed-point iteration, so site
	// identity must not depend on visit count.
	var births []errBirth
	sites := make(map[*ast.AssignStmt]int)
	for _, b := range g.Blocks {
		for _, n := range b.Nodes {
			a, ok := n.(*ast.AssignStmt)
			if !ok {
				continue
			}
			call, ok := rhsCall(a)
			if !ok {
				continue
			}
			src, ok := errSourceOf(m, info, call)
			if !ok || len(a.Lhs) != src.results || len(births) >= maxFactSites {
				continue
			}
			sites[a] = len(births)
			births = append(births, errBirth{pos: call.Pos(), label: src.label})
		}
	}

	transfer := func(env factEnv, b *Block, report bool) factEnv {
		for _, n := range b.Nodes {
			skip := assignTargets(n)
			// Any read of a pending error variable counts as checking it.
			eachReadIdent(info, n, skip, func(_ *ast.Ident, obj types.Object) {
				delete(env, obj)
			})
			switch n := n.(type) {
			case *ast.ExprStmt:
				if call, ok := unparen(n.X).(*ast.CallExpr); ok {
					if src, ok := errSourceOf(m, info, call); ok {
						if report {
							rep.reportf(call.Pos(), "the error returned by %s is discarded; a failed run must be handled, not dropped", src.label)
						}
					}
				}
			case *ast.AssignStmt:
				errDiscardAssign(rep, m, info, env, sites, births, n, report)
			case *ast.ReturnStmt:
				// A return that propagates some other non-nil error value
				// supersedes pending errors: the errSlot idiom gives domain
				// errors precedence over the World.Run transport error, and
				// abandoning the latter on that path is deliberate.
				if returnsErrorValue(info, n) {
					for obj := range env {
						delete(env, obj)
					}
				}
			}
		}
		return env
	}

	in := solveFlow(g, factFlow(func(env factEnv, b *Block) factEnv {
		return transfer(env, b, false)
	}))
	// Replay for deterministic reporting, then flag what survives to Exit.
	for _, b := range g.Blocks {
		env, ok := in[b]
		if !ok {
			continue
		}
		out := transfer(cloneFactEnv(env), b, true)
		if b == g.Exit {
			reportPending(rep, out, births, "the error returned by %s is assigned but never checked")
		}
	}
}

// errDiscardAssign applies one assignment: kill-and-rebind error facts,
// reporting blank discards immediately and pending errors that are about to
// be overwritten unchecked.
func errDiscardAssign(rep *reporter, m *Module, info *types.Info, env factEnv, sites map[*ast.AssignStmt]int, births []errBirth, n *ast.AssignStmt, report bool) {
	targets := lhsObjs(info, n.Lhs)
	// Overwriting a variable kills its fact; doing so while the error is
	// still pending is itself the bug.
	for _, obj := range targets {
		if obj == nil {
			continue
		}
		if bits := env[obj]; bits != 0 && report {
			reportBits(rep, bits, births, "the error returned by %s is overwritten before being checked")
		}
		delete(env, obj)
	}
	idx, ok := sites[n]
	if !ok {
		return
	}
	birth := births[idx]
	call, _ := rhsCall(n)
	errLhs := n.Lhs[errSiteIndex(m, info, call)]
	if id, ok := unparen(errLhs).(*ast.Ident); ok && id.Name == "_" {
		if report {
			rep.reportf(birth.pos, "the error returned by %s is assigned to _ and dropped", birth.label)
		}
		return
	}
	obj := objOf(info, errLhs)
	if obj == nil {
		return // stored into a field/element; assume the owner checks it
	}
	env[obj] = 1 << uint(idx)
}

// returnsErrorValue reports whether a return statement carries a non-nil
// expression of an error type.
func returnsErrorValue(info *types.Info, n *ast.ReturnStmt) bool {
	for _, r := range n.Results {
		if id, ok := unparen(r).(*ast.Ident); ok && id.Name == "nil" {
			continue
		}
		tv, ok := info.Types[r]
		if !ok || tv.Type == nil {
			continue
		}
		if implementsError(tv.Type) {
			return true
		}
	}
	return false
}

var errorIface = types.Universe.Lookup("error").Type().Underlying().(*types.Interface)

// implementsError covers both the error interface itself and concrete error
// types like *comm.RankError.
func implementsError(t types.Type) bool {
	return types.Implements(t, errorIface)
}

// errSiteIndex re-derives the error result index of a monitored call.
func errSiteIndex(m *Module, info *types.Info, call *ast.CallExpr) int {
	src, _ := errSourceOf(m, info, call)
	return src.errIndex
}

// rhsCall returns the single call expression on an assignment's right-hand
// side, if that is the assignment's whole RHS.
func rhsCall(n *ast.AssignStmt) (*ast.CallExpr, bool) {
	if len(n.Rhs) != 1 {
		return nil, false
	}
	call, ok := unparen(n.Rhs[0]).(*ast.CallExpr)
	return call, ok
}

func reportPending(rep *reporter, env factEnv, births []errBirth, format string) {
	var all uint64
	for _, bits := range env {
		all |= bits
	}
	reportBits(rep, all, births, format)
}

func reportBits(rep *reporter, bits uint64, births []errBirth, format string) {
	for i, b := range births {
		if bits&(1<<uint(i)) != 0 {
			rep.reportf(b.pos, format, b.label)
		}
	}
}
