package analysis

import (
	"fmt"
	"go/ast"
	"go/types"
)

// matalias flags calls to mat kernels whose destination argument may alias
// a source argument. The mat package documents which kernels tolerate
// aliasing (Add, Sub, Neg read and write elementwise in lockstep) and which
// do not: the GEMM family and Transpose read their sources while writing
// dst, so an aliased call computes with partially overwritten operands and
// silently produces garbage — the worst failure mode a solver kernel can
// have, because the residual check downstream is the first place it shows.
//
// The may-alias relation is derived per function, conservatively, from
// three sources: identical expressions (mat.Mul(a, a, b)), view-constructor
// chains (v := a.View(...) or a.Row(i) aliases a, including when the view
// call appears inline as an argument), and shared backing arrays
// (&mat.Matrix{Data: a.Data} aliases a). Distinct views of the same parent
// are treated as aliasing even when their element ranges happen to be
// disjoint: the analyzer checks the documented contract ("dst must not
// alias a or b"), not runtime overlap.
var matAliasAnalyzer = &Analyzer{
	Name:     "matalias",
	Doc:      "flag mat kernel calls whose destination may alias a source operand",
	Severity: SeverityError,
	Version:  1,
	Run:      runMatAlias,
}

const matPkgPath = "blocktri/internal/mat"

// matKernel describes one checked kernel: which argument index is the
// destination and which are the sources it must not alias. Indexes are
// into ast.CallExpr.Args (the receiver of a method call is not counted).
type matKernel struct {
	dst  int
	srcs []int
}

// matKernels lists the kernels whose documentation says "dst must not
// alias". Aliasing-safe kernels (Add, Sub, Neg, AXPY, CopyFrom) are
// deliberately absent.
var matKernels = map[string]matKernel{
	"Mul":       {dst: 0, srcs: []int{1, 2}},
	"MulAdd":    {dst: 0, srcs: []int{1, 2}},
	"MulSub":    {dst: 0, srcs: []int{1, 2}},
	"MulTrans":  {dst: 0, srcs: []int{1, 2}},
	"GEMM":      {dst: 4, srcs: []int{1, 2}},
	"Transpose": {dst: 0, srcs: []int{1}},
	// (*LU).SolveTo(dst, b): dst must not alias b.
	"SolveTo": {dst: 0, srcs: []int{1}},
}

// viewMethods are mat.Matrix methods whose result shares storage with the
// receiver.
var viewMethods = map[string]bool{"View": true, "Row": true, "Col": true}

// freshFuncs are mat functions/methods whose result is freshly allocated
// and therefore aliases nothing the caller holds.
var freshFuncs = map[string]bool{
	"New": true, "NewFromSlice": true, "Identity": true, "Diag": true,
	"Random": true, "RandomDiagDominant": true, "RandomSPD": true,
	"Clone": true, "Inverse": true, "Solve": true,
}

func runMatAlias(m *Module) []Finding {
	p := &pass{m: m, name: "matalias"}
	for _, pkg := range m.Pkgs {
		for _, file := range pkg.Files {
			eachFuncBody(file, func(body *ast.BlockStmt) {
				checkFuncAliases(p, pkg.Info, body)
			})
		}
	}
	return p.findings
}

// checkFuncAliases analyzes one function body in a single source-ordered
// walk: matrix-typed assignments update the alias-root map as they are
// encountered, and each kernel call is checked against the map state at
// that point. Forward flow only, deliberately: loop-carried aliasing
// (y = dst at the bottom of a ping-pong double-buffer loop) is exactly the
// idiom whose buffers alternate by construction, and flagging it would
// drown the signal in suppressions.
func checkFuncAliases(p *pass, info *types.Info, body *ast.BlockStmt) {
	aliases := make(map[types.Object]string)
	inspectShallow(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			if len(n.Lhs) != len(n.Rhs) {
				return true
			}
			for i, lhs := range n.Lhs {
				id, ok := lhs.(*ast.Ident)
				if !ok || id.Name == "_" {
					continue
				}
				obj := info.Defs[id]
				if obj == nil {
					obj = info.Uses[id]
				}
				// Only matrix-valued assignments can transfer storage.
				if obj == nil || !isMatrixType(info.TypeOf(n.Rhs[i])) {
					continue
				}
				if key, ok := aliasKey(info, aliases, n.Rhs[i]); ok {
					aliases[obj] = key
				} else {
					// Reassigned to fresh or unknown storage: the old
					// alias no longer holds.
					delete(aliases, obj)
				}
			}
		case *ast.CallExpr:
			checkKernelCall(p, info, aliases, n)
		}
		return true
	})
}

// checkKernelCall reports a finding if a mat kernel call's destination may
// alias one of its sources under the current alias map.
func checkKernelCall(p *pass, info *types.Info, aliases map[types.Object]string, call *ast.CallExpr) {
	f := calleeFunc(info, call)
	if f == nil || funcPkgPath(f) != matPkgPath {
		return
	}
	k, ok := matKernels[f.Name()]
	if !ok || len(call.Args) <= k.dst {
		return
	}
	dstKey, ok := aliasKey(info, aliases, call.Args[k.dst])
	if !ok {
		return
	}
	for _, si := range k.srcs {
		if si >= len(call.Args) {
			continue
		}
		srcKey, ok := aliasKey(info, aliases, call.Args[si])
		if ok && srcKey == dstKey {
			p.reportf(call.Pos(),
				"destination %s may alias source %s in mat.%s (the kernel reads its sources while writing dst; use a fresh matrix or Clone)",
				types.ExprString(call.Args[k.dst]), types.ExprString(call.Args[si]), f.Name())
		}
	}
}

// aliasKey computes a canonical storage-root key for an expression: two
// expressions with the same key may share backing storage. ok=false means
// the expression's storage is unknown or fresh, in which case no aliasing
// is assumed.
func aliasKey(info *types.Info, aliases map[types.Object]string, e ast.Expr) (string, bool) {
	switch e := unparen(e).(type) {
	case *ast.Ident:
		obj := info.Uses[e]
		if obj == nil {
			obj = info.Defs[e]
		}
		if obj == nil {
			return "", false
		}
		if key, ok := aliases[obj]; ok {
			return key, true
		}
		return fmt.Sprintf("obj:%s@%d", obj.Id(), obj.Pos()), true
	case *ast.SelectorExpr:
		base, ok := aliasKey(info, aliases, e.X)
		if !ok {
			return "", false
		}
		return base + "." + e.Sel.Name, true
	case *ast.IndexExpr:
		base, ok := aliasKey(info, aliases, e.X)
		if !ok {
			return "", false
		}
		return base + "[" + types.ExprString(e.Index) + "]", true
	case *ast.StarExpr:
		return aliasKey(info, aliases, e.X)
	case *ast.UnaryExpr:
		return aliasKey(info, aliases, e.X)
	case *ast.CallExpr:
		f := calleeFunc(info, e)
		if f == nil || funcPkgPath(f) != matPkgPath {
			return "", false
		}
		if freshFuncs[f.Name()] {
			return "", false
		}
		if viewMethods[f.Name()] {
			// The view aliases its receiver.
			if sel, ok := unparen(e.Fun).(*ast.SelectorExpr); ok {
				return aliasKey(info, aliases, sel.X)
			}
		}
		return "", false
	case *ast.CompositeLit:
		// &mat.Matrix{..., Data: x.Data} aliases x.
		if !isMatrixType(info.TypeOf(e)) {
			return "", false
		}
		for _, elt := range e.Elts {
			kv, ok := elt.(*ast.KeyValueExpr)
			if !ok {
				continue
			}
			if id, ok := kv.Key.(*ast.Ident); ok && id.Name == "Data" {
				if sel, ok := unparen(kv.Value).(*ast.SelectorExpr); ok && sel.Sel.Name == "Data" {
					return aliasKey(info, aliases, sel.X)
				}
				return aliasKey(info, aliases, kv.Value)
			}
		}
		return "", false
	}
	return "", false
}

// isMatrixType reports whether t is mat.Matrix or *mat.Matrix.
func isMatrixType(t types.Type) bool {
	if t == nil {
		return false
	}
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok || named.Obj().Pkg() == nil {
		return false
	}
	return named.Obj().Pkg().Path() == matPkgPath && named.Obj().Name() == "Matrix"
}
