package analysis

import (
	"go/ast"
	"go/token"
)

// Control-flow graph construction over go/ast function bodies.
//
// The syntactic analyzers of PR 1 reason in source order, which is exact for
// straight-line code and conservative everywhere else. The contracts added
// since — workspace checkouts that die at Reset, pooled payloads that must
// reach Release on every path, typed errors that must be looked at — are
// path properties, so this file gives the analysis framework a real CFG:
// basic blocks of statements and condition fragments connected by branch,
// loop, switch, short-circuit and defer edges, over which dataflow.go runs
// fixed-point iteration.
//
// Design decisions, chosen for the analyzers this engine serves:
//
//   - Nodes are whole statements (AssignStmt, ExprStmt, ReturnStmt, ...)
//     except for branch conditions, which are decomposed so that && and ||
//     get genuine short-circuit edges: in `if a && b`, b evaluates only on
//     a's true edge.
//   - `defer f(x)` is modeled by running the deferred call in the Exit
//     block, which every return reaches. This is exact for the dominant
//     idiom (unconditional defer right after an acquisition) and
//     over-approximates conditionally registered defers by assuming they
//     run; registration-time argument evaluation is not re-modeled.
//   - Compound statements never appear as nodes themselves; only their
//     evaluated fragments do (a RangeStmt appears in its head block so
//     transfer functions can see the loop-variable rebinding, but analyzers
//     must not descend into its Body — see walkExprs).
//   - panic(...) terminates its block with an edge to Exit (the deferred
//     calls still run), matching Go semantics closely enough for
//     path-sensitive release/escape tracking.
//   - goto is handled conservatively by edging to Exit; the module does not
//     use it, and a conservative edge only widens states.
type CFG struct {
	Entry *Block
	// Exit is the single synthetic exit block; return statements edge to it
	// and deferred calls execute in it (in reverse registration order).
	Exit   *Block
	Blocks []*Block
}

// Block is one basic block: nodes that execute consecutively with no
// internal branching, followed by zero or more successor edges.
type Block struct {
	Index int
	Nodes []ast.Node
	Succs []*Block
	Preds []*Block
}

// cfgBuilder holds the state of one function body's construction.
type cfgBuilder struct {
	cfg *CFG
	// cur is the block under construction; nil after a terminating
	// statement (return, panic, break, ...) until new reachable code opens
	// a block.
	cur *Block
	// frames tracks enclosing breakable/continuable constructs for
	// break/continue resolution, innermost last.
	frames []ctrlFrame
	defers []*ast.CallExpr
}

// ctrlFrame is one enclosing loop, switch or select.
type ctrlFrame struct {
	label      string
	breakTo    *Block
	continueTo *Block // nil for switch/select frames
}

// BuildCFG constructs the control-flow graph of one function body.
func BuildCFG(body *ast.BlockStmt) *CFG {
	b := &cfgBuilder{cfg: &CFG{}}
	b.cfg.Entry = b.newBlock()
	b.cfg.Exit = &Block{} // appended last, after all interior blocks
	b.cur = b.cfg.Entry
	b.stmtList(body.List, "")
	if b.cur != nil {
		b.edge(b.cur, b.cfg.Exit)
	}
	// Deferred calls run on every path out of the function, LIFO.
	for i := len(b.defers) - 1; i >= 0; i-- {
		b.cfg.Exit.Nodes = append(b.cfg.Exit.Nodes, b.defers[i])
	}
	b.cfg.Exit.Index = len(b.cfg.Blocks)
	b.cfg.Blocks = append(b.cfg.Blocks, b.cfg.Exit)
	return b.cfg
}

func (b *cfgBuilder) newBlock() *Block {
	blk := &Block{Index: len(b.cfg.Blocks)}
	b.cfg.Blocks = append(b.cfg.Blocks, blk)
	return blk
}

func (b *cfgBuilder) edge(from, to *Block) {
	from.Succs = append(from.Succs, to)
	to.Preds = append(to.Preds, from)
}

// add appends a node to the current block, opening one if the previous
// statement terminated (unreachable code still gets blocks so its findings
// are not silently lost, they just carry no incoming state).
func (b *cfgBuilder) add(n ast.Node) {
	if b.cur == nil {
		b.cur = b.newBlock()
	}
	b.cur.Nodes = append(b.cur.Nodes, n)
}

func (b *cfgBuilder) stmtList(list []ast.Stmt, label string) {
	_ = label // labels attach via LabeledStmt, not list position
	for _, s := range list {
		b.stmt(s, "")
	}
}

// jump terminates the current block with an edge to target.
func (b *cfgBuilder) jump(target *Block) {
	if b.cur != nil {
		b.edge(b.cur, target)
	}
	b.cur = nil
}

// frameFor resolves a break/continue target; an empty label means the
// innermost applicable frame.
func (b *cfgBuilder) frameFor(label string, needContinue bool) *ctrlFrame {
	for i := len(b.frames) - 1; i >= 0; i-- {
		f := &b.frames[i]
		if needContinue && f.continueTo == nil {
			continue
		}
		if label == "" || f.label == label {
			return f
		}
	}
	return nil
}

func (b *cfgBuilder) stmt(s ast.Stmt, label string) {
	switch s := s.(type) {
	case *ast.BlockStmt:
		b.stmtList(s.List, "")
	case *ast.LabeledStmt:
		b.stmt(s.Stmt, s.Label.Name)
	case *ast.IfStmt:
		b.ifStmt(s)
	case *ast.ForStmt:
		b.forStmt(s, label)
	case *ast.RangeStmt:
		b.rangeStmt(s, label)
	case *ast.SwitchStmt:
		b.switchStmt(s, label)
	case *ast.TypeSwitchStmt:
		b.typeSwitchStmt(s, label)
	case *ast.SelectStmt:
		b.selectStmt(s, label)
	case *ast.ReturnStmt:
		b.add(s)
		b.jump(b.cfg.Exit)
	case *ast.BranchStmt:
		b.branchStmt(s)
	case *ast.DeferStmt:
		b.defers = append(b.defers, s.Call)
	case *ast.ExprStmt:
		b.add(s)
		if isPanicCall(s.X) {
			b.jump(b.cfg.Exit)
		}
	case *ast.GoStmt:
		// The spawned body runs concurrently; eachFuncBody analyzes its
		// FuncLit separately. Only argument evaluation happens here.
		b.add(s)
	case *ast.EmptyStmt:
		// nothing
	default:
		// AssignStmt, DeclStmt, IncDecStmt, SendStmt, ...
		b.add(s)
	}
}

func (b *cfgBuilder) branchStmt(s *ast.BranchStmt) {
	label := ""
	if s.Label != nil {
		label = s.Label.Name
	}
	switch s.Tok {
	case token.BREAK:
		if f := b.frameFor(label, false); f != nil {
			b.jump(f.breakTo)
			return
		}
	case token.CONTINUE:
		if f := b.frameFor(label, true); f != nil {
			b.jump(f.continueTo)
			return
		}
	case token.FALLTHROUGH:
		// Handled structurally in switchStmt (the builder links
		// consecutive case bodies); reaching here means a lone
		// fallthrough, which gofmt'd code cannot produce. Ignore.
		return
	}
	// goto, or an unresolvable label: conservatively leave the function.
	b.jump(b.cfg.Exit)
}

// cond wires the evaluation of a branch condition so that short-circuit
// operands get their own blocks and edges: on entry the condition evaluates
// in the current block; control continues to t when it yields true and to f
// when it yields false.
func (b *cfgBuilder) cond(e ast.Expr, t, f *Block) {
	switch x := unparen(e).(type) {
	case *ast.BinaryExpr:
		switch x.Op {
		case token.LAND:
			mid := b.newBlock()
			b.cond(x.X, mid, f)
			b.cur = mid
			b.cond(x.Y, t, f)
			return
		case token.LOR:
			mid := b.newBlock()
			b.cond(x.X, t, mid)
			b.cur = mid
			b.cond(x.Y, t, f)
			return
		}
	case *ast.UnaryExpr:
		if x.Op == token.NOT {
			b.cond(x.X, f, t)
			return
		}
	}
	b.add(e)
	cur := b.cur
	b.edge(cur, t)
	if f != t {
		b.edge(cur, f)
	}
	b.cur = nil
}

func (b *cfgBuilder) ifStmt(s *ast.IfStmt) {
	if s.Init != nil {
		b.stmt(s.Init, "")
	}
	thenB := b.newBlock()
	join := b.newBlock()
	elseB := join
	if s.Else != nil {
		elseB = b.newBlock()
	}
	b.cond(s.Cond, thenB, elseB)
	b.cur = thenB
	b.stmtList(s.Body.List, "")
	b.jump(join)
	if s.Else != nil {
		b.cur = elseB
		b.stmt(s.Else, "")
		b.jump(join)
	}
	b.cur = join
}

func (b *cfgBuilder) forStmt(s *ast.ForStmt, label string) {
	if s.Init != nil {
		b.stmt(s.Init, "")
	}
	head := b.newBlock()
	body := b.newBlock()
	exit := b.newBlock()
	post := head
	if s.Post != nil {
		post = b.newBlock()
	}
	b.jump(head)
	b.cur = head
	if s.Cond != nil {
		b.cond(s.Cond, body, exit)
	} else {
		b.edge(head, body)
		b.cur = nil
	}
	b.frames = append(b.frames, ctrlFrame{label: label, breakTo: exit, continueTo: post})
	b.cur = body
	b.stmtList(s.Body.List, "")
	b.jump(post)
	if s.Post != nil {
		b.cur = post
		b.stmt(s.Post, "")
		b.jump(head)
	}
	b.frames = b.frames[:len(b.frames)-1]
	b.cur = exit
}

func (b *cfgBuilder) rangeStmt(s *ast.RangeStmt, label string) {
	head := b.newBlock()
	body := b.newBlock()
	exit := b.newBlock()
	b.jump(head)
	// The RangeStmt node itself sits in the head block so transfer
	// functions observe the ranged expression and the per-iteration
	// Key/Value rebinding; walkExprs keeps them out of the Body.
	head.Nodes = append(head.Nodes, s)
	b.edge(head, body)
	b.edge(head, exit)
	b.frames = append(b.frames, ctrlFrame{label: label, breakTo: exit, continueTo: head})
	b.cur = body
	b.stmtList(s.Body.List, "")
	b.jump(head)
	b.frames = b.frames[:len(b.frames)-1]
	b.cur = exit
}

func (b *cfgBuilder) switchStmt(s *ast.SwitchStmt, label string) {
	if s.Init != nil {
		b.stmt(s.Init, "")
	}
	if s.Tag != nil {
		b.add(s.Tag)
	}
	b.caseClauses(s.Body.List, label, func(cc *ast.CaseClause, blk *Block) {
		for _, e := range cc.List {
			blk.Nodes = append(blk.Nodes, e)
		}
	})
}

func (b *cfgBuilder) typeSwitchStmt(s *ast.TypeSwitchStmt, label string) {
	if s.Init != nil {
		b.stmt(s.Init, "")
	}
	// The Assign stmt (`v := x.(type)` or bare `x.(type)`) evaluates once.
	b.add(s.Assign)
	b.caseClauses(s.Body.List, label, func(cc *ast.CaseClause, blk *Block) {})
}

// caseClauses builds the shared branch structure of value and type
// switches: every clause is a successor of the dispatch block, fallthrough
// chains consecutive bodies, and a missing default adds a skip edge.
func (b *cfgBuilder) caseClauses(list []ast.Stmt, label string, addGuards func(*ast.CaseClause, *Block)) {
	dispatch := b.cur
	if dispatch == nil {
		dispatch = b.newBlock()
		b.cur = dispatch
	}
	join := b.newBlock()
	b.frames = append(b.frames, ctrlFrame{label: label, breakTo: join})
	hasDefault := false
	blocks := make([]*Block, len(list))
	for i, cs := range list {
		blocks[i] = b.newBlock()
		b.edge(dispatch, blocks[i])
		if cc, ok := cs.(*ast.CaseClause); ok {
			if cc.List == nil {
				hasDefault = true
			}
			addGuards(cc, blocks[i])
		}
	}
	for i, cs := range list {
		cc, ok := cs.(*ast.CaseClause)
		if !ok {
			continue
		}
		b.cur = blocks[i]
		fallsThrough := false
		for _, st := range cc.Body {
			if br, ok := st.(*ast.BranchStmt); ok && br.Tok == token.FALLTHROUGH {
				fallsThrough = true
				continue
			}
			b.stmt(st, "")
		}
		if fallsThrough && i+1 < len(blocks) {
			b.jump(blocks[i+1])
		} else {
			b.jump(join)
		}
	}
	if !hasDefault {
		b.edge(dispatch, join)
	}
	b.frames = b.frames[:len(b.frames)-1]
	b.cur = join
}

func (b *cfgBuilder) selectStmt(s *ast.SelectStmt, label string) {
	dispatch := b.cur
	if dispatch == nil {
		dispatch = b.newBlock()
	}
	join := b.newBlock()
	b.frames = append(b.frames, ctrlFrame{label: label, breakTo: join})
	for _, cs := range s.Body.List {
		cc, ok := cs.(*ast.CommClause)
		if !ok {
			continue
		}
		blk := b.newBlock()
		b.edge(dispatch, blk)
		b.cur = blk
		if cc.Comm != nil {
			b.stmt(cc.Comm, "")
		}
		b.stmtList(cc.Body, "")
		b.jump(join)
	}
	if len(s.Body.List) == 0 {
		b.edge(dispatch, join)
	}
	b.frames = b.frames[:len(b.frames)-1]
	b.cur = join
}

// isPanicCall reports whether e is a call to the panic builtin.
func isPanicCall(e ast.Expr) bool {
	call, ok := unparen(e).(*ast.CallExpr)
	if !ok {
		return false
	}
	id, ok := unparen(call.Fun).(*ast.Ident)
	return ok && id.Name == "panic"
}

// walkExprs visits the expression fragments of one CFG node in evaluation
// order, without descending into nested function literals (their bodies run
// at another time and are analyzed as separate CFGs) and without descending
// into the body of a RangeStmt head node (its statements live in the loop's
// own blocks).
func walkExprs(n ast.Node, fn func(ast.Node) bool) {
	if rs, ok := n.(*ast.RangeStmt); ok {
		walkExprs(rs.X, fn)
		if rs.Key != nil {
			walkExprs(rs.Key, fn)
		}
		if rs.Value != nil {
			walkExprs(rs.Value, fn)
		}
		return
	}
	inspectShallow(n, fn)
}
