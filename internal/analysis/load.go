package analysis

import (
	"fmt"
	"go/ast"
	"go/build"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one type-checked package of the loaded module (or a fixture).
type Package struct {
	// Path is the import path ("blocktri/internal/mat", or a synthetic
	// path for test fixtures).
	Path string
	// Dir is the absolute directory the sources were read from.
	Dir   string
	Files []*ast.File
	Pkg   *types.Package
	Info  *types.Info
}

// Module is a loaded and type-checked set of packages sharing one FileSet.
// Analyzers receive a Module and scan every package in Pkgs; imported
// packages that are not in Pkgs (the standard library, or the host module
// under a fixture run) contribute type information only.
//
// A Module starts lazy: newLazyModule scans the tree (scan.go) without
// parsing bodies or type-checking anything, and ensurePackage materializes
// individual packages on demand. LoadModule is the eager form that
// materializes everything, which the fixture tests and the cold perf
// benchmarks still use.
type Module struct {
	// Root is the directory containing go.mod.
	Root string
	// Path is the module path declared in go.mod.
	Path string
	Fset *token.FileSet
	// Pkgs holds the materialized packages in dependency order (imported
	// packages first). Under a lazy run it contains only the packages some
	// cache miss forced into existence.
	Pkgs []*Package
	// NoInterp disables the interprocedural layer: calleeSummary returns
	// nil everywhere and every analyzer falls back to its intraprocedural
	// behavior. Set by the driver's -interprocedural=false escape hatch.
	NoInterp bool

	loader *loader
	scan   *moduleScan // nil for fixture modules
	// sumLoader, when set (by RunLint over a persistent cache), resolves a
	// package's function summaries and structural stats from the on-disk
	// cache instead of recomputing them. A false return means "no valid
	// entry" and the summaries are computed from source as usual.
	sumLoader func(*Package) (pkgSummaries, SummaryStats, bool)

	// Compiler-evidence fact state (compilerfacts.go). factsFn, when set by
	// RunLint, serves the fact table through the persistent cache; otherwise
	// CompilerFacts invokes the toolchain directly. hostRoot points a fixture
	// module at the host module root so fixture facts can be built against
	// the real packages. The computed table (or its error) is memoized.
	factsFn   func(*Module) (*CompilerFacts, error)
	hostRoot  string
	facts     *CompilerFacts
	factsErr  error
	factsDone bool
}

// loader resolves imports: module-local paths against the packages loaded
// so far, everything else through the stdlib source importer (which
// type-checks GOROOT packages from source, so no compiled export data and
// no external dependency is needed).
type loader struct {
	fset *token.FileSet
	std  types.Importer
	pkgs map[string]*Package
	// sums caches per-package function summaries (summary.go), keyed by the
	// loaded Package so fixture reloads of the same synthetic path never
	// serve summaries keyed on a previous type-check's objects.
	sums map[*Package]pkgSummaries
	// sumPkgStats holds each summarized (or cache-loaded) package's
	// structural counters; sumStats is their running total and sumRT the
	// per-process request counters.
	sumPkgStats map[*Package]SummaryStats
	sumStats    SummaryStats
	sumRT       SummaryRuntime
	// sumPkgSCCs holds each summarized package's call-graph condensation as
	// SCC membership lists of fully-qualified function names, in
	// reverse-topological order — the form cache entries persist.
	sumPkgSCCs map[*Package][][]string
}

func newLoader(fset *token.FileSet) *loader {
	return &loader{
		fset:        fset,
		std:         importer.ForCompiler(fset, "source", nil),
		pkgs:        make(map[string]*Package),
		sums:        make(map[*Package]pkgSummaries),
		sumPkgStats: make(map[*Package]SummaryStats),
		sumPkgSCCs:  make(map[*Package][][]string),
	}
}

// recordPkgStats files one package's structural counters and folds them
// into the loader-wide totals.
func (l *loader) recordPkgStats(pkg *Package, st SummaryStats) {
	l.sumPkgStats[pkg] = st
	l.sumStats.add(st)
}

// Import implements types.Importer.
func (l *loader) Import(path string) (*types.Package, error) {
	if p, ok := l.pkgs[path]; ok {
		return p.Pkg, nil
	}
	return l.std.Import(path)
}

// FindModuleRoot walks up from dir to the nearest directory containing a
// go.mod file.
func FindModuleRoot(dir string) (string, error) {
	dir, err := filepath.Abs(dir)
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("analysis: no go.mod found above %s", dir)
		}
		dir = parent
	}
}

// modulePath extracts the module path from the go.mod at root.
func modulePath(root string) (string, error) {
	data, err := os.ReadFile(filepath.Join(root, "go.mod"))
	if err != nil {
		return "", err
	}
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module"); ok {
			rest = strings.TrimSpace(rest)
			rest = strings.Trim(rest, `"`)
			if rest != "" {
				return rest, nil
			}
		}
	}
	return "", fmt.Errorf("analysis: no module path in %s/go.mod", root)
}

// skipDir reports whether a directory is excluded from the module walk:
// hidden and underscore directories, testdata trees (they are fixture
// inputs, not module code), and non-Go output trees.
func skipDir(name string) bool {
	if name == "" {
		return true
	}
	if strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") {
		return true
	}
	switch name {
	case "testdata", "vendor", "results", "docs", "scripts":
		return true
	}
	return false
}

// buildCtx decides which files belong to the host build. Packages with
// per-architecture implementations (the AVX-512 GEMM kernel and its
// portable fallback both declare the same symbols behind build tags) must
// be filtered exactly as the go tool would, or type-checking sees the
// declarations twice.
var buildCtx = build.Default

// goFilesIn lists the non-test .go files in dir that match the host build
// constraints (filename GOOS/GOARCH suffixes and //go:build lines), sorted
// by name.
func goFilesIn(dir string) ([]string, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var out []string
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		// An unreadable file is kept so the parse downstream reports the
		// real error instead of the package silently shrinking.
		if match, err := buildCtx.MatchFile(dir, name); err == nil && !match {
			continue
		}
		out = append(out, filepath.Join(dir, name))
	}
	sort.Strings(out)
	return out, nil
}

// asmFilesIn lists the assembly files in dir that match the host build
// constraints (filename GOOS/GOARCH suffixes and //go:build lines), sorted
// by name — the asmcheck inputs alongside goFilesIn's loader inputs.
func asmFilesIn(dir string) ([]string, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var out []string
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".s") {
			continue
		}
		if match, err := buildCtx.MatchFile(dir, name); err == nil && !match {
			continue
		}
		out = append(out, filepath.Join(dir, name))
	}
	sort.Strings(out)
	return out, nil
}

// newLazyModule scans the module under root (imports-only parses, content
// hashes, dependency order — see scan.go) without materializing any
// package. Callers pull packages in through ensurePackage as cache misses
// demand them.
func newLazyModule(root string) (*Module, error) {
	sc, err := scanModule(root)
	if err != nil {
		return nil, err
	}
	m := &Module{Root: sc.Root, Path: sc.ModPath, Fset: token.NewFileSet(), scan: sc}
	m.loader = newLoader(m.Fset)
	return m, nil
}

// ensurePackage materializes one scanned package: its module-local
// dependencies first (the type-checker needs their export information),
// then a full parse of the bytes captured at scan time, then the check.
// Already-materialized packages return immediately, so the total work of a
// run is bounded by the union of the dirty packages' import closures — the
// lazy half of the persistent-cache design.
func (m *Module) ensurePackage(path string) (*Package, error) {
	if p, ok := m.loader.pkgs[path]; ok {
		return p, nil
	}
	if m.scan == nil {
		return nil, fmt.Errorf("analysis: package %s requested from a non-lazy module", path)
	}
	sp := m.scan.ByPath[path]
	if sp == nil {
		return nil, fmt.Errorf("analysis: package %s imported but not found in module", path)
	}
	for _, dep := range sp.Deps {
		if _, err := m.ensurePackage(dep); err != nil {
			return nil, err
		}
	}
	var files []*ast.File
	for _, f := range sp.Files {
		// Parse the scanned bytes, not the file on disk: the cache key was
		// derived from these bytes, and they must stay in lockstep.
		af, err := parser.ParseFile(m.Fset, f.Name, f.Src, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, af)
	}
	pkg, err := m.check(path, files)
	if err != nil {
		return nil, fmt.Errorf("analysis: type-checking %s: %w", path, err)
	}
	pkg.Dir = sp.Dir
	m.loader.pkgs[path] = pkg
	m.Pkgs = append(m.Pkgs, pkg)
	return pkg, nil
}

// LoadModule parses and type-checks every non-test package under root
// (skipping testdata and hidden directories) and returns them in
// dependency order. It is the eager form of the lazy loader: a scan
// followed by ensurePackage over every package.
func LoadModule(root string) (*Module, error) {
	m, err := newLazyModule(root)
	if err != nil {
		return nil, err
	}
	for _, sp := range m.scan.Pkgs {
		if _, err := m.ensurePackage(sp.Path); err != nil {
			return nil, err
		}
	}
	return m, nil
}

// check type-checks one package's parsed files against the loader.
func (m *Module) check(importPath string, files []*ast.File) (*Package, error) {
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
	}
	conf := types.Config{Importer: m.loader}
	tpkg, err := conf.Check(importPath, m.Fset, files, info)
	if err != nil {
		return nil, err
	}
	return &Package{Path: importPath, Files: files, Pkg: tpkg, Info: info}, nil
}

// LoadFixture parses and type-checks the single package in dir as a
// standalone module with the synthetic import path fixturePath. The fixture
// may import packages of the host module m (that is the point: fixtures
// exercise analyzers against the real mat/comm APIs). The returned Module
// contains only the fixture package, so analyzers scan just the fixture.
func (m *Module) LoadFixture(dir, fixturePath string) (*Module, error) {
	dir, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	names, err := goFilesIn(dir)
	if err != nil {
		return nil, err
	}
	if len(names) == 0 {
		return nil, fmt.Errorf("analysis: no Go files in fixture %s", dir)
	}
	var files []*ast.File
	for _, name := range names {
		f, err := parser.ParseFile(m.Fset, name, nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	pkg, err := m.check(fixturePath, files)
	if err != nil {
		return nil, fmt.Errorf("analysis: type-checking fixture %s: %w", dir, err)
	}
	pkg.Dir = dir
	hostRoot := m.hostRoot
	if hostRoot == "" {
		hostRoot = m.Root
	}
	return &Module{
		Root:     dir,
		Path:     fixturePath,
		Fset:     m.Fset,
		Pkgs:     []*Package{pkg},
		NoInterp: m.NoInterp,
		loader:   m.loader,
		hostRoot: hostRoot,
	}, nil
}
