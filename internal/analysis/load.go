package analysis

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one type-checked package of the loaded module (or a fixture).
type Package struct {
	// Path is the import path ("blocktri/internal/mat", or a synthetic
	// path for test fixtures).
	Path string
	// Dir is the absolute directory the sources were read from.
	Dir   string
	Files []*ast.File
	Pkg   *types.Package
	Info  *types.Info
}

// Module is a fully loaded and type-checked set of packages sharing one
// FileSet. Analyzers receive a Module and scan every package in Pkgs;
// imported packages that are not in Pkgs (the standard library, or the host
// module under a fixture run) contribute type information only.
type Module struct {
	// Root is the directory containing go.mod.
	Root string
	// Path is the module path declared in go.mod.
	Path string
	Fset *token.FileSet
	// Pkgs is in dependency order (imported packages first).
	Pkgs []*Package
	// NoInterp disables the interprocedural layer: calleeSummary returns
	// nil everywhere and every analyzer falls back to its intraprocedural
	// behavior. Set by the driver's -interprocedural=false escape hatch.
	NoInterp bool

	loader *loader
}

// loader resolves imports: module-local paths against the packages loaded
// so far, everything else through the stdlib source importer (which
// type-checks GOROOT packages from source, so no compiled export data and
// no external dependency is needed).
type loader struct {
	fset *token.FileSet
	std  types.Importer
	pkgs map[string]*Package
	// sums caches per-package function summaries (summary.go), keyed by the
	// loaded Package so fixture reloads of the same synthetic path never
	// serve summaries keyed on a previous type-check's objects.
	sums     map[*Package]pkgSummaries
	sumStats SummaryStats
}

func newLoader(fset *token.FileSet) *loader {
	return &loader{
		fset: fset,
		std:  importer.ForCompiler(fset, "source", nil),
		pkgs: make(map[string]*Package),
		sums: make(map[*Package]pkgSummaries),
	}
}

// Import implements types.Importer.
func (l *loader) Import(path string) (*types.Package, error) {
	if p, ok := l.pkgs[path]; ok {
		return p.Pkg, nil
	}
	return l.std.Import(path)
}

// FindModuleRoot walks up from dir to the nearest directory containing a
// go.mod file.
func FindModuleRoot(dir string) (string, error) {
	dir, err := filepath.Abs(dir)
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("analysis: no go.mod found above %s", dir)
		}
		dir = parent
	}
}

// modulePath extracts the module path from the go.mod at root.
func modulePath(root string) (string, error) {
	data, err := os.ReadFile(filepath.Join(root, "go.mod"))
	if err != nil {
		return "", err
	}
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module"); ok {
			rest = strings.TrimSpace(rest)
			rest = strings.Trim(rest, `"`)
			if rest != "" {
				return rest, nil
			}
		}
	}
	return "", fmt.Errorf("analysis: no module path in %s/go.mod", root)
}

// skipDir reports whether a directory is excluded from the module walk:
// hidden and underscore directories, testdata trees (they are fixture
// inputs, not module code), and non-Go output trees.
func skipDir(name string) bool {
	if name == "" {
		return true
	}
	if strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") {
		return true
	}
	switch name {
	case "testdata", "vendor", "results", "docs", "scripts":
		return true
	}
	return false
}

// goFilesIn lists the non-test .go files in dir, sorted by name.
func goFilesIn(dir string) ([]string, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var out []string
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		out = append(out, filepath.Join(dir, name))
	}
	sort.Strings(out)
	return out, nil
}

// LoadModule parses and type-checks every non-test package under root
// (skipping testdata and hidden directories) and returns them in
// dependency order.
func LoadModule(root string) (*Module, error) {
	root, err := filepath.Abs(root)
	if err != nil {
		return nil, err
	}
	modPath, err := modulePath(root)
	if err != nil {
		return nil, err
	}
	m := &Module{Root: root, Path: modPath, Fset: token.NewFileSet()}
	m.loader = newLoader(m.Fset)

	// Discover package directories.
	var dirs []string
	err = filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		if path != root && skipDir(d.Name()) {
			return filepath.SkipDir
		}
		files, err := goFilesIn(path)
		if err != nil {
			return err
		}
		if len(files) > 0 {
			dirs = append(dirs, path)
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	sort.Strings(dirs)

	// Parse every package, record its module-local imports, then
	// type-check in dependency order.
	type parsed struct {
		path  string
		dir   string
		files []*ast.File
		deps  []string
	}
	byPath := make(map[string]*parsed)
	var paths []string
	for _, dir := range dirs {
		rel, err := filepath.Rel(root, dir)
		if err != nil {
			return nil, err
		}
		importPath := modPath
		if rel != "." {
			importPath = modPath + "/" + filepath.ToSlash(rel)
		}
		p := &parsed{path: importPath, dir: dir}
		names, err := goFilesIn(dir)
		if err != nil {
			return nil, err
		}
		pkgName := ""
		for _, name := range names {
			f, err := parser.ParseFile(m.Fset, name, nil, parser.ParseComments)
			if err != nil {
				return nil, err
			}
			if pkgName == "" {
				pkgName = f.Name.Name
			} else if f.Name.Name != pkgName {
				return nil, fmt.Errorf("analysis: %s: mixed packages %s and %s", dir, pkgName, f.Name.Name)
			}
			p.files = append(p.files, f)
			for _, imp := range f.Imports {
				ip := strings.Trim(imp.Path.Value, `"`)
				if ip == modPath || strings.HasPrefix(ip, modPath+"/") {
					p.deps = append(p.deps, ip)
				}
			}
		}
		byPath[importPath] = p
		paths = append(paths, importPath)
	}

	// Topological sort by module-local imports (DFS, cycle detection).
	const (
		unvisited = 0
		visiting  = 1
		done      = 2
	)
	state := make(map[string]int)
	var order []string
	var visit func(path string) error
	visit = func(path string) error {
		switch state[path] {
		case done:
			return nil
		case visiting:
			return fmt.Errorf("analysis: import cycle through %s", path)
		}
		state[path] = visiting
		p := byPath[path]
		if p == nil {
			return fmt.Errorf("analysis: package %s imported but not found in module", path)
		}
		deps := append([]string(nil), p.deps...)
		sort.Strings(deps)
		for _, dep := range deps {
			if err := visit(dep); err != nil {
				return err
			}
		}
		state[path] = done
		order = append(order, path)
		return nil
	}
	for _, path := range paths {
		if err := visit(path); err != nil {
			return nil, err
		}
	}

	for _, path := range order {
		p := byPath[path]
		pkg, err := m.check(path, p.files)
		if err != nil {
			return nil, fmt.Errorf("analysis: type-checking %s: %w", path, err)
		}
		pkg.Dir = p.dir
		m.loader.pkgs[path] = pkg
		m.Pkgs = append(m.Pkgs, pkg)
	}
	return m, nil
}

// check type-checks one package's parsed files against the loader.
func (m *Module) check(importPath string, files []*ast.File) (*Package, error) {
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
	}
	conf := types.Config{Importer: m.loader}
	tpkg, err := conf.Check(importPath, m.Fset, files, info)
	if err != nil {
		return nil, err
	}
	return &Package{Path: importPath, Files: files, Pkg: tpkg, Info: info}, nil
}

// LoadFixture parses and type-checks the single package in dir as a
// standalone module with the synthetic import path fixturePath. The fixture
// may import packages of the host module m (that is the point: fixtures
// exercise analyzers against the real mat/comm APIs). The returned Module
// contains only the fixture package, so analyzers scan just the fixture.
func (m *Module) LoadFixture(dir, fixturePath string) (*Module, error) {
	dir, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	names, err := goFilesIn(dir)
	if err != nil {
		return nil, err
	}
	if len(names) == 0 {
		return nil, fmt.Errorf("analysis: no Go files in fixture %s", dir)
	}
	var files []*ast.File
	for _, name := range names {
		f, err := parser.ParseFile(m.Fset, name, nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	pkg, err := m.check(fixturePath, files)
	if err != nil {
		return nil, fmt.Errorf("analysis: type-checking fixture %s: %w", dir, err)
	}
	pkg.Dir = dir
	return &Module{
		Root:     dir,
		Path:     fixturePath,
		Fset:     m.Fset,
		Pkgs:     []*Package{pkg},
		NoInterp: m.NoInterp,
		loader:   m.loader,
	}, nil
}
