package analysis

import (
	"go/ast"
	"strings"
)

// hotalloc flags calls to the mat package's allocating constructors
// (mat.New, mat.NewFromSlice, mat.NewWorkspace, ...) inside solve-phase
// functions of the core solver package. The workspace-arena rework makes the
// solve phase allocation-free: Factor allocates once, Solve and SolveTo
// check storage out of per-rank arenas, and BenchmarkARDSolve pins
// 0 allocs/op. A fresh mat.New* in a function on the solve path is how that
// property quietly rots — each right-hand side would pay the allocator and
// the garbage collector again.
//
// Scope: functions (and their nested function literals) whose name contains
// "solve", case-insensitively, in blocktri/internal/core. Factor-phase code
// allocates freely by design and is not scanned. Deliberate allocations —
// the Solve wrappers that return a caller-owned result, one-time lazy
// initialization on states restored from disk — carry
// //lint:ignore hotalloc <reason> directives.
var hotAllocAnalyzer = &Analyzer{
	Name:     "hotalloc",
	Doc:      "flag mat.New* allocations inside solve-phase functions of the core package",
	Severity: SeverityWarning,
	Version:  1,
	Run:      runHotAlloc,
}

// corePkgPath is the one production package whose solve paths are required
// to be allocation-free.
const corePkgPath = "blocktri/internal/core"

// hotallocInScope admits the core package and analyzer fixtures (which load
// under a synthetic "fix/..." path).
func hotallocInScope(path string) bool {
	return path == corePkgPath || strings.HasPrefix(path, "fix/")
}

func runHotAlloc(m *Module) []Finding {
	p := &pass{m: m, name: "hotalloc"}
	for _, pkg := range m.Pkgs {
		if !hotallocInScope(pkg.Path) {
			continue
		}
		for _, file := range pkg.Files {
			ast.Inspect(file, func(n ast.Node) bool {
				fd, ok := n.(*ast.FuncDecl)
				if !ok || fd.Body == nil || !isSolvePhaseName(fd.Name.Name) {
					return true
				}
				// The whole body is solve-phase, including nested function
				// literals (the rank bodies handed to World.Run execute once
				// per solve).
				ast.Inspect(fd.Body, func(n ast.Node) bool {
					call, ok := n.(*ast.CallExpr)
					if !ok {
						return true
					}
					f := calleeFunc(pkg.Info, call)
					if f == nil || funcPkgPath(f) != "blocktri/internal/mat" {
						return true
					}
					if !strings.HasPrefix(f.Name(), "New") {
						return true
					}
					p.reportf(call.Pos(),
						"mat.%s allocates inside solve-phase function %s: check storage out of a mat.Workspace instead, or add //lint:ignore hotalloc with the reason the allocation is intentional",
						f.Name(), fd.Name.Name)
					return true
				})
				// Already walked the body; don't descend twice. Nested named
				// FuncDecls cannot occur in Go, so skipping is safe.
				return false
			})
		}
	}
	return p.findings
}

// isSolvePhaseName reports whether a function name marks solve-phase code:
// it contains "solve" in any casing (Solve, SolveTo, solveRank,
// rdSolveRank, bcrSolveLevel, ...).
func isSolvePhaseName(name string) bool {
	return strings.Contains(strings.ToLower(name), "solve")
}
