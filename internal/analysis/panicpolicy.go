package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// panicpolicy enforces the module's error-handling contract: solver and
// library code reports failures as error values — ErrSingular from a
// factorization is an expected input condition, not a programming bug — so
// panicking on an error value turns a recoverable "this matrix is
// singular" into a process crash five frames away from the context that
// could have explained it. Symmetrically, discarding the error result of a
// Factor/Solve/Invert-family call means a singular system sails through
// and the garbage shows up later as a large residual.
//
// Two patterns are flagged outside internal/harness (the experiment
// harness may still abort a suite) and _test.go files (which the loader
// does not even parse):
//
//   - panic(x) where x's static type implements error;
//   - a call to Factor, Factorize, FactorInPlace, Solve, SolveTo, Invert
//     or Inverse whose error result is discarded, either by using the call
//     as a statement or by assigning the error to the blank identifier.
//
// Additionally, inside the runtime core — internal/comm and internal/core —
// every bare panic is flagged regardless of its argument type. Those
// packages run under World.Run, whose contract is that failures unwind as
// typed *RankError values via comm.Throw; a bare panic bypasses the typed
// unwind and reaches the recovery layer as an anonymous crash. The handful
// of sanctioned panics (Throw itself, the cascade-abort control signal,
// constructor misuse outside any Run body) carry //lint:ignore panicpolicy
// directives with their rationale.
var panicPolicyAnalyzer = &Analyzer{
	Name:     "panicpolicy",
	Doc:      "flag panic(err), discarded factor/solve errors, and bare panics in the comm/core runtime",
	Severity: SeverityWarning,
	Version:  1,
	Run:      runPanicPolicy,
}

// errorResultFuncs is the factor/solve/invert call family covered by the
// discarded-error check.
var errorResultFuncs = map[string]bool{
	"Factor": true, "Factorize": true, "FactorInPlace": true,
	"Solve": true, "SolveTo": true, "Invert": true, "Inverse": true,
}

const harnessPkgPath = "blocktri/internal/harness"

// barePanicScoped reports whether pkg path is under the typed-unwind
// contract that forbids new bare panics (fixtures load under a synthetic
// "fix/..." path, mirroring the hotalloc scoping). commPkgPath is declared
// in commlock.go, corePkgPath in hotalloc.go.
func barePanicScoped(path string) bool {
	return path == commPkgPath || path == corePkgPath || strings.HasPrefix(path, "fix/")
}

func runPanicPolicy(m *Module) []Finding {
	p := &pass{m: m, name: "panicpolicy"}
	errIface := types.Universe.Lookup("error").Type().Underlying().(*types.Interface)
	for _, pkg := range m.Pkgs {
		if pkg.Path == harnessPkgPath {
			continue
		}
		inRuntime := barePanicScoped(pkg.Path)
		for _, file := range pkg.Files {
			ast.Inspect(file, func(n ast.Node) bool {
				switch n := n.(type) {
				case *ast.CallExpr:
					checkPanicErr(p, pkg.Info, errIface, n)
					if inRuntime {
						checkBarePanic(p, pkg.Info, errIface, n)
					}
				case *ast.ExprStmt:
					if call, ok := unparen(n.X).(*ast.CallExpr); ok {
						checkDiscardedAll(p, pkg.Info, call)
					}
				case *ast.AssignStmt:
					checkDiscardedBlank(p, pkg.Info, n)
				}
				return true
			})
		}
	}
	return p.findings
}

// checkPanicErr flags panic(x) where x is an error value.
func checkPanicErr(p *pass, info *types.Info, errIface *types.Interface, call *ast.CallExpr) {
	id, ok := unparen(call.Fun).(*ast.Ident)
	if !ok || id.Name != "panic" || len(call.Args) != 1 {
		return
	}
	if _, isBuiltin := info.Uses[id].(*types.Builtin); !isBuiltin {
		return
	}
	t := info.TypeOf(call.Args[0])
	if t == nil || !types.Implements(t, errIface) {
		return
	}
	p.reportf(call.Pos(),
		"panic(%s): return the error instead; ErrSingular and friends are expected input conditions, and a panicking rank takes the whole World down",
		types.ExprString(call.Args[0]))
}

// checkBarePanic flags every panic call in the runtime-core packages whose
// argument is NOT an error value (those are already covered by
// checkPanicErr, with a more specific message).
func checkBarePanic(p *pass, info *types.Info, errIface *types.Interface, call *ast.CallExpr) {
	id, ok := unparen(call.Fun).(*ast.Ident)
	if !ok || id.Name != "panic" || len(call.Args) != 1 {
		return
	}
	if _, isBuiltin := info.Uses[id].(*types.Builtin); !isBuiltin {
		return
	}
	if t := info.TypeOf(call.Args[0]); t != nil && types.Implements(t, errIface) {
		return
	}
	p.reportf(call.Pos(),
		"bare panic in the comm/core runtime: failures must unwind as typed errors via comm.Throw (or be returned); suppress with a lint:ignore directive only for sanctioned control-flow panics")
}

// watchedCall returns the called factor/solve/invert function and the
// positions of its error results, if any.
func watchedCall(info *types.Info, call *ast.CallExpr) (f *types.Func, errAt []int) {
	f = calleeFunc(info, call)
	if f == nil || !errorResultFuncs[f.Name()] {
		return nil, nil
	}
	sig, ok := f.Type().(*types.Signature)
	if !ok {
		return nil, nil
	}
	for i := 0; i < sig.Results().Len(); i++ {
		if isErrorType(sig.Results().At(i).Type()) {
			errAt = append(errAt, i)
		}
	}
	if len(errAt) == 0 {
		return nil, nil
	}
	return f, errAt
}

func isErrorType(t types.Type) bool {
	named, ok := t.(*types.Named)
	return ok && named.Obj().Pkg() == nil && named.Obj().Name() == "error"
}

// checkDiscardedAll flags a watched call used as a bare statement, which
// discards every result including the error.
func checkDiscardedAll(p *pass, info *types.Info, call *ast.CallExpr) {
	f, _ := watchedCall(info, call)
	if f == nil {
		return
	}
	p.reportf(call.Pos(),
		"error result of %s is discarded: a singular or ill-shaped system would go unnoticed until the residual blows up", f.Name())
}

// checkDiscardedBlank flags assignments that bind a watched call's error
// result to the blank identifier.
func checkDiscardedBlank(p *pass, info *types.Info, as *ast.AssignStmt) {
	if len(as.Rhs) != 1 {
		return
	}
	call, ok := unparen(as.Rhs[0]).(*ast.CallExpr)
	if !ok {
		return
	}
	f, errAt := watchedCall(info, call)
	if f == nil {
		return
	}
	for _, i := range errAt {
		if i >= len(as.Lhs) {
			continue
		}
		if id, ok := as.Lhs[i].(*ast.Ident); ok && id.Name == "_" {
			p.reportf(as.Pos(),
				"error result of %s is assigned to _: handle it (ErrSingular is an expected input condition, not an impossibility)", f.Name())
		}
	}
}
