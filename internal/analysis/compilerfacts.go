package analysis

import (
	"fmt"
	"go/ast"
	"go/types"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"runtime"
	"sort"
	"strconv"
	"strings"
)

// Compiler-evidence fact provider.
//
// The performance-contract analyzers (perfescape, perfbce, perfinline) do
// not re-derive escape analysis, bounds-check elimination or inlining from
// syntax — they ask the real compiler. computeCompilerFacts invokes the Go
// toolchain once per module with
//
//	go build -gcflags='-m=2 -d=ssa/check_bce' ./...
//
// and parses the diagnostic stream into a position-indexed fact table:
// every heap-escape decision, every bounds check the SSA backend could not
// eliminate, and every inlining verdict with its cost against the inliner
// budget. Analyzers then intersect that table with the module's
// //perf:hotpath, //perf:hotloop and //perf:inline annotations.
//
// The invocation is warm-cache friendly: the go command replays compiler
// diagnostics from its build cache, so a re-run over an unchanged tree
// costs a cache probe per package, not a compile. On top of that,
// blocktri-lint's persistent cache stores the parsed table keyed on
// (schema, go version, GOARCH, flags, module content hash), so a fully
// warm lint run never invokes the toolchain at all (see cache.go and the
// 200ms Lint/warm budget in BENCH_lint.json).
//
// Facts are computed lazily — only when an enabled compiler-backed
// analyzer actually encounters a perf annotation in a package it scans —
// so runs that touch no hot-path package (and every fully-warm run) never
// pay for a build.

// factsGCFlags is the exact -gcflags payload whose diagnostics the parser
// understands. It participates in the persistent fact-cache key: changing
// the flags invalidates every cached table.
const factsGCFlags = "-m=2 -d=ssa/check_bce"

// FactDiag is one positioned compiler diagnostic (an escape or a surviving
// bounds check). File is absolute, matching the module FileSet's positions.
type FactDiag struct {
	File    string
	Line    int
	Col     int
	Message string
}

// InlineFact is the compiler's inlining verdict for one function
// declaration, positioned at the function name.
type InlineFact struct {
	File      string
	Line      int
	CanInline bool
	Cost      int    // cost from "can inline f with cost N" or "cost N exceeds budget M"
	Budget    int    // inliner budget from "cost N exceeds budget M" (0 when not reported)
	Reason    string // the compiler's reason when CanInline is false
}

// CompilerFacts is the parsed diagnostic table of one toolchain invocation
// over one source tree.
type CompilerFacts struct {
	GoVersion string
	GOARCH    string
	Flags     string

	escapes map[string][]FactDiag   // file -> escape diags, sorted by line, col
	bounds  map[string][]FactDiag   // file -> surviving bounds checks
	inlines map[string][]InlineFact // file -> inlining verdicts
}

// EscapesIn returns the heap-escape diagnostics inside [startLine, endLine]
// of file.
func (cf *CompilerFacts) EscapesIn(file string, startLine, endLine int) []FactDiag {
	return diagsIn(cf.escapes[file], startLine, endLine)
}

// BoundsIn returns the surviving bounds-check diagnostics inside
// [startLine, endLine] of file.
func (cf *CompilerFacts) BoundsIn(file string, startLine, endLine int) []FactDiag {
	return diagsIn(cf.bounds[file], startLine, endLine)
}

// InlineAt returns the inlining verdict recorded for the function whose
// name sits on the given line of file.
func (cf *CompilerFacts) InlineAt(file string, line int) (InlineFact, bool) {
	for _, f := range cf.inlines[file] {
		if f.Line == line {
			return f, true
		}
	}
	return InlineFact{}, false
}

func diagsIn(diags []FactDiag, startLine, endLine int) []FactDiag {
	var out []FactDiag
	for _, d := range diags {
		if d.Line >= startLine && d.Line <= endLine {
			out = append(out, d)
		}
	}
	return out
}

var (
	// canInlineRe / cannotInlineRe split the -m inlining verdicts.
	// "can inline Mul with cost 62 as: func(...)..."
	// "cannot inline New: function too complex: cost 90 exceeds budget 80"
	canInlineRe    = regexp.MustCompile(`^can inline (\S+) with cost (\d+)`)
	cannotInlineRe = regexp.MustCompile(`^cannot inline (\S+?): (.*)$`)
	costBudgetRe   = regexp.MustCompile(`cost (\d+) exceeds budget (\d+)`)
	// diagLineRe anchors every parseable diagnostic: path:line:col: message.
	diagLineRe = regexp.MustCompile(`^(.+\.go):(\d+):(\d+): (.*)$`)
)

// parseCompilerDiagnostics folds one toolchain diagnostic stream into a
// fact table. resolve maps the file path as printed by the compiler
// (relative to the build directory) to the absolute path the analysis
// FileSet uses; it returns "" for files outside the analyzed tree (whose
// diagnostics are dropped).
func parseCompilerDiagnostics(output []byte, resolve func(string) string) *CompilerFacts {
	cf := &CompilerFacts{
		GoVersion: runtime.Version(),
		GOARCH:    runtime.GOARCH,
		Flags:     factsGCFlags,
		escapes:   make(map[string][]FactDiag),
		bounds:    make(map[string][]FactDiag),
		inlines:   make(map[string][]InlineFact),
	}
	type diagKey struct {
		file      string
		line, col int
		msg       string
	}
	seen := make(map[diagKey]bool)
	// A local moved to the heap gets two verdicts at one position ("buf
	// escapes to heap" with the flow detail, then "moved to heap: buf");
	// escPos collapses them into a single fact, preferring the moved form.
	type posKey struct {
		file      string
		line, col int
	}
	escPos := make(map[posKey]int)
	for _, raw := range strings.Split(string(output), "\n") {
		m := diagLineRe.FindStringSubmatch(raw)
		if m == nil {
			continue // "# package" headers, link noise
		}
		msg := m[4]
		// -m=2 explains each escape with indented "flow:"/"from ..." detail
		// lines under the same position; only the unindented verdict counts.
		if msg == "" || msg[0] == ' ' || msg[0] == '\t' {
			continue
		}
		file := resolve(m[1])
		if file == "" {
			continue
		}
		line, _ := strconv.Atoi(m[2])
		col, _ := strconv.Atoi(m[3])
		// The verbose escape verdict ends in ":" (detail lines follow) and is
		// then repeated bare; normalize so the pair dedupes to one fact.
		msg = strings.TrimSuffix(msg, ":")
		key := diagKey{file, line, col, msg}

		switch {
		case msg == "Found IsInBounds" || msg == "Found IsSliceInBounds":
			if !seen[key] {
				seen[key] = true
				cf.bounds[file] = append(cf.bounds[file], FactDiag{file, line, col, msg})
			}
		case strings.HasSuffix(msg, "escapes to heap") || strings.HasPrefix(msg, "moved to heap:"):
			if !seen[key] {
				seen[key] = true
				pk := posKey{file, line, col}
				if i, dup := escPos[pk]; dup {
					if strings.HasPrefix(msg, "moved to heap:") {
						cf.escapes[file][i].Message = msg
					}
				} else {
					escPos[pk] = len(cf.escapes[file])
					cf.escapes[file] = append(cf.escapes[file], FactDiag{file, line, col, msg})
				}
			}
		case strings.HasPrefix(msg, "can inline "):
			if im := canInlineRe.FindStringSubmatch(msg); im != nil && !seen[key] {
				seen[key] = true
				cost, _ := strconv.Atoi(im[2])
				cf.inlines[file] = append(cf.inlines[file], InlineFact{File: file, Line: line, CanInline: true, Cost: cost})
			}
		case strings.HasPrefix(msg, "cannot inline "):
			if im := cannotInlineRe.FindStringSubmatch(msg); im != nil && !seen[key] {
				seen[key] = true
				f := InlineFact{File: file, Line: line, Reason: im[2]}
				if cb := costBudgetRe.FindStringSubmatch(im[2]); cb != nil {
					f.Cost, _ = strconv.Atoi(cb[1])
					f.Budget, _ = strconv.Atoi(cb[2])
				}
				cf.inlines[file] = append(cf.inlines[file], InlineFact{File: file, Line: line, Cost: f.Cost, Budget: f.Budget, Reason: f.Reason})
			}
		}
	}
	for _, m := range []map[string][]FactDiag{cf.escapes, cf.bounds} {
		for _, diags := range m {
			sort.Slice(diags, func(i, j int) bool {
				if diags[i].Line != diags[j].Line {
					return diags[i].Line < diags[j].Line
				}
				return diags[i].Col < diags[j].Col
			})
		}
	}
	return cf
}

// ComputeCompilerFacts computes the fact table of the module rooted at
// root with no cache in front — the exported entry point the perf harness
// times as Lint/compilerfacts (the cost a lint run pays when no persisted
// table matches the tree).
func ComputeCompilerFacts(root string) (*CompilerFacts, error) {
	return computeCompilerFacts(root)
}

// computeCompilerFacts invokes the toolchain over the module rooted at root
// and parses the diagnostics. Build failures surface the compiler's message:
// a tree that does not build has no meaningful perf contracts to check.
func computeCompilerFacts(root string) (*CompilerFacts, error) {
	cmd := exec.Command("go", "build", "-gcflags="+factsGCFlags, "./...")
	cmd.Dir = root
	out, err := cmd.CombinedOutput()
	if err != nil {
		return nil, fmt.Errorf("analysis: go build -gcflags=%q: %v\n%s", factsGCFlags, err, truncateOutput(out))
	}
	return parseCompilerDiagnostics(out, func(p string) string {
		if filepath.IsAbs(p) {
			return p
		}
		return filepath.Join(root, filepath.FromSlash(p))
	}), nil
}

// computeFixtureFacts compiles a single fixture package (testdata/src/...,
// which has no go.mod of its own) by synthesizing a throwaway module that
// replaces the host module path with hostRoot, and maps the diagnostics
// back onto the fixture's real files. The analyzer fixture tests are the
// only caller.
func computeFixtureFacts(hostRoot, fixtureDir string) (*CompilerFacts, error) {
	hostPath, err := modulePath(hostRoot)
	if err != nil {
		return nil, err
	}
	tmp, err := os.MkdirTemp("", "blocktri-facts-fixture-")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(tmp)
	gomod := fmt.Sprintf("module fixfacts\n\ngo 1.22\n\nrequire %s v0.0.0\n\nreplace %s => %s\n",
		hostPath, hostPath, hostRoot)
	if err := os.WriteFile(filepath.Join(tmp, "go.mod"), []byte(gomod), 0o644); err != nil {
		return nil, err
	}
	names, err := goFilesIn(fixtureDir)
	if err != nil {
		return nil, err
	}
	for _, name := range names {
		data, err := os.ReadFile(name)
		if err != nil {
			return nil, err
		}
		if err := os.WriteFile(filepath.Join(tmp, filepath.Base(name)), data, 0o644); err != nil {
			return nil, err
		}
	}
	cmd := exec.Command("go", "build", "-mod=mod", "-gcflags="+factsGCFlags, ".")
	cmd.Dir = tmp
	cmd.Env = append(os.Environ(), "GOFLAGS=", "GOPROXY=off")
	out, err := cmd.CombinedOutput()
	if err != nil {
		return nil, fmt.Errorf("analysis: building fixture %s: %v\n%s", fixtureDir, err, truncateOutput(out))
	}
	return parseCompilerDiagnostics(out, func(p string) string {
		// Diagnostics reference the temp copies (./fix.go); map back to the
		// fixture's own files by base name — the copy is flat by construction.
		return filepath.Join(fixtureDir, filepath.Base(filepath.FromSlash(p)))
	}), nil
}

func truncateOutput(out []byte) []byte {
	const max = 4096
	if len(out) > max {
		return append(out[:max:max], []byte("\n...")...)
	}
	return out
}

// CompilerFacts returns the module's compiler-evidence fact table, invoking
// the toolchain (or the persistent cache, under RunLint) on first use and
// memoizing the outcome — including failure — for the life of the Module.
func (m *Module) CompilerFacts() (*CompilerFacts, error) {
	if m.factsDone {
		return m.facts, m.factsErr
	}
	m.factsDone = true
	switch {
	case m.factsFn != nil:
		m.facts, m.factsErr = m.factsFn(m)
	case m.scan != nil:
		m.facts, m.factsErr = computeCompilerFacts(m.Root)
	case m.hostRoot != "":
		m.facts, m.factsErr = computeFixtureFacts(m.hostRoot, m.Root)
	default:
		m.factsErr = fmt.Errorf("analysis: module has no compiler-fact source")
	}
	return m.facts, m.factsErr
}

// --- perf annotations -------------------------------------------------------

const (
	annotHotPath  = "//perf:hotpath"
	annotColdPath = "//perf:coldpath"
	annotHotLoop  = "//perf:hotloop"
	annotInline   = "//perf:inline"
)

// hasAnnotation reports whether a function's doc comment carries the given
// //perf: directive on a line of its own.
func hasAnnotation(doc *ast.CommentGroup, annot string) bool {
	if doc == nil {
		return false
	}
	for _, c := range doc.List {
		if strings.TrimSpace(c.Text) == annot {
			return true
		}
	}
	return false
}

// funcBodySpan returns the file and inclusive line range of a declaration
// body in the module's FileSet.
func (m *Module) funcBodySpan(body *ast.BlockStmt) (file string, start, end int) {
	p := m.Fset.Position(body.Pos())
	q := m.Fset.Position(body.End())
	return p.Filename, p.Line, q.Line
}

// hotPathFuncs returns the //perf:hotpath-annotated functions of pkg plus
// their transitive intra-package static callees (the compiler's escape and
// bounds decisions for a helper are part of the hot path that calls it).
// Propagation stops at //perf:coldpath-annotated functions — the sanctioned
// opt-out for amortized or deliberately allocating branches (pool growth,
// goroutine fan-out) — and at package boundaries: cross-package hot entry
// points carry their own annotation so the cached per-package findings stay
// content-addressed.
//
// The result maps each hot declaration to the annotated root it was reached
// from ("" for directly annotated functions).
func hotPathFuncs(pkg *Package) map[*ast.FuncDecl]string {
	decls := make(map[string]*ast.FuncDecl) // by types.Func full name
	cold := make(map[*ast.FuncDecl]bool)
	for _, file := range pkg.Files {
		for _, d := range file.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if f, ok := pkg.Info.Defs[fd.Name].(*types.Func); ok {
				decls[f.FullName()] = fd
			}
			if hasAnnotation(fd.Doc, annotColdPath) {
				cold[fd] = true
			}
		}
	}
	hot := make(map[*ast.FuncDecl]string)
	var queue []*ast.FuncDecl
	for _, file := range pkg.Files {
		for _, d := range file.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil || !hasAnnotation(fd.Doc, annotHotPath) {
				continue
			}
			hot[fd] = ""
			queue = append(queue, fd)
		}
	}
	for len(queue) > 0 {
		fd := queue[0]
		queue = queue[1:]
		root := hot[fd]
		if root == "" {
			root = fd.Name.Name
		}
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			callee := calleeFunc(pkg.Info, call)
			if callee == nil || callee.Pkg() == nil || callee.Pkg().Path() != pkg.Path {
				return true
			}
			cd := decls[callee.FullName()]
			if cd == nil || cold[cd] {
				return true
			}
			if _, done := hot[cd]; done {
				return true
			}
			hot[cd] = root
			queue = append(queue, cd)
			return true
		})
	}
	return hot
}
