package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// lockorder builds a module-wide lock-acquisition graph over sync.Mutex /
// sync.RWMutex values and flags the two lock disciplines a deadlock needs
// broken: cyclic acquisition orders, and blocking while holding a lock.
//
// Nodes are canonical lock keys — a mutex field qualified by its defining
// type ("serve.Server.mu", however the field is reached) or a package-level
// mutex variable. An edge A -> B is recorded whenever B is acquired while A
// is held, in source order within one function; with the interprocedural
// layer on, a call made while A is held also contributes A -> L for every
// lock L in the callee's transitive Locks summary facet, which condenses
// the graph through the call graph. Any edge lying on a cycle (including a
// re-acquisition self-loop) is reported at its acquisition site.
//
// The blocking rule extends commlock beyond the comm vocabulary: a channel
// send or receive, a select with no default, a range over a channel,
// sync.WaitGroup.Wait, or comm.World.Run/RunContext executed while any lock
// is held stalls every other user of that lock for as long as the operation
// blocks — and if the operation's completion needs the lock, deadlocks.
// sync.Cond.Wait is exempt with a single lock held (that is the Wait
// contract: it unlocks its own mutex while parked) but flagged when a
// second lock stays held across the park. The comm package itself is
// exempt from the blocking rule: its mailbox condition variables and
// channel hand-offs are the primitive being modeled, not a client bug.
var lockOrderAnalyzer = &Analyzer{
	Name:     "lockorder",
	Doc:      "flag cyclic lock-acquisition orders and locks held across blocking operations",
	Severity: SeverityError,
	Version:  1,
	Run:      runLockOrder,
}

// lockEdge is the first-seen acquisition site of one ordered pair.
type lockEdge struct {
	pos token.Pos
}

func runLockOrder(m *Module) []Finding {
	p := &pass{m: m, name: "lockorder"}
	rep := newReporter(p)

	// edges[a][b]: b was acquired (or may be acquired by a callee) while a
	// was held; the first site observed is where the cycle is reported.
	edges := make(map[string]map[string]lockEdge)
	addEdge := func(from, to string, pos token.Pos) {
		m, ok := edges[from]
		if !ok {
			m = make(map[string]lockEdge)
			edges[from] = m
		}
		if _, seen := m[to]; !seen {
			m[to] = lockEdge{pos: pos}
		}
	}

	for _, pkg := range m.Pkgs {
		for _, file := range pkg.Files {
			eachFuncBody(file, func(body *ast.BlockStmt) {
				collectLockEdges(m, pkg.Info, body, addEdge)
				if pkg.Path != commPkgPath {
					checkBlockedHolders(rep, pkg.Info, body)
				}
			})
		}
	}

	reportLockCycles(rep, edges)
	return p.findings
}

// heldLock is one currently held lock in a source-order walk.
type heldLock struct {
	key    string // canonical global key, or a function-local display key
	global bool
	expr   string // display form as written
}

// lockRecv extracts the receiver expression of a sync Lock/Unlock call.
func lockRecv(call *ast.CallExpr) (ast.Expr, bool) {
	sel, ok := unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return nil, false
	}
	return sel.X, true
}

// heldKeyOf canonicalizes a lock receiver for held-set tracking: the global
// key when the mutex is module-visible, the printed expression otherwise.
func heldKeyOf(info *types.Info, recv ast.Expr) heldLock {
	if key, ok := globalLockKey(info, recv); ok {
		return heldLock{key: key, global: true, expr: types.ExprString(recv)}
	}
	return heldLock{key: "local:" + types.ExprString(recv), expr: types.ExprString(recv)}
}

// walkHeld walks one body in source order maintaining the held-lock set
// (defer Unlock keeps the lock held, as in commlock), invoking fn for every
// non-lock node with the current set. Lock acquisitions themselves are
// reported through acquire.
func walkHeld(info *types.Info, body *ast.BlockStmt, acquire func(held []heldLock, lk heldLock, call *ast.CallExpr), fn func(held []heldLock, n ast.Node) bool) {
	var held []heldLock
	inspectShallow(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.DeferStmt:
			// defer mu.Unlock() releases only at function exit; other
			// deferred calls are not part of the statement flow.
			return false
		case *ast.CallExpr:
			if _, kind := syncLockKind(info, n); kind != 0 {
				recv, ok := lockRecv(n)
				if !ok {
					return true
				}
				lk := heldKeyOf(info, recv)
				if kind > 0 {
					if acquire != nil {
						acquire(held, lk, n)
					}
					held = append(held, lk)
				} else {
					for i := len(held) - 1; i >= 0; i-- {
						if held[i].key == lk.key {
							held = append(held[:i], held[i+1:]...)
							break
						}
					}
				}
				return true
			}
		}
		if fn != nil {
			return fn(held, n)
		}
		return true
	})
}

// collectLockEdges records held -> acquired edges and, when summaries are
// available, held -> callee-lock edges.
func collectLockEdges(m *Module, info *types.Info, body *ast.BlockStmt, addEdge func(from, to string, pos token.Pos)) {
	walkHeld(info, body,
		func(held []heldLock, lk heldLock, call *ast.CallExpr) {
			if !lk.global {
				return
			}
			for _, h := range held {
				if h.global {
					addEdge(h.key, lk.key, call.Pos())
				}
			}
		},
		func(held []heldLock, n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || len(held) == 0 {
				return true
			}
			f := calleeFunc(info, call)
			if f == nil || funcPkgPath(f) == "sync" {
				return true
			}
			sum := m.calleeSummary(f)
			if sum == nil {
				return true
			}
			for _, lock := range sum.Locks {
				for _, h := range held {
					if h.global {
						addEdge(h.key, lock, call.Pos())
					}
				}
			}
			return true
		})
}

// reportLockCycles reports every edge that lies on a cycle of the
// acquisition graph, at the edge's first acquisition site.
func reportLockCycles(rep *reporter, edges map[string]map[string]lockEdge) {
	reaches := func(from, to string) bool {
		seen := map[string]bool{from: true}
		stack := []string{from}
		for len(stack) > 0 {
			cur := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			if cur == to {
				return true
			}
			for next := range edges[cur] {
				if !seen[next] {
					seen[next] = true
					stack = append(stack, next)
				}
			}
		}
		return false
	}
	froms := make([]string, 0, len(edges))
	for from := range edges {
		froms = append(froms, from)
	}
	sort.Strings(froms)
	for _, from := range froms {
		tos := make([]string, 0, len(edges[from]))
		for to := range edges[from] {
			tos = append(tos, to)
		}
		sort.Strings(tos)
		for _, to := range tos {
			e := edges[from][to]
			if from == to {
				rep.reportf(e.pos, "lock %s acquired while already held (self-deadlock: sync mutexes are not reentrant)", shortLockKey(to))
				continue
			}
			if reaches(to, from) {
				rep.reportf(e.pos, "lock-order cycle: %s is acquired while %s is held here, and %s is (possibly transitively) acquired while %s is held elsewhere — two goroutines taking the locks in opposite orders deadlock", shortLockKey(to), shortLockKey(from), shortLockKey(from), shortLockKey(to))
			}
		}
	}
}

// checkBlockedHolders flags blocking operations executed while a lock is
// held.
func checkBlockedHolders(rep *reporter, info *types.Info, body *ast.BlockStmt) {
	// Channel operations that are a select clause's guard do not block on
	// their own; the select is judged as a whole (it blocks only without a
	// default).
	selectGuards := make(map[ast.Node]bool)
	ast.Inspect(body, func(x ast.Node) bool {
		sel, ok := x.(*ast.SelectStmt)
		if !ok {
			return true
		}
		for _, cs := range sel.Body.List {
			cc, ok := cs.(*ast.CommClause)
			if !ok || cc.Comm == nil {
				continue
			}
			markSelectGuard(cc.Comm, selectGuards)
		}
		return true
	})

	report := func(held []heldLock, pos token.Pos, op string) {
		names := make([]string, 0, len(held))
		for _, h := range held {
			names = append(names, h.expr)
		}
		sort.Strings(names)
		for _, name := range names {
			rep.reportf(pos, "%s while %s is locked: a blocked holder stalls every other user of the lock (unlock before blocking)", op, name)
		}
	}

	walkHeld(info, body, nil, func(held []heldLock, n ast.Node) bool {
		if len(held) == 0 {
			return true
		}
		switch n := n.(type) {
		case *ast.SendStmt:
			if !selectGuards[n] {
				report(held, n.Pos(), "channel send")
			}
		case *ast.UnaryExpr:
			if n.Op == token.ARROW && !selectGuards[n] {
				report(held, n.Pos(), "channel receive")
			}
		case *ast.SelectStmt:
			if !selectHasDefault(n) {
				report(held, n.Pos(), "select with no default")
			}
		case *ast.RangeStmt:
			if tv, ok := info.Types[n.X]; ok && isChanType(tv.Type) {
				report(held, n.Pos(), "range over channel")
			}
		case *ast.CallExpr:
			if recv, name := syncMethodOn(info, n); name == "Wait" && recv != nil {
				if tv, ok := info.Types[recv]; ok {
					switch {
					case isWaitGroup(tv.Type):
						report(held, n.Pos(), "sync.WaitGroup.Wait")
					case isCondType(tv.Type) && len(held) >= 2:
						// Cond.Wait releases its own mutex while parked; a
						// second held lock stays held across the park.
						report(held, n.Pos(), "sync.Cond.Wait with a second lock held")
					}
				}
			}
			if name := worldRunName(info, n); name != "" {
				report(held, n.Pos(), "comm.World."+name)
			}
		}
		return true
	})
}

// markSelectGuard records the channel-operation nodes of one select clause
// guard: the send or receive itself, through the assignment wrapper forms.
func markSelectGuard(comm ast.Stmt, guards map[ast.Node]bool) {
	guards[comm] = true
	switch s := comm.(type) {
	case *ast.SendStmt:
		// already marked
	case *ast.ExprStmt:
		if u, ok := unparen(s.X).(*ast.UnaryExpr); ok {
			guards[u] = true
		}
	case *ast.AssignStmt:
		for _, r := range s.Rhs {
			if u, ok := unparen(r).(*ast.UnaryExpr); ok {
				guards[u] = true
			}
		}
	}
}

func selectHasDefault(sel *ast.SelectStmt) bool {
	for _, cs := range sel.Body.List {
		if cc, ok := cs.(*ast.CommClause); ok && cc.Comm == nil {
			return true
		}
	}
	return false
}
