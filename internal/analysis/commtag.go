package analysis

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"sort"
)

// commtag checks message-tag hygiene across the whole module. The comm
// runtime matches messages by (source, tag): a tag constant that only ever
// appears on the send side is a message nobody will receive (the sender's
// buffer leaks and Pending() goes nonzero), and one that only appears on
// the receive side is a receive that blocks forever — both are the
// classic silent protocol-drift bugs of hand-written recursive-doubling
// exchanges.
//
// Tag arguments fall into three classes:
//
//   - Constant expressions (literals or named constants): collected
//     module-wide and cross-checked send-side vs receive-side.
//   - Bare identifiers and selector expressions (a forwarded tag
//     parameter, as the prefix scan helpers use): accepted silently —
//     matching is the caller's responsibility at the site that supplies
//     the constant.
//   - Anything else (tag arithmetic like base+round): flagged, because a
//     computed tag defeats static matching and is one off-by-one away
//     from a cross-phase collision.
var commTagAnalyzer = &Analyzer{
	Name:     "commtag",
	Doc:      "cross-check constant message tags between send and receive sides",
	Severity: SeverityWarning,
	Version:  3,
	Run:      runCommTag,
}

// tagArgIndex maps each comm operation that takes a tag to the tag's
// position in the argument list, and records which direction(s) the
// operation participates in.
type tagOp struct {
	index int
	send  bool
	recv  bool
}

var tagOps = map[string]tagOp{
	"Send":             {index: 1, send: true},
	"SendOwned":        {index: 1, send: true},
	"ISend":            {index: 1, send: true},
	"SendMatrix":       {index: 1, send: true},
	"Recv":             {index: 1, recv: true},
	"IRecv":            {index: 1, recv: true},
	"RecvMatrix":       {index: 1, recv: true},
	"SendRecv":         {index: 3, send: true, recv: true},
	"Exchange":         {index: 1, send: true, recv: true},
	"ExchangeMatrices": {index: 1, send: true, recv: true},
}

type tagUse struct {
	sendPos []token.Pos
	recvPos []token.Pos
}

func runCommTag(m *Module) []Finding {
	p := &pass{m: m, name: "commtag"}
	uses := make(map[int64]*tagUse)
	var order []int64

	for _, pkg := range m.Pkgs {
		for _, file := range pkg.Files {
			ast.Inspect(file, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				f := calleeFunc(pkg.Info, call)
				if f == nil {
					return true
				}
				if funcPkgPath(f) != commPkgPath {
					// A summarized helper that forwards a tag parameter to a
					// comm op counts as a use of the caller's constant: the
					// helper's own comm call only sees the variable, so the
					// send/recv side of the constant lives here.
					recordForwardedTags(p, m, pkg.Info, call, f, uses, &order)
					return true
				}
				op, ok := tagOps[f.Name()]
				if !ok || op.index >= len(call.Args) {
					return true
				}
				arg := call.Args[op.index]
				tv := pkg.Info.Types[arg]
				if tv.Value != nil && tv.Value.Kind() == constant.Int {
					v, ok := constant.Int64Val(tv.Value)
					if !ok {
						return true
					}
					u := uses[v]
					if u == nil {
						u = &tagUse{}
						uses[v] = u
						order = append(order, v)
					}
					if op.send {
						u.sendPos = append(u.sendPos, call.Pos())
					}
					if op.recv {
						u.recvPos = append(u.recvPos, call.Pos())
					}
					return true
				}
				switch unparen(arg).(type) {
				case *ast.Ident, *ast.SelectorExpr:
					// A forwarded tag variable; accepted.
				default:
					p.reportf(arg.Pos(),
						"non-constant tag expression %s in comm.%s defeats static send/receive matching; use a named constant per message kind",
						types.ExprString(arg), f.Name())
				}
				return true
			})
		}
	}

	sort.Slice(order, func(i, j int) bool { return order[i] < order[j] })
	recordTagFindings(p, uses, order)
	return p.findings
}

// recordForwardedTags resolves the tag constants a caller feeds into a
// summarized comm-bearing helper. Each summarized point-to-point site whose
// tag is a forwarded parameter is charged to the caller's argument at that
// position, under the same three-way classification as an inline tag:
// constants join the module-wide cross-check, bare identifiers/selectors are
// accepted, and computed expressions are flagged.
func recordForwardedTags(p *pass, m *Module, info *types.Info, call *ast.CallExpr, f *types.Func, uses map[int64]*tagUse, order *[]int64) {
	sum := m.calleeSummary(f)
	if sum == nil || sum.CommOpaque || len(sum.Comm) == 0 {
		return
	}
	for _, sc := range sum.Comm {
		if sc.TagParam < 0 || sc.TagParam >= len(call.Args) {
			continue
		}
		arg := call.Args[sc.TagParam]
		tv := info.Types[arg]
		if tv.Value != nil && tv.Value.Kind() == constant.Int {
			v, ok := constant.Int64Val(tv.Value)
			if !ok {
				continue
			}
			u := uses[v]
			if u == nil {
				u = &tagUse{}
				uses[v] = u
				*order = append(*order, v)
			}
			if sc.Send {
				u.sendPos = append(u.sendPos, call.Pos())
			} else {
				u.recvPos = append(u.recvPos, call.Pos())
			}
			continue
		}
		switch unparen(arg).(type) {
		case *ast.Ident, *ast.SelectorExpr:
			// A forwarded tag variable; accepted.
		default:
			p.reportf(arg.Pos(),
				"non-constant tag expression %s forwarded to comm via %s defeats static send/receive matching; use a named constant per message kind",
				types.ExprString(arg), f.Name())
		}
	}
}

func recordTagFindings(p *pass, uses map[int64]*tagUse, order []int64) {
	for _, v := range order {
		u := uses[v]
		switch {
		case len(u.sendPos) > 0 && len(u.recvPos) == 0:
			p.reportf(u.sendPos[0],
				"tag %d is sent but never received anywhere in the module (the message is never consumed and Pending() will report a leak)", v)
		case len(u.recvPos) > 0 && len(u.sendPos) == 0:
			p.reportf(u.recvPos[0],
				"tag %d is received but never sent anywhere in the module (the receive blocks forever)", v)
		}
	}
}
