package analysis

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"sort"
)

// commtag checks message-tag hygiene across the whole module. The comm
// runtime matches messages by (source, tag): a tag constant that only ever
// appears on the send side is a message nobody will receive (the sender's
// buffer leaks and Pending() goes nonzero), and one that only appears on
// the receive side is a receive that blocks forever — both are the
// classic silent protocol-drift bugs of hand-written recursive-doubling
// exchanges.
//
// Tag arguments fall into three classes:
//
//   - Constant expressions (literals or named constants): collected
//     module-wide and cross-checked send-side vs receive-side.
//   - Bare identifiers and selector expressions (a forwarded tag
//     parameter, as the prefix scan helpers use): accepted silently —
//     matching is the caller's responsibility at the site that supplies
//     the constant.
//   - Anything else (tag arithmetic like base+round): flagged, because a
//     computed tag defeats static matching and is one off-by-one away
//     from a cross-phase collision.
var commTagAnalyzer = &Analyzer{
	Name:     "commtag",
	Doc:      "cross-check constant message tags between send and receive sides",
	Severity: SeverityWarning,
	Version:  1,
	Run:      runCommTag,
}

// tagArgIndex maps each comm operation that takes a tag to the tag's
// position in the argument list, and records which direction(s) the
// operation participates in.
type tagOp struct {
	index int
	send  bool
	recv  bool
}

var tagOps = map[string]tagOp{
	"Send":             {index: 1, send: true},
	"ISend":            {index: 1, send: true},
	"SendMatrix":       {index: 1, send: true},
	"Recv":             {index: 1, recv: true},
	"IRecv":            {index: 1, recv: true},
	"RecvMatrix":       {index: 1, recv: true},
	"SendRecv":         {index: 3, send: true, recv: true},
	"Exchange":         {index: 1, send: true, recv: true},
	"ExchangeMatrices": {index: 1, send: true, recv: true},
}

type tagUse struct {
	sendPos []token.Pos
	recvPos []token.Pos
}

func runCommTag(m *Module) []Finding {
	p := &pass{m: m, name: "commtag"}
	uses := make(map[int64]*tagUse)
	var order []int64

	for _, pkg := range m.Pkgs {
		for _, file := range pkg.Files {
			ast.Inspect(file, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				f := calleeFunc(pkg.Info, call)
				if f == nil || funcPkgPath(f) != commPkgPath {
					return true
				}
				op, ok := tagOps[f.Name()]
				if !ok || op.index >= len(call.Args) {
					return true
				}
				arg := call.Args[op.index]
				tv := pkg.Info.Types[arg]
				if tv.Value != nil && tv.Value.Kind() == constant.Int {
					v, ok := constant.Int64Val(tv.Value)
					if !ok {
						return true
					}
					u := uses[v]
					if u == nil {
						u = &tagUse{}
						uses[v] = u
						order = append(order, v)
					}
					if op.send {
						u.sendPos = append(u.sendPos, call.Pos())
					}
					if op.recv {
						u.recvPos = append(u.recvPos, call.Pos())
					}
					return true
				}
				switch unparen(arg).(type) {
				case *ast.Ident, *ast.SelectorExpr:
					// A forwarded tag variable; accepted.
				default:
					p.reportf(arg.Pos(),
						"non-constant tag expression %s in comm.%s defeats static send/receive matching; use a named constant per message kind",
						types.ExprString(arg), f.Name())
				}
				return true
			})
		}
	}

	sort.Slice(order, func(i, j int) bool { return order[i] < order[j] })
	for _, v := range order {
		u := uses[v]
		switch {
		case len(u.sendPos) > 0 && len(u.recvPos) == 0:
			p.reportf(u.sendPos[0],
				"tag %d is sent but never received anywhere in the module (the message is never consumed and Pending() will report a leak)", v)
		case len(u.recvPos) > 0 && len(u.sendPos) == 0:
			p.reportf(u.recvPos[0],
				"tag %d is received but never sent anywhere in the module (the receive blocks forever)", v)
		}
	}
	return p.findings
}
