package workload

import (
	"strings"
	"testing"

	"blocktri/internal/mat"
)

func TestBuildDeterministic(t *testing.T) {
	for _, f := range Families {
		a := Build(f, 6, 3, 42)
		b := Build(f, 6, 3, 42)
		if !a.Equal(b) {
			t.Fatalf("%s: same seed produced different matrices", f)
		}
		if err := a.Validate(); err != nil {
			t.Fatalf("%s: %v", f, err)
		}
		if a.N != 6 || a.M != 3 {
			t.Fatalf("%s: wrong shape N=%d M=%d", f, a.N, a.M)
		}
	}
}

func TestBuildSeedsDiffer(t *testing.T) {
	// Random families must vary with the seed; the deterministic PDE
	// families (Poisson) must not.
	if Build(RandomDD, 6, 3, 1).Equal(Build(RandomDD, 6, 3, 2)) {
		t.Fatal("random-dd ignores the seed")
	}
	if !Build(Poisson, 6, 3, 1).Equal(Build(Poisson, 6, 3, 2)) {
		t.Fatal("poisson should not depend on the seed")
	}
}

func TestFamilyStrings(t *testing.T) {
	want := map[Family]string{
		RandomDD: "random-dd", Oscillatory: "oscillatory", Poisson: "poisson-2d",
		ConvDiff: "convection-diffusion", Toeplitz: "block-toeplitz",
	}
	for f, s := range want {
		if f.String() != s {
			t.Fatalf("%d: got %q want %q", int(f), f.String(), s)
		}
	}
	if Family(99).String() == "" {
		t.Fatal("unknown family should still render")
	}
}

func TestBuildUnknownFamilyPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Build(Family(99), 4, 2, 1)
}

func TestRHSStreamIndependent(t *testing.T) {
	a := Build(Oscillatory, 4, 2, 1)
	s := NewRHSStream(a, 3, 7)
	b1 := s.Next()
	b2 := s.Next()
	if b1.Rows != 8 || b1.Cols != 3 {
		t.Fatalf("wrong RHS shape %dx%d", b1.Rows, b1.Cols)
	}
	if b1.Equal(b2) {
		t.Fatal("stream repeated a right-hand side")
	}
	// Deterministic replay with the same seed.
	s2 := NewRHSStream(a, 3, 7)
	if !s2.Next().Equal(b1) {
		t.Fatal("stream not deterministic")
	}
	// Advance is a no-op for independent streams.
	s.Advance(b1)
	if s.Next().Equal(b1) {
		t.Fatal("independent stream returned the advanced solution")
	}
}

func TestTimeSteppingStream(t *testing.T) {
	a := Build(Oscillatory, 4, 2, 1)
	s := NewTimeSteppingStream(a, 1, 9)
	b1 := s.Next() // first step: random
	x := mat.New(8, 1)
	for i := range x.Data {
		x.Data[i] = float64(i)
	}
	s.Advance(x)
	b2 := s.Next()
	// b2 must be a small perturbation of x, not of b1.
	diffX := b2.Clone()
	mat.Sub(diffX, diffX, x)
	if mat.NormFrob(diffX) > 0.1*mat.NormFrob(x) {
		t.Fatalf("time-stepping RHS too far from previous solution: %v", mat.NormFrob(diffX))
	}
	if b2.Equal(b1) {
		t.Fatal("time-stepping RHS ignored the advanced solution")
	}
}

func TestSpecLabelAndBuild(t *testing.T) {
	sp := Spec{Family: Poisson, N: 8, M: 4, P: 2, R: 3, Solves: 10, Seed: 5}
	label := sp.Label()
	for _, want := range []string{"poisson-2d", "N=8", "M=4", "P=2", "R=3", "solves=10"} {
		if !strings.Contains(label, want) {
			t.Fatalf("label %q missing %q", label, want)
		}
	}
	a := sp.Build()
	if a.N != 8 || a.M != 4 {
		t.Fatal("Spec.Build wrong shape")
	}
}
