// Package workload defines the experiment workloads: named problem
// families with seeded, reproducible construction, and right-hand-side
// generators that model how applications produce many right-hand sides for
// one matrix (independent batches, or time-stepping sequences where each
// right-hand side depends on the previous solution).
package workload

import (
	"fmt"
	"math/rand"

	"blocktri/internal/blocktri"
	"blocktri/internal/mat"
)

// Family names a problem generator.
type Family int

const (
	// RandomDD is the strictly diagonally dominant random family: well
	// conditioned for every solver, but generic enough that recursive
	// doubling's prefix products grow with N (accuracy experiments).
	RandomDD Family = iota
	// Oscillatory has unit-modulus propagation modes: the stable
	// recurrence family used for large-N performance runs.
	Oscillatory
	// Poisson is the 5-point Laplacian on an M x N grid.
	Poisson
	// ConvDiff is the non-symmetric convection-diffusion operator.
	ConvDiff
	// Toeplitz repeats one random diagonally dominant block row.
	Toeplitz
)

// String implements fmt.Stringer for table labels.
func (f Family) String() string {
	switch f {
	case RandomDD:
		return "random-dd"
	case Oscillatory:
		return "oscillatory"
	case Poisson:
		return "poisson-2d"
	case ConvDiff:
		return "convection-diffusion"
	case Toeplitz:
		return "block-toeplitz"
	default:
		return fmt.Sprintf("Family(%d)", int(f))
	}
}

// Families lists every family, for sweeps.
var Families = []Family{RandomDD, Oscillatory, Poisson, ConvDiff, Toeplitz}

// Build constructs the family's matrix with N block rows of size M,
// deterministically from seed.
func Build(f Family, n, m int, seed int64) *blocktri.Matrix {
	rng := rand.New(rand.NewSource(seed))
	switch f {
	case RandomDD:
		return blocktri.RandomDiagDominant(n, m, rng)
	case Oscillatory:
		return blocktri.Oscillatory(n, m, rng)
	case Poisson:
		return blocktri.Poisson2D(m, n)
	case ConvDiff:
		return blocktri.ConvectionDiffusion(m, n, 0.5+rng.Float64())
	case Toeplitz:
		return blocktri.BlockToeplitz(n, m, rng)
	default:
		panic(fmt.Sprintf("workload: unknown family %d", int(f)))
	}
}

// RHSStream produces a deterministic sequence of right-hand sides for a
// matrix, modeling an application that performs repeated solves.
type RHSStream struct {
	a   *blocktri.Matrix
	rng *rand.Rand
	// prev is the previous solution when time-stepping, nil otherwise.
	prev     *mat.Matrix
	timeStep bool
	cols     int
}

// NewRHSStream returns a stream of independent random right-hand sides
// with the given number of columns per solve.
func NewRHSStream(a *blocktri.Matrix, cols int, seed int64) *RHSStream {
	return &RHSStream{a: a, rng: rand.New(rand.NewSource(seed)), cols: cols}
}

// NewTimeSteppingStream returns a stream where each right-hand side is a
// perturbation of the previous solution — the implicit-time-stepping
// pattern (b_{t+1} = x_t + dt*source) that makes the right-hand sides
// inherently sequential, so they cannot be batched into one wide solve.
// This is the regime where ARD's factor/solve split pays off.
func NewTimeSteppingStream(a *blocktri.Matrix, cols int, seed int64) *RHSStream {
	return &RHSStream{a: a, rng: rand.New(rand.NewSource(seed)), cols: cols, timeStep: true}
}

// Next returns the next right-hand side. For time-stepping streams the
// caller must feed the solution of the previous solve to Advance first.
func (s *RHSStream) Next() *mat.Matrix {
	if !s.timeStep || s.prev == nil {
		return mat.Random(s.a.N*s.a.M, s.cols, s.rng)
	}
	b := s.prev.Clone()
	noise := mat.Random(b.Rows, b.Cols, s.rng)
	mat.AXPY(b, 0.01, noise)
	return b
}

// Advance records the solution of the previous solve (time-stepping only).
func (s *RHSStream) Advance(x *mat.Matrix) {
	if s.timeStep {
		s.prev = x
	}
}

// Spec fully describes one experiment configuration.
type Spec struct {
	Family  Family
	N, M, P int
	// R is the number of right-hand-side columns per solve call.
	R int
	// Solves is the number of sequential solve calls with distinct
	// right-hand sides (the paper's "R distinct right hand sides").
	Solves int
	Seed   int64
}

// Label renders the spec for table captions.
func (sp Spec) Label() string {
	return fmt.Sprintf("%s N=%d M=%d P=%d R=%d solves=%d",
		sp.Family, sp.N, sp.M, sp.P, sp.R, sp.Solves)
}

// Build constructs the spec's matrix.
func (sp Spec) Build() *blocktri.Matrix {
	return Build(sp.Family, sp.N, sp.M, sp.Seed)
}
