// Package blocktri defines the block tridiagonal matrix type shared by all
// solvers, together with problem generators, dense conversion, residual
// computation and binary serialization.
//
// A block tridiagonal system with N block rows and block size M is
//
//	L[i] x[i-1] + D[i] x[i] + U[i] x[i+1] = b[i],   i = 0..N-1
//
// with x[-1] = x[N] = 0 (so L[0] and U[N-1] are ignored and stored as nil).
package blocktri

import (
	"errors"
	"fmt"
	"math"
	"math/rand"

	"blocktri/internal/mat"
)

// ErrNotBlockSquare is returned when a block has the wrong shape.
var ErrNotBlockSquare = errors.New("blocktri: blocks must all be M x M")

// Matrix is a block tridiagonal matrix of N block rows with M x M blocks.
//
// Lower[0] and Upper[N-1] are nil; every other block must be non-nil and
// M x M. The struct is exported field-by-field so solvers can address
// blocks directly without copying.
type Matrix struct {
	N int // number of block rows
	M int // block edge size

	Lower []*mat.Matrix // Lower[i] = L_i, nil for i == 0
	Diag  []*mat.Matrix // Diag[i]  = D_i
	Upper []*mat.Matrix // Upper[i] = U_i, nil for i == N-1
}

// New returns a block tridiagonal matrix with all blocks allocated and
// zeroed (except the unused corner blocks, which stay nil).
func New(n, m int) *Matrix {
	if n <= 0 || m <= 0 {
		panic(fmt.Sprintf("blocktri: invalid dimensions N=%d M=%d", n, m))
	}
	a := &Matrix{
		N:     n,
		M:     m,
		Lower: make([]*mat.Matrix, n),
		Diag:  make([]*mat.Matrix, n),
		Upper: make([]*mat.Matrix, n),
	}
	for i := 0; i < n; i++ {
		a.Diag[i] = mat.New(m, m)
		if i > 0 {
			a.Lower[i] = mat.New(m, m)
		}
		if i < n-1 {
			a.Upper[i] = mat.New(m, m)
		}
	}
	return a
}

// Validate checks the structural invariants: correct slice lengths, nil
// corner blocks, non-nil interior blocks, and M x M shapes throughout.
func (a *Matrix) Validate() error {
	if a.N <= 0 || a.M <= 0 {
		return fmt.Errorf("blocktri: invalid dimensions N=%d M=%d", a.N, a.M)
	}
	if len(a.Lower) != a.N || len(a.Diag) != a.N || len(a.Upper) != a.N {
		return fmt.Errorf("blocktri: band slice lengths %d/%d/%d != N=%d",
			len(a.Lower), len(a.Diag), len(a.Upper), a.N)
	}
	check := func(b *mat.Matrix, band string, i int, wantNil bool) error {
		if wantNil {
			if b != nil {
				return fmt.Errorf("blocktri: %s[%d] must be nil", band, i)
			}
			return nil
		}
		if b == nil {
			return fmt.Errorf("blocktri: %s[%d] is nil", band, i)
		}
		if b.Rows != a.M || b.Cols != a.M {
			return fmt.Errorf("blocktri: %s[%d] is %dx%d, want %dx%d: %w",
				band, i, b.Rows, b.Cols, a.M, a.M, ErrNotBlockSquare)
		}
		return nil
	}
	for i := 0; i < a.N; i++ {
		if err := check(a.Lower[i], "Lower", i, i == 0); err != nil {
			return err
		}
		if err := check(a.Diag[i], "Diag", i, false); err != nil {
			return err
		}
		if err := check(a.Upper[i], "Upper", i, i == a.N-1); err != nil {
			return err
		}
	}
	return nil
}

// Clone returns a deep copy of a.
func (a *Matrix) Clone() *Matrix {
	out := &Matrix{
		N:     a.N,
		M:     a.M,
		Lower: make([]*mat.Matrix, a.N),
		Diag:  make([]*mat.Matrix, a.N),
		Upper: make([]*mat.Matrix, a.N),
	}
	for i := 0; i < a.N; i++ {
		out.Diag[i] = a.Diag[i].Clone()
		if a.Lower[i] != nil {
			out.Lower[i] = a.Lower[i].Clone()
		}
		if a.Upper[i] != nil {
			out.Upper[i] = a.Upper[i].Clone()
		}
	}
	return out
}

// Dense expands a into an (N*M) x (N*M) dense matrix. Intended for
// reference solves and testing at modest sizes.
func (a *Matrix) Dense() *mat.Matrix {
	n := a.N * a.M
	out := mat.New(n, n)
	for i := 0; i < a.N; i++ {
		out.View(i*a.M, i*a.M, a.M, a.M).CopyFrom(a.Diag[i])
		if i > 0 {
			out.View(i*a.M, (i-1)*a.M, a.M, a.M).CopyFrom(a.Lower[i])
		}
		if i < a.N-1 {
			out.View(i*a.M, (i+1)*a.M, a.M, a.M).CopyFrom(a.Upper[i])
		}
	}
	return out
}

// MatVec computes y = A*x where x is (N*M) x R (R right-hand-side columns
// stacked block-row-wise) and returns y with the same shape.
func (a *Matrix) MatVec(x *mat.Matrix) *mat.Matrix {
	if x.Rows != a.N*a.M {
		panic(fmt.Sprintf("blocktri: MatVec rows %d != N*M %d", x.Rows, a.N*a.M))
	}
	y := mat.New(x.Rows, x.Cols)
	for i := 0; i < a.N; i++ {
		yi := y.View(i*a.M, 0, a.M, x.Cols)
		xi := x.View(i*a.M, 0, a.M, x.Cols)
		mat.MulAdd(yi, a.Diag[i], xi)
		if i > 0 {
			mat.MulAdd(yi, a.Lower[i], x.View((i-1)*a.M, 0, a.M, x.Cols))
		}
		if i < a.N-1 {
			mat.MulAdd(yi, a.Upper[i], x.View((i+1)*a.M, 0, a.M, x.Cols))
		}
	}
	return y
}

// Residual returns A*x - b for stacked multi-RHS x and b.
func (a *Matrix) Residual(x, b *mat.Matrix) *mat.Matrix {
	r := a.MatVec(x)
	mat.Sub(r, r, b)
	return r
}

// RelResidual returns ||A*x - b||_F / ||b||_F, the relative residual used
// throughout the accuracy experiments. A zero b yields the absolute norm.
func (a *Matrix) RelResidual(x, b *mat.Matrix) float64 {
	num := mat.NormFrob(a.Residual(x, b))
	den := mat.NormFrob(b)
	if den == 0 {
		return num
	}
	return num / den
}

// NormFrob returns the Frobenius norm of the block tridiagonal matrix.
func (a *Matrix) NormFrob() float64 {
	sum := 0.0
	add := func(b *mat.Matrix) {
		if b == nil {
			return
		}
		f := mat.NormFrob(b)
		sum += f * f
	}
	for i := 0; i < a.N; i++ {
		add(a.Lower[i])
		add(a.Diag[i])
		add(a.Upper[i])
	}
	return math.Sqrt(sum)
}

// Equal reports exact elementwise equality of two block tridiagonal
// matrices (including matching N and M).
func (a *Matrix) Equal(b *Matrix) bool {
	if a.N != b.N || a.M != b.M {
		return false
	}
	eq := func(x, y *mat.Matrix) bool {
		if (x == nil) != (y == nil) {
			return false
		}
		return x == nil || x.Equal(y)
	}
	for i := 0; i < a.N; i++ {
		if !eq(a.Lower[i], b.Lower[i]) || !eq(a.Diag[i], b.Diag[i]) || !eq(a.Upper[i], b.Upper[i]) {
			return false
		}
	}
	return true
}

// RandomRHS returns a stacked (N*M) x R right-hand-side matrix with
// entries uniform in [-1, 1).
func (a *Matrix) RandomRHS(r int, rng *rand.Rand) *mat.Matrix {
	return mat.Random(a.N*a.M, r, rng)
}
