package blocktri

import (
	"fmt"
	"math"
	"math/rand"

	"blocktri/internal/mat"
)

// RandomDiagDominant returns an N x N block tridiagonal matrix with M x M
// blocks whose dense expansion is strictly row diagonally dominant, which
// guarantees nonsingularity and keeps every solver in this repository well
// conditioned. The super-diagonal blocks are shifted by 2*I so that they are
// comfortably invertible, as the transfer-matrix recursive doubling
// formulation requires.
func RandomDiagDominant(n, m int, rng *rand.Rand) *Matrix {
	a := New(n, m)
	for i := 0; i < n; i++ {
		if i > 0 {
			a.Lower[i].CopyFrom(mat.Random(m, m, rng))
		}
		if i < n-1 {
			u := mat.Random(m, m, rng)
			for k := 0; k < m; k++ {
				u.AddAt(k, k, 2)
			}
			a.Upper[i].CopyFrom(u)
		}
		a.Diag[i].CopyFrom(mat.Random(m, m, rng))
	}
	makeDominant(a, 1.0)
	return a
}

// makeDominant rewrites each diagonal block's diagonal entries so that every
// dense row is strictly diagonally dominant with the given margin.
func makeDominant(a *Matrix, margin float64) {
	for i := 0; i < a.N; i++ {
		for r := 0; r < a.M; r++ {
			sum := 0.0
			rowAbs := func(b *mat.Matrix) {
				if b == nil {
					return
				}
				for c := 0; c < a.M; c++ {
					sum += math.Abs(b.At(r, c))
				}
			}
			rowAbs(a.Lower[i])
			rowAbs(a.Upper[i])
			rowAbs(a.Diag[i])
			sum -= math.Abs(a.Diag[i].At(r, r)) // exclude current diagonal
			a.Diag[i].Set(r, r, sum+margin)
		}
	}
}

// Poisson2D returns the block tridiagonal matrix of the standard 5-point
// finite-difference Laplacian on an nx x ny grid with Dirichlet boundaries:
// ny block rows of size nx, D = tridiag(-1, 4, -1), L = U = -I.
//
// This is the canonical PDE workload that motivates block tridiagonal
// solvers: each block row is one grid line.
func Poisson2D(nx, ny int) *Matrix {
	a := New(ny, nx)
	for i := 0; i < ny; i++ {
		d := a.Diag[i]
		for k := 0; k < nx; k++ {
			d.Set(k, k, 4)
			if k > 0 {
				d.Set(k, k-1, -1)
			}
			if k < nx-1 {
				d.Set(k, k+1, -1)
			}
		}
		if i > 0 {
			negIdentity(a.Lower[i])
		}
		if i < ny-1 {
			negIdentity(a.Upper[i])
		}
	}
	return a
}

// ConvectionDiffusion returns the block tridiagonal matrix of a 2-D
// convection-diffusion operator (-Δu + p·∇u) discretized with central
// differences on an nx x ny grid. peclet controls the strength of the
// (non-symmetric) convection term; peclet = 0 reduces to Poisson2D.
// |peclet| < 2 keeps the off-diagonal couplings nonsingular (U blocks are
// -(1 + peclet/2) I).
func ConvectionDiffusion(nx, ny int, peclet float64) *Matrix {
	a := New(ny, nx)
	cw := -(1 - peclet/2) // west / south coupling
	ce := -(1 + peclet/2) // east / north coupling
	for i := 0; i < ny; i++ {
		d := a.Diag[i]
		for k := 0; k < nx; k++ {
			d.Set(k, k, 4)
			if k > 0 {
				d.Set(k, k-1, cw)
			}
			if k < nx-1 {
				d.Set(k, k+1, ce)
			}
		}
		if i > 0 {
			scaledIdentity(a.Lower[i], cw)
		}
		if i < ny-1 {
			scaledIdentity(a.Upper[i], ce)
		}
	}
	return a
}

// BlockToeplitz returns an N-row block tridiagonal matrix in which every
// block row repeats the same (L, D, U) triple, drawn once at random and
// made diagonally dominant. Block Toeplitz structure is typical of
// discretized constant-coefficient operators.
func BlockToeplitz(n, m int, rng *rand.Rand) *Matrix {
	l := mat.Random(m, m, rng)
	u := mat.Random(m, m, rng)
	for k := 0; k < m; k++ {
		u.AddAt(k, k, 2)
	}
	d := mat.New(m, m)
	for r := 0; r < m; r++ {
		sum := 0.0
		for c := 0; c < m; c++ {
			sum += math.Abs(l.At(r, c)) + math.Abs(u.At(r, c))
			if c != r {
				v := 2*rng.Float64() - 1
				d.Set(r, c, v)
				sum += math.Abs(v)
			}
		}
		d.Set(r, r, sum+1)
	}
	a := New(n, m)
	for i := 0; i < n; i++ {
		a.Diag[i].CopyFrom(d)
		if i > 0 {
			a.Lower[i].CopyFrom(l)
		}
		if i < n-1 {
			a.Upper[i].CopyFrom(u)
		}
	}
	return a
}

// AnisotropicDiffusion returns the block tridiagonal matrix of a strongly
// anisotropic diffusion operator -eps*u_xx - u_yy on an nx x ny grid with
// Dirichlet boundaries: ny block rows of size nx with
//
//	D = tridiag(-eps, 2+2*eps, -eps),  L = U = -I.
//
// Strong coupling along y (relative to the in-line terms) keeps the
// line-to-line recurrence modes close to the unit circle — growth per
// block row is only ~1+2*sqrt(eps) — which makes this the PDE workload on
// which transfer-matrix recursive doubling is numerically effective (the
// regime of magnetized-plasma heat conduction and transport sweeps).
// eps must be positive; values around 0.01 are typical.
func AnisotropicDiffusion(nx, ny int, eps float64) *Matrix {
	a := New(ny, nx)
	for i := 0; i < ny; i++ {
		d := a.Diag[i]
		for k := 0; k < nx; k++ {
			d.Set(k, k, 2+2*eps)
			if k > 0 {
				d.Set(k, k-1, -eps)
			}
			if k < nx-1 {
				d.Set(k, k+1, -eps)
			}
		}
		if i > 0 {
			negIdentity(a.Lower[i])
		}
		if i < ny-1 {
			negIdentity(a.Upper[i])
		}
	}
	return a
}

// Oscillatory returns an N x N block tridiagonal matrix with M x M blocks
// whose associated three-term recurrence x_{i+1} = -U^{-1}(D x_i + L x_{i-1})
// has all propagation modes on (or near) the unit circle: U = L = I and D
// symmetric with spectral radius strictly below 2, so the characteristic
// roots λ of λ^2 + μλ + 1 = 0 (μ an eigenvalue of D, |μ| < 2) satisfy
// |λ| = 1.
//
// This family models the stable sweep recurrences (e.g. transport sweeps)
// that recursive doubling is used on in practice: unlike generic
// diagonally dominant matrices, the prefix products of the transfer
// matrices stay bounded, so large N neither overflows nor loses accuracy
// catastrophically, making it the right workload for large-scale
// performance runs. The matrix is symmetric but indefinite.
func Oscillatory(n, m int, rng *rand.Rand) *Matrix {
	// D = tridiag(a, c, a) with |c| + 2|a| <= 1.9 < 2 bounds the spectrum
	// of D within (-1.9, 1.9) by Gershgorin. Randomize (a, c) within that
	// budget; keep |c| away from resonances that could make the global
	// matrix nearly singular.
	c := 0.4 + 1.0*rng.Float64() // in [0.4, 1.4]
	amax := (1.9 - c) / 2
	a := (0.2 + 0.8*rng.Float64()) * amax
	out := New(n, m)
	for i := 0; i < n; i++ {
		d := out.Diag[i]
		for k := 0; k < m; k++ {
			d.Set(k, k, c)
			if k > 0 {
				d.Set(k, k-1, a)
			}
			if k < m-1 {
				d.Set(k, k+1, a)
			}
		}
		if i > 0 {
			scaledIdentity(out.Lower[i], 1)
		}
		if i < n-1 {
			scaledIdentity(out.Upper[i], 1)
		}
	}
	return out
}

func negIdentity(b *mat.Matrix) {
	scaledIdentity(b, -1)
}

func scaledIdentity(b *mat.Matrix, s float64) {
	b.Zero()
	for k := 0; k < b.Rows; k++ {
		b.Set(k, k, s)
	}
}

// FromScalarTridiagonal builds the M=1 block system for a scalar
// tridiagonal matrix with sub-diagonal lower (length n-1), diagonal diag
// (length n) and super-diagonal upper (length n-1) — the convenience
// entry point for users with classic tridiagonal systems.
func FromScalarTridiagonal(lower, diag, upper []float64) *Matrix {
	n := len(diag)
	if len(lower) != n-1 || len(upper) != n-1 {
		panic(fmt.Sprintf("blocktri: scalar tridiagonal needs %d off-diagonal entries, got %d/%d",
			n-1, len(lower), len(upper)))
	}
	a := New(n, 1)
	for i := 0; i < n; i++ {
		a.Diag[i].Set(0, 0, diag[i])
		if i > 0 {
			a.Lower[i].Set(0, 0, lower[i-1])
		}
		if i < n-1 {
			a.Upper[i].Set(0, 0, upper[i])
		}
	}
	return a
}
