package blocktri

import (
	"bytes"
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"blocktri/internal/mat"
)

func TestNewStructure(t *testing.T) {
	a := New(4, 3)
	if err := a.Validate(); err != nil {
		t.Fatal(err)
	}
	if a.Lower[0] != nil || a.Upper[3] != nil {
		t.Fatal("corner blocks must be nil")
	}
	if a.Lower[1] == nil || a.Diag[0] == nil || a.Upper[2] == nil {
		t.Fatal("interior blocks must be allocated")
	}
}

func TestNewSingleBlockRow(t *testing.T) {
	a := New(1, 2)
	if err := a.Validate(); err != nil {
		t.Fatal(err)
	}
	if a.Lower[0] != nil || a.Upper[0] != nil {
		t.Fatal("N=1 must have no off-diagonal blocks")
	}
}

func TestNewPanicsOnBadDims(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	New(0, 3)
}

func TestValidateCatchesCorruption(t *testing.T) {
	a := New(3, 2)
	a.Diag[1] = nil
	if a.Validate() == nil {
		t.Fatal("nil diag not caught")
	}
	a = New(3, 2)
	a.Upper[0] = mat.New(2, 3)
	if a.Validate() == nil {
		t.Fatal("misshapen block not caught")
	}
	a = New(3, 2)
	a.Lower[0] = mat.New(2, 2)
	if a.Validate() == nil {
		t.Fatal("non-nil corner block not caught")
	}
	a = New(3, 2)
	a.Upper = a.Upper[:2]
	if a.Validate() == nil {
		t.Fatal("short band slice not caught")
	}
}

func TestDenseLayout(t *testing.T) {
	a := New(2, 2)
	a.Diag[0].Set(0, 0, 1)
	a.Upper[0].Set(1, 1, 2)
	a.Lower[1].Set(0, 1, 3)
	a.Diag[1].Set(1, 1, 4)
	d := a.Dense()
	if d.Rows != 4 || d.Cols != 4 {
		t.Fatalf("dense shape %dx%d", d.Rows, d.Cols)
	}
	if d.At(0, 0) != 1 || d.At(1, 3) != 2 || d.At(2, 1) != 3 || d.At(3, 3) != 4 {
		t.Fatalf("dense placement wrong:\n%v", d)
	}
	// The two untouched 2x2 corners must be zero.
	if mat.NormFrob(d.View(0, 2, 2, 2)) == 0 && d.At(1, 3) != 2 {
		t.Fatal("unexpected corner zeroing")
	}
}

func TestMatVecAgainstDense(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, dims := range [][2]int{{1, 3}, {2, 1}, {5, 4}, {9, 2}} {
		n, m := dims[0], dims[1]
		a := RandomDiagDominant(n, m, rng)
		x := mat.Random(n*m, 3, rng)
		got := a.MatVec(x)
		want := mat.New(n*m, 3)
		mat.Mul(want, a.Dense(), x)
		if !got.EqualApprox(want, 1e-10) {
			t.Fatalf("N=%d M=%d: MatVec != Dense*x", n, m)
		}
	}
}

func TestMatVecShapeCheck(t *testing.T) {
	a := New(2, 2)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	a.MatVec(mat.New(3, 1))
}

func TestResidualZeroForExactSolution(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	a := RandomDiagDominant(4, 3, rng)
	x := mat.Random(12, 2, rng)
	b := a.MatVec(x)
	if rr := a.RelResidual(x, b); rr > 1e-14 {
		t.Fatalf("relative residual %v for exact solution", rr)
	}
	r := a.Residual(x, b)
	if mat.NormFrob(r) > 1e-12 {
		t.Fatalf("residual norm %v for exact solution", mat.NormFrob(r))
	}
}

func TestRelResidualZeroB(t *testing.T) {
	a := Poisson2D(3, 3)
	x := mat.New(9, 1)
	x.Set(0, 0, 1)
	b := mat.New(9, 1)
	if rr := a.RelResidual(x, b); rr <= 0 {
		t.Fatal("RelResidual with zero b should return absolute norm > 0")
	}
}

func TestCloneDeep(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	a := RandomDiagDominant(3, 2, rng)
	c := a.Clone()
	if !a.Equal(c) {
		t.Fatal("clone not equal")
	}
	c.Diag[1].Set(0, 0, 1e9)
	if a.Equal(c) {
		t.Fatal("clone shares storage")
	}
}

func TestEqualShapes(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	a := RandomDiagDominant(3, 2, rng)
	b := RandomDiagDominant(4, 2, rng)
	if a.Equal(b) {
		t.Fatal("different N compared equal")
	}
}

func TestNormFrobMatchesDense(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	a := RandomDiagDominant(6, 3, rng)
	got := a.NormFrob()
	want := mat.NormFrob(a.Dense())
	if math.Abs(got-want) > 1e-10*want {
		t.Fatalf("NormFrob %v vs dense %v", got, want)
	}
}

func TestRandomDiagDominantIsDominant(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	a := RandomDiagDominant(5, 4, rng)
	d := a.Dense()
	for i := 0; i < d.Rows; i++ {
		off := 0.0
		for j := 0; j < d.Cols; j++ {
			if j != i {
				off += math.Abs(d.At(i, j))
			}
		}
		if math.Abs(d.At(i, i)) <= off {
			t.Fatalf("dense row %d not strictly dominant", i)
		}
	}
	// Upper blocks must be invertible (required by recursive doubling).
	for i := 0; i < a.N-1; i++ {
		if _, err := mat.Factor(a.Upper[i]); err != nil {
			t.Fatalf("Upper[%d] singular: %v", i, err)
		}
	}
}

func TestPoisson2DStructure(t *testing.T) {
	a := Poisson2D(3, 4)
	if a.N != 4 || a.M != 3 {
		t.Fatalf("shape N=%d M=%d", a.N, a.M)
	}
	if err := a.Validate(); err != nil {
		t.Fatal(err)
	}
	d := a.Diag[0]
	if d.At(0, 0) != 4 || d.At(0, 1) != -1 || d.At(1, 0) != -1 || d.At(0, 2) != 0 {
		t.Fatalf("diag block wrong:\n%v", d)
	}
	if a.Upper[0].At(1, 1) != -1 || a.Upper[0].At(0, 1) != 0 {
		t.Fatal("upper block should be -I")
	}
	// Dense Poisson must be symmetric.
	dd := a.Dense()
	for i := 0; i < dd.Rows; i++ {
		for j := 0; j < dd.Cols; j++ {
			if dd.At(i, j) != dd.At(j, i) {
				t.Fatalf("Poisson dense not symmetric at (%d,%d)", i, j)
			}
		}
	}
}

func TestConvectionDiffusionReducesToPoisson(t *testing.T) {
	p := Poisson2D(4, 3)
	c := ConvectionDiffusion(4, 3, 0)
	if !p.Equal(c) {
		t.Fatal("peclet=0 convection-diffusion != Poisson")
	}
	c2 := ConvectionDiffusion(4, 3, 0.5)
	d := c2.Dense()
	sym := true
	for i := 0; i < d.Rows && sym; i++ {
		for j := 0; j < d.Cols; j++ {
			if d.At(i, j) != d.At(j, i) {
				sym = false
				break
			}
		}
	}
	if sym {
		t.Fatal("nonzero peclet should be non-symmetric")
	}
}

func TestBlockToeplitzRepeats(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	a := BlockToeplitz(5, 3, rng)
	if err := a.Validate(); err != nil {
		t.Fatal(err)
	}
	for i := 2; i < 5; i++ {
		if !a.Diag[i].Equal(a.Diag[1]) || !a.Lower[i].Equal(a.Lower[1]) {
			t.Fatal("Toeplitz blocks differ between rows")
		}
	}
	// Must still be dominant enough to be nonsingular.
	if _, err := mat.Factor(a.Dense()); err != nil {
		t.Fatalf("Toeplitz dense singular: %v", err)
	}
}

func TestSerializationRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	for _, dims := range [][2]int{{1, 1}, {2, 3}, {7, 2}} {
		a := RandomDiagDominant(dims[0], dims[1], rng)
		var buf bytes.Buffer
		if _, err := a.WriteTo(&buf); err != nil {
			t.Fatal(err)
		}
		b, err := Read(&buf)
		if err != nil {
			t.Fatal(err)
		}
		if !a.Equal(b) {
			t.Fatalf("round trip mismatch at N=%d M=%d", dims[0], dims[1])
		}
	}
}

func TestReadRejectsBadInput(t *testing.T) {
	if _, err := Read(bytes.NewReader([]byte{1, 2, 3})); err == nil {
		t.Fatal("short input accepted")
	}
	var buf bytes.Buffer
	a := Poisson2D(2, 2)
	if _, err := a.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	data[0] ^= 0xff // corrupt magic
	if _, err := Read(bytes.NewReader(data)); err == nil {
		t.Fatal("bad magic accepted")
	}
	// Truncated payload.
	buf.Reset()
	if _, err := a.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	if _, err := Read(bytes.NewReader(buf.Bytes()[:buf.Len()-4])); err == nil {
		t.Fatal("truncated payload accepted")
	}
}

func TestWriteToValidates(t *testing.T) {
	a := New(2, 2)
	a.Diag[0] = nil
	var buf bytes.Buffer
	if _, err := a.WriteTo(&buf); err == nil {
		t.Fatal("WriteTo accepted invalid matrix")
	}
}

// Property: serialization round-trips exactly for arbitrary sizes, and
// MatVec on the round-tripped matrix is bit-identical.
func TestSerializationProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n, m := 1+r.Intn(8), 1+r.Intn(5)
		a := RandomDiagDominant(n, m, r)
		var buf bytes.Buffer
		if _, err := a.WriteTo(&buf); err != nil {
			return false
		}
		b, err := Read(&buf)
		if err != nil || !a.Equal(b) {
			return false
		}
		x := mat.Random(n*m, 2, r)
		return a.MatVec(x).Equal(b.MatVec(x))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// Property: dense expansion and MatVec agree for every generator family.
func TestGeneratorsMatVecProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n, m := 1+r.Intn(6), 1+r.Intn(4)
		mats := []*Matrix{
			RandomDiagDominant(n, m, r),
			Poisson2D(m, n),
			ConvectionDiffusion(m, n, 0.3),
			BlockToeplitz(n, m, r),
		}
		for _, a := range mats {
			if err := a.Validate(); err != nil {
				return false
			}
			x := mat.Random(a.N*a.M, 1, r)
			want := mat.New(a.N*a.M, 1)
			mat.Mul(want, a.Dense(), x)
			if !a.MatVec(x).EqualApprox(want, 1e-10) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestOscillatoryProperties(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for trial := 0; trial < 10; trial++ {
		n, m := 2+rng.Intn(10), 1+rng.Intn(5)
		a := Oscillatory(n, m, rng)
		if err := a.Validate(); err != nil {
			t.Fatal(err)
		}
		// Diagonal blocks have Gershgorin radius below 2.
		for i := 0; i < n; i++ {
			for r := 0; r < m; r++ {
				sum := 0.0
				for c := 0; c < m; c++ {
					sum += math.Abs(a.Diag[i].At(r, c))
				}
				if sum >= 2 {
					t.Fatalf("diag row sum %v >= 2", sum)
				}
			}
		}
		// Off-diagonal blocks are exactly the identity.
		if !a.Upper[0].Equal(mat.Identity(m)) || !a.Lower[n-1].Equal(mat.Identity(m)) {
			t.Fatal("off-diagonal blocks must be identity")
		}
		// The dense expansion is symmetric and (generically) nonsingular.
		d := a.Dense()
		if _, err := mat.Factor(d); err != nil {
			t.Fatalf("oscillatory matrix singular: %v", err)
		}
	}
}
