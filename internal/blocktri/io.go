package blocktri

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"

	"blocktri/internal/mat"
)

// magic identifies the on-disk block tridiagonal format ("BTD1").
const magic = 0x42544431

// WriteTo serializes a in a compact little-endian binary format:
// magic, N, M as uint64, then the blocks band by band (lower, diag, upper)
// in block-row order, skipping the nil corner blocks. It returns the number
// of bytes written.
func (a *Matrix) WriteTo(w io.Writer) (int64, error) {
	if err := a.Validate(); err != nil {
		return 0, err
	}
	bw := bufio.NewWriter(w)
	var n int64
	writeU64 := func(v uint64) error {
		var buf [8]byte
		binary.LittleEndian.PutUint64(buf[:], v)
		k, err := bw.Write(buf[:])
		n += int64(k)
		return err
	}
	if err := writeU64(magic); err != nil {
		return n, err
	}
	if err := writeU64(uint64(a.N)); err != nil {
		return n, err
	}
	if err := writeU64(uint64(a.M)); err != nil {
		return n, err
	}
	writeBlock := func(b *mat.Matrix) error {
		for i := 0; i < b.Rows; i++ {
			for j := 0; j < b.Cols; j++ {
				if err := writeU64(math.Float64bits(b.At(i, j))); err != nil {
					return err
				}
			}
		}
		return nil
	}
	for i := 0; i < a.N; i++ {
		if i > 0 {
			if err := writeBlock(a.Lower[i]); err != nil {
				return n, err
			}
		}
		if err := writeBlock(a.Diag[i]); err != nil {
			return n, err
		}
		if i < a.N-1 {
			if err := writeBlock(a.Upper[i]); err != nil {
				return n, err
			}
		}
	}
	return n, bw.Flush()
}

// Read deserializes a matrix previously written with WriteTo.
func Read(r io.Reader) (*Matrix, error) {
	br := bufio.NewReader(r)
	readU64 := func() (uint64, error) {
		var buf [8]byte
		if _, err := io.ReadFull(br, buf[:]); err != nil {
			return 0, err
		}
		return binary.LittleEndian.Uint64(buf[:]), nil
	}
	mg, err := readU64()
	if err != nil {
		return nil, fmt.Errorf("blocktri: reading header: %w", err)
	}
	if mg != magic {
		return nil, fmt.Errorf("blocktri: bad magic %#x", mg)
	}
	n64, err := readU64()
	if err != nil {
		return nil, err
	}
	m64, err := readU64()
	if err != nil {
		return nil, err
	}
	const maxDim = 1 << 24
	if n64 == 0 || m64 == 0 || n64 > maxDim || m64 > maxDim {
		return nil, fmt.Errorf("blocktri: implausible dimensions N=%d M=%d", n64, m64)
	}
	a := New(int(n64), int(m64))
	readBlock := func(b *mat.Matrix) error {
		for i := 0; i < b.Rows; i++ {
			for j := 0; j < b.Cols; j++ {
				v, err := readU64()
				if err != nil {
					return err
				}
				b.Set(i, j, math.Float64frombits(v))
			}
		}
		return nil
	}
	for i := 0; i < a.N; i++ {
		if i > 0 {
			if err := readBlock(a.Lower[i]); err != nil {
				return nil, err
			}
		}
		if err := readBlock(a.Diag[i]); err != nil {
			return nil, err
		}
		if i < a.N-1 {
			if err := readBlock(a.Upper[i]); err != nil {
				return nil, err
			}
		}
	}
	return a, nil
}
