package blocktri

import "blocktri/internal/mat"

// Shifted returns alpha*I + beta*A as a new block tridiagonal matrix —
// the operator-building primitive for implicit time stepping
// ((I + dt*A) u_{t+1} = u_t) and spectral shifts (A - sigma*I).
func (a *Matrix) Shifted(alpha, beta float64) *Matrix {
	out := New(a.N, a.M)
	scaleInto := func(dst, src *mat.Matrix) {
		dst.CopyFrom(src)
		mat.Scale(dst, beta)
	}
	for i := 0; i < a.N; i++ {
		scaleInto(out.Diag[i], a.Diag[i])
		for k := 0; k < a.M; k++ {
			out.Diag[i].AddAt(k, k, alpha)
		}
		if i > 0 {
			scaleInto(out.Lower[i], a.Lower[i])
		}
		if i < a.N-1 {
			scaleInto(out.Upper[i], a.Upper[i])
		}
	}
	return out
}

// Scale multiplies every block of a by s in place.
func (a *Matrix) Scale(s float64) {
	each := func(b *mat.Matrix) {
		if b != nil {
			mat.Scale(b, s)
		}
	}
	for i := 0; i < a.N; i++ {
		each(a.Lower[i])
		each(a.Diag[i])
		each(a.Upper[i])
	}
}

// Transpose returns A^T as a new block tridiagonal matrix: diagonal
// blocks are transposed in place, and the lower band becomes the
// transposed upper band shifted by one block row (and vice versa).
func (a *Matrix) Transpose() *Matrix {
	out := New(a.N, a.M)
	for i := 0; i < a.N; i++ {
		mat.Transpose(out.Diag[i], a.Diag[i])
		// A^T[i][i+1] = (A[i+1][i])^T: upper band from the lower band.
		if i < a.N-1 {
			mat.Transpose(out.Upper[i], a.Lower[i+1])
		}
		if i > 0 {
			mat.Transpose(out.Lower[i], a.Upper[i-1])
		}
	}
	return out
}

// IsSymmetric reports whether a equals its transpose within absolute
// tolerance tol.
func (a *Matrix) IsSymmetric(tol float64) bool {
	for i := 0; i < a.N; i++ {
		for r := 0; r < a.M; r++ {
			for c := 0; c < a.M; c++ {
				d := a.Diag[i].At(r, c) - a.Diag[i].At(c, r)
				if d > tol || d < -tol {
					return false
				}
			}
		}
		if i < a.N-1 {
			for r := 0; r < a.M; r++ {
				for c := 0; c < a.M; c++ {
					d := a.Upper[i].At(r, c) - a.Lower[i+1].At(c, r)
					if d > tol || d < -tol {
						return false
					}
				}
			}
		}
	}
	return true
}
