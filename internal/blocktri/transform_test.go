package blocktri

import (
	"math/rand"
	"testing"
	"testing/quick"

	"blocktri/internal/mat"
)

func TestShiftedMatchesDense(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	a := RandomDiagDominant(5, 3, rng)
	s := a.Shifted(2.5, -0.5)
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	want := a.Dense()
	mat.Scale(want, -0.5)
	for i := 0; i < want.Rows; i++ {
		want.AddAt(i, i, 2.5)
	}
	if !s.Dense().EqualApprox(want, 1e-12) {
		t.Fatal("Shifted dense mismatch")
	}
	// Original untouched.
	if !a.Equal(RandomDiagDominant(5, 3, rand.New(rand.NewSource(21)))) {
		t.Fatal("Shifted modified its receiver")
	}
}

func TestShiftedIdentityAndZero(t *testing.T) {
	a := Poisson2D(3, 4)
	id := a.Shifted(1, 0) // pure identity
	d := id.Dense()
	if !d.EqualApprox(mat.Identity(12), 1e-15) {
		t.Fatal("Shifted(1,0) should be the identity")
	}
	same := a.Shifted(0, 1)
	if !same.Equal(a) {
		t.Fatal("Shifted(0,1) should equal A")
	}
}

func TestScaleInPlace(t *testing.T) {
	rng := rand.New(rand.NewSource(22))
	a := RandomDiagDominant(4, 2, rng)
	want := a.Dense()
	mat.Scale(want, 3)
	a.Scale(3)
	if !a.Dense().EqualApprox(want, 1e-12) {
		t.Fatal("Scale mismatch")
	}
}

func TestTransposeMatchesDense(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	for _, dims := range [][2]int{{1, 2}, {2, 3}, {6, 2}, {4, 4}} {
		a := RandomDiagDominant(dims[0], dims[1], rng)
		at := a.Transpose()
		if err := at.Validate(); err != nil {
			t.Fatal(err)
		}
		want := mat.New(a.N*a.M, a.N*a.M)
		mat.Transpose(want, a.Dense())
		if !at.Dense().EqualApprox(want, 1e-12) {
			t.Fatalf("N=%d M=%d: transpose mismatch", dims[0], dims[1])
		}
	}
}

func TestIsSymmetric(t *testing.T) {
	if !Poisson2D(4, 5).IsSymmetric(0) {
		t.Fatal("Poisson should be symmetric")
	}
	if ConvectionDiffusion(4, 5, 0.8).IsSymmetric(1e-12) {
		t.Fatal("convection-diffusion should not be symmetric")
	}
	rng := rand.New(rand.NewSource(24))
	if !Oscillatory(6, 3, rng).IsSymmetric(0) {
		t.Fatal("oscillatory family should be symmetric")
	}
}

// Property: transpose is an involution and Shifted composes linearly.
func TestTransformProperties(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n, m := 1+rng.Intn(6), 1+rng.Intn(4)
		a := RandomDiagDominant(n, m, rng)
		if !a.Transpose().Transpose().Equal(a) {
			return false
		}
		// (alpha I + beta A) x == alpha x + beta (A x).
		alpha, beta := rng.NormFloat64(), rng.NormFloat64()
		x := mat.Random(n*m, 2, rng)
		left := a.Shifted(alpha, beta).MatVec(x)
		right := a.MatVec(x)
		mat.Scale(right, beta)
		ax := x.Clone()
		mat.Scale(ax, alpha)
		mat.Add(right, right, ax)
		return left.EqualApprox(right, 1e-10)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
