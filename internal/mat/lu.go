package mat

import "math"

// LU holds the LU factorization with partial (row) pivoting of a square
// matrix A, such that P*A = L*U where P is the permutation recorded in Piv.
// L is unit lower triangular and U upper triangular; both are packed into
// the single factors matrix.
type LU struct {
	factors *Matrix
	// Piv[k] is the row that was swapped with row k at elimination step k
	// (LAPACK-style ipiv, 0-based).
	Piv []int
	// sign is the permutation parity, +1 or -1, used by Det.
	sign float64
}

// Factor computes the pivoted LU factorization of the square matrix a.
// The input matrix is not modified. It returns ErrSingular if a zero pivot
// is encountered.
func Factor(a *Matrix) (*LU, error) {
	if a.Rows != a.Cols {
		return nil, ErrShape
	}
	lu := &LU{factors: a.Clone(), Piv: make([]int, a.Rows), sign: 1}
	if err := lu.factorize(); err != nil {
		return nil, err
	}
	return lu, nil
}

// FactorInPlace is like Factor but overwrites a with the packed factors,
// avoiding the copy. a must have contiguous storage semantics compatible
// with views (views are allowed).
func FactorInPlace(a *Matrix) (*LU, error) {
	if a.Rows != a.Cols {
		return nil, ErrShape
	}
	lu := &LU{factors: a, Piv: make([]int, a.Rows), sign: 1}
	if err := lu.factorize(); err != nil {
		return nil, err
	}
	return lu, nil
}

func (lu *LU) factorize() error {
	f := lu.factors
	n := f.Rows
	for k := 0; k < n; k++ {
		// Find pivot: largest |f[i][k]| for i >= k.
		p := k
		max := math.Abs(f.Data[k*f.Stride+k])
		for i := k + 1; i < n; i++ {
			if v := math.Abs(f.Data[i*f.Stride+k]); v > max {
				max, p = v, i
			}
		}
		lu.Piv[k] = p
		if max == 0 {
			return ErrSingular
		}
		if p != k {
			lu.sign = -lu.sign
			rk := f.Data[k*f.Stride : k*f.Stride+n]
			rp := f.Data[p*f.Stride : p*f.Stride+n]
			for j := 0; j < n; j++ {
				rk[j], rp[j] = rp[j], rk[j]
			}
		}
		pivot := f.Data[k*f.Stride+k]
		for i := k + 1; i < n; i++ {
			m := f.Data[i*f.Stride+k] / pivot
			f.Data[i*f.Stride+k] = m
			if m == 0 {
				continue
			}
			ri := f.Data[i*f.Stride+k+1 : i*f.Stride+n]
			rk := f.Data[k*f.Stride+k+1 : k*f.Stride+n]
			for j := range ri {
				ri[j] -= m * rk[j]
			}
		}
	}
	return nil
}

// N returns the dimension of the factored matrix.
func (lu *LU) N() int { return lu.factors.Rows }

// Solve computes X such that A*X = B for the factored A and returns it.
// B may have any number of columns and is not modified: the result is
// freshly allocated and shares no storage with b (aliasing safe).
func (lu *LU) Solve(b *Matrix) *Matrix {
	x := b.Clone()
	lu.SolveInPlace(x)
	return x
}

// SolveTo computes X = A^{-1} B into dst, which must have b's shape and
// must not alias b.
func (lu *LU) SolveTo(dst, b *Matrix) {
	dst.CopyFrom(b)
	lu.SolveInPlace(dst)
}

// SolveInPlace overwrites b (n x r) with A^{-1} b: it applies the row
// permutation, then forward substitution with unit-L, then back
// substitution with U. b is the destination by design; no other aliasing
// is involved.
//
//perf:hotpath
func (lu *LU) SolveInPlace(b *Matrix) {
	n := lu.factors.Rows
	if b.Rows != n {
		panic("mat: LU solve dimension mismatch")
	}
	f := lu.factors
	r := b.Cols
	// Apply P: the same row interchanges performed during elimination.
	// Ranging over Piv (always length n) lets the compiler drop the pivot
	// load's bounds check; the row-slice extractions below still carry
	// checks the prover cannot remove without seeing Stride*k+r <= len.
	//lint:ignore perfbce the two row-slice extraction checks per swapped row are unprovable without exposing the Stride invariant
	//perf:hotloop
	for k, p := range lu.Piv {
		if p != k {
			rk := b.Data[k*b.Stride : k*b.Stride+r]
			rp := b.Data[p*b.Stride : p*b.Stride+r]
			for j := 0; j < r; j++ {
				rk[j], rp[j] = rp[j], rk[j]
			}
		}
	}
	// Wide right-hand-side panels (the shape the batched solvers
	// substitute) take the vectorized row-update path; narrow panels keep
	// the original inline scalar loops, which the compiler handles well
	// and which avoid any per-row call overhead.
	if vecAxpy && r >= 8 {
		lu.substituteWide(b, r)
		return
	}
	// Forward substitution: L y = P b with unit diagonal.
	for i := 1; i < n; i++ {
		bi := b.Data[i*b.Stride : i*b.Stride+r]
		for k := 0; k < i; k++ {
			m := f.Data[i*f.Stride+k]
			if m == 0 {
				continue
			}
			bk := b.Data[k*b.Stride : k*b.Stride+r]
			for j := 0; j < r; j++ {
				bi[j] -= m * bk[j]
			}
		}
	}
	// Back substitution: U x = y.
	for i := n - 1; i >= 0; i-- {
		bi := b.Data[i*b.Stride : i*b.Stride+r]
		for k := i + 1; k < n; k++ {
			u := f.Data[i*f.Stride+k]
			if u == 0 {
				continue
			}
			bk := b.Data[k*b.Stride : k*b.Stride+r]
			for j := 0; j < r; j++ {
				bi[j] -= u * bk[j]
			}
		}
		d := f.Data[i*f.Stride+i]
		for j := range bi {
			bi[j] /= d
		}
	}
}

// substituteWide runs the forward/back substitution of SolveInPlace with
// an 8-wide FMA head on every row update (scalar tail for r mod 8).
// Only called when vecAxpy is set and r >= 8.
//
//perf:hotpath
func (lu *LU) substituteWide(b *Matrix, r int) {
	f := lu.factors
	n := f.Rows
	n8 := r &^ 7
	// Forward substitution: L y = P b with unit diagonal.
	//lint:ignore perfbce the surviving checks are the per-row panel extractions and the scalar tail; the 8-wide body runs in axpyAsm with no checks at all
	//perf:hotloop
	for i := 1; i < n; i++ {
		bi := b.Data[i*b.Stride : i*b.Stride+r]
		for k := 0; k < i; k++ {
			m := f.Data[i*f.Stride+k]
			if m == 0 {
				continue
			}
			bk := b.Data[k*b.Stride : k*b.Stride+r]
			axpyAsm(-m, &bk[0], &bi[0], n8)
			for j := n8; j < r; j++ {
				bi[j] -= m * bk[j]
			}
		}
	}
	// Back substitution: U x = y.
	for i := n - 1; i >= 0; i-- {
		bi := b.Data[i*b.Stride : i*b.Stride+r]
		for k := i + 1; k < n; k++ {
			u := f.Data[i*f.Stride+k]
			if u == 0 {
				continue
			}
			bk := b.Data[k*b.Stride : k*b.Stride+r]
			axpyAsm(-u, &bk[0], &bi[0], n8)
			for j := n8; j < r; j++ {
				bi[j] -= u * bk[j]
			}
		}
		d := f.Data[i*f.Stride+i]
		for j := range bi {
			bi[j] /= d
		}
	}
}

// Inverse returns A^{-1} for the factored A. The result is freshly
// allocated and shares no storage with the factorization (aliasing safe).
func (lu *LU) Inverse() *Matrix {
	return lu.Solve(Identity(lu.factors.Rows))
}

// Det returns the determinant of the factored matrix.
func (lu *LU) Det() float64 {
	d := lu.sign
	f := lu.factors
	for i := 0; i < f.Rows; i++ {
		d *= f.Data[i*f.Stride+i]
	}
	return d
}

// Solve is a convenience one-shot: it factors a and solves A*X = B.
// Neither a nor b is modified; the result is freshly allocated (aliasing
// safe).
func Solve(a, b *Matrix) (*Matrix, error) {
	lu, err := Factor(a)
	if err != nil {
		return nil, err
	}
	return lu.Solve(b), nil
}

// Inverse is a convenience one-shot matrix inverse. a is not modified; the
// result is freshly allocated (aliasing safe).
func Inverse(a *Matrix) (*Matrix, error) {
	lu, err := Factor(a)
	if err != nil {
		return nil, err
	}
	return lu.Inverse(), nil
}

// Cond1 returns the exact 1-norm condition number of a, computed via an
// explicit inverse. This is O(n^3) and intended for the modest block sizes
// used in this repository (diagnostics and test assertions, not inner
// loops).
func Cond1(a *Matrix) (float64, error) {
	inv, err := Inverse(a)
	if err != nil {
		return math.Inf(1), err
	}
	return Norm1(a) * Norm1(inv), nil
}
