//go:build !amd64

package mat

// Non-amd64 fallbacks: no vector kernel, so the panel width stays at the
// portable 4x4 scalar micro-kernel and these stubs are never reached.

func avx512Available() bool { return false }

func kernel8x8Asm(k int, pa, pb, dst *float64, stride int) {
	panic("mat: kernel8x8Asm without AVX-512")
}

func axpyAsm(alpha float64, x, y *float64, n int) {
	panic("mat: axpyAsm without AVX-512")
}

func packColsAsm(k int, src *float64, stride int, dst *float64) {
	panic("mat: packColsAsm without AVX-512")
}
