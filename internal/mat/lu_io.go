package mat

import "fmt"

// Encode flattens the factorization into a float64 payload understood by
// DecodeLU: [n, sign, piv..., packed factors row-major...]. Pivot indices
// are exactly representable as float64 for any realistic n.
func (lu *LU) Encode() []float64 {
	n := lu.factors.Rows
	out := make([]float64, 0, 2+n+n*n)
	out = append(out, float64(n), lu.sign)
	for _, p := range lu.Piv {
		out = append(out, float64(p))
	}
	for i := 0; i < n; i++ {
		out = append(out, lu.factors.Data[i*lu.factors.Stride:i*lu.factors.Stride+n]...)
	}
	return out
}

// EncodedLULen returns the payload length of an LU of dimension n.
func EncodedLULen(n int) int { return 2 + n + n*n }

// DecodeLU reconstructs a factorization from an Encode payload prefix and
// returns it with the number of words consumed.
func DecodeLU(p []float64) (*LU, int) {
	if len(p) < 2 {
		panic("mat: DecodeLU: short payload")
	}
	n := int(p[0])
	need := EncodedLULen(n)
	if n < 0 || len(p) < need {
		panic(fmt.Sprintf("mat: DecodeLU: need %d words, have %d", need, len(p)))
	}
	lu := &LU{
		factors: New(n, n),
		Piv:     make([]int, n),
		sign:    p[1],
	}
	for i := 0; i < n; i++ {
		piv := int(p[2+i])
		if piv < 0 || piv >= n {
			panic(fmt.Sprintf("mat: DecodeLU: pivot %d out of range", piv))
		}
		lu.Piv[i] = piv
	}
	copy(lu.factors.Data, p[2+n:need])
	return lu, need
}
