package mat

// Workspace is a checkout/reset arena for the scratch a solver needs during
// a solve: float slabs for matrix storage, an int arena for pivot vectors,
// and pools of reusable Matrix and LU headers. A solver checks scratch out
// with Get/GetNoClear/CloneOf/View/LU and returns everything at once with
// Reset; after the arena has grown to the high-water mark of one solve,
// subsequent solves perform no heap allocation at all.
//
// Discipline (see docs/PERFORMANCE.md):
//
//   - A Workspace is owned by exactly one goroutine (one rank); it is not
//     safe for concurrent use.
//   - Reset invalidates every matrix, view, slice and LU previously checked
//     out: their storage will be handed to the next checkout. Never let a
//     workspace-backed value outlive the Reset of its arena.
//   - Workspace-backed matrices obey the same aliasing contract as any
//     other Matrix (the matalias analyzer applies): distinct checkouts
//     never overlap until Reset recycles them.
type Workspace struct {
	slabs [][]float64
	si    int // slab currently being carved
	off   int // watermark within slabs[si]

	islabs [][]int
	isi    int
	ioff   int

	hdrs []*Matrix
	hi   int

	lus []*LU
	lui int
}

// minSlabFloats is the size of the first float slab (32 KiB). Subsequent
// slabs double, so a workspace reaches any steady-state footprint within
// O(log footprint) allocations.
const minSlabFloats = 1 << 12

const minSlabInts = 1 << 8

// NewWorkspace returns an empty workspace. It allocates nothing until the
// first checkout.
func NewWorkspace() *Workspace { return &Workspace{} }

// Reset returns every checkout to the arena. Previously returned matrices,
// views, int slices and LU factorizations become invalid: their storage is
// reused by subsequent checkouts.
func (w *Workspace) Reset() {
	w.si, w.off = 0, 0
	w.isi, w.ioff = 0, 0
	w.hi = 0
	w.lui = 0
}

// Floats checks out a slice of n float64 values with unspecified contents.
func (w *Workspace) Floats(n int) []float64 {
	if n == 0 {
		return nil
	}
	for {
		if w.si < len(w.slabs) {
			s := w.slabs[w.si]
			if w.off+n <= len(s) {
				out := s[w.off : w.off+n : w.off+n]
				w.off += n
				return out
			}
			w.si++
			w.off = 0
			continue
		}
		size := minSlabFloats
		if len(w.slabs) > 0 {
			size = 2 * len(w.slabs[len(w.slabs)-1])
		}
		for size < n {
			size *= 2
		}
		w.slabs = append(w.slabs, make([]float64, size))
	}
}

// Ints checks out a slice of n ints with unspecified contents.
func (w *Workspace) Ints(n int) []int {
	if n == 0 {
		return nil
	}
	for {
		if w.isi < len(w.islabs) {
			s := w.islabs[w.isi]
			if w.ioff+n <= len(s) {
				out := s[w.ioff : w.ioff+n : w.ioff+n]
				w.ioff += n
				return out
			}
			w.isi++
			w.ioff = 0
			continue
		}
		size := minSlabInts
		if len(w.islabs) > 0 {
			size = 2 * len(w.islabs[len(w.islabs)-1])
		}
		for size < n {
			size *= 2
		}
		w.islabs = append(w.islabs, make([]int, size))
	}
}

// header checks out a pooled Matrix header.
func (w *Workspace) header() *Matrix {
	if w.hi == len(w.hdrs) {
		w.hdrs = append(w.hdrs, new(Matrix))
	}
	m := w.hdrs[w.hi]
	w.hi++
	return m
}

// GetNoClear checks out an r x c matrix with unspecified contents. Use Get
// when the caller accumulates into the matrix and needs zeros.
func (w *Workspace) GetNoClear(r, c int) *Matrix {
	if r < 0 || c < 0 {
		panic("mat: workspace checkout with negative dimensions")
	}
	m := w.header()
	m.Rows, m.Cols, m.Stride = r, c, c
	m.Data = w.Floats(r * c)
	return m
}

// Get checks out a zeroed r x c matrix.
func (w *Workspace) Get(r, c int) *Matrix {
	m := w.GetNoClear(r, c)
	for i := range m.Data {
		m.Data[i] = 0
	}
	return m
}

// CloneOf checks out a contiguous deep copy of src.
func (w *Workspace) CloneOf(src *Matrix) *Matrix {
	m := w.GetNoClear(src.Rows, src.Cols)
	m.CopyFrom(src)
	return m
}

// View returns a sub-matrix view of m backed by a pooled header, with the
// same semantics as (*Matrix).View. Hot solve loops use this instead of
// View so that header escape cannot reintroduce per-iteration allocation.
func (w *Workspace) View(m *Matrix, i, j, r, c int) *Matrix {
	v := w.header()
	m.viewInto(v, i, j, r, c)
	return v
}

// LU checks out an arena-backed pivoted LU factorization of a. The input is
// not modified. The returned factorization (its packed factors and pivot
// vector) lives in the workspace and is invalidated by Reset.
func (w *Workspace) LU(a *Matrix) (*LU, error) {
	if a.Rows != a.Cols {
		return nil, ErrShape
	}
	if w.lui == len(w.lus) {
		w.lus = append(w.lus, new(LU))
	}
	lu := w.lus[w.lui]
	w.lui++
	lu.factors = w.CloneOf(a)
	lu.Piv = w.Ints(a.Rows)
	lu.sign = 1
	if err := lu.factorize(); err != nil {
		return nil, err
	}
	return lu, nil
}
