package mat

import (
	"sync"
	"testing"
)

// TestParallelToggleRace hammers SetParallel from one goroutine while
// several others run large multiplications that straddle the parallel
// dispatch threshold. Under -race this proves the knob is safely published;
// the Equal check proves toggling mid-stream never changes results (both
// paths use the same per-row reduction order).
func TestParallelToggleRace(t *testing.T) {
	prev := ParallelEnabled()
	defer SetParallel(prev)

	const n = 128 // n^3 is above parallelThreshold
	a := New(n, n)
	b := New(n, n)
	fillSeq(a, 0.5)
	fillSeq(b, 0.25)
	want := New(n, n)
	Mul(want, a, b)

	stop := make(chan struct{})
	var toggler sync.WaitGroup
	toggler.Add(1)
	go func() {
		defer toggler.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
				SetParallel(i%2 == 0)
			}
		}
	}()

	var workers sync.WaitGroup
	for w := 0; w < 4; w++ {
		workers.Add(1)
		go func() {
			defer workers.Done()
			dst := New(n, n)
			for i := 0; i < 20; i++ {
				Mul(dst, a, b)
				if !dst.Equal(want) {
					t.Error("result changed while toggling SetParallel")
					return
				}
			}
		}()
	}
	workers.Wait()
	close(stop)
	toggler.Wait()
}

// TestMulAddPackedParallelRace runs concurrent panelized accumulations off
// one shared PackedA while the parallel dispatch is enabled. Under -race
// this proves the packed panel is safely shared read-only across worker
// goroutines and across concurrent callers; the Equal check proves the
// parallel bands (which snap to the panel width) reproduce the serial
// result bit-for-bit.
func TestMulAddPackedParallelRace(t *testing.T) {
	prev := ParallelEnabled()
	defer SetParallel(prev)

	const m, k, n = 64, 64, 64 // m*k*n crosses parallelThreshold
	a := New(m, k)
	b := New(k, n)
	fillSeq(a, 0.5)
	fillSeq(b, 0.25)
	pa := NewPackedA(1, a)

	SetParallel(false)
	want := New(m, n)
	MulAddPacked(want, pa, b, nil)

	SetParallel(true)
	var workers sync.WaitGroup
	for w := 0; w < 4; w++ {
		workers.Add(1)
		go func() {
			defer workers.Done()
			dst := New(m, n)
			bs := make([]float64, PackBLen(k, n))
			for i := 0; i < 10; i++ {
				dst.Zero()
				MulAddPacked(dst, pa, b, bs)
				if !dst.Equal(want) {
					t.Error("parallel MulAddPacked differs from serial result")
					return
				}
			}
		}()
	}
	workers.Wait()
}
