package mat

import "os"

// AVX-512 support for the packed GEMM path. When the CPU and OS expose the
// full ZMM state, the packed kernel runs 8x8 register tiles (eight zmm
// accumulators) written in assembly; otherwise the portable 4x4 scalar
// micro-kernel carries the whole product. Detection happens once before
// main, so the panel width — and with it the dispatch predicate and the
// floating-point reduction order of every GEMM — is fixed for the life of
// the process.

//go:noescape
func kernel8x8Asm(k int, pa, pb, dst *float64, stride int)

//go:noescape
func axpyAsm(alpha float64, x, y *float64, n int)

//go:noescape
func packColsAsm(k int, src *float64, stride int, dst *float64)

//go:noescape
func cpuidex(eaxIn, ecxIn uint32) (eax, ebx, ecx, edx uint32)

//go:noescape
func xgetbv0() (eax, edx uint32)

// avx512Available reports whether the processor supports AVX-512F and the
// operating system saves the ZMM and opmask register state (XCR0 bits
// SSE|AVX|opmask|ZMM_Hi256|Hi16_ZMM). BLOCKTRI_NOAVX512 forces the scalar
// path for debugging and cross-machine bit comparisons.
func avx512Available() bool {
	if os.Getenv("BLOCKTRI_NOAVX512") != "" {
		return false
	}
	maxID, _, _, _ := cpuidex(0, 0)
	if maxID < 7 {
		return false
	}
	_, _, ecx1, _ := cpuidex(1, 0)
	const osxsave = 1 << 27
	const avx = 1 << 28
	if ecx1&osxsave == 0 || ecx1&avx == 0 {
		return false
	}
	xcr0, _ := xgetbv0()
	if xcr0&0xe6 != 0xe6 {
		return false
	}
	_, ebx7, _, _ := cpuidex(7, 0)
	const avx512f = 1 << 16
	return ebx7&avx512f != 0
}
