package mat

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// reconstructPA applies the recorded row interchanges of lu to a copy of a,
// returning P*A.
func reconstructPA(a *Matrix, lu *LU) *Matrix {
	pa := a.Clone()
	n := pa.Rows
	for k := 0; k < n; k++ {
		if p := lu.Piv[k]; p != k {
			for j := 0; j < n; j++ {
				pa.Data[k*pa.Stride+j], pa.Data[p*pa.Stride+j] =
					pa.Data[p*pa.Stride+j], pa.Data[k*pa.Stride+j]
			}
		}
	}
	return pa
}

// extractLandU unpacks the combined factors into explicit L (unit lower
// triangular) and U (upper triangular).
func extractLandU(lu *LU) (l, u *Matrix) {
	n := lu.N()
	l, u = Identity(n), New(n, n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			v := lu.factors.At(i, j)
			if j < i {
				l.Set(i, j, v)
			} else {
				u.Set(i, j, v)
			}
		}
	}
	return l, u
}

func TestLUReconstruction(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for _, n := range []int{1, 2, 3, 5, 8, 16, 33} {
		a := RandomDiagDominant(n, 1, rng)
		lu, err := Factor(a)
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		l, u := extractLandU(lu)
		luProd := New(n, n)
		Mul(luProd, l, u)
		pa := reconstructPA(a, lu)
		if !luProd.EqualApprox(pa, 1e-9*float64(n)) {
			t.Fatalf("n=%d: L*U != P*A", n)
		}
	}
}

func TestLUSolveResidual(t *testing.T) {
	rng := rand.New(rand.NewSource(37))
	for _, n := range []int{1, 4, 16, 50} {
		a := RandomDiagDominant(n, 1, rng)
		b := Random(n, 3, rng)
		x, err := Solve(a, b)
		if err != nil {
			t.Fatal(err)
		}
		res := New(n, 3)
		Mul(res, a, x)
		Sub(res, res, b)
		if r := NormFrob(res) / NormFrob(b); r > 1e-10 {
			t.Fatalf("n=%d: relative residual %v too large", n, r)
		}
	}
}

func TestLUSolveToAndInPlace(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	a := RandomDiagDominant(5, 1, rng)
	b := Random(5, 2, rng)
	lu, err := Factor(a)
	if err != nil {
		t.Fatal(err)
	}
	x1 := lu.Solve(b)
	x2 := New(5, 2)
	lu.SolveTo(x2, b)
	x3 := b.Clone()
	lu.SolveInPlace(x3)
	if !x1.Equal(x2) || !x1.Equal(x3) {
		t.Fatal("Solve/SolveTo/SolveInPlace disagree")
	}
	// b must be unchanged by Solve and SolveTo.
	if !b.EqualApprox(Random(5, 2, rand.New(rand.NewSource(41))), math.Inf(1)) {
		t.Fatal("unreachable") // shape guard only
	}
}

func TestFactorDoesNotModifyInput(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	a := RandomDiagDominant(4, 1, rng)
	orig := a.Clone()
	if _, err := Factor(a); err != nil {
		t.Fatal(err)
	}
	if !a.Equal(orig) {
		t.Fatal("Factor modified its input")
	}
}

func TestFactorInPlaceModifiesInput(t *testing.T) {
	rng := rand.New(rand.NewSource(44))
	a := RandomDiagDominant(4, 1, rng)
	orig := a.Clone()
	lu, err := FactorInPlace(a)
	if err != nil {
		t.Fatal(err)
	}
	if a.Equal(orig) {
		t.Fatal("FactorInPlace left input unchanged")
	}
	// It must still solve correctly.
	b := Random(4, 1, rand.New(rand.NewSource(45)))
	x := lu.Solve(b)
	res := New(4, 1)
	Mul(res, orig, x)
	Sub(res, res, b)
	if NormFrob(res) > 1e-10 {
		t.Fatal("FactorInPlace solve wrong")
	}
}

func TestSingularDetected(t *testing.T) {
	a := NewFromSlice(2, 2, []float64{1, 2, 2, 4})
	if _, err := Factor(a); err != ErrSingular {
		t.Fatalf("expected ErrSingular, got %v", err)
	}
	if _, err := Solve(a, New(2, 1)); err != ErrSingular {
		t.Fatalf("Solve: expected ErrSingular, got %v", err)
	}
	if _, err := Inverse(a); err != ErrSingular {
		t.Fatalf("Inverse: expected ErrSingular, got %v", err)
	}
	if c, err := Cond1(a); err == nil || !math.IsInf(c, 1) {
		t.Fatalf("Cond1 of singular: got %v, %v", c, err)
	}
}

func TestFactorNonSquare(t *testing.T) {
	if _, err := Factor(New(2, 3)); err != ErrShape {
		t.Fatalf("expected ErrShape, got %v", err)
	}
}

func TestPivotingNeeded(t *testing.T) {
	// Zero in the (0,0) position forces a pivot swap.
	a := NewFromSlice(2, 2, []float64{0, 1, 1, 0})
	lu, err := Factor(a)
	if err != nil {
		t.Fatal(err)
	}
	x := lu.Solve(NewFromSlice(2, 1, []float64{3, 7}))
	if math.Abs(x.At(0, 0)-7) > 1e-14 || math.Abs(x.At(1, 0)-3) > 1e-14 {
		t.Fatalf("permutation solve wrong: %v", x)
	}
	if lu.Det() != -1 {
		t.Fatalf("det of antidiagonal permutation = %v want -1", lu.Det())
	}
}

func TestInverseRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(47))
	for _, n := range []int{1, 3, 10, 25} {
		a := RandomDiagDominant(n, 1, rng)
		inv, err := Inverse(a)
		if err != nil {
			t.Fatal(err)
		}
		prod := New(n, n)
		Mul(prod, a, inv)
		if !prod.EqualApprox(Identity(n), 1e-9*float64(n)) {
			t.Fatalf("n=%d: A*A^-1 != I", n)
		}
	}
}

func TestDetKnownValues(t *testing.T) {
	a := NewFromSlice(2, 2, []float64{1, 2, 3, 4})
	lu, err := Factor(a)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(lu.Det()-(-2)) > 1e-12 {
		t.Fatalf("det = %v want -2", lu.Det())
	}
	id, _ := Factor(Identity(5))
	if id.Det() != 1 {
		t.Fatalf("det(I) = %v", id.Det())
	}
}

func TestDetMultiplicativeProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 1 + r.Intn(8)
		a := RandomDiagDominant(n, 1, r)
		b := RandomDiagDominant(n, 1, r)
		ab := New(n, n)
		Mul(ab, a, b)
		la, e1 := Factor(a)
		lb, e2 := Factor(b)
		lab, e3 := Factor(ab)
		if e1 != nil || e2 != nil || e3 != nil {
			return false
		}
		want := la.Det() * lb.Det()
		got := lab.Det()
		return math.Abs(got-want) <= 1e-8*(1+math.Abs(want))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestCond1Identity(t *testing.T) {
	c, err := Cond1(Identity(7))
	if err != nil || math.Abs(c-1) > 1e-12 {
		t.Fatalf("Cond1(I) = %v, %v", c, err)
	}
}

func TestSolveDimensionMismatchPanics(t *testing.T) {
	lu, err := Factor(Identity(3))
	if err != nil {
		t.Fatal(err)
	}
	defer expectPanic(t, "LU solve dim")
	lu.SolveInPlace(New(2, 1))
}

// Property: for random diagonally dominant systems, solve residual is tiny
// and solving twice with the same factorization is deterministic.
func TestLUSolveProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 1 + r.Intn(20)
		rhs := 1 + r.Intn(5)
		a := RandomDiagDominant(n, 1, r)
		b := Random(n, rhs, r)
		lu, err := Factor(a)
		if err != nil {
			return false
		}
		x1 := lu.Solve(b)
		x2 := lu.Solve(b)
		if !x1.Equal(x2) {
			return false
		}
		res := New(n, rhs)
		Mul(res, a, x1)
		Sub(res, res, b)
		return NormFrob(res) <= 1e-9*(1+NormFrob(b))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestLUEncodeDecodeRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(53))
	for _, n := range []int{1, 3, 8, 20} {
		a := RandomDiagDominant(n, 1, rng)
		lu, err := Factor(a)
		if err != nil {
			t.Fatal(err)
		}
		payload := lu.Encode()
		if len(payload) != EncodedLULen(n) {
			t.Fatalf("n=%d: payload length %d want %d", n, len(payload), EncodedLULen(n))
		}
		got, consumed := DecodeLU(payload)
		if consumed != len(payload) {
			t.Fatalf("consumed %d of %d", consumed, len(payload))
		}
		b := Random(n, 2, rng)
		if !lu.Solve(b).Equal(got.Solve(b)) {
			t.Fatal("decoded LU solves differently")
		}
		if lu.Det() != got.Det() {
			t.Fatal("decoded LU has different determinant (sign lost?)")
		}
	}
}

func TestDecodeLURejectsMalformed(t *testing.T) {
	defer expectPanic(t, "DecodeLU short")
	DecodeLU([]float64{5})
}

func TestDecodeLURejectsBadPivot(t *testing.T) {
	lu, err := Factor(Identity(2))
	if err != nil {
		t.Fatal(err)
	}
	p := lu.Encode()
	p[2] = 99 // pivot out of range
	defer expectPanic(t, "DecodeLU pivot")
	DecodeLU(p)
}
