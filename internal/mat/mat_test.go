package mat

import (
	"math"
	"math/rand"
	"strings"
	"testing"
)

func TestNewZeroed(t *testing.T) {
	m := New(3, 4)
	if m.Rows != 3 || m.Cols != 4 || m.Stride != 4 {
		t.Fatalf("bad shape: %+v", m)
	}
	for i := 0; i < 3; i++ {
		for j := 0; j < 4; j++ {
			if m.At(i, j) != 0 {
				t.Fatalf("element (%d,%d) not zero", i, j)
			}
		}
	}
}

func TestNewFromSlice(t *testing.T) {
	m := NewFromSlice(2, 3, []float64{1, 2, 3, 4, 5, 6})
	if m.At(0, 0) != 1 || m.At(0, 2) != 3 || m.At(1, 0) != 4 || m.At(1, 2) != 6 {
		t.Fatalf("row-major fill wrong: %v", m)
	}
}

func TestNewFromSlicePanicsOnWrongLen(t *testing.T) {
	defer expectPanic(t, "NewFromSlice")
	NewFromSlice(2, 2, []float64{1, 2, 3})
}

func TestNewPanicsOnNegative(t *testing.T) {
	defer expectPanic(t, "New")
	New(-1, 2)
}

func TestSetAtAddAt(t *testing.T) {
	m := New(2, 2)
	m.Set(1, 0, 5)
	m.AddAt(1, 0, 2.5)
	if got := m.At(1, 0); got != 7.5 {
		t.Fatalf("got %v want 7.5", got)
	}
}

func TestAtBounds(t *testing.T) {
	m := New(2, 2)
	defer expectPanic(t, "At out of range")
	_ = m.At(2, 0)
}

func TestIdentity(t *testing.T) {
	id := Identity(4)
	for i := 0; i < 4; i++ {
		for j := 0; j < 4; j++ {
			want := 0.0
			if i == j {
				want = 1
			}
			if id.At(i, j) != want {
				t.Fatalf("identity (%d,%d) = %v", i, j, id.At(i, j))
			}
		}
	}
}

func TestDiag(t *testing.T) {
	d := Diag([]float64{1, 2, 3})
	if d.Rows != 3 || d.At(1, 1) != 2 || d.At(0, 1) != 0 {
		t.Fatalf("diag wrong: %v", d)
	}
}

func TestViewSharesStorage(t *testing.T) {
	m := NewFromSlice(3, 3, []float64{1, 2, 3, 4, 5, 6, 7, 8, 9})
	v := m.View(1, 1, 2, 2)
	if v.At(0, 0) != 5 || v.At(1, 1) != 9 {
		t.Fatalf("view contents wrong: %v", v)
	}
	v.Set(0, 0, 50)
	if m.At(1, 1) != 50 {
		t.Fatal("write through view not visible in parent")
	}
	if !v.IsView() {
		t.Fatal("IsView false for a strided view")
	}
	if m.IsView() {
		t.Fatal("IsView true for a contiguous matrix")
	}
}

func TestViewBounds(t *testing.T) {
	m := New(3, 3)
	defer expectPanic(t, "View out of range")
	m.View(2, 2, 2, 2)
}

func TestEmptyView(t *testing.T) {
	m := New(3, 3)
	v := m.View(1, 1, 0, 2)
	if v.Rows != 0 || v.Cols != 2 {
		t.Fatalf("empty view shape wrong: %+v", v)
	}
}

func TestRowColViews(t *testing.T) {
	m := NewFromSlice(2, 3, []float64{1, 2, 3, 4, 5, 6})
	r := m.Row(1)
	if r.Rows != 1 || r.Cols != 3 || r.At(0, 2) != 6 {
		t.Fatalf("row view wrong: %v", r)
	}
	c := m.Col(2)
	if c.Rows != 2 || c.Cols != 1 || c.At(1, 0) != 6 {
		t.Fatalf("col view wrong: %v", c)
	}
}

func TestCloneIndependent(t *testing.T) {
	m := NewFromSlice(2, 2, []float64{1, 2, 3, 4})
	c := m.Clone()
	c.Set(0, 0, 99)
	if m.At(0, 0) != 1 {
		t.Fatal("clone shares storage with original")
	}
}

func TestCloneOfViewContiguous(t *testing.T) {
	m := NewFromSlice(3, 3, []float64{1, 2, 3, 4, 5, 6, 7, 8, 9})
	c := m.View(0, 1, 3, 2).Clone()
	if c.IsView() {
		t.Fatal("clone of view should be contiguous")
	}
	want := NewFromSlice(3, 2, []float64{2, 3, 5, 6, 8, 9})
	if !c.Equal(want) {
		t.Fatalf("clone of view wrong:\n%v", c)
	}
}

func TestCopyFromShapeMismatch(t *testing.T) {
	defer expectPanic(t, "CopyFrom")
	New(2, 2).CopyFrom(New(2, 3))
}

func TestZeroAndSetIdentityOnView(t *testing.T) {
	m := Random(4, 4, rand.New(rand.NewSource(1)))
	v := m.View(1, 1, 2, 2)
	v.SetIdentity()
	if v.At(0, 0) != 1 || v.At(0, 1) != 0 || v.At(1, 1) != 1 {
		t.Fatalf("SetIdentity on view wrong: %v", v)
	}
	// Elements outside the view must be untouched (non-zero with high
	// probability from Random; check a corner is not forcibly zeroed).
	if m.At(0, 0) == 0 && m.At(3, 3) == 0 {
		t.Fatal("SetIdentity on view leaked outside the view")
	}
}

func TestEqualAndApprox(t *testing.T) {
	a := NewFromSlice(2, 2, []float64{1, 2, 3, 4})
	b := NewFromSlice(2, 2, []float64{1, 2, 3, 4 + 1e-12})
	if a.Equal(b) {
		t.Fatal("Equal should be exact")
	}
	if !a.EqualApprox(b, 1e-9) {
		t.Fatal("EqualApprox should accept tiny difference")
	}
	if a.EqualApprox(New(2, 3), 1) {
		t.Fatal("EqualApprox must reject shape mismatch")
	}
	nan := NewFromSlice(1, 1, []float64{math.NaN()})
	if nan.EqualApprox(NewFromSlice(1, 1, []float64{0}), 1) {
		t.Fatal("EqualApprox must reject NaN")
	}
}

func TestStringContainsShape(t *testing.T) {
	s := New(2, 3).String()
	if !strings.HasPrefix(s, "2x3") {
		t.Fatalf("String missing shape header: %q", s)
	}
}

func TestRandomRange(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	m := Random(10, 10, rng)
	for _, v := range m.Data {
		if v < -1 || v >= 1 {
			t.Fatalf("Random out of [-1,1): %v", v)
		}
	}
}

func TestRandomDiagDominant(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 20; trial++ {
		n := 1 + rng.Intn(12)
		m := RandomDiagDominant(n, 0.5, rng)
		for i := 0; i < n; i++ {
			off := 0.0
			for j := 0; j < n; j++ {
				if j != i {
					off += math.Abs(m.At(i, j))
				}
			}
			if math.Abs(m.At(i, i)) < off+0.49 {
				t.Fatalf("row %d not diagonally dominant", i)
			}
		}
	}
}

func TestRandomSPDSymmetricPositive(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	m := RandomSPD(6, rng)
	for i := 0; i < 6; i++ {
		for j := 0; j < 6; j++ {
			if math.Abs(m.At(i, j)-m.At(j, i)) > 1e-12 {
				t.Fatalf("not symmetric at (%d,%d)", i, j)
			}
		}
		if m.At(i, i) <= 0 {
			t.Fatalf("diagonal %d not positive", i)
		}
	}
	// Positive definiteness: x^T M x > 0 for random x.
	for trial := 0; trial < 10; trial++ {
		x := Random(6, 1, rng)
		mx := New(6, 1)
		Mul(mx, m, x)
		if Dot(x, mx) <= 0 {
			t.Fatal("x^T M x <= 0 for SPD matrix")
		}
	}
}

func TestMaxAbs(t *testing.T) {
	m := NewFromSlice(2, 2, []float64{1, -7, 3, 2})
	if m.MaxAbs() != 7 {
		t.Fatalf("MaxAbs = %v", m.MaxAbs())
	}
	if New(0, 0).MaxAbs() != 0 {
		t.Fatal("MaxAbs of empty should be 0")
	}
}

func expectPanic(t *testing.T, what string) {
	t.Helper()
	if recover() == nil {
		t.Fatalf("%s: expected panic", what)
	}
}
