package mat

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// gemmBlock is the cache tile edge used by the small-size blocked kernel.
// 64 float64 values per row segment keeps three tiles (~96 KiB) within
// typical L2.
const gemmBlock = 64

// parallelThreshold is the minimum number of multiply-add operations
// (m*n*k) before GEMM fans work out across goroutines. Below it the
// goroutine overhead dominates any speedup.
const parallelThreshold = 1 << 18

// packThreshold is the minimum number of multiply-add operations before
// GEMM packs the operands into contiguous tiles for the register-blocked
// micro-kernel; the packed path additionally requires every operand
// dimension to reach packMinDim, because on skinny products the packing
// traffic costs more than the kernel saves and the plain tiled loop runs
// instead. The dispatch depends only on operand shape, so a given multiply
// always takes the same path and results stay deterministic.
const (
	packThreshold = 1 << 15
	packMinDim    = 32
)

// micro-kernel register block: each inner call computes an MR x NR tile of
// dst held entirely in scalar accumulators.
const (
	microMR = 4
	microNR = 4
)

// parallelOn controls whether large GEMM calls split row bands across
// goroutines. It is read by worker goroutines while benchmarks and the
// harness toggle it, hence atomic. It defaults to true; benchmarks that pin
// all parallelism in the communicator ranks disable it so that per-rank
// compute costs stay attributable to the rank that performed them.
var parallelOn atomic.Bool

func init() { parallelOn.Store(true) }

// SetParallel enables or disables the parallel row-band split for large
// GEMM calls. Safe to call concurrently with running multiplications: the
// split changes only how rows are scheduled, never the per-element
// reduction order, so results are identical either way.
func SetParallel(on bool) { parallelOn.Store(on) }

// ParallelEnabled reports whether large GEMM calls currently fan out across
// goroutines.
func ParallelEnabled() bool { return parallelOn.Load() }

// packBuf holds the packed-operand scratch of one GEMM call (or the gather
// buffer of one strided gemv). Buffers are recycled through a typed free
// list rather than sync.Pool so that checkouts in steady state perform no
// interface boxing and no allocation.
type packBuf struct {
	a, b []float64
}

var packPool struct {
	mu   sync.Mutex
	free []*packBuf
}

func getPackBuf() *packBuf {
	packPool.mu.Lock()
	n := len(packPool.free)
	if n == 0 {
		packPool.mu.Unlock()
		return new(packBuf)
	}
	pb := packPool.free[n-1]
	packPool.free = packPool.free[:n-1]
	packPool.mu.Unlock()
	return pb
}

func putPackBuf(pb *packBuf) {
	packPool.mu.Lock()
	packPool.free = append(packPool.free, pb)
	packPool.mu.Unlock()
}

// ensureFloats grows buf to length n, reusing its backing array when it is
// already large enough.
func ensureFloats(buf []float64, n int) []float64 {
	if cap(buf) < n {
		return make([]float64, n)
	}
	return buf[:n]
}

// GEMM computes dst = alpha*a*b + beta*dst, the general matrix-matrix
// product. dst must be a.Rows x b.Cols and must not alias a or b; a.Cols
// must equal b.Rows.
func GEMM(alpha float64, a, b *Matrix, beta float64, dst *Matrix) {
	if a.Cols != b.Rows || dst.Rows != a.Rows || dst.Cols != b.Cols {
		panic("mat: GEMM shape mismatch")
	}
	if beta == 0 {
		dst.Zero()
	} else if beta != 1 { //lint:ignore floateq beta==1 is the exact no-scale sentinel, per BLAS convention.
		Scale(dst, beta)
	}
	if alpha == 0 || a.Rows == 0 || a.Cols == 0 || b.Cols == 0 {
		return
	}
	if b.Cols == 1 {
		gemv(alpha, a, b, dst)
		return
	}
	ops := a.Rows * a.Cols * b.Cols
	if ops >= parallelThreshold && parallelOn.Load() {
		gemmParallel(alpha, a, b, dst)
		return
	}
	if ops >= packThreshold && min(min(a.Rows, a.Cols), b.Cols) >= packMinDim {
		pb := getPackBuf()
		pb.b = ensureFloats(pb.b, packedBLen(b))
		packB(b, pb.b)
		pb.a = ensureFloats(pb.a, packedALen(a, 0, a.Rows))
		packA(alpha, a, 0, a.Rows, pb.a)
		gemmPacked(a.Cols, pb.a, pb.b, dst, 0, a.Rows)
		putPackBuf(pb)
		return
	}
	gemmSerial(alpha, a, b, dst, 0, a.Rows)
}

// gemv accumulates alpha*a*x into the single-column dst: the solvers'
// right-hand-side paths are dominated by this shape, where the tiled
// kernel's slicing overhead would dwarf the two flops per element.
func gemv(alpha float64, a, b, dst *Matrix) {
	k := a.Cols
	x := b.Data
	var pb *packBuf
	if b.Stride != 1 {
		// Gather a strided column once so the inner loop stays unit-stride.
		// The buffer comes from the pack pool, so steady state allocates
		// nothing.
		pb = getPackBuf()
		pb.a = ensureFloats(pb.a, k)
		for i := 0; i < k; i++ {
			pb.a[i] = b.Data[i*b.Stride]
		}
		x = pb.a
	} else {
		x = x[:k]
	}
	for i := 0; i < a.Rows; i++ {
		arow := a.Data[i*a.Stride : i*a.Stride+k]
		sum := 0.0
		for j, av := range arow {
			sum += av * x[j]
		}
		dst.Data[i*dst.Stride] += alpha * sum
	}
	if pb != nil {
		putPackBuf(pb)
	}
}

// gemmSerial accumulates alpha*a*b into dst for rows [r0, r1) of a/dst
// using an i-k-j loop order with square tiling for cache locality. It is
// the small-size kernel, where packing would cost more than it saves.
func gemmSerial(alpha float64, a, b, dst *Matrix, r0, r1 int) {
	n, k := b.Cols, a.Cols
	for ii := r0; ii < r1; ii += gemmBlock {
		iMax := min(ii+gemmBlock, r1)
		for kk := 0; kk < k; kk += gemmBlock {
			kMax := min(kk+gemmBlock, k)
			for jj := 0; jj < n; jj += gemmBlock {
				jMax := min(jj+gemmBlock, n)
				for i := ii; i < iMax; i++ {
					arow := a.Data[i*a.Stride:]
					drow := dst.Data[i*dst.Stride+jj : i*dst.Stride+jMax]
					for kq := kk; kq < kMax; kq++ {
						av := alpha * arow[kq]
						if av == 0 {
							continue
						}
						brow := b.Data[kq*b.Stride+jj : kq*b.Stride+jMax]
						for j, bv := range brow {
							drow[j] += av * bv
						}
					}
				}
			}
		}
	}
}

// packedALen returns the packed size of rows [r0, r1) of a: full microMR
// row panels (zero padded), k-major within each panel.
func packedALen(a *Matrix, r0, r1 int) int {
	panels := (r1 - r0 + microMR - 1) / microMR
	return panels * microMR * a.Cols
}

// packedBLen returns the packed size of b: full microNR column panels
// (zero padded), k-major within each panel.
func packedBLen(b *Matrix) int {
	panels := (b.Cols + microNR - 1) / microNR
	return panels * microNR * b.Rows
}

// packA copies rows [r0, r1) of a into pA as microMR-row panels, k-major
// within each panel, with alpha folded into the values (matching the
// alpha*a[i][k] factor of the unpacked kernel, so reduction order and
// rounding are unchanged). Panel rows past r1 are zero.
func packA(alpha float64, a *Matrix, r0, r1 int, pA []float64) {
	kk := a.Cols
	idx := 0
	for ip := r0; ip < r1; ip += microMR {
		if r1-ip >= microMR {
			// Full panel: branch-free transposing gather of four rows.
			row0 := a.Data[(ip+0)*a.Stride:]
			row1 := a.Data[(ip+1)*a.Stride:]
			row2 := a.Data[(ip+2)*a.Stride:]
			row3 := a.Data[(ip+3)*a.Stride:]
			for k := 0; k < kk; k++ {
				dst := (*[microMR]float64)(pA[idx:])
				dst[0] = alpha * row0[k]
				dst[1] = alpha * row1[k]
				dst[2] = alpha * row2[k]
				dst[3] = alpha * row3[k]
				idx += microMR
			}
			continue
		}
		rows := r1 - ip
		for k := 0; k < kk; k++ {
			for i := 0; i < microMR; i++ {
				v := 0.0
				if i < rows {
					v = alpha * a.Data[(ip+i)*a.Stride+k]
				}
				pA[idx] = v
				idx++
			}
		}
	}
}

// packB copies b into pB as microNR-column panels, k-major within each
// panel. Panel columns past b.Cols are zero.
func packB(b *Matrix, pB []float64) {
	kk, n := b.Rows, b.Cols
	idx := 0
	for jp := 0; jp < n; jp += microNR {
		if n-jp >= microNR {
			// Full panel: branch-free contiguous copies.
			for k := 0; k < kk; k++ {
				src := (*[microNR]float64)(b.Data[k*b.Stride+jp:])
				dst := (*[microNR]float64)(pB[idx:])
				*dst = *src
				idx += microNR
			}
			continue
		}
		cols := n - jp
		for k := 0; k < kk; k++ {
			brow := b.Data[k*b.Stride+jp : k*b.Stride+jp+cols]
			for j := 0; j < microNR; j++ {
				v := 0.0
				if j < cols {
					v = brow[j]
				}
				pB[idx] = v
				idx++
			}
		}
	}
}

// gemmPacked runs the register-blocked micro-kernel over the packed panels
// of a (rows [r0, r1), packed in pA) and b (packed in pB), accumulating
// into dst. Each micro-tile folds its k-ascending partial sums in a single
// scalar register per element and adds the total to dst once, so the
// reduction order depends only on the operand shapes — never on the
// parallel split — and results are bit-for-bit reproducible run to run.
func gemmPacked(kk int, pA, pB []float64, dst *Matrix, r0, r1 int) {
	n := dst.Cols
	aPanel := microMR * kk
	bPanel := microNR * kk
	for ip, pi := r0, 0; ip < r1; ip, pi = ip+microMR, pi+1 {
		mr := min(microMR, r1-ip)
		pa := pA[pi*aPanel : (pi+1)*aPanel]
		for jp, pj := 0, 0; jp < n; jp, pj = jp+microNR, pj+1 {
			nr := min(microNR, n-jp)
			pb := pB[pj*bPanel : (pj+1)*bPanel]
			microKernel(kk, pa, pb, dst, ip, jp, mr, nr)
		}
	}
}

// microKernel computes one mr x nr tile (mr <= microMR, nr <= microNR) of
// dst += pa*pb, where pa and pb are the k-major packed panels. The sixteen
// accumulators live in registers across the whole k loop.
func microKernel(kk int, pa, pb []float64, dst *Matrix, i0, j0, mr, nr int) {
	var (
		c00, c01, c02, c03 float64
		c10, c11, c12, c13 float64
		c20, c21, c22, c23 float64
		c30, c31, c32, c33 float64
	)
	for k := 0; k < kk; k++ {
		ak := (*[microMR]float64)(pa[k*microMR:])
		bk := (*[microNR]float64)(pb[k*microNR:])
		a0, a1, a2, a3 := ak[0], ak[1], ak[2], ak[3]
		b0, b1, b2, b3 := bk[0], bk[1], bk[2], bk[3]
		c00 += a0 * b0
		c01 += a0 * b1
		c02 += a0 * b2
		c03 += a0 * b3
		c10 += a1 * b0
		c11 += a1 * b1
		c12 += a1 * b2
		c13 += a1 * b3
		c20 += a2 * b0
		c21 += a2 * b1
		c22 += a2 * b2
		c23 += a2 * b3
		c30 += a3 * b0
		c31 += a3 * b1
		c32 += a3 * b2
		c33 += a3 * b3
	}
	acc := [microMR][microNR]float64{
		{c00, c01, c02, c03},
		{c10, c11, c12, c13},
		{c20, c21, c22, c23},
		{c30, c31, c32, c33},
	}
	for i := 0; i < mr; i++ {
		drow := dst.Data[(i0+i)*dst.Stride+j0 : (i0+i)*dst.Stride+j0+nr]
		ai := &acc[i]
		for j := 0; j < nr; j++ {
			drow[j] += ai[j]
		}
	}
}

// gemmParallel splits the rows of dst into bands, one goroutine per band.
// The packed B panels are shared read-only across workers; each worker
// packs its own A band. Per-row reduction order matches the serial packed
// path, so enabling parallelism never changes results.
func gemmParallel(alpha float64, a, b, dst *Matrix) {
	workers := runtime.GOMAXPROCS(0)
	if workers > a.Rows {
		workers = a.Rows
	}
	// Band boundaries snap to the micro-panel height so no two workers
	// write the same dst row.
	band := (a.Rows + workers - 1) / workers
	band = (band + microMR - 1) / microMR * microMR
	shared := getPackBuf()
	shared.b = ensureFloats(shared.b, packedBLen(b))
	packB(b, shared.b)
	var wg sync.WaitGroup
	for r0 := 0; r0 < a.Rows; r0 += band {
		r1 := min(r0+band, a.Rows)
		wg.Add(1)
		go func(r0, r1 int) {
			defer wg.Done()
			pb := getPackBuf()
			pb.a = ensureFloats(pb.a, packedALen(a, r0, r1))
			packA(alpha, a, r0, r1, pb.a)
			gemmPacked(a.Cols, pb.a, shared.b, dst, r0, r1)
			putPackBuf(pb)
		}(r0, r1)
	}
	wg.Wait()
	putPackBuf(shared)
}

// Mul computes dst = a*b. dst must not alias a or b.
func Mul(dst, a, b *Matrix) { GEMM(1, a, b, 0, dst) }

// MulAdd computes dst += a*b. dst must not alias a or b.
func MulAdd(dst, a, b *Matrix) { GEMM(1, a, b, 1, dst) }

// MulSub computes dst -= a*b. dst must not alias a or b.
func MulSub(dst, a, b *Matrix) { GEMM(-1, a, b, 1, dst) }

// MulTrans computes dst = op(a)*op(b) where op(x) is x or x^T according to
// the transA/transB flags. dst must not alias a or b. It is implemented by
// explicit transposition into scratch, which is acceptable at the block
// sizes this package targets (M <= a few hundred).
func MulTrans(dst, a, b *Matrix, transA, transB bool) {
	at, bt := a, b
	if transA {
		at = New(a.Cols, a.Rows)
		Transpose(at, a)
	}
	if transB {
		bt = New(b.Cols, b.Rows)
		Transpose(bt, b)
	}
	Mul(dst, at, bt)
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
