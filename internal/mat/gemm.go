package mat

import (
	"runtime"
	"sync"
)

// gemmBlock is the cache tile edge used by the blocked kernel. 64 float64
// values per row segment keeps three tiles (~96 KiB) within typical L2.
const gemmBlock = 64

// parallelThreshold is the minimum number of multiply-add operations
// (m*n*k) before GEMM fans work out across goroutines. Below it the
// goroutine overhead dominates any speedup.
const parallelThreshold = 1 << 18

// Parallel controls whether large GEMM calls split row bands across
// goroutines. It defaults to true; benchmarks that pin all parallelism in
// the communicator ranks set it to false so that per-rank compute costs
// stay attributable to the rank that performed them.
var Parallel = true

// GEMM computes dst = alpha*a*b + beta*dst, the general matrix-matrix
// product. dst must be a.Rows x b.Cols and must not alias a or b; a.Cols
// must equal b.Rows.
func GEMM(alpha float64, a, b *Matrix, beta float64, dst *Matrix) {
	if a.Cols != b.Rows || dst.Rows != a.Rows || dst.Cols != b.Cols {
		panic("mat: GEMM shape mismatch")
	}
	if beta == 0 {
		dst.Zero()
	} else if beta != 1 { //lint:ignore floateq beta==1 is the exact no-scale sentinel, per BLAS convention.
		Scale(dst, beta)
	}
	if alpha == 0 || a.Rows == 0 || a.Cols == 0 || b.Cols == 0 {
		return
	}
	if b.Cols == 1 {
		gemv(alpha, a, b, dst)
		return
	}
	if Parallel && a.Rows*a.Cols*b.Cols >= parallelThreshold {
		gemmParallel(alpha, a, b, dst)
		return
	}
	gemmSerial(alpha, a, b, dst, 0, a.Rows)
}

// gemv accumulates alpha*a*x into the single-column dst: the solvers'
// right-hand-side paths are dominated by this shape, where the tiled
// kernel's slicing overhead would dwarf the two flops per element.
func gemv(alpha float64, a, b, dst *Matrix) {
	k := a.Cols
	x := b.Data
	if b.Stride != 1 {
		// Gather a strided column once so the inner loop stays unit-stride.
		buf := make([]float64, k)
		for i := 0; i < k; i++ {
			buf[i] = b.Data[i*b.Stride]
		}
		x = buf
	} else {
		x = x[:k]
	}
	for i := 0; i < a.Rows; i++ {
		arow := a.Data[i*a.Stride : i*a.Stride+k]
		sum := 0.0
		for j, av := range arow {
			sum += av * x[j]
		}
		dst.Data[i*dst.Stride] += alpha * sum
	}
}

// gemmSerial accumulates alpha*a*b into dst for rows [r0, r1) of a/dst
// using an i-k-j loop order with square tiling for cache locality.
func gemmSerial(alpha float64, a, b, dst *Matrix, r0, r1 int) {
	n, k := b.Cols, a.Cols
	for ii := r0; ii < r1; ii += gemmBlock {
		iMax := min(ii+gemmBlock, r1)
		for kk := 0; kk < k; kk += gemmBlock {
			kMax := min(kk+gemmBlock, k)
			for jj := 0; jj < n; jj += gemmBlock {
				jMax := min(jj+gemmBlock, n)
				for i := ii; i < iMax; i++ {
					arow := a.Data[i*a.Stride:]
					drow := dst.Data[i*dst.Stride+jj : i*dst.Stride+jMax]
					for kq := kk; kq < kMax; kq++ {
						av := alpha * arow[kq]
						if av == 0 {
							continue
						}
						brow := b.Data[kq*b.Stride+jj : kq*b.Stride+jMax]
						for j, bv := range brow {
							drow[j] += av * bv
						}
					}
				}
			}
		}
	}
}

// gemmParallel splits the rows of dst into bands, one goroutine per band.
func gemmParallel(alpha float64, a, b, dst *Matrix) {
	workers := runtime.GOMAXPROCS(0)
	if workers > a.Rows {
		workers = a.Rows
	}
	band := (a.Rows + workers - 1) / workers
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		r0 := w * band
		r1 := min(r0+band, a.Rows)
		if r0 >= r1 {
			break
		}
		wg.Add(1)
		go func(r0, r1 int) {
			defer wg.Done()
			gemmSerial(alpha, a, b, dst, r0, r1)
		}(r0, r1)
	}
	wg.Wait()
}

// Mul computes dst = a*b. dst must not alias a or b.
func Mul(dst, a, b *Matrix) { GEMM(1, a, b, 0, dst) }

// MulAdd computes dst += a*b. dst must not alias a or b.
func MulAdd(dst, a, b *Matrix) { GEMM(1, a, b, 1, dst) }

// MulSub computes dst -= a*b. dst must not alias a or b.
func MulSub(dst, a, b *Matrix) { GEMM(-1, a, b, 1, dst) }

// MulTrans computes dst = op(a)*op(b) where op(x) is x or x^T according to
// the transA/transB flags. dst must not alias a or b. It is implemented by
// explicit transposition into scratch, which is acceptable at the block
// sizes this package targets (M <= a few hundred).
func MulTrans(dst, a, b *Matrix, transA, transB bool) {
	at, bt := a, b
	if transA {
		at = New(a.Cols, a.Rows)
		Transpose(at, a)
	}
	if transB {
		bt = New(b.Cols, b.Rows)
		Transpose(bt, b)
	}
	Mul(dst, at, bt)
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
