package mat

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// gemmBlock is the cache tile edge used by the small-size blocked kernel.
// 64 float64 values per row segment keeps three tiles (~96 KiB) within
// typical L2.
const gemmBlock = 64

// parallelThreshold is the minimum number of multiply-add operations
// (m*n*k) before GEMM fans work out across goroutines. Below it the
// goroutine overhead dominates any speedup.
const parallelThreshold = 1 << 18

// packThreshold is the minimum number of multiply-add operations before
// GEMM packs the operands into contiguous tiles for the register-blocked
// micro-kernel. With the scalar 4x4 kernel the packed path additionally
// requires every operand dimension to reach packMinDim, because on skinny
// products the packing traffic costs more than the kernel saves. The
// AVX-512 8x8 kernel amortizes packing much earlier and on much skinnier
// panels — exactly the M x R right-hand-side panels the solve phase runs —
// so its threshold (packThreshold8) is lower and only requires k and n to
// cover one vector register. The dispatch depends only on operand shape
// and the process-constant panel width, so a given multiply always takes
// the same path and results stay deterministic.
const (
	packThreshold  = 1 << 15
	packThreshold8 = 1 << 13
	packMinDim     = 32
)

// micro-kernel register blocks. panelW is the packing width: A panels are
// panelW rows tall, B panels panelW columns wide. It is microMR (the
// scalar 4x4 kernel) unless AVX-512 is available, in which case init
// raises it to avxPanelW and full tiles run the 8x8 assembly kernel with
// the scalar kernel covering edge quadrants. panelW is fixed before main
// and never changes afterwards, so every pack and every kernel in a
// process agree on the layout.
const (
	microMR   = 4
	microNR   = 4
	avxPanelW = 8
)

var panelW = microMR

// parallelOn controls whether large GEMM calls split row bands across
// goroutines. It is read by worker goroutines while benchmarks and the
// harness toggle it, hence atomic. It defaults to true; benchmarks that pin
// all parallelism in the communicator ranks disable it so that per-rank
// compute costs stay attributable to the rank that performed them.
var parallelOn atomic.Bool

// vecAxpy enables the 8-wide FMA axpy kernel inside the triangular
// solves; set alongside the 8-wide GEMM panel width so the whole dense
// substrate switches vector ISA together.
var vecAxpy bool

func init() {
	parallelOn.Store(true)
	if avx512Available() {
		panelW = avxPanelW
		vecAxpy = true
	}
}

// SetParallel enables or disables the parallel row-band split for large
// GEMM calls. Safe to call concurrently with running multiplications: the
// split changes only how rows are scheduled, never the per-element
// reduction order, so results are identical either way.
func SetParallel(on bool) { parallelOn.Store(on) }

// ParallelEnabled reports whether large GEMM calls currently fan out across
// goroutines.
func ParallelEnabled() bool { return parallelOn.Load() }

// panelOK reports whether an m x k by k x n product takes the packed
// register-blocked path. Single-column products always go through gemv.
//
//perf:inline
func panelOK(m, k, n int) bool {
	if n < 2 {
		return false
	}
	ops := m * k * n
	if panelW == avxPanelW {
		return ops >= packThreshold8 && k >= avxPanelW && n >= avxPanelW
	}
	return ops >= packThreshold && min(min(m, k), n) >= packMinDim
}

// PanelPacked reports whether an m x k by k x n product runs on the packed
// register-blocked kernel (8x8 tiles when AVX-512 is available, 4x4
// otherwise). Callers that maintain prepacked operands use it to decide
// whether a shape is worth packing at all: MulAddPacked falls back to
// plain GEMM exactly when this returns false, so gating a prepack on
// PanelPacked keeps the packed and unpacked paths bit-identical.
//
//perf:inline
func PanelPacked(m, k, n int) bool { return panelOK(m, k, n) }

// packBuf holds the packed-operand scratch of one GEMM call (or the gather
// buffer of one strided gemv). Buffers are recycled through a typed free
// list rather than sync.Pool so that checkouts in steady state perform no
// interface boxing and no allocation.
type packBuf struct {
	a, b []float64
}

var packPool struct {
	mu   sync.Mutex
	free []*packBuf
}

// The pool-growth allocation below is amortized: it happens only until the
// free list warms up, never steady-state.
//
//perf:coldpath
func getPackBuf() *packBuf {
	packPool.mu.Lock()
	n := len(packPool.free)
	if n == 0 {
		packPool.mu.Unlock()
		return new(packBuf)
	}
	pb := packPool.free[n-1]
	packPool.free = packPool.free[:n-1]
	packPool.mu.Unlock()
	return pb
}

func putPackBuf(pb *packBuf) {
	packPool.mu.Lock()
	packPool.free = append(packPool.free, pb)
	packPool.mu.Unlock()
}

// ensureFloats grows buf to length n, reusing its backing array when it is
// already large enough.
// Growth is the sanctioned amortized allocation of the pack-buffer pool;
// steady-state calls return buf[:n] without touching the allocator.
//
//perf:coldpath
func ensureFloats(buf []float64, n int) []float64 {
	if cap(buf) < n {
		return make([]float64, n)
	}
	return buf[:n]
}

// GEMM computes dst = alpha*a*b + beta*dst, the general matrix-matrix
// product. dst must be a.Rows x b.Cols and must not alias a or b; a.Cols
// must equal b.Rows.
//
//perf:coldpath
func GEMM(alpha float64, a, b *Matrix, beta float64, dst *Matrix) {
	if a.Cols != b.Rows || dst.Rows != a.Rows || dst.Cols != b.Cols {
		panic("mat: GEMM shape mismatch")
	}
	if beta == 0 {
		dst.Zero()
	} else if beta != 1 { //lint:ignore floateq beta==1 is the exact no-scale sentinel, per BLAS convention.
		Scale(dst, beta)
	}
	if alpha == 0 || a.Rows == 0 || a.Cols == 0 || b.Cols == 0 {
		return
	}
	if b.Cols == 1 {
		gemv(alpha, a, b, dst)
		return
	}
	ops := a.Rows * a.Cols * b.Cols
	if ops >= parallelThreshold && parallelOn.Load() {
		gemmParallel(alpha, a, b, dst)
		return
	}
	if panelOK(a.Rows, a.Cols, b.Cols) {
		pb := getPackBuf()
		pb.b = ensureFloats(pb.b, packedBLen(b))
		packB(b, pb.b)
		pb.a = ensureFloats(pb.a, packedALen(a, 0, a.Rows))
		packA(alpha, a, 0, a.Rows, pb.a)
		gemmPacked(a.Cols, pb.a, pb.b, dst, 0, a.Rows)
		putPackBuf(pb)
		return
	}
	gemmSerial(alpha, a, b, dst, 0, a.Rows)
}

// gemv accumulates alpha*a*x into the single-column dst: the solvers'
// right-hand-side paths are dominated by this shape, where the tiled
// kernel's slicing overhead would dwarf the two flops per element.
func gemv(alpha float64, a, b, dst *Matrix) {
	k := a.Cols
	x := b.Data
	var pb *packBuf
	if b.Stride != 1 {
		// Gather a strided column once so the inner loop stays unit-stride.
		// The buffer comes from the pack pool, so steady state allocates
		// nothing.
		pb = getPackBuf()
		pb.a = ensureFloats(pb.a, k)
		for i := 0; i < k; i++ {
			pb.a[i] = b.Data[i*b.Stride]
		}
		x = pb.a
	} else {
		x = x[:k]
	}
	for i := 0; i < a.Rows; i++ {
		arow := a.Data[i*a.Stride : i*a.Stride+k]
		sum := 0.0
		for j, av := range arow {
			sum += av * x[j]
		}
		dst.Data[i*dst.Stride] += alpha * sum
	}
	if pb != nil {
		putPackBuf(pb)
	}
}

// gemmSerial accumulates alpha*a*b into dst for rows [r0, r1) of a/dst
// using an i-k-j loop order with square tiling for cache locality. It is
// the small-size kernel, where packing would cost more than it saves.
func gemmSerial(alpha float64, a, b, dst *Matrix, r0, r1 int) {
	n, k := b.Cols, a.Cols
	for ii := r0; ii < r1; ii += gemmBlock {
		iMax := min(ii+gemmBlock, r1)
		for kk := 0; kk < k; kk += gemmBlock {
			kMax := min(kk+gemmBlock, k)
			for jj := 0; jj < n; jj += gemmBlock {
				jMax := min(jj+gemmBlock, n)
				for i := ii; i < iMax; i++ {
					arow := a.Data[i*a.Stride:]
					drow := dst.Data[i*dst.Stride+jj : i*dst.Stride+jMax]
					for kq := kk; kq < kMax; kq++ {
						av := alpha * arow[kq]
						if av == 0 {
							continue
						}
						brow := b.Data[kq*b.Stride+jj : kq*b.Stride+jMax]
						for j, bv := range brow {
							drow[j] += av * bv
						}
					}
				}
			}
		}
	}
}

// packedALen returns the packed size of rows [r0, r1) of a: full panelW
// row panels (zero padded), k-major within each panel.
//
//perf:inline
func packedALen(a *Matrix, r0, r1 int) int {
	w := panelW
	panels := (r1 - r0 + w - 1) / w
	return panels * w * a.Cols
}

// packedBLen returns the packed size of b: full panelW column panels
// (zero padded), k-major within each panel.
//
//perf:inline
func packedBLen(b *Matrix) int {
	w := panelW
	panels := (b.Cols + w - 1) / w
	return panels * w * b.Rows
}

// packA copies rows [r0, r1) of a into pA as panelW-row panels, k-major
// within each panel, with alpha folded into the values (matching the
// alpha*a[i][k] factor of the unpacked kernel, so reduction order and
// rounding are unchanged). Panel rows past r1 are zero. Each source row is
// read sequentially and scattered into its k-major slot, so the expensive
// direction of the transpose stays on the small packed buffer.
func packA(alpha float64, a *Matrix, r0, r1 int, pA []float64) {
	w := panelW
	kk := a.Cols
	idx := 0
	for ip := r0; ip < r1; ip += w {
		rows := min(w, r1-ip)
		for i := 0; i < rows; i++ {
			row := a.Data[(ip+i)*a.Stride : (ip+i)*a.Stride+kk]
			//lint:ignore perfbce the k-major scatter index idx+k*w+i is beyond the range prover; the panel is sized packedALen up front
			//perf:hotloop
			for k, v := range row {
				pA[idx+k*w+i] = alpha * v
			}
		}
		for i := rows; i < w; i++ {
			for k := 0; k < kk; k++ {
				pA[idx+k*w+i] = 0
			}
		}
		idx += w * kk
	}
}

// packB copies b into pB as panelW-column panels, k-major within each
// panel. Panel columns past b.Cols are zero. Full panels move through
// fixed-size array stores: a generic copy of 8 floats spends more time in
// call dispatch than in the move itself, and packing is the dominant
// per-call overhead of MulAddPacked on the solve phase's skinny panels.
func packB(b *Matrix, pB []float64) {
	w := panelW
	kk, n := b.Rows, b.Cols
	idx := 0
	for jp := 0; jp < n; jp += w {
		cols := min(w, n-jp)
		switch {
		case cols == 8 && w == 8:
			if kk > 0 {
				packColsAsm(kk, &b.Data[jp], b.Stride, &pB[idx])
			}
		case cols == 4 && w == 4:
			for k := 0; k < kk; k++ {
				*(*[4]float64)(pB[idx+k*4:]) = *(*[4]float64)(b.Data[k*b.Stride+jp:])
			}
		default:
			for k := 0; k < kk; k++ {
				brow := b.Data[k*b.Stride+jp : k*b.Stride+jp+cols]
				off := idx + k*w
				copy(pB[off:off+cols], brow)
				for j := cols; j < w; j++ {
					pB[off+j] = 0
				}
			}
		}
		idx += w * kk
	}
}

// gemmPacked runs the register-blocked kernels over the packed panels of a
// (rows [r0, r1), packed in pA starting at r0's panel) and b (packed in
// pB), accumulating into dst. Full panelW x panelW tiles run the AVX-512
// assembly kernel when panelW is avxPanelW; edge tiles and the portable
// configuration run the scalar 4x4 micro-kernel over panel quadrants. Each
// tile folds its k-ascending partial sums in registers and adds the total
// to dst once, so the reduction order depends only on the operand shapes —
// never on the parallel split — and results are bit-for-bit reproducible
// run to run.
func gemmPacked(kk int, pA, pB []float64, dst *Matrix, r0, r1 int) {
	n := dst.Cols
	w := panelW
	panel := w * kk
	for ip, pi := r0, 0; ip < r1; ip, pi = ip+w, pi+1 {
		mr := min(w, r1-ip)
		pa := pA[pi*panel : (pi+1)*panel]
		for jp, pj := 0, 0; jp < n; jp, pj = jp+w, pj+1 {
			nr := min(w, n-jp)
			pb := pB[pj*panel : (pj+1)*panel]
			if w == avxPanelW {
				if mr == avxPanelW && nr == avxPanelW {
					kernel8x8Asm(kk, &pa[0], &pb[0], &dst.Data[ip*dst.Stride+jp], dst.Stride)
					continue
				}
				for io := 0; io < mr; io += microMR {
					mq := min(microMR, mr-io)
					for jo := 0; jo < nr; jo += microNR {
						nq := min(microNR, nr-jo)
						microKernel(kk, pa[io:], pb[jo:], w, dst, ip+io, jp+jo, mq, nq)
					}
				}
				continue
			}
			microKernel(kk, pa, pb, w, dst, ip, jp, mr, nr)
		}
	}
}

// microKernel computes one mr x nr tile (mr <= microMR, nr <= microNR) of
// dst += pa*pb, where pa and pb are k-major packed panels of width w
// (offset by the caller to the tile's quadrant when w exceeds microMR).
// The sixteen accumulators live in registers across the whole k loop.
func microKernel(kk int, pa, pb []float64, w int, dst *Matrix, i0, j0, mr, nr int) {
	var (
		c00, c01, c02, c03 float64
		c10, c11, c12, c13 float64
		c20, c21, c22, c23 float64
		c30, c31, c32, c33 float64
	)
	//lint:ignore perfbce the two slice-to-array-pointer checks stand in for eight per-element checks; the packed panel layout guarantees k*w+4 elements
	//perf:hotloop
	for k := 0; k < kk; k++ {
		ak := (*[microMR]float64)(pa[k*w:])
		bk := (*[microNR]float64)(pb[k*w:])
		a0, a1, a2, a3 := ak[0], ak[1], ak[2], ak[3]
		b0, b1, b2, b3 := bk[0], bk[1], bk[2], bk[3]
		c00 += a0 * b0
		c01 += a0 * b1
		c02 += a0 * b2
		c03 += a0 * b3
		c10 += a1 * b0
		c11 += a1 * b1
		c12 += a1 * b2
		c13 += a1 * b3
		c20 += a2 * b0
		c21 += a2 * b1
		c22 += a2 * b2
		c23 += a2 * b3
		c30 += a3 * b0
		c31 += a3 * b1
		c32 += a3 * b2
		c33 += a3 * b3
	}
	acc := [microMR][microNR]float64{
		{c00, c01, c02, c03},
		{c10, c11, c12, c13},
		{c20, c21, c22, c23},
		{c30, c31, c32, c33},
	}
	for i := 0; i < mr; i++ {
		drow := dst.Data[(i0+i)*dst.Stride+j0 : (i0+i)*dst.Stride+j0+nr]
		ai := &acc[i]
		for j := 0; j < nr; j++ {
			drow[j] += ai[j]
		}
	}
}

// gemmParallel splits the rows of dst into bands, one goroutine per band.
// The packed B panels are shared read-only across workers; each worker
// packs its own A band. Per-row reduction order matches the serial packed
// path, so enabling parallelism never changes results.
//
//perf:coldpath
func gemmParallel(alpha float64, a, b, dst *Matrix) {
	workers := runtime.GOMAXPROCS(0)
	if workers > a.Rows {
		workers = a.Rows
	}
	// Band boundaries snap to the packing width so no two workers write
	// the same dst row and every band starts on a panel boundary.
	band := (a.Rows + workers - 1) / workers
	band = (band + panelW - 1) / panelW * panelW
	if band >= a.Rows {
		// One band: skip the goroutine and its bookkeeping allocations —
		// a single-P runtime must keep the 0 allocs/op solve contract.
		if panelOK(a.Rows, a.Cols, b.Cols) {
			pb := getPackBuf()
			pb.b = ensureFloats(pb.b, packedBLen(b))
			packB(b, pb.b)
			pb.a = ensureFloats(pb.a, packedALen(a, 0, a.Rows))
			packA(alpha, a, 0, a.Rows, pb.a)
			gemmPacked(a.Cols, pb.a, pb.b, dst, 0, a.Rows)
			putPackBuf(pb)
		} else {
			gemmSerial(alpha, a, b, dst, 0, a.Rows)
		}
		return
	}
	shared := getPackBuf()
	shared.b = ensureFloats(shared.b, packedBLen(b))
	packB(b, shared.b)
	var wg sync.WaitGroup
	for r0 := 0; r0 < a.Rows; r0 += band {
		r1 := min(r0+band, a.Rows)
		wg.Add(1)
		go func(r0, r1 int) {
			defer wg.Done()
			pb := getPackBuf()
			pb.a = ensureFloats(pb.a, packedALen(a, r0, r1))
			packA(alpha, a, r0, r1, pb.a)
			gemmPacked(a.Cols, pb.a, shared.b, dst, r0, r1)
			putPackBuf(pb)
		}(r0, r1)
	}
	wg.Wait()
	putPackBuf(shared)
}

// PackedA is a reusable packed image of alpha*A: panelW-row panels,
// k-major, alpha folded in, laid out exactly as one GEMM call would pack A
// on the fly. Solvers build one at factor time for each transfer operand
// that the solve phase multiplies repeatedly, so the per-solve cost drops
// to packing the right-hand-side panel alone. The zero value is not valid;
// callers gate on Valid.
type PackedA struct {
	rows, k, w int
	alpha      float64
	data       []float64
	// src is a heap copy of the source header, allocated once at pack time
	// so the below-threshold GEMM fallback never forces the PackedA value
	// itself to escape — MulAddPacked stays allocation-free per call.
	src *Matrix
}

// Valid reports whether p holds a pack (the zero PackedA does not).
func (p PackedA) Valid() bool { return p.w != 0 }

// Rows returns the row count of the packed operand.
func (p PackedA) Rows() int { return p.rows }

// K returns the inner (column) dimension of the packed operand.
func (p PackedA) K() int { return p.k }

// PackALen returns the buffer length PackAInto requires for an m x k
// operand under the current panel width.
//
//perf:inline
func PackALen(m, k int) int {
	w := panelW
	return (m + w - 1) / w * w * k
}

// PackBLen returns the scratch length MulAddPacked needs to pack a k x n
// right-hand operand under the current panel width.
//
//perf:inline
func PackBLen(k, n int) int {
	w := panelW
	return (n + w - 1) / w * w * k
}

// PackAInto packs alpha*a into buf (length at least PackALen(a.Rows,
// a.Cols)) and returns the PackedA describing it. The pack records a copy
// of a's header: MulAddPacked falls back to plain GEMM through it on
// shapes below the packed threshold, so a's backing data must outlive the
// pack even though the header itself may be recycled.
//
//perf:hotpath
func PackAInto(buf []float64, alpha float64, a *Matrix) PackedA {
	need := PackALen(a.Rows, a.Cols)
	if len(buf) < need {
		panic("mat: PackAInto buffer too small")
	}
	packA(alpha, a, 0, a.Rows, buf[:need])
	//lint:ignore perfescape the header copy is the documented one-time pack cost; MulAddPacked reads it without re-escaping
	src := *a
	return PackedA{rows: a.Rows, k: a.Cols, w: panelW, alpha: alpha, data: buf[:need], src: &src}
}

// NewPackedA allocates a fresh buffer and packs alpha*a into it. Factor
// phases use it; solve phases must pre-size workspace and use PackAInto.
func NewPackedA(alpha float64, a *Matrix) PackedA {
	return PackAInto(make([]float64, PackALen(a.Rows, a.Cols)), alpha, a)
}

// MulAddPacked computes dst += alpha*A*b where alpha*A was prepacked into
// pa. b is packed into bScratch (length at least PackBLen(b.Rows, b.Cols);
// pass nil to draw from the internal pool) and the product runs on the
// register-blocked kernels, splitting row bands across goroutines for
// large shapes when parallelism is enabled. Shapes below the packed
// threshold fall back to plain GEMM on the recorded source operand, so the
// result is bit-identical to GEMM(alpha, a, b, 1, dst) for every shape.
// dst must be pa.Rows() x b.Cols and must not alias b.
//
//perf:hotpath
func MulAddPacked(dst *Matrix, pa PackedA, b *Matrix, bScratch []float64) {
	if !pa.Valid() {
		panic("mat: MulAddPacked on zero PackedA")
	}
	if pa.k != b.Rows || dst.Rows != pa.rows || dst.Cols != b.Cols {
		panic("mat: MulAddPacked shape mismatch")
	}
	if pa.w != panelW {
		panic("mat: MulAddPacked panel width mismatch")
	}
	if !panelOK(pa.rows, pa.k, b.Cols) {
		GEMM(pa.alpha, pa.src, b, 1, dst)
		return
	}
	need := PackBLen(b.Rows, b.Cols)
	buf := bScratch
	var pbuf *packBuf
	if len(buf) < need {
		pbuf = getPackBuf()
		//lint:ignore perfescape inlined pool growth: allocates only until the pack pool warms up, then reuses
		pbuf.b = ensureFloats(pbuf.b, need)
		buf = pbuf.b
	} else {
		buf = buf[:need]
	}
	packB(b, buf)
	if pa.rows*pa.k*b.Cols >= parallelThreshold && parallelOn.Load() {
		mulAddPackedParallel(pa, buf, dst)
	} else {
		gemmPacked(pa.k, pa.data, buf, dst, 0, pa.rows)
	}
	if pbuf != nil {
		putPackBuf(pbuf)
	}
}

// mulAddPackedParallel fans the packed product out across row bands. Both
// operands are already packed, so workers slice the shared panels
// read-only; bands snap to the panel width, keeping per-row reduction
// order identical to the serial path.
//
//perf:coldpath
func mulAddPackedParallel(pa PackedA, pB []float64, dst *Matrix) {
	w := panelW
	workers := runtime.GOMAXPROCS(0)
	if workers > pa.rows {
		workers = pa.rows
	}
	band := (pa.rows + workers - 1) / workers
	band = (band + w - 1) / w * w
	if band >= pa.rows {
		// One band: same arithmetic, no goroutine bookkeeping.
		gemmPacked(pa.k, pa.data, pB, dst, 0, pa.rows)
		return
	}
	var wg sync.WaitGroup
	for r0 := 0; r0 < pa.rows; r0 += band {
		r1 := min(r0+band, pa.rows)
		wg.Add(1)
		go func(r0, r1 int) {
			defer wg.Done()
			gemmPacked(pa.k, pa.data[r0/w*w*pa.k:], pB, dst, r0, r1)
		}(r0, r1)
	}
	wg.Wait()
}

// Mul computes dst = a*b. dst must not alias a or b.
func Mul(dst, a, b *Matrix) { GEMM(1, a, b, 0, dst) }

// MulAdd computes dst += a*b. dst must not alias a or b.
func MulAdd(dst, a, b *Matrix) { GEMM(1, a, b, 1, dst) }

// MulSub computes dst -= a*b. dst must not alias a or b.
func MulSub(dst, a, b *Matrix) { GEMM(-1, a, b, 1, dst) }

// MulTrans computes dst = op(a)*op(b) where op(x) is x or x^T according to
// the transA/transB flags. dst must not alias a or b. It is implemented by
// explicit transposition into scratch, which is acceptable at the block
// sizes this package targets (M <= a few hundred).
func MulTrans(dst, a, b *Matrix, transA, transB bool) {
	at, bt := a, b
	if transA {
		at = New(a.Cols, a.Rows)
		Transpose(at, a)
	}
	if transB {
		bt = New(b.Cols, b.Rows)
		Transpose(bt, b)
	}
	Mul(dst, at, bt)
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
