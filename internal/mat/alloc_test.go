package mat

import "testing"

// Deterministic fillers for allocation tests (no rand dependency, so the
// measured closures do exactly the arithmetic under test).

func fillSeq(m *Matrix, scale float64) {
	for i := 0; i < m.Rows; i++ {
		for j := 0; j < m.Cols; j++ {
			m.Set(i, j, scale*float64((i*31+j*17)%23-11))
		}
	}
}

func diagDomTest(n int) *Matrix {
	m := New(n, n)
	fillSeq(m, 0.01)
	for i := 0; i < n; i++ {
		m.AddAt(i, i, float64(n))
	}
	return m
}

// TestLUSolveToAllocationFree pins the factored-solve hot path: SolveTo
// into a caller-provided destination must not touch the heap.
func TestLUSolveToAllocationFree(t *testing.T) {
	a := diagDomTest(32)
	lu, err := Factor(a)
	if err != nil {
		t.Fatal(err)
	}
	b := New(32, 8)
	fillSeq(b, 1)
	dst := New(32, 8)
	allocs := testing.AllocsPerRun(10, func() { lu.SolveTo(dst, b) })
	if allocs != 0 {
		t.Errorf("LU.SolveTo: %v allocs/op, want 0", allocs)
	}
}

// TestGEMMSerialAllocationFree pins both serial kernels: the small tiled
// loop and the packed micro-kernel path (whose pack buffers come from the
// pool, so steady state allocates nothing).
func TestGEMMSerialAllocationFree(t *testing.T) {
	cases := []struct {
		name string
		n    int
	}{
		{"tiled-16", 16},  // below packThreshold: plain tiled loop
		{"packed-48", 48}, // above packThreshold, below parallelThreshold
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			a := New(tc.n, tc.n)
			b := New(tc.n, tc.n)
			dst := New(tc.n, tc.n)
			fillSeq(a, 0.5)
			fillSeq(b, 0.25)
			allocs := testing.AllocsPerRun(10, func() { Mul(dst, a, b) })
			if allocs != 0 {
				t.Errorf("%s: %v allocs/op, want 0", tc.name, allocs)
			}
		})
	}
}

// TestGEMVStridedAllocationFree pins the strided-column gather: the gather
// buffer comes from the pack pool, so after the first call the gemv path
// allocates nothing.
func TestGEMVStridedAllocationFree(t *testing.T) {
	a := New(64, 64)
	fillSeq(a, 0.5)
	wide := New(64, 8)
	fillSeq(wide, 0.25)
	x := wide.Col(3) // stride 8: forces the gather
	dst := New(64, 1)
	allocs := testing.AllocsPerRun(10, func() { Mul(dst, a, x) })
	if allocs != 0 {
		t.Errorf("strided gemv: %v allocs/op, want 0", allocs)
	}
}

// TestGEMMParallelAllocationBounded keeps the parallel path honest: it may
// spawn goroutines (closure + stack bookkeeping) but must not scale
// allocations with the operand size — the pack buffers are pooled.
func TestGEMMParallelAllocationBounded(t *testing.T) {
	prev := ParallelEnabled()
	defer SetParallel(prev)
	SetParallel(true)
	n := 128 // above parallelThreshold
	a := New(n, n)
	b := New(n, n)
	dst := New(n, n)
	fillSeq(a, 0.5)
	fillSeq(b, 0.25)
	allocs := testing.AllocsPerRun(10, func() { Mul(dst, a, b) })
	if allocs > 32 {
		t.Errorf("parallel GEMM: %v allocs/op, want <= 32 (goroutine bookkeeping only)", allocs)
	}
}

// TestMulAddPackedAllocationFree pins the panelized solve-phase contract:
// with the A-panel packed once into a caller-provided arena slice and the
// B-scratch supplied per call, MulAddPacked touches the heap zero times —
// for every panel width the ARD solve issues, including the narrow shapes
// that fall back to the unpacked GEMM path.
func TestMulAddPackedAllocationFree(t *testing.T) {
	prev := ParallelEnabled()
	defer SetParallel(prev)
	SetParallel(false)
	a := New(8, 16)
	fillSeq(a, 0.5)
	buf := make([]float64, PackALen(8, 16))
	pa := PackAInto(buf, 1, a)
	for _, r := range []int{1, 64, 256} {
		b := New(16, r)
		fillSeq(b, 0.25)
		dst := New(8, r)
		bs := make([]float64, PackBLen(16, r))
		MulAddPacked(dst, pa, b, bs) // warm any pool the fallback touches
		allocs := testing.AllocsPerRun(10, func() { MulAddPacked(dst, pa, b, bs) })
		if allocs != 0 {
			t.Errorf("MulAddPacked R=%d: %v allocs/op, want 0", r, allocs)
		}
	}
}

// TestPackAIntoAllocationFree pins the pack step itself: packing into a
// pre-sized arena slice performs exactly one allocation ever (the frozen
// source header, made at pack time so the hot solve loop stays clean), and
// repacking into the same buffer reuses nothing from the heap beyond it.
func TestPackAIntoAllocationFree(t *testing.T) {
	a := New(8, 16)
	fillSeq(a, 0.5)
	buf := make([]float64, PackALen(8, 16))
	allocs := testing.AllocsPerRun(10, func() { _ = PackAInto(buf, 1, a) })
	if allocs > 1 {
		t.Errorf("PackAInto: %v allocs/op, want <= 1 (the frozen source header)", allocs)
	}
}
