package mat

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestAddSubNeg(t *testing.T) {
	a := NewFromSlice(2, 2, []float64{1, 2, 3, 4})
	b := NewFromSlice(2, 2, []float64{5, 6, 7, 8})
	sum := New(2, 2)
	Add(sum, a, b)
	if !sum.Equal(NewFromSlice(2, 2, []float64{6, 8, 10, 12})) {
		t.Fatalf("Add wrong: %v", sum)
	}
	diff := New(2, 2)
	Sub(diff, sum, b)
	if !diff.Equal(a) {
		t.Fatalf("Sub wrong: %v", diff)
	}
	neg := New(2, 2)
	Neg(neg, a)
	Add(neg, neg, a)
	if NormFrob(neg) != 0 {
		t.Fatal("a + (-a) != 0")
	}
}

func TestAddAliasing(t *testing.T) {
	a := NewFromSlice(2, 2, []float64{1, 2, 3, 4})
	Add(a, a, a) // dst aliases both operands
	if !a.Equal(NewFromSlice(2, 2, []float64{2, 4, 6, 8})) {
		t.Fatalf("aliased Add wrong: %v", a)
	}
}

func TestScaleAXPY(t *testing.T) {
	a := NewFromSlice(1, 3, []float64{1, 2, 3})
	Scale(a, 2)
	if !a.Equal(NewFromSlice(1, 3, []float64{2, 4, 6})) {
		t.Fatalf("Scale wrong: %v", a)
	}
	b := NewFromSlice(1, 3, []float64{1, 1, 1})
	AXPY(b, 0.5, a)
	if !b.Equal(NewFromSlice(1, 3, []float64{2, 3, 4})) {
		t.Fatalf("AXPY wrong: %v", b)
	}
}

func TestTranspose(t *testing.T) {
	a := NewFromSlice(2, 3, []float64{1, 2, 3, 4, 5, 6})
	at := New(3, 2)
	Transpose(at, a)
	want := NewFromSlice(3, 2, []float64{1, 4, 2, 5, 3, 6})
	if !at.Equal(want) {
		t.Fatalf("Transpose wrong: %v", at)
	}
	// Double transpose is identity.
	att := New(2, 3)
	Transpose(att, at)
	if !att.Equal(a) {
		t.Fatal("transpose not involutive")
	}
}

func TestNormsKnownValues(t *testing.T) {
	a := NewFromSlice(2, 2, []float64{3, -4, 0, 0})
	if got := NormFrob(a); math.Abs(got-5) > 1e-12 {
		t.Fatalf("Frobenius = %v want 5", got)
	}
	if got := NormInf(a); got != 7 {
		t.Fatalf("NormInf = %v want 7", got)
	}
	if got := Norm1(a); got != 4 {
		t.Fatalf("Norm1 = %v want 4", got)
	}
	v := NewFromSlice(2, 1, []float64{3, 4})
	if got := Norm2Vec(v); math.Abs(got-5) > 1e-12 {
		t.Fatalf("Norm2Vec = %v want 5", got)
	}
}

func TestNormFrobOverflowResistant(t *testing.T) {
	a := NewFromSlice(1, 2, []float64{1e200, 1e200})
	got := NormFrob(a)
	want := 1e200 * math.Sqrt2
	if math.IsInf(got, 0) || math.Abs(got-want)/want > 1e-12 {
		t.Fatalf("scaled Frobenius wrong: %v", got)
	}
}

func TestNorm2VecRequiresColumn(t *testing.T) {
	defer expectPanic(t, "Norm2Vec")
	Norm2Vec(New(2, 2))
}

func TestDot(t *testing.T) {
	a := NewFromSlice(2, 2, []float64{1, 2, 3, 4})
	b := NewFromSlice(2, 2, []float64{5, 6, 7, 8})
	if got := Dot(a, b); got != 70 {
		t.Fatalf("Dot = %v want 70", got)
	}
}

// Property: triangle inequality and absolute homogeneity for the norms.
func TestNormAxiomsProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	f := func(seed int64, s float64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 1 + r.Intn(8)
		mdim := 1 + r.Intn(8)
		a := Random(n, mdim, r)
		b := Random(n, mdim, r)
		sum := New(n, mdim)
		Add(sum, a, b)
		s = math.Mod(s, 100)
		for _, norm := range []func(*Matrix) float64{NormFrob, NormInf, Norm1} {
			if norm(sum) > norm(a)+norm(b)+1e-9 {
				return false
			}
			sa := a.Clone()
			Scale(sa, s)
			if math.Abs(norm(sa)-math.Abs(s)*norm(a)) > 1e-9*(1+math.Abs(s)) {
				return false
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 50, Rand: rng}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

// Property: Add is commutative and Sub(Add(a,b),b) == a elementwise.
func TestAddSubRoundTripProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n, c := 1+r.Intn(6), 1+r.Intn(6)
		a, b := Random(n, c, r), Random(n, c, r)
		ab, ba := New(n, c), New(n, c)
		Add(ab, a, b)
		Add(ba, b, a)
		if !ab.Equal(ba) {
			return false
		}
		back := New(n, c)
		Sub(back, ab, b)
		return back.EqualApprox(a, 1e-12)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// TestMulAliasingHazard pins down WHY Mul documents "dst must not alias a
// or b": GEMM zeroes dst before accumulating, so an aliased call reads
// partially overwritten sources and silently produces the wrong product.
// This is the regression test for the matalias analyzer's contract — if
// the kernel is ever rewritten to tolerate aliasing, this test (and the
// doc comments, and the analyzer's kernel table) must change together.
func TestMulAliasingHazard(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	a := Random(4, 4, rng)
	b := Random(4, 4, rng)

	want := New(4, 4)
	Mul(want, a, b) // distinct storage: the true product

	aliased := a.Clone()
	Mul(aliased, aliased, b) // dst aliases a — the documented misuse
	if aliased.EqualApprox(want, 1e-12) {
		t.Fatal("aliased Mul(a, a, b) matched the true product; the kernel now tolerates aliasing and the mat docs plus the matalias analyzer are out of date")
	}
}

// TestLUSolveLeavesRHSUnmodified pins (*LU).Solve's aliasing-safe
// contract: b is cloned internally, so the caller's right-hand side must
// come back bit-identical.
func TestLUSolveLeavesRHSUnmodified(t *testing.T) {
	rng := rand.New(rand.NewSource(32))
	a := RandomDiagDominant(5, 2, rng)
	lu, err := Factor(a)
	if err != nil {
		t.Fatalf("Factor: %v", err)
	}
	b := Random(5, 2, rng)
	saved := b.Clone()
	x := lu.Solve(b)
	if !b.Equal(saved) {
		t.Fatal("LU.Solve modified its right-hand side; its doc promises b is untouched")
	}
	if x == b || &x.Data[0] == &b.Data[0] {
		t.Fatal("LU.Solve returned a matrix sharing storage with b")
	}
}

// TestSolveToDistinctStorage exercises SolveTo's documented-correct path
// (distinct dst and b). The "dst must not alias b" contract itself is
// enforced statically by the matalias analyzer rather than at runtime.
func TestSolveToDistinctStorage(t *testing.T) {
	rng := rand.New(rand.NewSource(33))
	a := RandomDiagDominant(4, 2, rng)
	lu, err := Factor(a)
	if err != nil {
		t.Fatalf("Factor: %v", err)
	}
	b := Random(4, 1, rng)
	dst := New(4, 1)
	lu.SolveTo(dst, b)
	if !dst.EqualApprox(lu.Solve(b), 1e-13) {
		t.Fatal("SolveTo with distinct storage disagrees with Solve")
	}
}
