// AVX-512 micro-kernels and CPU feature probes for the packed GEMM path.
// See gemm_kernel_amd64.go for the Go-side contracts.

#include "textflag.h"

// func kernel8x8Asm(k int, pa, pb, dst *float64, stride int)
//
// One 8x8 tile of dst += panelA * panelB, where panelA and panelB are
// k-major 8-wide micro-panels (pa[k*8+i] = alpha*a[i][k], pb[k*8+j] =
// b[k][j]) and dst is row-major with the given element stride. The eight
// rows of the tile live in Z0-Z7 for the whole k loop; each iteration
// loads one B panel row into Z8 and folds the eight A values in with
// broadcast FMAs. The accumulated totals are added to dst once at the end,
// so the reduction order (k-ascending partial sums, one final add into
// dst) matches the scalar micro-kernel's and is independent of any
// parallel row-band split.
TEXT ·kernel8x8Asm(SB), NOSPLIT, $0-40
	MOVQ k+0(FP), CX
	MOVQ pa+8(FP), SI
	MOVQ pb+16(FP), DX
	MOVQ dst+24(FP), DI
	MOVQ stride+32(FP), R8
	SHLQ $3, R8              // element stride -> byte stride

	VXORPD Z0, Z0, Z0
	VXORPD Z1, Z1, Z1
	VXORPD Z2, Z2, Z2
	VXORPD Z3, Z3, Z3
	VXORPD Z4, Z4, Z4
	VXORPD Z5, Z5, Z5
	VXORPD Z6, Z6, Z6
	VXORPD Z7, Z7, Z7

	TESTQ CX, CX
	JZ    writeback

kloop:
	VMOVUPD (DX), Z8
	VFMADD231PD.BCST 0(SI), Z8, Z0
	VFMADD231PD.BCST 8(SI), Z8, Z1
	VFMADD231PD.BCST 16(SI), Z8, Z2
	VFMADD231PD.BCST 24(SI), Z8, Z3
	VFMADD231PD.BCST 32(SI), Z8, Z4
	VFMADD231PD.BCST 40(SI), Z8, Z5
	VFMADD231PD.BCST 48(SI), Z8, Z6
	VFMADD231PD.BCST 56(SI), Z8, Z7
	ADDQ $64, SI
	ADDQ $64, DX
	DECQ CX
	JNZ  kloop

writeback:
	VADDPD (DI), Z0, Z0
	VMOVUPD Z0, (DI)
	ADDQ R8, DI
	VADDPD (DI), Z1, Z1
	VMOVUPD Z1, (DI)
	ADDQ R8, DI
	VADDPD (DI), Z2, Z2
	VMOVUPD Z2, (DI)
	ADDQ R8, DI
	VADDPD (DI), Z3, Z3
	VMOVUPD Z3, (DI)
	ADDQ R8, DI
	VADDPD (DI), Z4, Z4
	VMOVUPD Z4, (DI)
	ADDQ R8, DI
	VADDPD (DI), Z5, Z5
	VMOVUPD Z5, (DI)
	ADDQ R8, DI
	VADDPD (DI), Z6, Z6
	VMOVUPD Z6, (DI)
	ADDQ R8, DI
	VADDPD (DI), Z7, Z7
	VMOVUPD Z7, (DI)
	VZEROUPPER
	RET

// func axpyAsm(alpha float64, x, y *float64, n int)
//
// y[0:n] += alpha * x[0:n] with 8-wide FMA; the scalar tail is handled by
// the Go caller. n must be a multiple of 8.
TEXT ·axpyAsm(SB), NOSPLIT, $0-32
	VBROADCASTSD alpha+0(FP), Z1
	MOVQ x+8(FP), SI
	MOVQ y+16(FP), DI
	MOVQ n+24(FP), CX
	SHRQ $3, CX
	TESTQ CX, CX
	JZ   done

loop:
	VMOVUPD (DI), Z0
	VFMADD231PD (SI), Z1, Z0
	VMOVUPD Z0, (DI)
	ADDQ $64, SI
	ADDQ $64, DI
	DECQ CX
	JNZ  loop

done:
	VZEROUPPER
	RET

// func packColsAsm(k int, src *float64, stride int, dst *float64)
//
// Copies an 8-column strip out of a row-major matrix into a k-major packed
// panel: dst[kq*8 : kq*8+8] = src[kq*stride : kq*stride+8] for kq in
// [0, k). Eight float64 values are one ZMM register, so each row is a
// single unaligned load/store pair — the generic per-row copy spends more
// time in memmove dispatch than moving the 64 bytes.
TEXT ·packColsAsm(SB), NOSPLIT, $0-32
	MOVQ k+0(FP), CX
	MOVQ src+8(FP), SI
	MOVQ stride+16(FP), R8
	MOVQ dst+24(FP), DI
	SHLQ $3, R8              // element stride -> byte stride
	TESTQ CX, CX
	JZ   packdone

packloop:
	VMOVUPD (SI), Z0
	VMOVUPD Z0, (DI)
	ADDQ R8, SI
	ADDQ $64, DI
	DECQ CX
	JNZ  packloop

packdone:
	VZEROUPPER
	RET

// func cpuidex(eaxIn, ecxIn uint32) (eax, ebx, ecx, edx uint32)
TEXT ·cpuidex(SB), NOSPLIT, $0-24
	MOVL eaxIn+0(FP), AX
	MOVL ecxIn+4(FP), CX
	CPUID
	MOVL AX, eax+8(FP)
	MOVL BX, ebx+12(FP)
	MOVL CX, ecx+16(FP)
	MOVL DX, edx+20(FP)
	RET

// func xgetbv0() (eax, edx uint32)
TEXT ·xgetbv0(SB), NOSPLIT, $0-8
	XORL CX, CX
	XGETBV
	MOVL AX, eax+0(FP)
	MOVL DX, edx+4(FP)
	RET
