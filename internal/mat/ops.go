package mat

import "math"

// Add stores a + b into dst. All three must have the same shape; dst may
// alias a or b.
func Add(dst, a, b *Matrix) {
	sameShape3(dst, a, b)
	for i := 0; i < dst.Rows; i++ {
		d := dst.Data[i*dst.Stride : i*dst.Stride+dst.Cols]
		x := a.Data[i*a.Stride : i*a.Stride+a.Cols]
		y := b.Data[i*b.Stride : i*b.Stride+b.Cols]
		for j := range d {
			d[j] = x[j] + y[j]
		}
	}
}

// Sub stores a - b into dst. All three must have the same shape; dst may
// alias a or b.
func Sub(dst, a, b *Matrix) {
	sameShape3(dst, a, b)
	for i := 0; i < dst.Rows; i++ {
		d := dst.Data[i*dst.Stride : i*dst.Stride+dst.Cols]
		x := a.Data[i*a.Stride : i*a.Stride+a.Cols]
		y := b.Data[i*b.Stride : i*b.Stride+b.Cols]
		for j := range d {
			d[j] = x[j] - y[j]
		}
	}
}

// Scale multiplies every element of m by s in place.
func Scale(m *Matrix, s float64) {
	for i := 0; i < m.Rows; i++ {
		row := m.Data[i*m.Stride : i*m.Stride+m.Cols]
		for j := range row {
			row[j] *= s
		}
	}
}

// AXPY computes dst += alpha * x elementwise. dst and x must have the same
// shape.
func AXPY(dst *Matrix, alpha float64, x *Matrix) {
	if dst.Rows != x.Rows || dst.Cols != x.Cols {
		panic("mat: AXPY shape mismatch")
	}
	for i := 0; i < dst.Rows; i++ {
		d := dst.Data[i*dst.Stride : i*dst.Stride+dst.Cols]
		s := x.Data[i*x.Stride : i*x.Stride+x.Cols]
		for j := range d {
			d[j] += alpha * s[j]
		}
	}
}

// Neg stores -a into dst; dst may alias a.
func Neg(dst, a *Matrix) {
	if dst.Rows != a.Rows || dst.Cols != a.Cols {
		panic("mat: Neg shape mismatch")
	}
	for i := 0; i < dst.Rows; i++ {
		d := dst.Data[i*dst.Stride : i*dst.Stride+dst.Cols]
		s := a.Data[i*a.Stride : i*a.Stride+a.Cols]
		for j := range d {
			d[j] = -s[j]
		}
	}
}

// Transpose stores a^T into dst. dst must be a.Cols x a.Rows and must not
// alias a.
func Transpose(dst, a *Matrix) {
	if dst.Rows != a.Cols || dst.Cols != a.Rows {
		panic("mat: Transpose shape mismatch")
	}
	for i := 0; i < a.Rows; i++ {
		row := a.Data[i*a.Stride : i*a.Stride+a.Cols]
		for j, v := range row {
			dst.Data[j*dst.Stride+i] = v
		}
	}
}

func sameShape3(a, b, c *Matrix) {
	if a.Rows != b.Rows || a.Cols != b.Cols || a.Rows != c.Rows || a.Cols != c.Cols {
		panic("mat: shape mismatch")
	}
}

// NormFrob returns the Frobenius norm of m, computed with scaling to avoid
// overflow.
func NormFrob(m *Matrix) float64 {
	scale, ssq := 0.0, 1.0
	for i := 0; i < m.Rows; i++ {
		row := m.Data[i*m.Stride : i*m.Stride+m.Cols]
		for _, v := range row {
			if v == 0 {
				continue
			}
			a := math.Abs(v)
			if scale < a {
				r := scale / a
				ssq = 1 + ssq*r*r
				scale = a
			} else {
				r := a / scale
				ssq += r * r
			}
		}
	}
	return scale * math.Sqrt(ssq)
}

// NormInf returns the infinity norm (maximum absolute row sum) of m.
func NormInf(m *Matrix) float64 {
	max := 0.0
	for i := 0; i < m.Rows; i++ {
		row := m.Data[i*m.Stride : i*m.Stride+m.Cols]
		sum := 0.0
		for _, v := range row {
			sum += math.Abs(v)
		}
		if sum > max {
			max = sum
		}
	}
	return max
}

// Norm1 returns the 1-norm (maximum absolute column sum) of m.
func Norm1(m *Matrix) float64 {
	sums := make([]float64, m.Cols)
	for i := 0; i < m.Rows; i++ {
		row := m.Data[i*m.Stride : i*m.Stride+m.Cols]
		for j, v := range row {
			sums[j] += math.Abs(v)
		}
	}
	max := 0.0
	for _, s := range sums {
		if s > max {
			max = s
		}
	}
	return max
}

// Norm2Vec returns the Euclidean norm of a column vector (n x 1 matrix).
// It panics if m has more than one column.
func Norm2Vec(m *Matrix) float64 {
	if m.Cols != 1 {
		panic("mat: Norm2Vec requires a column vector")
	}
	return NormFrob(m)
}

// Dot returns the Frobenius inner product of a and b (sum of elementwise
// products). The shapes must match.
func Dot(a, b *Matrix) float64 {
	if a.Rows != b.Rows || a.Cols != b.Cols {
		panic("mat: Dot shape mismatch")
	}
	sum := 0.0
	for i := 0; i < a.Rows; i++ {
		x := a.Data[i*a.Stride : i*a.Stride+a.Cols]
		y := b.Data[i*b.Stride : i*b.Stride+b.Cols]
		for j := range x {
			sum += x[j] * y[j]
		}
	}
	return sum
}
