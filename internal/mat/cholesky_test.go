package mat

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestCholeskyReconstruction(t *testing.T) {
	rng := rand.New(rand.NewSource(61))
	for _, n := range []int{1, 2, 5, 16, 40} {
		a := RandomSPD(n, rng)
		ch, err := FactorCholesky(a)
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		l := ch.L()
		llt := New(n, n)
		MulTrans(llt, l, l, false, true)
		if !llt.EqualApprox(a, 1e-8*NormFrob(a)) {
			t.Fatalf("n=%d: L L^T != A", n)
		}
		// L must be lower triangular.
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				if l.At(i, j) != 0 {
					t.Fatalf("n=%d: L not lower triangular at (%d,%d)", n, i, j)
				}
			}
		}
	}
}

func TestCholeskySolveMatchesLU(t *testing.T) {
	rng := rand.New(rand.NewSource(62))
	a := RandomSPD(12, rng)
	b := Random(12, 3, rng)
	ch, err := FactorCholesky(a)
	if err != nil {
		t.Fatal(err)
	}
	xc := ch.Solve(b)
	xl, err := Solve(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if !xc.EqualApprox(xl, 1e-9) {
		t.Fatal("Cholesky and LU solutions differ")
	}
	// b must be unmodified by Solve.
	res := New(12, 3)
	Mul(res, a, xc)
	Sub(res, res, b)
	if NormFrob(res) > 1e-9*NormFrob(b) {
		t.Fatalf("residual too large: %v", NormFrob(res))
	}
}

func TestCholeskyRejectsIndefinite(t *testing.T) {
	// Symmetric but indefinite: eigenvalues +1 and -1.
	a := NewFromSlice(2, 2, []float64{0, 1, 1, 0})
	if _, err := FactorCholesky(a); err != ErrNotPositiveDefinite {
		t.Fatalf("want ErrNotPositiveDefinite, got %v", err)
	}
	// Negative definite.
	neg := Identity(3)
	Scale(neg, -1)
	if _, err := FactorCholesky(neg); err != ErrNotPositiveDefinite {
		t.Fatalf("want ErrNotPositiveDefinite, got %v", err)
	}
	// Non-square.
	if _, err := FactorCholesky(New(2, 3)); err != ErrShape {
		t.Fatalf("want ErrShape, got %v", err)
	}
}

func TestCholeskyIgnoresUpperTriangle(t *testing.T) {
	rng := rand.New(rand.NewSource(63))
	a := RandomSPD(5, rng)
	garbled := a.Clone()
	for i := 0; i < 5; i++ {
		for j := i + 1; j < 5; j++ {
			garbled.Set(i, j, 1e9) // garbage above the diagonal
		}
	}
	c1, err := FactorCholesky(a)
	if err != nil {
		t.Fatal(err)
	}
	c2, err := FactorCholesky(garbled)
	if err != nil {
		t.Fatal(err)
	}
	if !c1.L().Equal(c2.L()) {
		t.Fatal("upper triangle affected the factorization")
	}
}

func TestCholeskyDet(t *testing.T) {
	rng := rand.New(rand.NewSource(64))
	a := RandomSPD(6, rng)
	ch, err := FactorCholesky(a)
	if err != nil {
		t.Fatal(err)
	}
	lu, err := Factor(a)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(ch.Det()-lu.Det()) > 1e-6*math.Abs(lu.Det()) {
		t.Fatalf("Cholesky det %v vs LU det %v", ch.Det(), lu.Det())
	}
	if math.Abs(ch.LogDet()-math.Log(lu.Det())) > 1e-9 {
		t.Fatalf("LogDet %v vs log(det) %v", ch.LogDet(), math.Log(lu.Det()))
	}
}

func TestCholeskySolveDimMismatch(t *testing.T) {
	rng := rand.New(rand.NewSource(65))
	ch, err := FactorCholesky(RandomSPD(3, rng))
	if err != nil {
		t.Fatal(err)
	}
	defer expectPanic(t, "Cholesky dim")
	ch.SolveInPlace(New(2, 1))
}

// Property: Cholesky solves random SPD systems to tiny residuals.
func TestCholeskySolveProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(20)
		a := RandomSPD(n, rng)
		b := Random(n, 1+rng.Intn(4), rng)
		ch, err := FactorCholesky(a)
		if err != nil {
			return false
		}
		x := ch.Solve(b)
		res := New(b.Rows, b.Cols)
		Mul(res, a, x)
		Sub(res, res, b)
		return NormFrob(res) <= 1e-8*(1+NormFrob(b))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
