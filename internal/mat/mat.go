// Package mat implements the dense linear algebra substrate used by the
// block tridiagonal solvers: a row-major float64 matrix type with blocked
// (and optionally parallel) matrix multiplication, pivoted LU factorization,
// triangular solves with multiple right-hand sides, matrix inversion and the
// standard norms.
//
// The package is self-contained (standard library only) and plays the role
// that a vendor BLAS/LAPACK played in the original paper's experiments: the
// recursive doubling algorithms only care about the asymptotic M^3 / M^2
// cost split of these kernels, which this implementation preserves.
package mat

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"strings"
)

// ErrShape is returned when operand dimensions are incompatible.
var ErrShape = errors.New("mat: incompatible matrix shapes")

// ErrSingular is returned by factorizations when the matrix is exactly
// singular (a zero pivot was encountered even after row pivoting).
var ErrSingular = errors.New("mat: matrix is singular")

// Matrix is a dense row-major matrix of float64 values.
//
// Element (i, j) is stored at Data[i*Stride+j]. A Matrix may be a view into
// a larger matrix, in which case Stride > Cols and mutations are visible to
// the parent. The zero value is an empty 0x0 matrix.
type Matrix struct {
	Rows, Cols int
	Stride     int
	Data       []float64
}

// New returns a freshly allocated zero matrix with r rows and c columns.
func New(r, c int) *Matrix {
	if r < 0 || c < 0 {
		panic(fmt.Sprintf("mat: negative dimensions %dx%d", r, c))
	}
	return &Matrix{Rows: r, Cols: c, Stride: c, Data: make([]float64, r*c)}
}

// NewFromSlice returns an r x c matrix whose rows are filled from data in
// row-major order. The slice is copied. It panics if len(data) != r*c.
func NewFromSlice(r, c int, data []float64) *Matrix {
	if len(data) != r*c {
		panic(fmt.Sprintf("mat: NewFromSlice: need %d values, got %d", r*c, len(data)))
	}
	m := New(r, c)
	copy(m.Data, data)
	return m
}

// Identity returns the n x n identity matrix.
func Identity(n int) *Matrix {
	m := New(n, n)
	for i := 0; i < n; i++ {
		m.Data[i*m.Stride+i] = 1
	}
	return m
}

// Diag returns a square matrix with the given values on the diagonal.
func Diag(v []float64) *Matrix {
	m := New(len(v), len(v))
	for i, x := range v {
		m.Data[i*m.Stride+i] = x
	}
	return m
}

// At returns the element at row i, column j.
func (m *Matrix) At(i, j int) float64 {
	m.boundsCheck(i, j)
	return m.Data[i*m.Stride+j]
}

// Set assigns v to the element at row i, column j.
func (m *Matrix) Set(i, j int, v float64) {
	m.boundsCheck(i, j)
	m.Data[i*m.Stride+j] = v
}

// AddAt adds v to the element at row i, column j.
func (m *Matrix) AddAt(i, j int, v float64) {
	m.boundsCheck(i, j)
	m.Data[i*m.Stride+j] += v
}

func (m *Matrix) boundsCheck(i, j int) {
	if i < 0 || i >= m.Rows || j < 0 || j >= m.Cols {
		panic(fmt.Sprintf("mat: index (%d,%d) out of range %dx%d", i, j, m.Rows, m.Cols))
	}
}

// IsView reports whether the matrix shares storage with a larger parent,
// i.e. whether its rows are not contiguous.
func (m *Matrix) IsView() bool { return m.Stride != m.Cols }

// View returns a sub-matrix view of r rows and c columns starting at
// (i, j). The view shares storage with m; writes through the view are
// visible in m.
func (m *Matrix) View(i, j, r, c int) *Matrix {
	v := new(Matrix)
	m.viewInto(v, i, j, r, c)
	return v
}

// viewInto fills dst with the (i, j, r, c) sub-matrix view of m. It backs
// both View (fresh header) and Workspace.View (pooled header).
func (m *Matrix) viewInto(dst *Matrix, i, j, r, c int) {
	if i < 0 || j < 0 || r < 0 || c < 0 || i+r > m.Rows || j+c > m.Cols {
		panic(fmt.Sprintf("mat: view (%d,%d,%d,%d) out of range %dx%d", i, j, r, c, m.Rows, m.Cols))
	}
	if r == 0 || c == 0 {
		*dst = Matrix{Rows: r, Cols: c, Stride: m.Stride}
		return
	}
	*dst = Matrix{
		Rows:   r,
		Cols:   c,
		Stride: m.Stride,
		Data:   m.Data[i*m.Stride+j : (i+r-1)*m.Stride+j+c],
	}
}

// Row returns a view of row i as a 1 x Cols matrix.
func (m *Matrix) Row(i int) *Matrix { return m.View(i, 0, 1, m.Cols) }

// Col returns a view of column j as a Rows x 1 matrix.
func (m *Matrix) Col(j int) *Matrix { return m.View(0, j, m.Rows, 1) }

// Clone returns a newly allocated deep copy of m with contiguous storage.
func (m *Matrix) Clone() *Matrix {
	out := New(m.Rows, m.Cols)
	out.CopyFrom(m)
	return out
}

// CopyFrom copies the elements of src into m. The shapes must match.
func (m *Matrix) CopyFrom(src *Matrix) {
	if m.Rows != src.Rows || m.Cols != src.Cols {
		panic(fmt.Sprintf("mat: CopyFrom shape mismatch %dx%d vs %dx%d",
			m.Rows, m.Cols, src.Rows, src.Cols))
	}
	if m.Stride == m.Cols && src.Stride == src.Cols {
		// Both sides contiguous: one bulk copy instead of a per-row call.
		// The hot solve paths copy M x R panels whose views are full-width,
		// so this is the common case.
		copy(m.Data[:m.Rows*m.Cols], src.Data[:src.Rows*src.Cols])
		return
	}
	for i := 0; i < m.Rows; i++ {
		copy(m.Data[i*m.Stride:i*m.Stride+m.Cols], src.Data[i*src.Stride:i*src.Stride+m.Cols])
	}
}

// Zero sets every element of m to zero.
func (m *Matrix) Zero() {
	for i := 0; i < m.Rows; i++ {
		row := m.Data[i*m.Stride : i*m.Stride+m.Cols]
		for j := range row {
			row[j] = 0
		}
	}
}

// SetIdentity sets m, which must be square, to the identity matrix.
func (m *Matrix) SetIdentity() {
	if m.Rows != m.Cols {
		panic("mat: SetIdentity on non-square matrix")
	}
	m.Zero()
	for i := 0; i < m.Rows; i++ {
		m.Data[i*m.Stride+i] = 1
	}
}

// Equal reports whether m and n have identical shape and elements.
func (m *Matrix) Equal(n *Matrix) bool {
	if m.Rows != n.Rows || m.Cols != n.Cols {
		return false
	}
	for i := 0; i < m.Rows; i++ {
		a := m.Data[i*m.Stride : i*m.Stride+m.Cols]
		b := n.Data[i*n.Stride : i*n.Stride+n.Cols]
		for j := range a {
			//lint:ignore floateq Equal's contract is exact elementwise equality; EqualApprox is the tolerant variant.
			if a[j] != b[j] {
				return false
			}
		}
	}
	return true
}

// EqualApprox reports whether m and n have identical shape and all elements
// within absolute tolerance tol of each other.
func (m *Matrix) EqualApprox(n *Matrix, tol float64) bool {
	if m.Rows != n.Rows || m.Cols != n.Cols {
		return false
	}
	for i := 0; i < m.Rows; i++ {
		a := m.Data[i*m.Stride : i*m.Stride+m.Cols]
		b := n.Data[i*n.Stride : i*n.Stride+n.Cols]
		for j := range a {
			d := a[j] - b[j]
			if d != d || d > tol || d < -tol {
				return false
			}
		}
	}
	return true
}

// String renders the matrix for debugging, one row per line.
func (m *Matrix) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%dx%d\n", m.Rows, m.Cols)
	for i := 0; i < m.Rows; i++ {
		for j := 0; j < m.Cols; j++ {
			if j > 0 {
				sb.WriteByte(' ')
			}
			fmt.Fprintf(&sb, "% .6g", m.Data[i*m.Stride+j])
		}
		sb.WriteByte('\n')
	}
	return sb.String()
}

// Random returns an r x c matrix with independent entries uniform in
// [-1, 1), drawn from rng.
func Random(r, c int, rng *rand.Rand) *Matrix {
	m := New(r, c)
	for i := range m.Data {
		m.Data[i] = 2*rng.Float64() - 1
	}
	return m
}

// RandomDiagDominant returns an n x n random matrix made strictly row
// diagonally dominant by setting each diagonal entry to the row's
// off-diagonal absolute sum plus margin. Such matrices are nonsingular and
// well conditioned, which makes them suitable as reference problems.
func RandomDiagDominant(n int, margin float64, rng *rand.Rand) *Matrix {
	m := Random(n, n, rng)
	for i := 0; i < n; i++ {
		sum := 0.0
		for j := 0; j < n; j++ {
			if j != i {
				sum += math.Abs(m.Data[i*m.Stride+j])
			}
		}
		s := 1.0
		if rng.Intn(2) == 0 {
			s = -1.0
		}
		m.Data[i*m.Stride+i] = s * (sum + margin)
	}
	return m
}

// RandomSPD returns a random symmetric positive definite n x n matrix,
// built as B*B^T + n*I for a random B.
func RandomSPD(n int, rng *rand.Rand) *Matrix {
	b := Random(n, n, rng)
	out := New(n, n)
	MulTrans(out, b, b, false, true)
	for i := 0; i < n; i++ {
		out.Data[i*out.Stride+i] += float64(n)
	}
	return out
}

// MaxAbs returns the largest absolute value of any element (0 for empty).
func (m *Matrix) MaxAbs() float64 {
	max := 0.0
	for i := 0; i < m.Rows; i++ {
		row := m.Data[i*m.Stride : i*m.Stride+m.Cols]
		for _, v := range row {
			if v < 0 {
				v = -v
			}
			if v > max {
				max = v
			}
		}
	}
	return max
}
