package mat

import "testing"

// BenchmarkGEMVStridedColumn measures the matrix-vector fast path for both
// column layouts: a contiguous vector (stride 1, streamed directly) and a
// strided column view of a wider matrix (gathered once into a pooled buffer,
// then streamed). Before the pooled gather the strided case allocated a
// fresh gather buffer per call (1 alloc/op, ~2.6us at 64x64 on the baseline
// machine); with the pool it reports 0 allocs/op and the delta against the
// contiguous case is just the gather's O(n) copy.
func BenchmarkGEMVStridedColumn(b *testing.B) {
	prev := ParallelEnabled()
	SetParallel(false)
	defer SetParallel(prev)

	const n = 64
	a := New(n, n)
	fillSeq(a, 0.5)
	wide := New(n, 8)
	fillSeq(wide, 0.25)
	dst := New(n, 1)

	b.Run("contiguous", func(b *testing.B) {
		x := New(n, 1)
		fillSeq(x, 0.25)
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			Mul(dst, a, x)
		}
	})
	b.Run("strided", func(b *testing.B) {
		x := wide.Col(3) // stride 8: forces the pooled gather
		Mul(dst, a, x)   // warm the pool
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			Mul(dst, a, x)
		}
	})
}
