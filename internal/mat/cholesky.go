package mat

import (
	"errors"
	"math"
)

// ErrNotPositiveDefinite is returned by FactorCholesky when the matrix is
// not (numerically) symmetric positive definite.
var ErrNotPositiveDefinite = errors.New("mat: matrix is not positive definite")

// Cholesky holds the lower-triangular factor L with A = L*L^T of a
// symmetric positive definite matrix. For SPD systems it halves the flops
// and storage of pivoted LU and needs no pivoting.
type Cholesky struct {
	l *Matrix
}

// FactorCholesky computes the Cholesky factorization of a, reading only
// its lower triangle (the strict upper triangle is ignored, so symmetry
// is by construction). It returns ErrNotPositiveDefinite if a pivot is
// not strictly positive.
func FactorCholesky(a *Matrix) (*Cholesky, error) {
	if a.Rows != a.Cols {
		return nil, ErrShape
	}
	n := a.Rows
	l := New(n, n)
	for j := 0; j < n; j++ {
		sum := a.At(j, j)
		lrow := l.Data[j*l.Stride : j*l.Stride+j]
		for _, v := range lrow {
			sum -= v * v
		}
		if sum <= 0 || math.IsNaN(sum) {
			return nil, ErrNotPositiveDefinite
		}
		d := math.Sqrt(sum)
		l.Data[j*l.Stride+j] = d
		for i := j + 1; i < n; i++ {
			s := a.At(i, j)
			li := l.Data[i*l.Stride : i*l.Stride+j]
			for k, v := range lrow {
				s -= li[k] * v
			}
			l.Data[i*l.Stride+j] = s / d
		}
	}
	return &Cholesky{l: l}, nil
}

// N returns the dimension of the factored matrix.
func (ch *Cholesky) N() int { return ch.l.Rows }

// L returns a copy of the lower-triangular factor.
func (ch *Cholesky) L() *Matrix { return ch.l.Clone() }

// Solve computes X with A*X = B; B may have any number of columns and is
// not modified.
func (ch *Cholesky) Solve(b *Matrix) *Matrix {
	x := b.Clone()
	ch.SolveInPlace(x)
	return x
}

// SolveInPlace overwrites b with A^{-1} b via forward then back
// substitution with L and L^T.
func (ch *Cholesky) SolveInPlace(b *Matrix) {
	n := ch.l.Rows
	if b.Rows != n {
		panic("mat: Cholesky solve dimension mismatch")
	}
	l := ch.l
	r := b.Cols
	// Forward: L y = b.
	for i := 0; i < n; i++ {
		bi := b.Data[i*b.Stride : i*b.Stride+r]
		for k := 0; k < i; k++ {
			v := l.Data[i*l.Stride+k]
			if v == 0 {
				continue
			}
			bk := b.Data[k*b.Stride : k*b.Stride+r]
			for j := range bi {
				bi[j] -= v * bk[j]
			}
		}
		d := l.Data[i*l.Stride+i]
		for j := range bi {
			bi[j] /= d
		}
	}
	// Backward: L^T x = y.
	for i := n - 1; i >= 0; i-- {
		bi := b.Data[i*b.Stride : i*b.Stride+r]
		for k := i + 1; k < n; k++ {
			v := l.Data[k*l.Stride+i] // L^T[i][k] = L[k][i]
			if v == 0 {
				continue
			}
			bk := b.Data[k*b.Stride : k*b.Stride+r]
			for j := range bi {
				bi[j] -= v * bk[j]
			}
		}
		d := l.Data[i*l.Stride+i]
		for j := range bi {
			bi[j] /= d
		}
	}
}

// Det returns the determinant, the squared product of the diagonal of L.
func (ch *Cholesky) Det() float64 {
	d := 1.0
	for i := 0; i < ch.l.Rows; i++ {
		v := ch.l.Data[i*ch.l.Stride+i]
		d *= v * v
	}
	return d
}

// LogDet returns the log-determinant, stable for large dimensions where
// Det would overflow.
func (ch *Cholesky) LogDet() float64 {
	s := 0.0
	for i := 0; i < ch.l.Rows; i++ {
		s += 2 * math.Log(ch.l.Data[i*ch.l.Stride+i])
	}
	return s
}
