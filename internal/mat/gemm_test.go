package mat

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// naiveMul is the reference triple loop used to validate the blocked and
// parallel GEMM kernels.
func naiveMul(a, b *Matrix) *Matrix {
	out := New(a.Rows, b.Cols)
	for i := 0; i < a.Rows; i++ {
		for j := 0; j < b.Cols; j++ {
			sum := 0.0
			for k := 0; k < a.Cols; k++ {
				sum += a.At(i, k) * b.At(k, j)
			}
			out.Set(i, j, sum)
		}
	}
	return out
}

func TestMulSmallKnown(t *testing.T) {
	a := NewFromSlice(2, 3, []float64{1, 2, 3, 4, 5, 6})
	b := NewFromSlice(3, 2, []float64{7, 8, 9, 10, 11, 12})
	c := New(2, 2)
	Mul(c, a, b)
	want := NewFromSlice(2, 2, []float64{58, 64, 139, 154})
	if !c.Equal(want) {
		t.Fatalf("Mul wrong:\n%v", c)
	}
}

func TestMulIdentity(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	a := Random(7, 7, rng)
	c := New(7, 7)
	Mul(c, a, Identity(7))
	if !c.Equal(a) {
		t.Fatal("A*I != A")
	}
	Mul(c, Identity(7), a)
	if !c.Equal(a) {
		t.Fatal("I*A != A")
	}
}

func TestGEMMAlphaBeta(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	a, b := Random(4, 5, rng), Random(5, 3, rng)
	c0 := Random(4, 3, rng)
	c := c0.Clone()
	GEMM(2, a, b, 3, c)
	ref := naiveMul(a, b)
	for i := 0; i < 4; i++ {
		for j := 0; j < 3; j++ {
			want := 2*ref.At(i, j) + 3*c0.At(i, j)
			if d := c.At(i, j) - want; d > 1e-12 || d < -1e-12 {
				t.Fatalf("GEMM(2,..,3) wrong at (%d,%d): %v vs %v", i, j, c.At(i, j), want)
			}
		}
	}
}

func TestGEMMBetaZeroOverwritesGarbage(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	a, b := Random(3, 3, rng), Random(3, 3, rng)
	c := Random(3, 3, rng) // garbage destination
	GEMM(1, a, b, 0, c)
	if !c.EqualApprox(naiveMul(a, b), 1e-12) {
		t.Fatal("beta=0 did not overwrite destination")
	}
}

func TestGEMMAlphaZeroScalesOnly(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	a, b := Random(3, 3, rng), Random(3, 3, rng)
	c0 := Random(3, 3, rng)
	c := c0.Clone()
	GEMM(0, a, b, 2, c)
	want := c0.Clone()
	Scale(want, 2)
	if !c.EqualApprox(want, 1e-12) {
		t.Fatal("alpha=0 should only scale the destination")
	}
}

func TestMulAddMulSub(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	a, b := Random(4, 4, rng), Random(4, 4, rng)
	c := New(4, 4)
	MulAdd(c, a, b)
	MulSub(c, a, b)
	if NormFrob(c) > 1e-12 {
		t.Fatalf("MulAdd then MulSub should cancel, got norm %v", NormFrob(c))
	}
}

func TestMulOnViews(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	big := Random(10, 10, rng)
	a := big.View(1, 1, 4, 5)
	b := big.View(4, 3, 5, 4)
	c := New(4, 4)
	Mul(c, a, b)
	if !c.EqualApprox(naiveMul(a.Clone(), b.Clone()), 1e-12) {
		t.Fatal("Mul on strided views wrong")
	}
}

func TestMulShapeMismatch(t *testing.T) {
	defer expectPanic(t, "Mul shape")
	Mul(New(2, 2), New(2, 3), New(2, 2))
}

func TestGEMMParallelMatchesSerial(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	// Big enough to cross parallelThreshold (n^3 = 2^21 > 2^18).
	n := 128
	a, b := Random(n, n, rng), Random(n, n, rng)
	par := New(n, n)
	Mul(par, a, b) // parallel path
	ser := New(n, n)
	old := ParallelEnabled()
	SetParallel(false)
	Mul(ser, a, b)
	SetParallel(old)
	if !par.Equal(ser) {
		t.Fatal("parallel GEMM differs from serial")
	}
}

func TestMulTrans(t *testing.T) {
	rng := rand.New(rand.NewSource(19))
	a := Random(3, 5, rng)
	b := Random(3, 4, rng)
	c := New(5, 4)
	MulTrans(c, a, b, true, false) // a^T b
	at := New(5, 3)
	Transpose(at, a)
	if !c.EqualApprox(naiveMul(at, b), 1e-12) {
		t.Fatal("MulTrans(transA) wrong")
	}
	d := New(3, 3)
	MulTrans(d, a, a, false, true) // a a^T
	if !d.EqualApprox(naiveMul(a, at), 1e-12) {
		t.Fatal("MulTrans(transB) wrong")
	}
}

// Property: blocked GEMM matches the naive triple loop on random shapes.
func TestGEMMMatchesNaiveProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		m, k, n := 1+r.Intn(40), 1+r.Intn(40), 1+r.Intn(40)
		a, b := Random(m, k, r), Random(k, n, r)
		c := New(m, n)
		Mul(c, a, b)
		return c.EqualApprox(naiveMul(a, b), 1e-10)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// Property: matrix multiplication is associative, (AB)C == A(BC).
func TestMulAssociativityProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		p, q, s, u := 1+r.Intn(10), 1+r.Intn(10), 1+r.Intn(10), 1+r.Intn(10)
		a, b, c := Random(p, q, r), Random(q, s, r), Random(s, u, r)
		ab := New(p, s)
		Mul(ab, a, b)
		abc1 := New(p, u)
		Mul(abc1, ab, c)
		bc := New(q, u)
		Mul(bc, b, c)
		abc2 := New(p, u)
		Mul(abc2, a, bc)
		return abc1.EqualApprox(abc2, 1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// Property: distributivity A(B+C) == AB + AC.
func TestMulDistributivityProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		m, k, n := 1+r.Intn(12), 1+r.Intn(12), 1+r.Intn(12)
		a := Random(m, k, r)
		b, c := Random(k, n, r), Random(k, n, r)
		bc := New(k, n)
		Add(bc, b, c)
		left := New(m, n)
		Mul(left, a, bc)
		right := New(m, n)
		Mul(right, a, b)
		tmp := New(m, n)
		Mul(tmp, a, c)
		Add(right, right, tmp)
		return left.EqualApprox(right, 1e-10)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestGEMVStridedColumn(t *testing.T) {
	// The single-column fast path must handle strided views (gathering
	// the column before the dot loop).
	rng := rand.New(rand.NewSource(21))
	a := Random(6, 6, rng)
	big := Random(6, 4, rng)
	xcol := big.Col(2) // stride 4, cols 1
	got := New(6, 1)
	Mul(got, a, xcol)
	want := naiveMul(a, xcol.Clone())
	if !got.EqualApprox(want, 1e-12) {
		t.Fatal("strided GEMV wrong")
	}
}

func TestGEMVAccumulatesWithBeta(t *testing.T) {
	rng := rand.New(rand.NewSource(22))
	a := Random(4, 4, rng)
	x := Random(4, 1, rng)
	c0 := Random(4, 1, rng)
	c := c0.Clone()
	GEMM(2, a, x, 3, c)
	want := naiveMul(a, x)
	for i := 0; i < 4; i++ {
		expect := 2*want.At(i, 0) + 3*c0.At(i, 0)
		if d := c.At(i, 0) - expect; d > 1e-12 || d < -1e-12 {
			t.Fatalf("GEMV alpha/beta wrong at %d: %v vs %v", i, c.At(i, 0), expect)
		}
	}
}
