package comm

import (
	"errors"
	"testing"
	"time"
)

// shortResilience keeps failure-path tests fast: receives retry quickly and
// the watchdog window is far below the package test timeout.
func shortResilience() Resilience {
	return Resilience{
		RecvTimeout:   20 * time.Millisecond,
		MaxRetries:    10,
		Backoff:       1.5,
		DeadlockAfter: 150 * time.Millisecond,
	}
}

func TestWatchdogConvertsHangToDeadlockError(t *testing.T) {
	w := NewWorld(2)
	w.SetResilience(Resilience{DeadlockAfter: 100 * time.Millisecond})
	err := w.Run(func(c *Comm) {
		// Mismatched protocol: both ranks receive, nobody sends.
		c.Recv(1-c.Rank(), 7)
	})
	var de *DeadlockError
	if !errors.As(err, &de) {
		t.Fatalf("err = %v, want *DeadlockError", err)
	}
	if len(de.Blocked) != 2 {
		t.Fatalf("blocked ranks = %+v, want both", de.Blocked)
	}
	for _, b := range de.Blocked {
		if b.Op != "recv" || b.Src != 1-b.Rank || b.Tag != 7 {
			t.Fatalf("blocked op %+v does not name the hung (src, tag)", b)
		}
	}
	// The world must stay usable after the watchdog broke the hang.
	if err := w.Run(func(c *Comm) { c.Barrier() }); err != nil {
		t.Fatalf("world unusable after deadlock: %v", err)
	}
}

func TestRecvTimeoutAfterRetries(t *testing.T) {
	w := NewWorld(2)
	w.SetResilience(Resilience{
		RecvTimeout:   5 * time.Millisecond,
		MaxRetries:    2,
		Backoff:       1.5,
		DeadlockAfter: 10 * time.Second, // timeouts must fire first
	})
	err := w.Run(func(c *Comm) {
		if c.Rank() == 0 {
			c.Recv(1, 3) // never sent
		}
	})
	if !errors.Is(err, ErrRecvTimeout) {
		t.Fatalf("err = %v, want ErrRecvTimeout", err)
	}
	var re *RankError
	if !errors.As(err, &re) || re.Rank != 0 {
		t.Fatalf("err = %v, want *RankError on rank 0", err)
	}
}

// lossyCollectives runs a representative mix of point-to-point and
// collective traffic and checks the results, returning Run's error.
func lossyCollectives(w *World, p int) error {
	return w.Run(func(c *Comm) {
		sum := c.Allreduce([]float64{float64(c.Rank())}, OpSum)
		want := float64(p*(p-1)) / 2
		if sum[0] != want {
			Throw(errors.New("allreduce result corrupted"))
		}
		got := c.Bcast(0, []float64{42})
		if got[0] != 42 {
			Throw(errors.New("bcast result corrupted"))
		}
		c.Barrier()
	})
}

func TestFaultDropRecoversByRetransmit(t *testing.T) {
	for seed := int64(1); seed <= 5; seed++ {
		w := NewWorld(4)
		w.SetResilience(shortResilience())
		w.SetFaultPlan(&FaultPlan{Seed: seed, Drop: 0.3})
		if err := lossyCollectives(w, 4); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
	}
}

func TestFaultCorruptionDetectedAndRecovered(t *testing.T) {
	for seed := int64(1); seed <= 5; seed++ {
		w := NewWorld(4)
		w.SetResilience(shortResilience())
		w.SetFaultPlan(&FaultPlan{Seed: seed, Corrupt: 0.3})
		if err := lossyCollectives(w, 4); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
	}
}

func TestFaultDuplicatesFiltered(t *testing.T) {
	w := NewWorld(2)
	w.SetResilience(shortResilience())
	w.SetFaultPlan(&FaultPlan{Seed: 7, Dup: 0.5})
	err := w.Run(func(c *Comm) {
		if c.Rank() == 0 {
			for i := 0; i < 100; i++ {
				c.Send(1, 5, []float64{float64(i)})
			}
		} else {
			for i := 0; i < 100; i++ {
				got := c.Recv(0, 5)
				if got[0] != float64(i) {
					Throw(errors.New("duplicate leaked into the stream"))
				}
				c.Release(got)
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestFaultDelayPreservesOrder(t *testing.T) {
	w := NewWorld(3)
	w.SetResilience(shortResilience())
	w.SetFaultPlan(&FaultPlan{Seed: 11, Delay: 0.5, MaxDelay: 2 * time.Millisecond})
	if err := lossyCollectives(w, 3); err != nil {
		t.Fatal(err)
	}
}

func TestFaultMixedRecovery(t *testing.T) {
	for seed := int64(1); seed <= 3; seed++ {
		w := NewWorld(4)
		w.SetResilience(shortResilience())
		w.SetFaultPlan(&FaultPlan{
			Seed: seed, Drop: 0.1, Dup: 0.1, Corrupt: 0.1,
			Delay: 0.2, MaxDelay: time.Millisecond,
		})
		if err := lossyCollectives(w, 4); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
	}
}

func TestInjectedCrashIsTyped(t *testing.T) {
	w := NewWorld(4)
	w.SetResilience(shortResilience())
	w.SetFaultPlan(&FaultPlan{Seed: 3, CrashRank: 1, CrashAtOp: 3})
	err := lossyCollectives(w, 4)
	if !errors.Is(err, ErrInjectedCrash) {
		t.Fatalf("err = %v, want ErrInjectedCrash", err)
	}
	var re *RankError
	if !errors.As(err, &re) || re.Rank != 1 {
		t.Fatalf("err = %v, want *RankError on rank 1", err)
	}
}

func TestInjectedStallFeedsWatchdog(t *testing.T) {
	w := NewWorld(2)
	w.SetResilience(Resilience{DeadlockAfter: 100 * time.Millisecond})
	w.SetFaultPlan(&FaultPlan{Seed: 5, StallRank: 1, StallAtOp: 1}) // StallFor 0: forever
	err := w.Run(func(c *Comm) {
		c.Barrier()
	})
	var de *DeadlockError
	if !errors.As(err, &de) {
		t.Fatalf("err = %v, want *DeadlockError", err)
	}
	foundStall := false
	for _, b := range de.Blocked {
		if b.Rank == 1 && b.Op == "stall" {
			foundStall = true
		}
	}
	if !foundStall {
		t.Fatalf("DeadlockError %v does not name rank 1's stall", de)
	}
}

func TestFiniteStallRecovers(t *testing.T) {
	w := NewWorld(2)
	w.SetResilience(Resilience{DeadlockAfter: 2 * time.Second})
	w.SetFaultPlan(&FaultPlan{Seed: 5, StallRank: 0, StallAtOp: 2, StallFor: 20 * time.Millisecond})
	if err := w.Run(func(c *Comm) { c.Barrier() }); err != nil {
		t.Fatal(err)
	}
}

func TestFaultPlanDeterministic(t *testing.T) {
	outcome := func() string {
		w := NewWorld(4)
		w.SetResilience(shortResilience())
		w.SetFaultPlan(&FaultPlan{Seed: 99, Drop: 0.2, Corrupt: 0.2, CrashRank: 2, CrashAtOp: 9})
		err := lossyCollectives(w, 4)
		if err == nil {
			return "ok"
		}
		return err.Error()
	}
	first := outcome()
	for i := 0; i < 3; i++ {
		if got := outcome(); got != first {
			t.Fatalf("replay %d diverged: %q vs %q", i, got, first)
		}
	}
}

// Satellite: nonblocking operations under injected faults and aborts.

func TestNonblockingOpsUnderFaults(t *testing.T) {
	for seed := int64(1); seed <= 3; seed++ {
		w := NewWorld(4)
		w.SetResilience(shortResilience())
		w.SetFaultPlan(&FaultPlan{Seed: seed, Drop: 0.15, Dup: 0.1, Corrupt: 0.1})
		err := w.Run(func(c *Comm) {
			p := c.Size()
			// IRecv/Wait across a lossy link.
			req := c.IRecv((c.Rank()+p-1)%p, 8)
			c.Send((c.Rank()+1)%p, 8, []float64{float64(c.Rank())})
			if got := req.Wait(); got[0] != float64((c.Rank()+p-1)%p) {
				Throw(errors.New("irecv payload corrupted"))
			}
			// Alltoall: rank r sends r*10+q to rank q.
			pieces := make([][]float64, p)
			for q := 0; q < p; q++ {
				pieces[q] = []float64{float64(c.Rank()*10 + q)}
			}
			got := c.Alltoall(pieces)
			for q := 0; q < p; q++ {
				if got[q][0] != float64(q*10+c.Rank()) {
					Throw(errors.New("alltoall piece corrupted"))
				}
			}
			// ReduceScatter with equal chunks.
			counts := []int{1, 1, 1, 1}
			data := []float64{1, 2, 3, 4}
			chunk := c.ReduceScatter(data, counts, OpSum)
			if chunk[0] != float64(p)*float64(c.Rank()+1) {
				Throw(errors.New("reduce-scatter chunk corrupted"))
			}
		})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
	}
}

func TestNonblockingOpsUnderInjectedAbort(t *testing.T) {
	// Crash a rank mid-collective while others are parked in Alltoall/Wait;
	// the world must unwind with the crash as the only reported error.
	w := NewWorld(4)
	w.SetResilience(shortResilience())
	w.SetFaultPlan(&FaultPlan{Seed: 2, CrashRank: 3, CrashAtOp: 5})
	err := w.Run(func(c *Comm) {
		p := c.Size()
		pieces := make([][]float64, p)
		for q := 0; q < p; q++ {
			pieces[q] = []float64{float64(c.Rank())}
		}
		c.Alltoall(pieces)
		req := c.IRecv((c.Rank()+1)%p, 9)
		c.Send((c.Rank()+p-1)%p, 9, []float64{1})
		req.Wait()
	})
	if !errors.Is(err, ErrInjectedCrash) {
		t.Fatalf("err = %v, want ErrInjectedCrash", err)
	}
	var re *RankError
	if !errors.As(err, &re) || re.Rank != 3 {
		t.Fatalf("err = %v, want *RankError on rank 3 (cascades must not mask it)", err)
	}
	// Removing the plan restores a healthy world.
	w.SetFaultPlan(nil)
	if err := w.Run(func(c *Comm) { c.Barrier() }); err != nil {
		t.Fatal(err)
	}
}

func TestNonblockingWaitTimesOut(t *testing.T) {
	w := NewWorld(2)
	w.SetResilience(Resilience{
		RecvTimeout:   5 * time.Millisecond,
		MaxRetries:    1,
		DeadlockAfter: 10 * time.Second,
	})
	err := w.Run(func(c *Comm) {
		if c.Rank() == 0 {
			c.IRecv(1, 4).Wait() // never sent
		}
	})
	if !errors.Is(err, ErrRecvTimeout) {
		t.Fatalf("err = %v, want ErrRecvTimeout", err)
	}
}
