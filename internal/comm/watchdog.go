// World watchdog: detects no-progress states and converts what would be an
// eternal hang into a *DeadlockError naming each blocked rank's (src, tag).
//
// The detector is deliberately cheap: ranks publish their execution state
// into per-rank atomics only when they actually park (the deliver-
// immediately receive path never touches them), every observable event
// bumps one shared progress counter, and the watchdog goroutine just
// samples both on a coarse tick while a Run is active. A deadlock is
// declared only when every rank is done or parked, at least one is parked,
// and the progress counter has not moved for the DeadlockAfter window —
// so a rank grinding through a long local computation can never trip it.
package comm

import (
	"time"
)

// DefaultDeadlockAfter is the no-progress window after which the watchdog
// declares a deadlock when Resilience.DeadlockAfter is unset. It is
// generous: production protocols never legitimately stall this long with
// every rank parked.
const DefaultDeadlockAfter = 2 * time.Second

// Resilience configures the runtime's failure-handling behavior. The zero
// value means: no receive timeouts (receives wait until the message arrives
// or the watchdog fires) and the default deadlock window.
type Resilience struct {
	// RecvTimeout bounds each receive wait. 0 disables timeouts: receives
	// block until delivery, abort, or watchdog.
	RecvTimeout time.Duration
	// MaxRetries is how many additional timed waits a receive performs
	// after the first timeout before aborting with ErrRecvTimeout.
	MaxRetries int
	// Backoff multiplies the receive timeout after each retry when > 1.
	Backoff float64
	// Jitter randomizes each backed-off retry window by up to ±Jitter
	// (a fraction in [0, 1]; 0 disables). Fixed backoff synchronizes the
	// retry schedules of every rank that timed out in the same round, so
	// their next waits expire — and their retransmit pulls fire — in
	// lockstep; jitter decorrelates the storm. Draws come from a per-rank
	// deterministic stream derived from Seed, so a jittered configuration
	// replays identically under a fixed seed (chaos runs stay reproducible).
	Jitter float64
	// Seed parameterizes the per-rank jitter streams. Two worlds with the
	// same Seed (and the same per-rank retry sequences) jitter identically.
	Seed int64
	// DeadlockAfter is the no-progress window before the watchdog declares
	// a deadlock. 0 means DefaultDeadlockAfter.
	DeadlockAfter time.Duration
}

// SetResilience installs the failure-handling configuration. It must be
// called while no Run is active.
func (w *World) SetResilience(res Resilience) {
	w.res = res
}

// deadlockAfter returns the effective no-progress window.
func (w *World) deadlockAfter() time.Duration {
	if w.res.DeadlockAfter > 0 {
		return w.res.DeadlockAfter
	}
	return DefaultDeadlockAfter
}

// watchTick picks the sampling interval: coarse by default, fine enough to
// give timed receives reasonable resolution in resilient mode and to
// detect deadlocks promptly under a short window.
func (w *World) watchTick() time.Duration {
	tick := 10 * time.Millisecond
	if rt := w.res.RecvTimeout; rt > 0 && rt/4 < tick {
		tick = rt / 4
	}
	if da := w.deadlockAfter(); da/4 < tick {
		tick = da / 4
	}
	if tick < 500*time.Microsecond {
		tick = 500 * time.Microsecond
	}
	return tick
}

// watchdogLoop is the persistent watchdog goroutine, one per World. Like
// rankWorker it holds no *World reference while idle — Run passes the world
// through the wake channel — so the finalizer can still reap it.
func watchdogLoop(wake chan *World, stop chan struct{}) {
	for {
		select {
		case w := <-wake:
			w.watch()
		case <-stop:
			return
		}
	}
}

// watch monitors one active Run until it completes or deadlocks.
func (w *World) watch() {
	last := w.progress.Load()
	lastChange := time.Now()
	resilient := w.res.RecvTimeout > 0 || w.faults != nil
	for w.active.Load() {
		time.Sleep(w.watchTick())
		if !w.active.Load() {
			return
		}
		if resilient {
			// Wake timed waiters so they can re-check their deadlines;
			// sync.Cond has no native timed wait.
			for _, mb := range w.boxes {
				mb.kick()
			}
		}
		cur := w.progress.Load()
		if cur != last {
			last = cur
			lastChange = time.Now()
			continue
		}
		if time.Since(lastChange) < w.deadlockAfter() {
			continue
		}
		// No observable progress for the whole window. Deadlock iff every
		// rank is done or parked and at least one is parked.
		var blocked []BlockedOp
		all := true
		for r := range w.blocked {
			op, src, tag := unpackState(w.blocked[r].Load())
			switch op {
			case opDone:
			case opRecv:
				blocked = append(blocked, BlockedOp{Rank: r, Op: "recv", Src: src, Tag: tag})
			case opStall:
				blocked = append(blocked, BlockedOp{Rank: r, Op: "stall", Src: -1, Tag: -1})
			default:
				all = false
			}
		}
		if !all || len(blocked) == 0 {
			continue
		}
		if w.progress.Load() != last {
			// A rank moved while we were sampling; not a deadlock.
			continue
		}
		w.watchErr.Store(&DeadlockError{Blocked: blocked})
		for _, mb := range w.boxes {
			mb.abort()
		}
		return
	}
}
