package comm

import (
	"fmt"

	"blocktri/internal/mat"
)

// Matrix payload helpers. A matrix is shipped as [rows, cols, row-major
// data...]; the two dimension words count toward the message size, matching
// the header cost a real MPI datatype would carry.
//
// The Try* decoders validate untrusted payloads and return an error
// wrapping ErrMalformedPayload; the plain decoders are their rank-body
// counterparts that Throw on malformed input, so a garbled message aborts
// the rank with a typed cause instead of panicking the process.

// EncodeMatrix flattens m into a payload slice understood by DecodeMatrix.
func EncodeMatrix(m *mat.Matrix) []float64 {
	out := make([]float64, 2+m.Rows*m.Cols)
	out[0], out[1] = float64(m.Rows), float64(m.Cols)
	k := 2
	for i := 0; i < m.Rows; i++ {
		copy(out[k:k+m.Cols], m.Data[i*m.Stride:i*m.Stride+m.Cols])
		k += m.Cols
	}
	return out
}

// TryDecodeMatrix reconstructs a matrix from an EncodeMatrix payload,
// reporting malformed input as an error wrapping ErrMalformedPayload.
func TryDecodeMatrix(p []float64) (*mat.Matrix, error) {
	if len(p) < 2 {
		return nil, fmt.Errorf("matrix payload of %d floats has no header: %w", len(p), ErrMalformedPayload)
	}
	r, c := int(p[0]), int(p[1])
	if r < 0 || c < 0 || len(p) != 2+r*c {
		return nil, fmt.Errorf("matrix payload: header says %dx%d, body has %d floats: %w",
			r, c, len(p)-2, ErrMalformedPayload)
	}
	return mat.NewFromSlice(r, c, p[2:]), nil
}

// DecodeMatrix reconstructs a matrix from an EncodeMatrix payload. It must
// be called from a rank body: malformed input throws ErrMalformedPayload.
func DecodeMatrix(p []float64) *mat.Matrix {
	m, err := TryDecodeMatrix(p)
	if err != nil {
		Throw(err)
	}
	return m
}

// EncodeMatrices concatenates several matrices into one payload, so a
// logical multi-part message costs a single alpha (latency) charge, the
// way the solvers' bundled exchanges would be implemented over MPI.
func EncodeMatrices(ms ...*mat.Matrix) []float64 {
	total := 1
	for _, m := range ms {
		total += 2 + m.Rows*m.Cols
	}
	out := make([]float64, 0, total)
	out = append(out, float64(len(ms)))
	for _, m := range ms {
		out = append(out, EncodeMatrix(m)...)
	}
	return out
}

// TryDecodeMatrices splits a payload produced by EncodeMatrices, reporting
// malformed input as an error wrapping ErrMalformedPayload.
func TryDecodeMatrices(p []float64) ([]*mat.Matrix, error) {
	if len(p) < 1 {
		return nil, fmt.Errorf("empty multi-matrix payload: %w", ErrMalformedPayload)
	}
	n := int(p[0])
	if n < 0 {
		return nil, fmt.Errorf("multi-matrix payload: negative count %d: %w", n, ErrMalformedPayload)
	}
	out := make([]*mat.Matrix, 0, n)
	k := 1
	for i := 0; i < n; i++ {
		if len(p) < k+2 {
			return nil, fmt.Errorf("multi-matrix payload: part %d of %d truncated: %w", i, n, ErrMalformedPayload)
		}
		r, c := int(p[k]), int(p[k+1])
		if r < 0 || c < 0 || len(p) < k+2+r*c {
			return nil, fmt.Errorf("multi-matrix payload: part %d of %d truncated: %w", i, n, ErrMalformedPayload)
		}
		m, err := TryDecodeMatrix(p[k : k+2+r*c])
		if err != nil {
			return nil, err
		}
		out = append(out, m)
		k += 2 + r*c
	}
	if k != len(p) {
		return nil, fmt.Errorf("multi-matrix payload: %d trailing floats: %w", len(p)-k, ErrMalformedPayload)
	}
	return out, nil
}

// DecodeMatrices splits a payload produced by EncodeMatrices. It must be
// called from a rank body: malformed input throws ErrMalformedPayload.
func DecodeMatrices(p []float64) []*mat.Matrix {
	ms, err := TryDecodeMatrices(p)
	if err != nil {
		Throw(err)
	}
	return ms
}

// SendMatrix ships m to dst under tag.
func (c *Comm) SendMatrix(dst, tag int, m *mat.Matrix) {
	c.Send(dst, tag, EncodeMatrix(m))
}

// RecvMatrix receives a matrix from src under tag.
func (c *Comm) RecvMatrix(src, tag int) *mat.Matrix {
	return DecodeMatrix(c.Recv(src, tag))
}

// ExchangeMatrices performs a pairwise exchange of a bundle of matrices
// with partner and returns the partner's bundle.
func (c *Comm) ExchangeMatrices(partner, tag int, ms ...*mat.Matrix) []*mat.Matrix {
	return DecodeMatrices(c.Exchange(partner, tag, EncodeMatrices(ms...)))
}

// BcastMatrix broadcasts root's matrix to all ranks.
func (c *Comm) BcastMatrix(root int, m *mat.Matrix) *mat.Matrix {
	var payload []float64
	if c.Rank() == root {
		payload = EncodeMatrix(m)
	}
	return DecodeMatrix(c.Bcast(root, payload))
}

// TryDecodeMatrixInto copies an EncodeMatrix payload into dst, which must
// already have the encoded shape. Unlike TryDecodeMatrix it allocates
// nothing, so the caller may Release the payload afterwards.
func TryDecodeMatrixInto(dst *mat.Matrix, p []float64) error {
	if len(p) < 2 {
		return fmt.Errorf("matrix payload of %d floats has no header: %w", len(p), ErrMalformedPayload)
	}
	r, c := int(p[0]), int(p[1])
	if r < 0 || c < 0 || len(p) != 2+r*c {
		return fmt.Errorf("matrix payload: header says %dx%d, body has %d floats: %w",
			r, c, len(p)-2, ErrMalformedPayload)
	}
	if dst.Rows != r || dst.Cols != c {
		return fmt.Errorf("decode into %dx%d matrix from %dx%d payload: %w",
			dst.Rows, dst.Cols, r, c, ErrMalformedPayload)
	}
	k := 2
	for i := 0; i < r; i++ {
		copy(dst.Data[i*dst.Stride:i*dst.Stride+c], p[k:k+c])
		k += c
	}
	return nil
}

// DecodeMatrixInto is the rank-body counterpart of TryDecodeMatrixInto:
// malformed input throws ErrMalformedPayload.
func DecodeMatrixInto(dst *mat.Matrix, p []float64) {
	if err := TryDecodeMatrixInto(dst, p); err != nil {
		Throw(err)
	}
}

// EncodeMatrixInto flattens m into the rank's persistent scratch buffer and
// returns it. The scratch is overwritten by the next *Into call on the same
// Comm; Send copies payloads, so handing the scratch straight to Send is
// safe.
func (c *Comm) EncodeMatrixInto(m *mat.Matrix) []float64 {
	n := 2 + m.Rows*m.Cols
	if cap(c.scratch) < n {
		c.scratch = make([]float64, n)
	}
	out := c.scratch[:n]
	out[0], out[1] = float64(m.Rows), float64(m.Cols)
	k := 2
	for i := 0; i < m.Rows; i++ {
		copy(out[k:k+m.Cols], m.Data[i*m.Stride:i*m.Stride+m.Cols])
		k += m.Cols
	}
	return out
}

// BcastMatrixInto broadcasts root's matrix into every rank's preallocated
// m (all ranks pass a matrix of the broadcast shape; root's holds the
// data). It follows BcastMatrix's binomial-tree schedule and wire format
// exactly but allocates nothing in steady state: root encodes into its
// persistent scratch and receivers decode in place and release the payload.
func (c *Comm) BcastMatrixInto(root int, m *mat.Matrix) {
	p := c.Size()
	if root < 0 || root >= p {
		c.throwf(ErrInvalidRank, "comm: BcastMatrixInto root %d (P=%d)", root, p)
	}
	rel := (c.Rank() - root + p) % p
	var payload []float64
	if rel == 0 {
		payload = c.EncodeMatrixInto(m)
	}
	received := false
	mask := 1
	for mask < p {
		if rel&mask != 0 {
			src := (rel - mask + root) % p
			payload = c.Recv(src, tagBcast)
			received = true
			break
		}
		mask <<= 1
	}
	mask >>= 1
	for mask > 0 {
		if rel+mask < p {
			c.Send((rel+mask+root)%p, tagBcast, payload)
		}
		mask >>= 1
	}
	if received {
		DecodeMatrixInto(m, payload)
		c.Release(payload)
	}
}
