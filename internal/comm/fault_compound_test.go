package comm

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"testing"
	"time"
)

// shortRes is the fast failure-handling config the compound tests run
// under: tight receive timeouts with jittered backoff and a short deadlock
// window, so every poisoned scenario resolves in well under a second.
func shortRes() Resilience {
	return Resilience{
		RecvTimeout:   20 * time.Millisecond,
		MaxRetries:    8,
		Backoff:       1.5,
		Jitter:        0.3,
		Seed:          7,
		DeadlockAfter: 200 * time.Millisecond,
	}
}

// TestCrashDuringStall: one rank parked in an injected infinite stall while
// a different rank crashes. The crash must win — Run reports the crashed
// rank's *RankError, the stalled rank unwinds as a cascade victim without
// reporting anything, and the world stays usable for a clean follow-up Run.
func TestCrashDuringStall(t *testing.T) {
	w := NewWorld(3)
	w.SetResilience(shortRes())
	w.SetFaultPlan(&FaultPlan{
		Seed:      11,
		StallRank: 2, StallAtOp: 1, StallFor: 0, // park rank 2 forever
		CrashRank: 1, CrashAtOp: 2, // then kill rank 1 mid-protocol
	})
	err := w.Run(func(c *Comm) {
		// A ring of sends/receives so every rank passes fault points.
		next := (c.Rank() + 1) % c.Size()
		prev := (c.Rank() + c.Size() - 1) % c.Size()
		for round := 0; round < 4; round++ {
			c.Send(next, round, []float64{float64(c.Rank())})
			c.Release(c.Recv(prev, round))
		}
	})
	var re *RankError
	if !errors.As(err, &re) {
		t.Fatalf("Run returned %v, want *RankError", err)
	}
	if re.Rank != 1 || !errors.Is(err, ErrInjectedCrash) {
		t.Fatalf("got rank %d cause %v, want injected crash on rank 1", re.Rank, re.Err)
	}
	// The stalled rank must have been unwound, not left parked: a clean
	// plan-free Run on the same world proves nothing leaked or wedged.
	w.SetFaultPlan(nil)
	if err := w.Run(func(c *Comm) {
		c.Release(c.Exchange(c.Size()-1-c.Rank(), 9, []float64{1}))
	}); err != nil {
		t.Fatalf("world unusable after crash-during-stall: %v", err)
	}
}

// TestCorruptAndDropStream: a stream where roughly every message is either
// dropped or corrupted (and a few duplicated) must still be delivered
// complete, in order, and bit-exact — corruption is detected by checksum
// and re-pulled, holes are detected by sequence and retransmitted,
// duplicates are discarded.
func TestCorruptAndDropStream(t *testing.T) {
	const msgs = 50
	w := NewWorld(2)
	w.SetResilience(shortRes())
	w.SetFaultPlan(&FaultPlan{
		Seed:    23,
		Drop:    0.45,
		Corrupt: 0.45,
		Dup:     0.10,
	})
	err := w.Run(func(c *Comm) {
		if c.Rank() == 0 {
			for i := 0; i < msgs; i++ {
				c.Send(1, 5, []float64{float64(i), float64(i) * 1.5, -float64(i)})
			}
			return
		}
		for i := 0; i < msgs; i++ {
			got := c.Recv(0, 5)
			want := []float64{float64(i), float64(i) * 1.5, -float64(i)}
			for k := range want {
				if got[k] != want[k] {
					Throw(fmt.Errorf("message %d element %d: got %g want %g", i, k, got[k], want[k]))
				}
			}
			c.Release(got)
		}
	})
	if err != nil {
		t.Fatalf("compound drop+corrupt stream did not recover: %v", err)
	}
	if n := w.Pending(); n != 0 {
		t.Fatalf("%d undelivered messages left behind", n)
	}
}

// TestDeadlockAttributionPartialButterfly: rank 2 of a 4-rank butterfly
// stalls forever between rounds, so the other ranks wedge waiting on it
// (directly or transitively). The watchdog's DeadlockError must attribute
// blame: the stalled rank appears as a stall, and at least one live rank is
// reported blocked in a recv whose src is the stalled rank.
func TestDeadlockAttributionPartialButterfly(t *testing.T) {
	w := NewWorld(4)
	w.SetResilience(Resilience{DeadlockAfter: 150 * time.Millisecond})
	// Rank 2's ops: round-1 send(3)=1, recv(3)=2, round-2 send(0)=3 — stall
	// at op 3 so round 1 completes everywhere and round 2 wedges.
	w.SetFaultPlan(&FaultPlan{Seed: 31, StallRank: 2, StallAtOp: 3, StallFor: 0})
	err := w.Run(func(c *Comm) {
		for _, dist := range []int{1, 2} {
			partner := c.Rank() ^ dist
			c.Release(c.Exchange(partner, dist, []float64{float64(c.Rank())}))
		}
	})
	var de *DeadlockError
	if !errors.As(err, &de) {
		t.Fatalf("Run returned %v, want *DeadlockError", err)
	}
	var sawStall, sawRecvFromStalled bool
	for _, b := range de.Blocked {
		if b.Rank == 2 && b.Op == "stall" {
			sawStall = true
		}
		if b.Op == "recv" && b.Src == 2 {
			sawRecvFromStalled = true
		}
	}
	if !sawStall {
		t.Errorf("DeadlockError %v does not attribute the stall to rank 2", de)
	}
	if !sawRecvFromStalled {
		t.Errorf("DeadlockError %v does not name a rank blocked on recv from rank 2", de)
	}
}

// TestRunContextDeadline: a rank that never receives its message must be
// cut loose when the context deadline passes, with the error exposing both
// ErrCanceled and context.DeadlineExceeded, and the world reusable after.
func TestRunContextDeadline(t *testing.T) {
	w := NewWorld(2)
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	start := time.Now()
	err := w.RunContext(ctx, func(c *Comm) {
		if c.Rank() == 1 {
			c.Release(c.Recv(0, 1)) // never sent
		}
	})
	if !errors.Is(err, ErrCanceled) || !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("RunContext returned %v, want ErrCanceled wrapping DeadlineExceeded", err)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("cancellation took %v, want prompt unwinding", elapsed)
	}
	if err := w.Run(func(c *Comm) {
		c.Release(c.Exchange(1-c.Rank(), 2, []float64{3}))
	}); err != nil {
		t.Fatalf("world unusable after canceled run: %v", err)
	}
}

// TestRunContextPreCanceled: an already-dead context must fail fast without
// dispatching any rank work.
func TestRunContextPreCanceled(t *testing.T) {
	w := NewWorld(2)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	ran := false
	err := w.RunContext(ctx, func(c *Comm) { ran = true })
	if !errors.Is(err, ErrCanceled) || !errors.Is(err, context.Canceled) {
		t.Fatalf("got %v, want ErrCanceled wrapping context.Canceled", err)
	}
	if ran {
		t.Fatal("body ran despite pre-canceled context")
	}
}

// TestSetRunContextPropagates: a context installed with SetRunContext must
// bound plain Run calls — the path the serve layer uses to push per-job
// deadlines into solver-internal Runs.
func TestSetRunContextPropagates(t *testing.T) {
	w := NewWorld(2)
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	w.SetRunContext(ctx)
	err := w.Run(func(c *Comm) {
		if c.Rank() == 0 {
			c.Release(c.Recv(1, 3)) // never sent
		}
	})
	w.SetRunContext(nil)
	if !errors.Is(err, ErrCanceled) {
		t.Fatalf("Run under SetRunContext returned %v, want ErrCanceled", err)
	}
	if err := w.Run(func(c *Comm) {}); err != nil {
		t.Fatalf("clearing the run context did not restore plain runs: %v", err)
	}
}

// TestRunContextMonitorDrains: every RunContext spawns one cancel-monitor
// goroutine and must join it before returning, even when the run really is
// canceled mid-flight. Repeated canceled runs on a reused World therefore
// leave the goroutine count exactly where the warmed-up baseline put it; a
// leak of one monitor per run shows up here as a monotonically growing
// count.
func TestRunContextMonitorDrains(t *testing.T) {
	w := NewWorld(4)
	defer w.Close()
	// Warm the persistent workers (and watchdog) so the baseline includes
	// every goroutine a healthy World keeps alive between runs.
	if err := w.Run(func(c *Comm) {
		c.Release(c.Exchange(c.Rank()^1, 1, []float64{1}))
	}); err != nil {
		t.Fatalf("warm-up run: %v", err)
	}
	baseline := runtime.NumGoroutine()
	for i := 0; i < 25; i++ {
		ctx, cancel := context.WithCancel(context.Background())
		err := w.RunContext(ctx, func(c *Comm) {
			if c.Rank() == 1 {
				cancel() // fire mid-run, from inside the run itself
			}
			if c.Rank() == 0 {
				c.Release(c.Recv(2, 7)) // never sent: blocks until aborted
			}
		})
		cancel()
		if err != nil && !errors.Is(err, ErrCanceled) {
			t.Fatalf("iteration %d: RunContext returned %v, want nil or ErrCanceled", i, err)
		}
	}
	deadline := time.Now().Add(2 * time.Second)
	for {
		if n := runtime.NumGoroutine(); n <= baseline {
			break
		} else if time.Now().After(deadline) {
			t.Fatalf("cancel monitors leaked: %d goroutines after 25 canceled runs, baseline %d", n, baseline)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestWorldClose: Close must stop the persistent rank workers and watchdog
// deterministically (no waiting on the garbage collector), and be
// idempotent.
func TestWorldClose(t *testing.T) {
	before := runtime.NumGoroutine()
	worlds := make([]*World, 8)
	for i := range worlds {
		worlds[i] = NewWorld(4)
		if err := worlds[i].Run(func(c *Comm) {
			c.Release(c.Exchange(c.Rank()^1, 1, []float64{1}))
		}); err != nil {
			t.Fatalf("warm-up run: %v", err)
		}
	}
	for _, w := range worlds {
		w.Close()
		w.Close() // idempotent
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		if runtime.NumGoroutine() <= before {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutines did not drain after Close: before=%d now=%d", before, runtime.NumGoroutine())
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestRetryJitterDeterministic: the jitter stream is deterministic per
// (seed, rank), stays within the configured band, and differs across ranks
// so synchronized timeouts fan out.
func TestRetryJitterDeterministic(t *testing.T) {
	draw := func(seed int64, rank, n int) []float64 {
		w := NewWorld(rank + 1)
		w.SetResilience(Resilience{Jitter: 0.25, Seed: seed})
		w.ensureWorkers()
		c := w.comms[rank]
		out := make([]float64, n)
		for i := range out {
			out[i] = c.retryJitter()
		}
		return out
	}
	a := draw(42, 1, 16)
	b := draw(42, 1, 16)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("draw %d differs across identically seeded worlds: %g vs %g", i, a[i], b[i])
		}
		if a[i] < 0.75 || a[i] > 1.25 {
			t.Fatalf("draw %d = %g outside [0.75, 1.25]", i, a[i])
		}
	}
	other := draw(42, 0, 16)
	same := true
	for i := range a {
		if a[i] != other[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("ranks 0 and 1 share a jitter stream; retries would stay synchronized")
	}
	// Jitter disabled: the factor must be exactly 1 so the backoff schedule
	// is unchanged for existing configurations.
	w := NewWorld(1)
	w.ensureWorkers()
	if f := w.comms[0].retryJitter(); f != 1 {
		t.Fatalf("zero-jitter factor = %g, want 1", f)
	}
}
