// Package comm implements an in-process message-passing runtime that stands
// in for MPI in the paper's experiments: a World of P ranks, each executed
// on its own goroutine, exchanging typed messages through matched
// send/receive pairs, plus the collective operations the solvers need
// (barrier, broadcast, reduce, allreduce, gather, allgather, exclusive
// scan).
//
// Every rank accumulates communication statistics (message and byte counts)
// and a simulated communication time under a configurable alpha-beta
// (latency-bandwidth) cost model, so experiments can report both measured
// wall-clock times (real goroutine parallelism up to GOMAXPROCS) and
// modeled network costs for processor counts beyond the host's cores.
//
// The runtime is allocation-free in steady state: ranks run on persistent
// worker goroutines, message payloads are copied into buffers recycled
// through a per-world free list (receivers return them with Release), and
// mailbox queues keep their capacity across messages. Repeated Run calls on
// a warmed-up world therefore put no pressure on the garbage collector.
//
// Failures are typed, not fatal: a rank body aborts with Throw (or by
// panicking), World.Run returns a *RankError identifying the rank and
// cause, and a watchdog converts no-progress states into a *DeadlockError
// naming each blocked rank's (src, tag). See docs/RESILIENCE.md. A seeded
// FaultPlan can inject message drops, duplicates, corruption, delays, and
// rank crashes or stalls for chaos testing; with no plan installed the
// fault hooks reduce to a nil check on the hot path.
package comm

import (
	"context"
	"fmt"
	"math/bits"
	"runtime"
	"runtime/debug"
	"sync"
	"sync/atomic"
	"time"
)

// CostModel is the classic alpha-beta model: sending an n-byte message
// costs Alpha + Beta*n seconds of simulated network time on both endpoints.
type CostModel struct {
	Alpha float64 // per-message latency, seconds
	Beta  float64 // per-byte transfer time, seconds
}

// DefaultCostModel approximates a commodity cluster interconnect:
// 1 microsecond latency, 10 GB/s bandwidth.
var DefaultCostModel = CostModel{Alpha: 1e-6, Beta: 1e-10}

// MessageCost returns the modeled time to transfer n bytes.
func (c CostModel) MessageCost(n int) float64 {
	return c.Alpha + c.Beta*float64(n)
}

// Stats accumulates per-rank communication counters.
type Stats struct {
	MsgsSent  int64
	BytesSent int64
	MsgsRecv  int64
	BytesRecv int64
	// SimCommTime is the accumulated alpha-beta time in seconds this rank
	// spent sending and receiving under the World's cost model.
	SimCommTime float64
}

// Add accumulates other into s.
func (s *Stats) Add(other Stats) {
	s.MsgsSent += other.MsgsSent
	s.BytesSent += other.BytesSent
	s.MsgsRecv += other.MsgsRecv
	s.BytesRecv += other.BytesRecv
	s.SimCommTime += other.SimCommTime
}

type msgKey struct {
	src, tag int
}

type message struct {
	data  []float64
	bytes int
	// seq and sum are populated only while a FaultPlan is installed: seq is
	// the 1-based per-(src, dst, tag) sequence number (0 = unsequenced) and
	// sum is a checksum of the pristine payload, so receivers can discard
	// duplicates, detect holes left by drops, and detect in-flight
	// corruption.
	seq uint64
	sum uint64
}

// msgQueue is one (source, tag) FIFO. Delivered messages advance head
// instead of re-slicing, so the items array keeps its capacity and a
// drained queue is reset in place — steady-state puts allocate nothing.
// Each queue has its own condition variable (sharing the mailbox mutex) so
// a put wakes only a receiver waiting on that (source, tag) pair, never
// receivers parked on unrelated queues.
type msgQueue struct {
	items  []message
	head   int
	expect uint64 // next sequence due for delivery (fault mode only)
	cond   *sync.Cond
}

// advance consumes the head message, recycling storage in place.
func (q *msgQueue) advance() {
	q.items[q.head] = message{} // drop the payload reference
	q.head++
	if q.head == len(q.items) {
		q.items = q.items[:0]
		q.head = 0
	}
}

// recvStatus reports how a mailbox wait ended.
type recvStatus int

const (
	recvOK      recvStatus = iota
	recvTimeout            // deadline passed with no deliverable message
	recvHole               // head sequence is ahead of expect: a message was lost
	recvCorrupt            // head message failed its checksum and was discarded
)

// mailbox is the per-rank incoming message store with FIFO ordering per
// (source, tag) pair.
type mailbox struct {
	w       *World
	rank    int
	mu      sync.Mutex
	queues  map[msgKey]*msgQueue
	aborted bool
}

func newMailbox(w *World, rank int) *mailbox {
	return &mailbox{w: w, rank: rank, queues: make(map[msgKey]*msgQueue)}
}

// queue returns the FIFO for key, creating it on first use. Callers must
// hold mb.mu.
func (mb *mailbox) queue(key msgKey) *msgQueue {
	q := mb.queues[key]
	if q == nil {
		q = &msgQueue{expect: 1}
		q.cond = sync.NewCond(&mb.mu)
		mb.queues[key] = q
	}
	return q
}

func (mb *mailbox) put(key msgKey, m message) {
	mb.mu.Lock()
	q := mb.queue(key)
	q.items = append(q.items, m)
	// Scoped wakeup: only the receiver waiting on this (source, tag) queue
	// is woken, and there is at most one (the rank goroutine), so Signal
	// suffices. See BenchmarkMailboxWakeups.
	q.cond.Signal()
	mb.mu.Unlock()
	mb.w.noteProgress()
}

// pushFront re-queues a retransmitted message ahead of everything already
// buffered, so it is delivered at its original sequence position. Fault
// paths only; may allocate.
func (mb *mailbox) pushFront(key msgKey, m message) {
	mb.mu.Lock()
	q := mb.queue(key)
	if q.head > 0 {
		q.head--
		q.items[q.head] = m
	} else {
		q.items = append(q.items, message{})
		copy(q.items[1:], q.items)
		q.items[0] = m
	}
	q.cond.Signal()
	mb.mu.Unlock()
	mb.w.noteProgress()
}

// wait blocks until a message for key is deliverable, the deadline passes
// (zero deadline = wait forever), or the world aborts. With seqCheck set it
// enforces sequence order: stale duplicates are discarded silently, a
// too-new head reports recvHole, and a checksum mismatch discards the
// message and reports recvCorrupt so the caller can request retransmission.
func (mb *mailbox) wait(key msgKey, deadline time.Time, seqCheck bool) (message, recvStatus) {
	mb.mu.Lock()
	defer mb.mu.Unlock()
	q := mb.queue(key)
	registered := false
	for {
		for q.head < len(q.items) {
			m := q.items[q.head]
			if seqCheck && m.seq != 0 {
				if m.seq < q.expect { // duplicate of a delivered message
					q.advance()
					mb.w.pool.put(m.data)
					continue
				}
				if m.seq > q.expect { // an earlier message never arrived
					if registered {
						mb.w.setBlocked(mb.rank, opRunning, -1, -1)
					}
					return message{}, recvHole
				}
				if payloadSum(m.data) != m.sum { // corrupted in flight
					q.advance()
					mb.w.pool.put(m.data)
					if registered {
						mb.w.setBlocked(mb.rank, opRunning, -1, -1)
					}
					return message{}, recvCorrupt
				}
				q.expect++
			}
			q.advance()
			if registered {
				mb.w.setBlocked(mb.rank, opRunning, -1, -1)
			}
			mb.w.noteProgress()
			return m, recvOK
		}
		if mb.aborted {
			//lint:ignore panicpolicy cascadeAbort is the sanctioned control-flow signal for abort victims; job.run swallows it.
			panic(cascadeAbort{})
		}
		if !deadline.IsZero() && !time.Now().Before(deadline) {
			if registered {
				mb.w.setBlocked(mb.rank, opRunning, -1, -1)
			}
			return message{}, recvTimeout
		}
		if !registered {
			// Register the blocked (src, tag) for the watchdog only when
			// actually parking; the deliver-immediately fast path above
			// never touches the shared state.
			mb.w.setBlocked(mb.rank, opRecv, key.src, key.tag)
			registered = true
		}
		q.cond.Wait()
	}
}

// abort wakes every blocked receiver so a failure on one rank cascades
// instead of deadlocking the world.
func (mb *mailbox) abort() {
	mb.mu.Lock()
	mb.aborted = true
	for _, q := range mb.queues {
		q.cond.Broadcast()
	}
	mb.mu.Unlock()
}

func (mb *mailbox) clearAbort() {
	mb.mu.Lock()
	mb.aborted = false
	mb.mu.Unlock()
}

func (mb *mailbox) isAborted() bool {
	mb.mu.Lock()
	defer mb.mu.Unlock()
	return mb.aborted
}

// kick wakes every waiter on this mailbox so timed waits can re-check
// their deadlines. Called by the watchdog tick in resilient mode.
func (mb *mailbox) kick() {
	mb.mu.Lock()
	for _, q := range mb.queues {
		q.cond.Broadcast()
	}
	mb.mu.Unlock()
}

// expectOf returns the next sequence number due on key's queue.
func (mb *mailbox) expectOf(key msgKey) uint64 {
	mb.mu.Lock()
	defer mb.mu.Unlock()
	return mb.queue(key).expect
}

// clear drops every undelivered message, recycling payload storage. Called
// at the start of each Run: an aborted run legitimately strands in-flight
// messages, and because tags are deterministic per protocol, a stale
// message would otherwise be consumed by the next run as if fresh — a
// silent wrong answer. A clean run leaves nothing pending, so in the
// steady state this walks empty queues and frees nothing.
func (mb *mailbox) clear() {
	mb.mu.Lock()
	for _, q := range mb.queues {
		for q.head < len(q.items) {
			mb.w.pool.put(q.items[q.head].data)
			q.advance()
		}
	}
	mb.mu.Unlock()
}

// resetSeq rewinds every queue's expected sequence for a new Run.
func (mb *mailbox) resetSeq() {
	mb.mu.Lock()
	for _, q := range mb.queues {
		q.expect = 1
	}
	mb.mu.Unlock()
}

// pending returns the number of undelivered messages (for leak checks).
func (mb *mailbox) pending() int {
	mb.mu.Lock()
	defer mb.mu.Unlock()
	n := 0
	for _, q := range mb.queues {
		n += len(q.items) - q.head
	}
	return n
}

// bufPool recycles payload buffers in power-of-two size classes. It is a
// typed free list guarded by a mutex (not a sync.Pool) so checkouts box no
// interfaces and steady state allocates nothing.
type bufPool struct {
	mu      sync.Mutex
	classes [48][][]float64
}

func (p *bufPool) get(n int) []float64 {
	if n == 0 {
		return nil
	}
	c := bits.Len(uint(n - 1)) // ceil(log2 n)
	p.mu.Lock()
	list := p.classes[c]
	if k := len(list); k > 0 {
		buf := list[k-1]
		list[k-1] = nil
		p.classes[c] = list[:k-1]
		p.mu.Unlock()
		return buf[:n]
	}
	p.mu.Unlock()
	return make([]float64, n, 1<<c)
}

func (p *bufPool) put(buf []float64) {
	if cap(buf) == 0 {
		return
	}
	c := bits.Len(uint(cap(buf))) - 1 // floor(log2 cap)
	p.mu.Lock()
	p.classes[c] = append(p.classes[c], buf[:cap(buf)])
	p.mu.Unlock()
}

// Per-rank execution states tracked for the watchdog, packed with the
// blocked (src, tag) into one atomic word: op in the top bits, src in bits
// 32..47, tag in the low 32.
const (
	opRunning = iota // executing the body (or not blocked anywhere)
	opRecv           // parked in a mailbox wait
	opStall          // parked in an injected stall
	opDone           // body returned (or unwound)
)

func packState(op, src, tag int) uint64 {
	return uint64(op)<<62 | uint64(uint16(src))<<32 | uint64(uint32(tag))
}

func unpackState(s uint64) (op, src, tag int) {
	return int(s >> 62), int(int16(uint16(s >> 32))), int(int32(uint32(s)))
}

// World is a set of P communicating ranks. The first Run starts one
// persistent worker goroutine per rank plus a watchdog; they idle between
// Runs and exit when the World is garbage collected.
type World struct {
	P     int
	Model CostModel

	boxes []*mailbox
	stats []Stats
	mu    sync.Mutex

	pool bufPool

	workersOnce sync.Once
	jobs        []chan job
	comms       []*Comm
	runErrs     []*RankError
	wg          sync.WaitGroup
	shutdown    func() // idempotent worker teardown, shared with the finalizer

	res    Resilience
	faults *faultState // nil unless a FaultPlan is installed

	// runCtx, when non-nil, bounds every Run call (see SetRunContext). It
	// lets callers that cannot reach the Run sites inside a solver — the
	// serve layer propagating per-job deadlines into ARD.Factor/SolveTo —
	// install cancellation out of band.
	runCtx context.Context

	// Watchdog state: blocked packs each rank's execution state, progress
	// counts every delivery/park/unpark event, active brackets a Run, and
	// watchErr carries a detected deadlock back to Run.
	blocked  []atomic.Uint64
	progress atomic.Uint64
	active   atomic.Bool
	watchErr atomic.Pointer[DeadlockError]
	wake     chan *World
}

// NewWorld returns a world of p ranks using the default cost model.
func NewWorld(p int) *World {
	if p <= 0 {
		//lint:ignore panicpolicy constructor misuse outside any Run body; there is no rank to fail.
		panic(fmt.Sprintf("comm: invalid world size %d", p))
	}
	w := &World{P: p, Model: DefaultCostModel,
		boxes: make([]*mailbox, p), stats: make([]Stats, p)}
	for i := range w.boxes {
		w.boxes[i] = newMailbox(w, i)
	}
	return w
}

// Comm is one rank's endpoint in a World. A Comm must only be used from
// the goroutine running that rank.
type Comm struct {
	world   *World
	rank    int
	stats   Stats
	scratch []float64 // persistent encode buffer for the *Into collectives

	// Fault-mode state (untouched when no plan is installed): opCount
	// numbers this rank's send/recv operations for crash/stall targeting,
	// sendSeq issues per-(dst, tag) sequence numbers.
	opCount int
	sendSeq map[sendKey]uint64

	// jitterState is the per-rank splitmix64 stream behind Resilience.Jitter,
	// lazily seeded from (Resilience.Seed, rank) on the first jittered retry.
	jitterState uint64
}

// splitmix64 advances s and returns the next output of the splitmix64
// generator — a tiny, allocation-free PRNG good enough for decorrelating
// retry schedules.
func splitmix64(s *uint64) uint64 {
	*s += 0x9e3779b97f4a7c15
	z := *s
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// retryJitter returns the multiplicative factor for one backed-off retry
// window: uniform in [1-J, 1+J] for J = Resilience.Jitter, drawn from this
// rank's deterministic stream. The stream is seeded once per Comm, so a
// rank's k-th jittered retry is the same number on every replay with the
// same Resilience.Seed.
func (c *Comm) retryJitter() float64 {
	j := c.world.res.Jitter
	if j <= 0 {
		return 1
	}
	if j > 1 {
		j = 1
	}
	if c.jitterState == 0 {
		mix := (uint64(c.rank) + 1) * 0x9e3779b97f4a7c15
		c.jitterState = uint64(c.world.res.Seed) ^ mix | 1
	}
	u := float64(splitmix64(&c.jitterState)>>11) * 0x1p-53 // uniform [0, 1)
	f := 1 + j*(2*u-1)
	if f < 0x1p-4 { // keep the window strictly positive
		f = 0x1p-4
	}
	return f
}

// Rank returns this endpoint's rank in [0, Size).
func (c *Comm) Rank() int { return c.rank }

// Size returns the number of ranks in the world.
func (c *Comm) Size() int { return c.world.P }

// Stats returns a copy of this rank's accumulated counters.
func (c *Comm) Stats() Stats { return c.stats }

// ResetStats zeroes this rank's counters.
func (c *Comm) ResetStats() { c.stats = Stats{} }

// noteProgress records that the world did something observable (a message
// queued or delivered, a rank parked or unparked). The watchdog declares
// deadlock only when this counter stops moving.
func (w *World) noteProgress() { w.progress.Add(1) }

// setBlocked publishes rank's execution state for the watchdog.
func (w *World) setBlocked(rank, op, src, tag int) {
	w.blocked[rank].Store(packState(op, src, tag))
	w.progress.Add(1)
}

// job is one rank's share of a Run, delivered to its persistent worker.
type job struct {
	w    *World
	rank int
	body func(c *Comm)
}

// run executes the job body with the rank's persistent Comm: fresh stats,
// conversion of Throw/panic into a *RankError with the failing stack,
// world-wide abort so blocked ranks unwind, and a stats merge that is
// skipped when the body failed.
func (j job) run() {
	w, rank := j.w, j.rank
	defer w.wg.Done()
	defer func() {
		w.setBlocked(rank, opDone, -1, -1)
		if p := recover(); p != nil {
			switch a := p.(type) {
			case cascadeAbort:
				// Woken by a world abort: a victim of another rank's
				// failure (or the watchdog), not a cause — record nothing.
			case rankAbort:
				w.runErrs[rank] = &RankError{Rank: rank, Err: a.err, Stack: debug.Stack()}
			default:
				w.runErrs[rank] = &RankError{Rank: rank,
					Err: fmt.Errorf("panic: %v", p), Stack: debug.Stack()}
			}
			// Wake every rank blocked on a receive so the whole world
			// unwinds instead of deadlocking.
			for _, mb := range w.boxes {
				mb.abort()
			}
		}
	}()
	c := w.comms[rank]
	c.stats = Stats{}
	j.body(c)
	w.mu.Lock()
	w.stats[rank].Add(c.stats)
	w.mu.Unlock()
}

// rankWorker is the persistent per-rank loop. It deliberately holds no
// *World reference while idle (only its two channels), so an unreachable
// World's finalizer can close stop and reap the workers.
func rankWorker(jobs chan job, stop chan struct{}) {
	for {
		select {
		case j := <-jobs:
			j.run()
		case <-stop:
			return
		}
	}
}

// ensureWorkers starts the persistent rank workers and watchdog on first
// use.
func (w *World) ensureWorkers() {
	w.workersOnce.Do(func() {
		w.jobs = make([]chan job, w.P)
		w.comms = make([]*Comm, w.P)
		w.runErrs = make([]*RankError, w.P)
		w.blocked = make([]atomic.Uint64, w.P)
		w.wake = make(chan *World, 1)
		stop := make(chan struct{})
		var stopOnce sync.Once
		shutdown := func() { stopOnce.Do(func() { close(stop) }) }
		w.shutdown = shutdown
		for r := 0; r < w.P; r++ {
			w.jobs[r] = make(chan job, 1)
			w.comms[r] = &Comm{world: w, rank: r}
			go rankWorker(w.jobs[r], stop)
		}
		go watchdogLoop(w.wake, stop)
		// The closures must not capture w, or the World could never become
		// unreachable and the workers would leak.
		runtime.SetFinalizer(w, func(*World) { shutdown() })
	})
}

// Close deterministically stops the persistent rank workers and the
// watchdog. A World that is never closed is still reaped by a finalizer
// once it becomes unreachable; Close exists for callers that need
// goroutine-leak-free teardown at a known point (the serve layer's chaos
// harness counts goroutines before and after a campaign). Close is
// idempotent. It must not be called while a Run is active, and the World
// must not be used after Close.
func (w *World) Close() {
	w.ensureWorkers()
	runtime.SetFinalizer(w, nil)
	w.shutdown()
}

// Run executes body on p ranks concurrently and blocks until every rank
// returns, then reports how the run ended: nil when every rank completed,
// a *RankError (rank, cause, stack) when a body called Throw or panicked,
// or a *DeadlockError when the watchdog had to break a no-progress state.
// Cascade victims — ranks forcibly unwound because another rank failed —
// are not reported; the returned error is the originating failure on the
// lowest-numbered rank. Per-rank stats are retained on the World and can
// be collected with TotalStats.
//
// Run dispatches to persistent per-rank workers, so a warmed-up world
// executes it without heap allocation. Runs on one World must be
// sequential: concurrent Run calls would interleave their messages in the
// shared mailboxes. When a context was installed with SetRunContext, Run is
// bounded by it exactly as RunContext would be.
func (w *World) Run(body func(c *Comm)) error {
	return w.RunContext(w.runCtx, body)
}

// SetRunContext installs ctx as the context consulted by subsequent Run
// calls (nil clears it). It exists for callers that cannot reach the Run
// sites buried inside a solver: the serve layer sets a per-job deadline
// context before ARD.Factor/SolveTo and clears it after, so cancellation
// propagates into every nested Run without changing solver signatures. It
// must be called while no Run is active.
//lint:ignore ctxflow storing the ctx is this API's documented purpose: it scopes the next Run and is cleared by the caller afterwards.
func (w *World) SetRunContext(ctx context.Context) { w.runCtx = ctx }

// RunContext is Run bounded by ctx: if ctx is canceled or its deadline
// passes mid-run, every blocked rank is aborted (the same cascade a rank
// failure triggers) and the call returns an error wrapping ErrCanceled and
// ctx.Err(). Cancellation is cooperative at communication points — a rank
// grinding through local computation unwinds at its next send or receive.
// A genuine rank failure racing the cancellation is reported in preference
// to the cancellation itself. A nil ctx is plain Run.
func (w *World) RunContext(ctx context.Context, body func(c *Comm)) error {
	w.ensureWorkers()
	if ctx != nil {
		if err := ctx.Err(); err != nil {
			return fmt.Errorf("comm: run not started: %w: %w", ErrCanceled, err)
		}
	}
	// Reset any abort state left by a previous failed Run so the world
	// stays usable, and drop messages a failed run left in flight — their
	// tags would collide with this run's protocol.
	for _, mb := range w.boxes {
		mb.clearAbort()
		mb.clear()
	}
	for i := range w.runErrs {
		w.runErrs[i] = nil
	}
	w.watchErr.Store(nil)
	for r := range w.blocked {
		w.blocked[r].Store(packState(opRunning, -1, -1))
	}
	if w.faults != nil {
		w.faults.beginRun(w)
	}
	w.noteProgress()
	w.active.Store(true)
	select {
	case w.wake <- w:
	default:
	}
	// The cancel monitor lives exactly as long as this Run: it aborts the
	// mailboxes when ctx fires and is joined before returning, so a late
	// abort can never poison a subsequent Run. It is built in a separate
	// method so the nil-ctx fast path stays allocation-free (the monitor
	// closure would otherwise force its state to escape on every Run).
	var mon *runMonitor
	if ctx != nil && ctx.Done() != nil {
		mon = w.startCancelMonitor(ctx)
	}
	w.wg.Add(w.P)
	for r := 0; r < w.P; r++ {
		w.jobs[r] <- job{w: w, rank: r, body: body}
	}
	w.wg.Wait()
	w.active.Store(false)
	canceled := false
	if mon != nil {
		canceled = mon.halt()
	}
	if de := w.watchErr.Load(); de != nil {
		return de
	}
	for _, re := range w.runErrs {
		if re != nil {
			return re
		}
	}
	if canceled {
		return fmt.Errorf("comm: run aborted: %w: %w", ErrCanceled, ctx.Err())
	}
	return nil
}

// runMonitor watches one Run's context on a side goroutine. halt joins the
// goroutine and reports whether the context fired.
type runMonitor struct {
	canceled atomic.Bool
	stop     chan struct{}
	done     chan struct{}
}

func (w *World) startCancelMonitor(ctx context.Context) *runMonitor {
	m := &runMonitor{stop: make(chan struct{}), done: make(chan struct{})}
	go func() {
		defer close(m.done)
		select {
		case <-ctx.Done():
			m.canceled.Store(true)
			for _, mb := range w.boxes {
				mb.abort()
			}
		case <-m.stop:
		}
	}()
	return m
}

func (m *runMonitor) halt() bool {
	close(m.stop)
	<-m.done
	return m.canceled.Load()
}

// TotalStats returns the sum of all ranks' counters accumulated by Run
// calls since the last ResetTotals.
func (w *World) TotalStats() Stats {
	w.mu.Lock()
	defer w.mu.Unlock()
	var total Stats
	for _, s := range w.stats {
		total.Add(s)
	}
	return total
}

// MaxSimCommTime returns the largest per-rank simulated communication time,
// the quantity that bounds a bulk-synchronous algorithm's modeled runtime.
func (w *World) MaxSimCommTime() float64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	max := 0.0
	for _, s := range w.stats {
		if s.SimCommTime > max {
			max = s.SimCommTime
		}
	}
	return max
}

// ResetTotals zeroes the per-rank counters retained on the World.
func (w *World) ResetTotals() {
	w.mu.Lock()
	defer w.mu.Unlock()
	for i := range w.stats {
		w.stats[i] = Stats{}
	}
}

// Pending returns the number of sent-but-unreceived messages across all
// ranks; a nonzero value after Run indicates a protocol bug.
func (w *World) Pending() int {
	n := 0
	for _, mb := range w.boxes {
		n += mb.pending()
	}
	return n
}

// Send delivers a copy of data to rank dst under the given tag. It never
// blocks (buffering is unbounded); ordering is FIFO per (source, tag).
// Sending to self is allowed. The copy lives in a pooled buffer that the
// receiver may hand back with Release once done with it.
func (c *Comm) Send(dst, tag int, data []float64) {
	w := c.world
	if dst < 0 || dst >= w.P {
		c.throwf(ErrInvalidRank, "comm: send to rank %d (P=%d)", dst, w.P)
	}
	nbytes := 8 * len(data)
	c.stats.MsgsSent++
	c.stats.BytesSent += int64(nbytes)
	c.stats.SimCommTime += w.Model.MessageCost(nbytes)
	if fs := w.faults; fs != nil {
		c.faultPoint()
		fs.send(c, dst, tag, data, nbytes)
		return
	}
	cp := w.pool.get(len(data))
	copy(cp, data)
	w.boxes[dst].put(msgKey{src: c.rank, tag: tag}, message{data: cp, bytes: nbytes})
}

// PayloadBuf checks a length-n buffer out of the world's message pool for
// building a payload in place. Hand the filled buffer to SendOwned; the
// pair moves one panel-sized message per scan round with a single copy
// (source matrix into the buffer) instead of Send's encode-then-copy two.
func (c *Comm) PayloadBuf(n int) []float64 {
	return c.world.pool.get(n)
}

// SendOwned is Send for a payload the caller built in a PayloadBuf buffer:
// ownership of data transfers to the comm layer, which delivers the buffer
// itself rather than a copy. After SendOwned returns the caller must not
// read or write data. Semantics otherwise match Send (never blocks, FIFO
// per (source, tag), receiver may Release).
func (c *Comm) SendOwned(dst, tag int, data []float64) {
	w := c.world
	if dst < 0 || dst >= w.P {
		c.throwf(ErrInvalidRank, "comm: send to rank %d (P=%d)", dst, w.P)
	}
	nbytes := 8 * len(data)
	c.stats.MsgsSent++
	c.stats.BytesSent += int64(nbytes)
	c.stats.SimCommTime += w.Model.MessageCost(nbytes)
	if fs := w.faults; fs != nil {
		c.faultPoint()
		// The injector copies payloads into its own buffers, so the
		// transferred buffer goes straight back to the pool here.
		fs.send(c, dst, tag, data, nbytes)
		w.pool.put(data)
		return
	}
	w.boxes[dst].put(msgKey{src: c.rank, tag: tag}, message{data: data, bytes: nbytes})
}

// Recv blocks until a message from rank src with the given tag arrives and
// returns its payload. The payload is owned by the caller; callers on a hot
// path should pass it to Release after consuming it so the buffer recycles
// instead of reaching the garbage collector.
//
// With a Resilience receive timeout configured, a receive that sees nothing
// for the timeout window retries up to MaxRetries times (backing off by
// Backoff each round, and requesting retransmission of injected losses
// first) before aborting the rank with ErrRecvTimeout.
func (c *Comm) Recv(src, tag int) []float64 {
	w := c.world
	if src < 0 || src >= w.P {
		c.throwf(ErrInvalidRank, "comm: recv from rank %d (P=%d)", src, w.P)
	}
	c.faultPoint()
	key := msgKey{src: src, tag: tag}
	mb := w.boxes[c.rank]
	seqCheck := w.faults != nil
	timeout := w.res.RecvTimeout
	retries := 0
	for {
		var deadline time.Time
		if timeout > 0 {
			deadline = time.Now().Add(timeout)
		}
		m, st := mb.wait(key, deadline, seqCheck)
		if st == recvOK {
			c.stats.MsgsRecv++
			c.stats.BytesRecv += int64(m.bytes)
			c.stats.SimCommTime += w.Model.MessageCost(m.bytes)
			return m.data
		}
		// Recovery path: ask the injector for a retransmit of the lost or
		// corrupted message before burning a retry on another wait.
		if w.faults != nil && w.faults.retransmit(mb, key) {
			continue
		}
		retries++
		if retries > w.res.MaxRetries {
			c.throwf(ErrRecvTimeout,
				"comm: recv(src=%d, tag=%d) gave up after %d retries", src, tag, retries-1)
		}
		if st != recvTimeout {
			// A hole or corruption with nothing to retransmit: the message
			// is still in flight behind an injected delay. Yield briefly.
			time.Sleep(50 * time.Microsecond)
		}
		if timeout > 0 && w.res.Backoff > 1 {
			timeout = time.Duration(float64(timeout) * w.res.Backoff)
		}
		if timeout > 0 {
			// Jitter the next window so ranks that timed out together do
			// not retry in lockstep (see Resilience.Jitter).
			timeout = time.Duration(float64(timeout) * c.retryJitter())
		}
	}
}

// Release returns a payload previously obtained from Recv to the world's
// buffer pool. Releasing is optional — unreleased buffers are simply
// garbage collected — but mandatory discipline applies when it is used:
// only Recv-returned slices may be released, at most once, and never while
// anything still references them (in particular, never release the root's
// own slice from Gather/Allgather results, which is the caller's data, and
// never release a buffer that a decode returned a view of).
func (c *Comm) Release(buf []float64) {
	c.world.pool.put(buf)
}

// SendRecv sends sendData to dst and receives from src under the same tag,
// without deadlock regardless of ordering (sends never block).
func (c *Comm) SendRecv(dst int, sendData []float64, src, tag int) []float64 {
	c.Send(dst, tag, sendData)
	return c.Recv(src, tag)
}

// Exchange performs the pairwise exchange at the heart of recursive
// doubling: both ranks send their payload to each other under tag and
// return the partner's payload.
func (c *Comm) Exchange(partner, tag int, data []float64) []float64 {
	return c.SendRecv(partner, data, partner, tag)
}
