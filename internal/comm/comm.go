// Package comm implements an in-process message-passing runtime that stands
// in for MPI in the paper's experiments: a World of P ranks, each executed
// on its own goroutine, exchanging typed messages through matched
// send/receive pairs, plus the collective operations the solvers need
// (barrier, broadcast, reduce, allreduce, gather, allgather, exclusive
// scan).
//
// Every rank accumulates communication statistics (message and byte counts)
// and a simulated communication time under a configurable alpha-beta
// (latency-bandwidth) cost model, so experiments can report both measured
// wall-clock times (real goroutine parallelism up to GOMAXPROCS) and
// modeled network costs for processor counts beyond the host's cores.
package comm

import (
	"fmt"
	"runtime/debug"
	"sync"
)

// cascadeMsg marks the secondary panics raised on ranks woken by abort.
const cascadeMsg = "comm: world aborted (another rank panicked)"

// CostModel is the classic alpha-beta model: sending an n-byte message
// costs Alpha + Beta*n seconds of simulated network time on both endpoints.
type CostModel struct {
	Alpha float64 // per-message latency, seconds
	Beta  float64 // per-byte transfer time, seconds
}

// DefaultCostModel approximates a commodity cluster interconnect:
// 1 microsecond latency, 10 GB/s bandwidth.
var DefaultCostModel = CostModel{Alpha: 1e-6, Beta: 1e-10}

// MessageCost returns the modeled time to transfer n bytes.
func (c CostModel) MessageCost(n int) float64 {
	return c.Alpha + c.Beta*float64(n)
}

// Stats accumulates per-rank communication counters.
type Stats struct {
	MsgsSent  int64
	BytesSent int64
	MsgsRecv  int64
	BytesRecv int64
	// SimCommTime is the accumulated alpha-beta time in seconds this rank
	// spent sending and receiving under the World's cost model.
	SimCommTime float64
}

// Add accumulates other into s.
func (s *Stats) Add(other Stats) {
	s.MsgsSent += other.MsgsSent
	s.BytesSent += other.BytesSent
	s.MsgsRecv += other.MsgsRecv
	s.BytesRecv += other.BytesRecv
	s.SimCommTime += other.SimCommTime
}

type msgKey struct {
	src, tag int
}

type message struct {
	data  []float64
	bytes int
}

// mailbox is the per-rank incoming message store with FIFO ordering per
// (source, tag) pair.
type mailbox struct {
	mu      sync.Mutex
	cond    *sync.Cond
	queues  map[msgKey][]message
	aborted bool
}

func newMailbox() *mailbox {
	mb := &mailbox{queues: make(map[msgKey][]message)}
	mb.cond = sync.NewCond(&mb.mu)
	return mb
}

func (mb *mailbox) put(key msgKey, m message) {
	mb.mu.Lock()
	mb.queues[key] = append(mb.queues[key], m)
	mb.mu.Unlock()
	mb.cond.Broadcast()
}

func (mb *mailbox) get(key msgKey) message {
	mb.mu.Lock()
	defer mb.mu.Unlock()
	for len(mb.queues[key]) == 0 {
		if mb.aborted {
			panic("comm: world aborted (another rank panicked)")
		}
		mb.cond.Wait()
	}
	q := mb.queues[key]
	m := q[0]
	if len(q) == 1 {
		delete(mb.queues, key)
	} else {
		mb.queues[key] = q[1:]
	}
	return m
}

// abort wakes every blocked receiver so a panic on one rank cascades
// instead of deadlocking the world.
func (mb *mailbox) abort() {
	mb.mu.Lock()
	mb.aborted = true
	mb.mu.Unlock()
	mb.cond.Broadcast()
}

func (mb *mailbox) clearAbort() {
	mb.mu.Lock()
	mb.aborted = false
	mb.mu.Unlock()
}

// pending returns the number of undelivered messages (for leak checks).
func (mb *mailbox) pending() int {
	mb.mu.Lock()
	defer mb.mu.Unlock()
	n := 0
	for _, q := range mb.queues {
		n += len(q)
	}
	return n
}

// World is a set of P communicating ranks.
type World struct {
	P     int
	Model CostModel

	boxes []*mailbox
	stats []Stats
	mu    sync.Mutex
}

// NewWorld returns a world of p ranks using the default cost model.
func NewWorld(p int) *World {
	if p <= 0 {
		panic(fmt.Sprintf("comm: invalid world size %d", p))
	}
	w := &World{P: p, Model: DefaultCostModel,
		boxes: make([]*mailbox, p), stats: make([]Stats, p)}
	for i := range w.boxes {
		w.boxes[i] = newMailbox()
	}
	return w
}

// Comm is one rank's endpoint in a World. A Comm must only be used from
// the goroutine running that rank.
type Comm struct {
	world *World
	rank  int
	stats Stats
}

// Rank returns this endpoint's rank in [0, Size).
func (c *Comm) Rank() int { return c.rank }

// Size returns the number of ranks in the world.
func (c *Comm) Size() int { return c.world.P }

// Stats returns a copy of this rank's accumulated counters.
func (c *Comm) Stats() Stats { return c.stats }

// ResetStats zeroes this rank's counters.
func (c *Comm) ResetStats() { c.stats = Stats{} }

// Run executes body on p ranks concurrently and blocks until every rank
// returns. A panic on any rank is re-raised on the caller (after all other
// ranks finish or panic) with the rank identified. Per-rank stats are
// retained on the World and can be collected with TotalStats.
func (w *World) Run(body func(c *Comm)) {
	// Reset any abort state left by a previous panicked Run so the world
	// stays usable.
	for _, mb := range w.boxes {
		mb.clearAbort()
	}
	var wg sync.WaitGroup
	panics := make([]any, w.P)
	for r := 0; r < w.P; r++ {
		wg.Add(1)
		go func(rank int) {
			defer wg.Done()
			defer func() {
				if p := recover(); p != nil {
					if s, ok := p.(string); ok && s == cascadeMsg {
						panics[rank] = p
					} else {
						// Preserve the failing rank's stack; the re-panic
						// in Run otherwise hides where it happened.
						panics[rank] = fmt.Sprintf("%v\n%s", p, debug.Stack())
					}
					// Wake every rank blocked on a receive so the whole
					// world unwinds instead of deadlocking.
					for _, mb := range w.boxes {
						mb.abort()
					}
				}
			}()
			c := &Comm{world: w, rank: rank}
			body(c)
			w.mu.Lock()
			w.stats[rank].Add(c.stats)
			w.mu.Unlock()
		}(r)
	}
	wg.Wait()
	// Report the original panic, not the cascade panics it triggered on
	// ranks that were blocked in Recv.
	first, firstCascade := -1, -1
	for r, p := range panics {
		if p == nil {
			continue
		}
		if s, ok := p.(string); ok && s == cascadeMsg {
			if firstCascade == -1 {
				firstCascade = r
			}
			continue
		}
		if first == -1 {
			first = r
		}
	}
	if first == -1 {
		first = firstCascade
	}
	if first != -1 {
		panic(fmt.Sprintf("comm: rank %d panicked: %v", first, panics[first]))
	}
}

// TotalStats returns the sum of all ranks' counters accumulated by Run
// calls since the last ResetTotals.
func (w *World) TotalStats() Stats {
	w.mu.Lock()
	defer w.mu.Unlock()
	var total Stats
	for _, s := range w.stats {
		total.Add(s)
	}
	return total
}

// MaxSimCommTime returns the largest per-rank simulated communication time,
// the quantity that bounds a bulk-synchronous algorithm's modeled runtime.
func (w *World) MaxSimCommTime() float64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	max := 0.0
	for _, s := range w.stats {
		if s.SimCommTime > max {
			max = s.SimCommTime
		}
	}
	return max
}

// ResetTotals zeroes the per-rank counters retained on the World.
func (w *World) ResetTotals() {
	w.mu.Lock()
	defer w.mu.Unlock()
	for i := range w.stats {
		w.stats[i] = Stats{}
	}
}

// Pending returns the number of sent-but-unreceived messages across all
// ranks; a nonzero value after Run indicates a protocol bug.
func (w *World) Pending() int {
	n := 0
	for _, mb := range w.boxes {
		n += mb.pending()
	}
	return n
}

// Send delivers a copy of data to rank dst under the given tag. It never
// blocks (buffering is unbounded); ordering is FIFO per (source, tag).
// Sending to self is allowed.
func (c *Comm) Send(dst, tag int, data []float64) {
	if dst < 0 || dst >= c.world.P {
		panic(fmt.Sprintf("comm: send to invalid rank %d (P=%d)", dst, c.world.P))
	}
	cp := make([]float64, len(data))
	copy(cp, data)
	nbytes := 8 * len(data)
	c.world.boxes[dst].put(msgKey{src: c.rank, tag: tag}, message{data: cp, bytes: nbytes})
	c.stats.MsgsSent++
	c.stats.BytesSent += int64(nbytes)
	c.stats.SimCommTime += c.world.Model.MessageCost(nbytes)
}

// Recv blocks until a message from rank src with the given tag arrives and
// returns its payload.
func (c *Comm) Recv(src, tag int) []float64 {
	if src < 0 || src >= c.world.P {
		panic(fmt.Sprintf("comm: recv from invalid rank %d (P=%d)", src, c.world.P))
	}
	m := c.world.boxes[c.rank].get(msgKey{src: src, tag: tag})
	c.stats.MsgsRecv++
	c.stats.BytesRecv += int64(m.bytes)
	c.stats.SimCommTime += c.world.Model.MessageCost(m.bytes)
	return m.data
}

// SendRecv sends sendData to dst and receives from src under the same tag,
// without deadlock regardless of ordering (sends never block).
func (c *Comm) SendRecv(dst int, sendData []float64, src, tag int) []float64 {
	c.Send(dst, tag, sendData)
	return c.Recv(src, tag)
}

// Exchange performs the pairwise exchange at the heart of recursive
// doubling: both ranks send their payload to each other under tag and
// return the partner's payload.
func (c *Comm) Exchange(partner, tag int, data []float64) []float64 {
	return c.SendRecv(partner, data, partner, tag)
}
