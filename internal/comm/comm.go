// Package comm implements an in-process message-passing runtime that stands
// in for MPI in the paper's experiments: a World of P ranks, each executed
// on its own goroutine, exchanging typed messages through matched
// send/receive pairs, plus the collective operations the solvers need
// (barrier, broadcast, reduce, allreduce, gather, allgather, exclusive
// scan).
//
// Every rank accumulates communication statistics (message and byte counts)
// and a simulated communication time under a configurable alpha-beta
// (latency-bandwidth) cost model, so experiments can report both measured
// wall-clock times (real goroutine parallelism up to GOMAXPROCS) and
// modeled network costs for processor counts beyond the host's cores.
//
// The runtime is allocation-free in steady state: ranks run on persistent
// worker goroutines, message payloads are copied into buffers recycled
// through a per-world free list (receivers return them with Release), and
// mailbox queues keep their capacity across messages. Repeated Run calls on
// a warmed-up world therefore put no pressure on the garbage collector.
package comm

import (
	"fmt"
	"math/bits"
	"runtime"
	"runtime/debug"
	"sync"
)

// cascadeMsg marks the secondary panics raised on ranks woken by abort.
const cascadeMsg = "comm: world aborted (another rank panicked)"

// CostModel is the classic alpha-beta model: sending an n-byte message
// costs Alpha + Beta*n seconds of simulated network time on both endpoints.
type CostModel struct {
	Alpha float64 // per-message latency, seconds
	Beta  float64 // per-byte transfer time, seconds
}

// DefaultCostModel approximates a commodity cluster interconnect:
// 1 microsecond latency, 10 GB/s bandwidth.
var DefaultCostModel = CostModel{Alpha: 1e-6, Beta: 1e-10}

// MessageCost returns the modeled time to transfer n bytes.
func (c CostModel) MessageCost(n int) float64 {
	return c.Alpha + c.Beta*float64(n)
}

// Stats accumulates per-rank communication counters.
type Stats struct {
	MsgsSent  int64
	BytesSent int64
	MsgsRecv  int64
	BytesRecv int64
	// SimCommTime is the accumulated alpha-beta time in seconds this rank
	// spent sending and receiving under the World's cost model.
	SimCommTime float64
}

// Add accumulates other into s.
func (s *Stats) Add(other Stats) {
	s.MsgsSent += other.MsgsSent
	s.BytesSent += other.BytesSent
	s.MsgsRecv += other.MsgsRecv
	s.BytesRecv += other.BytesRecv
	s.SimCommTime += other.SimCommTime
}

type msgKey struct {
	src, tag int
}

type message struct {
	data  []float64
	bytes int
}

// msgQueue is one (source, tag) FIFO. Delivered messages advance head
// instead of re-slicing, so the items array keeps its capacity and a
// drained queue is reset in place — steady-state puts allocate nothing.
type msgQueue struct {
	items []message
	head  int
}

// mailbox is the per-rank incoming message store with FIFO ordering per
// (source, tag) pair.
type mailbox struct {
	mu      sync.Mutex
	cond    *sync.Cond
	queues  map[msgKey]*msgQueue
	aborted bool
}

func newMailbox() *mailbox {
	mb := &mailbox{queues: make(map[msgKey]*msgQueue)}
	mb.cond = sync.NewCond(&mb.mu)
	return mb
}

func (mb *mailbox) put(key msgKey, m message) {
	mb.mu.Lock()
	q := mb.queues[key]
	if q == nil {
		q = new(msgQueue)
		mb.queues[key] = q
	}
	q.items = append(q.items, m)
	mb.mu.Unlock()
	mb.cond.Broadcast()
}

func (mb *mailbox) get(key msgKey) message {
	mb.mu.Lock()
	defer mb.mu.Unlock()
	for {
		q := mb.queues[key]
		if q != nil && q.head < len(q.items) {
			m := q.items[q.head]
			q.items[q.head] = message{} // drop the payload reference
			q.head++
			if q.head == len(q.items) {
				q.items = q.items[:0]
				q.head = 0
			}
			return m
		}
		if mb.aborted {
			panic(cascadeMsg)
		}
		mb.cond.Wait()
	}
}

// abort wakes every blocked receiver so a panic on one rank cascades
// instead of deadlocking the world.
func (mb *mailbox) abort() {
	mb.mu.Lock()
	mb.aborted = true
	mb.mu.Unlock()
	mb.cond.Broadcast()
}

func (mb *mailbox) clearAbort() {
	mb.mu.Lock()
	mb.aborted = false
	mb.mu.Unlock()
}

// pending returns the number of undelivered messages (for leak checks).
func (mb *mailbox) pending() int {
	mb.mu.Lock()
	defer mb.mu.Unlock()
	n := 0
	for _, q := range mb.queues {
		n += len(q.items) - q.head
	}
	return n
}

// bufPool recycles payload buffers in power-of-two size classes. It is a
// typed free list guarded by a mutex (not a sync.Pool) so checkouts box no
// interfaces and steady state allocates nothing.
type bufPool struct {
	mu      sync.Mutex
	classes [48][][]float64
}

func (p *bufPool) get(n int) []float64 {
	if n == 0 {
		return nil
	}
	c := bits.Len(uint(n - 1)) // ceil(log2 n)
	p.mu.Lock()
	list := p.classes[c]
	if k := len(list); k > 0 {
		buf := list[k-1]
		list[k-1] = nil
		p.classes[c] = list[:k-1]
		p.mu.Unlock()
		return buf[:n]
	}
	p.mu.Unlock()
	return make([]float64, n, 1<<c)
}

func (p *bufPool) put(buf []float64) {
	if cap(buf) == 0 {
		return
	}
	c := bits.Len(uint(cap(buf))) - 1 // floor(log2 cap)
	p.mu.Lock()
	p.classes[c] = append(p.classes[c], buf[:cap(buf)])
	p.mu.Unlock()
}

// World is a set of P communicating ranks. The first Run starts one
// persistent worker goroutine per rank; the workers idle between Runs and
// exit when the World is garbage collected.
type World struct {
	P     int
	Model CostModel

	boxes []*mailbox
	stats []Stats
	mu    sync.Mutex

	pool bufPool

	workersOnce sync.Once
	jobs        []chan job
	comms       []*Comm
	panics      []any
	wg          sync.WaitGroup
}

// NewWorld returns a world of p ranks using the default cost model.
func NewWorld(p int) *World {
	if p <= 0 {
		panic(fmt.Sprintf("comm: invalid world size %d", p))
	}
	w := &World{P: p, Model: DefaultCostModel,
		boxes: make([]*mailbox, p), stats: make([]Stats, p)}
	for i := range w.boxes {
		w.boxes[i] = newMailbox()
	}
	return w
}

// Comm is one rank's endpoint in a World. A Comm must only be used from
// the goroutine running that rank.
type Comm struct {
	world   *World
	rank    int
	stats   Stats
	scratch []float64 // persistent encode buffer for the *Into collectives
}

// Rank returns this endpoint's rank in [0, Size).
func (c *Comm) Rank() int { return c.rank }

// Size returns the number of ranks in the world.
func (c *Comm) Size() int { return c.world.P }

// Stats returns a copy of this rank's accumulated counters.
func (c *Comm) Stats() Stats { return c.stats }

// ResetStats zeroes this rank's counters.
func (c *Comm) ResetStats() { c.stats = Stats{} }

// job is one rank's share of a Run, delivered to its persistent worker.
type job struct {
	w    *World
	rank int
	body func(c *Comm)
}

// run executes the job body with the rank's persistent Comm, reproducing
// Run's historical per-goroutine semantics: fresh stats, panic capture with
// stack, world-wide abort so blocked ranks unwind, and a stats merge that
// is skipped when the body panicked.
func (j job) run() {
	w, rank := j.w, j.rank
	defer w.wg.Done()
	defer func() {
		if p := recover(); p != nil {
			if s, ok := p.(string); ok && s == cascadeMsg {
				w.panics[rank] = p
			} else {
				// Preserve the failing rank's stack; the re-panic in Run
				// otherwise hides where it happened.
				w.panics[rank] = fmt.Sprintf("%v\n%s", p, debug.Stack())
			}
			// Wake every rank blocked on a receive so the whole world
			// unwinds instead of deadlocking.
			for _, mb := range w.boxes {
				mb.abort()
			}
		}
	}()
	c := w.comms[rank]
	c.stats = Stats{}
	j.body(c)
	w.mu.Lock()
	w.stats[rank].Add(c.stats)
	w.mu.Unlock()
}

// rankWorker is the persistent per-rank loop. It deliberately holds no
// *World reference while idle (only its two channels), so an unreachable
// World's finalizer can close stop and reap the workers.
func rankWorker(jobs chan job, stop chan struct{}) {
	for {
		select {
		case j := <-jobs:
			j.run()
		case <-stop:
			return
		}
	}
}

// ensureWorkers starts the persistent rank workers on first use.
func (w *World) ensureWorkers() {
	w.workersOnce.Do(func() {
		w.jobs = make([]chan job, w.P)
		w.comms = make([]*Comm, w.P)
		w.panics = make([]any, w.P)
		stop := make(chan struct{})
		for r := 0; r < w.P; r++ {
			w.jobs[r] = make(chan job, 1)
			w.comms[r] = &Comm{world: w, rank: r}
			go rankWorker(w.jobs[r], stop)
		}
		// The closure must not capture w, or the World could never become
		// unreachable and the workers would leak.
		runtime.SetFinalizer(w, func(*World) { close(stop) })
	})
}

// Run executes body on p ranks concurrently and blocks until every rank
// returns. A panic on any rank is re-raised on the caller (after all other
// ranks finish or panic) with the rank identified. Per-rank stats are
// retained on the World and can be collected with TotalStats.
//
// Run dispatches to persistent per-rank workers, so a warmed-up world
// executes it without heap allocation. Runs on one World must be
// sequential: concurrent Run calls would interleave their messages in the
// shared mailboxes.
func (w *World) Run(body func(c *Comm)) {
	w.ensureWorkers()
	// Reset any abort state left by a previous panicked Run so the world
	// stays usable.
	for _, mb := range w.boxes {
		mb.clearAbort()
	}
	for i := range w.panics {
		w.panics[i] = nil
	}
	w.wg.Add(w.P)
	for r := 0; r < w.P; r++ {
		w.jobs[r] <- job{w: w, rank: r, body: body}
	}
	w.wg.Wait()
	// Report the original panic, not the cascade panics it triggered on
	// ranks that were blocked in Recv.
	first, firstCascade := -1, -1
	for r, p := range w.panics {
		if p == nil {
			continue
		}
		if s, ok := p.(string); ok && s == cascadeMsg {
			if firstCascade == -1 {
				firstCascade = r
			}
			continue
		}
		if first == -1 {
			first = r
		}
	}
	if first == -1 {
		first = firstCascade
	}
	if first != -1 {
		panic(fmt.Sprintf("comm: rank %d panicked: %v", first, w.panics[first]))
	}
}

// TotalStats returns the sum of all ranks' counters accumulated by Run
// calls since the last ResetTotals.
func (w *World) TotalStats() Stats {
	w.mu.Lock()
	defer w.mu.Unlock()
	var total Stats
	for _, s := range w.stats {
		total.Add(s)
	}
	return total
}

// MaxSimCommTime returns the largest per-rank simulated communication time,
// the quantity that bounds a bulk-synchronous algorithm's modeled runtime.
func (w *World) MaxSimCommTime() float64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	max := 0.0
	for _, s := range w.stats {
		if s.SimCommTime > max {
			max = s.SimCommTime
		}
	}
	return max
}

// ResetTotals zeroes the per-rank counters retained on the World.
func (w *World) ResetTotals() {
	w.mu.Lock()
	defer w.mu.Unlock()
	for i := range w.stats {
		w.stats[i] = Stats{}
	}
}

// Pending returns the number of sent-but-unreceived messages across all
// ranks; a nonzero value after Run indicates a protocol bug.
func (w *World) Pending() int {
	n := 0
	for _, mb := range w.boxes {
		n += mb.pending()
	}
	return n
}

// Send delivers a copy of data to rank dst under the given tag. It never
// blocks (buffering is unbounded); ordering is FIFO per (source, tag).
// Sending to self is allowed. The copy lives in a pooled buffer that the
// receiver may hand back with Release once done with it.
func (c *Comm) Send(dst, tag int, data []float64) {
	if dst < 0 || dst >= c.world.P {
		panic(fmt.Sprintf("comm: send to invalid rank %d (P=%d)", dst, c.world.P))
	}
	cp := c.world.pool.get(len(data))
	copy(cp, data)
	nbytes := 8 * len(data)
	c.world.boxes[dst].put(msgKey{src: c.rank, tag: tag}, message{data: cp, bytes: nbytes})
	c.stats.MsgsSent++
	c.stats.BytesSent += int64(nbytes)
	c.stats.SimCommTime += c.world.Model.MessageCost(nbytes)
}

// Recv blocks until a message from rank src with the given tag arrives and
// returns its payload. The payload is owned by the caller; callers on a hot
// path should pass it to Release after consuming it so the buffer recycles
// instead of reaching the garbage collector.
func (c *Comm) Recv(src, tag int) []float64 {
	if src < 0 || src >= c.world.P {
		panic(fmt.Sprintf("comm: recv from invalid rank %d (P=%d)", src, c.world.P))
	}
	m := c.world.boxes[c.rank].get(msgKey{src: src, tag: tag})
	c.stats.MsgsRecv++
	c.stats.BytesRecv += int64(m.bytes)
	c.stats.SimCommTime += c.world.Model.MessageCost(m.bytes)
	return m.data
}

// Release returns a payload previously obtained from Recv to the world's
// buffer pool. Releasing is optional — unreleased buffers are simply
// garbage collected — but mandatory discipline applies when it is used:
// only Recv-returned slices may be released, at most once, and never while
// anything still references them (in particular, never release the root's
// own slice from Gather/Allgather results, which is the caller's data, and
// never release a buffer that a decode returned a view of).
func (c *Comm) Release(buf []float64) {
	c.world.pool.put(buf)
}

// SendRecv sends sendData to dst and receives from src under the same tag,
// without deadlock regardless of ordering (sends never block).
func (c *Comm) SendRecv(dst int, sendData []float64, src, tag int) []float64 {
	c.Send(dst, tag, sendData)
	return c.Recv(src, tag)
}

// Exchange performs the pairwise exchange at the heart of recursive
// doubling: both ranks send their payload to each other under tag and
// return the partner's payload.
func (c *Comm) Exchange(partner, tag int, data []float64) []float64 {
	return c.SendRecv(partner, data, partner, tag)
}
