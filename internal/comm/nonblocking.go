package comm

// Request represents an outstanding non-blocking receive. Sends in this
// runtime are always asynchronous (buffering is unbounded), so ISend
// completes immediately; IRecv returns a Request whose Wait blocks until
// the matching message arrives.
type Request struct {
	c    *Comm
	src  int
	tag  int
	done bool
	data []float64
}

// ISend is the non-blocking send. In this runtime Send already never
// blocks, so ISend is Send; it exists so ported MPI code keeps its shape.
func (c *Comm) ISend(dst, tag int, data []float64) {
	c.Send(dst, tag, data)
}

// IRecv posts a non-blocking receive. The message is claimed from the
// mailbox at Wait time; posting order between requests with the same
// (source, tag) determines matching order only through their Wait order,
// so callers should Wait in posting order for deterministic matching
// (the usual MPI guidance).
func (c *Comm) IRecv(src, tag int) *Request {
	if src < 0 || src >= c.world.P {
		c.throwf(ErrInvalidRank, "comm: irecv from rank %d (P=%d)", src, c.world.P)
	}
	return &Request{c: c, src: src, tag: tag}
}

// Wait blocks until the request's message is available and returns its
// payload. Calling Wait twice returns the same payload.
func (r *Request) Wait() []float64 {
	if !r.done {
		r.data = r.c.Recv(r.src, r.tag)
		r.done = true
	}
	return r.data
}

// Test reports whether the message has already arrived, claiming it if
// so. After Test returns true, Wait returns immediately.
func (r *Request) Test() bool {
	if r.done {
		return true
	}
	mb := r.c.world.boxes[r.c.rank]
	mb.mu.Lock()
	q := mb.queues[msgKey{src: r.src, tag: r.tag}]
	avail := q != nil && q.head < len(q.items)
	mb.mu.Unlock()
	if avail {
		r.Wait()
	}
	return r.done
}

// WaitAll waits on every request in order.
func WaitAll(reqs ...*Request) [][]float64 {
	out := make([][]float64, len(reqs))
	for i, r := range reqs {
		out[i] = r.Wait()
	}
	return out
}

// Alltoall exchanges personalized data: rank r sends data[q] to rank q
// and returns the slice of pieces received, indexed by source rank.
// Payload lengths may differ per pair.
func (c *Comm) Alltoall(data [][]float64) [][]float64 {
	p := c.Size()
	if len(data) != p {
		c.throwf(ErrLengthMismatch, "comm: Alltoall needs %d pieces, got %d", p, len(data))
	}
	out := make([][]float64, p)
	for q := 0; q < p; q++ {
		c.Send(q, tagAlltoall, data[q])
	}
	for q := 0; q < p; q++ {
		out[q] = c.Recv(q, tagAlltoall)
	}
	return out
}

// ReduceScatter reduces data elementwise across all ranks with op, then
// scatters the result: rank r receives the chunk counts[r] long starting
// at offset sum(counts[:r]). len(data) must equal sum(counts) on every
// rank. Implemented as Reduce at rank 0 followed by a scatter, preserving
// the ascending-rank combine order.
func (c *Comm) ReduceScatter(data []float64, counts []int, op ReduceOp) []float64 {
	p := c.Size()
	if len(counts) != p {
		c.throwf(ErrLengthMismatch, "comm: ReduceScatter needs %d counts, got %d", p, len(counts))
	}
	total := 0
	for _, n := range counts {
		total += n
	}
	if total != len(data) {
		c.throwf(ErrLengthMismatch, "comm: ReduceScatter counts sum %d != len(data) %d", total, len(data))
	}
	full := c.Reduce(0, data, op)
	if c.Rank() == 0 {
		off := 0
		for q := 0; q < p; q++ {
			if q == 0 {
				off += counts[0]
				continue
			}
			c.Send(q, tagReduceScatter, full[off:off+counts[q]])
			off += counts[q]
		}
		return full[:counts[0]]
	}
	return c.Recv(0, tagReduceScatter)
}

// Scatter distributes root's pieces: rank q receives pieces[q]. Non-root
// ranks pass nil.
func (c *Comm) Scatter(root int, pieces [][]float64) []float64 {
	p := c.Size()
	if c.Rank() == root {
		if len(pieces) != p {
			c.throwf(ErrLengthMismatch, "comm: Scatter needs %d pieces, got %d", p, len(pieces))
		}
		for q := 0; q < p; q++ {
			if q == root {
				continue
			}
			c.Send(q, tagScatter, pieces[q])
		}
		return pieces[root]
	}
	return c.Recv(root, tagScatter)
}

const (
	tagAlltoall = 1<<30 + 100 + iota
	tagReduceScatter
	tagScatter
)
