package comm

import (
	"fmt"
	"testing"
)

// Substrate microbenchmarks for the message-passing runtime: the per-call
// overheads here bound how fine-grained the solvers' communication can be.

func BenchmarkSendRecv(b *testing.B) {
	for _, words := range []int{1, 64, 4096} {
		b.Run(fmt.Sprintf("words=%d", words), func(b *testing.B) {
			w := NewWorld(2)
			payload := make([]float64, words)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				w.Run(func(c *Comm) {
					if c.Rank() == 0 {
						c.Send(1, 0, payload)
					} else {
						c.Recv(0, 0)
					}
				})
			}
			b.SetBytes(int64(8 * words))
		})
	}
}

func BenchmarkAllreduce(b *testing.B) {
	for _, p := range []int{2, 8, 32} {
		b.Run(fmt.Sprintf("P=%d", p), func(b *testing.B) {
			w := NewWorld(p)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				w.Run(func(c *Comm) {
					c.Allreduce([]float64{float64(c.Rank())}, OpSum)
				})
			}
		})
	}
}

func BenchmarkExScan(b *testing.B) {
	for _, p := range []int{4, 16} {
		b.Run(fmt.Sprintf("P=%d", p), func(b *testing.B) {
			w := NewWorld(p)
			payload := make([]float64, 256)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				w.Run(func(c *Comm) {
					c.ExScan(payload, OpSum)
				})
			}
		})
	}
}

// BenchmarkMailboxWakeups measures mailbox contention: rank 0 parks on one
// (source, tag) queue while a flood of messages lands on its other queues.
// With the per-queue condition variables a put wakes only a receiver
// waiting on that queue, so the flood causes zero spurious wakeups of the
// parked rank; the old mailbox-wide Broadcast woke it once per message.
func BenchmarkMailboxWakeups(b *testing.B) {
	const (
		senders  = 7
		perRank  = 16
		lastRank = senders + 1
	)
	w := NewWorld(senders + 2)
	payload := make([]float64, 8)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		w.Run(func(c *Comm) {
			switch r := c.Rank(); {
			case r == 0:
				// Park on the release message while the flood arrives on
				// the senders' queues, then drain the flood.
				c.Release(c.Recv(lastRank, 1))
				for s := 1; s <= senders; s++ {
					for k := 0; k < perRank; k++ {
						c.Release(c.Recv(s, 0))
					}
				}
			case r <= senders:
				for k := 0; k < perRank; k++ {
					c.Send(0, 0, payload)
				}
				c.Send(lastRank, 2, nil)
			default:
				// Release rank 0 only after every sender has flooded it.
				for s := 1; s <= senders; s++ {
					c.Recv(s, 2)
				}
				c.Send(0, 1, nil)
			}
		})
	}
}

func BenchmarkWorldSpawn(b *testing.B) {
	// The fixed cost of one collective step: spawning and joining ranks.
	for _, p := range []int{4, 32} {
		b.Run(fmt.Sprintf("P=%d", p), func(b *testing.B) {
			w := NewWorld(p)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				w.Run(func(c *Comm) {})
			}
		})
	}
}
