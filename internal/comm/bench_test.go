package comm

import (
	"fmt"
	"testing"
)

// Substrate microbenchmarks for the message-passing runtime: the per-call
// overheads here bound how fine-grained the solvers' communication can be.

func BenchmarkSendRecv(b *testing.B) {
	for _, words := range []int{1, 64, 4096} {
		b.Run(fmt.Sprintf("words=%d", words), func(b *testing.B) {
			w := NewWorld(2)
			payload := make([]float64, words)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				w.Run(func(c *Comm) {
					if c.Rank() == 0 {
						c.Send(1, 0, payload)
					} else {
						c.Recv(0, 0)
					}
				})
			}
			b.SetBytes(int64(8 * words))
		})
	}
}

func BenchmarkAllreduce(b *testing.B) {
	for _, p := range []int{2, 8, 32} {
		b.Run(fmt.Sprintf("P=%d", p), func(b *testing.B) {
			w := NewWorld(p)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				w.Run(func(c *Comm) {
					c.Allreduce([]float64{float64(c.Rank())}, OpSum)
				})
			}
		})
	}
}

func BenchmarkExScan(b *testing.B) {
	for _, p := range []int{4, 16} {
		b.Run(fmt.Sprintf("P=%d", p), func(b *testing.B) {
			w := NewWorld(p)
			payload := make([]float64, 256)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				w.Run(func(c *Comm) {
					c.ExScan(payload, OpSum)
				})
			}
		})
	}
}

func BenchmarkWorldSpawn(b *testing.B) {
	// The fixed cost of one collective step: spawning and joining ranks.
	for _, p := range []int{4, 32} {
		b.Run(fmt.Sprintf("P=%d", p), func(b *testing.B) {
			w := NewWorld(p)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				w.Run(func(c *Comm) {})
			}
		})
	}
}
