// Deterministic, seeded fault injection for chaos testing the runtime and
// the solvers above it.
//
// A FaultPlan installs hooks in Send/Recv (and hence every collective,
// which is built from them): messages can be delayed, dropped, duplicated,
// or corrupted, and a chosen rank can be crashed or stalled at a chosen
// operation. Decisions are drawn from per-rank PRNGs seeded from the plan,
// so a given (plan, program) pair replays identically.
//
// Recovery model: while a plan is installed every message carries a
// per-(src, dst, tag) sequence number and a checksum of its pristine
// payload. Receivers silently discard duplicates, detect holes (a dropped
// message) and corruption, and pull the pristine copy back from the
// injector's lost-message store — the in-process stand-in for a sender
// retransmit buffer. Losses are therefore recoverable without any solver
// cooperation; unrecoverable situations surface as ErrRecvTimeout,
// ErrInjectedCrash, or a watchdog DeadlockError.
package comm

import (
	"fmt"
	"math"
	"math/rand"
	"sync"
	"time"
)

// FaultPlan describes one deterministic fault scenario. Probabilities are
// per message in [0, 1]; Drop+Corrupt+Dup should not exceed 1 (they are
// drawn from one uniform sample, in that priority order). The zero plan
// injects nothing but still enables sequencing/checksums.
type FaultPlan struct {
	Seed int64

	Drop    float64 // message vanishes in flight (recoverable via retransmit)
	Dup     float64 // message delivered twice
	Corrupt float64 // payload bits flipped in flight (detected by checksum)

	Delay    float64       // probability a message is delayed at the sender
	MaxDelay time.Duration // upper bound on the injected delay

	// CrashRank/CrashAtOp abort the given rank with ErrInjectedCrash at its
	// CrashAtOp'th send/recv operation (1-based; 0 disables).
	CrashRank int
	CrashAtOp int

	// StallRank/StallAtOp park the given rank at its StallAtOp'th
	// operation for StallFor (0 = until the world aborts, which feeds the
	// watchdog a guaranteed no-progress state).
	StallRank int
	StallAtOp int
	StallFor  time.Duration
}

// sendKey identifies one directed (dst, tag) message stream for sequence
// numbering on the sender side.
type sendKey struct {
	dst, tag int
}

// lostKey addresses the injector's lost-message store.
type lostKey struct {
	dst int
	key msgKey
}

// faultState is the installed injector: the plan, per-rank PRNGs, and the
// store of pristine copies of dropped/corrupted messages.
type faultState struct {
	plan FaultPlan
	rngs []*rand.Rand

	mu   sync.Mutex
	lost map[lostKey][]message
}

// SetFaultPlan installs (or with nil, removes) a fault plan. It must be
// called while no Run is active; install the plan before the first Run so
// every message stream is sequenced from the start. With no plan installed
// the fault hooks are a nil check — the steady-state solve paths stay
// allocation-free.
func (w *World) SetFaultPlan(p *FaultPlan) {
	w.ensureWorkers()
	if p == nil {
		w.faults = nil
		return
	}
	fs := &faultState{plan: *p, lost: make(map[lostKey][]message)}
	fs.rngs = make([]*rand.Rand, w.P)
	for r := range fs.rngs {
		mix := (uint64(r) + 1) * 0x9e3779b97f4a7c15
		fs.rngs[r] = rand.New(rand.NewSource(p.Seed ^ int64(mix>>1)))
	}
	w.faults = fs
	for _, c := range w.comms {
		c.opCount = 0
	}
}

// beginRun resets receiver sequence expectations and sender counters for a
// fresh Run. Lost messages from a previous run are returned to the pool.
func (fs *faultState) beginRun(w *World) {
	fs.mu.Lock()
	for k, list := range fs.lost {
		for _, m := range list {
			w.pool.put(m.data)
		}
		delete(fs.lost, k)
	}
	fs.mu.Unlock()
	for _, mb := range w.boxes {
		mb.resetSeq()
	}
	for _, c := range w.comms {
		for k := range c.sendSeq {
			delete(c.sendSeq, k)
		}
	}
}

// stash files a pristine message in the lost store for later retransmit.
func (fs *faultState) stash(dst int, key msgKey, m message) {
	fs.mu.Lock()
	lk := lostKey{dst: dst, key: key}
	fs.lost[lk] = append(fs.lost[lk], m)
	fs.mu.Unlock()
}

// retransmit restores the message the receiver is missing (the one with
// the queue's expected sequence number) to the front of its queue. It
// reports whether anything was restored.
func (fs *faultState) retransmit(mb *mailbox, key msgKey) bool {
	want := mb.expectOf(key)
	lk := lostKey{dst: mb.rank, key: key}
	fs.mu.Lock()
	list := fs.lost[lk]
	found := -1
	for i, m := range list {
		if m.seq == want {
			found = i
			break
		}
	}
	if found == -1 {
		fs.mu.Unlock()
		return false
	}
	m := list[found]
	fs.lost[lk] = append(list[:found], list[found+1:]...)
	fs.mu.Unlock()
	mb.pushFront(key, m)
	return true
}

// send is the faulty delivery path, replacing the direct put in Comm.Send
// while a plan is installed.
func (fs *faultState) send(c *Comm, dst, tag int, data []float64, nbytes int) {
	w := c.world
	rng := fs.rngs[c.rank]
	if c.sendSeq == nil {
		c.sendSeq = make(map[sendKey]uint64)
	}
	sk := sendKey{dst: dst, tag: tag}
	seq := c.sendSeq[sk] + 1
	c.sendSeq[sk] = seq

	cp := w.pool.get(len(data))
	copy(cp, data)
	m := message{data: cp, bytes: nbytes, seq: seq, sum: payloadSum(cp)}
	key := msgKey{src: c.rank, tag: tag}

	if fs.plan.Delay > 0 && fs.plan.MaxDelay > 0 && rng.Float64() < fs.plan.Delay {
		// Sender-side delay: this rank's later sends to the same queue can
		// only happen after the sleep, so per-queue FIFO (and with it
		// sequence order) is preserved.
		time.Sleep(time.Duration(rng.Int63n(int64(fs.plan.MaxDelay)) + 1))
	}
	u := rng.Float64()
	switch {
	case u < fs.plan.Drop:
		fs.stash(dst, key, m)
		return
	case u < fs.plan.Drop+fs.plan.Corrupt:
		pristine := w.pool.get(len(cp))
		copy(pristine, cp)
		fs.stash(dst, key, message{data: pristine, bytes: nbytes, seq: seq, sum: m.sum})
		corruptPayload(rng, cp)
		w.boxes[dst].put(key, m)
		return
	case u < fs.plan.Drop+fs.plan.Corrupt+fs.plan.Dup:
		dup := w.pool.get(len(cp))
		copy(dup, cp)
		w.boxes[dst].put(key, m)
		w.boxes[dst].put(key, message{data: dup, bytes: nbytes, seq: seq, sum: m.sum})
		return
	}
	w.boxes[dst].put(key, m)
}

// faultPoint numbers this rank's operations and fires any crash/stall the
// plan targets at the current one. It is a nil check when no plan is
// installed.
func (c *Comm) faultPoint() {
	fs := c.world.faults
	if fs == nil {
		return
	}
	c.opCount++
	p := &fs.plan
	if p.CrashAtOp > 0 && c.rank == p.CrashRank && c.opCount == p.CrashAtOp {
		Throw(fmt.Errorf("comm: rank %d at op %d: %w", c.rank, c.opCount, ErrInjectedCrash))
	}
	if p.StallAtOp > 0 && c.rank == p.StallRank && c.opCount == p.StallAtOp {
		c.stall(p.StallFor)
	}
}

// stall parks the rank in an opStall state for d (or until the world
// aborts when d == 0), polling the abort flag so a watchdog-broken world
// still unwinds this rank.
func (c *Comm) stall(d time.Duration) {
	w := c.world
	mb := w.boxes[c.rank]
	w.setBlocked(c.rank, opStall, -1, -1)
	var deadline time.Time
	if d > 0 {
		deadline = time.Now().Add(d)
	}
	for {
		if mb.isAborted() {
			//lint:ignore panicpolicy cascadeAbort is the sanctioned control-flow signal for abort victims; job.run swallows it.
			panic(cascadeAbort{})
		}
		if !deadline.IsZero() && !time.Now().Before(deadline) {
			break
		}
		time.Sleep(time.Millisecond)
	}
	w.setBlocked(c.rank, opRunning, -1, -1)
}

// payloadSum is an FNV-style checksum over the payload's bit patterns,
// mixed with the length so truncation is detectable.
func payloadSum(data []float64) uint64 {
	h := uint64(14695981039346656037)
	for _, v := range data {
		h ^= math.Float64bits(v)
		h *= 1099511628211
	}
	return h ^ uint64(len(data))
}

// corruptPayload flips one mantissa bit of one element: a silent
// single-bit flight error, finite in, finite out.
func corruptPayload(rng *rand.Rand, data []float64) {
	if len(data) == 0 {
		return
	}
	i := rng.Intn(len(data))
	data[i] = math.Float64frombits(math.Float64bits(data[i]) ^ (1 << uint(rng.Intn(52))))
}
