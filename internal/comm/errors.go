// Typed error vocabulary for the comm runtime.
//
// Rank bodies run inside World.Run on worker goroutines; the only way out of
// a deeply nested communication primitive is to unwind the stack. Throw
// panics with a private non-error wrapper that the Run recovery layer
// converts into a *RankError, so callers of Run see typed errors while rank
// code keeps panic-free signatures. The sentinels below are the causes the
// runtime itself raises; solvers wrap their own domain errors (for example
// mat.ErrSingular) through the same channel.
package comm

import (
	"errors"
	"fmt"
	"strings"
)

// Sentinel causes raised by the runtime. Match with errors.Is against the
// error returned by World.Run.
var (
	// ErrMalformedPayload reports a message payload that does not decode as
	// the expected wire format (truncated header, inconsistent dimensions).
	ErrMalformedPayload = errors.New("comm: malformed payload")

	// ErrInvalidRank reports a send/recv/collective addressed to a rank
	// outside [0, P).
	ErrInvalidRank = errors.New("comm: invalid rank")

	// ErrRecvTimeout reports a receive that exhausted its retry budget
	// without the expected message arriving (see Resilience).
	ErrRecvTimeout = errors.New("comm: recv timeout")

	// ErrInjectedCrash is the cause carried by a *RankError when a FaultPlan
	// crashed the rank on purpose.
	ErrInjectedCrash = errors.New("comm: injected crash")

	// ErrLengthMismatch reports collective participants contributing
	// vectors of different lengths.
	ErrLengthMismatch = errors.New("comm: length mismatch")

	// ErrCanceled reports a Run aborted by its context (RunContext or
	// SetRunContext): a deadline passed or the caller canceled mid-run.
	// The returned error also wraps ctx.Err(), so errors.Is sees both this
	// sentinel and context.DeadlineExceeded / context.Canceled.
	ErrCanceled = errors.New("comm: run canceled")
)

// RankError is the typed failure World.Run returns when a rank body throws
// or panics. Err is the underlying cause (unwrappable with errors.Is/As);
// Stack is the failing goroutine's stack at the throw site.
type RankError struct {
	Rank  int
	Err   error
	Stack []byte
}

func (e *RankError) Error() string {
	return fmt.Sprintf("comm: rank %d failed: %v", e.Rank, e.Err)
}

// Unwrap exposes the cause to errors.Is / errors.As.
func (e *RankError) Unwrap() error { return e.Err }

// BlockedOp describes one rank's blocked operation at the moment a deadlock
// was declared.
type BlockedOp struct {
	Rank int
	Op   string // "recv" or "stall"
	Src  int    // sender the rank is waiting on (recv only, else -1)
	Tag  int    // tag the rank is waiting on (recv only, else -1)
}

func (b BlockedOp) String() string {
	if b.Op == "recv" {
		return fmt.Sprintf("rank %d blocked in recv(src=%d, tag=%d)", b.Rank, b.Src, b.Tag)
	}
	return fmt.Sprintf("rank %d blocked in %s", b.Rank, b.Op)
}

// DeadlockError is returned by World.Run when the watchdog observes a
// no-progress state: every live rank blocked with no message deliveries for
// the configured window. Blocked lists each still-blocked rank's operation.
type DeadlockError struct {
	Blocked []BlockedOp
}

func (e *DeadlockError) Error() string {
	var sb strings.Builder
	sb.WriteString("comm: deadlock detected")
	for i, b := range e.Blocked {
		if i == 0 {
			sb.WriteString(": ")
		} else {
			sb.WriteString("; ")
		}
		sb.WriteString(b.String())
	}
	return sb.String()
}

// rankAbort carries a typed error up a rank goroutine's stack. It is
// deliberately not an error itself: nothing should handle it except the
// recovery layer in job.run.
type rankAbort struct {
	err error
}

// cascadeAbort unwinds ranks that were woken by a world abort. Such ranks
// are victims of another rank's failure (or of the watchdog) and must not
// report an error of their own.
type cascadeAbort struct{}

// Throw aborts the calling rank's body with a typed cause. It must only be
// called from inside a World.Run body (any goroutine depth); World.Run
// returns the cause wrapped in a *RankError. Control does not return.
func Throw(err error) {
	//lint:ignore panicpolicy Throw is the one sanctioned unwind point; job.run recovers it into a *RankError.
	panic(rankAbort{err: err})
}

// throwf throws a formatted error wrapping cause, tagged with the rank.
func (c *Comm) throwf(cause error, format string, args ...any) {
	Throw(fmt.Errorf(format+": %w", append(args, cause)...))
}
