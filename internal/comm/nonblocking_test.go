package comm

import (
	"errors"
	"testing"
	"time"
)

func TestISendIRecvWait(t *testing.T) {
	w := NewWorld(2)
	w.Run(func(c *Comm) {
		if c.Rank() == 0 {
			c.ISend(1, 4, []float64{1, 2})
			c.ISend(1, 4, []float64{3})
		} else {
			r1 := c.IRecv(0, 4)
			r2 := c.IRecv(0, 4)
			// Wait in posting order: FIFO matching.
			if got := r1.Wait(); len(got) != 2 || got[0] != 1 {
				panic("first message wrong")
			}
			if got := r2.Wait(); len(got) != 1 || got[0] != 3 {
				panic("second message wrong")
			}
			// Repeated Wait returns the same payload.
			if got := r1.Wait(); got[1] != 2 {
				panic("Wait not idempotent")
			}
		}
	})
}

func TestRequestTest(t *testing.T) {
	w := NewWorld(2)
	w.Run(func(c *Comm) {
		if c.Rank() == 0 {
			req := c.IRecv(1, 5)
			if req.Test() {
				// Plausible only if rank 1 already ran; accept either, but
				// after a successful Test, Wait must not block.
				_ = req.Wait()
				return
			}
			for !req.Test() {
				time.Sleep(time.Millisecond)
			}
			if got := req.Wait(); got[0] != 9 {
				panic("Test-claimed payload wrong")
			}
		} else {
			time.Sleep(5 * time.Millisecond)
			c.Send(0, 5, []float64{9})
		}
	})
}

func TestIRecvInvalidRank(t *testing.T) {
	w := NewWorld(2)
	err := w.Run(func(c *Comm) {
		if c.Rank() == 0 {
			c.IRecv(7, 0)
		}
	})
	if !errors.Is(err, ErrInvalidRank) {
		t.Fatalf("err = %v, want ErrInvalidRank", err)
	}
}

func TestWaitAll(t *testing.T) {
	w := NewWorld(3)
	w.Run(func(c *Comm) {
		if c.Rank() == 0 {
			r1 := c.IRecv(1, 6)
			r2 := c.IRecv(2, 6)
			got := WaitAll(r1, r2)
			if got[0][0] != 1 || got[1][0] != 2 {
				panic("WaitAll payloads wrong")
			}
		} else {
			c.Send(0, 6, []float64{float64(c.Rank())})
		}
	})
}

func TestAlltoall(t *testing.T) {
	for _, p := range []int{1, 2, 3, 5} {
		w := NewWorld(p)
		w.Run(func(c *Comm) {
			// Rank r sends [r, q] to rank q, with length r+1 padding.
			pieces := make([][]float64, p)
			for q := 0; q < p; q++ {
				pieces[q] = make([]float64, c.Rank()+1)
				pieces[q][0] = float64(c.Rank()*10 + q)
			}
			got := c.Alltoall(pieces)
			for q := 0; q < p; q++ {
				if len(got[q]) != q+1 || got[q][0] != float64(q*10+c.Rank()) {
					panic("alltoall piece wrong")
				}
			}
		})
		if w.Pending() != 0 {
			t.Fatalf("P=%d: %d leaked messages", p, w.Pending())
		}
	}
}

func TestAlltoallWrongPieceCount(t *testing.T) {
	w := NewWorld(2)
	err := w.Run(func(c *Comm) {
		c.Alltoall(make([][]float64, 1))
	})
	if !errors.Is(err, ErrLengthMismatch) {
		t.Fatalf("err = %v, want ErrLengthMismatch", err)
	}
}

func TestReduceScatter(t *testing.T) {
	for _, p := range []int{1, 2, 4, 5} {
		w := NewWorld(p)
		counts := make([]int, p)
		total := 0
		for q := range counts {
			counts[q] = q + 1
			total += q + 1
		}
		w.Run(func(c *Comm) {
			data := make([]float64, total)
			for i := range data {
				data[i] = float64(i) // every rank contributes the same
			}
			got := c.ReduceScatter(data, counts, OpSum)
			if len(got) != c.Rank()+1 {
				panic("reduce-scatter chunk length wrong")
			}
			// Offset of this rank's chunk.
			off := 0
			for q := 0; q < c.Rank(); q++ {
				off += counts[q]
			}
			for i, v := range got {
				if v != float64(p)*float64(off+i) {
					panic("reduce-scatter value wrong")
				}
			}
		})
	}
}

func TestReduceScatterBadCounts(t *testing.T) {
	w := NewWorld(2)
	err := w.Run(func(c *Comm) {
		c.ReduceScatter([]float64{1, 2, 3}, []int{1, 1}, OpSum)
	})
	if !errors.Is(err, ErrLengthMismatch) {
		t.Fatalf("err = %v, want ErrLengthMismatch", err)
	}
}

func TestScatter(t *testing.T) {
	for _, p := range []int{1, 2, 4} {
		for root := 0; root < p; root++ {
			w := NewWorld(p)
			w.Run(func(c *Comm) {
				var pieces [][]float64
				if c.Rank() == root {
					pieces = make([][]float64, p)
					for q := range pieces {
						pieces[q] = []float64{float64(q * 7)}
					}
				}
				got := c.Scatter(root, pieces)
				if len(got) != 1 || got[0] != float64(c.Rank()*7) {
					panic("scatter piece wrong")
				}
			})
		}
	}
}
