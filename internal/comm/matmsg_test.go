package comm

import (
	"errors"
	"math/rand"
	"testing"
	"testing/quick"

	"blocktri/internal/mat"
)

func TestEncodeDecodeMatrix(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	m := mat.Random(3, 5, rng)
	got := DecodeMatrix(EncodeMatrix(m))
	if !got.Equal(m) {
		t.Fatal("round trip mismatch")
	}
}

func TestEncodeMatrixFromView(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	big := mat.Random(6, 6, rng)
	v := big.View(1, 2, 3, 3)
	got := DecodeMatrix(EncodeMatrix(v))
	if !got.Equal(v.Clone()) {
		t.Fatal("view encode mismatch")
	}
}

func TestDecodeMatrixRejectsMalformed(t *testing.T) {
	cases := [][]float64{
		{2, 2, 1, 2, 3}, // says 2x2 but only 3 values
		{2},             // no header
		{-1, -4, 1, 2, 3, 4},
		nil,
	}
	for _, p := range cases {
		if _, err := TryDecodeMatrix(p); !errors.Is(err, ErrMalformedPayload) {
			t.Fatalf("TryDecodeMatrix(%v) err = %v, want ErrMalformedPayload", p, err)
		}
	}
}

func TestEncodeDecodeMatrices(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	a, b, c := mat.Random(2, 2, rng), mat.Random(1, 4, rng), mat.Random(3, 1, rng)
	out := DecodeMatrices(EncodeMatrices(a, b, c))
	if len(out) != 3 || !out[0].Equal(a) || !out[1].Equal(b) || !out[2].Equal(c) {
		t.Fatal("multi-matrix round trip mismatch")
	}
}

func TestDecodeMatricesRejectsTrailing(t *testing.T) {
	p := EncodeMatrices(mat.Identity(2))
	p = append(p, 99)
	if _, err := TryDecodeMatrices(p); !errors.Is(err, ErrMalformedPayload) {
		t.Fatalf("err = %v, want ErrMalformedPayload", err)
	}
	if _, err := TryDecodeMatrices([]float64{3, 2, 2, 1}); !errors.Is(err, ErrMalformedPayload) {
		t.Fatalf("truncated bundle err = %v, want ErrMalformedPayload", err)
	}
}

func TestSendRecvMatrixAcrossRanks(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	m := mat.Random(4, 4, rng)
	w := NewWorld(2)
	w.Run(func(c *Comm) {
		if c.Rank() == 0 {
			c.SendMatrix(1, 11, m)
		} else {
			got := c.RecvMatrix(0, 11)
			if !got.Equal(m) {
				panic("matrix corrupted in transit")
			}
		}
	})
}

func TestExchangeMatrices(t *testing.T) {
	w := NewWorld(2)
	w.Run(func(c *Comm) {
		mine := mat.Identity(2)
		mat.Scale(mine, float64(c.Rank()+1))
		got := c.ExchangeMatrices(c.Rank()^1, 12, mine, mine)
		want := mat.Identity(2)
		mat.Scale(want, float64((c.Rank()^1)+1))
		if len(got) != 2 || !got[0].Equal(want) || !got[1].Equal(want) {
			panic("exchange bundle wrong")
		}
	})
}

func TestBcastMatrix(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	m := mat.Random(3, 3, rng)
	for _, p := range []int{1, 3, 4} {
		w := NewWorld(p)
		w.Run(func(c *Comm) {
			var in *mat.Matrix
			if c.Rank() == 1%p {
				in = m
			}
			got := c.BcastMatrix(1%p, in)
			if !got.Equal(m) {
				panic("bcast matrix wrong")
			}
		})
	}
}

// Property: encode/decode of random bundles round-trips exactly.
func TestEncodeMatricesProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 1 + r.Intn(5)
		ms := make([]*mat.Matrix, n)
		for i := range ms {
			ms[i] = mat.Random(1+r.Intn(6), 1+r.Intn(6), r)
		}
		out := DecodeMatrices(EncodeMatrices(ms...))
		if len(out) != n {
			return false
		}
		for i := range ms {
			if !out[i].Equal(ms[i]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
