package comm

import (
	"errors"
	"math"
	"strings"
	"sync/atomic"
	"testing"
)

func TestSendRecvBasic(t *testing.T) {
	w := NewWorld(2)
	w.Run(func(c *Comm) {
		if c.Rank() == 0 {
			c.Send(1, 7, []float64{1, 2, 3})
		} else {
			got := c.Recv(0, 7)
			if len(got) != 3 || got[0] != 1 || got[2] != 3 {
				panic("payload corrupted")
			}
		}
	})
	if w.Pending() != 0 {
		t.Fatalf("%d messages leaked", w.Pending())
	}
}

func TestSendCopiesPayload(t *testing.T) {
	w := NewWorld(2)
	w.Run(func(c *Comm) {
		if c.Rank() == 0 {
			buf := []float64{42}
			c.Send(1, 0, buf)
			buf[0] = -1 // mutate after send; receiver must still see 42
		} else {
			if got := c.Recv(0, 0); got[0] != 42 {
				panic("send did not copy payload")
			}
		}
	})
}

func TestFIFOPerSourceTag(t *testing.T) {
	w := NewWorld(2)
	w.Run(func(c *Comm) {
		if c.Rank() == 0 {
			for i := 0; i < 100; i++ {
				c.Send(1, 5, []float64{float64(i)})
			}
		} else {
			for i := 0; i < 100; i++ {
				if got := c.Recv(0, 5); got[0] != float64(i) {
					panic("FIFO order violated")
				}
			}
		}
	})
}

func TestTagsSegregateMessages(t *testing.T) {
	w := NewWorld(2)
	w.Run(func(c *Comm) {
		if c.Rank() == 0 {
			c.Send(1, 1, []float64{10})
			c.Send(1, 2, []float64{20})
		} else {
			// Receive in the opposite order of sending: tags must match.
			if got := c.Recv(0, 2); got[0] != 20 {
				panic("tag 2 mismatched")
			}
			if got := c.Recv(0, 1); got[0] != 10 {
				panic("tag 1 mismatched")
			}
		}
	})
}

func TestSendToSelf(t *testing.T) {
	w := NewWorld(1)
	w.Run(func(c *Comm) {
		c.Send(0, 3, []float64{9})
		if got := c.Recv(0, 3); got[0] != 9 {
			panic("self-send failed")
		}
	})
}

func TestInvalidRankReturnsTypedError(t *testing.T) {
	w := NewWorld(2)
	err := w.Run(func(c *Comm) {
		if c.Rank() == 0 {
			c.Send(5, 0, nil)
		}
	})
	if !errors.Is(err, ErrInvalidRank) {
		t.Fatalf("err = %v, want ErrInvalidRank", err)
	}
	var re *RankError
	if !errors.As(err, &re) || re.Rank != 0 {
		t.Fatalf("err = %v, want *RankError on rank 0", err)
	}
}

func TestRunConvertsPanicToRankError(t *testing.T) {
	w := NewWorld(3)
	err := w.Run(func(c *Comm) {
		if c.Rank() == 2 {
			panic("boom")
		}
	})
	var re *RankError
	if !errors.As(err, &re) {
		t.Fatalf("err = %v, want *RankError", err)
	}
	if re.Rank != 2 || !strings.Contains(re.Err.Error(), "boom") {
		t.Fatalf("RankError = rank %d cause %v, want rank 2 / boom", re.Rank, re.Err)
	}
	if len(re.Stack) == 0 {
		t.Fatal("RankError should carry the failing stack")
	}
}

func TestThrowSurfacesCause(t *testing.T) {
	w := NewWorld(2)
	cause := errors.New("domain failure")
	err := w.Run(func(c *Comm) {
		if c.Rank() == 1 {
			Throw(cause)
		}
		// Rank 0 blocks so the abort path must unwind it as a cascade
		// victim without masking rank 1's primary error.
		c.Recv(1, 3)
	})
	if !errors.Is(err, cause) {
		t.Fatalf("err = %v, want wrapped cause", err)
	}
	var re *RankError
	if !errors.As(err, &re) || re.Rank != 1 {
		t.Fatalf("err = %v, want *RankError on rank 1", err)
	}
}

func TestExchangeSymmetric(t *testing.T) {
	w := NewWorld(4)
	w.Run(func(c *Comm) {
		partner := c.Rank() ^ 1
		got := c.Exchange(partner, 9, []float64{float64(c.Rank())})
		if got[0] != float64(partner) {
			panic("exchange returned wrong payload")
		}
	})
}

func TestBarrierSynchronizes(t *testing.T) {
	for _, p := range []int{1, 2, 3, 4, 7, 8} {
		w := NewWorld(p)
		var before, violations int32
		w.Run(func(c *Comm) {
			atomic.AddInt32(&before, 1)
			c.Barrier()
			if atomic.LoadInt32(&before) != int32(p) {
				atomic.AddInt32(&violations, 1)
			}
		})
		if violations != 0 {
			t.Fatalf("P=%d: rank passed barrier before all arrived", p)
		}
	}
}

func TestBcastAllRoots(t *testing.T) {
	for _, p := range []int{1, 2, 3, 4, 5, 8, 9, 16} {
		for root := 0; root < p; root += max(1, p/3) {
			w := NewWorld(p)
			w.Run(func(c *Comm) {
				var data []float64
				if c.Rank() == root {
					data = []float64{3.14, float64(root)}
				}
				got := c.Bcast(root, data)
				if len(got) != 2 || got[0] != 3.14 || got[1] != float64(root) {
					panic("bcast payload wrong")
				}
			})
			if w.Pending() != 0 {
				t.Fatalf("P=%d root=%d: %d leaked messages", p, root, w.Pending())
			}
		}
	}
}

func TestReduceSum(t *testing.T) {
	for _, p := range []int{1, 2, 3, 4, 6, 8, 13} {
		for root := 0; root < p; root += max(1, p/2) {
			w := NewWorld(p)
			w.Run(func(c *Comm) {
				data := []float64{float64(c.Rank()), 1}
				got := c.Reduce(root, data, OpSum)
				if c.Rank() == root {
					wantSum := float64(p*(p-1)) / 2
					if got[0] != wantSum || got[1] != float64(p) {
						panic("reduce sum wrong")
					}
				} else if got != nil {
					panic("non-root got non-nil reduce result")
				}
			})
		}
	}
}

func TestReduceDoesNotModifyInput(t *testing.T) {
	w := NewWorld(4)
	w.Run(func(c *Comm) {
		data := []float64{float64(c.Rank())}
		c.Reduce(0, data, OpSum)
		if data[0] != float64(c.Rank()) {
			panic("Reduce modified caller's slice")
		}
	})
}

func TestAllreduceSumMaxMin(t *testing.T) {
	for _, p := range []int{1, 2, 4, 8, 3, 5, 12} {
		w := NewWorld(p)
		w.Run(func(c *Comm) {
			r := float64(c.Rank())
			sum := c.Allreduce([]float64{r}, OpSum)
			if sum[0] != float64(p*(p-1))/2 {
				panic("allreduce sum wrong")
			}
			mx := c.Allreduce([]float64{r}, OpMax)
			if mx[0] != float64(p-1) {
				panic("allreduce max wrong")
			}
			mn := c.Allreduce([]float64{r}, OpMin)
			if mn[0] != 0 {
				panic("allreduce min wrong")
			}
		})
	}
}

// opConcat2 is an associative, non-commutative operation on length-2
// slices encoding string concatenation via positional digits: it verifies
// ordering guarantees. Encoding: value = digits concatenated base 10, len.
func opConcat2(dst, src []float64) {
	// dst := dst || src, where each slice is [value, numDigits].
	dst[0] = dst[0]*math.Pow(10, src[1]) + src[0]
	dst[1] += src[1]
}

func TestAllreduceNonCommutativeOrder(t *testing.T) {
	for _, p := range []int{2, 4, 8, 3, 6} {
		w := NewWorld(p)
		w.Run(func(c *Comm) {
			// Each rank contributes its 1-digit id (ranks < 10 here).
			got := c.Allreduce([]float64{float64(c.Rank() + 1), 1}, opConcat2)
			want := 0.0
			for r := 1; r <= p; r++ {
				want = want*10 + float64(r)
			}
			if got[0] != want {
				panic("allreduce order not ascending-rank")
			}
		})
	}
}

func TestGather(t *testing.T) {
	for _, p := range []int{1, 2, 5, 8} {
		w := NewWorld(p)
		w.Run(func(c *Comm) {
			// Variable-length payloads: rank r sends r+1 copies of r.
			data := make([]float64, c.Rank()+1)
			for i := range data {
				data[i] = float64(c.Rank())
			}
			got := c.Gather(p-1, data)
			if c.Rank() != p-1 {
				if got != nil {
					panic("non-root gather result must be nil")
				}
				return
			}
			for r := 0; r < p; r++ {
				if len(got[r]) != r+1 || got[r][0] != float64(r) {
					panic("gather piece wrong")
				}
			}
		})
	}
}

func TestAllgather(t *testing.T) {
	for _, p := range []int{1, 2, 3, 4, 7, 8} {
		w := NewWorld(p)
		w.Run(func(c *Comm) {
			data := []float64{float64(c.Rank() * 10), float64(c.Rank())}
			got := c.Allgather(data)
			for r := 0; r < p; r++ {
				if len(got[r]) != 2 || got[r][0] != float64(r*10) || got[r][1] != float64(r) {
					panic("allgather piece wrong")
				}
			}
		})
	}
}

func TestScanAndExScanSum(t *testing.T) {
	for _, p := range []int{1, 2, 3, 4, 5, 8, 16, 11} {
		w := NewWorld(p)
		w.Run(func(c *Comm) {
			r := c.Rank()
			inc := c.Scan([]float64{float64(r)}, OpSum)
			want := float64(r*(r+1)) / 2
			if inc[0] != want {
				panic("inclusive scan wrong")
			}
			exc := c.ExScan([]float64{float64(r)}, OpSum)
			if r == 0 {
				if exc != nil {
					panic("rank 0 ExScan must be nil")
				}
			} else if exc[0] != float64(r*(r-1))/2 {
				panic("exclusive scan wrong")
			}
		})
	}
}

func TestScanNonCommutativeOrder(t *testing.T) {
	for _, p := range []int{2, 4, 8, 5} {
		w := NewWorld(p)
		w.Run(func(c *Comm) {
			got := c.Scan([]float64{float64(c.Rank() + 1), 1}, opConcat2)
			want := 0.0
			for r := 1; r <= c.Rank()+1; r++ {
				want = want*10 + float64(r)
			}
			if got[0] != want {
				panic("scan order not ascending-rank")
			}
			exc := c.ExScan([]float64{float64(c.Rank() + 1), 1}, opConcat2)
			if c.Rank() > 0 {
				wantEx := 0.0
				for r := 1; r <= c.Rank(); r++ {
					wantEx = wantEx*10 + float64(r)
				}
				if exc[0] != wantEx {
					panic("exscan order not ascending-rank")
				}
			}
		})
	}
}

func TestStatsCounts(t *testing.T) {
	w := NewWorld(2)
	w.Run(func(c *Comm) {
		if c.Rank() == 0 {
			c.Send(1, 0, make([]float64, 10)) // 80 bytes
		} else {
			c.Recv(0, 0)
		}
	})
	total := w.TotalStats()
	if total.MsgsSent != 1 || total.BytesSent != 80 {
		t.Fatalf("send stats wrong: %+v", total)
	}
	if total.MsgsRecv != 1 || total.BytesRecv != 80 {
		t.Fatalf("recv stats wrong: %+v", total)
	}
	wantTime := 2 * (w.Model.Alpha + 80*w.Model.Beta) // sender + receiver
	if math.Abs(total.SimCommTime-wantTime) > 1e-18 {
		t.Fatalf("sim time %v want %v", total.SimCommTime, wantTime)
	}
}

func TestMaxSimCommTimeAndReset(t *testing.T) {
	w := NewWorld(4)
	w.Run(func(c *Comm) {
		if c.Rank() == 0 {
			for dst := 1; dst < 4; dst++ {
				c.Send(dst, 0, make([]float64, 100))
			}
		} else {
			c.Recv(0, 0)
		}
	})
	if w.MaxSimCommTime() <= 0 {
		t.Fatal("MaxSimCommTime should be positive")
	}
	w.ResetTotals()
	if s := w.TotalStats(); s.MsgsSent != 0 || s.SimCommTime != 0 {
		t.Fatalf("ResetTotals did not clear: %+v", s)
	}
}

func TestCostModelMessageCost(t *testing.T) {
	m := CostModel{Alpha: 2, Beta: 0.5}
	if got := m.MessageCost(10); got != 7 {
		t.Fatalf("MessageCost = %v want 7", got)
	}
}

func TestNewWorldPanicsOnZero(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewWorld(0)
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// TestManyWorldsStress creates and runs many worlds concurrently-ish to
// shake out state leakage between Run calls.
func TestManyWorldsStress(t *testing.T) {
	for trial := 0; trial < 30; trial++ {
		p := 1 + trial%6
		w := NewWorld(p)
		for round := 0; round < 3; round++ {
			w.Run(func(c *Comm) {
				sum := c.Allreduce([]float64{float64(c.Rank())}, OpSum)
				if sum[0] != float64(p*(p-1))/2 {
					panic("allreduce wrong under reuse")
				}
				got := c.Scan([]float64{1}, OpSum)
				if got[0] != float64(c.Rank()+1) {
					panic("scan wrong under reuse")
				}
			})
			if w.Pending() != 0 {
				t.Fatalf("trial %d round %d: leaked messages", trial, round)
			}
		}
	}
}

// TestWorldReusableAfterPanic verifies a world recovers for subsequent
// Run calls after a rank failure aborted it.
func TestWorldReusableAfterPanic(t *testing.T) {
	w := NewWorld(3)
	err := w.Run(func(c *Comm) {
		if c.Rank() == 1 {
			panic("induced")
		}
		// Other ranks block so the abort path must wake them.
		c.Recv(1, 99)
	})
	if err == nil {
		t.Fatal("expected a *RankError from the failed run")
	}
	// Drain any stale messages: a fresh Run must still work because all
	// queues from the failed round were never consumed under new tags.
	w.Run(func(c *Comm) {
		got := c.Bcast(0, []float64{float64(c.Rank() + 42)})
		if got[0] != 42 {
			panic("bcast after recovery wrong")
		}
	})
}
