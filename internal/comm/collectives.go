package comm

// Collective message tags live in a reserved high range so user
// point-to-point traffic (small non-negative tags) can never collide with
// them. FIFO matching per (source, tag) makes reuse across successive
// collectives safe as long as all ranks invoke the same collective
// sequence, which is the usual MPI contract.
const (
	tagBarrier = 1<<30 + iota
	tagBcast
	tagReduce
	tagGather
	tagAllgather
	tagScan
)

// ReduceOp combines src into dst elementwise; it must be associative over
// the slices it is applied to. The slices always have equal length.
type ReduceOp func(dst, src []float64)

// OpSum is elementwise addition.
func OpSum(dst, src []float64) {
	for i, v := range src {
		dst[i] += v
	}
}

// OpMax is elementwise maximum.
func OpMax(dst, src []float64) {
	for i, v := range src {
		if v > dst[i] {
			dst[i] = v
		}
	}
}

// OpMin is elementwise minimum.
func OpMin(dst, src []float64) {
	for i, v := range src {
		if v < dst[i] {
			dst[i] = v
		}
	}
}

// Barrier blocks until every rank has entered it, using the dissemination
// algorithm: ceil(log2 P) rounds of shifted exchanges.
func (c *Comm) Barrier() {
	p := c.Size()
	for dist := 1; dist < p; dist <<= 1 {
		dst := (c.rank + dist) % p
		src := (c.rank - dist + p) % p
		c.Send(dst, tagBarrier, nil)
		c.Recv(src, tagBarrier)
	}
}

// Bcast distributes root's data to every rank along a binomial tree and
// returns the received copy (root returns data unchanged). All ranks must
// call it; non-root ranks may pass nil.
func (c *Comm) Bcast(root int, data []float64) []float64 {
	p := c.Size()
	if root < 0 || root >= p {
		c.throwf(ErrInvalidRank, "comm: Bcast root %d (P=%d)", root, p)
	}
	rel := (c.rank - root + p) % p
	mask := 1
	for mask < p {
		if rel&mask != 0 {
			src := (rel - mask + root) % p
			data = c.Recv(src, tagBcast)
			break
		}
		mask <<= 1
	}
	mask >>= 1
	for mask > 0 {
		if rel+mask < p {
			dst := (rel + mask + root) % p
			c.Send(dst, tagBcast, data)
		}
		mask >>= 1
	}
	return data
}

// Reduce combines every rank's data with op along a binomial tree and
// returns the result at root (nil elsewhere). The reduction order is
// deterministic for a given P. data is not modified.
func (c *Comm) Reduce(root int, data []float64, op ReduceOp) []float64 {
	p := c.Size()
	if root < 0 || root >= p {
		c.throwf(ErrInvalidRank, "comm: Reduce root %d (P=%d)", root, p)
	}
	acc := make([]float64, len(data))
	copy(acc, data)
	rel := (c.rank - root + p) % p
	for mask := 1; mask < p; mask <<= 1 {
		if rel&mask != 0 {
			dst := (rel - mask + root) % p
			c.Send(dst, tagReduce, acc)
			return nil
		}
		partner := rel | mask
		if partner < p {
			src := (partner + root) % p
			recv := c.Recv(src, tagReduce)
			if len(recv) != len(acc) {
				c.throwf(ErrLengthMismatch, "comm: Reduce got %d floats from rank %d, want %d", len(recv), src, len(acc))
			}
			op(acc, recv)
		}
	}
	return acc
}

// Allreduce combines every rank's data with op and returns the result on
// all ranks. For power-of-two worlds it uses the recursive doubling
// exchange pattern (log2 P rounds of pairwise exchanges); otherwise it
// falls back to Reduce-then-Bcast. Both paths combine contributions in
// ascending rank order, so merely-associative (non-commutative) ops are
// safe and all ranks obtain bit-identical results.
func (c *Comm) Allreduce(data []float64, op ReduceOp) []float64 {
	p := c.Size()
	if p&(p-1) == 0 {
		acc := make([]float64, len(data))
		copy(acc, data)
		for mask := 1; mask < p; mask <<= 1 {
			partner := c.rank ^ mask
			recv := c.Exchange(partner, tagReduce, acc)
			if len(recv) != len(acc) {
				c.throwf(ErrLengthMismatch, "comm: Allreduce got %d floats from rank %d, want %d", len(recv), partner, len(acc))
			}
			// Keep a canonical order (lower rank's contribution first) so
			// all ranks compute bit-identical results even for merely
			// associative ops.
			if partner < c.rank {
				op(recv, acc)
				acc = recv
			} else {
				op(acc, recv)
			}
		}
		return acc
	}
	res := c.Reduce(0, data, op)
	return c.Bcast(0, res)
}

// Gather collects every rank's data at root in rank order; root receives
// the slices (including its own, shared not copied) and other ranks get
// nil. Payload lengths may differ between ranks.
func (c *Comm) Gather(root int, data []float64) [][]float64 {
	p := c.Size()
	if c.rank != root {
		c.Send(root, tagGather, data)
		return nil
	}
	out := make([][]float64, p)
	for r := 0; r < p; r++ {
		if r == root {
			out[r] = data
			continue
		}
		out[r] = c.Recv(r, tagGather)
	}
	return out
}

// Allgather collects every rank's data on all ranks in rank order using a
// ring: P-1 steps, each forwarding the block received in the previous
// step. Payload lengths may differ between ranks.
func (c *Comm) Allgather(data []float64) [][]float64 {
	p := c.Size()
	out := make([][]float64, p)
	out[c.rank] = data
	next := (c.rank + 1) % p
	prev := (c.rank - 1 + p) % p
	cur := data
	for step := 0; step < p-1; step++ {
		c.Send(next, tagAllgather, cur)
		cur = c.Recv(prev, tagAllgather)
		owner := (c.rank - step - 1 + p*(step+2)) % p
		out[owner] = cur
	}
	return out
}

// ExScan computes the exclusive prefix reduction: rank r receives
// op(data_0, ..., data_{r-1}). Rank 0's result is nil (no prefix). The
// implementation is the Kogge-Stone recursive doubling scan, log2 P
// rounds. op must be associative; the combine order is always
// lower-rank-first, so non-commutative ops are safe.
func (c *Comm) ExScan(data []float64, op ReduceOp) []float64 {
	p := c.Size()
	// acc = inclusive prefix over the ranks seen so far; pre = exclusive.
	acc := make([]float64, len(data))
	copy(acc, data)
	var pre []float64
	for dist := 1; dist < p; dist <<= 1 {
		if c.rank+dist < p {
			c.Send(c.rank+dist, tagScan, acc)
		}
		if c.rank-dist >= 0 {
			recv := c.Recv(c.rank-dist, tagScan)
			if len(recv) != len(acc) {
				c.throwf(ErrLengthMismatch, "comm: ExScan got %d floats from rank %d, want %d", len(recv), c.rank-dist, len(acc))
			}
			if pre == nil {
				pre = make([]float64, len(recv))
				copy(pre, recv)
			} else {
				// recv covers strictly earlier ranks than pre does.
				merged := make([]float64, len(recv))
				copy(merged, recv)
				op(merged, pre)
				pre = merged
			}
			merged := make([]float64, len(recv))
			copy(merged, recv)
			op(merged, acc)
			acc = merged
		}
	}
	return pre
}

// Scan computes the inclusive prefix reduction: rank r receives
// op(data_0, ..., data_r). Same schedule and ordering guarantees as
// ExScan.
func (c *Comm) Scan(data []float64, op ReduceOp) []float64 {
	p := c.Size()
	acc := make([]float64, len(data))
	copy(acc, data)
	for dist := 1; dist < p; dist <<= 1 {
		if c.rank+dist < p {
			c.Send(c.rank+dist, tagScan, acc)
		}
		if c.rank-dist >= 0 {
			recv := c.Recv(c.rank-dist, tagScan)
			if len(recv) != len(acc) {
				c.throwf(ErrLengthMismatch, "comm: Scan got %d floats from rank %d, want %d", len(recv), c.rank-dist, len(acc))
			}
			merged := make([]float64, len(recv))
			copy(merged, recv)
			op(merged, acc)
			acc = merged
		}
	}
	return acc
}
