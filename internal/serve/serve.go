// Package serve is the fault-hardened multi-tenant solver service: the
// operational layer that turns the ARD factor/solve split into an
// amortization engine.
//
// Architecture. A Server owns a small pool of workers; each worker owns one
// comm.World and serializes all runs on it, because a factored core.ARD is
// bound to the world that factored it (its per-rank state is sized and laid
// out for that world's P). Jobs are sharded to workers by matrix content
// key, so every solve against a cached factor lands on the world that built
// the factor. Within a worker, queued jobs are drained with per-tenant
// round-robin — one tenant flooding the queue delays its own tail, not the
// other tenants — and jobs against the same matrix are coalesced into one
// multi-RHS panel so the BLAS-3 solve path does the work of many requests
// in one pass.
//
// Failure ladder, in admission order:
//
//	bounded queue  -> *OverloadError (shed, with retry-after)
//	open breaker   -> *CircuitError  (matrix known-bad, cooldown remaining)
//	per-job deadline -> context pushed into comm runs; ranks unwind
//	injected faults  -> retry with jittered exponential backoff
//	singular pivots  -> core.SolveBoosted graceful degradation
//
// Every request terminates with a correct solution or a typed error; the
// chaos harness in internal/chaos drives this contract under concurrent
// tenants and injected backend faults.
package serve

import (
	"context"
	"errors"
	"fmt"
	"hash/fnv"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"blocktri/internal/blocktri"
	"blocktri/internal/comm"
	"blocktri/internal/core"
	"blocktri/internal/mat"
)

// Config sizes the service. The zero value of any field selects a sane
// default (see withDefaults); a zero Resilience is replaced with a tight
// fault-recovery profile suitable for a service that must answer within
// deadlines rather than wait indefinitely.
type Config struct {
	// Workers is the number of solver workers; each owns one comm.World.
	Workers int
	// P is the rank count of each worker's world.
	P int
	// CacheBytes bounds the factor cache (matrix payload + stored factors).
	CacheBytes int64
	// QueueDepth bounds the admission queue across all workers; beyond it,
	// requests are shed with *OverloadError.
	QueueDepth int
	// MaxPanel caps the total right-hand-side columns coalesced into one
	// solve panel.
	MaxPanel int
	// DefaultDeadline applies to jobs that do not carry their own.
	DefaultDeadline time.Duration
	// MaxRetries is the per-job retry budget for transient backend faults
	// (injected crashes, receive-timeout exhaustion, deadlocks).
	MaxRetries int
	// RetryBackoff is the base delay before the first retry; it doubles per
	// attempt and is jittered by RetryJitter.
	RetryBackoff time.Duration
	// RetryJitter is the +/- fraction applied to retry delays.
	RetryJitter float64
	// Seed makes retry jitter and per-worker fault-plan derivation
	// deterministic.
	Seed int64
	// BreakerThreshold is the consecutive factor-failure count that opens a
	// matrix's circuit breaker.
	BreakerThreshold int
	// BreakerCooldown is how long an open breaker rejects before admitting
	// a probe.
	BreakerCooldown time.Duration
	// RefineIters is passed to core.SolveBoosted on graceful degradation.
	RefineIters int
	// Resilience configures each worker world's receive-retry and watchdog
	// behavior.
	Resilience comm.Resilience
	// FaultPlan, when non-nil, is installed on every worker world (with the
	// seed decorrelated per worker). Test and chaos use only.
	FaultPlan *comm.FaultPlan
}

func (c Config) withDefaults() Config {
	if c.Workers <= 0 {
		c.Workers = 1
	}
	if c.P <= 0 {
		c.P = 2
	}
	if c.CacheBytes <= 0 {
		c.CacheBytes = 256 << 20
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 256
	}
	if c.MaxPanel <= 0 {
		c.MaxPanel = 256
	}
	if c.DefaultDeadline <= 0 {
		c.DefaultDeadline = 30 * time.Second
	}
	if c.MaxRetries < 0 {
		c.MaxRetries = 0
	} else if c.MaxRetries == 0 {
		c.MaxRetries = 2
	}
	if c.RetryBackoff <= 0 {
		c.RetryBackoff = 500 * time.Microsecond
	}
	if c.RetryJitter < 0 {
		c.RetryJitter = 0
	} else if c.RetryJitter == 0 {
		c.RetryJitter = 0.5
	}
	if c.BreakerThreshold <= 0 {
		c.BreakerThreshold = 3
	}
	if c.BreakerCooldown <= 0 {
		c.BreakerCooldown = 2 * time.Second
	}
	if c.RefineIters <= 0 {
		c.RefineIters = 2
	}
	if c.Resilience == (comm.Resilience{}) {
		c.Resilience = comm.Resilience{
			RecvTimeout:   50 * time.Millisecond,
			MaxRetries:    8,
			Backoff:       1.5,
			Jitter:        0.25,
			Seed:          c.Seed,
			DeadlockAfter: 500 * time.Millisecond,
		}
	}
	return c
}

// Job is one solve request. Exactly one of Matrix (inline) or MatrixID
// (registered via Register) identifies the system; B is the right-hand
// side, one or more columns. A zero Deadline means Config.DefaultDeadline.
type Job struct {
	Tenant   string
	MatrixID string
	Matrix   *blocktri.Matrix
	B        *mat.Matrix
	Deadline time.Time
}

// Result reports a completed solve.
type Result struct {
	// X is the solution panel, same shape as the job's B.
	X *mat.Matrix
	// Warm reports that the factorization was already resident.
	Warm bool
	// Coalesced is the number of jobs solved in the same panel (>= 1).
	Coalesced int
	// Retries is how many times the batch was retried past transient
	// backend faults before succeeding.
	Retries int
	// Boosted reports the solve went through core.SolveBoosted graceful
	// degradation; Boost carries its report.
	Boosted bool
	Boost   core.BoostReport
	// Wall is the service time of the batch the job rode in.
	Wall time.Duration
}

// Stats is a point-in-time snapshot of the service counters.
type Stats struct {
	Submitted int64
	Solved    int64
	Failed    int64
	Shed      int64
	Expired   int64 // submitter gave up (deadline/cancel) before a result

	FactorHits     int64
	Factorizations int64
	InflightJoins  int64
	Evictions      int64
	CacheBytes     int64

	Retries         int64
	Boosted         int64
	CoalescedPanels int64
	CoalescedJobs   int64
	BreakerOpens    int64

	Queued int
}

type outcome struct {
	x         *mat.Matrix
	err       error
	warm      bool
	coalesced int
	retries   int
	boosted   bool
	boost     core.BoostReport
	wall      time.Duration
}

type task struct {
	job      Job
	tenant   string
	a        *blocktri.Matrix
	key      string
	deadline time.Time
	ctx      context.Context
	cancel   context.CancelFunc
	done     chan outcome // buffered(1): workers never block delivering
	canceled atomic.Bool  // submitter gave up; workers skip it
	enqueued time.Time
}

type registration struct {
	a   *blocktri.Matrix
	key string
}

type breakerState struct {
	failures  int
	openUntil time.Time
}

// Server is the multi-tenant solver service. Create with New, shut down
// with Close.
type Server struct {
	cfg   Config
	cache *factorCache

	mu       sync.Mutex
	closed   bool
	queued   int
	ids      map[string]*registration
	breakers map[string]*breakerState

	workers     []*worker
	lastSolveNs atomic.Int64

	submitted, solved, failed, shed, expired atomic.Int64
	retries, boosted, breakerOpens           atomic.Int64
	coalescedPanels, coalescedJobs           atomic.Int64

	// testServeHook, when set (same-package tests only), observes each batch
	// as its worker starts serving it.
	testServeHook func([]*task)
}

// New starts a server with cfg's workers and worlds running.
func New(cfg Config) *Server {
	cfg = cfg.withDefaults()
	s := &Server{
		cfg:      cfg,
		cache:    newFactorCache(cfg.CacheBytes),
		ids:      make(map[string]*registration),
		breakers: make(map[string]*breakerState),
	}
	for i := 0; i < cfg.Workers; i++ {
		world := comm.NewWorld(cfg.P)
		world.SetResilience(cfg.Resilience)
		if cfg.FaultPlan != nil {
			plan := *cfg.FaultPlan
			plan.Seed ^= int64(i+1) * 0x9e3779b9
			world.SetFaultPlan(&plan)
		}
		w := &worker{
			srv:    s,
			idx:    i,
			world:  world,
			queues: make(map[string][]*task),
			done:   make(chan struct{}),
			rng:    rand.New(rand.NewSource(cfg.Seed ^ int64(i+1)*0x7f4a7c15)),
		}
		w.cond = sync.NewCond(&w.mu)
		s.workers = append(s.workers, w)
		//lint:ignore goleak loop exits when Close sets w.closed under w.mu and broadcasts w.cond; it closes w.done itself so close() can join it.
		go w.loop()
	}
	return s
}

// Register binds id to a matrix so jobs can reference it by MatrixID
// without shipping the matrix each time. Re-registering an id replaces it.
func (s *Server) Register(id string, a *blocktri.Matrix) error {
	if err := a.Validate(); err != nil {
		return fmt.Errorf("%w: %v", ErrBadRequest, err)
	}
	key, err := MatrixKey(a)
	if err != nil {
		return err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrClosed
	}
	s.ids[id] = &registration{a: a, key: key}
	return nil
}

// Submit runs one job to completion and returns its result, or a typed
// error. It blocks until the job finishes, is shed, or ctx / the job
// deadline gives out; in the latter case the backend solve is canceled
// through the comm layer rather than left running.
func (s *Server) Submit(ctx context.Context, job Job) (*Result, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	s.submitted.Add(1)
	t, err := s.admit(ctx, job)
	if err != nil {
		return nil, err
	}
	defer t.cancel()
	select {
	case out := <-t.done:
		return s.finish(t, out)
	case <-t.ctx.Done():
		t.canceled.Store(true)
		s.expired.Add(1)
		if errors.Is(t.ctx.Err(), context.DeadlineExceeded) {
			return nil, fmt.Errorf("%w after %v", ErrDeadlineExceeded, time.Since(t.enqueued).Round(time.Millisecond))
		}
		return nil, fmt.Errorf("%w: %w", ErrCanceled, context.Cause(t.ctx))
	}
}

// admit validates, resolves, breaker-checks, and enqueues the job; every
// error return has already released the task's context.
func (s *Server) admit(ctx context.Context, job Job) (*task, error) {
	if job.B == nil || job.B.Cols < 1 || job.B.Rows < 1 {
		return nil, fmt.Errorf("%w: missing or empty right-hand side", ErrBadRequest)
	}
	tenant := job.Tenant
	if tenant == "" {
		tenant = "default"
	}
	var a *blocktri.Matrix
	var key string
	switch {
	case job.Matrix != nil:
		a = job.Matrix
		k, err := MatrixKey(a)
		if err != nil {
			return nil, fmt.Errorf("%w: %v", ErrBadRequest, err)
		}
		key = k
	case job.MatrixID != "":
		s.mu.Lock()
		reg := s.ids[job.MatrixID]
		s.mu.Unlock()
		if reg == nil {
			return nil, fmt.Errorf("%w: %q", ErrUnknownMatrix, job.MatrixID)
		}
		a, key = reg.a, reg.key
	default:
		return nil, fmt.Errorf("%w: job carries neither matrix nor matrix id", ErrBadRequest)
	}
	if job.B.Rows != a.N*a.M {
		return nil, fmt.Errorf("%w: rhs has %d rows, matrix wants %d", ErrBadRequest, job.B.Rows, a.N*a.M)
	}
	if err := s.breakerCheck(key); err != nil {
		return nil, err
	}

	deadline := job.Deadline
	if deadline.IsZero() {
		deadline = time.Now().Add(s.cfg.DefaultDeadline)
	}
	tctx, cancel := context.WithDeadline(ctx, deadline)
	t := &task{
		job: job, tenant: tenant, a: a, key: key,
		//lint:ignore ctxflow the task IS the request: it carries its deadline ctx to the worker, and Submit defers t.cancel() on every outcome.
		deadline: deadline, ctx: tctx, cancel: cancel,
		done: make(chan outcome, 1), enqueued: time.Now(),
	}

	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		cancel()
		return nil, ErrClosed
	}
	if s.queued >= s.cfg.QueueDepth {
		q := s.queued
		retry := s.retryAfterLocked()
		s.mu.Unlock()
		cancel()
		s.shed.Add(1)
		return nil, &OverloadError{Queued: q, RetryAfter: retry}
	}
	s.queued++
	s.mu.Unlock()

	if !s.workers[shard(key, len(s.workers))].enqueue(t) {
		s.noteDequeued()
		cancel()
		return nil, ErrClosed
	}
	return t, nil
}

func (s *Server) finish(t *task, out outcome) (*Result, error) {
	if out.err != nil {
		s.failed.Add(1)
		if errors.Is(out.err, comm.ErrCanceled) {
			if !time.Now().Before(t.deadline) {
				return nil, fmt.Errorf("%w: backend run aborted at deadline", ErrDeadlineExceeded)
			}
			return nil, fmt.Errorf("%w: %w", ErrCanceled, out.err)
		}
		return nil, out.err
	}
	s.solved.Add(1)
	if out.boosted {
		s.boosted.Add(1)
	}
	return &Result{
		X: out.x, Warm: out.warm, Coalesced: out.coalesced,
		Retries: out.retries, Boosted: out.boosted, Boost: out.boost,
		Wall: out.wall,
	}, nil
}

// Close shuts the service down: queued jobs fail with ErrClosed, workers
// drain, and every worker world's rank goroutines are stopped
// deterministically. Safe to call more than once.
func (s *Server) Close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.closed = true
	s.mu.Unlock()
	for _, w := range s.workers {
		w.close()
	}
	for _, w := range s.workers {
		w.world.Close()
	}
}

// Stats snapshots the service counters.
func (s *Server) Stats() Stats {
	cs, bytes := s.cache.snapshot()
	s.mu.Lock()
	q := s.queued
	s.mu.Unlock()
	return Stats{
		Submitted: s.submitted.Load(),
		Solved:    s.solved.Load(),
		Failed:    s.failed.Load(),
		Shed:      s.shed.Load(),
		Expired:   s.expired.Load(),

		FactorHits:     cs.Hits,
		Factorizations: cs.Misses,
		InflightJoins:  cs.InflightJoins,
		Evictions:      cs.Evictions,
		CacheBytes:     bytes,

		Retries:         s.retries.Load(),
		Boosted:         s.boosted.Load(),
		CoalescedPanels: s.coalescedPanels.Load(),
		CoalescedJobs:   s.coalescedJobs.Load(),
		BreakerOpens:    s.breakerOpens.Load(),

		Queued: q,
	}
}

// FactorResident reports whether key's factorization is cached and ready.
func (s *Server) FactorResident(key string) bool { return s.cache.contains(key) }

func (s *Server) noteDequeued() {
	s.mu.Lock()
	s.queued--
	s.mu.Unlock()
}

// retryAfterLocked estimates when queue capacity frees up: observed per-job
// service time times the queue depth ahead, split across workers.
func (s *Server) retryAfterLocked() time.Duration {
	per := time.Duration(s.lastSolveNs.Load())
	if per <= 0 {
		per = time.Millisecond
	}
	d := time.Duration(s.queued+1) * per / time.Duration(len(s.workers))
	if d < time.Millisecond {
		d = time.Millisecond
	}
	return d
}

func (s *Server) breakerCheck(key string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	br := s.breakers[key]
	if br == nil {
		return nil
	}
	if rem := time.Until(br.openUntil); rem > 0 {
		return &CircuitError{Key: key, Failures: br.failures, RetryAfter: rem}
	}
	// Cooldown over: admit probes; failure count is retained so the next
	// failure reopens the breaker immediately (half-open semantics).
	return nil
}

func (s *Server) breakerFail(key string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	br := s.breakers[key]
	if br == nil {
		br = &breakerState{}
		s.breakers[key] = br
	}
	br.failures++
	if br.failures >= s.cfg.BreakerThreshold {
		br.openUntil = time.Now().Add(s.cfg.BreakerCooldown)
		s.breakerOpens.Add(1)
	}
}

func (s *Server) breakerOK(key string) {
	s.mu.Lock()
	delete(s.breakers, key)
	s.mu.Unlock()
}

func shard(key string, n int) int {
	if n == 1 {
		return 0
	}
	h := fnv.New32a()
	h.Write([]byte(key))
	return int(h.Sum32() % uint32(n))
}

// worker owns one comm.World and serializes all factor/solve runs on it.
type worker struct {
	srv   *Server
	idx   int
	world *comm.World
	rng   *rand.Rand // worker-goroutine only: retry backoff jitter

	mu     sync.Mutex
	cond   *sync.Cond
	closed bool
	queues map[string][]*task // per-tenant FIFO
	order  []string           // round-robin ring of tenants with queued work
	next   int                // ring cursor
	done   chan struct{}
}

func (w *worker) enqueue(t *task) bool {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.closed {
		return false
	}
	if _, ok := w.queues[t.tenant]; !ok {
		w.order = append(w.order, t.tenant)
	}
	w.queues[t.tenant] = append(w.queues[t.tenant], t)
	w.cond.Signal()
	return true
}

func (w *worker) close() {
	w.mu.Lock()
	w.closed = true
	w.cond.Broadcast()
	w.mu.Unlock()
	<-w.done
}

func (w *worker) loop() {
	defer close(w.done)
	for {
		t := w.nextTask()
		if t == nil {
			w.failRemaining()
			return
		}
		batch := w.coalesce(t)
		w.serve(batch)
	}
}

// nextTask blocks for the next job, drained with per-tenant round-robin:
// the ring cursor advances one tenant per pop, so a tenant that floods the
// queue delays its own tail, not its neighbors. Returns nil when closed.
func (w *worker) nextTask() *task {
	w.mu.Lock()
	defer w.mu.Unlock()
	for {
		if w.closed {
			return nil
		}
		if t := w.popLocked(); t != nil {
			return t
		}
		w.cond.Wait()
	}
}

func (w *worker) popLocked() *task {
	for tries := len(w.order); tries > 0; tries-- {
		if w.next >= len(w.order) {
			w.next = 0
		}
		tenant := w.order[w.next]
		q := w.queues[tenant]
		if len(q) == 0 {
			w.dropTenantLocked(w.next)
			continue
		}
		t := q[0]
		w.queues[tenant] = q[1:]
		if len(q) == 1 {
			w.dropTenantLocked(w.next)
		} else {
			w.next++
		}
		w.srv.noteDequeued()
		return t
	}
	return nil
}

func (w *worker) dropTenantLocked(i int) {
	tenant := w.order[i]
	delete(w.queues, tenant)
	w.order = append(w.order[:i], w.order[i+1:]...)
	if w.next > i || w.next >= len(w.order) {
		w.next = 0
	}
}

// coalesce pulls queued jobs for the same matrix key into first's batch, up
// to MaxPanel total right-hand-side columns. It scans every tenant's queue
// (preserving each tenant's per-key order), so coalescing is itself fair:
// a panel formed for tenant A's matrix carries B's jobs for that matrix too.
func (w *worker) coalesce(first *task) []*task {
	batch := []*task{first}
	cols := first.job.B.Cols
	w.mu.Lock()
	tenants := append([]string(nil), w.order...)
	for _, tenant := range tenants {
		q := w.queues[tenant]
		kept := q[:0]
		for _, t := range q {
			if t.key == first.key && cols+t.job.B.Cols <= w.srv.cfg.MaxPanel {
				batch = append(batch, t)
				cols += t.job.B.Cols
				w.srv.noteDequeued()
				continue
			}
			kept = append(kept, t)
		}
		if len(kept) == 0 {
			delete(w.queues, tenant)
		} else {
			w.queues[tenant] = kept
		}
	}
	// Compact the ring: drop tenants whose queues emptied.
	keptOrder := w.order[:0]
	for _, tenant := range w.order {
		if _, ok := w.queues[tenant]; ok {
			keptOrder = append(keptOrder, tenant)
		}
	}
	w.order = keptOrder
	if w.next >= len(w.order) {
		w.next = 0
	}
	w.mu.Unlock()
	return batch
}

// failRemaining delivers ErrClosed to everything still queued at shutdown.
func (w *worker) failRemaining() {
	w.mu.Lock()
	var leftover []*task
	for _, q := range w.queues {
		leftover = append(leftover, q...)
	}
	w.queues = make(map[string][]*task)
	w.order = nil
	w.mu.Unlock()
	for _, t := range leftover {
		w.srv.noteDequeued()
		t.done <- outcome{err: ErrClosed}
	}
}

// serve runs one coalesced batch to completion: acquire (or build) the
// factorization, solve the panel with retries, degrade through SolveBoosted
// on singular pivots, and deliver every job's outcome.
func (w *worker) serve(batch []*task) {
	if hook := w.srv.testServeHook; hook != nil {
		hook(batch)
	}
	live := batch[:0:0]
	for _, t := range batch {
		if !t.canceled.Load() && t.ctx.Err() == nil {
			live = append(live, t)
		}
	}
	if len(live) == 0 {
		return
	}
	if len(live) > 1 {
		w.srv.coalescedPanels.Add(1)
		w.srv.coalescedJobs.Add(int64(len(live) - 1))
	}
	key := live[0].key
	start := time.Now()

	var (
		xs       []*mat.Matrix
		boosted  bool
		boostRep core.BoostReport
		retries  int
	)
	entry, warm, err := w.srv.cache.acquire(key, func() (*core.ARD, *blocktri.Matrix, int64, error) {
		return w.buildFactor(live)
	})
	switch {
	case err == nil:
		xs, retries, err = w.solvePanel(live, entry.ard)
		w.srv.cache.release(entry)
	case core.Boostable(err):
		// Singular-pivot factor failure: degrade through the boost ladder.
		// Nothing is cached; the breaker is only charged if boosting fails.
		xs, boostRep, retries, err = w.serveBoosted(live)
		if err == nil {
			boosted = true
		} else if !errors.Is(err, comm.ErrCanceled) {
			w.srv.breakerFail(key)
		}
	default:
		// Terminal factor failure. Charge the breaker unless the run was
		// merely canceled by a deadline — overload is not matrix badness.
		if !errors.Is(err, comm.ErrCanceled) {
			w.srv.breakerFail(key)
		}
	}
	wall := time.Since(start)

	if err != nil {
		for _, t := range live {
			t.done <- outcome{err: err, retries: retries, wall: wall}
		}
		return
	}
	w.srv.breakerOK(key)
	w.srv.lastSolveNs.Store(int64(wall) / int64(len(live)))
	for i, t := range live {
		t.done <- outcome{
			x: xs[i], warm: warm, coalesced: len(live), retries: retries,
			boosted: boosted, boost: boostRep, wall: wall,
		}
	}
}

// buildFactor factors the batch's matrix under the batch deadline, retrying
// transient backend faults. A fresh ARD is constructed per attempt so a
// half-factored state is never reused.
func (w *worker) buildFactor(live []*task) (*core.ARD, *blocktri.Matrix, int64, error) {
	a := live[0].a
	var ard *core.ARD
	_, err := w.runWithRetry(live, func() error {
		ard = core.NewARD(a, core.Config{World: w.world})
		return ard.Factor()
	})
	if err != nil {
		return nil, nil, 0, err
	}
	return ard, a, ard.FactorStats().StoredBytes + matrixBytes(a), nil
}

// solvePanel concatenates the batch's right-hand sides into one panel,
// solves it in a single BLAS-3 pass, and splits the solution per job.
func (w *worker) solvePanel(live []*task, ard *core.ARD) ([]*mat.Matrix, int, error) {
	rows := live[0].a.N * live[0].a.M
	b, total := concatRHS(live, rows)
	x := mat.New(rows, total)
	retries, err := w.runWithRetry(live, func() error {
		return ard.SolveTo(x, b)
	})
	if err != nil {
		return nil, retries, err
	}
	return splitX(live, x, rows), retries, nil
}

// serveBoosted is the graceful-degradation path: the plain ARD factor hit a
// boostable failure (singular pivot), so the batch is solved through
// core.SolveBoosted's escalation ladder instead.
func (w *worker) serveBoosted(live []*task) ([]*mat.Matrix, core.BoostReport, int, error) {
	a := live[0].a
	rows := a.N * a.M
	b, _ := concatRHS(live, rows)
	var (
		x   *mat.Matrix
		rep core.BoostReport
	)
	retries, err := w.runWithRetry(live, func() error {
		var berr error
		x, rep, berr = core.SolveBoosted(a, func(m *blocktri.Matrix) core.Solver {
			return core.NewARD(m, core.Config{World: w.world})
		}, b, w.srv.cfg.RefineIters)
		return berr
	})
	if err != nil {
		return nil, rep, retries, err
	}
	return splitX(live, x, rows), rep, retries, nil
}

// runWithRetry installs the batch deadline as the world's run context and
// runs f, retrying transient backend faults with jittered exponential
// backoff up to the configured budget.
func (w *worker) runWithRetry(live []*task, f func() error) (int, error) {
	ctx, cancel := context.WithDeadline(context.Background(), maxDeadline(live))
	defer cancel()
	w.world.SetRunContext(ctx)
	defer w.world.SetRunContext(nil)
	var err error
	for attempt := 0; ; attempt++ {
		err = f()
		if err == nil || !transient(err) || attempt >= w.srv.cfg.MaxRetries {
			return attempt, err
		}
		w.srv.retries.Add(1)
		w.backoffSleep(attempt + 1)
	}
}

// transient reports whether err is a backend fault worth retrying: an
// injected crash, an exhausted receive-retry budget, or a declared
// deadlock. Cancellation (deadline) and domain errors (singularity, shape)
// are terminal.
func transient(err error) bool {
	if errors.Is(err, comm.ErrCanceled) {
		return false
	}
	var de *comm.DeadlockError
	if errors.As(err, &de) {
		return true
	}
	return errors.Is(err, comm.ErrInjectedCrash) ||
		errors.Is(err, comm.ErrRecvTimeout) ||
		errors.Is(err, comm.ErrMalformedPayload)
}

// backoffSleep sleeps the attempt's backoff: base doubling per attempt,
// capped, jittered by the configured fraction so retry storms decorrelate.
func (w *worker) backoffSleep(attempt int) {
	d := w.srv.cfg.RetryBackoff << (attempt - 1)
	if mx := 50 * time.Millisecond; d > mx {
		d = mx
	}
	if j := w.srv.cfg.RetryJitter; j > 0 {
		d = time.Duration(float64(d) * (1 + j*(2*w.rng.Float64()-1)))
	}
	time.Sleep(d)
}

func maxDeadline(live []*task) time.Time {
	d := live[0].deadline
	for _, t := range live[1:] {
		if t.deadline.After(d) {
			d = t.deadline
		}
	}
	return d
}

func concatRHS(live []*task, rows int) (*mat.Matrix, int) {
	total := 0
	for _, t := range live {
		total += t.job.B.Cols
	}
	if len(live) == 1 {
		return live[0].job.B, total
	}
	b := mat.New(rows, total)
	off := 0
	for _, t := range live {
		b.View(0, off, rows, t.job.B.Cols).CopyFrom(t.job.B)
		off += t.job.B.Cols
	}
	return b, total
}

func splitX(live []*task, x *mat.Matrix, rows int) []*mat.Matrix {
	if len(live) == 1 {
		return []*mat.Matrix{x}
	}
	xs := make([]*mat.Matrix, len(live))
	off := 0
	for i, t := range live {
		c := t.job.B.Cols
		xi := mat.New(rows, c)
		xi.CopyFrom(x.View(0, off, rows, c))
		xs[i] = xi
		off += c
	}
	return xs
}
