package serve

import (
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"blocktri/internal/blocktri"
	"blocktri/internal/core"
)

// fakeBuild returns a build function that reports bytes and counts calls.
func fakeBuild(calls *atomic.Int64, bytes int64, delay time.Duration, err error) func() (*core.ARD, *blocktri.Matrix, int64, error) {
	return func() (*core.ARD, *blocktri.Matrix, int64, error) {
		calls.Add(1)
		if delay > 0 {
			time.Sleep(delay)
		}
		if err != nil {
			return nil, nil, 0, err
		}
		return nil, nil, bytes, nil
	}
}

// TestCacheSingleflight: many concurrent acquires for one key run build
// exactly once; everyone else joins the in-flight factorization.
func TestCacheSingleflight(t *testing.T) {
	fc := newFactorCache(1 << 20)
	var calls atomic.Int64
	const waiters = 8
	var wg sync.WaitGroup
	for i := 0; i < waiters; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			e, _, err := fc.acquire("k", fakeBuild(&calls, 100, 20*time.Millisecond, nil))
			if err != nil {
				t.Errorf("acquire: %v", err)
				return
			}
			fc.release(e)
		}()
	}
	wg.Wait()
	if n := calls.Load(); n != 1 {
		t.Fatalf("build ran %d times for one key, want exactly 1", n)
	}
	stats, bytes := fc.snapshot()
	if stats.Misses != 1 || stats.Hits+stats.InflightJoins != waiters-1 {
		t.Fatalf("stats %+v: want 1 miss and %d hits+joins", stats, waiters-1)
	}
	if bytes != 100 {
		t.Fatalf("cache holds %d bytes, want 100", bytes)
	}
}

// TestCachePinnedNeverEvicted: entries pinned by an in-flight factorization
// or an active solve survive arbitrary cache pressure; eviction happens
// only once the pin is dropped. This is the structural guarantee that a
// flood of requests (or sheds) cannot yank a factor from under another
// tenant's in-flight work.
func TestCachePinnedNeverEvicted(t *testing.T) {
	fc := newFactorCache(50) // everything below is over budget
	var calls atomic.Int64
	ea, _, err := fc.acquire("a", fakeBuild(&calls, 100, 0, nil))
	if err != nil {
		t.Fatal(err)
	}
	eb, _, err := fc.acquire("b", fakeBuild(&calls, 100, 0, nil))
	if err != nil {
		t.Fatal(err)
	}
	if !fc.contains("a") || !fc.contains("b") {
		t.Fatal("pinned entries must stay resident even over budget")
	}
	if _, bytes := fc.snapshot(); bytes != 200 {
		t.Fatalf("cache accounts %d bytes, want 200", bytes)
	}

	fc.release(eb) // b unpinned: it is the only evictable entry
	if fc.contains("b") {
		t.Fatal("unpinned over-budget entry b not evicted")
	}
	if !fc.contains("a") {
		t.Fatal("still-pinned entry a was evicted by pressure")
	}
	fc.release(ea)
	if fc.contains("a") {
		t.Fatal("a not evicted after its pin dropped")
	}
	if _, bytes := fc.snapshot(); bytes != 0 {
		t.Fatalf("cache leaks %d bytes after evicting everything", bytes)
	}
}

// TestCacheFailedBuildNotCached: a failed factorization propagates its
// error to all waiters and leaves nothing behind — the next acquire
// rebuilds.
func TestCacheFailedBuildNotCached(t *testing.T) {
	fc := newFactorCache(1 << 20)
	boom := errors.New("boom")
	var calls atomic.Int64
	if _, _, err := fc.acquire("k", fakeBuild(&calls, 0, 0, boom)); !errors.Is(err, boom) {
		t.Fatalf("acquire error = %v, want boom", err)
	}
	if fc.contains("k") {
		t.Fatal("failed factorization was cached")
	}
	e, warm, err := fc.acquire("k", fakeBuild(&calls, 10, 0, nil))
	if err != nil || warm {
		t.Fatalf("rebuild after failure: warm=%v err=%v", warm, err)
	}
	fc.release(e)
	if calls.Load() != 2 {
		t.Fatalf("build calls = %d, want 2 (fail, then rebuild)", calls.Load())
	}
}

// TestCacheLRUOrder: with capacity for two entries, touching the older one
// flips which entry a third insertion evicts.
func TestCacheLRUOrder(t *testing.T) {
	fc := newFactorCache(200)
	var calls atomic.Int64
	for _, k := range []string{"a", "b"} {
		e, _, err := fc.acquire(k, fakeBuild(&calls, 100, 0, nil))
		if err != nil {
			t.Fatal(err)
		}
		fc.release(e)
	}
	// Touch a: now b is least recently used.
	e, warm, err := fc.acquire("a", nil)
	if err != nil || !warm {
		t.Fatalf("warm hit on a: warm=%v err=%v", warm, err)
	}
	fc.release(e)
	e, _, err = fc.acquire("c", fakeBuild(&calls, 100, 0, nil))
	if err != nil {
		t.Fatal(err)
	}
	fc.release(e)
	if fc.contains("b") {
		t.Fatal("LRU should have evicted b (a was touched)")
	}
	if !fc.contains("a") || !fc.contains("c") {
		t.Fatal("a and c should be resident")
	}
}
